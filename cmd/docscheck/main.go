// Command docscheck keeps the prose honest. It runs two gates over the
// repo's hand-written markdown (README.md, ROADMAP.md, docs/, and the
// per-package READMEs):
//
//  1. link check — every relative markdown link target must exist on
//     disk (external http(s) links are not fetched);
//  2. stale-option check — every `With...` option name the docs mention
//     must be declared as a function somewhere in the Go source, so a
//     renamed or removed sfa.With* / engine.With* option fails CI
//     instead of rotting in the README;
//  3. stale-annotation check — every `//sfa:<name>` analyzer annotation
//     the docs mention (see docs/static-analysis.md) must occur in some
//     .go file (analyzer fixtures count), so the documented grammar
//     cannot drift from what sfavet actually recognizes.
//
// Run from the repo root (make docs-check does): docscheck [-root dir].
// Exits 1 listing every violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// docFiles are the hand-maintained markdown surfaces. Generated or
// retrieval-produced files (PAPERS.md, SNIPPETS.md, BENCH notes) are
// exempt — their links point at sources this checkout never contains.
var docFiles = []string{
	"README.md",
	"ROADMAP.md",
	"docs",
	"internal/engine/README.md",
	"internal/snapshot/README.md",
}

var (
	// linkRe captures inline markdown link targets: [text](target).
	linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	// optionRe matches documented option names: WithSearch, WithoutPrefilter.
	optionRe = regexp.MustCompile(`\bWith(?:out)?[A-Z]\w*`)
	// declRe matches option constructors in Go source.
	declRe = regexp.MustCompile(`(?m)^func (With(?:out)?[A-Z]\w*)\(`)
	// directiveRe matches sfavet annotations in docs and Go source.
	directiveRe = regexp.MustCompile(`//sfa:[a-z]+`)
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	declared, annotations, err := declaredInSource(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}

	var problems []string
	for _, md := range collectDocs(*root) {
		data, err := os.ReadFile(md)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", md, err))
			continue
		}
		text := string(data)
		rel, _ := filepath.Rel(*root, md)

		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			p := filepath.Join(filepath.Dir(md), filepath.FromSlash(target))
			if _, err := os.Stat(p); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q", rel, m[1]))
			}
		}

		for _, opt := range optionRe.FindAllString(text, -1) {
			if !declared[opt] {
				problems = append(problems, fmt.Sprintf("%s: documents option %s, which no Go source declares", rel, opt))
			}
		}

		for _, ann := range directiveRe.FindAllString(text, -1) {
			if !annotations[ann] {
				problems = append(problems, fmt.Sprintf("%s: documents annotation %s, which no Go source uses", rel, ann))
			}
		}
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// collectDocs expands docFiles: plain files as-is, directories
// recursively for .md entries. Missing entries are skipped (a doc
// removed on purpose should not wedge the checker).
func collectDocs(root string) []string {
	var out []string
	for _, f := range docFiles {
		p := filepath.Join(root, f)
		st, err := os.Stat(p)
		if err != nil {
			continue
		}
		if !st.IsDir() {
			out = append(out, p)
			continue
		}
		filepath.WalkDir(p, func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				out = append(out, path)
			}
			return nil
		})
	}
	return out
}

// declaredInSource scans the Go tree for (a) top-level With*
// constructors in non-test files, in any package — docs legitimately
// reference both sfa.With* and engine.With* options — and (b) //sfa:
// analyzer annotations anywhere, analyzer fixtures included (the
// fixtures are the specification of each annotation's behaviour, so an
// annotation that exists only there is still real).
func declaredInSource(root string) (decls, annotations map[string]bool, err error) {
	decls, annotations = map[string]bool{}, map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		text := string(data)
		for _, ann := range directiveRe.FindAllString(text, -1) {
			annotations[ann] = true
		}
		if strings.HasSuffix(path, "_test.go") {
			return nil
		}
		for _, m := range declRe.FindAllStringSubmatch(text, -1) {
			decls[m[1]] = true
		}
		return nil
	})
	return decls, annotations, err
}
