// Command sfacache compiles a pattern to a serialized D-SFA file and
// matches inputs against such files without recompiling — the deployment
// answer to Table III, where D-SFA construction (seconds for 10⁴–10⁶
// states) dominates start-up.
//
// Usage:
//
//	sfacache -compile '([0-4]{50}[5-9]{50})*' -o r50.sfa
//	sfacache -load r50.sfa -match input.bin [-p 4]
//	sfacache -load r50.sfa -info
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/syntax"
)

func main() {
	compile := flag.String("compile", "", "pattern to compile")
	out := flag.String("o", "pattern.sfa", "output file for -compile")
	load := flag.String("load", "", "serialized D-SFA file to load")
	match := flag.String("match", "", "input file to match (with -load)")
	info := flag.Bool("info", false, "print automaton info (with -load)")
	threads := flag.Int("p", 2, "threads for matching")
	flag.Parse()

	switch {
	case *compile != "":
		node, err := syntax.Parse(*compile, 0)
		fail(err)
		start := time.Now()
		d, err := dfa.Compile(node, 0)
		fail(err)
		s, err := core.BuildDSFA(d, 0)
		fail(err)
		build := time.Since(start)
		f, err := os.Create(*out)
		fail(err)
		n, err := s.WriteTo(f)
		fail(err)
		fail(f.Close())
		fmt.Printf("compiled %q: |D|=%d |Sd|=%d in %v, wrote %d bytes to %s\n",
			*compile, d.LiveSize(), s.LiveSize(), build, n, *out)

	case *load != "":
		f, err := os.Open(*load)
		fail(err)
		start := time.Now()
		s, err := core.ReadDSFA(f)
		fail(err)
		fail(f.Close())
		fmt.Printf("loaded %s: |D|=%d |Sd|=%d in %v\n",
			*load, s.D.LiveSize(), s.LiveSize(), time.Since(start))
		if *info {
			fmt.Printf("classes=%d memory=%d KiB accept-states=%d\n",
				s.D.BC.Count, s.MemoryBytes()>>10, countTrue(s.Accept))
		}
		if *match != "" {
			data, err := os.ReadFile(*match)
			fail(err)
			m := engine.NewSFAParallel(s, *threads, engine.ReduceSequential)
			start = time.Now()
			ok := m.Match(data)
			dur := time.Since(start)
			fmt.Printf("match=%v %d bytes in %v (%.3f GB/s, p=%d)\n",
				ok, len(data), dur, float64(len(data))/dur.Seconds()/1e9, *threads)
			if !ok {
				os.Exit(1)
			}
		}

	default:
		fmt.Fprintln(os.Stderr, "usage: sfacache -compile PATTERN -o FILE | -load FILE [-match INPUT] [-info]")
		os.Exit(2)
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfacache: %v\n", err)
		os.Exit(1)
	}
}
