// Command sfacache compiles patterns and rule sets to serialized
// automaton files and matches inputs against them without recompiling —
// the deployment answer to Table III, where D-SFA construction (seconds
// for 10⁴–10⁶ states) dominates start-up.
//
// Single patterns (the original mode):
//
//	sfacache -compile '([0-4]{50}[5-9]{50})*' -o r50.sfa
//	sfacache -load r50.sfa -match input.bin [-p 4]
//	sfacache -load r50.sfa -info
//
// Rule sets (combined multi-pattern snapshots, sfagrep -f format):
//
//	sfacache -rules rules.txt -o rules.rsnap [-cache dir] [-whole]
//	sfacache -load rules.rsnap -info
//	sfacache -load rules.rsnap -match input.bin
//
// -load sniffs the file type from its magic, so one flag serves both
// formats. -cache points the compiler at a content-addressed shard
// cache directory: recompiling the same rules (or a rule file sharing
// shards with one compiled before) loads the hit shards from disk and
// builds only the misses. -info on a rule-set snapshot prints per-shard
// and per-rule statistics, including the persisted stable BuildID.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/syntax"
	"repro/sfa"
)

// snapshotMagicLen is how many bytes the rule-set sniff needs.
const snapshotMagicLen = 8

func main() {
	compile := flag.String("compile", "", "pattern to compile")
	rules := flag.String("rules", "", "rules file to compile into a rule-set snapshot")
	out := flag.String("o", "", "output file (-compile default pattern.sfa, -rules default rules.rsnap)")
	load := flag.String("load", "", "serialized automaton or rule-set snapshot to load")
	match := flag.String("match", "", "input file to match (with -load)")
	info := flag.Bool("info", false, "print automaton info (with -load)")
	threads := flag.Int("p", 2, "threads for matching")
	cacheDir := flag.String("cache", "", "content-addressed shard cache directory (with -rules)")
	whole := flag.Bool("whole", false, "with -rules: whole-input acceptance instead of substring search")
	flag.Parse()

	switch {
	case *compile != "":
		compilePattern(*compile, orDefault(*out, "pattern.sfa"))
	case *rules != "":
		compileRules(*rules, orDefault(*out, "rules.rsnap"), *cacheDir, *whole, *threads)
	case *load != "":
		loadFile(*load, *match, *info, *threads)
	default:
		fmt.Fprintln(os.Stderr, "usage: sfacache -compile PATTERN -o FILE | -rules FILE -o FILE [-cache DIR] | -load FILE [-match INPUT] [-info]")
		os.Exit(2)
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// compilePattern is the original single-pattern mode.
func compilePattern(pattern, out string) {
	node, err := syntax.Parse(pattern, 0)
	fail(err)
	start := time.Now()
	d, err := dfa.Compile(node, 0)
	fail(err)
	s, err := core.BuildDSFA(d, 0)
	fail(err)
	build := time.Since(start)
	f, err := os.Create(out)
	fail(err)
	n, err := s.WriteTo(f)
	fail(err)
	fail(f.Close())
	fmt.Printf("compiled %q: |D|=%d |Sd|=%d in %v, wrote %d bytes to %s\n",
		pattern, d.LiveSize(), s.LiveSize(), build, n, out)
}

// compileRules builds a combined rule set (optionally warming from /
// filling a shard cache) and writes its snapshot.
func compileRules(path, out, cacheDir string, whole bool, threads int) {
	f, err := os.Open(path)
	fail(err)
	defs, err := serve.ParseRules(f)
	f.Close()
	fail(err)

	opts := []sfa.Option{sfa.WithThreads(threads)}
	if !whole {
		opts = append(opts, sfa.WithSearch())
	}
	if cacheDir != "" {
		opts = append(opts, sfa.WithShardCache(cacheDir))
	}
	start := time.Now()
	rs, err := sfa.NewRuleSetFromDefs(defs, opts...)
	fail(err)
	build := time.Since(start)

	of, err := os.Create(out)
	fail(err)
	bw := bufio.NewWriter(of)
	fail(rs.Save(bw))
	fail(bw.Flush())
	fail(of.Close())
	st, err := os.Stat(out)
	fail(err)
	warm := 0
	for _, sh := range rs.Shards() {
		if sh.BuildID&(1<<63) != 0 {
			warm++
		}
	}
	fmt.Printf("compiled %d rules into %d shard(s) in %v (%d from cache), wrote %d KiB to %s\n",
		rs.Len(), rs.NumShards(), build, warm, st.Size()>>10, out)
}

// loadFile sniffs the file type and dispatches.
func loadFile(path, match string, info bool, threads int) {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(snapshotMagicLen)
	if err == nil && sfa.SniffRuleSetSnapshot(magic) {
		loadRuleSet(path, br, match, info, threads)
		return
	}
	loadPattern(path, br, match, info, threads)
}

// loadPattern handles the original single-pattern D-SFA files.
func loadPattern(path string, r *bufio.Reader, match string, info bool, threads int) {
	start := time.Now()
	s, err := core.ReadDSFA(r)
	fail(err)
	fmt.Printf("loaded %s: |D|=%d |Sd|=%d in %v\n",
		path, s.D.LiveSize(), s.LiveSize(), time.Since(start))
	if info {
		fmt.Printf("classes=%d memory=%d KiB accept-states=%d\n",
			s.D.BC.Count, s.MemoryBytes()>>10, countTrue(s.Accept))
	}
	if match != "" {
		data, err := os.ReadFile(match)
		fail(err)
		m := engine.NewSFAParallel(s, threads, engine.ReduceSequential)
		start = time.Now()
		ok := m.Match(data)
		dur := time.Since(start)
		fmt.Printf("match=%v %d bytes in %v (%.3f GB/s, p=%d)\n",
			ok, len(data), dur, float64(len(data))/dur.Seconds()/1e9, threads)
		if !ok {
			os.Exit(1)
		}
	}
}

// loadRuleSet handles rule-set snapshots.
func loadRuleSet(path string, r *bufio.Reader, match string, info bool, threads int) {
	start := time.Now()
	rs, err := sfa.LoadRuleSet(r, sfa.WithThreads(threads))
	fail(err)
	fmt.Printf("loaded %s: %d rules in %d shard(s) in %v\n",
		path, rs.Len(), rs.NumShards(), time.Since(start))
	if info {
		for i, sh := range rs.Shards() {
			fmt.Printf("  shard %d: |D|=%-6d |Sd|=%-7d layout=%-5s table %6d KiB  build=%016x  %d rule(s): %s\n",
				i, sh.DFAStates, sh.SFAStates, sh.Layout, sh.TableBytes>>10, sh.BuildID,
				len(sh.Rules), strings.Join(sh.Rules, " "))
		}
	}
	if match != "" {
		data, err := os.ReadFile(match)
		fail(err)
		start = time.Now()
		hits := rs.Scan(data, 0)
		dur := time.Since(start)
		fmt.Printf("%d bytes in %v (%.3f GB/s): %d rule(s) match\n",
			len(data), dur, float64(len(data))/dur.Seconds()/1e9, len(hits))
		for _, name := range hits {
			fmt.Println(name)
		}
		if len(hits) == 0 {
			os.Exit(1)
		}
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfacache: %v\n", err)
		os.Exit(1)
	}
}
