// Command sfabench regenerates the paper's figures and tables.
//
// Usage:
//
//	sfabench [flags] <experiment>...
//
// Experiments: fig3 fig6 fig7 fig8 fig9 fig10 table2 table3 facts
// ablation ruleset all
//
// Examples:
//
//	sfabench fig6                         # thread-scaling sweep for r5
//	sfabench -text-mb 256 fig8            # bigger input
//	sfabench -fig8-n 500 -table3full all  # full paper scale (needs ~8 GiB)
//	sfabench -layout i32 -pool=false fig6 # seed engine configuration
//	sfabench -layout class fig8           # byte-class table ablation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/harness"
)

func main() {
	var cfg harness.Config
	flag.IntVar(&cfg.TextMB, "text-mb", 64, "benchmark input size in MiB (paper: 1024)")
	flag.IntVar(&cfg.MaxThreads, "threads", 8, "maximum thread count in sweeps (paper: 12)")
	flag.IntVar(&cfg.Fig8N, "fig8-n", 150, "r_n exponent for Fig. 8/9 (paper: 500; needs ~4 GiB)")
	flag.BoolVar(&cfg.Table3Full, "table3full", false, "build the full r500 D-SFA in Table III / Table II")
	flag.IntVar(&cfg.SnortN, "snort-n", 2000, "Fig. 3 corpus size (paper: 20312)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "workload seed")
	flag.IntVar(&cfg.Repeats, "repeats", 3, "measurement repetitions (best kept)")
	layout := flag.String("layout", "auto", "transition-table layout: auto|u8|u16|i32|class")
	pool := flag.Bool("pool", true, "run matches on the persistent worker pool (false = spawn goroutines per Match, the paper's thread-creation semantics)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sfabench [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: fig3 fig6 fig7 fig8 fig9 fig10 table2 table3 facts ablation ruleset shapecheck all\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	cfg.Spawn = !*pool
	var err error
	if cfg.Layout, err = engine.ParseLayout(*layout); err != nil {
		fmt.Fprintf(os.Stderr, "sfabench: %v\n", err)
		os.Exit(2)
	}
	cfg.Out = os.Stdout

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	experiments := map[string]func() error{
		"fig3":       cfg.Fig3,
		"fig6":       cfg.Fig6,
		"fig7":       cfg.Fig7,
		"fig8":       cfg.Fig8,
		"fig9":       cfg.Fig9,
		"fig10":      cfg.Fig10,
		"table2":     cfg.Table2,
		"table3":     cfg.Table3,
		"facts":      cfg.Facts,
		"ablation":   cfg.Ablations,
		"shapecheck": cfg.ShapeCheck,
		"ruleset":    cfg.Ruleset,
	}
	order := []string{"fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "table2", "table3", "facts", "ablation", "ruleset", "shapecheck"}

	var queue []string
	for _, a := range args {
		if a == "all" {
			queue = append(queue, order...)
			continue
		}
		if _, ok := experiments[a]; !ok {
			fmt.Fprintf(os.Stderr, "sfabench: unknown experiment %q\n", a)
			os.Exit(2)
		}
		queue = append(queue, a)
	}
	for _, name := range queue {
		if err := experiments[name](); err != nil {
			fmt.Fprintf(os.Stderr, "sfabench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
