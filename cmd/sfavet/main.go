// Command sfavet is the repo's first-party static-analysis gate: a
// multichecker that runs the internal/lint analyzers over Go package
// patterns and fails when any invariant the codebase is built on is
// violated in source.
//
// The four analyzers and the prose invariants they mechanize:
//
//	atomicfield   — the atomic-access discipline of internal/obs and
//	                the engine attribution counters: a field accessed
//	                through sync/atomic anywhere must be accessed
//	                through sync/atomic everywhere.
//	hotpathalloc  — the zero-allocation contract of the streaming scan
//	                path (benchjson's -zero-alloc gate, made lexical):
//	                //sfa:noalloc functions must not contain
//	                allocation-inducing constructs.
//	pooldispatch  — the ROADMAP standing caveat: scan-path packages
//	                dispatch through engine.Pool; raw go statements
//	                need an //sfa:spawner annotation.
//	borrowedtable — the owned-vs-borrowed table regime of
//	                docs/memory-model.md: //sfa:borrowed parameters
//	                are read-only and unretained unless //sfa:adopts.
//
// Usage:
//
//	sfavet [-json] [-only=a,b] [packages]
//
// Packages default to ./... resolved from the current directory, so
// both `go run ./cmd/sfavet ./...` at the repo root and `sfavet ./...`
// from an embedding module's root work; editors can wire it as a
// save hook the same way. Exit status is 1 when any diagnostic is
// reported, 2 on operational failure.
//
// The annotation grammar is documented in docs/static-analysis.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/atomicfield"
	"repro/internal/lint/borrowedtable"
	"repro/internal/lint/hotpathalloc"
	"repro/internal/lint/load"
	"repro/internal/lint/pooldispatch"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sfavet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: sfavet [-json] [-only=a,b] [packages]\n\nanalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(args)

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfavet:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := load.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfavet:", err)
		return 2
	}
	broken := false
	for _, u := range units {
		for _, terr := range u.TypeErrors {
			fmt.Fprintf(os.Stderr, "sfavet: %s: %v\n", u.PkgPath, terr)
			broken = true
		}
	}
	if broken {
		return 2
	}
	diags := analysis.Run(units, selected)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "sfavet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// analyzers returns fresh instances of the full suite.
func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicfield.New(),
		borrowedtable.New(),
		hotpathalloc.New(),
		pooldispatch.New(pooldispatch.DefaultPackages...),
	}
}

// selectAnalyzers filters the suite by the -only flag.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := analyzers()
	if only == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: atomicfield, borrowedtable, hotpathalloc, pooldispatch)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
