// Command sfagen emits benchmark workloads to stdout: texts accepted by
// the paper's benchmark patterns, synthetic HTTP-ish traffic, or members
// of an arbitrary pattern's language.
//
// Usage:
//
//	sfagen -kind rn -n 5 -size 1048576       # r5-accepted text
//	sfagen -kind evenodd -size 1000000       # Fig. 10 text
//	sfagen -kind a -size 1048576             # Fig. 9 text
//	sfagen -kind traffic -size 1048576       # examples' traffic
//	sfagen -kind expr -expr '(ab)*' -size 64 # sampled member
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/dfa"
	"repro/internal/syntax"
	"repro/internal/textgen"
)

func main() {
	kind := flag.String("kind", "rn", "rn, evenodd, a, traffic, expr")
	n := flag.Int("n", 5, "r_n exponent (kind=rn)")
	size := flag.Int("size", 1<<20, "output size in bytes")
	seed := flag.Int64("seed", 1, "generator seed")
	expr := flag.String("expr", "", "pattern (kind=expr)")
	flag.Parse()

	var out []byte
	switch *kind {
	case "rn":
		out = textgen.RnText(*n, *size, *seed)
	case "evenodd":
		out = textgen.EvenOddText(*size, *seed)
	case "a":
		out = textgen.Repeat('a', *size)
	case "traffic":
		var planted int
		out, planted = textgen.Traffic{}.Generate(*size, *seed)
		fmt.Fprintf(os.Stderr, "sfagen: planted %d suspicious lines\n", planted)
	case "expr":
		if *expr == "" {
			fmt.Fprintln(os.Stderr, "sfagen: -kind expr needs -expr")
			os.Exit(2)
		}
		node, err := syntax.Parse(*expr, 0)
		fail(err)
		d, err := dfa.Compile(node, 0)
		fail(err)
		s, err := textgen.NewSampler(d, *size)
		fail(err)
		out = s.Sample(rand.New(rand.NewSource(*seed)), nil)
	default:
		fmt.Fprintf(os.Stderr, "sfagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	_, err := os.Stdout.Write(out)
	fail(err)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagen: %v\n", err)
		os.Exit(1)
	}
}
