// Command sfacodegen emits a self-contained Go source file with a
// specialized matcher for one pattern — the ahead-of-time analogue of the
// paper's Regen JIT compiler.
//
// Usage:
//
//	sfacodegen -expr '([0-4]{2}[5-9]{2})*' -pkg match -prefix Blocks > blocks_gen.go
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/syntax"
)

func main() {
	expr := flag.String("expr", "", "regular expression")
	pkg := flag.String("pkg", "match", "package name of the generated file")
	prefix := flag.String("prefix", "SFA", "identifier prefix")
	capFlag := flag.Int("sfa-cap", 50_000, "abort if the D-SFA exceeds this many states")
	flag.Parse()

	if *expr == "" {
		fmt.Fprintln(os.Stderr, "usage: sfacodegen -expr PATTERN [-pkg NAME] [-prefix P]")
		os.Exit(2)
	}
	node, err := syntax.Parse(*expr, 0)
	fail(err)
	d, err := dfa.Compile(node, 0)
	fail(err)
	s, err := core.BuildDSFA(d, *capFlag)
	fail(err)
	fail(codegen.Generate(os.Stdout, s, codegen.Options{
		Package: *pkg,
		Prefix:  *prefix,
		Pattern: *expr,
	}))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfacodegen: %v\n", err)
		os.Exit(1)
	}
}
