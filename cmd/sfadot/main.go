// Command sfadot renders the automata of a pattern in Graphviz DOT form —
// the tool behind the paper's Figs. 1, 2, 4, 5, 11 and 12.
//
// Usage:
//
//	sfadot -expr '(ab)*'            # minimal DFA (Fig. 1 for (ab)*)
//	sfadot -expr '(ab)*' -sfa       # D-SFA (Fig. 2)
//	sfadot -expr '(ab)*' -nfa       # Glushkov NFA
//	sfadot -expr '(ab)*' -table     # Table I-style mapping table
//	sfadot -expr '(ab)*' -show-dead # include sink states
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/dot"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

func main() {
	expr := flag.String("expr", "", "regular expression")
	renderNFA := flag.Bool("nfa", false, "render the Glushkov NFA")
	renderSFA := flag.Bool("sfa", false, "render the D-SFA")
	renderTable := flag.Bool("table", false, "print the Table I-style state mappings")
	showDead := flag.Bool("show-dead", false, "include the dead sink")
	sfaCap := flag.Int("sfa-cap", 10000, "abort if the D-SFA exceeds this many states")
	flag.Parse()

	if *expr == "" {
		fmt.Fprintln(os.Stderr, "usage: sfadot -expr PATTERN [-nfa|-sfa|-table] [-show-dead]")
		os.Exit(2)
	}
	node, err := syntax.Parse(*expr, 0)
	fail(err)
	a, err := nfa.Glushkov(node)
	fail(err)
	if *renderNFA {
		fmt.Print(dot.NFA(a, *expr))
		return
	}
	d0, err := dfa.Determinize(a, 0)
	fail(err)
	d := dfa.Minimize(d0)
	if *renderSFA || *renderTable {
		s, err := core.BuildDSFA(d, *sfaCap)
		fail(err)
		if *renderTable {
			fmt.Print(dot.MappingTable(s))
			return
		}
		fmt.Print(dot.DSFA(s, *expr, !*showDead))
		return
	}
	fmt.Print(dot.DFA(d, *expr, !*showDead))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfadot: %v\n", err)
		os.Exit(1)
	}
}
