// Command sfagrep matches a pattern against a file (or stdin) with any of
// the engines, reporting the verdict and throughput. By default it uses
// substring-search semantics like grep; -whole switches to the paper's
// whole-input acceptance.
//
// With -f the pattern argument is replaced by a rules file — one rule
// per line, `name pattern` or bare `pattern`, # comments — compiled into
// a combined multi-pattern D-SFA (sharded on state-budget blow-up) and
// scanned in one pooled pass per shard; matching rule names are printed.
//
// Usage:
//
//	sfagrep [-engine sfa|lazy|dfa|spec|nfa] [-p N] [-whole] pattern [file]
//	sfagrep -f rules [-isolated] [-shards K] [file]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/sfa"
)

func main() {
	engine := flag.String("engine", "sfa", "engine: sfa, lazy, dfa, spec, nfa")
	threads := flag.Int("p", 0, "threads (0 = GOMAXPROCS)")
	whole := flag.Bool("whole", false, "whole-input acceptance instead of substring search")
	fold := flag.Bool("i", false, "case-insensitive")
	dotall := flag.Bool("s", false, "dot matches newline")
	stats := flag.Bool("stats", false, "print automata sizes and throughput")
	rulesFile := flag.String("f", "", "rules file: one `name pattern` (or bare pattern) per line")
	isolated := flag.Bool("isolated", false, "with -f: one engine per rule instead of the combined automaton")
	shards := flag.Int("shards", 0, "with -f: force K combined shards (0 = automatic)")
	flag.Parse()

	wantArgs := 1
	if *rulesFile != "" {
		wantArgs = 0
	}
	if flag.NArg() < wantArgs || flag.NArg() > wantArgs+1 {
		fmt.Fprintln(os.Stderr, "usage: sfagrep [flags] pattern [file]  |  sfagrep -f rules [file]")
		os.Exit(2)
	}

	var data []byte
	var err error
	if flag.NArg() == wantArgs+1 {
		data, err = os.ReadFile(flag.Arg(wantArgs))
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}

	opts := []sfa.Option{sfa.WithThreads(*threads)}
	var flags sfa.Flag
	if *fold {
		flags |= sfa.FoldCase
	}
	if *dotall {
		flags |= sfa.DotAll
	}
	opts = append(opts, sfa.WithFlags(flags))
	if !*whole {
		opts = append(opts, sfa.WithSearch())
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(2)
	}
	// A non-SFA engine makes RuleSet fall back to per-rule engines — the
	// right call for e.g. `-engine lazy -f rules` on blow-up-prone rules.
	opts = append(opts, sfa.WithEngine(eng))

	if *rulesFile != "" {
		scanRules(*rulesFile, data, opts, *isolated, *shards, *stats)
		return
	}
	pattern := flag.Arg(0)

	re, err := sfa.Compile(pattern, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}

	start := time.Now()
	matched := re.Match(data)
	elapsed := time.Since(start)

	if *stats {
		s := re.Sizes()
		fmt.Printf("engine=%s |N|=%d |D|=%d |Sd|=%d classes=%d\n",
			re.EngineName(), s.NFAStates, s.DFALive, s.SFALive, s.Classes)
		fmt.Printf("%d bytes in %v (%.3f GB/s)\n",
			len(data), elapsed, float64(len(data))/elapsed.Seconds()/1e9)
	}
	if matched {
		fmt.Println("match")
		return
	}
	fmt.Println("no match")
	os.Exit(1)
}

// parseEngine maps the -engine flag to an engine.
func parseEngine(name string) (sfa.Engine, error) {
	switch name {
	case "sfa":
		return sfa.EngineSFA, nil
	case "lazy":
		return sfa.EngineLazySFA, nil
	case "dfa":
		return sfa.EngineDFA, nil
	case "spec":
		return sfa.EngineSpecDFA, nil
	case "nfa":
		return sfa.EngineNFA, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

// scanRules is the -f mode: compile the rules file into a RuleSet and
// report every matching rule. opts carries the shared flags, including
// the engine choice (non-SFA engines select per-rule matching).
func scanRules(path string, data []byte, opts []sfa.Option, isolated bool, shards int, stats bool) {
	defs, err := loadRules(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}

	if isolated {
		opts = append(opts, sfa.WithIsolatedRules())
	}
	if shards > 0 {
		opts = append(opts, sfa.WithShards(shards))
	}

	buildStart := time.Now()
	rs, err := sfa.NewRuleSetFromDefs(defs, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}
	build := time.Since(buildStart)

	start := time.Now()
	hits := rs.Scan(data, 0)
	elapsed := time.Since(start)

	if stats {
		fmt.Printf("%d rules in %d shard(s), built in %v\n", rs.Len(), rs.NumShards(), build.Round(time.Millisecond))
		for i, sh := range rs.Shards() {
			fmt.Printf("  shard %d: |D|=%-6d |Sd|=%-7d layout=%-5s table %6d KiB  %d rule(s)\n",
				i, sh.DFAStates, sh.SFAStates, sh.Layout, sh.TableBytes>>10, len(sh.Rules))
		}
		fmt.Printf("%d bytes in %v (%.3f GB/s)\n",
			len(data), elapsed, float64(len(data))/elapsed.Seconds()/1e9)
	}
	for _, name := range hits {
		fmt.Println(name)
	}
	if len(hits) == 0 {
		os.Exit(1)
	}
}

// loadRules parses a rules file: one rule per line, `name pattern` or a
// bare pattern (auto-named rNNN by line); blank lines and # comments are
// skipped.
func loadRules(path string) ([]sfa.RuleDef, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var defs []sfa.RuleDef
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, pattern, ok := strings.Cut(line, " ")
		if !ok || strings.ContainsAny(name, `\[(.?*+{^$|`) {
			// No separator, or the "name" looks like regex syntax: the
			// whole line is the pattern.
			name, pattern = fmt.Sprintf("r%03d", lineno), line
		}
		defs = append(defs, sfa.RuleDef{Name: name, Pattern: strings.TrimSpace(pattern)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return defs, nil
}
