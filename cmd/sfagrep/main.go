// Command sfagrep matches a pattern against a file (or stdin) with any of
// the engines, reporting the verdict and throughput. By default it uses
// substring-search semantics like grep; -whole switches to the paper's
// whole-input acceptance.
//
// Usage:
//
//	sfagrep [-engine sfa|lazy|dfa|spec|nfa] [-p N] [-whole] pattern [file]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/sfa"
)

func main() {
	engine := flag.String("engine", "sfa", "engine: sfa, lazy, dfa, spec, nfa")
	threads := flag.Int("p", 0, "threads (0 = GOMAXPROCS)")
	whole := flag.Bool("whole", false, "whole-input acceptance instead of substring search")
	fold := flag.Bool("i", false, "case-insensitive")
	dotall := flag.Bool("s", false, "dot matches newline")
	stats := flag.Bool("stats", false, "print automata sizes and throughput")
	flag.Parse()

	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: sfagrep [flags] pattern [file]")
		os.Exit(2)
	}
	pattern := flag.Arg(0)

	var data []byte
	var err error
	if flag.NArg() == 2 {
		data, err = os.ReadFile(flag.Arg(1))
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}

	opts := []sfa.Option{sfa.WithThreads(*threads)}
	var flags sfa.Flag
	if *fold {
		flags |= sfa.FoldCase
	}
	if *dotall {
		flags |= sfa.DotAll
	}
	opts = append(opts, sfa.WithFlags(flags))
	if !*whole {
		opts = append(opts, sfa.WithSearch())
	}
	switch *engine {
	case "sfa":
		opts = append(opts, sfa.WithEngine(sfa.EngineSFA))
	case "lazy":
		opts = append(opts, sfa.WithEngine(sfa.EngineLazySFA))
	case "dfa":
		opts = append(opts, sfa.WithEngine(sfa.EngineDFA))
	case "spec":
		opts = append(opts, sfa.WithEngine(sfa.EngineSpecDFA))
	case "nfa":
		opts = append(opts, sfa.WithEngine(sfa.EngineNFA))
	default:
		fmt.Fprintf(os.Stderr, "sfagrep: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	re, err := sfa.Compile(pattern, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}

	start := time.Now()
	matched := re.Match(data)
	elapsed := time.Since(start)

	if *stats {
		s := re.Sizes()
		fmt.Printf("engine=%s |N|=%d |D|=%d |Sd|=%d classes=%d\n",
			re.EngineName(), s.NFAStates, s.DFALive, s.SFALive, s.Classes)
		fmt.Printf("%d bytes in %v (%.3f GB/s)\n",
			len(data), elapsed, float64(len(data))/elapsed.Seconds()/1e9)
	}
	if matched {
		fmt.Println("match")
		return
	}
	fmt.Println("no match")
	os.Exit(1)
}
