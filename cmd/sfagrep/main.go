// Command sfagrep matches a pattern against a file (or stdin) with any of
// the engines, reporting the verdict and throughput. By default it uses
// substring-search semantics like grep; -whole switches to the paper's
// whole-input acceptance.
//
// Input is scanned in streamed chunks through the SFA's carried-mapping
// protocol (sfa.Stream / sfa.RuleStream), so arbitrarily large files and
// unbounded stdin pipes match in constant memory; only the non-streaming
// engines (-engine lazy|dfa|spec|nfa) fall back to buffering the input.
//
// With -f the pattern argument is replaced by a rules file — one rule
// per line, `name pattern` or bare `pattern`, # comments — compiled into
// a combined multi-pattern D-SFA (sharded on state-budget blow-up) and
// scanned in one pooled pass per shard; matching rule names are printed.
// Patterns written /…/i, /…/s, or /…/is carry per-rule flags (the SNORT
// pcre convention, shared with sfaserve's tenant endpoints); a *literal*
// pattern of that exact shape must be written as (?:/…/s) to suppress
// the flag reading.
//
// Usage:
//
//	sfagrep [-engine sfa|lazy|dfa|spec|nfa] [-p N] [-whole] pattern [file]
//	sfagrep -f rules [-isolated] [-shards K] [-cache dir] [file]
//
// -cache points the combined compiler at a content-addressed shard
// cache directory: the first run stores every compiled shard, repeated
// runs over the same rules load them instead of rebuilding (-stats shows
// the build time collapse).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/serve"
	"repro/sfa"
)

// chunkSize is the streaming read granularity: large enough to engage
// the engines' parallel chunk path, small enough to keep memory flat.
const chunkSize = 256 << 10

// streamInto copies r into the stream in chunkSize chunks. The src is
// wrapped to hide *os.File's WriterTo, which io.CopyBuffer would
// otherwise prefer — streaming at its own smaller granularity and never
// touching the tuned buffer.
func streamInto(w io.Writer, r io.Reader) (int64, error) {
	return io.CopyBuffer(w, struct{ io.Reader }{r}, make([]byte, chunkSize))
}

func main() {
	engine := flag.String("engine", "sfa", "engine: sfa, lazy, dfa, spec, nfa")
	threads := flag.Int("p", 0, "threads (0 = GOMAXPROCS)")
	whole := flag.Bool("whole", false, "whole-input acceptance instead of substring search")
	fold := flag.Bool("i", false, "case-insensitive")
	dotall := flag.Bool("s", false, "dot matches newline")
	stats := flag.Bool("stats", false, "print automata sizes and throughput")
	rulesFile := flag.String("f", "", "rules file: one `name pattern` (or bare pattern) per line")
	isolated := flag.Bool("isolated", false, "with -f: one engine per rule instead of the combined automaton")
	shards := flag.Int("shards", 0, "with -f: force K combined shards (0 = automatic)")
	cacheDir := flag.String("cache", "", "with -f: content-addressed shard cache directory (repeated runs skip construction)")
	noPrefilter := flag.Bool("no-prefilter", false, "with -f: disable the literal prefilter cascade (A/B baseline)")
	flag.Parse()

	wantArgs := 1
	if *rulesFile != "" {
		wantArgs = 0
	}
	if flag.NArg() < wantArgs || flag.NArg() > wantArgs+1 {
		fmt.Fprintln(os.Stderr, "usage: sfagrep [flags] pattern [file]  |  sfagrep -f rules [file]")
		os.Exit(2)
	}

	input := io.Reader(os.Stdin)
	if flag.NArg() == wantArgs+1 {
		f, err := os.Open(flag.Arg(wantArgs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		input = f
	}

	opts := []sfa.Option{sfa.WithThreads(*threads)}
	var flags sfa.Flag
	if *fold {
		flags |= sfa.FoldCase
	}
	if *dotall {
		flags |= sfa.DotAll
	}
	opts = append(opts, sfa.WithFlags(flags))
	if !*whole {
		opts = append(opts, sfa.WithSearch())
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(2)
	}
	// A non-SFA engine makes RuleSet fall back to per-rule engines — the
	// right call for e.g. `-engine lazy -f rules` on blow-up-prone rules.
	opts = append(opts, sfa.WithEngine(eng))

	if *rulesFile != "" {
		if *cacheDir != "" {
			opts = append(opts, sfa.WithShardCache(*cacheDir))
		}
		if *noPrefilter {
			opts = append(opts, sfa.WithoutPrefilter())
		}
		scanRules(*rulesFile, input, opts, *isolated, *shards, *stats)
		return
	}
	pattern := flag.Arg(0)

	re, err := sfa.Compile(pattern, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}

	var matched bool
	var n int64
	start := time.Now()
	if st, serr := re.NewStream(); serr == nil {
		// The default path: chunked streaming, constant memory.
		if n, err = streamInto(st, input); err != nil {
			fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
			os.Exit(1)
		}
		matched = st.Accepted()
	} else {
		// Engines without a carried-mapping protocol buffer the input.
		data, rerr := io.ReadAll(input)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "sfagrep: %v\n", rerr)
			os.Exit(1)
		}
		n = int64(len(data))
		matched = re.Match(data)
	}
	elapsed := time.Since(start)

	if *stats {
		s := re.Sizes()
		fmt.Printf("engine=%s |N|=%d |D|=%d |Sd|=%d classes=%d\n",
			re.EngineName(), s.NFAStates, s.DFALive, s.SFALive, s.Classes)
		fmt.Printf("%d bytes in %v (%.3f GB/s)\n",
			n, elapsed, float64(n)/elapsed.Seconds()/1e9)
	}
	if matched {
		fmt.Println("match")
		return
	}
	fmt.Println("no match")
	os.Exit(1)
}

// parseEngine maps the -engine flag to an engine.
func parseEngine(name string) (sfa.Engine, error) {
	switch name {
	case "sfa":
		return sfa.EngineSFA, nil
	case "lazy":
		return sfa.EngineLazySFA, nil
	case "dfa":
		return sfa.EngineDFA, nil
	case "spec":
		return sfa.EngineSpecDFA, nil
	case "nfa":
		return sfa.EngineNFA, nil
	}
	return 0, fmt.Errorf("unknown engine %q", name)
}

// scanRules is the -f mode: compile the rules file into a RuleSet and
// report every matching rule, consuming the input in streamed chunks.
// opts carries the shared flags, including the engine choice (non-SFA
// engines select per-rule matching and buffer the input instead).
func scanRules(path string, input io.Reader, opts []sfa.Option, isolated bool, shards int, stats bool) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}
	defs, err := serve.ParseRules(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}

	if isolated {
		opts = append(opts, sfa.WithIsolatedRules())
	}
	if shards > 0 {
		opts = append(opts, sfa.WithShards(shards))
	}

	buildStart := time.Now()
	rs, err := sfa.NewRuleSetFromDefs(defs, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
		os.Exit(1)
	}
	build := time.Since(buildStart)

	var hits []string
	var n int64
	start := time.Now()
	if st, serr := rs.NewStream(); serr == nil {
		if n, err = streamInto(st, input); err != nil {
			fmt.Fprintf(os.Stderr, "sfagrep: %v\n", err)
			os.Exit(1)
		}
		hits = st.Matches()
	} else {
		data, rerr := io.ReadAll(input)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "sfagrep: %v\n", rerr)
			os.Exit(1)
		}
		n = int64(len(data))
		hits = rs.Scan(data, 0)
	}
	elapsed := time.Since(start)

	if stats {
		fmt.Printf("%d rules in %d shard(s), built in %v\n", rs.Len(), rs.NumShards(), build.Round(time.Millisecond))
		for i, sh := range rs.Shards() {
			fmt.Printf("  shard %d: |D|=%-6d |Sd|=%-7d layout=%-5s table %6d KiB  prefilter=%-6s %d rule(s)\n",
				i, sh.DFAStates, sh.SFAStates, sh.Layout, sh.TableBytes>>10, sh.Prefilter, len(sh.Rules))
		}
		if pf := rs.PrefilterStats(); pf.Enabled {
			fmt.Printf("prefilter: stage=%s literals=%d covered=%d/%d chunks skipped=%d scanned=%d",
				pf.Stage, pf.Literals, pf.RulesCovered, pf.RulesCovered+pf.RulesUncovered,
				pf.ChunksSkipped, pf.ChunksScanned)
			if pf.TotalBytes > 0 {
				fmt.Printf(" candidate bytes %d/%d (%.1f%%)",
					pf.CandidateBytes, pf.TotalBytes, 100*float64(pf.CandidateBytes)/float64(pf.TotalBytes))
			}
			fmt.Println()
		}
		fmt.Printf("%d bytes in %v (%.3f GB/s)\n",
			n, elapsed, float64(n)/elapsed.Seconds()/1e9)
	}
	for _, name := range hits {
		fmt.Println(name)
	}
	if len(hits) == 0 {
		os.Exit(1)
	}
}
