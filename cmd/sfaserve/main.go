// Command sfaserve is the multi-tenant rule-set matching server: many
// named tenants, each an independently hot-reloadable rule set, all
// sharing one process-wide worker pool. Scan request bodies are matched
// in streamed chunks — constant memory per request, any payload size.
//
// Usage:
//
//	sfaserve [-addr :8261] [-p N] [-whole] [-shard-budget N]
//	         [-lazy] [-table-budget BYTES] [-tenant-table-budget BYTES]
//	         [-state-dir DIR] [-pprof] [-max-rule-bytes N] [-max-scan-bytes N]
//	         [-log-format text|json] [-slow-scan-ms N] [-flight-records N]
//	         [tenant=rulesfile ...]
//
// Logging is structured (log/slog); -log-format json emits one JSON
// object per line for log shippers. -slow-scan-ms N logs a per-stage
// trace (body-read vs match wall time, chunk counts, engine compose
// time, prefilter skips) for every scan taking at least N ms — the
// first place to look when a tenant reports latency. N < 0 traces
// every scan.
//
// Independent of the slow-scan log, every completed scan leaves one
// fixed-size record in the in-memory flight recorder — tenant, size,
// and the per-stage wall-time split — readable at /debug/scans.
// -flight-records N sizes the ring (default 256, rounded up to a power
// of two; 0 disables). Recording is wait-free and allocation-free, so
// there is no reason to disable it other than the few KiB it holds.
//
// With -lazy, rules whose combined automaton the eager builder cannot
// afford are compiled into lazy shards: product states materialize on
// demand during scanning and stay under -table-budget bytes process-wide
// (0 = unlimited), with each tenant further bounded by
// -tenant-table-budget. When the budget fills, the least-recently-
// scanned lazy automaton is reset and rebuilds from traffic. Verdicts
// never change — only construction strategy and memory. /metrics reports
// the hub-wide and per-tenant resident bytes, fills, and evictions.
//
// Request bodies are hard-capped: rule uploads at -max-rule-bytes
// (default 8 MiB — rule files are parsed into memory) and scan payloads
// at -max-scan-bytes (default 4 GiB — scans stream in constant memory,
// the cap only bounds abuse). Oversized bodies get 413.
//
// With -state-dir the server persists every tenant's rule text and
// compiled snapshot (plus a content-addressed shard cache) through each
// reload, and a restarted server restores its tenants warm — decoded
// automata instead of recompiled ones, observable through the stable
// top-bit ShardInfo.BuildIDs in tenant stats. On SIGINT/SIGTERM it
// stops accepting, drains in-flight streamed scans via Ruleboard
// generation pinning, re-persists state, and exits 0.
//
// Each positional argument preloads a tenant from a rules file (same
// format as sfagrep -f: one `name pattern` or bare pattern per line,
// # comments). The HTTP API:
//
//	GET    /healthz                   liveness
//	GET    /metrics                   JSON counters; Prometheus text with
//	                                  ?format=prometheus or Accept: text/plain
//	GET    /debug/scans               flight recorder: last N scan records (?n=)
//	GET    /debug/attribution         per-shard cost, rule heat, speculation report
//	GET    /debug/pprof/*             Go profiling (opt-in via -pprof)
//	GET    /v1/tenants                list tenants with shard stats
//	PUT    /v1/tenants/{name}         create or hot-reload (body: rules file)
//	GET    /v1/tenants/{name}         one tenant's stats
//	DELETE /v1/tenants/{name}         remove a tenant
//	POST   /v1/tenants/{name}/scan    scan the request body, streamed
//
// Example session:
//
//	sfaserve -state-dir /var/lib/sfaserve &
//	curl -X PUT --data-binary @rules.txt localhost:8261/v1/tenants/ids
//	curl -X POST --data-binary @payload.bin localhost:8261/v1/tenants/ids/scan
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/sfa"
)

// drainTimeout bounds how long shutdown waits for in-flight scans.
const drainTimeout = 30 * time.Second

// serverConfig is everything run needs; the tests drive run directly
// with a synthetic shutdown channel instead of signals.
type serverConfig struct {
	addr         string
	stateDir     string
	pprof        bool
	maxRuleBytes int64
	maxScanBytes int64
	preloads     []string
	opts         []sfa.Option

	// logger receives operational messages and slow-scan traces; nil
	// defaults to a text handler on stderr. slowScanMs enables the scan
	// handler's per-stage trace: > 0 is the threshold in milliseconds,
	// < 0 traces every scan, 0 disables.
	logger     *slog.Logger
	slowScanMs int64

	// flightRecords sizes the /debug/scans ring (0 disables recording).
	flightRecords int

	// lazy compilation: tableBudget bounds all tenants' lazy shards
	// process-wide, tenantBudget each tenant (both 0 = unlimited); only
	// consulted when lazy is set.
	lazy         bool
	tableBudget  int64
	tenantBudget int64
}

func main() {
	addr := flag.String("addr", ":8261", "listen address")
	threads := flag.Int("p", 0, "chunk parallelism per scan (0 = GOMAXPROCS)")
	whole := flag.Bool("whole", false, "whole-input acceptance instead of substring search")
	budget := flag.Int("shard-budget", 0, "per-shard D-SFA state budget (0 = default)")
	stateDir := flag.String("state-dir", "", "persist tenants (rules + compiled snapshots) here; warm-restores them on boot")
	pprofFlag := flag.Bool("pprof", false, "mount /debug/pprof/* (profiles expose resident rules/payloads — enable only on trusted networks)")
	maxRuleBytes := flag.Int64("max-rule-bytes", serve.DefaultMaxRuleBytes, "maximum rule-upload body size (413 beyond)")
	maxScanBytes := flag.Int64("max-scan-bytes", serve.DefaultMaxScanBytes, "maximum scan body size (413 beyond)")
	noPrefilter := flag.Bool("no-prefilter", false, "disable the literal prefilter cascade on every tenant (A/B baseline)")
	lazy := flag.Bool("lazy", false, "compile unaffordable rules into lazy shards (on-demand product states under the table budget)")
	tableBudget := flag.Int64("table-budget", 0, "with -lazy: process-wide byte budget for lazy shards' resident states (0 = unlimited)")
	tenantBudget := flag.Int64("tenant-table-budget", 0, "per-tenant byte budget for lazy shards (0 = only the process-wide budget binds)")
	logFormat := flag.String("log-format", "text", "log output format: text or json (one object per line)")
	slowScanMs := flag.Int64("slow-scan-ms", 0, "log a per-stage trace for scans taking at least N ms (0 = off, negative = every scan)")
	flightRecords := flag.Int("flight-records", serve.DefaultFlightRecords, "scan flight-recorder capacity for /debug/scans (rounded up to a power of two, 0 = off)")
	flag.Parse()

	var lh slog.Handler
	switch *logFormat {
	case "json":
		lh = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		lh = slog.NewTextHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "sfaserve: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(lh)

	opts := []sfa.Option{sfa.WithThreads(*threads)}
	if !*whole {
		opts = append(opts, sfa.WithSearch())
	}
	if *budget > 0 {
		opts = append(opts, sfa.WithShardStateBudget(*budget))
	}
	if *noPrefilter {
		opts = append(opts, sfa.WithoutPrefilter())
	}
	if *lazy {
		opts = append(opts, sfa.WithLazyCompile())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := serverConfig{
		addr: *addr, stateDir: *stateDir, pprof: *pprofFlag,
		maxRuleBytes: *maxRuleBytes, maxScanBytes: *maxScanBytes,
		preloads: flag.Args(), opts: opts,
		logger: logger, slowScanMs: *slowScanMs, flightRecords: *flightRecords,
		lazy: *lazy, tableBudget: *tableBudget, tenantBudget: *tenantBudget,
	}
	if err := run(cfg, nil, ctx.Done()); err != nil {
		fmt.Fprintf(os.Stderr, "sfaserve: %v\n", err)
		os.Exit(1)
	}
}

// run builds the hub (restoring persisted tenants when a state dir is
// configured), preloads tenants, and serves until the listener fails or
// shutdown closes. ready, if non-nil, receives the bound address once
// the server is listening. A shutdown-initiated exit returns nil after
// the graceful sequence: stop accepting → drain pinned scans → persist.
func run(cfg serverConfig, ready chan<- string, shutdown <-chan struct{}) error {
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	hub := serve.NewHub(cfg.opts...)
	if cfg.flightRecords != serve.DefaultFlightRecords {
		hub.SetFlightRecords(cfg.flightRecords)
	}
	if cfg.lazy {
		hub.SetTableBudget(sfa.NewTableBudget(cfg.tableBudget), cfg.tenantBudget)
	}
	if cfg.stateDir != "" {
		st, err := serve.OpenState(cfg.stateDir)
		if err != nil {
			return err
		}
		hub.SetState(st)
		stats, err := hub.Restore()
		if err != nil {
			return fmt.Errorf("restoring %s: %w", cfg.stateDir, err)
		}
		if stats.Tenants > 0 || len(stats.Failed) > 0 {
			logger.Info("state restored",
				slog.String("dir", cfg.stateDir),
				slog.Int("tenants", stats.Tenants),
				slog.Int("warm", stats.Warm),
				slog.Int("rebuilt", stats.Rebuilt),
				slog.Int("cold", stats.Cold),
				slog.Int("failed", len(stats.Failed)))
		}
	}
	for _, spec := range cfg.preloads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad preload %q (want tenant=rulesfile)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defs, err := serve.ParseRules(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		_, b, _, err := hub.SetRules(name, defs)
		if err != nil {
			return fmt.Errorf("tenant %s: %w", name, err)
		}
		br := b.RuleSet().BuildReport()
		logger.Info("tenant loaded",
			slog.String("tenant", name),
			slog.Int("rules", b.RuleSet().Len()),
			slog.Int("shards", b.RuleSet().NumShards()),
			slog.Int("cache_hits", br.CacheHits),
			slog.Int("built", br.Built),
			slog.Int64("build_ms", br.TotalNs/1e6))
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Info("listening", slog.String("addr", ln.Addr().String()), slog.Int("tenants", len(hub.Names())))
	if ready != nil {
		ready <- ln.Addr().String()
	}
	hopts := []serve.HandlerOption{
		serve.WithRuleBodyLimit(cfg.maxRuleBytes),
		serve.WithScanBodyLimit(cfg.maxScanBytes),
	}
	if cfg.pprof {
		hopts = append(hopts, serve.WithProfiling())
	}
	if cfg.slowScanMs != 0 {
		hopts = append(hopts, serve.WithSlowScanLog(logger, time.Duration(cfg.slowScanMs)*time.Millisecond))
	}
	srv := &http.Server{Handler: serve.NewHandler(hub, hopts...)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-shutdown:
	}

	// Graceful sequence: Shutdown stops the listener and waits for
	// in-flight handlers; Drain double-checks via generation pinning
	// that no streamed scan is still writing; then state is mirrored
	// one last time and the process exits 0.
	logger.Info("shutting down: draining in-flight scans")
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("shutdown", slog.Any("err", err))
	}
	if err := hub.Drain(ctx); err != nil {
		logger.Warn("drain", slog.Any("err", err))
	}
	hub.PersistAll()
	logger.Info("bye")
	return nil
}
