// Command sfaserve is the multi-tenant rule-set matching server: many
// named tenants, each an independently hot-reloadable rule set, all
// sharing one process-wide worker pool. Scan request bodies are matched
// in streamed chunks — constant memory per request, any payload size.
//
// Usage:
//
//	sfaserve [-addr :8261] [-p N] [-whole] [-shard-budget N] [tenant=rulesfile ...]
//
// Each positional argument preloads a tenant from a rules file (same
// format as sfagrep -f: one `name pattern` or bare pattern per line,
// # comments). The HTTP API:
//
//	GET    /healthz                   liveness
//	GET    /v1/tenants                list tenants with shard stats
//	PUT    /v1/tenants/{name}         create or hot-reload (body: rules file)
//	GET    /v1/tenants/{name}         one tenant's stats
//	DELETE /v1/tenants/{name}         remove a tenant
//	POST   /v1/tenants/{name}/scan    scan the request body, streamed
//
// Example session:
//
//	sfaserve &
//	curl -X PUT --data-binary @rules.txt localhost:8261/v1/tenants/ids
//	curl -X POST --data-binary @payload.bin localhost:8261/v1/tenants/ids/scan
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/serve"
	"repro/sfa"
)

func main() {
	addr := flag.String("addr", ":8261", "listen address")
	threads := flag.Int("p", 0, "chunk parallelism per scan (0 = GOMAXPROCS)")
	whole := flag.Bool("whole", false, "whole-input acceptance instead of substring search")
	budget := flag.Int("shard-budget", 0, "per-shard D-SFA state budget (0 = default)")
	flag.Parse()

	opts := []sfa.Option{sfa.WithThreads(*threads)}
	if !*whole {
		opts = append(opts, sfa.WithSearch())
	}
	if *budget > 0 {
		opts = append(opts, sfa.WithShardStateBudget(*budget))
	}

	if err := run(*addr, flag.Args(), opts, nil); err != nil {
		fmt.Fprintf(os.Stderr, "sfaserve: %v\n", err)
		os.Exit(1)
	}
}

// run builds the hub, preloads tenants, and serves until the listener
// fails. ready, if non-nil, receives the bound address once the server
// is listening (the smoke test uses it with addr ":0").
func run(addr string, preloads []string, opts []sfa.Option, ready chan<- string) error {
	hub := serve.NewHub(opts...)
	for _, spec := range preloads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad preload %q (want tenant=rulesfile)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defs, err := serve.ParseRules(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		_, b, _, err := hub.SetRules(name, defs)
		if err != nil {
			return fmt.Errorf("tenant %s: %w", name, err)
		}
		log.Printf("tenant %s: %d rules in %d shard(s)", name, b.RuleSet().Len(), b.RuleSet().NumShards())
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s (%d tenants preloaded)", ln.Addr(), len(preloads))
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return http.Serve(ln, serve.NewHandler(hub))
}
