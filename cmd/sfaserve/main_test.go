package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/sfa"
)

// TestServeSmoke boots the real server binary's serve loop on a free
// port, preloads a tenant from a rules file, scans, hot-reloads under a
// concurrent scan, and deletes — the `make serve-smoke` CI gate.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rules, []byte("passwd /etc/passwd\ncmd (cmd|command)\\.exe\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run("127.0.0.1:0", []string{"ids=" + rules}, []sfa.Option{sfa.WithSearch(), sfa.WithThreads(2)}, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	get := func(path string, want int) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body := readAll(t, resp)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: %d (want %d): %s", path, resp.StatusCode, want, body)
		}
		return body
	}

	get("/healthz", http.StatusOK)

	// Preloaded tenant answers scans.
	scan := func(tenant, body string) []string {
		t.Helper()
		resp, err := http.Post(base+"/v1/tenants/"+tenant+"/scan", "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan status %d", resp.StatusCode)
		}
		var reply struct {
			Matches []string `json:"matches"`
		}
		if err := json.Unmarshal([]byte(readAll(t, resp)), &reply); err != nil {
			t.Fatal(err)
		}
		return reply.Matches
	}
	if got := scan("ids", "GET /etc/passwd HTTP/1.1"); len(got) != 1 || got[0] != "passwd" {
		t.Fatalf("scan verdict %v", got)
	}

	// Hot reload over HTTP while a scan loop runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			scan("ids", "nothing here")
		}
	}()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/tenants/ids",
		strings.NewReader("passwd /etc/passwd\ncmd (cmd|command)\\.exe\nnew xp_cmdshell\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	resp.Body.Close()
	<-done
	if got := scan("ids", "EXEC xp_cmdshell 'dir'"); len(got) != 1 || got[0] != "new" {
		t.Fatalf("post-reload verdict %v", got)
	}

	// Lifecycle.
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/tenants/ids", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v / %v", err, resp)
	}
	get("/v1/tenants/ids", http.StatusNotFound)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
