package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/sfa"
)

// TestServeSmoke boots the real server binary's serve loop on a free
// port, preloads a tenant from a rules file, scans, hot-reloads under a
// concurrent scan, and deletes — the `make serve-smoke` CI gate.
func TestServeSmoke(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rules, []byte("passwd /etc/passwd\ncmd (cmd|command)\\.exe\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		cfg := serverConfig{
			addr:     "127.0.0.1:0",
			preloads: []string{"ids=" + rules},
			opts:     []sfa.Option{sfa.WithSearch(), sfa.WithThreads(2)},
		}
		errc <- run(cfg, ready, nil)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	get := func(path string, want int) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body := readAll(t, resp)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: %d (want %d): %s", path, resp.StatusCode, want, body)
		}
		return body
	}

	get("/healthz", http.StatusOK)

	// Preloaded tenant answers scans.
	scan := func(tenant, body string) []string {
		t.Helper()
		resp, err := http.Post(base+"/v1/tenants/"+tenant+"/scan", "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan status %d", resp.StatusCode)
		}
		var reply struct {
			Matches []string `json:"matches"`
		}
		if err := json.Unmarshal([]byte(readAll(t, resp)), &reply); err != nil {
			t.Fatal(err)
		}
		return reply.Matches
	}
	if got := scan("ids", "GET /etc/passwd HTTP/1.1"); len(got) != 1 || got[0] != "passwd" {
		t.Fatalf("scan verdict %v", got)
	}

	// Hot reload over HTTP while a scan loop runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			scan("ids", "nothing here")
		}
	}()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/tenants/ids",
		strings.NewReader("passwd /etc/passwd\ncmd (cmd|command)\\.exe\nnew xp_cmdshell\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	resp.Body.Close()
	<-done
	if got := scan("ids", "EXEC xp_cmdshell 'dir'"); len(got) != 1 || got[0] != "new" {
		t.Fatalf("post-reload verdict %v", got)
	}

	// Lifecycle.
	req, _ = http.NewRequest(http.MethodDelete, base+"/v1/tenants/ids", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v / %v", err, resp)
	}
	get("/v1/tenants/ids", http.StatusNotFound)
}

// TestServePromScrapeSmoke is the `make serve-smoke` Prometheus half:
// boot the real serve loop, scan once, scrape /metrics in Prometheus
// text format, and validate the exposition is parseable and carries the
// core series a scrape pipeline would alert on.
func TestServePromScrapeSmoke(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rules, []byte("passwd /etc/passwd\ncmd (cmd|command)\\.exe\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	shutdown := make(chan struct{})
	go func() {
		cfg := serverConfig{
			addr:     "127.0.0.1:0",
			preloads: []string{"ids=" + rules},
			opts:     []sfa.Option{sfa.WithSearch(), sfa.WithThreads(2)},
		}
		errc <- run(cfg, ready, shutdown)
	}()
	defer close(shutdown)
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Post(base+"/v1/tenants/ids/scan", "application/octet-stream",
		strings.NewReader("GET /etc/passwd HTTP/1.1"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body := readAll(t, resp)

	// Every line must be a comment or `name{labels} value` with a
	// numeric value — a scraper would reject anything else.
	samples := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok || val == "" {
			t.Fatalf("unparseable exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("non-numeric sample %q: %v", line, err)
		}
		samples[key] = val
	}

	for _, series := range []string{
		`sfa_uptime_seconds`,
		`sfa_tenant_scans_total{tenant="ids"}`,
		`sfa_tenant_rules{tenant="ids"}`,
		`sfa_scan_chunks_total{tenant="ids"}`,
		`sfa_scan_compose_ns_count{tenant="ids"}`,
		`sfa_scan_match_ns_count{tenant="ids"}`,
		`sfa_build_total_ns{tenant="ids"}`,
		`sfa_pool_workers{pool="match"}`,
		`sfa_go_sched_goroutines`,
	} {
		if _, ok := samples[series]; !ok {
			t.Errorf("core series %s missing from scrape", series)
		}
	}
	if v := samples[`sfa_tenant_scans_total{tenant="ids"}`]; v != "1" {
		t.Errorf(`sfa_tenant_scans_total{tenant="ids"} = %s, want 1`, v)
	}
}

// TestServeFlightSmoke is the `make serve-smoke` flight-recorder half:
// boot the real serve loop with a non-default -flight-records size,
// scan, and round-trip /debug/scans and /debug/attribution.
func TestServeFlightSmoke(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rules, []byte("passwd /etc/passwd\ncmd (cmd|command)\\.exe\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	ready := make(chan string, 1)
	errc := make(chan error, 1)
	shutdown := make(chan struct{})
	go func() {
		cfg := serverConfig{
			addr:          "127.0.0.1:0",
			preloads:      []string{"ids=" + rules},
			opts:          []sfa.Option{sfa.WithSearch(), sfa.WithThreads(2)},
			flightRecords: 100, // rounds up to 128
		}
		errc <- run(cfg, ready, shutdown)
	}()
	defer close(shutdown)
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("server never became ready")
	}

	payload := "GET /etc/passwd HTTP/1.1"
	for i := 0; i < 3; i++ {
		resp, err := http.Post(base+"/v1/tenants/ids/scan", "application/octet-stream",
			strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan status %d", resp.StatusCode)
		}
	}

	// Flight recorder: capacity reflects the flag, records carry the
	// scans just made, newest first.
	resp, err := http.Get(base + "/debug/scans?n=8")
	if err != nil {
		t.Fatal(err)
	}
	var flight struct {
		Capacity int `json:"capacity"`
		Records  []struct {
			Seq     uint64 `json:"seq"`
			Tenant  string `json:"tenant"`
			Bytes   int64  `json:"bytes"`
			Matches int64  `json:"matches"`
		} `json:"records"`
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/scans status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal([]byte(raw), &flight); err != nil {
		t.Fatalf("bad /debug/scans JSON %q: %v", raw, err)
	}
	if flight.Capacity != 128 {
		t.Errorf("flight capacity %d, want 128 (100 rounded up)", flight.Capacity)
	}
	if len(flight.Records) != 3 {
		t.Fatalf("flight has %d records, want 3: %s", len(flight.Records), raw)
	}
	for i, rec := range flight.Records {
		if rec.Tenant != "ids" || rec.Bytes != int64(len(payload)) || rec.Matches != 1 {
			t.Errorf("record %d: %+v", i, rec)
		}
		if i > 0 && flight.Records[i-1].Seq <= rec.Seq {
			t.Errorf("records not newest-first: %+v", flight.Records)
		}
	}

	// Attribution: the tenant's shard account and rule heat reflect the
	// same traffic.
	resp, err = http.Get(base + "/debug/attribution")
	if err != nil {
		t.Fatal(err)
	}
	var attr struct {
		Tenants map[string]struct {
			Shards []struct {
				ScanBytes int64 `json:"scan_bytes"`
			} `json:"shards"`
			RuleHeat []struct {
				Name    string `json:"name"`
				Matches int64  `json:"matches"`
			} `json:"rule_heat"`
		} `json:"tenants"`
	}
	raw = readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/attribution status %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal([]byte(raw), &attr); err != nil {
		t.Fatalf("bad /debug/attribution JSON %q: %v", raw, err)
	}
	ta, ok := attr.Tenants["ids"]
	if !ok || len(ta.Shards) == 0 {
		t.Fatalf("attribution reply lacks the ids tenant: %s", raw)
	}
	var bytes int64
	for _, sh := range ta.Shards {
		bytes += sh.ScanBytes
	}
	if bytes == 0 {
		t.Errorf("no bytes attributed to any shard: %s", raw)
	}
	heat := map[string]int64{}
	for _, rh := range ta.RuleHeat {
		heat[rh.Name] = rh.Matches
	}
	if heat["passwd"] != 3 {
		t.Errorf("rule heat %v, want passwd=3", heat)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// shardStat mirrors the tenant-status JSON the warm-restart test reads.
type shardStat struct {
	BuildID uint64 `json:"build_id"`
}

// bootState starts a server over stateDir and returns its base URL plus
// a clean shutdown function that waits for graceful exit.
func bootState(t *testing.T, stateDir string, preloads ...string) (string, func()) {
	t.Helper()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	shutdown := make(chan struct{})
	go func() {
		cfg := serverConfig{
			addr:     "127.0.0.1:0",
			stateDir: stateDir,
			preloads: preloads,
			opts:     []sfa.Option{sfa.WithSearch(), sfa.WithThreads(2)},
		}
		errc <- run(cfg, ready, shutdown)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	return base, func() {
		close(shutdown)
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("graceful shutdown returned %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("server never shut down")
		}
	}
}

// tenantBuildIDs fetches a tenant's shard BuildIDs.
func tenantBuildIDs(t *testing.T, base, tenant string) []uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/tenants/" + tenant)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant status %d: %s", resp.StatusCode, body)
	}
	var status struct {
		Shards []shardStat `json:"shards"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(status.Shards))
	for i, s := range status.Shards {
		ids[i] = s.BuildID
	}
	return ids
}

// TestWarmRestartSmoke is the `make snapshot-smoke` server half: boot
// with -state-dir, load rules, shut down gracefully, boot again — the
// restarted server must serve its first scan from restored (not
// recompiled) automata, observable through stable top-bit BuildIDs that
// survive a third boot unchanged.
func TestWarmRestartSmoke(t *testing.T) {
	dir := t.TempDir()
	stateDir := filepath.Join(dir, "state")
	rules := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rules, []byte("passwd /etc/passwd\ncmd (cmd|command)\\.exe\nnum [0-9]{6,}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	scan := func(base, tenant, body string) []string {
		t.Helper()
		resp, err := http.Post(base+"/v1/tenants/"+tenant+"/scan", "application/octet-stream", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan status %d: %s", resp.StatusCode, raw)
		}
		var reply struct {
			Matches []string `json:"matches"`
		}
		if err := json.Unmarshal([]byte(raw), &reply); err != nil {
			t.Fatal(err)
		}
		return reply.Matches
	}

	// Boot 1: cold build from the preload, persisted via the state dir.
	base, stop := bootState(t, stateDir, "ids="+rules)
	if got := scan(base, "ids", "GET /etc/passwd HTTP/1.1"); len(got) != 1 || got[0] != "passwd" {
		t.Fatalf("boot1 verdict %v", got)
	}
	stop()

	// Boot 2: no preloads — the tenant must come back from the state
	// dir, warm, and answer its first scan identically.
	base, stop = bootState(t, stateDir)
	if got := scan(base, "ids", "GET /etc/passwd HTTP/1.1"); len(got) != 1 || got[0] != "passwd" {
		t.Fatalf("boot2 first scan verdict %v", got)
	}
	ids2 := tenantBuildIDs(t, base, "ids")
	if len(ids2) == 0 {
		t.Fatal("boot2: no shards reported")
	}
	for i, id := range ids2 {
		if id&(1<<63) == 0 {
			t.Fatalf("boot2 shard %d has sequential build id %d — it was recompiled, not restored", i, id)
		}
	}
	// /metrics must report the warm restore.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody := readAll(t, resp)
	resp.Body.Close()
	var metrics struct {
		Snapshot struct {
			WarmLoads int64 `json:"warm_loads"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal([]byte(metricsBody), &metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Snapshot.WarmLoads != 1 {
		t.Fatalf("boot2 warm_loads = %d, want 1 (%s)", metrics.Snapshot.WarmLoads, metricsBody)
	}
	stop()

	// Boot 3: the persisted ids are content-derived, so an unchanged
	// tenant reports the identical BuildIDs again.
	base, stop = bootState(t, stateDir)
	defer stop()
	ids3 := tenantBuildIDs(t, base, "ids")
	if len(ids3) != len(ids2) {
		t.Fatalf("boot3 has %d shards, boot2 had %d", len(ids3), len(ids2))
	}
	for i := range ids3 {
		if ids3[i] != ids2[i] {
			t.Fatalf("boot3 shard %d build id %d != boot2's %d", i, ids3[i], ids2[i])
		}
	}
}
