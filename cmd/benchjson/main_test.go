package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
cpu: AMD EPYC 7B13
BenchmarkStreamHotpath_RuleSetWrite64KB_p1-4   	    1000	   1234.5 ns/op	  53.10 MB/s	       0 B/op	       0 allocs/op
BenchmarkBuild_Combined-4                      	      10	 987654 ns/op	    4096 B/op	      12 allocs/op
PASS
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" || !strings.Contains(snap.CPU, "EPYC") {
		t.Fatalf("env header not captured: %+v", snap)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	hot, ok := snap.Benchmarks["BenchmarkStreamHotpath_RuleSetWrite64KB_p1"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped from benchmark name")
	}
	if hot.NsPerOp != 1234.5 || hot.MBPerSec != 53.10 || hot.AllocsPerOp != 0 {
		t.Fatalf("hot-path metrics wrong: %+v", hot)
	}
	if b := snap.Benchmarks["BenchmarkBuild_Combined"]; b.AllocsPerOp != 12 || b.BytesPerOp != 4096 {
		t.Fatalf("build metrics wrong: %+v", b)
	}
}

func TestGateZeroAlloc(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if err := gateZeroAlloc(snap, "StreamHotpath"); err != nil {
		t.Fatalf("clean hot path tripped the gate: %v", err)
	}
	if err := gateZeroAlloc(snap, "Build_Combined"); err == nil {
		t.Fatal("allocating benchmark passed the gate")
	}
	if err := gateZeroAlloc(snap, "NoSuchBenchmark"); err == nil {
		t.Fatal("unmatched pattern must fail — a rename would disarm the gate silently")
	}
}

func TestCompareWarnsOnRegression(t *testing.T) {
	prev := &Snapshot{
		Commit: "0123456789abcdef0123456789abcdef01234567",
		Benchmarks: map[string]Metrics{
			"BenchmarkFast":    {NsPerOp: 100},
			"BenchmarkSteady":  {NsPerOp: 200},
			"BenchmarkDropped": {NsPerOp: 300},
		},
	}
	cur := &Snapshot{
		Benchmarks: map[string]Metrics{
			"BenchmarkFast":   {NsPerOp: 150}, // +50%: must warn
			"BenchmarkSteady": {NsPerOp: 210}, // +5%: under threshold
			"BenchmarkNew":    {NsPerOp: 50},
		},
	}
	var sb strings.Builder
	compare(&sb, prev, cur, 15)
	out := sb.String()
	if !strings.Contains(out, "0123456789ab") {
		t.Errorf("previous commit hash missing from header:\n%s", out)
	}
	if !strings.Contains(out, "WARNING: regression") {
		t.Errorf("+50%% regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "1 benchmark(s) regressed") {
		t.Errorf("summary should count exactly one regression:\n%s", out)
	}
	if !strings.Contains(out, "(new)") || !strings.Contains(out, "(dropped)") {
		t.Errorf("added/removed benchmarks not reported:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkSteady") && strings.Contains(line, "WARNING") {
			t.Errorf("under-threshold delta flagged: %s", line)
		}
	}
}

func TestGitCommitInsideCheckout(t *testing.T) {
	// The repo tests run from a git checkout, so the best-effort hash
	// lookup must produce a 40-hex commit id here.
	c := gitCommit()
	if len(c) != 40 {
		t.Fatalf("gitCommit() = %q, want 40-char hash inside a checkout", c)
	}
}
