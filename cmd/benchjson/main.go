// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable snapshot for benchmark-trajectory tracking: one JSON
// object per benchmark (ns/op, MB/s, B/op, allocs/op), keyed by the
// benchmark name with the -GOMAXPROCS suffix stripped.
//
// It is also the CI allocation gate: with -zero-alloc REGEX every
// benchmark whose name matches must report 0 allocs/op, and at least one
// must match (so a renamed benchmark cannot silently disarm the gate).
// -zero-alloc repeats: each pattern is armed independently, so adding a
// gated hot path (e.g. the streaming writes) cannot be lost to a rename
// that still satisfies some other pattern.
//
// Each snapshot records the git commit it was measured at (best-effort
// `git rev-parse HEAD`). -compare PREV.json diffs the new snapshot
// against an earlier one, printing per-benchmark ns/op deltas and a
// WARNING for any benchmark slower by more than -regress-threshold
// percent (default 15). Comparison is advisory — shared CI boxes are
// too noisy for a hard latency gate — so regressions never fail the
// run; the zero-alloc gate remains the only hard failure.
//
// Usage:
//
//	go test -run '^$' -bench Hotpath -benchmem . > bench.out
//	benchjson -in bench.out -out BENCH_3.json \
//	  -zero-alloc 'Hotpath.*Pooled' -zero-alloc 'StreamHotpath' \
//	  -compare BENCH_2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metrics is one benchmark's measured values. MBPerSec is 0 when the
// benchmark does not call SetBytes.
type Metrics struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is the file format: environment header plus name → metrics.
// Commit ties the numbers to the source they measured; it is empty when
// benchjson runs outside a git checkout.
type Snapshot struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Commit     string             `json:"commit,omitempty"`
	Generated  string             `json:"generated"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON snapshot file (default stdout)")
	compareWith := flag.String("compare", "", "previous snapshot JSON to diff against (warn-only)")
	threshold := flag.Float64("regress-threshold", 15, "with -compare: warn when ns/op grows by more than this percent")
	var zeroAlloc multiFlag
	flag.Var(&zeroAlloc, "zero-alloc", "regexp of benchmarks that must report 0 allocs/op (repeatable)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	snap, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	snap.Commit = gitCommit()

	for _, pattern := range zeroAlloc {
		if err := gateZeroAlloc(snap, pattern); err != nil {
			fatal(err)
		}
	}

	if *compareWith != "" {
		prev, err := loadSnapshot(*compareWith)
		if err != nil {
			fatal(err)
		}
		compare(os.Stdout, prev, snap, *threshold)
	}

	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	names := make([]string, 0, len(snap.Benchmarks))
	for name := range snap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("benchjson: %d benchmarks → %s\n", len(names), *out)
}

// benchLine matches one result row:
//
//	BenchmarkName-8   12   3456 ns/op   78.90 MB/s   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]Metrics{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			snap.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			snap.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			snap.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		met := Metrics{Iterations: iters, NsPerOp: ns}
		rest := strings.Fields(m[4])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "MB/s":
				met.MBPerSec = v
			case "B/op":
				met.BytesPerOp = v
			case "allocs/op":
				met.AllocsPerOp = v
			}
		}
		snap.Benchmarks[m[1]] = met
	}
	return snap, sc.Err()
}

// gateZeroAlloc enforces the pooled-hot-path allocation guardrail.
func gateZeroAlloc(snap *Snapshot, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("-zero-alloc: %w", err)
	}
	matched := 0
	var bad []string
	for name, m := range snap.Benchmarks {
		if !re.MatchString(name) {
			continue
		}
		matched++
		if m.AllocsPerOp != 0 {
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op", name, m.AllocsPerOp))
		}
	}
	if matched == 0 {
		return fmt.Errorf("-zero-alloc %q matched no benchmark — gate disarmed by rename?", pattern)
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("allocation regression on the pooled hot path:\n  %s", strings.Join(bad, "\n  "))
	}
	fmt.Printf("benchjson: zero-alloc gate passed (%d benchmarks)\n", matched)
	return nil
}

// gitCommit returns the HEAD commit hash, or "" outside a checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func loadSnapshot(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

// compare prints per-benchmark ns/op deltas between two snapshots and a
// WARNING for each regression beyond threshold percent. Warn-only by
// design: wall-clock numbers from shared CI machines jitter too much to
// gate on, but a >15% jump deserves a human look.
func compare(w io.Writer, prev, cur *Snapshot, threshold float64) {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	from := prev.Commit
	if from == "" {
		from = "previous"
	} else if len(from) > 12 {
		from = from[:12]
	}
	fmt.Fprintf(w, "benchjson: comparing against %s (threshold %+.0f%%)\n", from, threshold)
	regressions := 0
	for _, name := range names {
		cm := cur.Benchmarks[name]
		pm, ok := prev.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "  %-60s %12.1f ns/op  (new)\n", name, cm.NsPerOp)
			continue
		}
		if pm.NsPerOp == 0 {
			continue
		}
		pct := (cm.NsPerOp - pm.NsPerOp) / pm.NsPerOp * 100
		mark := ""
		if pct > threshold {
			mark = "  WARNING: regression"
			regressions++
		}
		fmt.Fprintf(w, "  %-60s %12.1f ns/op  %+7.1f%%%s\n", name, cm.NsPerOp, pct, mark)
	}
	for name := range prev.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "  %-60s (dropped)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchjson: WARNING: %d benchmark(s) regressed more than %.0f%% — not failing the run (noisy-box policy), but worth a look\n", regressions, threshold)
	}
}

// multiFlag collects repeated flag occurrences.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty pattern")
	}
	*m = append(*m, v)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
