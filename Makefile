# CI entry points. `make ci` is the gate: vet + build + race tests +
# a fuzz smoke run + a short benchmark smoke run proving the hot path
# still reports 0 allocs/op. `make bench-json` captures the benchmark
# trajectory snapshot (BENCH_2.json) that CI uploads as an artifact and
# gates on.

GO ?= go
BENCH_JSON ?= BENCH_2.json

.PHONY: build vet test race fuzz-smoke bench-smoke bench-json ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Exercise the sfa fuzz corpus for a few seconds so the oracle
# cross-checks in fuzz_test.go actually run somewhere.
fuzz-smoke:
	$(GO) test -fuzz=FuzzMatch -fuzztime=10s -run '^$$' ./sfa

# Keep the smoke run small: 1 MiB inputs, 2 iterations per benchmark.
bench-smoke:
	SFA_BENCH_MB=1 $(GO) test -run '^$$' -bench 'Hotpath|Layout_' -benchtime 2x .

# Benchmark-trajectory snapshot: hot path + layouts + the multi-pattern
# RuleSet engines, emitted as name → {ns/op, MB/s, allocs/op}. benchjson
# doubles as the allocation gate: the pooled hot path must stay at
# 0 allocs/op.
bench-json:
	SFA_BENCH_MB=1 $(GO) test -run '^$$' -bench 'Hotpath|Layout_|RuleSet_' -benchtime 2x -benchmem . > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out $(BENCH_JSON) -zero-alloc 'Hotpath.*Pooled'

ci: vet build race fuzz-smoke bench-smoke
