# CI entry points. `make ci` is the gate: vet + build + race tests +
# a short benchmark smoke run proving the hot path still reports
# 0 allocs/op.

GO ?= go

.PHONY: build vet test race bench-smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Keep the smoke run small: 1 MiB inputs, 2 iterations per benchmark.
bench-smoke:
	SFA_BENCH_MB=1 $(GO) test -run '^$$' -bench 'Hotpath|Layout_' -benchtime 2x .

ci: vet build race bench-smoke
