# CI entry points. `make ci` is the gate: vet + sfavet (the first-party
# static-analysis suite of docs/static-analysis.md) + build + docs checks
# (markdown links + stale documented options) + race tests + fuzz smoke
# runs (the multi-pattern match oracle and the snapshot decoder) + the
# sfaserve serving smoke (server boot, rule load, hot reload under
# concurrent streamed scans, Prometheus /metrics scrape + exposition
# checks) + the snapshot smoke (save → reload → verify verdicts,
# warm-restart sfaserve over a state dir, shard-cache reuse) + a short
# benchmark smoke run proving the hot paths still report 0 allocs/op.
# `make bench-json` captures the benchmark trajectory snapshot
# (BENCH_9.json) that CI uploads as an artifact and gates on;
# RuleSet_ColdBuild_{Tuple,Vector} tracks the tuple-interned
# construction speedup, RuleSet_LazyColdStart the lazy compile+scan
# cost over a corpus the eager builder rejects, and the
# StreamHotpath_{Instrumented,FlightRecorded} twins prove the
# observability layer — scan stats plus the flight-recorder ring —
# adds no allocations to the streaming hot path.

GO ?= go
BENCH_JSON ?= BENCH_9.json

.PHONY: build vet lint test race docs-check fuzz-smoke serve-smoke snapshot-smoke bench-smoke bench-json ci

build:
	$(GO) build ./...

# Standard vet. copylocks (catches by-value copies of the obs wrapper
# atomics and sync types) and lostcancel are in vet's default check set,
# so they need no flags here.
vet:
	$(GO) vet ./...

# First-party analyzers (internal/lint): atomicfield, hotpathalloc,
# pooldispatch, borrowedtable. Annotation grammar and escape hatches are
# documented in docs/static-analysis.md.
lint:
	$(GO) run ./cmd/sfavet ./...

test:
	$(GO) test ./...

# Docs gate: every relative markdown link in README/ROADMAP/docs/ and
# the package READMEs resolves, and every documented With* option is
# still declared in the Go source (renames fail here, not in review).
docs-check:
	$(GO) run ./cmd/docscheck

race:
	$(GO) test -race ./...

# Exercise the fuzz corpora for a few seconds so the oracle cross-checks
# actually run somewhere: FuzzMatch (combined vs isolated vs derivative
# oracle) and FuzzLoadRuleSet (malformed snapshots must error, never
# panic or over-allocate).
fuzz-smoke:
	$(GO) test -fuzz=FuzzMatch -fuzztime=10s -run '^$$' ./sfa
	$(GO) test -fuzz=FuzzLoadRuleSet -fuzztime=10s -run '^$$' ./sfa

# Serving subsystem smoke: boot the real sfaserve loop, load rules over
# HTTP, hot-reload under concurrent streamed scans, assert shard reuse,
# scrape /metrics in Prometheus text format (exposition validity, core
# series, counter monotonicity under reloads), and round-trip the
# flight recorder + attribution endpoints under concurrent load — all
# under -race.
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke|TestServePromScrapeSmoke|TestServeFlightSmoke|TestServeEndToEnd|TestServeFlightAndAttribution|TestServeFlightConcurrent|TestRuleboardConcurrentScansAndReloads|TestMetricsContentNegotiation|TestMetricsPromExposition|TestPromAttributionSeries|TestPromMonotonicUnderConcurrentScansAndReloads|TestPromTenantRowsSurviveDeleteAndReadd|TestSlowScanLogging' ./cmd/sfaserve ./internal/serve

# Snapshot subsystem smoke: rule-set save → reload → byte-identical
# verdicts (vs the isolated oracle), warm-restart the real sfaserve over
# a state directory twice asserting stable persisted BuildIDs, and the
# content-addressed store's concurrency/eviction behaviour — under -race.
snapshot-smoke:
	$(GO) test -race -run 'TestRuleSetSnapshotRoundTrip|TestLoadRuleSetRejectsCorruption|TestShardCacheWarmsRepeatedBuilds|TestWarmRestartSmoke|TestStatePersistAndWarmRestore|TestStoreConcurrent|TestStoreEviction' ./sfa ./cmd/sfaserve ./internal/serve ./internal/snapshot

# Keep the smoke run small: 1 MiB inputs, 2 iterations per benchmark.
# 'Hotpath' also selects the StreamHotpath carried-mapping writes.
bench-smoke:
	SFA_BENCH_MB=1 $(GO) test -run '^$$' -bench 'Hotpath|Layout_' -benchtime 2x .

# Benchmark-trajectory snapshot: hot path + layouts + the multi-pattern
# RuleSet engines + the streaming writes + the cold-vs-warm rule-set
# load pair, emitted as name → {ns/op, MB/s, allocs/op}. benchjson
# doubles as the allocation gate: the pooled match hot path and the
# streaming chunk hot path must stay at 0 allocs/op, each armed by its
# own pattern.
bench-json:
	SFA_BENCH_MB=1 $(GO) test -run '^$$' -bench 'Hotpath|Layout_|RuleSet_' -benchtime 2x -benchmem . > bench.out
	@cat bench.out
	$(GO) run ./cmd/benchjson -in bench.out -out $(BENCH_JSON) \
		-zero-alloc 'Hotpath.*Pooled' -zero-alloc 'StreamHotpath' \
		-zero-alloc 'Instrumented' -zero-alloc 'FlightRecorded'

ci: vet lint build docs-check race fuzz-smoke serve-smoke snapshot-smoke bench-smoke
