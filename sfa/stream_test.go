package sfa

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func TestStreamMatchesBatch(t *testing.T) {
	re := MustCompile("(([02468][13579]){5})*", WithThreads(2))
	r := rand.New(rand.NewSource(15))
	for trial := 0; trial < 40; trial++ {
		// Random digit text, sometimes accepted, sometimes not.
		n := r.Intn(40_000)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('0' + r.Intn(10))
		}
		want := re.Match(text)

		s, err := re.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		// Feed in random-sized chunks.
		for off := 0; off < len(text); {
			sz := 1 + r.Intn(9000)
			if off+sz > len(text) {
				sz = len(text) - off
			}
			k, err := s.Write(text[off : off+sz])
			if err != nil || k != sz {
				t.Fatalf("Write = %d, %v", k, err)
			}
			off += sz
		}
		if got := s.Accepted(); got != want {
			t.Fatalf("stream verdict %v, batch %v (len %d)", got, want, n)
		}
		if s.Bytes() != int64(len(text)) {
			t.Fatalf("Bytes = %d, want %d", s.Bytes(), len(text))
		}
	}
}

func TestStreamEmptyAndReset(t *testing.T) {
	re := MustCompile("(ab)*")
	s, err := re.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Accepted() {
		t.Error("empty input is in L((ab)*)")
	}
	s.Write([]byte("a"))
	if s.Accepted() {
		t.Error("'a' not accepted")
	}
	s.Write([]byte("b"))
	if !s.Accepted() {
		t.Error("'ab' accepted")
	}
	s.Reset()
	if !s.Accepted() || s.Bytes() != 0 {
		t.Error("Reset did not rewind")
	}
}

func TestStreamIsWriter(t *testing.T) {
	re := MustCompile("(ab)*")
	s, err := re.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(s, bytes.NewReader(bytes.Repeat([]byte("ab"), 100_000)))
	if err != nil || n != 200_000 {
		t.Fatalf("io.Copy = %d, %v", n, err)
	}
	if !s.Accepted() {
		t.Error("(ab)^100000 accepted")
	}
}

func TestStreamCompose(t *testing.T) {
	re := MustCompile("(ab)*", WithThreads(2))
	// Scan the two halves of the input on separate streams, out of order,
	// then compose: s1 · s2 must equal the verdict on the concatenation.
	text := bytes.Repeat([]byte("ab"), 50_001)
	half := len(text)/2 + 1 // odd cut, splits an "ab" pair
	s1, _ := re.NewStream()
	s2, _ := re.NewStream()
	s2.Write(text[half:]) // second half first — order of scanning is free
	s1.Write(text[:half])
	if err := s1.Compose(s2); err != nil {
		t.Fatal(err)
	}
	if !s1.Accepted() {
		t.Error("composed verdict wrong")
	}
	if s1.Bytes() != int64(len(text)) {
		t.Errorf("composed Bytes = %d", s1.Bytes())
	}
	// Composing streams of different patterns must fail.
	other := MustCompile("a*")
	s3, _ := other.NewStream()
	if err := s1.Compose(s3); err == nil {
		t.Error("cross-pattern compose should fail")
	}
}

func TestStreamRequiresSFAEngine(t *testing.T) {
	re := MustCompile("(ab)*", WithEngine(EngineDFA))
	if _, err := re.NewStream(); err == nil {
		t.Error("streaming without an SFA should fail")
	}
}

func TestStreamLargeParallelChunks(t *testing.T) {
	re := MustCompile("([0-4]{5}[5-9]{5})*", WithThreads(4))
	s, err := re.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte("0123456789"), 2000) // 20 KB, parallel path
	for i := 0; i < 50; i++ {
		s.Write(chunk)
	}
	if !s.Accepted() {
		t.Error("1 MB of accepted blocks rejected")
	}
	s.Write([]byte("9"))
	if s.Accepted() {
		t.Error("trailing byte must flip the verdict")
	}
}

// TestStreamEdgeChunks: empty and single-byte writes interleaved with
// normal ones must not disturb the carried mapping.
func TestStreamEdgeChunks(t *testing.T) {
	re := MustCompile("(ab)*", WithThreads(2))
	s, err := re.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range [][]byte{nil, {}, []byte("a"), nil, []byte("b"), {}, []byte("ab")} {
		if n, err := s.Write(chunk); err != nil || n != len(chunk) {
			t.Fatalf("Write = %d, %v", n, err)
		}
	}
	if !s.Accepted() || s.Bytes() != 4 {
		t.Fatalf("Accepted=%v Bytes=%d after abab via edge chunks", s.Accepted(), s.Bytes())
	}
}

// TestStreamComposeAfterAccept: composing more input onto an accepting
// stream must re-evaluate, not latch — and compose back to accept again.
func TestStreamComposeAfterAccept(t *testing.T) {
	re := MustCompile("(ab)*")
	s, _ := re.NewStream()
	s.Write([]byte("abab"))
	if !s.Accepted() {
		t.Fatal("abab rejected")
	}
	breaker, _ := re.NewStream()
	breaker.Write([]byte("a"))
	if err := s.Compose(breaker); err != nil {
		t.Fatal(err)
	}
	if s.Accepted() {
		t.Error("verdict latched across a composed trailing 'a'")
	}
	repair, _ := re.NewStream()
	repair.Write([]byte("b"))
	if err := s.Compose(repair); err != nil {
		t.Fatal(err)
	}
	if !s.Accepted() || s.Bytes() != 6 {
		t.Fatalf("Accepted=%v Bytes=%d after repairing compose", s.Accepted(), s.Bytes())
	}
}

// TestStreamComposeThenReset: a composed-into stream must reset cleanly.
func TestStreamComposeThenReset(t *testing.T) {
	re := MustCompile("(ab)*")
	s, _ := re.NewStream()
	u, _ := re.NewStream()
	u.Write([]byte("a"))
	s.Compose(u)
	s.Reset()
	if !s.Accepted() || s.Bytes() != 0 {
		t.Fatal("Reset after Compose did not restore the identity")
	}
}

// TestStreamWriteZeroAllocSteadyState guards the pooled streaming hot
// path at the public API level.
func TestStreamWriteZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	re := MustCompile("(([02468][13579]){5})*", WithThreads(4))
	s, err := re.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte("0123456789"), 6400) // 64 KB, parallel path
	for i := 0; i < 10; i++ {
		s.Write(chunk)
	}
	if avg := testing.AllocsPerRun(100, func() { s.Write(chunk) }); avg >= 0.5 {
		t.Errorf("Stream.Write allocates %.2f allocs/op in steady state", avg)
	}
}
