package sfa

import (
	"reflect"
	"testing"

	"repro/internal/syntax"
)

// FuzzMatch feeds arbitrary (pattern, input) pairs through the
// multi-pattern path: the fuzzed pattern joins two fixed rules in a
// RuleSet, and the combined automaton's Scan must agree rule-for-rule
// with the isolated per-rule engines — and, for the fuzzed rule itself,
// with the Brzozowski-derivative oracle.
func FuzzMatch(f *testing.F) {
	f.Add("(ab)*", "abab")
	f.Add("a[ab]*b", "aabb")
	f.Add("([0-4]{2}[5-9]{2})*", "0055")
	f.Add("a|bc+", "bcc")
	f.Fuzz(func(t *testing.T, pattern, input string) {
		if len(pattern) > 30 || len(input) > 30 {
			return
		}
		node, err := syntax.Parse(pattern, 0)
		if err != nil {
			return
		}
		if node.NumPositions() > 40 {
			return
		}
		defs := []RuleDef{
			{Name: "fixed-a", Pattern: `(ab)*c?`},
			{Name: "fixed-b", Pattern: `[a-c]{1,4}`},
			{Name: "fuzzed", Pattern: pattern},
		}
		opts := []Option{WithDFACap(500), WithShardStateBudget(4096), WithThreads(2)}
		combined, err := NewRuleSetFromDefs(defs, opts...)
		if err != nil {
			return // the fuzzed rule blew a cap; nothing to compare
		}
		isolated, err := NewRuleSetFromDefs(defs, append(opts, WithIsolatedRules())...)
		if err != nil {
			return
		}
		in := []byte(input)
		got, want := combined.Scan(in, 0), isolated.Scan(in, 0)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pattern %q input %q: combined=%v isolated=%v", pattern, input, got, want)
		}
		fuzzHit := false
		for _, name := range got {
			if name == "fuzzed" {
				fuzzHit = true
			}
		}
		if oracle := syntax.DeriveMatch(node, in); fuzzHit != oracle {
			t.Fatalf("pattern %q input %q: combined=%v derivatives=%v", pattern, input, fuzzHit, oracle)
		}
	})
}

// FuzzEngineAgreement feeds arbitrary (pattern, input) pairs through the
// compile pipeline; whenever the pattern compiles, the default SFA engine
// must agree with the Brzozowski-derivative oracle — an implementation
// that shares only the parser with it.
func FuzzEngineAgreement(f *testing.F) {
	f.Add("(ab)*", "abab")
	f.Add("([0-4]{2}[5-9]{2})*", "0055")
	f.Add("a|bc+", "bcc")
	f.Add("[a-c]{1,3}", "abc")
	f.Fuzz(func(t *testing.T, pattern, input string) {
		if len(pattern) > 30 || len(input) > 30 {
			return
		}
		node, err := syntax.Parse(pattern, 0)
		if err != nil {
			return
		}
		if node.NumPositions() > 40 {
			return
		}
		re, err := Compile(pattern, WithDFACap(500), WithSFACap(20_000), WithThreads(2))
		if err != nil {
			return
		}
		got := re.Match([]byte(input))
		want := syntax.DeriveMatch(node, []byte(input))
		if got != want {
			t.Fatalf("pattern %q input %q: engine=%v derivatives=%v",
				pattern, input, got, want)
		}
	})
}
