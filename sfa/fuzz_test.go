package sfa

import (
	"testing"

	"repro/internal/syntax"
)

// FuzzEngineAgreement feeds arbitrary (pattern, input) pairs through the
// compile pipeline; whenever the pattern compiles, the default SFA engine
// must agree with the Brzozowski-derivative oracle — an implementation
// that shares only the parser with it.
func FuzzEngineAgreement(f *testing.F) {
	f.Add("(ab)*", "abab")
	f.Add("([0-4]{2}[5-9]{2})*", "0055")
	f.Add("a|bc+", "bcc")
	f.Add("[a-c]{1,3}", "abc")
	f.Fuzz(func(t *testing.T, pattern, input string) {
		if len(pattern) > 30 || len(input) > 30 {
			return
		}
		node, err := syntax.Parse(pattern, 0)
		if err != nil {
			return
		}
		if node.NumPositions() > 40 {
			return
		}
		re, err := Compile(pattern, WithDFACap(500), WithSFACap(20_000), WithThreads(2))
		if err != nil {
			return
		}
		got := re.Match([]byte(input))
		want := syntax.DeriveMatch(node, []byte(input))
		if got != want {
			t.Fatalf("pattern %q input %q: engine=%v derivatives=%v",
				pattern, input, got, want)
		}
	})
}
