// Package sfa is the public API of the simultaneous-finite-automaton
// regular-expression matcher, a reproduction of
//
//	Sin'ya, Matsuzaki, Sassa: "Simultaneous Finite Automata: An Efficient
//	Data-Parallel Model for Regular Expression Matching", ICPP 2013.
//
// A compiled Regexp owns the full pipeline of the paper — Glushkov NFA,
// minimized DFA (subset construction + Hopcroft), and D-SFA
// (correspondence construction) — and matches whole inputs in parallel by
// splitting them at arbitrary byte positions (Theorem 3), running each
// chunk on one goroutine with a single table lookup per byte, and
// reducing the per-chunk SFA states in O(p).
//
// Basic use:
//
//	re, err := sfa.Compile(`([0-4]{5}[5-9]{5})*`)
//	...
//	ok := re.Match(data) // parallel across runtime.GOMAXPROCS(0) goroutines
//
// Matching semantics are whole-input acceptance, as in the paper's
// evaluation. Use the Search option for unanchored substring semantics.
package sfa

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// Flag mirrors the supported PCRE modifiers.
type Flag uint8

// Compile-time pattern flags.
const (
	// FoldCase makes matching case-insensitive ((?i), pcre /i).
	FoldCase Flag = 1 << iota
	// DotAll lets '.' match '\n' ((?s), pcre /s).
	DotAll
)

// Engine selects the matching algorithm.
type Engine int

// Available engines. EngineSFA is the paper's Algorithm 5 and the
// default; the others exist for comparison and ablation.
const (
	// EngineSFA matches with a precomputed D-SFA (Algorithm 5).
	EngineSFA Engine = iota
	// EngineLazySFA matches with an on-the-fly D-SFA (Sect. V-A).
	EngineLazySFA
	// EngineDFA is the sequential baseline (Algorithm 2).
	EngineDFA
	// EngineSpecDFA is the prior-work speculative parallel DFA
	// (Algorithm 3).
	EngineSpecDFA
	// EngineNFA is the bitset NFA simulation.
	EngineNFA
)

func (e Engine) String() string {
	switch e {
	case EngineSFA:
		return "sfa"
	case EngineLazySFA:
		return "lazy-sfa"
	case EngineDFA:
		return "dfa"
	case EngineSpecDFA:
		return "spec-dfa"
	case EngineNFA:
		return "nfa"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// config carries compile options.
type config struct {
	flags   Flag
	threads int
	eng     Engine
	tree    bool
	search  bool
	spawn   bool
	dfaCap  int
	sfaCap  int
	lazyMax int

	// RuleSet-only knobs (ignored by Compile).
	isolatedRules bool
	shards        int
	shardBudget   int
	cacheDir      string
	vectorIntern  bool
	noPrefilter   bool
	lazyCompile   bool
	tableBudget   *TableBudget
	scanStats     *ScanStats
}

// buildConfig folds the options and resolves defaults.
func buildConfig(opts []Option) config {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.threads <= 0 {
		cfg.threads = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// Option configures Compile.
type Option func(*config)

// WithFlags sets pattern flags (FoldCase, DotAll).
func WithFlags(f Flag) Option { return func(c *config) { c.flags = f } }

// WithThreads fixes the parallelism degree p of Algorithms 3/5.
// The default (0) uses runtime.GOMAXPROCS(0).
func WithThreads(p int) Option { return func(c *config) { c.threads = p } }

// WithEngine selects the matching algorithm (default EngineSFA).
func WithEngine(e Engine) Option { return func(c *config) { c.eng = e } }

// WithTreeReduction switches Algorithms 3/5 from the O(p) sequential
// reduction to the parallel ⊙-tree reduction.
func WithTreeReduction() Option { return func(c *config) { c.tree = true } }

// WithSearch compiles for unanchored substring search: the pattern is
// implicitly bracketed with .* on unanchored sides (a leading ^ or
// trailing $ in the pattern suppresses the respective bracket).
func WithSearch() Option { return func(c *config) { c.search = true } }

// WithDFACap bounds the intermediate DFA size (the paper's SNORT study
// uses 1000). 0 means unbounded.
func WithDFACap(n int) Option { return func(c *config) { c.dfaCap = n } }

// WithSFACap bounds the D-SFA size for the precomputed engine; beyond it
// Compile fails so the caller can fall back to EngineLazySFA or
// EngineDFA. 0 means unbounded.
func WithSFACap(n int) Option { return func(c *config) { c.sfaCap = n } }

// WithSpawnPerMatch makes the parallel engines create fresh goroutines on
// every Match instead of running on the persistent worker pool — the
// paper's thread-creation semantics (Fig. 10). The pooled default is
// faster and allocation-free in steady state.
func WithSpawnPerMatch() Option { return func(c *config) { c.spawn = true } }

// WithIsolatedRules makes NewRuleSet compile one independent engine per
// rule and scan with N full passes per input — the pre-combined
// architecture, kept as the oracle the combined automaton is
// cross-checked against. Compile ignores this option.
func WithIsolatedRules() Option { return func(c *config) { c.isolatedRules = true } }

// WithShards makes NewRuleSet plan exactly k combined shards up front
// instead of starting from one combined automaton (blow-up splitting may
// still raise the count). 0 — the default — plans automatically. Compile
// ignores this option.
func WithShards(k int) Option { return func(c *config) { c.shards = k } }

// WithShardStateBudget bounds each combined shard's D-SFA state count;
// a shard that would exceed it is split and its rules spread greedily by
// estimated automaton size. 0 uses the default budget (32 768 states,
// the u16-layout ceiling). Compile ignores this option.
func WithShardStateBudget(n int) Option { return func(c *config) { c.shardBudget = n } }

// WithShardCache points NewRuleSet's combined compiler at a
// content-addressed on-disk shard cache rooted at dir (created if
// absent): every combined shard is looked up by the hash of its rule
// membership, build budgets, and construction mode before being built
// and stored after, so repeated builds of the same rules — across
// processes and restarts — skip construction for every shard some
// earlier same-configuration build already produced. The directory is
// safe to share between differently-configured processes: budgets are
// part of the key, so a build can never adopt a shard constructed
// under a larger memory bound, and a WithVectorInterning A/B run never
// adopts tuple-built shards. Compile and isolated-mode rule sets
// ignore this option.
func WithShardCache(dir string) Option { return func(c *config) { c.cacheDir = dir } }

// WithVectorInterning restores the vector-interning combined D-SFA
// construction (hash a full |D|-long mapping vector per candidate
// state) instead of the default tuple-interned builder, which interns
// k-tuples of component D-SFA states and materializes each mapping
// vector once per state. Verdicts are byte-identical either way; the
// tuple path can intern somewhat more states (tuple identity over-
// approximates vector identity) in exchange for much cheaper cold
// construction. Kept for A/B measurement (sfabench ruleset,
// BenchmarkRuleSet_ColdBuild_*). Compile and isolated-mode rule sets
// ignore this option.
func WithVectorInterning() Option { return func(c *config) { c.vectorIntern = true } }

// WithLazyCompile lets NewRuleSet accept rules whose combined D-SFA the
// eager builder cannot afford: instead of failing with a too-many-states
// error (or building an unbounded automaton), such rules are served by
// lazy shards that materialize product states on demand during scanning
// and keep them under a table budget — evicting cold state when the
// budget fills, rebuilding it from traffic when it is needed again.
// Rules whose automata fit the shard budget keep the precomputed eager
// path, so enabling this never changes how an affordable set is built.
// Verdicts are byte-identical to the eager engine's on everything the
// eager path can compile, and to per-rule isolated scanning always.
//
// Lazy shards charge the budget from WithTableBudget, defaulting to the
// process-global one (GlobalTableBudget, unlimited until bounded). A
// lazily compiled set cannot be persisted with Save — its states are a
// traffic-dependent cache, not an artifact — so callers persist rule
// sources and recompile on load. Compile and isolated-mode rule sets
// ignore this option.
func WithLazyCompile() Option { return func(c *config) { c.lazyCompile = true } }

// WithTableBudget makes this set's lazy shards (WithLazyCompile) charge
// their materialized states against b instead of the process-global
// budget — internal/serve hands each tenant a Child of the global one.
// Compile ignores this option.
func WithTableBudget(b *TableBudget) Option { return func(c *config) { c.tableBudget = b } }

// WithGlobalTableBudget bounds the process-wide table budget at
// limitBytes (<= 0 = unlimited) and enables lazy compilation for this
// set — shorthand for SetLimit on GlobalTableBudget plus
// WithLazyCompile. The limit is process state: it applies to every lazy
// set charging the global budget, not only this one.
func WithGlobalTableBudget(limitBytes int64) Option {
	return func(c *config) {
		GlobalTableBudget().SetLimit(limitBytes)
		c.lazyCompile = true
	}
}

// WithoutPrefilter disables the literal prefilter cascade that combined
// rule sets arm by default: every shard scans every input byte, exactly
// as before the prefilter existed. The prefilter never changes verdicts
// — only which input regions the automata walk — so this knob exists for
// A/B measurement (sfabench ruleset, BenchmarkRuleSet_*_NoPrefilter) and
// as an escape hatch for low-selectivity rule sets where candidate
// windows cover most of the input anyway (the per-tenant prefilter stats
// expose exactly that ratio). Compile and isolated-mode rule sets ignore
// this option.
func WithoutPrefilter() Option { return func(c *config) { c.noPrefilter = true } }

// Regexp is a compiled pattern. It is safe for concurrent use.
type Regexp struct {
	pattern string
	cfg     config

	node *syntax.Node
	nfa  *nfa.NFA
	dfa  *dfa.DFA
	dsfa *core.DSFA // nil unless EngineSFA

	matcher engine.Matcher
}

// Compile builds a Regexp with the paper's pipeline.
func Compile(pattern string, opts ...Option) (*Regexp, error) {
	cfg := buildConfig(opts)

	var sflags syntax.Flags
	if cfg.flags&FoldCase != 0 {
		sflags |= syntax.FoldCase
	}
	if cfg.flags&DotAll != 0 {
		sflags |= syntax.DotAll
	}
	node, err := syntax.Parse(pattern, sflags)
	if err != nil {
		return nil, err
	}
	if cfg.search {
		node = syntax.BracketForSearch(node)
	}

	re := &Regexp{pattern: pattern, cfg: cfg, node: node}
	re.nfa, err = nfa.Glushkov(node)
	if err != nil {
		return nil, err
	}
	if cfg.eng == EngineNFA {
		re.matcher = engineNFA(re.nfa)
		return re, nil
	}

	d, err := dfa.Determinize(re.nfa, cfg.dfaCap)
	if err != nil {
		return nil, err
	}
	re.dfa = dfa.Minimize(d)

	red := engine.ReduceSequential
	if cfg.tree {
		red = engine.ReduceTree
	}
	var eopts []engine.Option
	if cfg.spawn {
		eopts = append(eopts, engine.WithSpawn())
	}
	switch cfg.eng {
	case EngineSFA:
		re.dsfa, err = core.BuildDSFA(re.dfa, cfg.sfaCap)
		if err != nil {
			return nil, err
		}
		re.matcher = engine.NewSFAParallel(re.dsfa, cfg.threads, red, eopts...)
	case EngineLazySFA:
		m, err := engine.NewSFALazy(re.dfa, cfg.threads, cfg.lazyMax, eopts...)
		if err != nil {
			return nil, err
		}
		re.matcher = m
	case EngineDFA:
		re.matcher = engine.NewDFASequential(re.dfa)
	case EngineSpecDFA:
		re.matcher = engine.NewDFASpeculative(re.dfa, cfg.threads, red, eopts...)
	default:
		return nil, fmt.Errorf("sfa: unknown engine %v", cfg.eng)
	}
	return re, nil
}

// engineNFA adapts the NFA simulator; kept tiny so Compile reads linearly.
func engineNFA(a *nfa.NFA) engine.Matcher { return nfaSim{nfa.NewSimulator(a)} }

type nfaSim struct{ s *nfa.Simulator }

func (m nfaSim) Match(text []byte) bool { return m.s.Match(text) }
func (m nfaSim) Name() string           { return "nfa-sim" }

// MustCompile is Compile that panics on error, for initialization of
// package-level patterns.
func MustCompile(pattern string, opts ...Option) *Regexp {
	re, err := Compile(pattern, opts...)
	if err != nil {
		panic(err)
	}
	return re
}

// Match reports whether the pattern matches data — whole-input acceptance
// by default, substring search when compiled WithSearch.
func (re *Regexp) Match(data []byte) bool { return re.matcher.Match(data) }

// MatchString is Match for strings.
func (re *Regexp) MatchString(s string) bool { return re.matcher.Match([]byte(s)) }

// Pattern returns the source pattern.
func (re *Regexp) Pattern() string { return re.pattern }

// EngineName identifies the selected engine and its parameters.
func (re *Regexp) EngineName() string { return re.matcher.Name() }

// String implements fmt.Stringer.
func (re *Regexp) String() string { return re.pattern }

// Sizes reports the automata sizes of the compiled pipeline, using the
// paper's live-state convention.
type Sizes struct {
	NFAStates int // Glushkov states (positions + 1)
	DFALive   int // minimal DFA, dead sink excluded
	DFATotal  int
	SFALive   int // D-SFA, everywhere-dead mapping excluded (0 if not built)
	SFATotal  int
	Classes   int // byte equivalence classes
}

// Sizes returns the pipeline's automata sizes. NFAStates is 0 for a
// Regexp reconstructed with Load (the NFA is not serialized).
func (re *Regexp) Sizes() Sizes {
	var s Sizes
	if re.nfa != nil {
		s.NFAStates = re.nfa.NumStates
	}
	if re.dfa != nil {
		s.DFALive = re.dfa.LiveSize()
		s.DFATotal = re.dfa.NumStates
		s.Classes = re.dfa.BC.Count
	}
	if re.dsfa != nil {
		s.SFALive = re.dsfa.LiveSize()
		s.SFATotal = re.dsfa.NumStates
	}
	return s
}

// DFA exposes the minimal DFA (nil for EngineNFA). Read-only.
func (re *Regexp) DFA() *dfa.DFA { return re.dfa }

// DSFA exposes the D-SFA when the precomputed SFA engine is selected.
// Read-only.
func (re *Regexp) DSFA() *core.DSFA { return re.dsfa }
