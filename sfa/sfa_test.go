package sfa

import (
	"bytes"
	"testing"
)

func TestCompileAndMatchDefaults(t *testing.T) {
	re, err := Compile("([0-4]{5}[5-9]{5})*")
	if err != nil {
		t.Fatal(err)
	}
	if !re.Match([]byte("0123456789")) {
		t.Error("accepted input rejected")
	}
	if re.Match([]byte("01234567890")) {
		t.Error("rejected input accepted")
	}
	if !re.MatchString("") {
		t.Error("empty word is in the language")
	}
	sizes := re.Sizes()
	if sizes.DFALive != 10 || sizes.SFALive != 109 {
		t.Errorf("sizes = %+v, want DFALive 10 SFALive 109", sizes)
	}
	if sizes.NFAStates != 11 {
		t.Errorf("NFA states = %d, want 11", sizes.NFAStates)
	}
	if sizes.Classes != 3 {
		t.Errorf("classes = %d, want 3", sizes.Classes)
	}
}

func TestAllEnginesViaAPI(t *testing.T) {
	inputs := map[string]bool{
		"":                          true,
		"0123456789":                true,
		"0123456789" + "0123456789": true,
		"012345678":                 false,
		"5123456789":                false,
	}
	for _, eng := range []Engine{EngineSFA, EngineLazySFA, EngineDFA, EngineSpecDFA, EngineNFA} {
		re, err := Compile("([0-4]{5}[5-9]{5})*", WithEngine(eng), WithThreads(3))
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		for in, want := range inputs {
			if got := re.MatchString(in); got != want {
				t.Errorf("engine %v input %q = %v, want %v", eng, in, got, want)
			}
		}
		if re.EngineName() == "" {
			t.Errorf("engine %v has no name", eng)
		}
	}
}

func TestTreeReductionOption(t *testing.T) {
	re, err := Compile("(ab)*", WithTreeReduction(), WithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if !re.Match(bytes.Repeat([]byte("ab"), 1000)) {
		t.Error("tree reduction engine rejected accepted input")
	}
}

func TestSearchSemantics(t *testing.T) {
	re, err := Compile(`cmd\.exe`, WithSearch())
	if err != nil {
		t.Fatal(err)
	}
	if !re.MatchString("GET /scripts/cmd.exe HTTP/1.1") {
		t.Error("substring not found")
	}
	if re.MatchString("GET /scripts/cmdQexe HTTP/1.1") {
		t.Error("false positive")
	}
	// Anchored search: ^ pins the match to the start.
	re, err = Compile(`^GET `, WithSearch())
	if err != nil {
		t.Fatal(err)
	}
	if !re.MatchString("GET /x HTTP/1.1") {
		t.Error("anchored prefix should match")
	}
	if re.MatchString("POST then GET ") {
		t.Error("^ must suppress the leading .*")
	}
	// $ pins to the end.
	re, err = Compile(`\.exe$`, WithSearch())
	if err != nil {
		t.Fatal(err)
	}
	if !re.MatchString("run cmd.exe") {
		t.Error("anchored suffix should match")
	}
	if re.MatchString("cmd.exe downloaded") {
		t.Error("$ must suppress the trailing .*")
	}
}

func TestFlags(t *testing.T) {
	re := MustCompile("abc", WithFlags(FoldCase))
	if !re.MatchString("AbC") {
		t.Error("FoldCase ignored")
	}
	re = MustCompile("a.b", WithFlags(DotAll))
	if !re.MatchString("a\nb") {
		t.Error("DotAll ignored")
	}
	re = MustCompile("a.b")
	if re.MatchString("a\nb") {
		t.Error("default dot must not match newline")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("("); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Compile("[ap]*[al][alp]{12}", WithDFACap(50)); err == nil {
		t.Error("expected DFA cap error")
	}
	if _, err := Compile("([0-4]{10}[5-9]{10})*", WithSFACap(10)); err == nil {
		t.Error("expected SFA cap error")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on a bad pattern")
		}
	}()
	MustCompile("(")
}

func TestPatternAccessors(t *testing.T) {
	re := MustCompile("(ab)*")
	if re.Pattern() != "(ab)*" || re.String() != "(ab)*" {
		t.Error("pattern accessors broken")
	}
	if re.DFA() == nil || re.DSFA() == nil {
		t.Error("pipeline accessors should be populated for EngineSFA")
	}
	nre := MustCompile("(ab)*", WithEngine(EngineNFA))
	if nre.DFA() != nil {
		t.Error("EngineNFA should not build a DFA")
	}
}

func TestConcurrentUse(t *testing.T) {
	re := MustCompile("(([02468][13579]){5})*", WithThreads(2))
	text := bytes.Repeat([]byte("0123456789"), 5000)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			ok := true
			for k := 0; k < 20; k++ {
				ok = ok && re.Match(text)
			}
			done <- ok
		}()
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Fatal("concurrent Match failed")
		}
	}
}
