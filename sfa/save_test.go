package sfa

import (
	"bytes"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	re := MustCompile("([0-4]{5}[5-9]{5})*", WithThreads(2))
	var buf bytes.Buffer
	if err := re.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, WithThreads(3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pattern() != re.Pattern() {
		t.Errorf("pattern = %q", got.Pattern())
	}
	s := got.Sizes()
	if s.DFALive != 10 || s.SFALive != 109 {
		t.Errorf("sizes after load: %+v", s)
	}
	for in, want := range map[string]bool{
		"":           true,
		"0123456789": true,
		"012345678":  false,
	} {
		if got.MatchString(in) != want {
			t.Errorf("loaded matcher wrong on %q", in)
		}
	}
	// A loaded Regexp supports streaming too.
	stream, err := got.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	stream.Write([]byte("01234"))
	stream.Write([]byte("56789"))
	if !stream.Accepted() {
		t.Error("stream on loaded Regexp failed")
	}
}

func TestSaveRequiresSFA(t *testing.T) {
	re := MustCompile("(ab)*", WithEngine(EngineDFA))
	if err := re.Save(&bytes.Buffer{}); err == nil {
		t.Error("Save without an SFA should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Load(bytes.NewReader([]byte("\xff\xff\xff\xffgarbage"))); err == nil {
		t.Error("implausible header accepted")
	}
	var buf bytes.Buffer
	re := MustCompile("(ab)*")
	if err := re.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func BenchmarkStreamWrite64K(b *testing.B) {
	re := MustCompile("([0-4]{5}[5-9]{5})*", WithThreads(2))
	s, err := re.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := bytes.Repeat([]byte("0123456789"), 6554) // ~64 KiB
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(chunk)
	}
}
