package sfa

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/snort"
	"repro/internal/syntax"
	"repro/internal/textgen"
)

// snortDefs converts a slice of the corpus into rule definitions with
// per-rule flags (a private copy of harness.SFAFlags — importing harness
// from an in-package sfa test would cycle).
func snortDefs(rules []snort.Rule) []RuleDef {
	defs := make([]RuleDef, len(rules))
	for i, r := range rules {
		var fl Flag
		if r.Flags&syntax.FoldCase != 0 {
			fl |= FoldCase
		}
		if r.Flags&syntax.DotAll != 0 {
			fl |= DotAll
		}
		defs[i] = RuleDef{Name: fmt.Sprintf("r%03d", r.ID), Pattern: r.Pattern, Flags: fl}
	}
	return defs
}

// oracleInputs mixes synthetic traffic lines (with planted attacks, so
// rules actually fire) and random byte strings.
func oracleInputs(t *testing.T) [][]byte {
	t.Helper()
	data, planted := textgen.Traffic{SuspiciousPerMille: 30}.Generate(1<<16, 11)
	if planted == 0 {
		t.Fatal("traffic generator planted nothing")
	}
	inputs := [][]byte{nil, data[:1<<12]}
	lines := textgen.Lines(data)
	for i := 0; i < len(lines); i += 7 {
		inputs = append(inputs, lines[i])
	}
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 40; i++ {
		in := make([]byte, r.Intn(200))
		for j := range in {
			in[j] = byte(r.Intn(256))
		}
		inputs = append(inputs, in)
	}
	return inputs
}

// TestRuleSetCombinedShardedIsolatedAgree is the oracle cross-check the
// combined architecture ships under: over the snort sample rules,
// combined (automatic), sharded (K=2, K=4), and isolated modes must
// report the identical rule set for every input. Runs under -race via
// `make race` like the rest of the suite.
func TestRuleSetCombinedShardedIsolatedAgree(t *testing.T) {
	n := 12
	if raceEnabled {
		n = 8 // same modes and shard shapes, cheaper builds
	}
	defs := snortDefs(snort.ScanSample(n))
	if len(defs) < n {
		t.Fatalf("scan sample too small: %d rules", len(defs))
	}
	base := []Option{WithSearch(), WithThreads(2), WithShardStateBudget(8192)}

	modes := map[string][]Option{
		"combined":  base,
		"sharded-2": append([]Option{WithShards(2)}, base...),
		"sharded-4": append([]Option{WithShards(4)}, base...),
		"isolated":  append([]Option{WithIsolatedRules()}, base...),
	}
	sets := make(map[string]*RuleSet, len(modes))
	for name, opts := range modes {
		rs, err := NewRuleSetFromDefs(defs, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sets[name] = rs
	}
	if k := sets["combined"].NumShards(); k >= len(defs) {
		t.Fatalf("combined mode degenerated to %d shards for %d rules", k, len(defs))
	}

	inputs := oracleInputs(t)
	matched := 0
	for _, in := range inputs {
		want := sets["isolated"].Scan(in, 0)
		matched += len(want)
		for name, rs := range sets {
			if name == "isolated" {
				continue
			}
			if got := rs.Scan(in, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s input %q: Scan=%v isolated=%v", name, in, got, want)
			}
			if got, wantAny := rs.Any(in), len(want) > 0; got != wantAny {
				t.Fatalf("%s input %q: Any=%v want %v", name, in, got, wantAny)
			}
		}
	}
	if matched == 0 {
		t.Fatal("no input matched any rule; the cross-check exercised nothing")
	}
}

// TestRuleSetConcurrentScan hammers one combined set from many
// goroutines (the -race guard for the shared scan contexts).
func TestRuleSetConcurrentScan(t *testing.T) {
	defs := snortDefs(snort.ScanSample(8))
	rs, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(2), WithShardStateBudget(4096))
	if err != nil {
		t.Fatal(err)
	}
	inputs := oracleInputs(t)
	want := make([][]string, len(inputs))
	for i, in := range inputs {
		want[i] = rs.Scan(in, 0)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i, in := range inputs {
				if got := rs.Scan(in, 0); !reflect.DeepEqual(got, want[i]) {
					done <- fmt.Errorf("goroutine %d input %d: %v vs %v", g, i, got, want[i])
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
