package sfa

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// lazyGapDefs builds n bounded-gap rules (literal, counted wildcard
// window, literal): small component DFAs whose transformation monoids —
// and any combined product — blow far past eager D-SFA budgets. This is
// the corpus shape the eager builder rejects and lazy compilation
// exists for.
func lazyGapDefs(n int) []RuleDef {
	defs := make([]RuleDef, n)
	for i := range defs {
		defs[i] = RuleDef{
			Name:    fmt.Sprintf("gap%04d", i),
			Pattern: fmt.Sprintf("q%02x.{0,%d}z%02x", i%256, 8+i%9, (i*7)%256),
		}
	}
	return defs
}

// lazyOracleSet compiles defs as per-rule sequential DFAs — no D-SFA,
// no product, no budget — the cheapest authoritative verdict source.
func lazyOracleSet(t *testing.T, defs []RuleDef, opts ...Option) *RuleSet {
	t.Helper()
	opts = append([]Option{WithIsolatedRules(), WithEngine(EngineDFA)}, opts...)
	rs, err := NewRuleSetFromDefs(defs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// lazyTrafficInputs mixes random bytes with planted gap-rule matches so
// the oracle comparison exercises accepting paths, not just rejections.
func lazyTrafficInputs(defs []RuleDef, n, size int, seed int64) [][]byte {
	r := rand.New(rand.NewSource(seed))
	inputs := make([][]byte, n)
	for i := range inputs {
		in := make([]byte, size/2+r.Intn(size/2+1))
		for j := range in {
			in[j] = byte('a' + r.Intn(26))
		}
		// Plant a few rules' literal pairs at gap distances that sometimes
		// fit the window and sometimes overshoot it.
		for p := 0; p < 3 && len(in) > 40; p++ {
			d := defs[r.Intn(len(defs))]
			parts := strings.SplitN(d.Pattern, ".", 2)
			head := parts[0]
			tail := d.Pattern[strings.LastIndexByte(d.Pattern, '}')+1:]
			pos := r.Intn(len(in) - 40)
			copy(in[pos:], head)
			copy(in[pos+len(head)+r.Intn(14):], tail)
		}
		inputs[i] = in
	}
	return inputs
}

// checkLazyAgainstOracle compares MatchMask over every input.
func checkLazyAgainstOracle(t *testing.T, label string, lazy, oracle *RuleSet, inputs [][]byte) {
	t.Helper()
	got := make([]uint64, lazy.MaskWords())
	want := make([]uint64, oracle.MaskWords())
	matched := 0
	for _, in := range inputs {
		lazy.MatchMask(in, got)
		oracle.MatchMask(in, want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: input %q: lazy=%v isolated=%v", label, in, lazy.MaskNames(got), oracle.MaskNames(want))
		}
		for _, w := range want {
			matched += popcount(w)
		}
	}
	if matched == 0 {
		t.Fatalf("%s: no input matched any rule; the cross-check exercised nothing", label)
	}
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// TestLazyRuleSetOracle cross-checks lazily compiled sets against
// isolated per-rule scanning across budget sizes — unlimited, roomy,
// and starved enough to force evictions mid-run — over mixed rule
// populations (some rules fit the eager budget, some do not).
func TestLazyRuleSetOracle(t *testing.T) {
	defs := append(lazyGapDefs(24),
		RuleDef{Name: "lit-a", Pattern: "alpha"},
		RuleDef{Name: "lit-b", Pattern: "bravo[0-9]+"},
	)
	oracle := lazyOracleSet(t, defs, WithSearch())
	inputs := lazyTrafficInputs(defs, 30, 1<<10, 17)

	budgets := map[string]*TableBudget{
		"unlimited": nil,
		"roomy":     NewTableBudget(32 << 20),
		"starved":   NewTableBudget(48 << 10),
	}
	for label, b := range budgets {
		opts := []Option{WithSearch(), WithThreads(2), WithLazyCompile(), WithShardStateBudget(256)}
		if b != nil {
			opts = append(opts, WithTableBudget(b))
		}
		rs, err := NewRuleSetFromDefs(defs, opts...)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		var lazyShards int
		for _, sh := range rs.Shards() {
			if sh.Lazy {
				lazyShards++
			}
		}
		if lazyShards == 0 {
			t.Fatalf("%s: no lazy shards for a corpus the eager budget cannot fit", label)
		}
		checkLazyAgainstOracle(t, label, rs, oracle, inputs)
		if b != nil {
			st := b.Stats()
			if st.UsedBytes > st.LimitBytes && label == "starved" {
				// Grace floors may exceed a tiny limit, but not wildly.
				if st.UsedBytes > st.LimitBytes*8 {
					t.Fatalf("%s: resident %d bytes far exceeds limit %d", label, st.UsedBytes, st.LimitBytes)
				}
			}
			if label == "starved" && st.Evictions == 0 {
				t.Fatalf("starved budget saw no evictions (resident %d, fills %d)", st.UsedBytes, st.Fills)
			}
		}
	}
}

// TestLazyRuleSetStreamOracle runs the streamed scan path under a
// starved budget: verdicts must survive mid-stream evictions because
// the carried mapping is a denotation, never a table reference.
func TestLazyRuleSetStreamOracle(t *testing.T) {
	defs := lazyGapDefs(16)
	oracle := lazyOracleSet(t, defs, WithSearch())
	rs, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(2), WithLazyCompile(),
		WithShardStateBudget(256), WithTableBudget(NewTableBudget(32<<10)))
	if err != nil {
		t.Fatal(err)
	}
	inputs := lazyTrafficInputs(defs, 20, 4<<10, 23)
	r := rand.New(rand.NewSource(29))
	got := make([]uint64, rs.MaskWords())
	want := make([]uint64, oracle.MaskWords())
	for _, in := range inputs {
		st, err := rs.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(in); {
			hi := lo + 1 + r.Intn(700)
			if hi > len(in) {
				hi = len(in)
			}
			st.Write(in[lo:hi])
			lo = hi
		}
		st.Mask(got)
		oracle.MatchMask(in, want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("stream input %q: lazy=%v isolated=%v", in, rs.MaskNames(got), oracle.MaskNames(want))
		}
	}
}

// TestLazyRuleSetRejectedCorpus is the acceptance criterion of the lazy
// subsystem: a generated corpus of 500+ bounded-gap rules that the
// eager builder rejects outright (every split still exceeds the hard
// cap) compiles and scans under WithLazyCompile with memory bounded by
// the table budget, and verdicts stay byte-identical to per-rule
// isolated scanning.
func TestLazyRuleSetRejectedCorpus(t *testing.T) {
	n := 500
	inputsN := 12
	if raceEnabled || testing.Short() {
		n = 120
		inputsN = 6
	}
	defs := lazyGapDefs(n)
	eagerOpts := []Option{WithSearch(), WithThreads(2), WithSFACap(512)}

	if _, err := NewRuleSetFromDefs(defs, eagerOpts...); err == nil {
		t.Fatal("eager build of the gap corpus unexpectedly succeeded; the corpus no longer exercises lazy compilation")
	}

	budget := NewTableBudget(16 << 20)
	rs, err := NewRuleSetFromDefs(defs, append(eagerOpts, WithLazyCompile(), WithTableBudget(budget))...)
	if err != nil {
		t.Fatalf("lazy build of the rejected corpus failed: %v", err)
	}
	lazyShards := 0
	for _, sh := range rs.Shards() {
		if sh.Lazy {
			lazyShards++
		}
	}
	if lazyShards == 0 {
		t.Fatal("rejected corpus compiled without lazy shards")
	}

	oracle := lazyOracleSet(t, defs, WithSearch())
	inputs := lazyTrafficInputs(defs, inputsN, 2<<10, 31)
	checkLazyAgainstOracle(t, "rejected-corpus", rs, oracle, inputs)

	st := budget.Stats()
	if st.UsedBytes == 0 || st.Fills == 0 {
		t.Fatalf("lazy scan charged nothing (resident %d, fills %d)", st.UsedBytes, st.Fills)
	}
	if st.UsedBytes > st.LimitBytes {
		t.Fatalf("resident bytes %d exceed the %d-byte budget", st.UsedBytes, st.LimitBytes)
	}
}

// TestLazyRuleSetConcurrentScan hammers one lazy set from many
// goroutines under a budget small enough to interleave fills and
// evictions with scans — the -race guard for the lazy engine.
func TestLazyRuleSetConcurrentScan(t *testing.T) {
	defs := lazyGapDefs(12)
	rs, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(2), WithLazyCompile(),
		WithShardStateBudget(256), WithTableBudget(NewTableBudget(48<<10)))
	if err != nil {
		t.Fatal(err)
	}
	oracle := lazyOracleSet(t, defs, WithSearch())
	inputs := lazyTrafficInputs(defs, 8, 1<<10, 37)
	want := make([][]uint64, len(inputs))
	for i, in := range inputs {
		want[i] = oracle.MatchMask(in, make([]uint64, oracle.MaskWords()))
	}
	iters := 3
	if raceEnabled {
		iters = 2
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]uint64, rs.MaskWords())
			for it := 0; it < iters; it++ {
				for i, in := range inputs {
					rs.MatchMask(in, dst)
					if !reflect.DeepEqual(dst, want[i]) {
						errc <- fmt.Errorf("goroutine %d input %d: %v vs %v", g, i, dst, want[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}
