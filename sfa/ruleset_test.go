package sfa

import (
	"reflect"
	"sync"
	"testing"
)

// testRules is the shared fixture. The sql rule's counted gap drives its
// D-SFA to ~10⁵ states at {1,32}; under the race detector's construction
// overhead the gap shrinks, which keeps every test's match semantics
// (the probe input's gap is 5 bytes) while cutting minutes of build.
var testRules = map[string]string{
	"cmd":  `cmd\.exe`,
	"sql":  sqlRulePattern(),
	"trav": `/\.\./`,
	"nop":  `\x90{4,}`,
}

func sqlRulePattern() string {
	if raceEnabled {
		return `union.{1,8}select`
	}
	return `union.{1,32}select`
}

// testRuleSet builds (once — the sql rule's D-SFA alone has ~10⁵ states)
// the combined fixture shared by the RuleSet tests.
var testRuleSet = sync.OnceValues(func() (*RuleSet, error) {
	return NewRuleSet(testRules, WithSearch(), WithFlags(FoldCase|DotAll), WithThreads(2))
})

func combinedRuleSet(t *testing.T) *RuleSet {
	t.Helper()
	rs, err := testRuleSet()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestRuleSetScan(t *testing.T) {
	rs := combinedRuleSet(t)
	if rs.Len() != 4 {
		t.Fatalf("Len = %d", rs.Len())
	}
	got := rs.Scan([]byte("GET /a/../b?q=UNION ALL SELECT cmd.exe"), 0)
	want := []string{"cmd", "sql", "trav"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Scan = %v, want %v", got, want)
	}
	if hits := rs.Scan([]byte("harmless request"), 2); hits != nil {
		t.Errorf("clean input flagged: %v", hits)
	}
}

func TestRuleSetAny(t *testing.T) {
	rs := combinedRuleSet(t)
	if !rs.Any([]byte("payload \x90\x90\x90\x90\x90 here")) {
		t.Error("nop sled missed")
	}
	if rs.Any([]byte("nothing to see")) {
		t.Error("false positive")
	}
}

func TestRuleSetNamesAndRule(t *testing.T) {
	rs := combinedRuleSet(t)
	names := rs.Names()
	want := []string{"cmd", "nop", "sql", "trav"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Names = %v, want %v", names, want)
	}
	re, ok := rs.Rule("trav")
	if !ok {
		t.Fatal("Rule(trav) missing")
	}
	if !re.Match([]byte("GET /../../etc")) {
		t.Error("Rule(trav) engine does not match")
	}
	re2, _ := rs.Rule("trav")
	if re2 != re {
		t.Error("Rule(trav) not cached")
	}
	if _, ok := rs.Rule("absent"); ok {
		t.Error("Rule(absent) found")
	}
	// Names must return a copy.
	names[0] = "mutated"
	if rs.Names()[0] != "cmd" {
		t.Error("Names leaked internal state")
	}
}

func TestRuleSetCompileError(t *testing.T) {
	_, err := NewRuleSet(map[string]string{"bad": "("})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); got == "" || !contains(got, "bad") {
		t.Errorf("error should name the rule: %q", got)
	}
	if _, err := NewRuleSet(nil); err == nil {
		t.Error("empty rule set accepted")
	}
	_, err = NewRuleSetFromDefs([]RuleDef{
		{Name: "dup", Pattern: "a"},
		{Name: "dup", Pattern: "b"},
	})
	if err == nil || !contains(err.Error(), "dup") {
		t.Errorf("duplicate names accepted: %v", err)
	}
}

// TestRuleSetShards checks the combined fixture's structure: few shards
// covering every rule, with non-trivial stats.
func TestRuleSetShards(t *testing.T) {
	rs := combinedRuleSet(t)
	if k := rs.NumShards(); k < 1 || k >= rs.Len() {
		t.Fatalf("NumShards = %d, want 1 ≤ k < %d (combined, not isolated)", k, rs.Len())
	}
	covered := 0
	for _, sh := range rs.Shards() {
		if sh.SFAStates <= 0 || sh.DFAStates <= 0 {
			t.Fatalf("empty shard stats: %+v", sh)
		}
		covered += len(sh.Rules)
	}
	if covered != rs.Len() {
		t.Fatalf("shards cover %d rules, want %d", covered, rs.Len())
	}
}

// TestRuleSetPerRuleFlags checks that RuleDef flags are honoured per
// rule: the fold-case rule matches uppercase while its sibling stays
// case-sensitive.
func TestRuleSetPerRuleFlags(t *testing.T) {
	rs, err := NewRuleSetFromDefs([]RuleDef{
		{Name: "fold", Pattern: `attack`, Flags: FoldCase},
		{Name: "exact", Pattern: `attack`},
	}, WithSearch())
	if err != nil {
		t.Fatal(err)
	}
	got := rs.Scan([]byte("ATTACK VECTOR"), 0)
	if !reflect.DeepEqual(got, []string{"fold"}) {
		t.Errorf("Scan = %v, want [fold]", got)
	}
	got = rs.Scan([]byte("attack vector"), 0)
	if !reflect.DeepEqual(got, []string{"exact", "fold"}) {
		t.Errorf("Scan = %v, want [exact fold]", got)
	}
}

// TestRuleSetModesAgree cross-checks combined, forced-shard, and
// isolated modes on the shared fixture patterns.
func TestRuleSetModesAgree(t *testing.T) {
	inputs := [][]byte{
		[]byte("GET /a/../b?q=UNION ALL SELECT cmd.exe"),
		[]byte("harmless request"),
		[]byte("payload \x90\x90\x90\x90\x90 here"),
		[]byte("UNION/**/SELECT"),
		[]byte("cmd.exe /../.."),
		{},
	}
	base := combinedRuleSet(t)
	for _, opts := range [][]Option{
		{WithSearch(), WithFlags(FoldCase | DotAll), WithThreads(2), WithShards(2)},
		{WithSearch(), WithFlags(FoldCase | DotAll), WithThreads(2), WithIsolatedRules()},
	} {
		rs, err := NewRuleSet(testRules, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range inputs {
			if got, want := rs.Scan(in, 0), base.Scan(in, 0); !reflect.DeepEqual(got, want) {
				t.Errorf("%s input %q: Scan = %v, want %v", rs.modeName(), in, got, want)
			}
			if got, want := rs.Any(in), base.Any(in); got != want {
				t.Errorf("%s input %q: Any = %v, want %v", rs.modeName(), in, got, want)
			}
		}
	}
}

// TestRuleSetCapsAndEngineFallback pins the pre-combined contracts: a
// WithSFACap too small for a rule fails NewRuleSet fast (the combined
// path must not fall back to an unbounded build), and a non-SFA engine
// choice keeps the per-rule architecture it implies.
func TestRuleSetCapsAndEngineFallback(t *testing.T) {
	defs := []RuleDef{{Name: "big", Pattern: `[0-4]{9}[5-9]{9}`}, {Name: "small", Pattern: `ab+`}}
	if _, err := NewRuleSetFromDefs(defs, WithSFACap(8)); err == nil {
		t.Error("WithSFACap(8) did not fail the combined compile")
	}
	if _, err := NewRuleSetFromDefs(defs, WithDFACap(3)); err == nil {
		t.Error("WithDFACap(3) did not fail the combined compile")
	}
	rs, err := NewRuleSetFromDefs(defs, WithEngine(EngineLazySFA))
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumShards() != len(defs) {
		t.Errorf("EngineLazySFA rule set has %d shards, want isolated %d", rs.NumShards(), len(defs))
	}
	re, ok := rs.Rule("small")
	if !ok || !contains(re.EngineName(), "lazy") {
		t.Errorf("Rule(small) engine = %q, want a lazy engine", re.EngineName())
	}
	if got := rs.Scan([]byte("abb"), 0); len(got) != 1 || got[0] != "small" {
		t.Errorf("Scan = %v, want [small]", got)
	}
}

// modeName identifies a RuleSet's architecture in test output.
func (rs *RuleSet) modeName() string {
	if rs.isolated != nil {
		return "isolated"
	}
	return "combined"
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
