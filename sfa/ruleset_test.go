package sfa

import (
	"reflect"
	"testing"
)

func testRuleSet(t *testing.T) *RuleSet {
	t.Helper()
	rs, err := NewRuleSet(map[string]string{
		"cmd":  `cmd\.exe`,
		"sql":  `union.{1,32}select`,
		"trav": `/\.\./`,
		"nop":  `\x90{4,}`,
	}, WithSearch(), WithFlags(FoldCase|DotAll), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestRuleSetScan(t *testing.T) {
	rs := testRuleSet(t)
	if rs.Len() != 4 {
		t.Fatalf("Len = %d", rs.Len())
	}
	got := rs.Scan([]byte("GET /a/../b?q=UNION ALL SELECT cmd.exe"), 0)
	want := []string{"cmd", "sql", "trav"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Scan = %v, want %v", got, want)
	}
	if hits := rs.Scan([]byte("harmless request"), 2); hits != nil {
		t.Errorf("clean input flagged: %v", hits)
	}
}

func TestRuleSetAny(t *testing.T) {
	rs := testRuleSet(t)
	if !rs.Any([]byte("payload \x90\x90\x90\x90\x90 here")) {
		t.Error("nop sled missed")
	}
	if rs.Any([]byte("nothing to see")) {
		t.Error("false positive")
	}
}

func TestRuleSetNamesAndRule(t *testing.T) {
	rs := testRuleSet(t)
	names := rs.Names()
	want := []string{"cmd", "nop", "sql", "trav"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("Names = %v, want %v", names, want)
	}
	if _, ok := rs.Rule("sql"); !ok {
		t.Error("Rule(sql) missing")
	}
	if _, ok := rs.Rule("absent"); ok {
		t.Error("Rule(absent) found")
	}
	// Names must return a copy.
	names[0] = "mutated"
	if rs.Names()[0] != "cmd" {
		t.Error("Names leaked internal state")
	}
}

func TestRuleSetCompileError(t *testing.T) {
	_, err := NewRuleSet(map[string]string{"bad": "("})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := err.Error(); got == "" || !contains(got, "bad") {
		t.Errorf("error should name the rule: %q", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
