package sfa

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// Stream matches input that arrives in pieces — files read in blocks,
// network payloads, log shipping. It is a direct payoff of the SFA's
// algebra: each Write scans its chunk in parallel from the identity
// mapping (Algorithm 5, lines 1–5) and folds the result into the running
// transformation with the associative ⊙, so the state carried between
// Writes is a single mapping of size |D| regardless of how much input has
// been consumed. Chunks of any size may be fed in any number of calls;
// Theorem 3 guarantees the verdict is split-invariant.
//
// Chunk scans dispatch through the engine's persistent worker pool and
// reuse its pooled match contexts, so a steady-state Write performs no
// heap allocation and creates no goroutines.
//
// A Stream is not safe for concurrent use; each goroutine should own one
// (Regexp.NewStream is cheap).
type Stream struct {
	re    *Regexp
	eng   *engine.SFAParallel
	cur   []int16 // running transformation (starts at identity)
	tmp   []int16
	bytes int64
}

// NewStream starts incremental matching. Only patterns compiled with
// EngineSFA (the default) support streaming.
func (re *Regexp) NewStream() (*Stream, error) {
	if re.dsfa == nil {
		return nil, fmt.Errorf("sfa: streaming needs EngineSFA, have %s", re.EngineName())
	}
	eng := re.matcher.(*engine.SFAParallel) // invariant: dsfa != nil ⇒ SFA engine
	n := eng.MappingLen()
	s := &Stream{re: re, eng: eng, cur: make([]int16, n), tmp: make([]int16, n)}
	eng.InitMapping(s.cur)
	return s, nil
}

// Write consumes the next chunk of input. It never fails; the error
// return satisfies io.Writer so a Stream can terminate io.Copy pipelines.
func (s *Stream) Write(chunk []byte) (int, error) {
	s.cur, s.tmp = s.eng.ComposeChunk(s.cur, s.tmp, chunk)
	s.bytes += int64(len(chunk))
	return len(chunk), nil
}

// Accepted reports whether the input consumed so far is accepted. It may
// be called at any point; the stream continues afterwards.
func (s *Stream) Accepted() bool {
	return s.eng.AcceptedFrom(s.cur)
}

// Bytes returns the number of bytes consumed.
func (s *Stream) Bytes() int64 { return s.bytes }

// Reset rewinds the stream to the identity mapping (no input consumed).
func (s *Stream) Reset() {
	s.eng.InitMapping(s.cur)
	s.bytes = 0
}

// Compose merges another stream's consumed input *after* this one's, as
// if the two byte sequences had been concatenated: s ← s · t. Both
// streams must come from the same Regexp. This enables out-of-order
// processing: scan file segments on different machines or goroutines,
// then fold the mappings.
func (s *Stream) Compose(t *Stream) error {
	if t.re != s.re {
		return fmt.Errorf("sfa: cannot compose streams of different patterns")
	}
	core.ComposeVec(s.tmp, s.cur, t.cur)
	s.cur, s.tmp = s.tmp, s.cur
	s.bytes += t.bytes
	return nil
}
