package sfa

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Stream matches input that arrives in pieces — files read in blocks,
// network payloads, log shipping. It is a direct payoff of the SFA's
// algebra: each Write scans its chunk in parallel from the identity
// mapping (Algorithm 5, lines 1–5) and folds the result into the running
// transformation with the associative ⊙, so the state carried between
// Writes is a single mapping of size |D| regardless of how much input has
// been consumed. Chunks of any size may be fed in any number of calls;
// Theorem 3 guarantees the verdict is split-invariant.
//
// A Stream is not safe for concurrent use; each goroutine should own one
// (Regexp.NewStream is cheap).
type Stream struct {
	re      *Regexp
	threads int
	cur     []int16 // running transformation (starts at identity)
	tmp     []int16
	bytes   int64
}

// NewStream starts incremental matching. Only patterns compiled with
// EngineSFA (the default) support streaming.
func (re *Regexp) NewStream() (*Stream, error) {
	if re.dsfa == nil {
		return nil, fmt.Errorf("sfa: streaming needs EngineSFA, have %s", re.EngineName())
	}
	n := re.dfa.NumStates
	s := &Stream{re: re, threads: re.cfg.threads, cur: make([]int16, n), tmp: make([]int16, n)}
	copy(s.cur, re.dsfa.Map(re.dsfa.Start))
	return s, nil
}

// Write consumes the next chunk of input. It never fails; the error
// return satisfies io.Writer so a Stream can terminate io.Copy pipelines.
func (s *Stream) Write(chunk []byte) (int, error) {
	ds := s.re.dsfa
	p := s.threads
	if len(chunk) < 4096 || p < 2 {
		// Small chunk: sequential run from the identity would waste the
		// fork; instead advance the running mapping directly by walking
		// the SFA from the state *equal to* the current composition...
		// which may not be materialized. Run the chunk from identity
		// sequentially and compose.
		f := ds.Run(ds.Start, chunk)
		core.ComposeVec(s.tmp, s.cur, ds.Map(f))
		s.cur, s.tmp = s.tmp, s.cur
		s.bytes += int64(len(chunk))
		return len(chunk), nil
	}
	// Parallel scan of this chunk (Algorithm 5 on the chunk).
	locals := make([]int32, p)
	var wg sync.WaitGroup
	size := len(chunk) / p
	for i := 0; i < p; i++ {
		lo, hi := i*size, (i+1)*size
		if i == p-1 {
			hi = len(chunk)
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			locals[i] = ds.Run(ds.Start, chunk[lo:hi])
		}(i, lo, hi)
	}
	wg.Wait()
	for _, f := range locals {
		core.ComposeVec(s.tmp, s.cur, ds.Map(f))
		s.cur, s.tmp = s.tmp, s.cur
	}
	s.bytes += int64(len(chunk))
	return len(chunk), nil
}

// Accepted reports whether the input consumed so far is accepted. It may
// be called at any point; the stream continues afterwards.
func (s *Stream) Accepted() bool {
	d := s.re.dfa
	return d.Accept[s.cur[d.Start]]
}

// Bytes returns the number of bytes consumed.
func (s *Stream) Bytes() int64 { return s.bytes }

// Reset rewinds the stream to the identity mapping (no input consumed).
func (s *Stream) Reset() {
	ds := s.re.dsfa
	copy(s.cur, ds.Map(ds.Start))
	s.bytes = 0
}

// Compose merges another stream's consumed input *after* this one's, as
// if the two byte sequences had been concatenated: s ← s · t. Both
// streams must come from the same Regexp. This enables out-of-order
// processing: scan file segments on different machines or goroutines,
// then fold the mappings.
func (s *Stream) Compose(t *Stream) error {
	if t.re != s.re {
		return fmt.Errorf("sfa: cannot compose streams of different patterns")
	}
	core.ComposeVec(s.tmp, s.cur, t.cur)
	s.cur, s.tmp = s.tmp, s.cur
	s.bytes += t.bytes
	return nil
}
