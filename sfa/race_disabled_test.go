//go:build !race

package sfa

const raceEnabled = false
