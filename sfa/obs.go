package sfa

import (
	"sort"

	"repro/internal/multi"
	"repro/internal/obs"
)

// ScanStats accumulates streaming-scan observability for a rule set:
// chunk counts, chunk bytes, and log₂ histograms of per-chunk compose
// latency and chunk size. Recording is lock-free and allocation-free —
// the instrumented hot path keeps its 0 allocs/op contract — so one
// ScanStats can be shared by every goroutine scanning the set. Attach
// with WithScanStats; read with Snapshot at any time.
type ScanStats = obs.ScanStats

// ScanSnapshot is a point-in-time copy of a ScanStats.
type ScanSnapshot = obs.ScanSnapshot

// HistogramSnapshot is a point-in-time copy of one log₂ histogram:
// Buckets[i] counts observations in [2^(i-1), 2^i).
type HistogramSnapshot = obs.HistogramSnapshot

// StateCount is one (boundary state, frequency) pair from a shard's
// chunk-boundary frequency table — the empirical distribution Ko-style
// speculative matching would warm-start from.
type StateCount = obs.StateCount

// NewScanStats returns a fresh ScanStats ready to attach with
// WithScanStats.
func NewScanStats() *ScanStats { return &obs.ScanStats{} }

// WithScanStats attaches st to every combined shard the rule set
// builds: each engine records per-chunk compose latency, chunk bytes,
// and (on eager shards) the chunk-boundary state into it during Match,
// MatchMask, and streaming scans. The same ScanStats may be shared
// across sets to aggregate, or given per-set to separate. Recording is
// wait-free; nil detaches. Compile and isolated-mode rule sets ignore
// this option.
func WithScanStats(st *ScanStats) Option {
	return func(c *config) { c.scanStats = st }
}

// BuildReport is the structured account of the build that produced a
// rule set: planner decisions (bins, splits, merges), cache traffic,
// and wall-clock per phase. See RuleSet.BuildReport.
type BuildReport = multi.BuildReport

// BuildReport reports how this rule set was built. For a Rebuild the
// report covers only the incremental work (reused shards carry no
// build time); isolated-mode sets return the zero report.
func (rs *RuleSet) BuildReport() BuildReport {
	if rs.set == nil {
		return BuildReport{}
	}
	return rs.set.BuildReport()
}

// ScanRecord is one scan's flight-recorder entry: tenant, size, and the
// per-stage wall-time split (read / prefilter / compose / match). See
// FlightRecorder.
type ScanRecord = obs.ScanRecord

// FlightRecorder is the always-on scan flight recorder: a fixed-size
// lock-free ring holding the last N ScanRecords. Record is wait-free
// and allocation-free; Snapshot returns the most recent records newest
// first. A nil recorder is inert, so callers need no enable branch.
// The serving stack keeps one per hub and exposes it at /debug/scans;
// library users can embed their own around any scan loop.
type FlightRecorder = obs.Ring

// NewFlightRecorder returns a recorder retaining the last n scans
// (rounded up to a power of two); n <= 0 returns nil (recording off).
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewRing(n) }

// RuleHeat is one rule's row of the match-heat table.
type RuleHeat struct {
	Name    string `json:"name"`
	Matches int64  `json:"matches"`
}

// RuleHeat returns the per-rule match counts, hottest first (ties in
// definition order): how many verdict computations — one-shot
// MatchMask/Scan calls and RuleStream.Mask reads — reported each rule
// matched since this set was built. Accumulation rides the verdict
// path allocation-free (one popcount loop over the result mask), so
// the table is always on. Rebuild starts a fresh table, like
// PrefilterStats. Isolated-mode sets return nil.
func (rs *RuleSet) RuleHeat() []RuleHeat {
	if rs.set == nil {
		return nil
	}
	counts := rs.set.RuleHeat()
	out := make([]RuleHeat, len(counts))
	for i, n := range counts {
		out[i] = RuleHeat{Name: rs.defs[i].Name, Matches: n}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Matches > out[b].Matches })
	return out
}

// Speculation-viability thresholds: the default reading of a
// SpeculationReport. Ko-style speculative chunk matching predicts each
// chunk's boundary state and verifies; it pays off only when a small
// prediction set covers almost every boundary. "Top-8 states cover at
// least 90% of boundaries, measured over at least 1024 chunks" is the
// bar this package applies — see docs/observability.md for how to
// reason about other operating points.
const (
	// SpeculationMinSamples is the minimum boundary-sample count before
	// a shard's coverage number is considered meaningful.
	SpeculationMinSamples = 1024
	// SpeculationTopK is the prediction-set size the viability verdict
	// evaluates.
	SpeculationTopK = 8
	// SpeculationMinCoverage is the top-k coverage fraction a shard must
	// reach for speculation to be worth building.
	SpeculationMinCoverage = 0.9
)

// ShardSpeculation is one eager shard's boundary-state concentration
// measurement.
type ShardSpeculation struct {
	Shard    int   `json:"shard"`
	Samples  int64 `json:"samples"`  // chunk boundaries recorded
	Distinct int   `json:"distinct"` // distinct states the table attributed
	Other    int64 `json:"other"`    // boundaries outside the fixed table
	// TopK[k] is the fraction of boundaries landing in the k hottest
	// states, for k ∈ {1, 4, 8}.
	Top1 float64 `json:"top1_coverage"`
	Top4 float64 `json:"top4_coverage"`
	Top8 float64 `json:"top8_coverage"`
	// Viable applies the package thresholds to this shard alone.
	Viable bool `json:"viable"`
}

// SpeculationReport summarizes boundary-state concentration across the
// set's eager shards — the measurement that decides whether building
// the Ko-style speculative chunk fast path would pay off.
type SpeculationReport struct {
	// Shards holds one row per eager shard that recorded boundary
	// samples. Lazy shards and shards that never streamed are absent.
	Shards []ShardSpeculation `json:"shards"`
	// Measured is true when at least one shard reached
	// SpeculationMinSamples — below that the coverage numbers are noise.
	Measured bool `json:"measured"`
	// Viable is true when Measured and every measured shard clears
	// SpeculationMinCoverage at SpeculationTopK. One cold shard spoils
	// it by design: speculation mispredictions cost a full re-scan, so
	// the fast path must hold across the whole set.
	Viable bool `json:"viable"`
}

// SpeculationReport computes the boundary-state concentration report
// from the shards' StateFreq tables. The tables fill only when the set
// scans with an attached ScanStats (WithScanStats) through the
// streaming path; without that the report is empty and not Measured.
func (rs *RuleSet) SpeculationReport() SpeculationReport {
	var rep SpeculationReport
	allViable := true
	for i, sh := range rs.Shards() {
		samples := sh.HotOther
		for _, sc := range sh.HotStates {
			samples += sc.Count
		}
		if samples == 0 {
			continue
		}
		row := ShardSpeculation{
			Shard:    i,
			Samples:  samples,
			Distinct: len(sh.HotStates),
			Other:    sh.HotOther,
			Top1:     obs.TopKCoverage(sh.HotStates, sh.HotOther, 1),
			Top4:     obs.TopKCoverage(sh.HotStates, sh.HotOther, 4),
			Top8:     obs.TopKCoverage(sh.HotStates, sh.HotOther, SpeculationTopK),
		}
		row.Viable = samples >= SpeculationMinSamples && row.Top8 >= SpeculationMinCoverage
		if samples >= SpeculationMinSamples {
			rep.Measured = true
			if !row.Viable {
				allViable = false
			}
		}
		rep.Shards = append(rep.Shards, row)
	}
	rep.Viable = rep.Measured && allViable
	return rep
}
