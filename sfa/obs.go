package sfa

import (
	"repro/internal/multi"
	"repro/internal/obs"
)

// ScanStats accumulates streaming-scan observability for a rule set:
// chunk counts, chunk bytes, and log₂ histograms of per-chunk compose
// latency and chunk size. Recording is lock-free and allocation-free —
// the instrumented hot path keeps its 0 allocs/op contract — so one
// ScanStats can be shared by every goroutine scanning the set. Attach
// with WithScanStats; read with Snapshot at any time.
type ScanStats = obs.ScanStats

// ScanSnapshot is a point-in-time copy of a ScanStats.
type ScanSnapshot = obs.ScanSnapshot

// HistogramSnapshot is a point-in-time copy of one log₂ histogram:
// Buckets[i] counts observations in [2^(i-1), 2^i).
type HistogramSnapshot = obs.HistogramSnapshot

// StateCount is one (boundary state, frequency) pair from a shard's
// chunk-boundary frequency table — the empirical distribution Ko-style
// speculative matching would warm-start from.
type StateCount = obs.StateCount

// NewScanStats returns a fresh ScanStats ready to attach with
// WithScanStats.
func NewScanStats() *ScanStats { return &obs.ScanStats{} }

// WithScanStats attaches st to every combined shard the rule set
// builds: each engine records per-chunk compose latency, chunk bytes,
// and (on eager shards) the chunk-boundary state into it during Match,
// MatchMask, and streaming scans. The same ScanStats may be shared
// across sets to aggregate, or given per-set to separate. Recording is
// wait-free; nil detaches. Compile and isolated-mode rule sets ignore
// this option.
func WithScanStats(st *ScanStats) Option {
	return func(c *config) { c.scanStats = st }
}

// BuildReport is the structured account of the build that produced a
// rule set: planner decisions (bins, splits, merges), cache traffic,
// and wall-clock per phase. See RuleSet.BuildReport.
type BuildReport = multi.BuildReport

// BuildReport reports how this rule set was built. For a Rebuild the
// report covers only the incremental work (reused shards carry no
// build time); isolated-mode sets return the zero report.
func (rs *RuleSet) BuildReport() BuildReport {
	if rs.set == nil {
		return BuildReport{}
	}
	return rs.set.BuildReport()
}
