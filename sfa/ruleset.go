package sfa

import (
	"fmt"
	"sync"
)

// RuleSet matches many patterns against the same input — the deep-packet-
// inspection workload (one SNORT ruleset, many packets) that motivates
// the paper's introduction. Patterns are compiled independently; Scan
// fans the rules out over a bounded worker pool while each rule's own
// engine parallelizes over the input.
type RuleSet struct {
	names []string
	res   []*Regexp
}

// NewRuleSet compiles the named patterns with shared options. It fails on
// the first pattern that does not compile, identifying it by name.
func NewRuleSet(rules map[string]string, opts ...Option) (*RuleSet, error) {
	rs := &RuleSet{}
	for name := range rules {
		rs.names = append(rs.names, name)
	}
	// Deterministic order for reporting.
	sortStrings(rs.names)
	for _, name := range rs.names {
		re, err := Compile(rules[name], opts...)
		if err != nil {
			return nil, fmt.Errorf("sfa: rule %s: %w", name, err)
		}
		rs.res = append(rs.res, re)
	}
	return rs, nil
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.res) }

// Names returns the rule names in the order Scan reports them.
func (rs *RuleSet) Names() []string {
	out := make([]string, len(rs.names))
	copy(out, rs.names)
	return out
}

// Rule returns the compiled pattern for a name, if present.
func (rs *RuleSet) Rule(name string) (*Regexp, bool) {
	for i, n := range rs.names {
		if n == name {
			return rs.res[i], true
		}
	}
	return nil, false
}

// Scan matches every rule against data, running up to `workers` rules
// concurrently (0 = all). It returns the names of matching rules in the
// deterministic Names() order.
func (rs *RuleSet) Scan(data []byte, workers int) []string {
	if workers <= 0 || workers > len(rs.res) {
		workers = len(rs.res)
	}
	hits := make([]bool, len(rs.res))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range rs.res {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			hits[i] = rs.res[i].Match(data)
			<-sem
		}(i)
	}
	wg.Wait()
	var out []string
	for i, h := range hits {
		if h {
			out = append(out, rs.names[i])
		}
	}
	return out
}

// Any reports whether at least one rule matches, stopping the fan-out as
// soon as one does.
func (rs *RuleSet) Any(data []byte) bool {
	done := make(chan bool, len(rs.res))
	for i := range rs.res {
		go func(i int) { done <- rs.res[i].Match(data) }(i)
	}
	hit := false
	for range rs.res {
		if <-done {
			hit = true
			// Drain the rest; goroutines already run to completion.
		}
	}
	return hit
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
