package sfa

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/multi"
	"repro/internal/prefilter"
	"repro/internal/snapshot"
	"repro/internal/syntax"
)

// RuleSet matches many patterns against the same input — the deep-packet-
// inspection workload (one SNORT ruleset, many packets) that motivates
// the paper's introduction.
//
// By default the patterns are compiled into a single combined D-SFA whose
// accept states carry a per-rule bitmask, so one pooled parallel pass
// over the input reports every matching rule at once. When the combined
// automaton would blow past its state budget — the known construction
// hazard of product automata — the compiler falls back to K combined
// shards scanned concurrently, with rules assigned greedily by estimated
// automaton size. WithIsolatedRules restores the previous architecture of
// one independent engine per rule (N full passes per input); it survives
// as the oracle the combined path is cross-checked against, and it is
// also what a rule set compiled WithEngine other than the default SFA
// engine uses (the combined automaton is SFA-only). WithDFACap and
// WithSFACap keep their per-rule fail-fast contract in both modes;
// WithTreeReduction has no effect on the combined pass, whose reduction
// is the O(p) sequential fold.
type RuleSet struct {
	defs []RuleDef // sorted by name; rule index == reporting position
	idx  map[string]int
	keys []string // per-rule compile identity (pattern + effective flags)
	opts []Option

	set      *multi.Set // combined/sharded engine
	isolated []*Regexp  // per-rule engines (WithIsolatedRules)

	mu    sync.Mutex
	cache map[string]*Regexp // lazy per-rule compilations for Rule
}

// RuleDef names one pattern of a rule set. Flags are OR-ed with any
// set-wide WithFlags option, so rule sets can mix per-rule modifiers
// (as SNORT's pcre options do).
type RuleDef struct {
	Name    string
	Pattern string
	Flags   Flag
}

// NewRuleSet compiles the named patterns with shared options. It fails on
// the first pattern that does not compile, identifying it by name.
func NewRuleSet(rules map[string]string, opts ...Option) (*RuleSet, error) {
	defs := make([]RuleDef, 0, len(rules))
	for name, pattern := range rules {
		defs = append(defs, RuleDef{Name: name, Pattern: pattern})
	}
	return NewRuleSetFromDefs(defs, opts...)
}

// NewRuleSetFromDefs is NewRuleSet for explicit definitions with
// per-rule flags. Rules are reported in name order regardless of input
// order; duplicate names are rejected.
func NewRuleSetFromDefs(defs []RuleDef, opts ...Option) (*RuleSet, error) {
	rs, _, err := buildRuleSet(defs, opts, nil)
	return rs, err
}

// ReloadStats reports what a Rebuild carried over versus recompiled,
// and the prefilter shape the new generation came up with.
type ReloadStats struct {
	ShardsReused  int // combined shards (or per-rule engines) kept by pointer
	ShardsRebuilt int // shards (or engines) built from scratch
	RulesAdded    int // rules new in this generation, or with changed pattern/flags
	RulesRemoved  int // rules gone from this generation, or with changed pattern/flags
	// Prefilter is the new generation's literal-cascade snapshot (static
	// shape only — the dynamic counters are zero on a fresh build).
	Prefilter PrefilterStats
}

// Rebuild compiles a new RuleSet for defs with this set's options,
// reusing every combined shard whose rule membership is unchanged — the
// expensive product/D-SFA construction is paid only for added rules,
// edited rules, and the former shard-mates of removed rules. In isolated
// mode the per-rule engines are reused the same way. The receiver is not
// modified; in-flight matching against it stays valid (internal/serve's
// Ruleboard builds its atomic hot-reload on exactly this).
func (rs *RuleSet) Rebuild(defs []RuleDef) (*RuleSet, ReloadStats, error) {
	next, reuse, err := buildRuleSet(defs, rs.opts, rs)
	if err != nil {
		return nil, ReloadStats{}, err
	}
	stats := ReloadStats{
		ShardsReused:  reuse.Reused,
		ShardsRebuilt: reuse.Rebuilt,
		Prefilter:     next.PrefilterStats(),
	}
	oldKeys := make(map[string]string, len(rs.defs))
	for i, d := range rs.defs {
		oldKeys[d.Name] = rs.keys[i]
	}
	for i, d := range next.defs {
		if k, ok := oldKeys[d.Name]; !ok || k != next.keys[i] {
			stats.RulesAdded++
		}
	}
	newKeys := make(map[string]string, len(next.defs))
	for i, d := range next.defs {
		newKeys[d.Name] = next.keys[i]
	}
	for name, k := range oldKeys {
		if nk, ok := newKeys[name]; !ok || nk != k {
			stats.RulesRemoved++
		}
	}
	return next, stats, nil
}

// buildRuleSet is the shared constructor; a non-nil prev enables shard
// (or isolated-engine) reuse across generations.
func buildRuleSet(defs []RuleDef, opts []Option, prev *RuleSet) (*RuleSet, multi.ReuseStats, error) {
	if len(defs) == 0 {
		return nil, multi.ReuseStats{}, fmt.Errorf("sfa: empty rule set")
	}
	cfg := buildConfig(opts)

	rs := &RuleSet{
		defs: append([]RuleDef(nil), defs...),
		opts: opts,
		idx:  make(map[string]int, len(defs)),
	}
	// Deterministic order for reporting.
	sortDefs(rs.defs)
	for i, d := range rs.defs {
		if _, dup := rs.idx[d.Name]; dup {
			return nil, multi.ReuseStats{}, fmt.Errorf("sfa: duplicate rule %s", d.Name)
		}
		rs.idx[d.Name] = i
	}
	// A rule's compiled automaton is fully determined by its pattern and
	// effective flags (set-wide options being fixed per set), so this key
	// is what reuse across generations — and the content-addressed shard
	// cache — matches on.
	rs.keys = make([]string, len(rs.defs))
	for i, d := range rs.defs {
		rs.keys[i] = ruleKey(cfg.flags, cfg.search, d)
	}

	// The combined automaton is SFA-only: a rule set compiled for any
	// other engine (lazy, DFA, spec, NFA) keeps the per-rule
	// architecture those engines imply.
	if cfg.isolatedRules || cfg.eng != EngineSFA {
		var pool map[string][]*Regexp
		if prev != nil && prev.isolated != nil {
			pool = make(map[string][]*Regexp, len(prev.isolated))
			for i, re := range prev.isolated {
				pool[prev.keys[i]] = append(pool[prev.keys[i]], re)
			}
		}
		rs.isolated = make([]*Regexp, len(rs.defs))
		var stats multi.ReuseStats
		for i, d := range rs.defs {
			if q := pool[rs.keys[i]]; len(q) > 0 {
				rs.isolated[i], pool[rs.keys[i]] = q[0], q[1:]
				stats.Reused++
				continue
			}
			re, err := rs.compileRule(d)
			if err != nil {
				return nil, multi.ReuseStats{}, err
			}
			rs.isolated[i] = re
			stats.Rebuilt++
		}
		return rs, stats, nil
	}

	nodes := make([]*syntax.Node, len(rs.defs))
	infos := make([]prefilter.Rule, len(rs.defs))
	for i, d := range rs.defs {
		node, info, err := parseRule(d, cfg)
		if err != nil {
			return nil, multi.ReuseStats{}, fmt.Errorf("sfa: rule %s: %w", d.Name, err)
		}
		nodes[i] = node
		infos[i] = info
	}
	var prevSet *multi.Set
	var prevKeys []string
	if prev != nil && prev.set != nil {
		prevSet, prevKeys = prev.set, prev.keys
	}
	mo := multi.Options{
		SFABudget:     cfg.shardBudget,
		SFAHardCap:    cfg.sfaCap,
		ForceShards:   cfg.shards,
		PerRuleDFACap: cfg.dfaCap,
		Threads:       cfg.threads,
		Spawn:         cfg.spawn,
		VectorIntern:  cfg.vectorIntern,
		Lazy:          cfg.lazyCompile,
		Budget:        cfg.tableBudget.inner(),
		Stats:         cfg.scanStats,
	}
	if !cfg.noPrefilter {
		mo.Prefilter = infos
	}
	if cfg.cacheDir != "" {
		st, err := snapshot.OpenStore(cfg.cacheDir)
		if err != nil {
			return nil, multi.ReuseStats{}, fmt.Errorf("sfa: shard cache: %w", err)
		}
		mo.Cache = st
	}
	set, stats, err := multi.Recompile(nodes, rs.keys, prevSet, prevKeys, mo)
	if err != nil {
		return nil, multi.ReuseStats{}, fmt.Errorf("sfa: %w", err)
	}
	rs.set = set
	return rs, stats, nil
}

// sortDefs puts rule definitions in reporting order (by name).
func sortDefs(defs []RuleDef) {
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
}

// ruleKey is a rule's compile-identity string: pattern source plus every
// semantics-affecting input — flags AND the search/whole matching mode,
// which changes the compiled automaton via search bracketing. Equal keys
// guarantee identical compiled automata — the contract behind hot-reload
// shard reuse and the content-addressed shard cache alike (a key that
// omitted the mode would let a -whole build load a search-bracketed
// shard from a shared cache directory and return substring verdicts).
func ruleKey(setFlags Flag, search bool, d RuleDef) string {
	mode := byte('w')
	if search {
		mode = 's'
	}
	return fmt.Sprintf("%02x%c\x00%s", uint8(setFlags|d.Flags), mode, d.Pattern)
}

// parseRule runs the front end — parse, per-rule flags, literal
// extraction, search bracketing — that the combined compiler shares with
// Compile. The extraction sees the rule as written (before the .*
// brackets, which would make every literal optional); a rule whose AST
// defeats extraction gets the zero info — uncovered, scanned in full —
// never an error.
func parseRule(d RuleDef, cfg config) (*syntax.Node, prefilter.Rule, error) {
	var sflags syntax.Flags
	if (cfg.flags|d.Flags)&FoldCase != 0 {
		sflags |= syntax.FoldCase
	}
	if (cfg.flags|d.Flags)&DotAll != 0 {
		sflags |= syntax.DotAll
	}
	node, err := syntax.Parse(d.Pattern, sflags)
	if err != nil {
		return nil, prefilter.Rule{}, err
	}
	info := prefilter.Extract(node, cfg.search)
	if cfg.search {
		node = syntax.BracketForSearch(node)
	}
	return node, info, nil
}

// compileRule builds the rule's own isolated Regexp (per-rule flags
// appended so they win over the set-wide WithFlags).
func (rs *RuleSet) compileRule(d RuleDef) (*Regexp, error) {
	cfg := buildConfig(rs.opts)
	opts := append(append([]Option(nil), rs.opts...), WithFlags(cfg.flags|d.Flags))
	re, err := Compile(d.Pattern, opts...)
	if err != nil {
		return nil, fmt.Errorf("sfa: rule %s: %w", d.Name, err)
	}
	return re, nil
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.defs) }

// Defs returns a copy of the rule definitions in reporting (Names)
// order — what a caller persisting or mirroring the set (internal/serve's
// state directory) round-trips through NewRuleSetFromDefs.
func (rs *RuleSet) Defs() []RuleDef {
	return append([]RuleDef(nil), rs.defs...)
}

// Names returns the rule names in the order Scan reports them.
func (rs *RuleSet) Names() []string {
	out := make([]string, len(rs.defs))
	for i, d := range rs.defs {
		out[i] = d.Name
	}
	return out
}

// NumShards returns how many combined automata the set was compiled
// into: 1 when every rule fit one combined D-SFA, more after a blow-up
// fallback, and Len() in isolated mode.
func (rs *RuleSet) NumShards() int {
	if rs.isolated != nil {
		return len(rs.isolated)
	}
	return rs.set.NumShards()
}

// ShardInfo describes one combined shard of the set.
type ShardInfo struct {
	Rules      []string // rule names covered by this shard
	DFAStates  int      // combined minimal DFA, live states
	SFAStates  int      // combined D-SFA, live states
	Layout     string   // resolved transition-table layout
	TableBytes int64    // resident match-table bytes
	BuildID    uint64   // construction id; stable when Rebuild reuses the shard
	// Prefilter is the shard's scan mode under the literal cascade:
	// "window" (scans only candidate windows around literal hits), "gate"
	// (skipped outright when none of its literals occur), "full" (always
	// scans everything), or "off" when the set has no prefilter.
	Prefilter string
	// Lazy marks a shard compiled WithLazyCompile: its product states are
	// materialized on demand under the table budget. For lazy shards
	// DFAStates is the summed component-DFA size, SFAStates the resident
	// (currently materialized) state count, and the counters below track
	// its cache behaviour.
	Lazy          bool
	ResidentBytes int64 // bytes currently charged to the table budget
	Fills         int64 // states materialized since build
	Evictions     int64 // whole-structure resets under budget pressure
	// HotStates is the shard's chunk-boundary state frequency table
	// (descending), populated only when the set scans with an attached
	// ScanStats (WithScanStats); HotOther counts boundary crossings the
	// fixed-size table could not attribute. The distribution is the
	// warm-start set Ko-style speculative chunk matching would use.
	HotStates []StateCount
	HotOther  int64
	// Always-on cost attribution: wall time and traffic this shard's
	// engine consumed, accumulated over the engine's lifetime. Rebuild
	// reuses unchanged engines, so a reused shard's account spans
	// generations — exactly what "which shard costs" needs.
	ComposeNs   int64 // ns composing chunks / one-shot scans
	ScanChunks  int64 // chunks + one-shot scans that reached the automaton
	ScanBytes   int64 // bytes the engine actually walked
	CandWindows int64 // prefilter candidate windows verified
}

// Shards reports per-shard statistics; in isolated mode every rule is
// its own shard.
func (rs *RuleSet) Shards() []ShardInfo {
	if rs.isolated != nil {
		out := make([]ShardInfo, len(rs.isolated))
		for i, re := range rs.isolated {
			s := re.Sizes()
			out[i] = ShardInfo{
				Rules:     []string{rs.defs[i].Name},
				DFAStates: s.DFALive,
				SFAStates: s.SFALive,
				Prefilter: "off",
			}
		}
		return out
	}
	infos := rs.set.Shards()
	out := make([]ShardInfo, len(infos))
	for i, info := range infos {
		names := make([]string, len(info.Rules))
		for j, r := range info.Rules {
			names[j] = rs.defs[r].Name
		}
		out[i] = ShardInfo{
			Rules:         names,
			DFAStates:     info.DFAStates,
			SFAStates:     info.SFAStates,
			Layout:        info.Layout,
			TableBytes:    info.TableBytes,
			BuildID:       info.BuildID,
			Prefilter:     info.Prefilter,
			Lazy:          info.Lazy,
			ResidentBytes: info.ResidentBytes,
			Fills:         info.Fills,
			Evictions:     info.Evictions,
			HotStates:     info.HotStates,
			HotOther:      info.HotOther,
			ComposeNs:     info.ComposeNs,
			ScanChunks:    info.ScanChunks,
			ScanBytes:     info.ScanBytes,
			CandWindows:   info.CandWindows,
		}
	}
	return out
}

// PrefilterStats is a point-in-time snapshot of a rule set's literal
// prefilter cascade: its static shape (what extraction achieved, how the
// shards were classified) and its dynamic effect (how much input the
// automata actually walked). The byte and chunk counters accumulate over
// the set's lifetime across Scan, MatchMask, and RuleStream use; the
// CandidateBytes/TotalBytes ratio is the selectivity signal — near 1.0
// the cascade is pure overhead and WithoutPrefilter (or better rules) is
// the fix.
type PrefilterStats struct {
	Enabled  bool   `json:"enabled"`
	Stage    string `json:"stage,omitempty"`    // cascade stage: memchr, byte-table, bmh, shift, aho-corasick
	Literals int    `json:"literals,omitempty"` // distinct literals matched

	RulesCovered   int `json:"rules_covered"`   // rules the cascade accelerates (literals or prefix bound)
	RulesUncovered int `json:"rules_uncovered"` // rules that always scan in full

	WindowShards int `json:"window_shards"`
	PrefixShards int `json:"prefix_shards"`
	GateShards   int `json:"gate_shards"`
	FullShards   int `json:"full_shards"`

	ShardsSkipped  int64 `json:"shards_skipped"`  // one-shot shard scans skipped outright
	CandidateBytes int64 `json:"candidate_bytes"` // bytes walked by prefiltered shards
	TotalBytes     int64 `json:"total_bytes"`     // bytes they would have walked unfiltered
	ChunksSkipped  int64 `json:"chunks_skipped"`  // stream shard-chunks with no candidate work
	ChunksScanned  int64 `json:"chunks_scanned"`  // stream shard-chunks with candidate windows

	MatcherCalls int64 `json:"matcher_calls"` // global literal matcher invocations
	MatcherBytes int64 `json:"matcher_bytes"` // input bytes swept by the matcher
	MatcherHits  int64 `json:"matcher_hits"`  // literal occurrences it surfaced
}

// PrefilterStats reports the literal cascade armed on this set. The zero
// value means no prefilter: the set was compiled WithoutPrefilter, is in
// isolated mode, or was loaded by a path that could not re-extract.
func (rs *RuleSet) PrefilterStats() PrefilterStats {
	if rs.set == nil {
		return PrefilterStats{}
	}
	s := rs.set.PrefilterStats()
	return PrefilterStats{
		Enabled:        s.Enabled,
		Stage:          s.Stage,
		Literals:       s.Literals,
		RulesCovered:   s.RulesCovered,
		RulesUncovered: s.RulesUncovered,
		WindowShards:   s.WindowShards,
		PrefixShards:   s.PrefixShards,
		GateShards:     s.GateShards,
		FullShards:     s.FullShards,
		ShardsSkipped:  s.ShardsSkipped,
		CandidateBytes: s.CandidateBytes,
		TotalBytes:     s.TotalBytes,
		ChunksSkipped:  s.ChunksSkipped,
		ChunksScanned:  s.ChunksScanned,
		MatcherCalls:   s.MatcherCalls,
		MatcherBytes:   s.MatcherBytes,
		MatcherHits:    s.MatcherHits,
	}
}

// Rule returns the compiled pattern for a name, if present. In combined
// mode the per-rule Regexp is not part of the match path, so it is
// compiled on first access and cached.
func (rs *RuleSet) Rule(name string) (*Regexp, bool) {
	i, ok := rs.idx[name]
	if !ok {
		return nil, false
	}
	if rs.isolated != nil {
		return rs.isolated[i], true
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if re, ok := rs.cache[name]; ok {
		return re, true
	}
	re, err := rs.compileRule(rs.defs[i])
	if err != nil {
		// The combined front end parsed this rule at construction; an
		// isolated compile can only fail on a cap option, in which case
		// there is no per-rule engine to hand out.
		return nil, false
	}
	if rs.cache == nil {
		rs.cache = make(map[string]*Regexp)
	}
	rs.cache[name] = re
	return re, true
}

// MaskWords returns the rule bitmask width in uint64 words — the
// capacity MatchMask and RuleStream.Mask require of their buffers.
func (rs *RuleSet) MaskWords() int { return (len(rs.defs) + 63) / 64 }

// MatchMask scans data once and writes the rule bitmask — bit i set iff
// rule i (in Names() order) matches — into dst, which must have
// MaskWords() capacity; dst[:MaskWords()] is returned. In combined mode
// this is the zero-allocation hot path: shards are scanned sequentially
// on the calling goroutine (each shard's pass is itself chunk-parallel
// on the worker pool) into the caller's buffer. Use Scan for the
// shard-concurrent form.
func (rs *RuleSet) MatchMask(data []byte, dst []uint64) []uint64 {
	if rs.isolated == nil {
		return rs.set.Scan(data, 1, dst)
	}
	dst = dst[:rs.MaskWords()]
	for i := range dst {
		dst[i] = 0
	}
	for i, hit := range rs.isolatedHits(data, 0) {
		if hit {
			dst[i>>6] |= 1 << (i & 63)
		}
	}
	return dst
}

// MaskNames decodes a rule bitmask (from MatchMask or RuleStream.Mask)
// into matching rule names, in Names() order.
func (rs *RuleSet) MaskNames(mask []uint64) []string {
	var out []string
	for i := range rs.defs {
		if mask[i>>6]&(1<<(i&63)) != 0 {
			out = append(out, rs.defs[i].Name)
		}
	}
	return out
}

// Scan matches every rule against data and returns the names of matching
// rules in the deterministic Names() order. In combined mode this is one
// pooled pass per shard, with up to `workers` shards scanned concurrently
// (0 = all); in isolated mode it fans the per-rule engines out over up to
// `workers` goroutines (0 = all).
func (rs *RuleSet) Scan(data []byte, workers int) []string {
	if rs.isolated != nil {
		hits := rs.isolatedHits(data, workers)
		var out []string
		for i, h := range hits {
			if h {
				out = append(out, rs.defs[i].Name)
			}
		}
		return out
	}
	return rs.MaskNames(rs.set.Scan(data, workers, make([]uint64, rs.set.Words())))
}

// isolatedHits runs the per-rule engines over data, up to `workers` at a
// time (0 = all), returning one verdict per rule.
func (rs *RuleSet) isolatedHits(data []byte, workers int) []bool {
	if workers <= 0 || workers > len(rs.isolated) {
		workers = len(rs.isolated)
	}
	hits := make([]bool, len(rs.isolated))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range rs.isolated {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			hits[i] = rs.isolated[i].Match(data)
			<-sem
		}(i)
	}
	wg.Wait()
	return hits
}

// Any reports whether at least one rule matches. Combined shards carry
// an any-rule accept bit, so this needs no mask handling and stops at
// the first matching shard.
func (rs *RuleSet) Any(data []byte) bool {
	if rs.isolated == nil {
		return rs.set.Any(data)
	}
	done := make(chan bool, len(rs.isolated))
	for i := range rs.isolated {
		go func(i int) { done <- rs.isolated[i].Match(data) }(i)
	}
	hit := false
	for range rs.isolated {
		if <-done {
			hit = true
			// Drain the rest; goroutines already run to completion.
		}
	}
	return hit
}
