package sfa

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/snort"
)

// snapshotDefs is a small mixed-flag rule set for codec tests.
func snapshotDefs() []RuleDef {
	return []RuleDef{
		{Name: "passwd", Pattern: `/etc/passwd`},
		{Name: "cmd", Pattern: `(cmd|command)\.exe`, Flags: FoldCase},
		{Name: "digits", Pattern: `[0-9]{6,}`},
		{Name: "dup-a", Pattern: `select.+from`, Flags: FoldCase},
		{Name: "dup-b", Pattern: `select.+from`, Flags: FoldCase},
	}
}

// maskEqual compares two rule bitmasks.
func maskEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertSameVerdicts checks byte-identical MatchMask output across rule
// sets over the oracle inputs.
func assertSameVerdicts(t *testing.T, want, got *RuleSet, label string, inputs [][]byte) {
	t.Helper()
	wdst := make([]uint64, want.MaskWords())
	gdst := make([]uint64, got.MaskWords())
	for _, in := range inputs {
		w := want.MatchMask(in, wdst)
		g := got.MatchMask(in, gdst)
		if !maskEqual(w, g) {
			t.Fatalf("%s: verdict mismatch on %d-byte input %.40q: want %x got %x",
				label, len(in), in, w, g)
		}
	}
}

// TestRuleSetSnapshotRoundTrip is the codec oracle: combined and sharded
// sets saved and reloaded must produce byte-identical MatchMask verdicts
// to the freshly built set — and to the isolated per-rule oracle.
func TestRuleSetSnapshotRoundTrip(t *testing.T) {
	defs := snapshotDefs()
	inputs := oracleInputs(t)
	base := []Option{WithSearch(), WithThreads(2)}

	isolated, err := NewRuleSetFromDefs(defs, append(base, WithIsolatedRules())...)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 2, 3} {
		opts := base
		if shards > 0 {
			opts = append(opts, WithShards(shards))
		}
		fresh, err := NewRuleSetFromDefs(defs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fresh.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadRuleSet(bytes.NewReader(buf.Bytes()), WithThreads(3))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		label := fmt.Sprintf("shards=%d", shards)
		if loaded.Len() != fresh.Len() || loaded.NumShards() != fresh.NumShards() {
			t.Fatalf("%s: loaded %d rules %d shards, want %d/%d",
				label, loaded.Len(), loaded.NumShards(), fresh.Len(), fresh.NumShards())
		}
		assertSameVerdicts(t, fresh, loaded, label+" vs fresh", inputs)
		assertSameVerdicts(t, isolated, loaded, label+" vs isolated", inputs)

		// Loaded shards carry the persisted content-derived BuildID (top
		// bit set) — the observable proof nothing was recompiled.
		for i, sh := range loaded.Shards() {
			if sh.BuildID&(1<<63) == 0 {
				t.Fatalf("%s: loaded shard %d has sequential build id %d (recompiled?)", label, i, sh.BuildID)
			}
		}
		// Streaming over a loaded set must agree with one-shot matching.
		st, err := loaded.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		data := inputs[1]
		for i := 0; i < len(data); i += 100 {
			end := i + 100
			if end > len(data) {
				end = len(data)
			}
			st.Write(data[i:end])
		}
		sm := st.Mask(make([]uint64, loaded.MaskWords()))
		om := fresh.MatchMask(data, make([]uint64, fresh.MaskWords()))
		if !maskEqual(sm, om) {
			t.Fatalf("%s: stream mask %x != one-shot %x", label, sm, om)
		}
	}
}

// TestSnapshotSaveNeedsCombined: isolated and non-SFA rule sets carry no
// combined tables; Save must refuse rather than write a partial file.
func TestSnapshotSaveNeedsCombined(t *testing.T) {
	rs, err := NewRuleSetFromDefs(snapshotDefs(), WithSearch(), WithIsolatedRules())
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save on an isolated rule set succeeded")
	}
}

// TestLoadRuleSetRejectsCorruption: every truncation must error, and
// random single-bit flips must either error or (never) change verdicts —
// the CRCs make silent acceptance effectively impossible, and nothing
// may panic.
func TestLoadRuleSetRejectsCorruption(t *testing.T) {
	rs, err := NewRuleSetFromDefs(snapshotDefs(), WithSearch(), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	for _, cut := range []int{0, 1, 7, 8, 9, 15, len(snap) / 3, len(snap) / 2, len(snap) - 5, len(snap) - 1} {
		if cut >= len(snap) {
			continue
		}
		if _, err := LoadRuleSet(bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(snap))
		}
	}

	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), snap...)
		pos := r.Intn(len(mut))
		mut[pos] ^= 1 << r.Intn(8)
		got, err := LoadRuleSet(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		// A flip that decodes (e.g. in a rule name before the CRC was
		// introduced) would be a silent corruption; with the trailer CRC
		// this should be unreachable.
		t.Fatalf("bit flip at byte %d accepted (loaded %d rules)", pos, got.Len())
	}
}

// TestShardCacheWarmsRepeatedBuilds: a second cold build over the same
// rules with the same cache directory must come entirely from disk —
// observable through the stable (top-bit) BuildIDs — and agree verdict
// for verdict with the first.
func TestShardCacheWarmsRepeatedBuilds(t *testing.T) {
	dir := t.TempDir()
	defs := snapshotDefs()
	opts := []Option{WithSearch(), WithThreads(2), WithShardCache(dir)}

	first, err := NewRuleSetFromDefs(defs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewRuleSetFromDefs(defs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range second.Shards() {
		if sh.BuildID&(1<<63) == 0 {
			t.Fatalf("second build shard %d has sequential build id %d — cache missed", i, sh.BuildID)
		}
	}
	assertSameVerdicts(t, first, second, "cached rebuild", oracleInputs(t))

	// A cache hit must survive a rule-set edit when shard memberships
	// are stable: with forced per-rule shards, adding a rule leaves
	// every other shard's membership (and so its content key) intact.
	perRule := append(append([]Option(nil), opts...), WithShards(len(defs)))
	if _, err := NewRuleSetFromDefs(defs, perRule...); err != nil {
		t.Fatal(err)
	}
	edited := append(append([]RuleDef(nil), defs...), RuleDef{Name: "extra", Pattern: `xp_cmdshell`})
	third, err := NewRuleSetFromDefs(edited, append(opts, WithShards(len(edited)))...)
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for _, sh := range third.Shards() {
		if sh.BuildID&(1<<63) != 0 {
			warm++
		}
	}
	if warm < len(defs) {
		t.Fatalf("edited per-rule set reused %d cached shards, want ≥%d", warm, len(defs))
	}
}

// TestShardCacheSearchModeIsolation: rule keys include the search/whole
// matching mode, so a shared cache directory can never serve a
// search-bracketed shard to a whole-input build (which would silently
// turn whole-input acceptance into substring search).
func TestShardCacheSearchModeIsolation(t *testing.T) {
	dir := t.TempDir()
	defs := []RuleDef{{Name: "abc", Pattern: `abc`}}
	searchSet, err := NewRuleSetFromDefs(defs, WithSearch(), WithShardCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	wholeSet, err := NewRuleSetFromDefs(defs, WithShardCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("xxabcxx")
	if got := searchSet.Scan(in, 0); len(got) != 1 {
		t.Fatalf("search set missed substring: %v", got)
	}
	if got := wholeSet.Scan(in, 0); len(got) != 0 {
		t.Fatalf("whole-input set matched a substring — cache served the search-mode shard: %v", got)
	}
	if got := wholeSet.Scan([]byte("abc"), 0); len(got) != 1 {
		t.Fatalf("whole-input set missed exact input: %v", got)
	}
}

// TestLoadedRuleSetRebuild: a loaded set supports hot reload with shard
// reuse, exactly like a freshly built one.
func TestLoadedRuleSetRebuild(t *testing.T) {
	defs := snapshotDefs()
	rs, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRuleSet(bytes.NewReader(buf.Bytes()), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	before := loaded.Shards()
	edited := append(append([]RuleDef(nil), defs...), RuleDef{Name: "extra", Pattern: `xp_cmdshell`})
	next, stats, err := loaded.Rebuild(edited)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsReused == 0 {
		t.Fatalf("rebuild of a loaded set reused nothing: %+v", stats)
	}
	after := map[uint64]bool{}
	for _, sh := range next.Shards() {
		after[sh.BuildID] = true
	}
	kept := 0
	for _, sh := range before {
		if after[sh.BuildID] {
			kept++
		}
	}
	if kept == 0 {
		t.Fatal("no loaded shard survived the rebuild by BuildID")
	}
}

// TestSnapshotWarmLoadSnort is the acceptance gate: over the curated
// snort sample, a full warm load must beat the cold build by ≥2× and
// produce byte-identical MatchMask verdicts. (The margin was 10× when
// cold builds vector-interned; the tuple-interned construction made
// cold builds themselves ~9× faster, so the warm win is now a few ×
// of a much smaller number — decode+validate vs parse/product/D-SFA.)
func TestSnapshotWarmLoadSnort(t *testing.T) {
	n := 16
	if raceEnabled {
		n = 8
	}
	defs := snortDefs(snort.ScanSample(n))
	opts := []Option{WithSearch(), WithThreads(2)}

	coldStart := time.Now()
	cold, err := NewRuleSetFromDefs(defs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(coldStart)

	var buf bytes.Buffer
	if err := cold.Save(&buf); err != nil {
		t.Fatal(err)
	}
	warmStart := time.Now()
	warm, err := LoadRuleSet(bytes.NewReader(buf.Bytes()), WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(warmStart)

	t.Logf("cold build %v, warm load %v (%.1f×), snapshot %d KiB",
		coldDur, warmDur, float64(coldDur)/float64(warmDur), buf.Len()>>10)
	if warmDur*2 > coldDur {
		t.Errorf("warm load %v is not ≥2× faster than cold build %v", warmDur, coldDur)
	}
	assertSameVerdicts(t, cold, warm, "snort warm load", oracleInputs(t))
}
