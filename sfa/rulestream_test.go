package sfa

import (
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/snort"
)

// streamFixtureDefs is a small mixed rule sample: realistic snort-shaped
// patterns the traffic generator actually triggers.
func streamFixtureDefs(t *testing.T) []RuleDef {
	t.Helper()
	n := 10
	if raceEnabled {
		n = 6
	}
	defs := snortDefs(snort.ScanSample(n))
	if len(defs) < n {
		t.Fatalf("scan sample too small: %d rules", len(defs))
	}
	return defs
}

// chunkings splits text pseudo-randomly, mixing empty, single-byte, and
// large chunks — the satellite's randomized chunk-split oracle.
func chunkings(r *rand.Rand, text []byte) [][]byte {
	var chunks [][]byte
	for off := 0; off < len(text); {
		var sz int
		switch r.Intn(4) {
		case 0:
			sz = 0 // empty write
		case 1:
			sz = 1 // single byte
		default:
			sz = 1 + r.Intn(5000)
		}
		if off+sz > len(text) {
			sz = len(text) - off
		}
		chunks = append(chunks, text[off:off+sz])
		off += sz
	}
	return append(chunks, nil) // trailing empty write
}

// TestRuleStreamMatchesOneShot is the core acceptance oracle: for every
// architecture (combined single-shard, forced 2/4 shards, isolated), the
// streamed mask after a random chunking must equal both the one-shot
// MatchMask of the same set and the isolated oracle's verdict.
func TestRuleStreamMatchesOneShot(t *testing.T) {
	defs := streamFixtureDefs(t)
	base := []Option{WithSearch(), WithThreads(2), WithShardStateBudget(8192)}
	modes := map[string][]Option{
		"combined":  base,
		"sharded-2": append([]Option{WithShards(2)}, base...),
		"sharded-4": append([]Option{WithShards(4)}, base...),
		"isolated":  append([]Option{WithIsolatedRules()}, base...),
	}
	sets := make(map[string]*RuleSet, len(modes))
	for name, opts := range modes {
		rs, err := NewRuleSetFromDefs(defs, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sets[name] = rs
	}

	inputs := oracleInputs(t)
	r := rand.New(rand.NewSource(99))
	matched := 0
	for _, in := range inputs {
		oracle := sets["isolated"].Scan(in, 0)
		matched += len(oracle)
		for name, rs := range sets {
			oneShot := rs.MatchMask(in, make([]uint64, rs.MaskWords()))
			if got := rs.MaskNames(oneShot); !reflect.DeepEqual(got, oracle) {
				t.Fatalf("%s one-shot input %q: %v, oracle %v", name, in, got, oracle)
			}
			st, err := rs.NewStream()
			if err != nil {
				t.Fatalf("%s: NewStream: %v", name, err)
			}
			for _, chunk := range chunkings(r, in) {
				n, err := st.Write(chunk)
				if err != nil || n != len(chunk) {
					t.Fatalf("Write = %d, %v", n, err)
				}
			}
			if got := st.Mask(make([]uint64, rs.MaskWords())); !reflect.DeepEqual(got, oneShot) {
				t.Fatalf("%s streamed input %q: mask %v, one-shot %v", name, in, got, oneShot)
			}
			if st.Bytes() != int64(len(in)) {
				t.Fatalf("Bytes = %d, want %d", st.Bytes(), len(in))
			}
			if got := st.Matches(); !reflect.DeepEqual(got, oracle) {
				t.Fatalf("%s Matches() %v, oracle %v", name, got, oracle)
			}
		}
	}
	if matched == 0 {
		t.Fatal("oracle never fired — fixture rules don't match the traffic")
	}
}

// TestRuleStreamComposeOutOfOrder: segments scanned on independent
// streams and folded with Compose must equal the in-order scan — in both
// combined and isolated modes, including composing after a rule has
// already accepted.
func TestRuleStreamComposeOutOfOrder(t *testing.T) {
	defs := []RuleDef{
		{Name: "ab", Pattern: `(ab)*`},
		{Name: "xp", Pattern: `xp_cmdshell`, Flags: FoldCase},
	}
	for _, opts := range [][]Option{
		{WithThreads(2)},
		{WithThreads(2), WithIsolatedRules()},
	} {
		rs, err := NewRuleSetFromDefs(defs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		text := []byte(strings.Repeat("ab", 30_001))
		half := len(text)/2 + 1 // odd cut splits an "ab" pair
		s1, _ := rs.NewStream()
		s2, _ := rs.NewStream()
		s2.Write(text[half:]) // second half first
		s1.Write(text[:half])
		if err := s1.Compose(s2); err != nil {
			t.Fatal(err)
		}
		if got := s1.Matches(); !reflect.DeepEqual(got, []string{"ab"}) {
			t.Fatalf("composed verdict %v", got)
		}
		if s1.Bytes() != int64(len(text)) {
			t.Fatalf("composed Bytes = %d", s1.Bytes())
		}

		// Compose after accept: s1 already accepts (ab)*; appending a
		// segment that breaks the parity must flip the verdict off, and
		// appending a repairing segment must flip it back on.
		s3, _ := rs.NewStream()
		s3.Write([]byte("a"))
		if err := s1.Compose(s3); err != nil {
			t.Fatal(err)
		}
		if s1.Any() {
			t.Fatal("verdict survived a composed trailing 'a'")
		}
		s4, _ := rs.NewStream()
		s4.Write([]byte("b"))
		if err := s1.Compose(s4); err != nil {
			t.Fatal(err)
		}
		if got := s1.Matches(); !reflect.DeepEqual(got, []string{"ab"}) {
			t.Fatalf("verdict after repairing compose: %v", got)
		}

		// Cross-set compose is rejected even for identical rules.
		other, err := NewRuleSetFromDefs(defs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		so, _ := other.NewStream()
		if err := s1.Compose(so); err == nil {
			t.Fatal("cross-set compose should fail")
		}
	}
}

// TestRuleStreamResetAndReuse: Reset rewinds to the empty input; a reused
// stream must behave like a fresh one.
func TestRuleStreamResetAndReuse(t *testing.T) {
	rs, err := NewRuleSet(map[string]string{"ab": `(ab)*`, "ax": `a+x`}, WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := rs.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Matches(); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("empty input: %v (ε ∈ L((ab)*))", got)
	}
	st.Write([]byte("aaax"))
	if got := st.Matches(); !reflect.DeepEqual(got, []string{"ax"}) {
		t.Fatalf("aaax: %v", got)
	}
	st.Reset()
	if st.Bytes() != 0 {
		t.Fatal("Reset kept byte count")
	}
	st.Write([]byte("ab"))
	if got := st.Matches(); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("after reset, ab: %v", got)
	}
}

// TestRuleStreamIsWriter: io.Copy pipelines terminate at a RuleStream.
func TestRuleStreamIsWriter(t *testing.T) {
	rs, err := NewRuleSet(map[string]string{"ab": `(ab)*`}, WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := rs.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(st, strings.NewReader(strings.Repeat("ab", 100_000)))
	if err != nil || n != 200_000 {
		t.Fatalf("io.Copy = %d, %v", n, err)
	}
	if !st.Any() {
		t.Fatal("(ab)^100000 rejected")
	}
}

// TestRuleStreamNonSFAEngineFails: isolated rule sets on engines without
// streaming support must fail NewStream with the offending rule named.
func TestRuleStreamNonSFAEngineFails(t *testing.T) {
	rs, err := NewRuleSet(map[string]string{"ab": `(ab)*`}, WithEngine(EngineDFA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.NewStream(); err == nil {
		t.Fatal("streaming on EngineDFA should fail")
	} else if !strings.Contains(err.Error(), "ab") {
		t.Fatalf("error does not name the rule: %v", err)
	}
}

// TestRuleSetRebuild: the sfa-level hot-reload contract — verdicts match
// a from-scratch build, untouched shards keep their build ids, and the
// stats book-keep adds/removes.
func TestRuleSetRebuild(t *testing.T) {
	defs := streamFixtureDefs(t)
	rs, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(1), WithShardStateBudget(2048))
	if err != nil {
		t.Fatal(err)
	}
	oldIDs := map[uint64][]string{}
	for _, sh := range rs.Shards() {
		oldIDs[sh.BuildID] = sh.Rules
	}

	// Drop one rule, add one, keep the rest.
	next := append([]RuleDef(nil), defs[1:]...)
	next = append(next, RuleDef{Name: "zz-new", Pattern: `union[ -]select`, Flags: FoldCase})
	rebuilt, stats, err := rs.Rebuild(next)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RulesAdded != 1 || stats.RulesRemoved != 1 {
		t.Fatalf("diff stats %+v, want 1 added / 1 removed", stats)
	}
	if stats.ShardsReused == 0 && rs.NumShards() > 1 {
		t.Fatalf("no shard survived a one-rule change: %+v", stats)
	}
	reused := 0
	for _, sh := range rebuilt.Shards() {
		if old, ok := oldIDs[sh.BuildID]; ok {
			reused++
			if !reflect.DeepEqual(old, sh.Rules) {
				t.Fatalf("reused shard %d changed rules: %v → %v", sh.BuildID, old, sh.Rules)
			}
		}
	}
	if reused != stats.ShardsReused {
		t.Fatalf("%d shards share old build ids, stats say %d", reused, stats.ShardsReused)
	}

	// Semantics: the rebuilt set must agree with a from-scratch build.
	scratch, err := NewRuleSetFromDefs(next, WithSearch(), WithThreads(1), WithShardStateBudget(2048))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range oracleInputs(t) {
		if got, want := rebuilt.Scan(in, 0), scratch.Scan(in, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("input %q: rebuilt %v, scratch %v", in, got, want)
		}
	}

	// The old generation must stay fully usable (serving relies on it).
	if got, want := rs.Scan([]byte("nothing here"), 0), ([]string)(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("old generation corrupted: %v", got)
	}
}

// TestRuleSetRebuildIsolated: per-rule engines are reused by pointer in
// isolated mode.
func TestRuleSetRebuildIsolated(t *testing.T) {
	defs := []RuleDef{
		{Name: "a", Pattern: `a+`},
		{Name: "b", Pattern: `b+`},
	}
	rs, err := NewRuleSetFromDefs(defs, WithIsolatedRules(), WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	next := append([]RuleDef(nil), defs...)
	next = append(next, RuleDef{Name: "c", Pattern: `c+`})
	rebuilt, stats, err := rs.Rebuild(next)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsReused != 2 || stats.ShardsRebuilt != 1 {
		t.Fatalf("isolated reuse stats %+v", stats)
	}
	for i, name := range []string{"a", "b"} {
		old, _ := rs.Rule(name)
		now, _ := rebuilt.Rule(name)
		if old != now {
			t.Fatalf("rule %s (index %d) engine not reused by pointer", name, i)
		}
	}
	if got := rebuilt.Scan([]byte("ccc"), 0); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("added rule not matching: %v", got)
	}
}

// TestMatchMaskIsolatedAgreesWithScan closes the mask API over both
// architectures.
func TestMatchMaskIsolatedAgreesWithScan(t *testing.T) {
	defs := []RuleDef{
		{Name: "ab", Pattern: `(ab)*`},
		{Name: "ax", Pattern: `a+x`},
	}
	for _, opts := range [][]Option{{WithThreads(1)}, {WithThreads(1), WithIsolatedRules()}} {
		rs, err := NewRuleSetFromDefs(defs, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range [][]byte{nil, []byte("ab"), []byte("ax"), []byte("q")} {
			mask := rs.MatchMask(in, make([]uint64, rs.MaskWords()))
			if got, want := rs.MaskNames(mask), rs.Scan(in, 0); !reflect.DeepEqual(got, want) {
				t.Fatalf("input %q: mask names %v, Scan %v", in, got, want)
			}
		}
	}
}
