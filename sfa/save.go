package sfa

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/engine"
)

// Save serializes a compiled pattern (pattern text plus DFA plus D-SFA)
// so it can be reloaded with Load without recompiling — Table III shows
// construction dominates start-up for large automata. Only the default
// EngineSFA carries the tables Save needs.
func (re *Regexp) Save(w io.Writer) error {
	if re.dsfa == nil {
		return fmt.Errorf("sfa: Save needs EngineSFA, have %s", re.EngineName())
	}
	var len32 [4]byte
	binary.LittleEndian.PutUint32(len32[:], uint32(len(re.pattern)))
	if _, err := w.Write(len32[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, re.pattern); err != nil {
		return err
	}
	_, err := re.dsfa.WriteTo(w)
	return err
}

// Load reconstructs a Regexp saved with Save. Matching options (threads,
// reduction) may be supplied; pattern-affecting options (flags, search)
// are already baked into the saved automata and are ignored.
func Load(r io.Reader, opts ...Option) (*Regexp, error) {
	var len32 [4]byte
	if _, err := io.ReadFull(r, len32[:]); err != nil {
		return nil, fmt.Errorf("sfa: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint32(len32[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("sfa: implausible pattern length %d", n)
	}
	pat := make([]byte, n)
	if _, err := io.ReadFull(r, pat); err != nil {
		return nil, fmt.Errorf("sfa: reading pattern: %w", err)
	}
	s, err := core.ReadDSFA(r)
	if err != nil {
		return nil, err
	}

	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.threads <= 0 {
		cfg.threads = runtime.GOMAXPROCS(0)
	}
	red := engine.ReduceSequential
	if cfg.tree {
		red = engine.ReduceTree
	}
	var eopts []engine.Option
	if cfg.spawn {
		eopts = append(eopts, engine.WithSpawn())
	}
	return &Regexp{
		pattern: string(pat),
		cfg:     cfg,
		dfa:     s.D,
		dsfa:    s,
		matcher: engine.NewSFAParallel(s, cfg.threads, red, eopts...),
	}, nil
}
