package sfa

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// prefilterDefs is a mixed rule set that exercises every prefilter shard
// mode at once: windowable literal rules (one case-insensitive), a
// begin-anchored prefix rule, a gate rule (internal unbounded
// repetition), and a pathological rule extraction cannot cover — which
// must degrade to full scans, never be dropped.
func prefilterDefs() []RuleDef {
	return []RuleDef{
		{Name: "lit", Pattern: `needle`},
		{Name: "fold", Pattern: `SeCrEt`, Flags: FoldCase},
		{Name: "alt", Pattern: `(attack|exploit)-[0-9]{1,4}`},
		{Name: "anchored", Pattern: `^HDR/[0-9]{2}`},
		{Name: "gate", Pattern: `begin[0-9]{3,}end`},
		{Name: "uncovered", Pattern: `[a-p]{10}`},
		{Name: "nop", Pattern: `\x90{4,16}`},
	}
}

// prefilterInputs builds inputs that hit every rule, straddle
// boundaries, and include plenty of matching-nothing filler.
func prefilterInputs() [][]byte {
	inputs := [][]byte{
		nil,
		[]byte("no candidates here at all ......"),
		[]byte("a needle in plain sight"),
		[]byte("SECRET and secret and sEcReT"),
		[]byte("attack-007 and exploit-1234"),
		[]byte("HDR/42 starts the input"),
		[]byte("not at start: HDR/42"),
		[]byte("begin12345end"),
		[]byte("begin12end"), // too few digits: gate fires, no match
		[]byte("abcdefghij"), // uncovered rule matches
		[]byte("\x90\x90\x90\x90\x90"),
		bytes.Repeat([]byte("x"), 1<<12),
	}
	r := rand.New(rand.NewSource(23))
	frags := []string{"needle", "secret", "exploit-9", "begin777end", "HDR/11", "\x90\x90\x90\x90"}
	for i := 0; i < 32; i++ {
		in := make([]byte, 64+r.Intn(512))
		for j := range in {
			in[j] = byte(' ' + r.Intn(95))
		}
		for k := r.Intn(3); k > 0; k-- {
			f := frags[r.Intn(len(frags))]
			copy(in[r.Intn(len(in)-len(f)+1):], f)
		}
		inputs = append(inputs, in)
	}
	return inputs
}

// TestPrefilterOracle is the A/B contract: for every input, the
// prefiltered set and the WithoutPrefilter set produce identical
// verdicts — one-shot, streamed at adversarial chunk sizes, and via
// Compose of independently scanned halves.
func TestPrefilterOracle(t *testing.T) {
	defs := prefilterDefs()
	pre, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(1), WithoutPrefilter())
	if err != nil {
		t.Fatal(err)
	}
	pf := pre.PrefilterStats()
	if !pf.Enabled {
		t.Fatal("prefilter not armed on default build")
	}
	if pf.WindowShards == 0 || pf.PrefixShards == 0 || pf.FullShards == 0 {
		t.Fatalf("test set should produce window, prefix, and full shards; got %+v", pf)
	}
	if off.PrefilterStats().Enabled {
		t.Fatal("WithoutPrefilter still armed a prefilter")
	}

	for _, in := range prefilterInputs() {
		want := off.Scan(in, 0)
		if got := pre.Scan(in, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("one-shot diverged on %q: %v vs %v", in, got, want)
		}
		for _, chunk := range []int{1, 3, 7, 64, 1 << 20} {
			st, err := pre.NewStream()
			if err != nil {
				t.Fatal(err)
			}
			for p := 0; p < len(in); p += chunk {
				end := p + chunk
				if end > len(in) {
					end = len(in)
				}
				st.Write(in[p:end])
			}
			if got := st.Matches(); !reflect.DeepEqual(got, want) {
				t.Fatalf("stream(chunk=%d) diverged on %q: %v vs %v", chunk, in, got, want)
			}
		}
		// Compose: scan the two halves as independent streams, fold.
		a, _ := pre.NewStream()
		b, _ := pre.NewStream()
		a.Write(in[:len(in)/2])
		b.Write(in[len(in)/2:])
		if err := a.Compose(b); err != nil {
			t.Fatal(err)
		}
		if got := a.Matches(); !reflect.DeepEqual(got, want) {
			t.Fatalf("compose diverged on %q: %v vs %v", in, got, want)
		}
	}
}

// TestPrefilterLiteralAtChunkBoundary splits the input at every offset
// through a planted literal: the straddle-carry logic must find the
// occurrence no matter where the Write boundary bisects it.
func TestPrefilterLiteralAtChunkBoundary(t *testing.T) {
	defs := prefilterDefs()
	rs, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	in := []byte("................needle......SeCrEt....")
	want := rs.Scan(in, 0)
	if len(want) == 0 {
		t.Fatal("planted literals did not match")
	}
	for split := 1; split < len(in); split++ {
		st, err := rs.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		st.Write(in[:split])
		st.Write(in[split:])
		if got := st.Matches(); !reflect.DeepEqual(got, want) {
			t.Fatalf("split %d: %v, want %v", split, got, want)
		}
	}
}

// TestPrefilterAnchoredStreaming drives the prefix-mode shard through
// byte-at-a-time writes: the verdict must settle exactly as the decisive
// prefix streams in, and never regress afterwards.
func TestPrefilterAnchoredStreaming(t *testing.T) {
	rs, err := NewRuleSetFromDefs(prefilterDefs(), WithSearch(), WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	in := append([]byte("HDR/77 "), bytes.Repeat([]byte("z"), 300)...)
	st, err := rs.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint64, rs.MaskWords())
	for i := range in {
		st.Write(in[i : i+1])
		names := rs.MaskNames(st.Mask(buf))
		matched := false
		for _, n := range names {
			if n == "anchored" {
				matched = true
			}
		}
		if want := i+1 >= len("HDR/77"); matched != want {
			t.Fatalf("after %d bytes: anchored matched=%v, want %v", i+1, matched, want)
		}
	}
}

// TestPrefilterUncoveredRuleStillMatches is the degradation regression:
// a rule whose extraction fails (wide classes, no required literal)
// must scan in full and keep matching inside an otherwise prefiltered
// set.
func TestPrefilterUncoveredRuleStillMatches(t *testing.T) {
	rs, err := NewRuleSetFromDefs(prefilterDefs(), WithSearch(), WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	pf := rs.PrefilterStats()
	if pf.RulesUncovered == 0 {
		t.Fatalf("expected an uncovered rule in the fixture; got %+v", pf)
	}
	in := []byte("........abcdefghij........") // matches only [a-p]{10}
	got := rs.Scan(in, 0)
	if !reflect.DeepEqual(got, []string{"uncovered"}) {
		t.Fatalf("uncovered rule verdict = %v, want [uncovered]", got)
	}
	// And streamed, where full shards use the carried-mapping protocol.
	st, _ := rs.NewStream()
	for p := 0; p < len(in); p += 5 {
		end := p + 5
		if end > len(in) {
			end = len(in)
		}
		st.Write(in[p:end])
	}
	if got := st.Matches(); !reflect.DeepEqual(got, []string{"uncovered"}) {
		t.Fatalf("streamed uncovered verdict = %v", got)
	}
}

// FuzzPrefilter feeds arbitrary payloads and split points through the
// prefiltered and unfiltered sets: one-shot masks and streamed masks
// (split bisecting whatever the fuzzer chooses, including literals) must
// agree bit for bit.
func FuzzPrefilter(f *testing.F) {
	defs := prefilterDefs()
	pre, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(1))
	if err != nil {
		f.Fatal(err)
	}
	off, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(1), WithoutPrefilter())
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("a needle in HDR/12 begin123end"), uint16(9))
	f.Add([]byte("SeCrEtSeCrEt\x90\x90\x90\x90\x90"), uint16(3))
	f.Add([]byte("exploit-42abcdefghij"), uint16(8))
	f.Fuzz(func(t *testing.T, data []byte, split uint16) {
		wbuf := make([]uint64, off.MaskWords())
		pbuf := make([]uint64, pre.MaskWords())
		want := append([]uint64(nil), off.MatchMask(data, wbuf)...)
		if got := pre.MatchMask(data, pbuf); !reflect.DeepEqual([]uint64(got), want) {
			t.Fatalf("one-shot mask diverged: %x vs %x on %q", got, want, data)
		}
		st, err := pre.NewStream()
		if err != nil {
			t.Fatal(err)
		}
		s := int(split)
		if len(data) > 0 {
			s %= len(data) + 1
		} else {
			s = 0
		}
		st.Write(data[:s])
		st.Write(data[s:])
		if got := st.Mask(pbuf); !reflect.DeepEqual([]uint64(got), want) {
			t.Fatalf("streamed mask diverged at split %d: %x vs %x on %q", s, got, want, data)
		}
	})
}
