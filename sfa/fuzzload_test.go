package sfa

import (
	"bytes"
	"testing"
)

// fuzzSnapshot builds a small valid snapshot for the seed corpus.
func fuzzSnapshot(tb testing.TB, defs []RuleDef) []byte {
	rs, err := NewRuleSetFromDefs(defs, WithSearch(), WithThreads(2))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadRuleSet hammers the snapshot decoder with arbitrary bytes:
// it must return an error or a fully working rule set — never panic,
// and never allocate beyond what the input's actual size justifies
// (binio.ReadExact grows with the stream; engine tables are only
// materialized after the CRCs hold). Runs in CI via `make fuzz-smoke`.
func FuzzLoadRuleSet(f *testing.F) {
	valid := fuzzSnapshot(f, []RuleDef{
		{Name: "a", Pattern: `(ab)*c?`},
		{Name: "b", Pattern: `[0-9]{2,4}`, Flags: FoldCase},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("SFA\x01RST\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		rs, err := LoadRuleSet(bytes.NewReader(data), WithThreads(2))
		if err != nil {
			return
		}
		// The (astronomically rare without the seed) valid case must be a
		// usable matcher: exercise the zero-alloc hot path and the name
		// decoding so a half-validated set cannot slip through quietly.
		dst := make([]uint64, rs.MaskWords())
		rs.MaskNames(rs.MatchMask([]byte("probe 123 abab"), dst))
		if rs.Len() <= 0 || rs.NumShards() <= 0 {
			t.Fatalf("loaded set reports %d rules in %d shards", rs.Len(), rs.NumShards())
		}
	})
}
