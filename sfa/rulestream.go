package sfa

import (
	"fmt"

	"repro/internal/multi"
)

// RuleStream is Stream for a whole RuleSet: online multi-pattern matching
// over input that arrives in pieces. In combined mode it carries one
// |D|-sized mapping per shard — the ⊙-fold of every chunk's
// transformation of the combined DFA's state set — so the state held
// between Writes is fixed-size regardless of input length, and the
// verdict after any chunking equals the one-shot MatchMask on the
// concatenated input (Theorem 3). In isolated mode (WithIsolatedRules, or
// a non-SFA engine) it carries one single-pattern Stream per rule.
//
// The Write hot path allocates nothing in steady state: carried mappings
// live in the stream and every shard's chunk scan reuses the engine's
// pooled match context on the persistent worker pool. Mask with a
// caller-provided buffer is allocation-free too.
//
// A RuleStream is not safe for concurrent use; RuleSet.NewStream is cheap
// enough to give each goroutine (or each network request) its own.
type RuleStream struct {
	rs     *RuleSet
	st     *multi.SetStream // combined mode
	iso    []*Stream        // isolated mode
	bytes  int64
	chunks int64
}

// NewStream starts incremental matching from the empty input. In isolated
// mode every rule engine must support streaming (EngineSFA); a rule set
// compiled for another engine returns an error identifying the first rule
// that cannot stream.
func (rs *RuleSet) NewStream() (*RuleStream, error) {
	if rs.isolated == nil {
		return &RuleStream{rs: rs, st: rs.set.NewStream()}, nil
	}
	iso := make([]*Stream, len(rs.isolated))
	for i, re := range rs.isolated {
		s, err := re.NewStream()
		if err != nil {
			return nil, fmt.Errorf("sfa: rule %s: %w", rs.defs[i].Name, err)
		}
		iso[i] = s
	}
	return &RuleStream{rs: rs, iso: iso}, nil
}

// RuleSet returns the set this stream matches against.
func (s *RuleStream) RuleSet() *RuleSet { return s.rs }

// Write consumes the next chunk of input. It never fails; the error
// return satisfies io.Writer so a RuleStream can terminate io.Copy
// pipelines.
func (s *RuleStream) Write(chunk []byte) (int, error) {
	if s.st != nil {
		s.st.Write(chunk)
	} else {
		for _, is := range s.iso {
			is.Write(chunk)
		}
	}
	s.bytes += int64(len(chunk))
	s.chunks++
	return len(chunk), nil
}

// StreamStats is per-stream scan accounting: chunks and bytes consumed,
// wall time spent composing them, and how many shard-chunk scans the
// literal prefilter skipped versus ran. Unlike the set-wide ScanStats
// and PrefilterStats counters these are scoped to one stream, so a
// server can attribute scan cost to a single connection.
type StreamStats = multi.StreamStats

// Stats reports this stream's scan accounting since construction (or
// the last Reset). In isolated mode only Chunks and Bytes are tracked.
func (s *RuleStream) Stats() StreamStats {
	if s.st != nil {
		return s.st.Stats()
	}
	return StreamStats{Chunks: s.chunks, Bytes: s.bytes}
}

// Mask writes the rule bitmask of the input consumed so far — bit i set
// iff rule i (in Names() order) matches — into dst, which must have
// MaskWords() capacity, and returns dst[:MaskWords()]. It may be called
// at any point; the stream continues afterwards.
func (s *RuleStream) Mask(dst []uint64) []uint64 {
	if s.st != nil {
		return s.st.Mask(dst)
	}
	dst = dst[:s.rs.MaskWords()]
	for i := range dst {
		dst[i] = 0
	}
	for i, is := range s.iso {
		if is.Accepted() {
			dst[i>>6] |= 1 << (i & 63)
		}
	}
	return dst
}

// Matches returns the names of the rules matching the input consumed so
// far, in Names() order.
func (s *RuleStream) Matches() []string {
	return s.rs.MaskNames(s.Mask(make([]uint64, s.rs.MaskWords())))
}

// Any reports whether at least one rule matches the input consumed so
// far. It allocates; use Mask with a reused buffer on hot paths.
func (s *RuleStream) Any() bool {
	for _, w := range s.Mask(make([]uint64, s.rs.MaskWords())) {
		if w != 0 {
			return true
		}
	}
	return false
}

// Bytes returns the number of bytes consumed.
func (s *RuleStream) Bytes() int64 { return s.bytes }

// Reset rewinds the stream to the empty input.
func (s *RuleStream) Reset() {
	if s.st != nil {
		s.st.Reset()
	} else {
		for _, is := range s.iso {
			is.Reset()
		}
	}
	s.bytes = 0
	s.chunks = 0
}

// Compose merges another stream's consumed input *after* this one's, as
// if the two byte sequences had been concatenated: s ← s · t. Both
// streams must come from the same RuleSet (the same instance — two sets
// compiled from the same rules shard independently). Out-of-order
// segments can thus be scanned on different goroutines or machines and
// folded afterwards.
func (s *RuleStream) Compose(t *RuleStream) error {
	if t.rs != s.rs {
		return fmt.Errorf("sfa: cannot compose streams of different rule sets")
	}
	if s.st != nil {
		if err := s.st.Compose(t.st); err != nil {
			return err
		}
	} else {
		for i, is := range s.iso {
			if err := is.Compose(t.iso[i]); err != nil {
				return err
			}
		}
	}
	s.bytes += t.bytes
	s.chunks += t.chunks
	return nil
}
