package sfa

import "repro/internal/core"

// TableBudget is a hierarchical byte budget for lazily compiled rule
// sets (WithLazyCompile): every product state a lazy shard materializes
// is charged against it, and when a charge would exceed the limit the
// least-recently-scanned lazy automaton under the same root is evicted
// (whole-structure reset; its states rebuild from traffic). Budgets
// form a tree — internal/serve gives each tenant a Child of the process
// budget — and a charge must fit every ancestor, so a tenant can be
// bounded tightly without fragmenting the shared pool.
//
// A TableBudget is safe for concurrent use. The zero limit (or any
// limit <= 0) means unlimited: the budget only meters, never evicts.
type TableBudget struct {
	b *core.TableBudget
}

// NewTableBudget creates a root budget of limitBytes (<= 0 = unlimited,
// metering only).
func NewTableBudget(limitBytes int64) *TableBudget {
	return &TableBudget{b: core.NewTableBudget(limitBytes)}
}

// GlobalTableBudget returns the process-wide budget that lazy rule sets
// charge by default (when compiled without WithTableBudget). It starts
// unlimited; WithGlobalTableBudget or SetLimit bounds it.
func GlobalTableBudget() *TableBudget {
	return &TableBudget{b: core.GlobalTableBudget()}
}

// Child creates a sub-budget: charges against it count against both
// limits, so the child bounds one tenant while the parent bounds the
// process.
func (t *TableBudget) Child(limitBytes int64) *TableBudget {
	return &TableBudget{b: t.b.Child(limitBytes)}
}

// SetLimit replaces the budget's limit (<= 0 = unlimited). Lowering it
// does not evict immediately; the next charge that no longer fits does.
func (t *TableBudget) SetLimit(limitBytes int64) { t.b.SetLimit(limitBytes) }

// BudgetStats is a point-in-time snapshot of one budget node.
type BudgetStats struct {
	LimitBytes int64 // configured limit; <= 0 = unlimited
	UsedBytes  int64 // bytes currently charged (this node and below)
	Fills      int64 // lazy states materialized under this node
	Evictions  int64 // whole-structure resets forced under this node

	// FillNs and EvictNs are log₂ latency histograms of the fills and
	// evictions charged under this node (a child's observations also
	// land in every ancestor); StallNs is total wall time scans spent
	// inside eviction, the budget-pressure signal.
	FillNs  HistogramSnapshot
	EvictNs HistogramSnapshot
	StallNs int64
}

// Stats reports the budget's current usage and lifetime counters.
func (t *TableBudget) Stats() BudgetStats {
	s := t.b.Stats()
	return BudgetStats{
		LimitBytes: s.Limit,
		UsedBytes:  s.Used,
		Fills:      s.Fills,
		Evictions:  s.Evictions,
		FillNs:     s.FillNs,
		EvictNs:    s.EvictNs,
		StallNs:    s.StallNs,
	}
}

// inner unwraps for internal threading; nil-safe.
func (t *TableBudget) inner() *core.TableBudget {
	if t == nil {
		return nil
	}
	return t.b
}
