//go:build race

package sfa

// raceEnabled reports that this test binary was built with the race
// detector. Its ~10× instrumentation overhead lands hardest on automaton
// construction, so the RuleSet fixtures shrink their pathological rules
// under race while keeping the same shape of coverage.
const raceEnabled = true
