package sfa

import (
	"math/rand"
	"regexp"
	"testing"
)

// TestAgainstStdlibRegexp cross-validates whole-input acceptance against
// Go's standard regexp engine (an RE2 derivative — a completely
// independent implementation) on a shared syntax subset.
func TestAgainstStdlibRegexp(t *testing.T) {
	patterns := []string{
		"(ab)*",
		"(a|b)*abb",
		"a+(b|c)*a?",
		"([ab]{3}c)*",
		"(a|bc)*d?",
		"[0-4]{2}[5-9]{2}",
		"(0|1)*(00|11)",
		"a{2,5}b{1,3}",
		"(ab|ba)+c*",
		"[abc]*abc[abc]*",
	}
	r := rand.New(rand.NewSource(1234))
	for _, pat := range patterns {
		mine := MustCompile(pat, WithThreads(3))
		std := regexp.MustCompile(`\A(?:` + pat + `)\z`)
		for i := 0; i < 400; i++ {
			w := make([]byte, r.Intn(24))
			for j := range w {
				w[j] = "abcd0156"[r.Intn(8)]
			}
			want := std.Match(w)
			if got := mine.Match(w); got != want {
				t.Fatalf("pattern %q input %q: sfa=%v stdlib=%v", pat, w, got, want)
			}
		}
	}
}

// TestSearchAgainstStdlib cross-validates substring-search semantics.
func TestSearchAgainstStdlib(t *testing.T) {
	patterns := []string{
		"abb",
		"a.c",
		"(ab)+",
		"[0-9]{3}",
		"x(y|z)x",
	}
	r := rand.New(rand.NewSource(77))
	for _, pat := range patterns {
		mine := MustCompile(pat, WithSearch(), WithFlags(DotAll))
		std := regexp.MustCompile(`(?s)` + pat)
		for i := 0; i < 400; i++ {
			w := make([]byte, r.Intn(40))
			for j := range w {
				w[j] = "abcxyz019."[r.Intn(10)]
			}
			want := std.Match(w)
			if got := mine.Match(w); got != want {
				t.Fatalf("pattern %q input %q: sfa=%v stdlib=%v", pat, w, got, want)
			}
		}
	}
}

// TestRandomPatternsAgainstStdlib generates random patterns valid in both
// syntaxes and compares all engines against stdlib on random words.
func TestRandomPatternsAgainstStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(909))
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth <= 0 {
			switch r.Intn(5) {
			case 0:
				return "a"
			case 1:
				return "b"
			case 2:
				return "c"
			case 3:
				return "[ab]"
			default:
				return "[bc]"
			}
		}
		switch r.Intn(7) {
		case 0:
			return gen(depth-1) + gen(depth-1)
		case 1:
			return "(?:" + gen(depth-1) + "|" + gen(depth-1) + ")"
		case 2:
			return "(?:" + gen(depth-1) + ")*"
		case 3:
			return "(?:" + gen(depth-1) + ")?"
		case 4:
			return "(?:" + gen(depth-1) + ")+"
		case 5:
			return "(?:" + gen(depth-1) + "){1,3}"
		default:
			return gen(depth - 1)
		}
	}
	for trial := 0; trial < 60; trial++ {
		pat := gen(3)
		std, err := regexp.Compile(`\A(?:` + pat + `)\z`)
		if err != nil {
			t.Fatalf("stdlib rejected %q: %v", pat, err)
		}
		for _, eng := range []Engine{EngineSFA, EngineLazySFA, EngineDFA, EngineSpecDFA, EngineNFA} {
			mine, err := Compile(pat, WithEngine(eng), WithThreads(2))
			if err != nil {
				t.Fatalf("%v rejected %q: %v", eng, pat, err)
			}
			for i := 0; i < 25; i++ {
				w := make([]byte, r.Intn(16))
				for j := range w {
					w[j] = "abc"[r.Intn(3)]
				}
				if got, want := mine.Match(w), std.Match(w); got != want {
					t.Fatalf("engine %v pattern %q input %q: got %v want %v",
						eng, pat, w, got, want)
				}
			}
		}
	}
}

// TestParserRobustness: arbitrary byte soup must produce either a clean
// parse or a clean error — never a panic or a hang.
func TestParserRobustness(t *testing.T) {
	r := rand.New(rand.NewSource(5150))
	alphabet := []byte(`ab(){}[]|*+?^$\.-,0129xnrtdswSWD`)
	for i := 0; i < 5000; i++ {
		n := r.Intn(30)
		pat := make([]byte, n)
		for j := range pat {
			pat[j] = alphabet[r.Intn(len(alphabet))]
		}
		re, err := Compile(string(pat), WithDFACap(2000), WithSFACap(50000))
		if err != nil {
			continue
		}
		// Smoke-match so the whole pipeline executes.
		re.Match([]byte("abab01"))
	}
}
