package sfa

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/binio"
	"repro/internal/multi"
	"repro/internal/prefilter"
)

// Rule-set snapshots: Save serializes a compiled combined RuleSet —
// rule definitions, plan metadata, and every shard's width-specialized
// automaton and accept-mask table — and LoadRuleSet reconstructs it
// without recompiling anything. Table III shows construction dominates
// start-up; ROADMAP records 15–30 s cold builds for search-bracketed
// rule sets, and a snapshot load replaces that with a table read.
//
// The file layout (see internal/snapshot/README.md for the full spec):
//
//	magic "SFA\x01RST\x01"
//	1 byte  set-wide Flags      1 byte  search (0|1)
//	uvarint rule count, then per rule: name, pattern (both
//	        length-prefixed), 1 byte per-rule Flags
//	multi set blob (shard automata; each shard blob carries its own CRC)
//	4 byte  CRC-32C of everything above
//
// Pattern semantics (flags, search bracketing) are baked into the saved
// automata, so LoadRuleSet restores them from the file; matching options
// supplied to LoadRuleSet (threads, spawn, shard cache for future
// Rebuilds) apply, pattern-affecting ones are overridden.

const ruleSetMagic = "SFA\x01RST\x01"

// SniffRuleSetSnapshot reports whether prefix begins with the rule-set
// snapshot magic — the format-sniffing half of LoadRuleSet, for tools
// (cmd/sfacache) that route a file by type. Kept next to the magic so a
// version bump cannot desynchronize the sniff from the decoder.
func SniffRuleSetSnapshot(prefix []byte) bool {
	return len(prefix) >= len(ruleSetMagic) && string(prefix[:len(ruleSetMagic)]) == ruleSetMagic
}

const (
	maxSnapshotRules = 1 << 20
	maxNameLen       = 1 << 16
	maxPatternLen    = 1 << 20
)

// flagMask is every defined Flag bit; snapshot flag bytes beyond it are
// corruption.
const flagMask = FoldCase | DotAll

// Save writes the compiled rule set as a snapshot LoadRuleSet can
// reconstruct without recompiling. Only combined-mode sets carry the
// tables a snapshot needs: a set compiled WithIsolatedRules or with a
// non-SFA engine returns an error.
func (rs *RuleSet) Save(w io.Writer) error {
	if rs.set == nil {
		return fmt.Errorf("sfa: Save needs a combined rule set (isolated or non-SFA rule sets recompile from source)")
	}
	h := binio.NewCRC32C()
	cw := io.MultiWriter(w, h)
	if _, err := io.WriteString(cw, ruleSetMagic); err != nil {
		return err
	}
	cfg := buildConfig(rs.opts)
	search := byte(0)
	if cfg.search {
		search = 1
	}
	if _, err := cw.Write([]byte{byte(cfg.flags), search}); err != nil {
		return err
	}
	if err := binio.WriteUvarint(cw, uint64(len(rs.defs))); err != nil {
		return err
	}
	for _, d := range rs.defs {
		if err := binio.WriteString(cw, d.Name); err != nil {
			return err
		}
		if err := binio.WriteString(cw, d.Pattern); err != nil {
			return err
		}
		if _, err := cw.Write([]byte{byte(d.Flags)}); err != nil {
			return err
		}
	}
	if err := rs.set.Encode(cw, rs.keys); err != nil {
		return err
	}
	var crc4 [4]byte
	binary.LittleEndian.PutUint32(crc4[:], h.Sum32())
	_, err := w.Write(crc4[:])
	return err
}

// LoadRuleSet reconstructs a rule set saved with Save: every shard's
// automaton and mask table is decoded and validated (state counts,
// transition targets, mask widths, CRCs) and the engines are assembled
// warm — no parsing, planning, or D-SFA construction. Matching options
// may be supplied (WithThreads, WithSpawnPerMatch, WithShardCache —
// which also arms future Rebuilds of the loaded set); pattern-affecting
// options are baked into the snapshot and override anything passed.
//
// A corrupt or truncated snapshot returns an error, never a silently
// different matcher: callers should fall back to compiling from rule
// source (internal/serve's warm restart does exactly that).
func LoadRuleSet(r io.Reader, opts ...Option) (*RuleSet, error) {
	cr := binio.NewCRCReader(r)
	magic := make([]byte, len(ruleSetMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("sfa: reading snapshot magic: %w", err)
	}
	if string(magic) != ruleSetMagic {
		return nil, fmt.Errorf("sfa: not a rule-set snapshot (magic %q)", magic)
	}
	var hdr [2]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, fmt.Errorf("sfa: reading snapshot header: %w", err)
	}
	setFlags := Flag(hdr[0])
	if setFlags&^flagMask != 0 {
		return nil, fmt.Errorf("sfa: unknown set flags %#x in snapshot", hdr[0])
	}
	if hdr[1] > 1 {
		return nil, fmt.Errorf("sfa: bad search byte %#x in snapshot", hdr[1])
	}
	search := hdr[1] == 1

	n, err := binio.ReadCount(cr, maxSnapshotRules, "rule")
	if err != nil {
		return nil, fmt.Errorf("sfa: %w", err)
	}
	if n == 0 {
		return nil, fmt.Errorf("sfa: snapshot with no rules")
	}
	// Grow defs as rules actually decode — the count is a claim, and a
	// lying one must not buy a huge up-front allocation (the binio rule).
	defs := make([]RuleDef, 0, min(n, 4096))
	for i := 0; i < n; i++ {
		var d RuleDef
		if d.Name, err = binio.ReadString(cr, maxNameLen, "rule name"); err != nil {
			return nil, fmt.Errorf("sfa: %w", err)
		}
		if d.Pattern, err = binio.ReadString(cr, maxPatternLen, "rule pattern"); err != nil {
			return nil, fmt.Errorf("sfa: %w", err)
		}
		var fb [1]byte
		if _, err := io.ReadFull(cr, fb[:]); err != nil {
			return nil, fmt.Errorf("sfa: reading rule flags: %w", err)
		}
		if Flag(fb[0])&^flagMask != 0 {
			return nil, fmt.Errorf("sfa: unknown flags %#x on rule %q", fb[0], d.Name)
		}
		d.Flags = Flag(fb[0])
		defs = append(defs, d)
	}

	// Reassemble the RuleSet shell exactly as buildRuleSet would, with
	// the snapshot's pattern semantics pinned over the caller's options.
	eff := append(append([]Option(nil), opts...), func(c *config) {
		c.flags = setFlags
		c.search = search
	})
	cfg := buildConfig(eff)
	rs := &RuleSet{
		defs: defs,
		opts: eff,
		idx:  make(map[string]int, len(defs)),
	}
	sortDefs(rs.defs)
	for i, d := range rs.defs {
		if _, dup := rs.idx[d.Name]; dup {
			return nil, fmt.Errorf("sfa: duplicate rule %s in snapshot", d.Name)
		}
		rs.idx[d.Name] = i
	}
	rs.keys = make([]string, len(rs.defs))
	for i, d := range rs.defs {
		rs.keys[i] = ruleKey(cfg.flags, cfg.search, d)
	}

	mo := multi.Options{
		Threads: cfg.threads,
		Spawn:   cfg.spawn,
	}
	// Snapshots carry automata, not syntax trees, so the literal
	// prefilter is re-extracted from the rule sources — cheap (a parse
	// per rule, no construction) next to the table decode it fronts. A
	// rule that no longer parses leaves the whole set unfiltered rather
	// than failing the load: the snapshot's automata are the verdict
	// authority, the prefilter is only an accelerator.
	if !cfg.noPrefilter {
		infos := make([]prefilter.Rule, len(rs.defs))
		ok := true
		for i, d := range rs.defs {
			_, info, err := parseRule(d, cfg)
			if err != nil {
				ok = false
				break
			}
			infos[i] = info
		}
		if ok {
			mo.Prefilter = infos
		}
	}
	set, err := multi.DecodeSet(cr, rs.keys, mo)
	if err != nil {
		return nil, fmt.Errorf("sfa: %w", err)
	}
	sum := cr.Sum32()
	var crc4 [4]byte
	if _, err := io.ReadFull(r, crc4[:]); err != nil {
		return nil, fmt.Errorf("sfa: reading snapshot crc: %w", err)
	}
	stored := binary.LittleEndian.Uint32(crc4[:])
	if stored != sum {
		return nil, fmt.Errorf("sfa: snapshot crc mismatch (stored %08x, computed %08x)", stored, sum)
	}
	rs.set = set
	return rs, nil
}
