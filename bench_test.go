// Package repro's root benchmark suite: one testing.B benchmark per table
// and figure of the paper (plus the DESIGN.md ablations). These are the
// micro-benchmark versions; cmd/sfabench regenerates the full
// human-readable tables and series.
//
// Input size defaults to 8 MiB per benchmark to keep `go test -bench=.`
// wall time reasonable; set SFA_BENCH_MB to scale up (the paper used
// 1024 MiB). Throughput appears as the B/s column via b.SetBytes.
package repro

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/monoid"
	"repro/internal/nfa"
	"repro/internal/snort"
	"repro/internal/syntax"
	"repro/internal/textgen"
	"repro/sfa"
)

// benchMB returns the per-benchmark input size in MiB.
func benchMB() int {
	if v := os.Getenv("SFA_BENCH_MB"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 8
}

// fig8N is the r_n exponent used for the large-table benchmarks.
func fig8N() int {
	if v := os.Getenv("SFA_FIG8_N"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 150
}

// fixture carries the compiled automata and input for one pattern.
type fixture struct {
	d    *dfa.DFA
	s    *core.DSFA
	text []byte
}

var (
	fixMu  sync.Mutex
	fixMap = map[string]*fixture{}
)

// getFixture builds (once) the DFA, D-SFA and an accepted text.
func getFixture(b *testing.B, key string, pattern string, text func() []byte) *fixture {
	b.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := fixMap[key]; ok {
		return f
	}
	d := dfa.MustCompilePattern(pattern)
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{d: d, s: s, text: text()}
	if !d.Accepts(f.text) {
		b.Fatalf("fixture text for %q not accepted", pattern)
	}
	fixMap[key] = f
	return f
}

func rnFixture(b *testing.B, n int) *fixture {
	return getFixture(b, fmt.Sprintf("rn-%d", n),
		fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n),
		func() []byte { return textgen.RnText(n, benchMB()<<20, 1) })
}

// benchMatcher runs m over text with throughput accounting. allocs/op is
// reported for every engine benchmark: the pooled engines' guardrail is
// 0 allocs/op in steady state.
func benchMatcher(b *testing.B, m engine.Matcher, text []byte, want bool) {
	b.Helper()
	b.SetBytes(int64(len(text)))
	m.Match(text) // warm the context pool so steady state is measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Match(text) != want {
			b.Fatal("wrong verdict")
		}
	}
}

// --- Fig. 3: SNORT ruleset study ------------------------------------------

// BenchmarkFig3_RulesetStudy measures the full per-rule pipeline
// (parse → Glushkov → determinize ≤1000 → minimize → D-SFA) over a slice
// of the synthetic corpus; the metric of interest is rules/sec.
func BenchmarkFig3_RulesetStudy(b *testing.B) {
	rules := snort.Generate(150, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rule := range rules {
			node, err := syntax.Parse(rule.Pattern, rule.Flags)
			if err != nil {
				b.Fatal(err)
			}
			m, err := dfa.Compile(node, 4000)
			if err != nil {
				continue // over the cap: skipped, like the paper
			}
			if m.LiveSize() > 1000 {
				continue
			}
			if _, err := core.BuildDSFA(m, 400_000); err != nil {
				continue
			}
		}
	}
	b.ReportMetric(float64(len(rules)*b.N)/b.Elapsed().Seconds(), "rules/s")
}

// --- Figs. 6–9: throughput vs threads --------------------------------------

func benchScale(b *testing.B, f *fixture, threads int) {
	if threads == 1 {
		benchMatcher(b, engine.NewDFASequential(f.d), f.text, true)
		return
	}
	benchMatcher(b, engine.NewSFAParallel(f.s, threads, engine.ReduceSequential), f.text, true)
}

func BenchmarkFig6_R5_Threads1(b *testing.B) { benchScale(b, rnFixture(b, 5), 1) }
func BenchmarkFig6_R5_Threads2(b *testing.B) { benchScale(b, rnFixture(b, 5), 2) }
func BenchmarkFig6_R5_Threads4(b *testing.B) { benchScale(b, rnFixture(b, 5), 4) }
func BenchmarkFig6_R5_Threads8(b *testing.B) { benchScale(b, rnFixture(b, 5), 8) }

func BenchmarkFig7_R50_Threads1(b *testing.B) { benchScale(b, rnFixture(b, 50), 1) }
func BenchmarkFig7_R50_Threads2(b *testing.B) { benchScale(b, rnFixture(b, 50), 2) }
func BenchmarkFig7_R50_Threads4(b *testing.B) { benchScale(b, rnFixture(b, 50), 4) }
func BenchmarkFig7_R50_Threads8(b *testing.B) { benchScale(b, rnFixture(b, 50), 8) }

func BenchmarkFig8_RBig_Threads1(b *testing.B) { benchScale(b, rnFixture(b, fig8N()), 1) }
func BenchmarkFig8_RBig_Threads2(b *testing.B) { benchScale(b, rnFixture(b, fig8N()), 2) }
func BenchmarkFig8_RBig_Threads4(b *testing.B) { benchScale(b, rnFixture(b, fig8N()), 4) }

func unionFixture(b *testing.B) *fixture {
	n := fig8N()
	return getFixture(b, "union-a", fmt.Sprintf("([0-4]{%d}[5-9]{%d})*|a*", n, n),
		func() []byte { return textgen.Repeat('a', benchMB()<<20) })
}

func BenchmarkFig9_UnionAstar_Threads1(b *testing.B) { benchScale(b, unionFixture(b), 1) }
func BenchmarkFig9_UnionAstar_Threads2(b *testing.B) { benchScale(b, unionFixture(b), 2) }
func BenchmarkFig9_UnionAstar_Threads4(b *testing.B) { benchScale(b, unionFixture(b), 4) }

// --- Fig. 10: small-input overhead -----------------------------------------

func fig10Fixture(b *testing.B) *fixture {
	return getFixture(b, "fig10", "(([02468][13579]){5})*",
		func() []byte { return textgen.EvenOddText(1_000_000, 1) })
}

func benchFig10(b *testing.B, kb int, parallel bool) {
	f := fig10Fixture(b)
	text := f.text[:kb*1000]
	if parallel {
		benchMatcher(b, engine.NewSFAParallel(f.s, 2, engine.ReduceSequential), text, true)
		return
	}
	benchMatcher(b, engine.NewDFASequential(f.d), text, true)
}

func BenchmarkFig10_Crossover_DFA_200KB(b *testing.B)  { benchFig10(b, 200, false) }
func BenchmarkFig10_Crossover_SFA2_200KB(b *testing.B) { benchFig10(b, 200, true) }
func BenchmarkFig10_Crossover_DFA_600KB(b *testing.B)  { benchFig10(b, 600, false) }
func BenchmarkFig10_Crossover_SFA2_600KB(b *testing.B) { benchFig10(b, 600, true) }
func BenchmarkFig10_Crossover_DFA_1MB(b *testing.B)    { benchFig10(b, 1000, false) }
func BenchmarkFig10_Crossover_SFA2_1MB(b *testing.B)   { benchFig10(b, 1000, true) }

// --- Table II: complexity rows ----------------------------------------------

// Algorithm 3's per-byte cost grows with |D|; Algorithm 5's does not.
func benchTable2Spec(b *testing.B, n int) {
	f := rnFixture(b, n)
	text := f.text
	if n >= 50 {
		// Alg. 3 is |D|× slower; keep the run short, cutting at a block
		// boundary so the truncated text stays in the language.
		cut := len(text) / 8
		cut -= cut % (2 * n)
		text = text[:cut]
	}
	benchMatcher(b, engine.NewDFASpeculative(f.d, 2, engine.ReduceSequential), text, true)
}

func BenchmarkTable2_Alg3Spec_D10(b *testing.B)  { benchTable2Spec(b, 5) }
func BenchmarkTable2_Alg3Spec_D100(b *testing.B) { benchTable2Spec(b, 50) }
func BenchmarkTable2_Alg3Spec_D300(b *testing.B) { benchTable2Spec(b, 150) }

func BenchmarkTable2_Alg5SFA_D10(b *testing.B)  { benchScale(b, rnFixture(b, 5), 2) }
func BenchmarkTable2_Alg5SFA_D100(b *testing.B) { benchScale(b, rnFixture(b, 50), 2) }
func BenchmarkTable2_Alg5SFA_D300(b *testing.B) { benchScale(b, rnFixture(b, 150), 2) }

// BenchmarkTable2_NFASim is the O(|N|·n) row.
func BenchmarkTable2_NFASim(b *testing.B) {
	a, err := nfa.Glushkov(syntax.MustParse("([0-4]{5}[5-9]{5})*", 0))
	if err != nil {
		b.Fatal(err)
	}
	sim := nfa.NewSimulator(a)
	text := textgen.RnText(5, 1<<20, 1)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sim.Match(text) {
			b.Fatal("rejected")
		}
	}
}

// BenchmarkTable2_LazySFA_D1000 exercises the on-the-fly engine where the
// eager SFA would need 10⁶ states.
func BenchmarkTable2_LazySFA_D1000(b *testing.B) {
	d := dfa.MustCompilePattern("([0-4]{500}[5-9]{500})*")
	text := textgen.RnText(500, benchMB()<<20, 1)
	m, err := engine.NewSFALazy(d, 2, 1<<21)
	if err != nil {
		b.Fatal(err)
	}
	benchMatcher(b, m, text, true)
}

// --- Table III: construction cost -------------------------------------------

func benchConstructDFA(b *testing.B, n int) {
	node := syntax.MustParse(fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dfa.Compile(node, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchConstructDSFA(b *testing.B, n int) {
	d := dfa.MustCompilePattern(fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(s.NumStates)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
	}
}

func BenchmarkTable3_ConstructDFA_r5(b *testing.B)   { benchConstructDFA(b, 5) }
func BenchmarkTable3_ConstructDFA_r50(b *testing.B)  { benchConstructDFA(b, 50) }
func BenchmarkTable3_ConstructDFA_r500(b *testing.B) { benchConstructDFA(b, 500) }

func BenchmarkTable3_ConstructDSFA_r5(b *testing.B)  { benchConstructDSFA(b, 5) }
func BenchmarkTable3_ConstructDSFA_r50(b *testing.B) { benchConstructDSFA(b, 50) }
func BenchmarkTable3_ConstructDSFA_rBig(b *testing.B) {
	benchConstructDSFA(b, fig8N())
}

// --- Facts (Sect. VII-B) ----------------------------------------------------

func BenchmarkFacts_Fact1DFABlowup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := monoid.BuildFact1(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacts_Fact2FullMonoid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d, err := monoid.Fact2DFA(5) // 3125 SFA states
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.BuildDSFA(d, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §7) ----------------------------------------------

func BenchmarkAblation_ReductionSeq_p8(b *testing.B) {
	f := rnFixture(b, 50)
	benchMatcher(b, engine.NewSFAParallel(f.s, 8, engine.ReduceSequential), f.text, true)
}

func BenchmarkAblation_ReductionTree_p8(b *testing.B) {
	f := rnFixture(b, 50)
	benchMatcher(b, engine.NewSFAParallel(f.s, 8, engine.ReduceTree), f.text, true)
}

func BenchmarkAblation_TableLayout256(b *testing.B) {
	f := rnFixture(b, fig8N())
	benchMatcher(b, engine.NewSFAParallel(f.s, 2, engine.ReduceSequential), f.text, true)
}

func BenchmarkAblation_TableLayoutClass(b *testing.B) {
	f := rnFixture(b, fig8N())
	benchMatcher(b, engine.NewSFAParallel(f.s, 2, engine.ReduceSequential,
		engine.WithClassTable()), f.text, true)
}

func BenchmarkAblation_LazySFA(b *testing.B) {
	f := rnFixture(b, 50)
	m, err := engine.NewSFALazy(f.d, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchMatcher(b, m, f.text, true)
}

func BenchmarkAblation_FrontendGlushkov(b *testing.B) {
	node := syntax.MustParse("([0-4]{50}[5-9]{50})*", 0)
	for i := 0; i < b.N; i++ {
		if _, err := nfa.Glushkov(node); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_FrontendThompson(b *testing.B) {
	node := syntax.MustParse("([0-4]{50}[5-9]{50})*", 0)
	for i := 0; i < b.N; i++ {
		if _, err := nfa.Thompson(node); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hot path: persistent pool + width-specialized tables (ISSUE 1) ---
//
// The Hotpath pairs compare the seed engine configuration (goroutines
// spawned per Match, int32 table — the paper's setup) against the pooled
// default (persistent workers, narrowest table width that fits). The
// r100 automaton (~40k SFA states) is the cache-sensitive regime: its
// int32 table is ~40 MiB, the auto-selected u16 table half that.
// Expected: pooled+auto ≥ 1.3× seed at p ≥ 4, and 0 allocs/op pooled.

func benchHotpath(b *testing.B, threads int, opts ...engine.Option) {
	f := rnFixture(b, 100)
	benchMatcher(b, engine.NewSFAParallel(f.s, threads, engine.ReduceSequential, opts...), f.text, true)
}

func BenchmarkHotpath_R100_Seed_p4(b *testing.B) {
	benchHotpath(b, 4, engine.WithSpawn(), engine.WithLayout(engine.LayoutI32))
}
func BenchmarkHotpath_R100_Pooled_p4(b *testing.B) { benchHotpath(b, 4) }
func BenchmarkHotpath_R100_PooledI32_p4(b *testing.B) {
	// Isolates the pool from the layout: pooled dispatch, seed table.
	benchHotpath(b, 4, engine.WithLayout(engine.LayoutI32))
}
func BenchmarkHotpath_R100_Seed_p8(b *testing.B) {
	benchHotpath(b, 8, engine.WithSpawn(), engine.WithLayout(engine.LayoutI32))
}
func BenchmarkHotpath_R100_Pooled_p8(b *testing.B) { benchHotpath(b, 8) }

// Small-input hot path: here per-call goroutine creation is the
// dominant overhead, the regime of Fig. 10.
func benchHotpathSmall(b *testing.B, opts ...engine.Option) {
	f := fig10Fixture(b)
	benchMatcher(b, engine.NewSFAParallel(f.s, 4, engine.ReduceSequential, opts...), f.text[:100_000], true)
}

func BenchmarkHotpath_100KB_Seed_p4(b *testing.B) {
	benchHotpathSmall(b, engine.WithSpawn(), engine.WithLayout(engine.LayoutI32))
}
func BenchmarkHotpath_100KB_Pooled_p4(b *testing.B) { benchHotpathSmall(b) }

// Per-layout throughput (MB/s via the B/s column) on the same automaton.
func benchLayout(b *testing.B, l engine.TableLayout) {
	f := rnFixture(b, 100)
	benchMatcher(b, engine.NewSFAParallel(f.s, 2, engine.ReduceSequential, engine.WithLayout(l)), f.text, true)
}

func BenchmarkLayout_R100_U16_p2(b *testing.B)   { benchLayout(b, engine.LayoutU16) }
func BenchmarkLayout_R100_I32_p2(b *testing.B)   { benchLayout(b, engine.LayoutI32) }
func BenchmarkLayout_R100_Class_p2(b *testing.B) { benchLayout(b, engine.LayoutClass) }

func BenchmarkLayout_R5_U8_p2(b *testing.B) {
	f := rnFixture(b, 5)
	benchMatcher(b, engine.NewSFAParallel(f.s, 2, engine.ReduceSequential, engine.WithLayout(engine.LayoutU8)), f.text, true)
}

// --- RuleSet: combined multi-pattern D-SFA vs isolated engines (ISSUE 2) ---
//
// One SNORT-style sample scanned over synthetic traffic. Combined mode
// reads the input once per shard; isolated mode once per rule. The MB/s
// column (B/s via SetBytes) is the comparison the harness `ruleset`
// table makes at full size; p=1 so the ratio is pass-count, not
// parallelism.

type rulesetBench struct {
	rs   *sfa.RuleSet
	text []byte
}

var (
	rulesetMu  sync.Mutex
	rulesetMap = map[string]*rulesetBench{}
)

func rulesetFixture(b *testing.B, key string, extra ...sfa.Option) *rulesetBench {
	text, _ := textgen.Traffic{SuspiciousPerMille: 2}.Generate(benchMB()<<20, 1)
	return rulesetFixtureOn(b, key, text, extra...)
}

// rulesetSparseFixture scans the payload corpus instead: benign frames
// contain almost no rule literals, so the prefilter's candidate windows
// collapse — the on/off pair over it is the cascade's headline ratio
// (Traffic, every line carrying an HTTP keyword, shows the
// low-selectivity floor instead).
func rulesetSparseFixture(b *testing.B, key string, extra ...sfa.Option) *rulesetBench {
	text, _ := textgen.Payload{SuspiciousPerMille: 2}.Generate(benchMB()<<20, 1)
	return rulesetFixtureOn(b, "sparse-"+key, text, extra...)
}

func rulesetFixtureOn(b *testing.B, key string, text []byte, extra ...sfa.Option) *rulesetBench {
	b.Helper()
	rulesetMu.Lock()
	defer rulesetMu.Unlock()
	if f, ok := rulesetMap[key]; ok {
		return f
	}
	rules := snort.ScanSample(16)
	defs := make([]sfa.RuleDef, len(rules))
	for i, r := range rules {
		defs[i] = sfa.RuleDef{Name: fmt.Sprintf("r%03d", r.ID), Pattern: r.Pattern, Flags: harness.SFAFlags(r.Flags)}
	}
	opts := append([]sfa.Option{sfa.WithSearch(), sfa.WithThreads(1)}, extra...)
	rs, err := sfa.NewRuleSetFromDefs(defs, opts...)
	if err != nil {
		b.Fatal(err)
	}
	f := &rulesetBench{rs: rs, text: text}
	rulesetMap[key] = f
	return f
}

func benchRuleSet(b *testing.B, f *rulesetBench) {
	b.SetBytes(int64(len(f.text)))
	want := f.rs.Scan(f.text, 0) // warm the scan contexts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.rs.Scan(f.text, 0); len(got) != len(want) {
			b.Fatalf("verdict changed: %v vs %v", got, want)
		}
	}
}

func BenchmarkRuleSet_Combined_p1(b *testing.B) {
	benchRuleSet(b, rulesetFixture(b, "combined"))
}

func BenchmarkRuleSet_Sharded4_p1(b *testing.B) {
	benchRuleSet(b, rulesetFixture(b, "sharded4", sfa.WithShards(4)))
}

func BenchmarkRuleSet_Isolated_p1(b *testing.B) {
	benchRuleSet(b, rulesetFixture(b, "isolated", sfa.WithIsolatedRules()))
}

// The sparse pair is the prefilter's acceptance A/B: same combined set,
// payload corpus, cascade on vs off. On Traffic (the benchmarks above)
// the prefilter's gain is modest because HTTP keywords occur on every
// line; here candidate windows collapse and the ratio is the headline.
func BenchmarkRuleSet_PrefilterSparse_p1(b *testing.B) {
	benchRuleSet(b, rulesetSparseFixture(b, "combined"))
}

func BenchmarkRuleSet_NoPrefilterSparse_p1(b *testing.B) {
	benchRuleSet(b, rulesetSparseFixture(b, "nopre", sfa.WithoutPrefilter()))
}

// The cold-vs-warm pair quantifies the snapshot subsystem: ColdBuild_*
// is the full compile of the curated snort sample (parse → product DFA →
// mask-aware minimization → D-SFA, per shard); WarmLoad replaces all of
// it with a decode+validate pass over the snapshot bytes. BENCH_5.json
// records them, so the warm-restart win is tracked release over release.
func snapshotBenchDefs() []sfa.RuleDef {
	rules := snort.ScanSample(12)
	defs := make([]sfa.RuleDef, len(rules))
	for i, r := range rules {
		defs[i] = sfa.RuleDef{Name: fmt.Sprintf("r%03d", r.ID), Pattern: r.Pattern, Flags: harness.SFAFlags(r.Flags)}
	}
	return defs
}

// The ColdBuild pair A/Bs the two combined-construction strategies on
// the identical rule set: Tuple is the default tuple-interned builder
// (intern k-tuples of component D-SFA states, materialize each mapping
// vector once per state), Vector the legacy path (hash a full |D|-long
// vector per candidate state). Verdicts are byte-identical by contract
// (oracle-gated in internal/multi); the ns/op ratio is the construction
// speedup BENCH_5.json tracks. ColdBuild_Tuple is the successor of
// BENCH_4's RuleSet_SnapshotColdBuild (same defs, same options, default
// path) — compare against WarmLoad below for the snapshot win.
func BenchmarkRuleSet_ColdBuild_Tuple(b *testing.B) {
	defs := snapshotBenchDefs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sfa.NewRuleSetFromDefs(defs, sfa.WithSearch(), sfa.WithThreads(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleSet_ColdBuild_Vector(b *testing.B) {
	defs := snapshotBenchDefs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sfa.NewRuleSetFromDefs(defs, sfa.WithSearch(), sfa.WithThreads(1), sfa.WithVectorInterning()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleSet_LazyColdStart tracks the lazy subsystem's headline
// scenario end to end: a bounded-gap corpus the eager planner rejects
// outright (the hard SFA cap fails every split) is compiled with
// WithLazyCompile under a 16 MiB table budget and scanned once — the
// scan that pays every on-demand product-state fill. Per iteration this
// is build + first scan: the cold-start latency of a tenant the eager
// builder cannot host at all (BENCH_7.json).
func BenchmarkRuleSet_LazyColdStart(b *testing.B) {
	defs := make([]sfa.RuleDef, 64)
	for i := range defs {
		defs[i] = sfa.RuleDef{
			Name:    fmt.Sprintf("gap%03d", i),
			Pattern: fmt.Sprintf("q%02x.{0,%d}z%02x", i%256, 8+i%9, (i*7)%256),
		}
	}
	opts := []sfa.Option{sfa.WithSearch(), sfa.WithThreads(1), sfa.WithSFACap(512)}
	if _, err := sfa.NewRuleSetFromDefs(defs, opts...); err == nil {
		b.Fatal("eager build unexpectedly succeeded; the corpus no longer measures lazy cold start")
	}
	text, _ := textgen.Traffic{SuspiciousPerMille: 2}.Generate(benchMB()<<20, 1)
	dst := make([]uint64, 1)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := sfa.NewRuleSetFromDefs(defs, append(opts,
			sfa.WithLazyCompile(), sfa.WithTableBudget(sfa.NewTableBudget(16<<20)))...)
		if err != nil {
			b.Fatal(err)
		}
		rs.MatchMask(text, dst[:rs.MaskWords()])
	}
}

func BenchmarkRuleSet_SnapshotWarmLoad(b *testing.B) {
	rs, err := sfa.NewRuleSetFromDefs(snapshotBenchDefs(), sfa.WithSearch(), sfa.WithThreads(1))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.Save(&buf); err != nil {
		b.Fatal(err)
	}
	snap := buf.Bytes()
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sfa.LoadRuleSet(bytes.NewReader(snap), sfa.WithThreads(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Chunking compares p chunks on p goroutines against
// 4p chunks on p goroutines' worth of parallelism (more, smaller chunks
// raise reduction cost without helping balanced inputs).
func BenchmarkAblation_Chunking_p2(b *testing.B) {
	f := rnFixture(b, 5)
	benchMatcher(b, engine.NewSFAParallel(f.s, 2, engine.ReduceSequential), f.text, true)
}

func BenchmarkAblation_Chunking_p16(b *testing.B) {
	f := rnFixture(b, 5)
	benchMatcher(b, engine.NewSFAParallel(f.s, 16, engine.ReduceSequential), f.text, true)
}

// --- Streaming hot path: carried-mapping writes (ISSUE 3) ---
//
// The serving subsystem's per-chunk cost: RuleStream.Write advances one
// |D|-sized mapping per shard (pooled parallel scan + ⊙-fold) and Mask
// extracts the verdict into a caller buffer. Both must stay at
// 0 allocs/op — benchjson gates the StreamHotpath benchmarks exactly
// like the pooled Match hot path.

func BenchmarkStreamHotpath_RuleSetWrite64KB_p1(b *testing.B) {
	f := rulesetFixture(b, "combined")
	st, err := f.rs.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := f.text[:64<<10]
	dst := make([]uint64, f.rs.MaskWords())
	st.Write(chunk) // warm the engine contexts
	st.Mask(dst)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Write(chunk)
		st.Mask(dst)
	}
}

func BenchmarkStreamHotpath_RuleSetWrite64KB_p4(b *testing.B) {
	f := rulesetFixture(b, "combined-p4", sfa.WithThreads(4))
	st, err := f.rs.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := f.text[:64<<10]
	dst := make([]uint64, f.rs.MaskWords())
	st.Write(chunk)
	st.Mask(dst)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Write(chunk)
		st.Mask(dst)
	}
}

// BenchmarkStreamHotpath_InstrumentedWrite64KB_p1 is the p1 streaming
// hot path with the full observability layer attached via WithScanStats:
// every Write records chunk bytes, compose latency, and chunk-size
// histogram buckets. The obs primitives are striped atomics and
// fixed-size arrays precisely so this benchmark reports the same
// 0 allocs/op as the uninstrumented twin — benchjson gates on
// "Instrumented" to keep it that way.
// instrumentedScanStats is package-level because the ruleset fixture is
// cached across benchmark invocations: the rule set built on the first
// call keeps recording into this one aggregate for every b.N round.
var instrumentedScanStats = sfa.NewScanStats()

func BenchmarkStreamHotpath_InstrumentedWrite64KB_p1(b *testing.B) {
	f := rulesetFixture(b, "combined-instrumented", sfa.WithScanStats(instrumentedScanStats))
	st, err := f.rs.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := f.text[:64<<10]
	dst := make([]uint64, f.rs.MaskWords())
	st.Write(chunk) // warm the engine contexts
	st.Mask(dst)
	before := instrumentedScanStats.Snapshot().Chunks
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Write(chunk)
		st.Mask(dst)
	}
	b.StopTimer()
	if got := instrumentedScanStats.Snapshot().Chunks - before; got < int64(b.N) {
		b.Fatalf("instrumentation not engaged: %d chunks recorded for %d writes", got, b.N)
	}
}

// BenchmarkStreamHotpath_FlightRecordedWrite64KB_p1 layers the flight
// recorder on top of the instrumented hot path: every iteration does the
// streamed Write + Mask and then records one ScanRecord into the ring,
// exactly what the serve scan handler does per request. The ring's
// record path is all-atomic stores into a preallocated slot, so this
// must report the same 0 allocs/op as its twins — benchjson gates on
// "FlightRecorded".
func BenchmarkStreamHotpath_FlightRecordedWrite64KB_p1(b *testing.B) {
	f := rulesetFixture(b, "combined-instrumented", sfa.WithScanStats(instrumentedScanStats))
	st, err := f.rs.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	ring := sfa.NewFlightRecorder(256)
	chunk := f.text[:64<<10]
	dst := make([]uint64, f.rs.MaskWords())
	st.Write(chunk) // warm the engine contexts
	st.Mask(dst)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Write(chunk)
		st.Mask(dst)
		ss := st.Stats()
		ring.Record(sfa.ScanRecord{
			UnixNano:    int64(i),
			Tenant:      "bench",
			Generation:  1,
			Bytes:       int64(len(chunk)),
			Chunks:      ss.Chunks,
			PrefilterNs: ss.PrefilterNs,
			ComposeNs:   ss.ComposeNs - ss.PrefilterNs,
			Matches:     int64(len(dst)),
		})
	}
	b.StopTimer()
	if got := len(ring.Snapshot(8)); got == 0 {
		b.Fatal("flight recorder recorded nothing")
	}
}

func BenchmarkStreamHotpath_SingleWrite64KB_p4(b *testing.B) {
	re, err := sfa.Compile("(([02468][13579]){5})*", sfa.WithThreads(4))
	if err != nil {
		b.Fatal(err)
	}
	st, err := re.NewStream()
	if err != nil {
		b.Fatal(err)
	}
	chunk := textgen.EvenOddText(64<<10, 1)
	st.Write(chunk)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Write(chunk); err != nil {
			b.Fatal(err)
		}
	}
	if !st.Accepted() {
		b.Fatal("streamed input rejected")
	}
}
