package engine

import "repro/internal/obs"

// attribution is one engine's always-on scan-cost account: where the
// shard's compose time went, how many chunks and bytes it actually
// walked, and how many prefilter candidate windows it verified. Unlike
// the opt-in ScanStats aggregate (shared across a tenant's shards and
// reset per generation), attribution lives on the engine itself — hot
// reloads reuse engines by pointer, so the account survives reloads and
// answers "which shard costs" across the set's whole lifetime. All
// fields are obs striped counters: recording is wait-free and
// allocation-free, safe on the pooled hot paths.
type attribution struct {
	composeNs obs.Counter // ns spent scanning + ⊙-folding (one-shot runs and stream chunks)
	chunks    obs.Counter // one-shot runs + stream chunks that reached the automaton
	bytes     obs.Counter // input bytes this engine walked (chunks + candidate windows)
	windows   obs.Counter // prefilter candidate windows verified via OrMask
}

// fill copies the account into an Info. (Candidate windows are counted
// but not timed: a window is a short slice, and two clock reads per
// window would cost more than the walk it measures.)
func (a *attribution) fill(inf *Info) {
	inf.ComposeNs = a.composeNs.Load()
	inf.ScanChunks = a.chunks.Load()
	inf.ScanBytes = a.bytes.Load()
	inf.CandWindows = a.windows.Load()
}
