package engine

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// NSFAParallel is Algorithm 5 over an N-SFA. Each thread performs one
// table lookup per byte, exactly as the D-SFA engine; the difference is
// the reduction: composing two N-SFA mappings is a boolean matrix product
// (O(|N|³), Table II), and the sequential reduction steps a state *set*
// through the p correspondences (O(|N|·p) worst case).
type NSFAParallel struct {
	s       *core.NSFA
	tab     []int32
	threads int
	red     Reduction
}

// NewNSFAParallel compiles the matcher.
func NewNSFAParallel(s *core.NSFA, threads int, red Reduction) *NSFAParallel {
	if threads < 1 {
		threads = 1
	}
	// 256-wide table, same layout as the D-SFA engine.
	tab := make([]int32, s.NumStates*256)
	for q := 0; q < s.NumStates; q++ {
		for b := 0; b < 256; b++ {
			tab[q*256+b] = s.NextByte(int32(q), byte(b))
		}
	}
	return &NSFAParallel{s: s, tab: tab, threads: threads, red: red}
}

// Match implements Algorithm 5 for the general (NFA-derived) case.
func (m *NSFAParallel) Match(text []byte) bool {
	p := m.threads
	spans := chunks(len(text), p)
	locals := make([]int32, p)

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := m.s.Start
			tab := m.tab
			for _, b := range text[spans[i][0]:spans[i][1]] {
				q = tab[int(q)<<8|int(b)]
			}
			locals[i] = q
		}(i)
	}
	wg.Wait()

	a := m.s.A
	n, words := a.NumStates, m.s.Words()
	switch m.red {
	case ReduceSequential:
		// Sfin ← I; Sfin ← ⋃_{q∈Sfin} fi(q): step a frontier bitset
		// through each correspondence.
		frontier := make([]uint64, words)
		for _, q0 := range a.Start {
			frontier[q0>>6] |= 1 << (q0 & 63)
		}
		scratch := make([]uint64, words)
		for _, f := range locals {
			mat := m.s.Mat(f)
			for i := range scratch {
				scratch[i] = 0
			}
			for q := 0; q < n; q++ {
				if frontier[q>>6]&(1<<(q&63)) != 0 {
					row := mat[q*words : (q+1)*words]
					for i := range scratch {
						scratch[i] |= row[i]
					}
				}
			}
			frontier, scratch = scratch, frontier
		}
		return a.AcceptsSet(frontier)
	default:
		// Tree reduction: boolean matrix products.
		mats := make([][]uint64, len(locals))
		for i, f := range locals {
			mats[i] = m.s.Mat(f)
		}
		fin := treeReduceMat(mats, n, words)
		for _, q0 := range a.Start {
			if a.AcceptsSet(fin[int(q0)*words : (int(q0)+1)*words]) {
				return true
			}
		}
		return false
	}
}

func treeReduceMat(mats [][]uint64, n, words int) []uint64 {
	switch len(mats) {
	case 1:
		return mats[0]
	case 2:
		h := make([]uint64, n*words)
		core.ComposeMat(h, mats[0], mats[1], n, words)
		return h
	}
	mid := len(mats) / 2
	var left, right []uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		left = treeReduceMat(mats[:mid], n, words)
	}()
	right = treeReduceMat(mats[mid:], n, words)
	wg.Wait()
	h := make([]uint64, n*words)
	core.ComposeMat(h, left, right, n, words)
	return h
}

// Name implements Matcher.
func (m *NSFAParallel) Name() string {
	return fmt.Sprintf("nsfa-p%d-%s", m.threads, m.red)
}
