package engine

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// NSFAParallel is Algorithm 5 over an N-SFA. Each thread performs one
// table lookup per byte, exactly as the D-SFA engine; the difference is
// the reduction: composing two N-SFA mappings is a boolean matrix product
// (O(|N|³), Table II), and the sequential reduction steps a state *set*
// through the p correspondences (O(|N|·p) worst case).
//
// Matching defaults to the persistent worker pool with pooled scratch
// (chunk results, the frontier bitsets, the matrix-reduction arena);
// WithSpawn restores per-call goroutine creation.
type NSFAParallel struct {
	s       *core.NSFA
	threads int
	red     Reduction
	layout  TableLayout
	tab     tables
	spawn   bool
	pool    *Pool
	ctxs    sync.Pool // of *nsfaCtx
}

// NewNSFAParallel compiles the matcher.
func NewNSFAParallel(s *core.NSFA, threads int, red Reduction, opts ...Option) *NSFAParallel {
	if threads < 1 {
		threads = 1
	}
	o := buildOpts(opts)
	m := &NSFAParallel{
		s:       s,
		threads: threads,
		red:     red,
		layout:  resolveLayout(o.layout, s.NumStates),
		spawn:   o.spawn,
		pool:    o.pool,
	}
	switch m.layout {
	case LayoutU8:
		m.tab.u8 = s.Table256U8()
	case LayoutU16:
		m.tab.u16 = s.Table256U16()
	case LayoutI32:
		m.tab.i32 = s.Table256()
	}
	m.ctxs.New = func() any {
		words := s.Words()
		return &nsfaCtx{
			m:        m,
			locals:   make([]int32, m.threads),
			frontier: make([]uint64, words),
			scratch:  make([]uint64, words),
		}
	}
	return m
}

// nsfaCtx is the per-Match scratch of the N-SFA engine.
type nsfaCtx struct {
	job      jobState
	m        *NSFAParallel
	text     []byte
	locals   []int32
	frontier []uint64
	scratch  []uint64
	ar       reduceArenaMat
}

func (c *nsfaCtx) runChunk(i int) {
	lo, hi := span(len(c.text), c.m.threads, i)
	c.locals[i] = c.m.runChunk(c.text[lo:hi])
}

func (m *NSFAParallel) runChunk(chunk []byte) int32 {
	if m.layout == LayoutClass {
		q := m.s.Start
		for _, b := range chunk {
			q = m.s.NextByte(q, b)
		}
		return q
	}
	return m.tab.run(m.layout, m.s.Start, chunk)
}

// Match implements Algorithm 5 for the general (NFA-derived) case.
func (m *NSFAParallel) Match(text []byte) bool {
	p := m.threads
	c := m.ctxs.Get().(*nsfaCtx)
	c.text = text
	dispatchChunks(c, &c.job, m.pool, m.spawn, p)
	ok := m.reduce(c)
	c.text = nil
	m.ctxs.Put(c)
	return ok
}

func (m *NSFAParallel) reduce(c *nsfaCtx) bool {
	a := m.s.A
	n, words := a.NumStates, m.s.Words()
	switch m.red {
	case ReduceSequential:
		// Sfin ← I; Sfin ← ⋃_{q∈Sfin} fi(q): step a frontier bitset
		// through each correspondence.
		frontier, scratch := c.frontier, c.scratch
		for i := range frontier {
			frontier[i] = 0
		}
		for _, q0 := range a.Start {
			frontier[q0>>6] |= 1 << (q0 & 63)
		}
		for _, f := range c.locals {
			mat := m.s.Mat(f)
			for i := range scratch {
				scratch[i] = 0
			}
			for q := 0; q < n; q++ {
				if frontier[q>>6]&(1<<(q&63)) != 0 {
					row := mat[q*words : (q+1)*words]
					for i := range scratch {
						scratch[i] |= row[i]
					}
				}
			}
			frontier, scratch = scratch, frontier
		}
		c.frontier, c.scratch = frontier, scratch
		return a.AcceptsSet(frontier)
	default:
		// Tree reduction: boolean matrix products over the arena.
		mats := c.ar.mats(len(c.locals))
		for i, f := range c.locals {
			mats[i] = m.s.Mat(f)
		}
		fin := treeReduceMat(mats, n, words, &c.ar)
		for _, q0 := range a.Start {
			if a.AcceptsSet(fin[int(q0)*words : (int(q0)+1)*words]) {
				return true
			}
		}
		return false
	}
}

// Name implements Matcher.
func (m *NSFAParallel) Name() string {
	mode := ""
	if m.spawn {
		mode = "-spawn"
	}
	return fmt.Sprintf("nsfa-p%d-%s-%s%s", m.threads, m.red, m.layout, mode)
}
