package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// LazyMultiSFA is the multi-pattern engine over a lazy combined D-SFA
// (core.LazyTuple): the same scan surface as MultiSFA — MatchMask,
// OrMask, Match, and the streaming carried-mapping protocol — but
// product states are materialized on demand during scanning and may be
// evicted under the table budget between (never during) chunks.
//
// The carried mapping differs from MultiSFA's: there is no product DFA,
// so instead of a |Dprod|-long vector the carried value is the
// concatenation of the per-component mapping vectors (length Σ|Di|),
// composed blockwise. That representation is what makes the streaming
// protocol eviction-tolerant — it denotes the transformation itself and
// never references interned state ids, so a mapping carried across a
// reset stays valid. MatchMask verdicts are byte-identical to the eager
// engine's on everything the eager path can compile, and to per-rule
// isolated scanning always.
//
// There is no table layout to choose (rows are class-indexed and grow at
// run time) and no mask table (verdict bits are read per component
// block), so layout options do not apply; pool/spawn options do.
type LazyMultiSFA struct {
	t       *core.LazyTuple
	words   int
	threads int
	spawn   bool
	pool    *Pool
	id      uint64
	ctxs    sync.Pool // of *lazyMultiCtx

	// attr is the always-on per-shard cost account (compose ns, chunks,
	// bytes, candidate windows); see attribution.
	attr attribution
}

// NewLazyMultiSFA wraps a lazy combined automaton as a shard engine.
// Rule bit i of every result mask belongs to component i of t.
func NewLazyMultiSFA(t *core.LazyTuple, threads int, opts ...Option) *LazyMultiSFA {
	if threads < 1 {
		threads = 1
	}
	o := buildOpts(opts)
	id := o.buildID
	if id == 0 {
		id = buildSeq.Add(1)
	}
	m := &LazyMultiSFA{
		t:       t,
		words:   (t.Rules() + 63) / 64,
		threads: threads,
		spawn:   o.spawn,
		pool:    o.pool,
		id:      id,
	}
	m.ctxs.New = func() any {
		c := &lazyMultiCtx{m: m, vecs: make([][]int16, m.threads)}
		for i := range c.vecs {
			c.vecs[i] = make([]int16, t.VecLen())
		}
		c.tmp = make([]int16, t.VecLen())
		c.mask = make([]uint64, m.words)
		return c
	}
	// The budget keeps a process-wide registry entry (and therefore a
	// strong reference) for every lazy structure; without a release
	// hook, dropping a rule set would leak its charged bytes forever.
	// Engines have no Close in this codebase — reclamation rides the
	// collector instead.
	runtime.SetFinalizer(m, func(m *LazyMultiSFA) { m.t.Close() })
	return m
}

// lazyMultiCtx is the per-call scratch: one chunk-result vector per
// thread, a compose scratch, and a mask buffer for Match.
type lazyMultiCtx struct {
	job  jobState
	m    *LazyMultiSFA
	text []byte
	vecs [][]int16
	tmp  []int16
	mask []uint64
}

func (c *lazyMultiCtx) runChunk(i int) {
	lo, hi := span(len(c.text), c.m.threads, i)
	c.m.t.RunToVec(c.text[lo:hi], c.vecs[i])
}

// runToVec scans text and leaves the induced transformation in a
// context-owned vector (returned). Small inputs run sequentially —
// the fork/fold overhead of Σ|Di|-long vectors needs a big chunk to
// amortize.
func (m *LazyMultiSFA) runToVec(c *lazyMultiCtx, text []byte) []int16 {
	p := m.threads
	if p < 2 || len(text) < streamSequentialMax {
		m.t.RunToVec(text, c.vecs[0])
		return c.vecs[0]
	}
	c.text = text
	dispatchChunks(c, &c.job, m.pool, m.spawn, p)
	c.text = nil
	cur, tmp := c.vecs[0], c.tmp
	for i := 1; i < p; i++ {
		m.t.Compose(tmp, cur, c.vecs[i])
		cur, tmp = tmp, cur
	}
	c.tmp = tmp
	return cur
}

// MatchMask scans text once and writes the accept bitmask — bit r set
// iff rule r matches the whole input — into dst, which must have
// Words() capacity. It returns dst[:Words()].
func (m *LazyMultiSFA) MatchMask(text []byte, dst []uint64) []uint64 {
	start := time.Now()
	dst = dst[:m.words]
	for i := range dst {
		dst[i] = 0
	}
	c := m.ctxs.Get().(*lazyMultiCtx)
	m.t.OrAccept(m.runToVec(c, text), dst)
	m.ctxs.Put(c)
	m.attr.composeNs.Add(time.Since(start).Nanoseconds())
	m.attr.chunks.Inc()
	m.attr.bytes.Add(int64(len(text)))
	return dst
}

// OrMask scans text sequentially on the calling goroutine and ORs the
// accept bitmask into dst — the candidate-window primitive of the
// literal prefilter, same contract as MultiSFA.OrMask.
func (m *LazyMultiSFA) OrMask(text []byte, dst []uint64) {
	m.attr.windows.Inc()
	m.attr.bytes.Add(int64(len(text)))
	c := m.ctxs.Get().(*lazyMultiCtx)
	m.t.RunToVec(text, c.vecs[0])
	m.t.OrAccept(c.vecs[0], dst)
	m.ctxs.Put(c)
}

// Match implements Matcher: whole-input acceptance by any rule.
func (m *LazyMultiSFA) Match(text []byte) bool {
	c := m.ctxs.Get().(*lazyMultiCtx)
	for i := range c.mask {
		c.mask[i] = 0
	}
	m.t.OrAccept(m.runToVec(c, text), c.mask)
	any := false
	for _, w := range c.mask {
		if w != 0 {
			any = true
			break
		}
	}
	m.ctxs.Put(c)
	return any
}

// Words returns the mask width in uint64 words.
func (m *LazyMultiSFA) Words() int { return m.words }

// BuildID returns the engine's process-unique construction id.
func (m *LazyMultiSFA) BuildID() uint64 { return m.id }

// MappingLen returns the carried-mapping length: Σ|Di| over the
// component DFAs (block-diagonal representation; see the type comment).
func (m *LazyMultiSFA) MappingLen() int { return m.t.VecLen() }

// InitMapping writes the identity mapping into cur.
func (m *LazyMultiSFA) InitMapping(cur []int16) { m.t.Identity(cur) }

// ComposeChunk advances a carried mapping by one chunk of input: the
// chunk is scanned from the identity and folded in blockwise. cur and
// tmp are the caller's ping-pong pair; the updated pair is returned in
// (current, scratch) order. The carried value survives evictions of the
// underlying lazy automaton — it is a denotation, not a state id.
//sfa:noalloc
func (m *LazyMultiSFA) ComposeChunk(cur, tmp []int16, chunk []byte) ([]int16, []int16) {
	if len(chunk) == 0 {
		return cur, tmp
	}
	start := time.Now()
	c := m.ctxs.Get().(*lazyMultiCtx)
	m.t.Compose(tmp, cur, m.runToVec(c, chunk))
	m.ctxs.Put(c)
	m.attr.composeNs.Add(time.Since(start).Nanoseconds())
	m.attr.chunks.Inc()
	m.attr.bytes.Add(int64(len(chunk)))
	return tmp, cur
}

// MatchMaskFrom writes the accept bitmask of a carried mapping into
// dst, which must have Words() capacity. It returns dst[:Words()].
//sfa:noalloc
//sfa:borrowed cur
func (m *LazyMultiSFA) MatchMaskFrom(cur []int16, dst []uint64) []uint64 {
	dst = dst[:m.words]
	for i := range dst {
		dst[i] = 0
	}
	m.t.OrAccept(cur, dst)
	return dst
}

// ComposeMask merges two carried mappings: h ← "f then g", blockwise.
// h must not alias f or g.
//sfa:borrowed f g
func (m *LazyMultiSFA) ComposeMask(h, f, g []int16) { m.t.Compose(h, f, g) }

// TableBytes returns the bytes currently charged to the table budget —
// the lazy analogue of the eager engines' materialized table size.
func (m *LazyMultiSFA) TableBytes() int64 { return m.t.Stats().ResidentBytes }

// Stats exposes the underlying structure's counters.
func (m *LazyMultiSFA) Stats() core.LazyTupleStats { return m.t.Stats() }

// Name implements Matcher.
func (m *LazyMultiSFA) Name() string {
	mode := ""
	if m.spawn {
		mode = "-spawn"
	}
	return fmt.Sprintf("multi-sfa-lazy-p%d%s", m.threads, mode)
}

// Info implements the shard-engine stats surface.
func (m *LazyMultiSFA) Info() Info {
	st := m.t.Stats()
	inf := Info{
		DFAStates:     m.t.VecLen(), // Σ|Di|: no product DFA exists
		SFAStates:     st.States,
		Layout:        "lazy",
		TableBytes:    st.ResidentBytes,
		Lazy:          true,
		ResidentBytes: st.ResidentBytes,
		Fills:         st.Fills,
		Evictions:     st.Resets,
	}
	m.attr.fill(&inf)
	return inf
}

// Info describes one shard engine for stats reporting, covering both
// the eager (table-backed) and lazy (budgeted, evictable) kinds.
type Info struct {
	DFAStates  int    // eager: combined minimal DFA live states; lazy: Σ|Di|
	SFAStates  int    // eager: combined D-SFA live states; lazy: resident tuple states
	Layout     string // transition-table layout, or "lazy"
	TableBytes int64  // resident table bytes (lazy: budget-charged bytes)

	Lazy          bool  // engine builds states on demand under a budget
	ResidentBytes int64 // lazy only: bytes charged to the table budget
	Fills         int64 // lazy only: states materialized since build
	Evictions     int64 // lazy only: whole-structure resets

	// HotStates is the chunk-boundary-state frequency table (descending
	// count) collected when the engine was built with WithScanStats —
	// the concentration measurement Ko-style speculative chunk matching
	// needs. HotOther counts boundary hits that fell outside the fixed
	// table. Nil/0 when stats are off or the engine is lazy.
	HotStates []obs.StateCount
	HotOther  int64

	// Always-on cost attribution, accumulated over the engine's whole
	// lifetime (hot reloads reuse engines, so these survive reloads):
	// compose time, chunks and bytes the engine actually walked, and
	// prefilter candidate windows it verified.
	ComposeNs   int64
	ScanChunks  int64
	ScanBytes   int64
	CandWindows int64
}

// Info implements the shard-engine stats surface for the eager engine.
func (m *MultiSFA) Info() Info {
	inf := Info{
		DFAStates:  m.s.D.LiveSize(),
		SFAStates:  m.s.LiveSize(),
		Layout:     m.layout.String(),
		TableBytes: m.TableBytes(),
	}
	if m.boundary != nil {
		inf.HotStates, inf.HotOther = m.boundary.Snapshot()
	}
	m.attr.fill(&inf)
	return inf
}
