package engine

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/textgen"
)

// advance is the carried-mapping protocol as a test helper: feed chunks
// through ComposeChunk, return the final mapping.
func advance(m *MultiSFA, chunks [][]byte) []int16 {
	cur := make([]int16, m.MappingLen())
	tmp := make([]int16, m.MappingLen())
	m.InitMapping(cur)
	for _, c := range chunks {
		cur, tmp = m.ComposeChunk(cur, tmp, c)
	}
	return cur
}

// TestComposeChunkAgreesWithMatchMask: any chunking of the input must
// produce exactly the one-shot mask (Theorem 3 at the engine level),
// including chunk sizes below and above the sequential threshold, empty
// chunks, and both dispatch modes.
func TestComposeChunkAgreesWithMatchMask(t *testing.T) {
	text := textgen.RnText(2, 3*streamSequentialMax, 7)
	inputs := [][]byte{nil, []byte("0459"), text[:streamSequentialMax-1], text}
	for _, threads := range []int{1, 2, 4} {
		for _, spawn := range []bool{false, true} {
			var opts []Option
			if spawn {
				opts = append(opts, WithSpawn())
			}
			m, _ := multiFixture(t, threads, opts...)
			for _, in := range inputs {
				want := m.MatchMask(in, make([]uint64, 1))[0]
				for _, split := range []int{1, 3, streamSequentialMax + 1} {
					var chunks [][]byte
					chunks = append(chunks, nil) // leading empty write
					for off := 0; off < len(in); off += split {
						end := min(off+split, len(in))
						chunks = append(chunks, in[off:end])
					}
					cur := advance(m, chunks)
					got := m.MatchMaskFrom(cur, make([]uint64, 1))[0]
					if got != want {
						t.Fatalf("p=%d spawn=%v len=%d split=%d: mask %x, want %x",
							threads, spawn, len(in), split, got, want)
					}
				}
			}
		}
	}
}

// TestComposeMaskMergesSegments: scanning two segments independently and
// folding with ComposeMask must equal scanning the concatenation.
func TestComposeMaskMergesSegments(t *testing.T) {
	m, _ := multiFixture(t, 2)
	text := textgen.RnText(2, 40_000, 9)
	cut := len(text)/2 + 1
	a := advance(m, [][]byte{text[:cut]})
	b := advance(m, [][]byte{text[cut:]})
	h := make([]int16, m.MappingLen())
	m.ComposeMask(h, a, b)

	whole := advance(m, [][]byte{text})
	if !bytes.Equal(int16Bytes(h), int16Bytes(whole)) {
		t.Fatal("composed mapping differs from whole-input mapping")
	}
}

func int16Bytes(v []int16) []byte {
	out := make([]byte, 2*len(v))
	for i, x := range v {
		out[2*i], out[2*i+1] = byte(x), byte(x>>8)
	}
	return out
}

// TestSFAParallelComposeChunkAgreesWithMatch is the single-pattern
// equivalent: the carried mapping's verdict must match one-shot Match for
// any chunking.
func TestSFAParallelComposeChunkAgreesWithMatch(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{2}[5-9]{2})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := textgen.RnText(2, 3*streamSequentialMax, 5)
	for _, threads := range []int{1, 4} {
		m := NewSFAParallel(s, threads, ReduceSequential)
		for _, in := range [][]byte{nil, []byte("0459"), text[:99], text} {
			want := m.Match(in)
			cur := make([]int16, m.MappingLen())
			tmp := make([]int16, m.MappingLen())
			m.InitMapping(cur)
			for off := 0; off < len(in); off += 777 {
				end := min(off+777, len(in))
				cur, tmp = m.ComposeChunk(cur, tmp, in[off:end])
			}
			if got := m.AcceptedFrom(cur); got != want {
				t.Fatalf("p=%d len=%d: streamed %v, one-shot %v", threads, len(in), got, want)
			}
		}
	}
}

// TestComposeChunkZeroAllocSteadyState is the streaming hot-path
// guardrail: once the context pool is warm, advancing a carried mapping
// by a chunk must not allocate — for either engine, at any chunk size.
func TestComposeChunkZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; allocs/op is only meaningful without -race")
	}
	big := textgen.RnText(2, 64<<10, 3)
	small := big[:256]

	m, _ := multiFixture(t, 4)
	cur := make([]int16, m.MappingLen())
	tmp := make([]int16, m.MappingLen())
	m.InitMapping(cur)
	dst := make([]uint64, m.Words())
	for i := 0; i < 10; i++ {
		cur, tmp = m.ComposeChunk(cur, tmp, big)
	}
	for name, chunk := range map[string][]byte{"parallel": big, "sequential": small} {
		avg := testing.AllocsPerRun(100, func() {
			cur, tmp = m.ComposeChunk(cur, tmp, chunk)
			m.MatchMaskFrom(cur, dst)
		})
		if avg >= 0.5 {
			t.Errorf("MultiSFA %s chunk: %.2f allocs/op in steady state", name, avg)
		}
	}

	d := dfa.MustCompilePattern("([0-4]{2}[5-9]{2})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewSFAParallel(s, 4, ReduceSequential)
	scur := make([]int16, e.MappingLen())
	stmp := make([]int16, e.MappingLen())
	e.InitMapping(scur)
	for i := 0; i < 10; i++ {
		scur, stmp = e.ComposeChunk(scur, stmp, big)
	}
	if avg := testing.AllocsPerRun(100, func() {
		scur, stmp = e.ComposeChunk(scur, stmp, big)
		e.AcceptedFrom(scur)
	}); avg >= 0.5 {
		t.Errorf("SFAParallel chunk: %.2f allocs/op in steady state", avg)
	}
}

// TestBuildIDUnique: construction ids distinguish engines, the handle the
// hot-reload tests use to prove shard reuse.
func TestBuildIDUnique(t *testing.T) {
	a, _ := multiFixture(t, 1)
	b, _ := multiFixture(t, 1)
	if a.BuildID() == b.BuildID() {
		t.Fatalf("two engines share build id %d", a.BuildID())
	}
	if a.BuildID() == 0 || b.BuildID() == 0 {
		t.Fatal("build id 0 is reserved for 'never built'")
	}
}
