package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Batch runs one matcher over many independent inputs — the "multiple
// data" axis of parallelism the paper contrasts with its own
// intra-input parallelism in the introduction ("computations of automata
// are naively executed in parallel when both/either of queries and/or
// data are multiple"). Combined with a parallel Matcher, both axes
// compose: workers × chunks.
type Batch struct {
	m       Matcher
	workers int
}

// NewBatch wraps a matcher for batched use. workers ≤ 0 uses GOMAXPROCS.
func NewBatch(m Matcher, workers int) *Batch {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Batch{m: m, workers: workers}
}

// MatchAll returns one verdict per input, in order.
func (b *Batch) MatchAll(inputs [][]byte) []bool {
	out := make([]bool, len(inputs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < b.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(inputs) {
					return
				}
				out[i] = b.m.Match(inputs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Count returns how many inputs match.
func (b *Batch) Count(inputs [][]byte) int {
	n := 0
	for _, ok := range b.MatchAll(inputs) {
		if ok {
			n++
		}
	}
	return n
}

// AnyIndex returns the index of some matching input, or -1. It stops
// dispatching new work after the first hit (already-running probes
// finish).
func (b *Batch) AnyIndex(inputs [][]byte) int {
	var next atomic.Int64
	found := atomic.Int64{}
	found.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < b.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for found.Load() < 0 {
				i := int(next.Add(1)) - 1
				if i >= len(inputs) {
					return
				}
				if b.m.Match(inputs[i]) {
					found.CompareAndSwap(-1, int64(i))
					return
				}
			}
		}()
	}
	wg.Wait()
	return int(found.Load())
}
