package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Batch runs one matcher over many independent inputs — the "multiple
// data" axis of parallelism the paper contrasts with its own
// intra-input parallelism in the introduction ("computations of automata
// are naively executed in parallel when both/either of queries and/or
// data are multiple"). Combined with a parallel Matcher, both axes
// compose: workers × chunks.
//
// Dispatch runs on the persistent worker pool: the pool's help-while-
// waiting protocol makes it safe for Batch workers (which are pool tasks
// themselves) to call a pooled Matcher that submits chunk tasks to the
// same pool. The number of dispatched workers never exceeds the number of
// inputs.
type Batch struct {
	m       Matcher
	workers int
	spawn   bool
	pool    *Pool
	ctxs    sync.Pool // of *batchCtx
}

// NewBatch wraps a matcher for batched use. workers ≤ 0 uses GOMAXPROCS.
func NewBatch(m Matcher, workers int, opts ...Option) *Batch {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	o := buildOpts(opts)
	b := &Batch{m: m, workers: workers, spawn: o.spawn, pool: o.pool}
	b.ctxs.New = func() any { return &batchCtx{b: b} }
	return b
}

// batchCtx is the shared state of one MatchAll/AnyIndex call: a
// work-stealing input cursor plus the result sink.
type batchCtx struct {
	job    jobState
	b      *Batch
	inputs [][]byte
	out    []bool // MatchAll mode when non-nil
	next   atomic.Int64
	found  atomic.Int64 // AnyIndex mode when out is nil
}

// runChunk is one batch worker: it pulls input indices until none remain
// (or, in AnyIndex mode, until some worker found a hit).
func (c *batchCtx) runChunk(int) {
	if c.out != nil {
		for {
			i := int(c.next.Add(1)) - 1
			if i >= len(c.inputs) {
				return
			}
			c.out[i] = c.b.m.Match(c.inputs[i])
		}
	}
	for c.found.Load() < 0 {
		i := int(c.next.Add(1)) - 1
		if i >= len(c.inputs) {
			return
		}
		if c.b.m.Match(c.inputs[i]) {
			c.found.CompareAndSwap(-1, int64(i))
			return
		}
	}
}

// dispatch runs w batch workers to completion. Like dispatchChunks, the
// raw go statements serve only the spawn-mode measurement path.
//
//sfa:spawner
func (b *Batch) dispatch(c *batchCtx, w int) {
	if b.spawn {
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.runChunk(0)
			}()
		}
		wg.Wait()
		return
	}
	b.pool.Run(c, &c.job, w)
}

// release returns the context to the pool with its references dropped.
func (b *Batch) release(c *batchCtx) {
	c.inputs, c.out = nil, nil
	b.ctxs.Put(c)
}

// MatchAll returns one verdict per input, in order.
func (b *Batch) MatchAll(inputs [][]byte) []bool {
	out := make([]bool, len(inputs))
	if len(inputs) == 0 {
		return out
	}
	c := b.ctxs.Get().(*batchCtx)
	c.inputs, c.out = inputs, out
	c.next.Store(0)
	b.dispatch(c, min(b.workers, len(inputs)))
	b.release(c)
	return out
}

// Count returns how many inputs match.
func (b *Batch) Count(inputs [][]byte) int {
	n := 0
	for _, ok := range b.MatchAll(inputs) {
		if ok {
			n++
		}
	}
	return n
}

// AnyIndex returns the index of some matching input, or -1. It stops
// dispatching new work after the first hit (already-running probes
// finish).
func (b *Batch) AnyIndex(inputs [][]byte) int {
	if len(inputs) == 0 {
		return -1
	}
	c := b.ctxs.Get().(*batchCtx)
	c.inputs, c.out = inputs, nil
	c.next.Store(0)
	c.found.Store(-1)
	b.dispatch(c, min(b.workers, len(inputs)))
	found := int(c.found.Load())
	b.release(c)
	return found
}
