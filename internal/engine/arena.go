package engine

import "repro/internal/core"

// Reduction arenas: reusable buffers for the ⊙-tree reductions of
// Algorithms 3 and 5. The seed implementations allocated a fresh result
// vector at every recursion level of the tree; here each match context
// owns an arena and the tree runs iteratively, composing adjacent pairs
// into slots of two ping-pong buffers — level k reads one buffer and
// writes the other, so no composition ever aliases its destination and
// steady-state reduction performs no allocation.

// reduceArena16 serves the D-SFA engine's transformation vectors.
type reduceArena16 struct {
	hdrs [][]int16
	a, b []int16
}

// vecs returns a reusable header slice of length p for gathering the
// per-chunk mapping views.
func (ar *reduceArena16) vecs(p int) [][]int16 {
	if cap(ar.hdrs) < p {
		ar.hdrs = make([][]int16, p)
	}
	return ar.hdrs[:p]
}

func (ar *reduceArena16) buffers(p, n int) (a, b []int16) {
	need := (p/2 + 1) * n
	if cap(ar.a) < need {
		ar.a = make([]int16, need)
		ar.b = make([]int16, need)
	}
	return ar.a[:need], ar.b[:need]
}

// treeReduce16 folds transformation vectors pairwise with ⊙ into a final
// vector. vecs is clobbered as scratch; the result aliases the arena (or
// vecs[0] when len(vecs) == 1).
func treeReduce16(vecs [][]int16, n int, ar *reduceArena16) []int16 {
	m := len(vecs)
	if m == 1 {
		return vecs[0]
	}
	cur, next := ar.buffers(m, n)
	for m > 1 {
		half := m / 2
		for i := 0; i < half; i++ {
			dst := cur[i*n : (i+1)*n]
			core.ComposeVec(dst, vecs[2*i], vecs[2*i+1])
			vecs[i] = dst
		}
		if m%2 == 1 {
			// Copy the odd vector into the current buffer so the next
			// level never reads from the buffer it writes.
			dst := cur[half*n : (half+1)*n]
			copy(dst, vecs[m-1])
			vecs[half] = dst
			half++
		}
		m = half
		cur, next = next, cur
	}
	_ = next
	return vecs[0]
}

// reduceArena32 serves the speculative-DFA engine's Q → Q mappings.
type reduceArena32 struct {
	hdrs [][]int32
	a, b []int32
}

func (ar *reduceArena32) vecs(p int) [][]int32 {
	if cap(ar.hdrs) < p {
		ar.hdrs = make([][]int32, p)
	}
	return ar.hdrs[:p]
}

func (ar *reduceArena32) buffers(p, n int) (a, b []int32) {
	need := (p/2 + 1) * n
	if cap(ar.a) < need {
		ar.a = make([]int32, need)
		ar.b = make([]int32, need)
	}
	return ar.a[:need], ar.b[:need]
}

// treeReduce32 is treeReduce16 for int32 mappings (Algorithm 3's ⊙-tree).
func treeReduce32(vecs [][]int32, n int, ar *reduceArena32) []int32 {
	m := len(vecs)
	if m == 1 {
		return vecs[0]
	}
	cur, next := ar.buffers(m, n)
	for m > 1 {
		half := m / 2
		for i := 0; i < half; i++ {
			dst := cur[i*n : (i+1)*n]
			f, g := vecs[2*i], vecs[2*i+1]
			for q := 0; q < n; q++ {
				dst[q] = g[f[q]]
			}
			vecs[i] = dst
		}
		if m%2 == 1 {
			dst := cur[half*n : (half+1)*n]
			copy(dst, vecs[m-1])
			vecs[half] = dst
			half++
		}
		m = half
		cur, next = next, cur
	}
	_ = next
	return vecs[0]
}

// reduceArenaMat serves the N-SFA engine's boolean matrices (n×words
// bitset rows); composition is the O(|N|³) matrix product of Table II.
type reduceArenaMat struct {
	hdrs [][]uint64
	a, b []uint64
}

func (ar *reduceArenaMat) mats(p int) [][]uint64 {
	if cap(ar.hdrs) < p {
		ar.hdrs = make([][]uint64, p)
	}
	return ar.hdrs[:p]
}

func (ar *reduceArenaMat) buffers(p, mw int) (a, b []uint64) {
	need := (p/2 + 1) * mw
	if cap(ar.a) < need {
		ar.a = make([]uint64, need)
		ar.b = make([]uint64, need)
	}
	return ar.a[:need], ar.b[:need]
}

// treeReduceMat folds correspondences pairwise with boolean matrix
// products. ComposeMat requires a zeroed destination, so slots are
// cleared before reuse.
func treeReduceMat(mats [][]uint64, n, words int, ar *reduceArenaMat) []uint64 {
	m := len(mats)
	if m == 1 {
		return mats[0]
	}
	mw := n * words
	cur, next := ar.buffers(m, mw)
	for m > 1 {
		half := m / 2
		for i := 0; i < half; i++ {
			dst := cur[i*mw : (i+1)*mw]
			for k := range dst {
				dst[k] = 0
			}
			core.ComposeMat(dst, mats[2*i], mats[2*i+1], n, words)
			mats[i] = dst
		}
		if m%2 == 1 {
			dst := cur[half*mw : (half+1)*mw]
			copy(dst, mats[m-1])
			mats[half] = dst
			half++
		}
		m = half
		cur, next = next, cur
	}
	_ = next
	return mats[0]
}
