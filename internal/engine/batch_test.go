package engine

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
)

func batchFixture(t *testing.T) (*Batch, [][]byte, []bool) {
	t.Helper()
	d := dfa.MustCompilePattern("(ab)*")
	b := NewBatch(NewDFASequential(d), 4)
	var inputs [][]byte
	var want []bool
	for i := 0; i < 257; i++ {
		if i%3 == 0 {
			inputs = append(inputs, []byte("abababab"[:2*(i%4)]))
			want = append(want, true)
		} else {
			inputs = append(inputs, []byte(fmt.Sprintf("x%d", i)))
			want = append(want, false)
		}
	}
	return b, inputs, want
}

func TestBatchMatchAll(t *testing.T) {
	b, inputs, want := batchFixture(t)
	got := b.MatchAll(inputs)
	if len(got) != len(want) {
		t.Fatalf("len %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("input %d (%q): got %v want %v", i, inputs[i], got[i], want[i])
		}
	}
}

func TestBatchCount(t *testing.T) {
	b, inputs, want := batchFixture(t)
	wantCount := 0
	for _, w := range want {
		if w {
			wantCount++
		}
	}
	if got := b.Count(inputs); got != wantCount {
		t.Errorf("Count = %d, want %d", got, wantCount)
	}
}

func TestBatchAnyIndex(t *testing.T) {
	d := dfa.MustCompilePattern("hit")
	b := NewBatch(NewDFASequential(d), 3)
	inputs := make([][]byte, 100)
	for i := range inputs {
		inputs[i] = []byte("miss")
	}
	if got := b.AnyIndex(inputs); got != -1 {
		t.Errorf("AnyIndex on all-miss = %d", got)
	}
	inputs[77] = []byte("hit")
	got := b.AnyIndex(inputs)
	if got != 77 {
		t.Errorf("AnyIndex = %d, want 77", got)
	}
}

func TestBatchEmpty(t *testing.T) {
	d := dfa.MustCompilePattern("a")
	b := NewBatch(NewDFASequential(d), 0)
	if got := b.MatchAll(nil); len(got) != 0 {
		t.Error("MatchAll(nil) should be empty")
	}
	if got := b.AnyIndex(nil); got != -1 {
		t.Error("AnyIndex(nil) should be -1")
	}
}

func TestBatchComposesWithParallelMatcher(t *testing.T) {
	// Batch over the SFA engine: both parallelism axes at once.
	d := dfa.MustCompilePattern("(([02468][13579]){5})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(NewSFAParallel(s, 2, ReduceSequential), 2)
	inputs := [][]byte{
		[]byte("0123456789"),
		[]byte("0123456788"),
		nil,
		[]byte("01234567890123456789"),
	}
	got := b.MatchAll(inputs)
	want := []bool{true, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("input %d: got %v want %v", i, got[i], want[i])
		}
	}
}
