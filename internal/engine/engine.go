// Package engine implements the matching algorithms evaluated by the
// paper:
//
//   - Algorithm 2 — sequential DFA computation (the 1-thread baseline of
//     Figs. 6–10);
//   - Algorithm 3 — the prior-work parallel DFA computation by speculative
//     simulation, whose per-byte overhead is linear in |D|;
//   - Algorithm 5 — the paper's parallel SFA computation, one table
//     lookup per byte per thread, with both reduction strategies
//     (sequential O(p) and parallel tree with the associative ⊙);
//   - the on-the-fly variant of Algorithm 5 over a lazily constructed
//     SFA (Sect. V-A);
//   - an N-SFA engine whose tree reduction is boolean matrix
//     multiplication (Table II);
//   - the bitset NFA simulation used as the semantics oracle.
//
// All engines implement whole-input acceptance over []byte, the semantics
// of the paper's experiments ("1GB string accepted by those automata, and
// every character was read exactly once").
package engine

import "fmt"

// Matcher is the common interface of every engine.
type Matcher interface {
	// Match reports whether the automaton accepts the whole input.
	Match(text []byte) bool
	// Name identifies the engine in benchmark output.
	Name() string
}

// Reduction selects how per-chunk results are combined (Algorithm 3
// line 8 / Algorithm 5 line 6).
type Reduction int

const (
	// ReduceSequential folds the p chunk results left to right by
	// applying each mapping to a single running state: O(p) work for the
	// SFA engine, O(p) for speculative DFA.
	ReduceSequential Reduction = iota
	// ReduceTree folds chunk results pairwise with the associative
	// composition operator ⊙, ⌈log p⌉ levels of ⌊p/2⌋ compositions.
	// Levels run iteratively on the calling goroutine over the match
	// context's reusable ping-pong arena, so the fold allocates nothing
	// in steady state; total work is O(|D|·p) for the SFA and speculative
	// DFA engines and O(|N|³·p) for the N-SFA engine (the seed recursed
	// in parallel goroutines, which only pays off for the N-SFA's heavy
	// matrix products — revisit if that reduction shows up in profiles).
	ReduceTree
)

func (r Reduction) String() string {
	switch r {
	case ReduceSequential:
		return "seq-reduce"
	case ReduceTree:
		return "tree-reduce"
	}
	return fmt.Sprintf("Reduction(%d)", int(r))
}

// span returns the half-open byte range [lo, hi) of chunk i when n bytes
// are split into p nearly equal contiguous spans (chunk i of chunks(n, p),
// computed directly so the hot path never allocates a span slice). Spans
// may be empty when n < p. The split points are arbitrary — Theorem 3
// guarantees any division yields the same result.
func span(n, p, i int) (lo, hi int) {
	base, rem := n/p, n%p
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// chunks materializes all p spans of span(n, p, ·).
func chunks(n, p int) [][2]int {
	if p < 1 {
		p = 1
	}
	out := make([][2]int, p)
	for i := 0; i < p; i++ {
		lo, hi := span(n, p, i)
		out[i] = [2]int{lo, hi}
	}
	return out
}
