package engine

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Pool is a fixed set of long-lived worker goroutines that execute the
// per-chunk work of the parallel engines. The paper's cost model charges
// Algorithm 5 one table lookup per byte per thread; on the seed engines
// every Match additionally paid p goroutine creations plus the scheduler
// wake-ups to place them — a constant-factor overhead that dominates the
// small-input regime of Fig. 10 and dilutes steady-state throughput under
// repeated traffic. A Pool parks its workers on a channel receive, so a
// steady-state Match performs zero goroutine creation: submission is a
// plain channel send of a small by-value request.
//
// Deadlock freedom under nesting (Batch over a parallel matcher runs
// Match *on* pool workers, which then submit their own chunks to the same
// pool) is guaranteed by two rules:
//
//  1. submission never blocks — when the queue is full the submitter runs
//     the chunk inline instead of waiting for a worker;
//  2. a goroutine waiting in Run first helps drain the queue until it
//     observes the queue empty; only then does it block, and at that
//     point every outstanding chunk of its job is already being executed
//     by some goroutine.
//
// Every queued request therefore has a guaranteed executor: an idle
// worker, a helping waiter, or (never having been queued) its submitter.
type Pool struct {
	reqs    chan poolReq
	workers int

	// Scheduling observability. All fields are obs primitives (sharded
	// atomics), updated from the submit and worker loops without locks
	// or allocation — the pooled hot path's 0 allocs/op gate covers
	// them. busyNs/idleNs are worker-side wall time executing chunks vs
	// parked on the queue; queueMax is the high-water queue depth
	// sampled at submission.
	submitted obs.Counter // chunks handed to the queue
	inline    obs.Counter // chunks run on the submitter (queue full)
	helped    obs.Counter // chunks drained by a waiting submitter
	busyNs    obs.Counter
	idleNs    obs.Counter
	queueMax  obs.Gauge
}

// PoolStats is a point-in-time view of a Pool's scheduling counters.
type PoolStats struct {
	Workers   int   `json:"workers"`
	QueueLen  int   `json:"queue_len"`
	QueueCap  int   `json:"queue_cap"`
	QueueMax  int64 `json:"queue_max"`
	Submitted int64 `json:"submitted"`
	Inline    int64 `json:"inline"`
	Helped    int64 `json:"helped"`
	BusyNs    int64 `json:"busy_ns"`
	IdleNs    int64 `json:"idle_ns"`
}

// Stats returns a relaxed snapshot of the pool's scheduling counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		QueueLen:  len(p.reqs),
		QueueCap:  cap(p.reqs),
		QueueMax:  p.queueMax.Load(),
		Submitted: p.submitted.Load(),
		Inline:    p.inline.Load(),
		Helped:    p.helped.Load(),
		BusyNs:    p.busyNs.Load(),
		IdleNs:    p.idleNs.Load(),
	}
}

// chunkTask is the unit of work a Pool executes: runChunk(i) processes
// piece i of the task. Implementations are the per-engine match contexts,
// which are recycled through sync.Pool so steady-state matching does not
// allocate.
type chunkTask interface {
	runChunk(i int)
}

// poolReq is passed by value through the request channel: one interface
// word pair, one pointer, one index — no allocation on submit.
type poolReq struct {
	t chunkTask
	j *jobState
	i int32
}

// jobState tracks completion of one Run call. It is embedded in the
// per-engine match contexts (not allocated per call): pending feeds the
// helper loop's exit check, wg provides the final blocking wait.
type jobState struct {
	pending atomic.Int32
	wg      sync.WaitGroup
}

func (j *jobState) begin(n int) {
	j.pending.Store(int32(n))
	j.wg.Add(n)
}

func (j *jobState) finish() {
	j.pending.Add(-1)
	j.wg.Done()
}

// NewPool starts a pool of `workers` goroutines (GOMAXPROCS when ≤ 0).
// Workers live for the life of the process; the pool has no Close — it is
// meant to be created once and shared, like the DefaultPool.
//
// This is the one place scan-path worker goroutines are born; everything
// else dispatches onto them.
//
//sfa:spawner
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := 4 * workers
	if queue < 64 {
		queue = 64
	}
	p := &Pool{reqs: make(chan poolReq, queue), workers: workers}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker() {
	// Label the goroutine once so CPU profiles attribute worker samples
	// to the pool (request-scoped tenant labels are layered on top by
	// the serve handler via pprof.Do).
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("sfa_pool", "worker")))
	last := time.Now()
	for r := range p.reqs {
		start := time.Now()
		p.idleNs.Add(start.Sub(last).Nanoseconds())
		r.t.runChunk(int(r.i))
		r.j.finish()
		last = time.Now()
		p.busyNs.Add(last.Sub(start).Nanoseconds())
	}
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the process-wide pool shared by every engine that
// was not given an explicit pool via WithPool. It is created on first use
// with GOMAXPROCS workers.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// funcTask adapts a plain closure to the chunkTask interface so callers
// outside the match hot path (e.g. multi's concurrent shard builds) can
// fan work out over the pool without implementing the unexported
// interface themselves.
type funcTask struct{ f func(int) }

func (t funcTask) runChunk(i int) { t.f(i) }

// Map executes f(i) for every i in [0, n) on the pool and returns when
// all calls have completed. Unlike the match path it allocates (one task
// box and one jobState per call) — it is the construction-time fan-out,
// not a hot path. f must be safe for concurrent invocation.
func (p *Pool) Map(n int, f func(int)) {
	var j jobState
	p.Run(funcTask{f: f}, &j, n)
}

// Run executes t.runChunk(i) for every i in [0, n) and returns when all
// have completed. Chunk 0 always runs on the calling goroutine (the
// caller would otherwise just block); chunks the queue cannot absorb run
// inline as well. While waiting for stragglers the caller helps drain the
// queue, which keeps nested Run calls live (see the type comment).
//sfa:noalloc
func (p *Pool) Run(t chunkTask, j *jobState, n int) {
	if n <= 1 {
		if n == 1 {
			t.runChunk(0)
		}
		return
	}
	j.begin(n - 1)
	for i := 1; i < n; i++ {
		select {
		case p.reqs <- poolReq{t: t, j: j, i: int32(i)}:
			p.submitted.Inc()
		default:
			t.runChunk(i)
			j.finish()
			p.inline.Inc()
		}
	}
	p.queueMax.Max(int64(len(p.reqs))) // relaxed high-water sample
	t.runChunk(0)
	for j.pending.Load() > 0 {
		select {
		case r := <-p.reqs:
			r.t.runChunk(int(r.i))
			r.j.finish()
			p.helped.Inc()
		default:
			// Queue observed empty: every chunk of this job was popped
			// (FIFO) and is finished or running on some goroutine now, so
			// the wait below cannot deadlock.
			j.wg.Wait()
			return
		}
	}
	j.wg.Wait() // counter already zero; resynchronizes the WaitGroup
}
