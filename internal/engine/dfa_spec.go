package engine

import (
	"fmt"
	"sync"

	"repro/internal/dfa"
)

// DFASpeculative is the prior-work baseline, Algorithm 3: the input is
// split across p threads and every thread simulates the transitions of
// *all* DFA states over its chunk, producing a mapping T_i: Q → Q. The
// per-byte cost is therefore Θ(|D|), which is exactly the overhead SFA
// construction moves to compile time; Figs. 6–8 are the comparison.
type DFASpeculative struct {
	d       *dfa.DFA
	tab     []int32
	threads int
	red     Reduction
}

// NewDFASpeculative compiles the matcher for a fixed thread count and
// reduction strategy.
func NewDFASpeculative(d *dfa.DFA, threads int, red Reduction) *DFASpeculative {
	if threads < 1 {
		threads = 1
	}
	return &DFASpeculative{d: d, tab: d.Table256(), threads: threads, red: red}
}

// Match implements Algorithm 3, including per-call goroutine creation so
// that small-input overheads (Fig. 10's subject) are not hidden by a
// worker pool the paper's pthread implementation did not have.
func (m *DFASpeculative) Match(text []byte) bool {
	n := m.d.NumStates
	p := m.threads
	spans := chunks(len(text), p)
	maps := make([][]int32, p)

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			maps[i] = m.simulateChunk(text[spans[i][0]:spans[i][1]])
		}(i)
	}
	wg.Wait()

	var final int32
	switch m.red {
	case ReduceSequential:
		// Lines 9–11 (right column): thread the single start state
		// through the p mappings.
		q := m.d.Start
		for i := 0; i < p; i++ {
			q = maps[i][q]
		}
		final = q
	case ReduceTree:
		// Line 9 (left column): associative fold T1 ⊙ T2 ⊙ … ⊙ Tp.
		t := treeReduce32(maps, n)
		final = t[m.d.Start]
	}
	return m.d.Accept[final]
}

// simulateChunk computes T[q] = destination of q over the chunk, for all q
// (lines 2–7 of Algorithm 3).
func (m *DFASpeculative) simulateChunk(chunk []byte) []int32 {
	n := m.d.NumStates
	tab := m.tab
	t := make([]int32, n)
	for q := range t {
		t[q] = int32(q)
	}
	for _, b := range chunk {
		base := int(b)
		for q := 0; q < n; q++ {
			t[q] = tab[int(t[q])<<8|base]
		}
	}
	return t
}

// treeReduce32 folds the mappings pairwise with ⊙ (h = f then g,
// h[q] = g[f[q]]), recursing in parallel while halves are large.
func treeReduce32(maps [][]int32, n int) []int32 {
	switch len(maps) {
	case 1:
		return maps[0]
	case 2:
		return compose32(maps[0], maps[1], n)
	}
	mid := len(maps) / 2
	var left, right []int32
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		left = treeReduce32(maps[:mid], n)
	}()
	right = treeReduce32(maps[mid:], n)
	wg.Wait()
	return compose32(left, right, n)
}

func compose32(f, g []int32, n int) []int32 {
	h := make([]int32, n)
	for q := 0; q < n; q++ {
		h[q] = g[f[q]]
	}
	return h
}

// Name implements Matcher.
func (m *DFASpeculative) Name() string {
	return fmt.Sprintf("dfa-spec-p%d-%s", m.threads, m.red)
}
