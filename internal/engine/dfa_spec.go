package engine

import (
	"fmt"
	"sync"

	"repro/internal/dfa"
)

// DFASpeculative is the prior-work baseline, Algorithm 3: the input is
// split across p threads and every thread simulates the transitions of
// *all* DFA states over its chunk, producing a mapping T_i: Q → Q. The
// per-byte cost is therefore Θ(|D|), which is exactly the overhead SFA
// construction moves to compile time; Figs. 6–8 are the comparison.
//
// Like SFAParallel it defaults to the persistent worker pool with pooled
// per-match scratch (the p chunk mappings and the reduction buffers);
// WithSpawn restores per-call goroutine creation.
type DFASpeculative struct {
	d       *dfa.DFA
	threads int
	red     Reduction
	layout  TableLayout
	tab     tables
	spawn   bool
	pool    *Pool
	ctxs    sync.Pool // of *specCtx
}

// NewDFASpeculative compiles the matcher for a fixed thread count and
// reduction strategy.
func NewDFASpeculative(d *dfa.DFA, threads int, red Reduction, opts ...Option) *DFASpeculative {
	if threads < 1 {
		threads = 1
	}
	o := buildOpts(opts)
	m := &DFASpeculative{
		d:       d,
		threads: threads,
		red:     red,
		layout:  resolveLayout(o.layout, d.NumStates),
		spawn:   o.spawn,
		pool:    o.pool,
	}
	switch m.layout {
	case LayoutU8:
		m.tab.u8 = table256U8DFA(d)
	case LayoutU16:
		m.tab.u16 = table256U16DFA(d)
	case LayoutI32:
		m.tab.i32 = d.Table256()
	}
	m.ctxs.New = func() any {
		return &specCtx{m: m, maps: make([]int32, m.threads*d.NumStates)}
	}
	return m
}

func table256U8DFA(d *dfa.DFA) []uint8 {
	t := make([]uint8, d.NumStates*256)
	for q := int32(0); q < int32(d.NumStates); q++ {
		for b := 0; b < 256; b++ {
			t[int(q)<<8|b] = uint8(d.NextByte(q, byte(b)))
		}
	}
	return t
}

func table256U16DFA(d *dfa.DFA) []uint16 {
	t := make([]uint16, d.NumStates*256)
	for q := int32(0); q < int32(d.NumStates); q++ {
		for b := 0; b < 256; b++ {
			t[int(q)<<8|b] = uint16(d.NextByte(q, byte(b)))
		}
	}
	return t
}

// specCtx is the per-Match scratch: the p chunk mappings (flat, p × |D|)
// and the reduction arena.
type specCtx struct {
	job  jobState
	m    *DFASpeculative
	text []byte
	maps []int32
	ar   reduceArena32
}

func (c *specCtx) runChunk(i int) {
	n := c.m.d.NumStates
	lo, hi := span(len(c.text), c.m.threads, i)
	c.m.simulateChunkInto(c.maps[i*n:(i+1)*n], c.text[lo:hi])
}

// Match implements Algorithm 3.
func (m *DFASpeculative) Match(text []byte) bool {
	p := m.threads
	c := m.ctxs.Get().(*specCtx)
	c.text = text
	dispatchChunks(c, &c.job, m.pool, m.spawn, p)
	ok := m.reduce(c)
	c.text = nil
	m.ctxs.Put(c)
	return ok
}

func (m *DFASpeculative) reduce(c *specCtx) bool {
	n := m.d.NumStates
	var final int32
	switch m.red {
	case ReduceSequential:
		// Lines 9–11 (right column): thread the single start state
		// through the p mappings.
		q := m.d.Start
		for i := 0; i < m.threads; i++ {
			q = c.maps[i*n+int(q)]
		}
		final = q
	default:
		// Line 9 (left column): associative fold T1 ⊙ T2 ⊙ … ⊙ Tp.
		vecs := c.ar.vecs(m.threads)
		for i := range vecs {
			vecs[i] = c.maps[i*n : (i+1)*n]
		}
		t := treeReduce32(vecs, n, &c.ar)
		final = t[m.d.Start]
	}
	return m.d.Accept[final]
}

// simulateChunkInto computes T[q] = destination of q over the chunk, for
// all q (lines 2–7 of Algorithm 3), through the resolved table layout.
func (m *DFASpeculative) simulateChunkInto(t []int32, chunk []byte) {
	n := m.d.NumStates
	for q := range t {
		t[q] = int32(q)
	}
	switch m.layout {
	case LayoutU8:
		tab := m.tab.u8
		for _, b := range chunk {
			base := uint32(b)
			for q := 0; q < n; q++ {
				t[q] = int32(tab[uint32(t[q])<<8|base])
			}
		}
	case LayoutU16:
		tab := m.tab.u16
		for _, b := range chunk {
			base := uint32(b)
			for q := 0; q < n; q++ {
				t[q] = int32(tab[uint32(t[q])<<8|base])
			}
		}
	case LayoutClass:
		d := m.d
		for _, b := range chunk {
			for q := 0; q < n; q++ {
				t[q] = d.NextByte(t[q], b)
			}
		}
	default:
		tab := m.tab.i32
		for _, b := range chunk {
			base := int(b)
			for q := 0; q < n; q++ {
				t[q] = tab[int(t[q])<<8|base]
			}
		}
	}
}

// simulateChunk is simulateChunkInto with a fresh mapping (tests and the
// paper-semantics invariants use it).
func (m *DFASpeculative) simulateChunk(chunk []byte) []int32 {
	t := make([]int32, m.d.NumStates)
	m.simulateChunkInto(t, chunk)
	return t
}

// Name implements Matcher.
func (m *DFASpeculative) Name() string {
	mode := ""
	if m.spawn {
		mode = "-spawn"
	}
	return fmt.Sprintf("dfa-spec-p%d-%s-%s%s", m.threads, m.red, m.layout, mode)
}
