package engine

import (
	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// DFASequential is the paper's Algorithm 2: one state, one flat-table
// lookup per input byte. The table layout is 256 int32 entries per state
// (1 KB), as in the paper's implementation.
type DFASequential struct {
	d   *dfa.DFA
	tab []int32
}

// NewDFASequential compiles the matcher (materializing the 256-wide
// table; the class-indexed table stays available through d).
func NewDFASequential(d *dfa.DFA) *DFASequential {
	return &DFASequential{d: d, tab: d.Table256()}
}

// Match implements Algorithm 2.
func (m *DFASequential) Match(text []byte) bool {
	q := m.d.Start
	tab := m.tab
	for _, b := range text {
		q = tab[int(q)<<8|int(b)]
	}
	return m.d.Accept[q]
}

// Final returns the destination state (used by tests).
func (m *DFASequential) Final(text []byte) int32 {
	q := m.d.Start
	for _, b := range text {
		q = m.tab[int(q)<<8|int(b)]
	}
	return q
}

// Name implements Matcher.
func (m *DFASequential) Name() string { return "dfa-seq" }

// NFASim wraps the bitset NFA simulation (Table II row "NFA") behind the
// Matcher interface; it is the oracle the property tests compare engines
// against.
type NFASim struct {
	sim *nfa.Simulator
}

// NewNFASim compiles an NFA simulator for the pattern tree.
func NewNFASim(root *syntax.Node) (*NFASim, error) {
	a, err := nfa.Glushkov(root)
	if err != nil {
		return nil, err
	}
	return &NFASim{sim: nfa.NewSimulator(a)}, nil
}

// Match implements Matcher.
func (m *NFASim) Match(text []byte) bool { return m.sim.Match(text) }

// Name implements Matcher.
func (m *NFASim) Name() string { return "nfa-sim" }
