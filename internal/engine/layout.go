package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// TableLayout selects the physical transition-table layout an engine
// matches through. The per-byte work is identical in all layouts (one
// load, as the paper's cost model requires); what changes is the resident
// bytes per state and therefore how much of the automaton each cache
// level holds — the axis Fig. 8 studies.
type TableLayout int

const (
	// LayoutAuto picks the narrowest 256-wide entry width that can hold
	// every state id: u8 for ≤ 256 states, u16 for ≤ 65 536, i32 beyond.
	LayoutAuto TableLayout = iota
	// LayoutU8 is the 256 B-per-state uint8 table.
	LayoutU8
	// LayoutU16 is the 512 B-per-state uint16 table.
	LayoutU16
	// LayoutI32 is the paper's 1 KB-per-state int32 table (the seed
	// engine's only wide layout).
	LayoutI32
	// LayoutClass matches through the byte-class-compressed table:
	// smallest footprint, one extra indirection per byte (ablation A2).
	LayoutClass
)

func (l TableLayout) String() string {
	switch l {
	case LayoutAuto:
		return "auto"
	case LayoutU8:
		return "u8"
	case LayoutU16:
		return "u16"
	case LayoutI32:
		return "i32"
	case LayoutClass:
		return "class"
	}
	return fmt.Sprintf("TableLayout(%d)", int(l))
}

// ParseLayout converts a -layout flag value into a TableLayout.
func ParseLayout(s string) (TableLayout, error) {
	switch s {
	case "auto", "":
		return LayoutAuto, nil
	case "u8":
		return LayoutU8, nil
	case "u16":
		return LayoutU16, nil
	case "i32", "tab256":
		return LayoutI32, nil
	case "class", "tabclass":
		return LayoutClass, nil
	}
	return LayoutAuto, fmt.Errorf("engine: unknown table layout %q (want auto|u8|u16|i32|class)", s)
}

// resolveLayout maps LayoutAuto to the narrowest width that fits n states
// and widens an explicit request that cannot hold them.
func resolveLayout(l TableLayout, n int) TableLayout {
	switch l {
	case LayoutClass, LayoutI32:
		return l
	case LayoutU8:
		if core.FitsU8(n) {
			return LayoutU8
		}
	case LayoutU16:
		// widened below if needed
	default: // LayoutAuto
		if core.FitsU8(n) {
			return LayoutU8
		}
	}
	if core.FitsU16(n) {
		return LayoutU16
	}
	return LayoutI32
}

// engineOpts collects the construction options shared by the parallel
// engines.
type engineOpts struct {
	layout  TableLayout
	spawn   bool
	pool    *Pool
	buildID uint64
	stats   *obs.ScanStats
}

// Option configures a parallel engine at construction.
type Option func(*engineOpts)

// WithLayout selects the transition-table layout (default LayoutAuto).
func WithLayout(l TableLayout) Option {
	return func(o *engineOpts) { o.layout = l }
}

// WithClassTable matches through the byte-class-compressed table instead
// of a 256-wide layout (ablation A2; changes Fig. 8's cache story).
func WithClassTable() Option { return WithLayout(LayoutClass) }

// WithSpawn restores the seed behaviour of creating fresh goroutines on
// every Match. The paper's Fig. 10 measurement explicitly includes thread
// creation ("the execution times of the parallel computation includes the
// creation of threads and the reduction"), so the spawning path stays
// available for that reproduction; everything else should prefer the
// default pooled path.
func WithSpawn() Option { return func(o *engineOpts) { o.spawn = true } }

// WithPool runs matches on the given persistent pool instead of the
// process-wide DefaultPool.
func WithPool(p *Pool) Option { return func(o *engineOpts) { o.pool = p } }

// WithBuildID overrides the engine's construction id (normally a small
// process-sequential number issued by buildSeq). Snapshot warm loads use
// it to adopt the persisted content-derived id — which always carries the
// top bit, so adopted ids can never collide with sequential ones — making
// "this automaton was decoded from disk, not rebuilt" observable through
// ShardInfo.BuildID across process restarts. 0 keeps the sequential id.
func WithBuildID(id uint64) Option { return func(o *engineOpts) { o.buildID = id } }

// WithScanStats turns on the eager engine's streaming instrumentation:
// each ComposeChunk records the chunk-boundary DFA state into a
// frequency table (ShardInfo.HotStates — the concentration measurement
// Ko-style speculative chunk matching needs). Chunk latency and size
// aggregates are recorded by the caller that owns the chunking (multi's
// SetStream), not here, so they count stream writes rather than
// per-shard engine visits. Recording uses only lock-free obs
// primitives, so the streaming hot path stays at 0 allocs/op with
// stats enabled (benchjson-gated). Nil disables instrumentation (the
// default).
func WithScanStats(st *obs.ScanStats) Option {
	return func(o *engineOpts) { o.stats = st }
}

func buildOpts(opts []Option) engineOpts {
	var o engineOpts
	for _, f := range opts {
		f(&o)
	}
	if o.pool == nil {
		o.pool = DefaultPool()
	}
	return o
}

// The specialized chunk walkers below are the hot loops of Algorithm 5
// (and of Algorithm 3's per-state simulation): one load per byte, with
// the byte loop unrolled 4× so that loop control and bounds checks
// amortize over four lookups between iterations of the serial
// load-to-load chain.

func run256U8(tab []uint8, start int32, text []byte) int32 {
	q := uint32(uint8(start))
	i := 0
	for ; i+4 <= len(text); i += 4 {
		q = uint32(tab[q<<8|uint32(text[i])])
		q = uint32(tab[q<<8|uint32(text[i+1])])
		q = uint32(tab[q<<8|uint32(text[i+2])])
		q = uint32(tab[q<<8|uint32(text[i+3])])
	}
	for ; i < len(text); i++ {
		q = uint32(tab[q<<8|uint32(text[i])])
	}
	return int32(q)
}

func run256U16(tab []uint16, start int32, text []byte) int32 {
	q := uint32(uint16(start))
	i := 0
	for ; i+4 <= len(text); i += 4 {
		q = uint32(tab[q<<8|uint32(text[i])])
		q = uint32(tab[q<<8|uint32(text[i+1])])
		q = uint32(tab[q<<8|uint32(text[i+2])])
		q = uint32(tab[q<<8|uint32(text[i+3])])
	}
	for ; i < len(text); i++ {
		q = uint32(tab[q<<8|uint32(text[i])])
	}
	return int32(q)
}

func run256I32(tab []int32, start int32, text []byte) int32 {
	q := uint32(start)
	i := 0
	for ; i+4 <= len(text); i += 4 {
		q = uint32(tab[q<<8|uint32(text[i])])
		q = uint32(tab[q<<8|uint32(text[i+1])])
		q = uint32(tab[q<<8|uint32(text[i+2])])
		q = uint32(tab[q<<8|uint32(text[i+3])])
	}
	for ; i < len(text); i++ {
		q = uint32(tab[q<<8|uint32(text[i])])
	}
	return int32(q)
}

// tables bundles the width variants so engines hold exactly one non-nil
// table for their resolved layout (nil for LayoutClass).
type tables struct {
	u8  []uint8
	u16 []uint16
	i32 []int32
}

// run walks a chunk through whichever table is materialized.
func (t *tables) run(layout TableLayout, start int32, chunk []byte) int32 {
	switch layout {
	case LayoutU8:
		return run256U8(t.u8, start, chunk)
	case LayoutU16:
		return run256U16(t.u16, start, chunk)
	default:
		return run256I32(t.i32, start, chunk)
	}
}

// memoryBytes reports the resident size of the materialized table.
func (t *tables) memoryBytes() int64 {
	return int64(len(t.u8)) + int64(len(t.u16))*2 + int64(len(t.i32))*4
}
