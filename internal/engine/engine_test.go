package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// allEngines builds one of every engine family for the pattern, at the
// given thread count, both reductions where applicable.
func allEngines(t *testing.T, pattern string, threads int) []Matcher {
	t.Helper()
	node := syntax.MustParse(pattern, 0)
	d := dfa.MustCompilePattern(pattern)
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := nfa.Glushkov(node)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := core.BuildNSFA(a, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := NewNFASim(node)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewSFALazy(d, threads, 0)
	if err != nil {
		t.Fatal(err)
	}
	return []Matcher{
		oracle,
		NewDFASequential(d),
		NewDFASpeculative(d, threads, ReduceSequential),
		NewDFASpeculative(d, threads, ReduceTree),
		NewDFASpeculative(d, threads, ReduceSequential, WithSpawn()),
		NewSFAParallel(s, threads, ReduceSequential),
		NewSFAParallel(s, threads, ReduceTree),
		NewSFAParallel(s, threads, ReduceSequential, WithClassTable()),
		NewSFAParallel(s, threads, ReduceSequential, WithLayout(LayoutI32), WithSpawn()),
		NewSFAParallel(s, threads, ReduceTree, WithLayout(LayoutU16)),
		lazy,
		NewNSFAParallel(ns, threads, ReduceSequential),
		NewNSFAParallel(ns, threads, ReduceTree),
		NewNSFAParallel(ns, threads, ReduceTree, WithClassTable()),
	}
}

func TestAllEnginesAgreeKnownCases(t *testing.T) {
	cases := []struct {
		pattern string
		inputs  []string
	}{
		{"(ab)*", []string{"", "ab", "abab", "a", "ba", "ababab", "abba"}},
		{"([0-4]{2}[5-9]{2})*", []string{"", "0055", "00550156", "0505", "005"}},
		{"(([02468][13579]){5})*", []string{"", "0123456789", "0123456780"}},
		{"(a|bc)*d?", []string{"", "a", "bcd", "abcabc", "dd", "cb"}},
	}
	for _, c := range cases {
		for _, threads := range []int{1, 2, 3, 4, 7} {
			engines := allEngines(t, c.pattern, threads)
			for _, input := range c.inputs {
				want := engines[0].Match([]byte(input))
				for _, e := range engines[1:] {
					if got := e.Match([]byte(input)); got != want {
						t.Errorf("pattern %q input %q: %s = %v, oracle = %v",
							c.pattern, input, e.Name(), got, want)
					}
				}
			}
		}
	}
}

func TestAllEnginesAgreeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	patterns := []string{
		"(ab)*",
		"(a|b)*abb",
		"(a|bc)*",
		"a+(b|c)*a?",
		"([ab]{3}c)*",
	}
	for _, pat := range patterns {
		engines := allEngines(t, pat, 3)
		for i := 0; i < 60; i++ {
			w := make([]byte, r.Intn(50))
			for j := range w {
				w[j] = byte('a' + r.Intn(3))
			}
			want := engines[0].Match(w)
			for _, e := range engines[1:] {
				if got := e.Match(w); got != want {
					t.Fatalf("pattern %q input %q: %s = %v, oracle = %v",
						pat, w, e.Name(), got, want)
				}
			}
		}
	}
}

func TestEnginesOnAcceptedMegabyte(t *testing.T) {
	// A larger run over an accepted input, exercising multi-chunk paths.
	pattern := "([0-4]{5}[5-9]{5})*"
	text := bytes.Repeat([]byte("0123455678"), 10_000) // 100 KB accepted
	engines := allEngines(t, pattern, 4)
	for _, e := range engines {
		if !e.Match(text) {
			t.Errorf("%s rejected an accepted input", e.Name())
		}
	}
	// Corrupt one byte near the middle: all engines must reject.
	text[50_003] = 'x'
	for _, e := range engines {
		if e.Match(text) {
			t.Errorf("%s accepted a corrupted input", e.Name())
		}
	}
}

func TestInputShorterThanThreads(t *testing.T) {
	engines := allEngines(t, "(ab)*", 8)
	for _, e := range engines {
		if !e.Match([]byte("ab")) {
			t.Errorf("%s rejected 'ab' with 8 threads", e.Name())
		}
		if !e.Match(nil) {
			t.Errorf("%s rejected empty input", e.Name())
		}
		if e.Match([]byte("a")) {
			t.Errorf("%s accepted 'a'", e.Name())
		}
	}
}

func TestChunksCoverAndPartition(t *testing.T) {
	for n := 0; n < 40; n++ {
		for p := 1; p <= 9; p++ {
			spans := chunks(n, p)
			if len(spans) != p {
				t.Fatalf("chunks(%d,%d) returned %d spans", n, p, len(spans))
			}
			off := 0
			for _, s := range spans {
				if s[0] != off || s[1] < s[0] {
					t.Fatalf("chunks(%d,%d) broken: %v", n, p, spans)
				}
				off = s[1]
			}
			if off != n {
				t.Fatalf("chunks(%d,%d) does not cover: %v", n, p, spans)
			}
			// Balance: sizes differ by at most 1.
			min, max := n, 0
			for _, s := range spans {
				size := s[1] - s[0]
				if size < min {
					min = size
				}
				if size > max {
					max = size
				}
			}
			if max-min > 1 {
				t.Fatalf("chunks(%d,%d) unbalanced: %v", n, p, spans)
			}
		}
	}
}

func TestSpeculativeMatchesPaperSemantics(t *testing.T) {
	// Algorithm 3 invariant: the chunk mapping applied to any state equals
	// a direct DFA run from that state.
	d := dfa.MustCompilePattern("(([02468][13579]){5})*")
	m := NewDFASpeculative(d, 1, ReduceSequential)
	chunk := []byte("0123")
	tm := m.simulateChunk(chunk)
	for q := int32(0); q < int32(d.NumStates); q++ {
		if want := d.Run(q, chunk); tm[q] != want {
			t.Fatalf("T[%d] = %d, direct run = %d", q, tm[q], want)
		}
	}
}

func TestLazyEngineErrSticky(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{5}[5-9]{5})*")
	m, err := NewSFALazy(d, 2, 3) // absurdly low cap
	if err != nil {
		t.Fatal(err)
	}
	text := bytes.Repeat([]byte("0123456789"), 10)
	_ = m.Match(text)
	if m.Err() == nil {
		t.Fatal("expected sticky state-cap error")
	}
}

func TestSFAParallelManyThreadsConsistency(t *testing.T) {
	// Theorem 3 at engine level: any thread count yields the same verdict.
	d := dfa.MustCompilePattern("([0-4]{3}[5-9]{3})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 30; trial++ {
		w := make([]byte, r.Intn(200))
		for j := range w {
			w[j] = byte('0' + r.Intn(10))
		}
		want := NewSFAParallel(s, 1, ReduceSequential).Match(w)
		for p := 2; p <= 16; p *= 2 {
			for _, red := range []Reduction{ReduceSequential, ReduceTree} {
				if got := NewSFAParallel(s, p, red).Match(w); got != want {
					t.Fatalf("p=%d %v: got %v want %v on %q", p, red, got, want, w)
				}
			}
		}
	}
}

func TestEngineNames(t *testing.T) {
	engines := allEngines(t, "(ab)*", 2)
	seen := map[string]bool{}
	for _, e := range engines {
		name := e.Name()
		if name == "" {
			t.Error("empty engine name")
		}
		if seen[name] {
			t.Errorf("duplicate engine name %q", name)
		}
		seen[name] = true
	}
}
