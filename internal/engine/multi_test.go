package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/textgen"
)

// multiFixture builds a two-rule combined matcher by hand: the DFA of
// ([0-4]{2}[5-9]{2})* with bit 0 on its accept states plus bit 1 on the
// start state only (a distinct mask so the two verdicts differ).
func multiFixture(t testing.TB, threads int, opts ...Option) (*MultiSFA, *dfa.DFA) {
	t.Helper()
	d := dfa.MustCompilePattern(`([0-4]{2}[5-9]{2})*`)
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	masks := make([]uint64, d.NumStates)
	for q := 0; q < d.NumStates; q++ {
		if d.Accept[q] {
			masks[q] |= 1
		}
	}
	masks[d.Start] |= 2
	return NewMultiSFA(s, masks, 1, threads, opts...), d
}

func TestMultiSFAMaskAgreesAcrossThreadsAndLayouts(t *testing.T) {
	inputs := [][]byte{
		nil, []byte("05"), []byte("0459"), []byte("04590459"), []byte("0455"),
		textgen.RnText(2, 4096, 3), textgen.RnText(2, 4097, 3),
	}
	ref, d := multiFixture(t, 1)
	dst := make([]uint64, 1)
	for _, in := range inputs {
		want := ref.MatchMask(in, dst)[0]
		if accepts := d.Accepts(in); accepts != (want&1 != 0) {
			t.Fatalf("input len %d: bit 0 %v, DFA accepts %v", len(in), want&1 != 0, accepts)
		}
		for _, threads := range []int{2, 3, 8} {
			for _, l := range []TableLayout{LayoutAuto, LayoutU16, LayoutI32, LayoutClass} {
				m, _ := multiFixture(t, threads, WithLayout(l))
				got := m.MatchMask(in, make([]uint64, 1))[0]
				if got != want {
					t.Fatalf("input len %d p=%d layout=%s: mask %x, want %x",
						len(in), threads, l, got, want)
				}
				if m.Match(in) != (want != 0) {
					t.Fatalf("input len %d p=%d: Match disagrees with mask", len(in), threads)
				}
			}
		}
	}
}

func TestMultiSFAMatchMaskZeroAllocSteadyState(t *testing.T) {
	m, _ := multiFixture(t, 4)
	text := textgen.RnText(2, 1<<16, 1)
	dst := make([]uint64, 1)
	m.MatchMask(text, dst) // warm the context pool
	avg := testing.AllocsPerRun(50, func() { m.MatchMask(text, dst) })
	if avg != 0 {
		t.Fatalf("MatchMask allocates %.1f/op in steady state, want 0", avg)
	}
}

func TestMultiSFASpawnMode(t *testing.T) {
	ref, _ := multiFixture(t, 4)
	m, _ := multiFixture(t, 4, WithSpawn())
	text := textgen.RnText(2, 1<<14, 2)
	if got, want := m.MatchMask(text, make([]uint64, 1))[0], ref.MatchMask(text, make([]uint64, 1))[0]; got != want {
		t.Fatalf("spawn mask %x != pooled mask %x", got, want)
	}
}
