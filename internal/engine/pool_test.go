package engine

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dfa"
)

// countTask records which chunk indices ran.
type countTask struct {
	job  jobState
	hits []atomic.Int32
}

func (t *countTask) runChunk(i int) { t.hits[i].Add(1) }

func TestPoolRunsEveryChunkExactlyOnce(t *testing.T) {
	p := NewPool(3)
	for _, n := range []int{0, 1, 2, 3, 7, 64, 200} {
		task := &countTask{hits: make([]atomic.Int32, max(n, 1))}
		p.Run(task, &task.job, n)
		for i := 0; i < n; i++ {
			if got := task.hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: chunk %d ran %d times", n, i, got)
			}
		}
	}
}

func TestPoolReusedAcrossRuns(t *testing.T) {
	p := NewPool(2)
	task := &countTask{hits: make([]atomic.Int32, 8)}
	for r := 0; r < 50; r++ {
		p.Run(task, &task.job, 8)
	}
	for i := range task.hits {
		if got := task.hits[i].Load(); got != 50 {
			t.Fatalf("chunk %d ran %d times, want 50", i, got)
		}
	}
}

// TestPoolNestedBatchNoDeadlock saturates a tiny pool with Batch tasks
// that each run a pooled parallel matcher on the same pool — the nesting
// pattern that deadlocks a naive fixed-worker design. The helping waiter
// protocol must keep it live.
func TestPoolNestedBatchNoDeadlock(t *testing.T) {
	pool := NewPool(2) // fewer workers than outstanding jobs
	d := dfa.MustCompilePattern("(ab)*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewSFAParallel(s, 8, ReduceTree, WithPool(pool))
	b := NewBatch(inner, 16, WithPool(pool))

	inputs := make([][]byte, 300)
	for i := range inputs {
		inputs[i] = bytes.Repeat([]byte("ab"), i)
	}
	done := make(chan []bool, 1)
	go func() { done <- b.MatchAll(inputs) }()
	select {
	case got := <-done:
		for i, ok := range got {
			if !ok {
				t.Fatalf("input %d rejected", i)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested batch over shared pool deadlocked")
	}
}

// TestConcurrentMatchSharedEngine hammers one pooled engine from many
// goroutines; run with -race this is the concurrent-Match guarantee of
// the sync.Pool match contexts.
func TestConcurrentMatchSharedEngine(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{2}[5-9]{2})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, red := range []Reduction{ReduceSequential, ReduceTree} {
		m := NewSFAParallel(s, 4, red)
		yes := bytes.Repeat([]byte("0055"), 1000)
		no := append(bytes.Repeat([]byte("0055"), 1000), 'x')
		var wg sync.WaitGroup
		errs := make(chan string, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for k := 0; k < 50; k++ {
					if !m.Match(yes) {
						errs <- "rejected accepted input"
						return
					}
					if m.Match(no) {
						errs <- "accepted rejected input"
						return
					}
				}
			}(g)
		}
		wg.Wait()
		select {
		case e := <-errs:
			t.Fatalf("%v: %s", red, e)
		default:
		}
	}
}

// TestPooledMatchZeroAllocSteadyState is the hot-path guardrail: after
// warm-up, a pooled Match must not allocate. The bound is < 0.5 rather
// than exactly 0 only to tolerate a GC clearing the context pool
// mid-measurement.
func TestPooledMatchZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; allocs/op is only meaningful without -race")
	}
	d := dfa.MustCompilePattern("([0-4]{2}[5-9]{2})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := bytes.Repeat([]byte("0055"), 4096)
	for _, red := range []Reduction{ReduceSequential, ReduceTree} {
		m := NewSFAParallel(s, 4, red)
		for i := 0; i < 10; i++ { // warm the context pool and the worker pool
			m.Match(text)
		}
		avg := testing.AllocsPerRun(100, func() { m.Match(text) })
		if avg >= 0.5 {
			t.Errorf("%v: pooled Match allocates %.2f allocs/op in steady state", red, avg)
		}
	}
	// The speculative engine's pooled path has the same guarantee.
	spec := NewDFASpeculative(d, 4, ReduceTree)
	for i := 0; i < 10; i++ {
		spec.Match(text)
	}
	if avg := testing.AllocsPerRun(100, func() { spec.Match(text) }); avg >= 0.5 {
		t.Errorf("spec: pooled Match allocates %.2f allocs/op in steady state", avg)
	}
}

func TestSpanMatchesChunks(t *testing.T) {
	for n := 0; n < 100; n++ {
		for p := 1; p <= 12; p++ {
			spans := chunks(n, p)
			for i := 0; i < p; i++ {
				lo, hi := span(n, p, i)
				if lo != spans[i][0] || hi != spans[i][1] {
					t.Fatalf("span(%d,%d,%d) = [%d,%d), chunks = %v", n, p, i, lo, hi, spans[i])
				}
			}
		}
	}
}
