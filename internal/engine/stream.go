package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Streaming entry points — the incremental protocol behind sfa.Stream and
// sfa.RuleStream.
//
// The SFA algebra makes online matching a first-class operation: a chunk
// scanned from the identity yields a transformation of the DFA's state
// set, and Lemma 1's associative ⊙ folds it into a carried mapping of
// fixed size |D| no matter how much input has gone before. The carried
// mapping IS the stream state; extracting a verdict is one vector index
// (the DFA state the whole prefix reaches) plus an accept-bit or
// bitmask-row read.
//
// ComposeChunk is the per-chunk hot path. It reuses the engine's pooled
// match context — the chunk is split across the engine's p threads, each
// runs on the persistent worker pool exactly as a one-shot Match would —
// and folds the p chunk mappings into the caller's carried mapping with
// ComposeVec. The caller owns the two ping-pong vectors, so a
// steady-state ComposeChunk performs no heap allocation.

// streamSequentialMax is the chunk size below which ComposeChunk runs the
// chunk on the calling goroutine: splitting a small write across threads
// costs more in submission and reduction than the scan itself.
const streamSequentialMax = 4096

// buildSeq issues process-unique engine build ids (see BuildID).
var buildSeq atomic.Uint64

// composeLocals folds p chunk-final SFA states into the carried mapping:
// cur ← cur ⊙ f₁ ⊙ … ⊙ fp, ping-ponging between cur and tmp. Returns the
// slices in (current, scratch) order.
//sfa:noalloc
//sfa:borrowed locals
func composeLocals(s *core.DSFA, cur, tmp []int16, locals []int32) ([]int16, []int16) {
	for _, f := range locals {
		core.ComposeVec(tmp, cur, s.Map(f))
		cur, tmp = tmp, cur
	}
	return cur, tmp
}

// dispatchChunks fans a context's p chunks out and returns when all have
// completed: on the persistent pool by default, on fresh goroutines in
// spawn mode (thread creation as part of the call, the paper's Fig. 10
// measurement). Shared by Match and ComposeChunk on every parallel
// engine so the dispatch protocol cannot drift between them.
//
// The raw go statements below exist only for the deliberate spawn-mode
// experiment; pooled dispatch is the default.
//
//sfa:spawner
func dispatchChunks(t chunkTask, j *jobState, pool *Pool, spawn bool, p int) {
	if spawn {
		var wg sync.WaitGroup
		for i := 0; i < p; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				t.runChunk(i)
			}(i)
		}
		wg.Wait()
		return
	}
	pool.Run(t, j, p)
}

// --- SFAParallel -----------------------------------------------------------

// MappingLen returns the length of a carried mapping vector: the number
// of states of the underlying DFA.
func (m *SFAParallel) MappingLen() int { return m.s.D.NumStates }

// InitMapping writes the identity mapping (the empty input's
// transformation) into cur, which must have MappingLen() length.
func (m *SFAParallel) InitMapping(cur []int16) {
	copy(cur, m.s.Map(m.s.Start))
}

// ComposeChunk advances a carried mapping by one chunk of input: the
// chunk is scanned from the identity — in parallel across the engine's
// threads on the worker pool when it is large enough to pay for the fork
// — and the resulting transformation is folded into cur with ⊙. cur and
// tmp are the caller's ping-pong pair (both MappingLen() long); the
// updated pair is returned in (current, scratch) order. Zero heap
// allocations in steady state.
//sfa:noalloc
func (m *SFAParallel) ComposeChunk(cur, tmp []int16, chunk []byte) ([]int16, []int16) {
	if len(chunk) == 0 {
		return cur, tmp
	}
	var start time.Time
	if m.stats != nil {
		start = time.Now()
	}
	p := m.threads
	if p < 2 || len(chunk) < streamSequentialMax {
		f := m.runChunk(chunk)
		core.ComposeVec(tmp, cur, m.s.Map(f))
		cur, tmp = tmp, cur
	} else {
		c := m.ctxs.Get().(*sfaCtx)
		c.text = chunk
		dispatchChunks(c, &c.job, m.pool, m.spawn, p)
		cur, tmp = composeLocals(m.s, cur, tmp, c.locals)
		c.text = nil
		m.ctxs.Put(c)
	}
	if m.stats != nil {
		m.stats.RecordChunk(len(chunk), time.Since(start).Nanoseconds())
		m.boundary.Record(int32(cur[m.s.D.Start]))
	}
	return cur, tmp
}

// AcceptedFrom reports whether the input a carried mapping summarizes is
// accepted: cur[D.Start] is the DFA state the whole prefix reaches.
//sfa:borrowed cur
func (m *SFAParallel) AcceptedFrom(cur []int16) bool {
	return m.s.D.Accept[cur[m.s.D.Start]]
}

// --- MultiSFA --------------------------------------------------------------

// BuildID returns the engine's process-unique construction id. Hot-reload
// keeps shards whose rule membership is unchanged; the id is how callers
// (and the serve tests) observe that an automaton really was carried over
// rather than rebuilt.
func (m *MultiSFA) BuildID() uint64 { return m.id }

// MappingLen returns the length of a carried mapping vector: the number
// of states of the combined DFA.
func (m *MultiSFA) MappingLen() int { return m.s.D.NumStates }

// InitMapping writes the identity mapping into cur, which must have
// MappingLen() length.
func (m *MultiSFA) InitMapping(cur []int16) {
	copy(cur, m.s.Map(m.s.Start))
}

// ComposeChunk advances a carried mapping by one chunk of input, exactly
// as SFAParallel.ComposeChunk does for the single-pattern engine: pooled
// parallel scan from the identity, ⊙-fold into the caller's ping-pong
// pair, zero steady-state allocations. The returned pair is in
// (current, scratch) order.
//sfa:noalloc
func (m *MultiSFA) ComposeChunk(cur, tmp []int16, chunk []byte) ([]int16, []int16) {
	if len(chunk) == 0 {
		return cur, tmp
	}
	start := time.Now()
	p := m.threads
	if p < 2 || len(chunk) < streamSequentialMax {
		f := m.runChunk(chunk)
		core.ComposeVec(tmp, cur, m.s.Map(f))
		cur, tmp = tmp, cur
	} else {
		c := m.ctxs.Get().(*multiCtx)
		c.text = chunk
		dispatchChunks(c, &c.job, m.pool, m.spawn, p)
		cur, tmp = composeLocals(m.s, cur, tmp, c.locals)
		c.text = nil
		m.ctxs.Put(c)
	}
	// Chunk latency/size aggregates are the caller's job (multi's
	// SetStream records once per Write); the engine contributes what it
	// alone can see — the boundary-state frequency table (opt-in) and
	// its own always-on per-shard cost account.
	m.attr.composeNs.Add(time.Since(start).Nanoseconds())
	m.attr.chunks.Inc()
	m.attr.bytes.Add(int64(len(chunk)))
	if m.stats != nil {
		m.boundary.Record(int32(cur[m.s.D.Start]))
	}
	return cur, tmp
}

// MatchMaskFrom writes the accept bitmask of a carried mapping — bit r
// set iff rule r accepts the input the mapping summarizes — into dst,
// which must have Words() capacity. It returns dst[:Words()]. Like
// MatchMask, it allocates nothing with a caller-provided buffer.
//sfa:noalloc
//sfa:borrowed cur
func (m *MultiSFA) MatchMaskFrom(cur []int16, dst []uint64) []uint64 {
	q := int(cur[m.s.D.Start])
	return append(dst[:0], m.masks[q*m.words:(q+1)*m.words]...)
}

// ComposeMask merges two carried mappings of this engine as if their
// inputs had been concatenated: h ← "f then g" (the ⊙ of Lemma 1). h must
// not alias f or g. This is what lets out-of-order stream segments be
// scanned independently and folded afterwards (RuleStream.Compose).
//sfa:borrowed f g
func (m *MultiSFA) ComposeMask(h, f, g []int16) {
	core.ComposeVec(h, f, g)
}
