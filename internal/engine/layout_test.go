package engine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

func TestResolveLayout(t *testing.T) {
	cases := []struct {
		req  TableLayout
		n    int
		want TableLayout
	}{
		{LayoutAuto, 1, LayoutU8},
		{LayoutAuto, 256, LayoutU8},
		{LayoutAuto, 257, LayoutU16},
		{LayoutAuto, 1 << 16, LayoutU16},
		{LayoutAuto, 1<<16 + 1, LayoutI32},
		{LayoutU8, 257, LayoutU16}, // widened to fit
		{LayoutU8, 1 << 20, LayoutI32},
		{LayoutU16, 1 << 20, LayoutI32},
		{LayoutU16, 100, LayoutU16}, // explicit request honoured
		{LayoutI32, 10, LayoutI32},
		{LayoutClass, 1 << 20, LayoutClass},
	}
	for _, c := range cases {
		if got := resolveLayout(c.req, c.n); got != c.want {
			t.Errorf("resolveLayout(%v, %d) = %v, want %v", c.req, c.n, got, c.want)
		}
	}
}

func TestParseLayoutRoundTrip(t *testing.T) {
	for _, l := range []TableLayout{LayoutAuto, LayoutU8, LayoutU16, LayoutI32, LayoutClass} {
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLayout(%q) = %v, %v", l.String(), got, err)
		}
	}
	if _, err := ParseLayout("u64"); err == nil {
		t.Error("ParseLayout accepted u64")
	}
}

// TestLayoutsAndPoolingAgreeWithOracle is the satellite cross-check: all
// table layouts, pooled and spawning dispatch, against the NFA bitset
// oracle on randomized inputs and thread counts including 1, 2, 7, 64 and
// counts exceeding the input length.
func TestLayoutsAndPoolingAgreeWithOracle(t *testing.T) {
	patterns := []string{
		"(ab)*",
		"(a|b)*abb",
		"([0-4]{2}[5-9]{2})*",
		"a+(b|c)*a?",
		"([ab]{3}c)*",
		"(a|bc)*d?",
	}
	layouts := []TableLayout{LayoutAuto, LayoutU8, LayoutU16, LayoutI32, LayoutClass}
	threadCounts := []int{1, 2, 7, 64}
	r := rand.New(rand.NewSource(1207))

	for _, pat := range patterns {
		node := syntax.MustParse(pat, 0)
		oracle, err := NewNFASim(node)
		if err != nil {
			t.Fatal(err)
		}
		d := dfa.MustCompilePattern(pat)
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		a, err := nfa.Glushkov(node)
		if err != nil {
			t.Fatal(err)
		}
		ns, err := core.BuildNSFA(a, 500_000)
		if err != nil {
			t.Fatal(err)
		}

		// Inputs: random words over a small alphabet, several shorter
		// than the largest thread count so empty chunks are exercised.
		inputs := make([][]byte, 0, 40)
		for i := 0; i < 40; i++ {
			w := make([]byte, r.Intn(120))
			for j := range w {
				w[j] = byte('a' + r.Intn(4))
			}
			if i%4 == 0 {
				w = w[:min(len(w), r.Intn(8))] // force len(text) < threads at p=64
			}
			inputs = append(inputs, w)
		}

		for _, p := range threadCounts {
			for _, layout := range layouts {
				for _, spawn := range []bool{false, true} {
					opts := []Option{WithLayout(layout)}
					if spawn {
						opts = append(opts, WithSpawn())
					}
					ms := []Matcher{
						NewSFAParallel(s, p, ReduceSequential, opts...),
						NewSFAParallel(s, p, ReduceTree, opts...),
						NewDFASpeculative(d, p, ReduceTree, opts...),
						NewNSFAParallel(ns, p, ReduceSequential, opts...),
					}
					for _, in := range inputs {
						want := oracle.Match(in)
						for _, m := range ms {
							if got := m.Match(in); got != want {
								t.Fatalf("pattern %q input %q p=%d: %s = %v, oracle = %v",
									pat, in, p, m.Name(), got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestWidthTablesMatchWideTable checks the narrow tables entry-for-entry
// against the int32 layout and the class-indexed walk.
func TestWidthTablesMatchWideTable(t *testing.T) {
	for _, pat := range []string{"(ab)*", "([0-4]{3}[5-9]{3})*", "(a|b)*abb"} {
		d := dfa.MustCompilePattern(pat)
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		wide := s.Table256()
		if core.FitsU8(s.NumStates) {
			narrow := s.Table256U8()
			for i := range wide {
				if int32(narrow[i]) != wide[i] {
					t.Fatalf("%s: u8 table diverges at %d", pat, i)
				}
			}
		}
		narrow16 := s.Table256U16()
		for i := range wide {
			if int32(narrow16[i]) != wide[i] {
				t.Fatalf("%s: u16 table diverges at %d", pat, i)
			}
		}
		for q := int32(0); q < int32(s.NumStates); q++ {
			for b := 0; b < 256; b++ {
				if wide[int(q)<<8|b] != s.NextByte(q, byte(b)) {
					t.Fatalf("%s: table disagrees with NextByte at (%d, %d)", pat, q, b)
				}
			}
		}
	}
}
