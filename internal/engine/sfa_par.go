package engine

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// SFAParallel is the paper's contribution in executable form —
// Algorithm 5. The input is split across p threads; each thread starts
// from the *identity* SFA state and performs exactly one table lookup per
// byte (no per-state loop: the speculation was paid at construction
// time). The per-chunk results are SFA states, i.e. transformations of
// the DFA's state set, and are combined by either reduction strategy.
//
// By default matching runs on the persistent worker pool and recycles its
// scratch (chunk results, reduction buffers) through a sync.Pool of match
// contexts, so a steady-state Match creates no goroutines and performs no
// heap allocation. WithSpawn restores the seed's spawn-per-match path for
// the Fig. 10 thread-creation measurement.
type SFAParallel struct {
	s       *core.DSFA
	threads int
	red     Reduction
	layout  TableLayout // resolved; never LayoutAuto
	tab     tables
	spawn   bool
	pool    *Pool
	ctxs    sync.Pool // of *sfaCtx

	// stats/boundary are nil unless WithScanStats was given (see the
	// MultiSFA fields of the same name).
	stats    *obs.ScanStats
	boundary *obs.StateFreq
}

// NewSFAParallel compiles the matcher for a fixed thread count and
// reduction strategy.
func NewSFAParallel(s *core.DSFA, threads int, red Reduction, opts ...Option) *SFAParallel {
	if threads < 1 {
		threads = 1
	}
	o := buildOpts(opts)
	m := &SFAParallel{
		s:       s,
		threads: threads,
		red:     red,
		layout:  resolveLayout(o.layout, s.NumStates),
		spawn:   o.spawn,
		pool:    o.pool,
	}
	if o.stats != nil {
		m.stats = o.stats
		m.boundary = &obs.StateFreq{}
	}
	switch m.layout {
	case LayoutU8:
		m.tab.u8 = s.Table256U8()
	case LayoutU16:
		m.tab.u16 = s.Table256U16()
	case LayoutI32:
		m.tab.i32 = s.Table256()
	}
	m.ctxs.New = func() any {
		return &sfaCtx{m: m, locals: make([]int32, m.threads)}
	}
	return m
}

// sfaCtx is the per-Match scratch: chunk results plus the reduction
// arena. Contexts are recycled through SFAParallel.ctxs, which is what
// makes concurrent Match calls on one engine allocation-free and safe —
// each in-flight call owns a private context.
type sfaCtx struct {
	job    jobState
	m      *SFAParallel
	text   []byte
	locals []int32
	ar     reduceArena16
}

// runChunk is lines 1–5 of Algorithm 5 for chunk i: fi ← fI, then one
// lookup per byte.
func (c *sfaCtx) runChunk(i int) {
	lo, hi := span(len(c.text), c.m.threads, i)
	c.locals[i] = c.m.runChunk(c.text[lo:hi])
}

// runChunk walks one chunk through the resolved table layout.
func (m *SFAParallel) runChunk(chunk []byte) int32 {
	if m.layout == LayoutClass {
		q := m.s.Start
		d := m.s
		for _, b := range chunk {
			q = d.NextByte(q, b)
		}
		return q
	}
	return m.tab.run(m.layout, m.s.Start, chunk)
}

// Match implements Algorithm 5.
func (m *SFAParallel) Match(text []byte) bool {
	p := m.threads
	if p == 1 {
		// Degenerate case: no fork, no reduction — just the SFA walk.
		return m.s.Accept[m.runChunk(text)]
	}
	c := m.ctxs.Get().(*sfaCtx)
	c.text = text
	dispatchChunks(c, &c.job, m.pool, m.spawn, p)
	ok := m.reduce(c.locals, &c.ar)
	c.text = nil
	m.ctxs.Put(c)
	return ok
}

// reduce is lines 6–9 of Algorithm 5.
func (m *SFAParallel) reduce(locals []int32, ar *reduceArena16) bool {
	d := m.s.D
	switch m.red {
	case ReduceSequential:
		// Sfin ← I; then Sfin ← fi(Sfin) for each i — O(p) total,
		// "independent from the number of states in SFA" (Sect. V-B).
		q := d.Start
		for _, f := range locals {
			q = core.ApplyVec(m.s.Map(f), q)
		}
		return d.Accept[q]
	default:
		// ffin ← f1 ⊙ … ⊙ fp by pairwise ⊙-tree composition over the
		// arena, then Sfin ← ffin(I).
		vecs := ar.vecs(len(locals))
		for i, f := range locals {
			vecs[i] = m.s.Map(f)
		}
		fin := treeReduce16(vecs, d.NumStates, ar)
		return d.Accept[fin[d.Start]]
	}
}

// SFA exposes the underlying automaton (harness reporting).
func (m *SFAParallel) SFA() *core.DSFA { return m.s }

// Layout returns the resolved table layout.
func (m *SFAParallel) Layout() TableLayout { return m.layout }

// TableBytes returns the resident size of the materialized match table
// (0 for LayoutClass, which walks the class-indexed table in core).
func (m *SFAParallel) TableBytes() int64 { return m.tab.memoryBytes() }

// Name implements Matcher.
func (m *SFAParallel) Name() string {
	mode := ""
	if m.spawn {
		mode = "-spawn"
	}
	return fmt.Sprintf("sfa-p%d-%s-%s%s", m.threads, m.red, m.layout, mode)
}
