package engine

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// SFAParallel is the paper's contribution in executable form —
// Algorithm 5. The input is split across p threads; each thread starts
// from the *identity* SFA state and performs exactly one table lookup per
// byte (no per-state loop: the speculation was paid at construction
// time). The per-chunk results are SFA states, i.e. transformations of
// the DFA's state set, and are combined by either reduction strategy.
type SFAParallel struct {
	s       *core.DSFA
	tab     []int32 // 256-wide flat table (1 KB/state), default layout
	threads int
	red     Reduction

	// classTable enables ablation A2: match through the class-indexed
	// table (smaller, one extra indirection per byte).
	classTable bool
}

// Option configures SFAParallel.
type Option func(*SFAParallel)

// WithClassTable matches through the byte-class-compressed table instead
// of the 256-wide layout (ablation A2; changes Fig. 8's cache story).
func WithClassTable() Option {
	return func(m *SFAParallel) { m.classTable = true }
}

// NewSFAParallel compiles the matcher for a fixed thread count and
// reduction strategy.
func NewSFAParallel(s *core.DSFA, threads int, red Reduction, opts ...Option) *SFAParallel {
	if threads < 1 {
		threads = 1
	}
	m := &SFAParallel{s: s, threads: threads, red: red}
	for _, o := range opts {
		o(m)
	}
	if !m.classTable {
		m.tab = s.Table256()
	}
	return m
}

// Match implements Algorithm 5. Thread creation is part of the call, as
// in the paper's Fig. 10 measurement ("the execution times of the
// parallel computation includes the creation of threads and the
// reduction").
func (m *SFAParallel) Match(text []byte) bool {
	p := m.threads
	if p == 1 {
		// Degenerate case: no fork, no reduction — just the SFA walk.
		f := m.runChunk(text)
		return m.s.Accept[f]
	}
	spans := chunks(len(text), p)
	locals := make([]int32, p)

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			locals[i] = m.runChunk(text[spans[i][0]:spans[i][1]])
		}(i)
	}
	wg.Wait()
	return m.reduce(locals)
}

// runChunk is lines 1–5: fi ← fI, then one lookup per byte.
func (m *SFAParallel) runChunk(chunk []byte) int32 {
	q := m.s.Start
	if m.classTable {
		d := m.s
		for _, b := range chunk {
			q = d.NextByte(q, b)
		}
		return q
	}
	tab := m.tab
	for _, b := range chunk {
		q = tab[int(q)<<8|int(b)]
	}
	return q
}

// reduce is lines 6–9 of Algorithm 5.
func (m *SFAParallel) reduce(locals []int32) bool {
	d := m.s.D
	switch m.red {
	case ReduceSequential:
		// Sfin ← I; then Sfin ← fi(Sfin) for each i — O(p) total,
		// "independent from the number of states in SFA" (Sect. V-B).
		q := d.Start
		for _, f := range locals {
			q = core.ApplyVec(m.s.Map(f), q)
		}
		return d.Accept[q]
	default:
		// ffin ← f1 ⊙ … ⊙ fp by parallel pairwise composition, then
		// Sfin ← ffin(I).
		vecs := make([][]int16, len(locals))
		for i, f := range locals {
			vecs[i] = m.s.Map(f)
		}
		fin := treeReduce16(vecs, d.NumStates)
		return d.Accept[fin[d.Start]]
	}
}

// treeReduce16 folds transformation vectors pairwise with ⊙ in parallel.
func treeReduce16(vecs [][]int16, n int) []int16 {
	switch len(vecs) {
	case 1:
		return vecs[0]
	case 2:
		h := make([]int16, n)
		core.ComposeVec(h, vecs[0], vecs[1])
		return h
	}
	mid := len(vecs) / 2
	var left, right []int16
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		left = treeReduce16(vecs[:mid], n)
	}()
	right = treeReduce16(vecs[mid:], n)
	wg.Wait()
	h := make([]int16, n)
	core.ComposeVec(h, left, right)
	return h
}

// SFA exposes the underlying automaton (harness reporting).
func (m *SFAParallel) SFA() *core.DSFA { return m.s }

// Name implements Matcher.
func (m *SFAParallel) Name() string {
	layout := "tab256"
	if m.classTable {
		layout = "tabclass"
	}
	return fmt.Sprintf("sfa-p%d-%s-%s", m.threads, m.red, layout)
}
