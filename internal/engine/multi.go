package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// MultiSFA is Algorithm 5 generalized to multi-pattern matching: the
// underlying D-SFA was built from a combined DFA whose states carry a
// per-rule accept bitmask, so one parallel pass over the input reports
// every matching rule at once. The per-byte cost is unchanged — one table
// lookup per byte per thread through the same width-specialized layouts
// as the single-pattern engine — and the reduction is the O(p) sequential
// fold of chunk mappings, finishing with one bitmask row copy instead of
// one bool read.
//
// Matching runs on the persistent worker pool by default and recycles its
// scratch through a sync.Pool of contexts; with a caller-provided result
// buffer a steady-state MatchMask performs no heap allocation.
type MultiSFA struct {
	s       *core.DSFA
	words   int      // mask words per combined-DFA state
	masks   []uint64 // DFA-state-indexed accept bitmasks, stride words
	threads int
	layout  TableLayout // resolved; never LayoutAuto
	tab     tables
	spawn   bool
	pool    *Pool
	id      uint64    // process-unique build id (see BuildID)
	ctxs    sync.Pool // of *multiCtx

	// stats/boundary are nil unless WithScanStats was given: stats
	// opts the engine in, boundary is the frequency table of chunk-
	// boundary states (the input Ko-style chunk speculation needs).
	// boundary is per-engine — state ids are meaningless across shards
	// — while stats may be shared by every engine of a tenant.
	stats    *obs.ScanStats
	boundary *obs.StateFreq

	// attr is the always-on per-shard cost account (compose ns, chunks,
	// bytes, candidate windows); see attribution.
	attr attribution
}

// NewMultiSFA compiles the matcher. masks holds one accept bitmask of
// `words` uint64 words per state of the combined DFA underlying s (the
// DFA whose transformation vectors s's states are): bit r is set when the
// DFA state accepts rule r.
func NewMultiSFA(s *core.DSFA, masks []uint64, words, threads int, opts ...Option) *MultiSFA {
	if threads < 1 {
		threads = 1
	}
	if len(masks) != s.D.NumStates*words {
		panic(fmt.Sprintf("engine: mask table %d != %d DFA states × %d words",
			len(masks), s.D.NumStates, words))
	}
	o := buildOpts(opts)
	id := o.buildID
	if id == 0 {
		id = buildSeq.Add(1)
	}
	m := &MultiSFA{
		s:       s,
		words:   words,
		masks:   masks,
		threads: threads,
		layout:  resolveLayout(o.layout, s.NumStates),
		spawn:   o.spawn,
		pool:    o.pool,
		id:      id,
	}
	if o.stats != nil {
		m.stats = o.stats
		m.boundary = &obs.StateFreq{}
	}
	switch m.layout {
	case LayoutU8:
		m.tab.u8 = s.Table256U8()
	case LayoutU16:
		m.tab.u16 = s.Table256U16()
	case LayoutI32:
		m.tab.i32 = s.Table256()
	}
	m.ctxs.New = func() any {
		return &multiCtx{m: m, locals: make([]int32, m.threads)}
	}
	return m
}

// multiCtx is the per-MatchMask scratch, recycled through MultiSFA.ctxs so
// concurrent calls on one engine are allocation-free and each own private
// chunk-result storage.
type multiCtx struct {
	job    jobState
	m      *MultiSFA
	text   []byte
	locals []int32
}

func (c *multiCtx) runChunk(i int) {
	lo, hi := span(len(c.text), c.m.threads, i)
	c.locals[i] = c.m.runChunk(c.text[lo:hi])
}

func (m *MultiSFA) runChunk(chunk []byte) int32 {
	if m.layout == LayoutClass {
		q := m.s.Start
		d := m.s
		for _, b := range chunk {
			q = d.NextByte(q, b)
		}
		return q
	}
	return m.tab.run(m.layout, m.s.Start, chunk)
}

// finalState folds the p chunk mappings into the combined-DFA state the
// whole input reaches (lines 6–9 of Algorithm 5 with the O(p) sequential
// reduction; the bitmask row lookup replaces the accept-bit read).
func (m *MultiSFA) finalState(locals []int32) int32 {
	q := m.s.D.Start
	for _, f := range locals {
		q = core.ApplyVec(m.s.Map(f), q)
	}
	return q
}

// run walks text with p chunks and returns the final combined-DFA state.
func (m *MultiSFA) run(text []byte) int32 {
	start := time.Now()
	var q int32
	p := m.threads
	if p == 1 {
		// Degenerate case: the chunk result is an SFA state; apply its
		// mapping to the DFA start to land on the final DFA state.
		f := m.runChunk(text)
		q = core.ApplyVec(m.s.Map(f), m.s.D.Start)
	} else {
		c := m.ctxs.Get().(*multiCtx)
		c.text = text
		dispatchChunks(c, &c.job, m.pool, m.spawn, p)
		q = m.finalState(c.locals)
		c.text = nil
		m.ctxs.Put(c)
	}
	m.attr.composeNs.Add(time.Since(start).Nanoseconds())
	m.attr.chunks.Inc()
	m.attr.bytes.Add(int64(len(text)))
	return q
}

// MatchMask scans text once and writes the accept bitmask — bit r set iff
// rule r matches the whole input — into dst, which must have Words()
// capacity. It returns dst[:Words()].
func (m *MultiSFA) MatchMask(text []byte, dst []uint64) []uint64 {
	q := m.run(text)
	return append(dst[:0], m.masks[int(q)*m.words:(int(q)+1)*m.words]...)
}

// OrMask scans text sequentially on the calling goroutine and ORs the
// resulting accept bitmask into dst, which must have Words() length.
// This is the candidate-window primitive of the literal prefilter: a
// window is a short slice, so the chunk-parallel dispatch of MatchMask
// would cost more than the walk, and OR-accumulation lets overlapping
// windows of one input share a result buffer.
func (m *MultiSFA) OrMask(text []byte, dst []uint64) {
	m.attr.windows.Inc()
	m.attr.bytes.Add(int64(len(text)))
	f := m.runChunk(text)
	q := core.ApplyVec(m.s.Map(f), m.s.D.Start)
	row := m.masks[int(q)*m.words : (int(q)+1)*m.words]
	for i, w := range row {
		dst[i] |= w
	}
}

// Match implements Matcher: whole-input acceptance by any rule.
func (m *MultiSFA) Match(text []byte) bool {
	q := m.run(text)
	for _, w := range m.masks[int(q)*m.words : (int(q)+1)*m.words] {
		if w != 0 {
			return true
		}
	}
	return false
}

// Words returns the mask width in uint64 words.
func (m *MultiSFA) Words() int { return m.words }

// Masks exposes the combined-DFA-state-indexed accept bitmask table
// (stride Words()) so the rule-set codec can serialize it. The slice
// aliases internal storage and must not be modified.
func (m *MultiSFA) Masks() []uint64 { return m.masks }

// SFA exposes the combined automaton (stats reporting).
func (m *MultiSFA) SFA() *core.DSFA { return m.s }

// Layout returns the resolved table layout.
func (m *MultiSFA) Layout() TableLayout { return m.layout }

// TableBytes returns the resident size of the materialized match table.
func (m *MultiSFA) TableBytes() int64 { return m.tab.memoryBytes() }

// Name implements Matcher.
func (m *MultiSFA) Name() string {
	mode := ""
	if m.spawn {
		mode = "-spawn"
	}
	return fmt.Sprintf("multi-sfa-p%d-%s%s", m.threads, m.layout, mode)
}
