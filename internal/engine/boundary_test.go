package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/textgen"
)

// TestCorruptionAtChunkBoundaries plants a single bad byte at and around
// every chunk boundary of every engine configuration: the verdict must
// flip regardless of where the damage sits relative to the splits. This
// is the failure mode split-based matchers historically get wrong.
func TestCorruptionAtChunkBoundaries(t *testing.T) {
	d := dfa.MustCompilePattern("(([02468][13579]){5})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := textgen.EvenOddText(10_000, 3)

	for _, p := range []int{2, 3, 4, 7} {
		engines := []Matcher{
			NewSFAParallel(s, p, ReduceSequential),
			NewSFAParallel(s, p, ReduceTree),
			NewDFASpeculative(d, p, ReduceSequential),
			NewDFASpeculative(d, p, ReduceTree),
		}
		spans := chunks(len(text), p)
		for _, e := range engines {
			if !e.Match(text) {
				t.Fatalf("%s rejected clean text", e.Name())
			}
			for _, span := range spans {
				for _, pos := range []int{span[0], span[0] + 1, span[1] - 1} {
					if pos < 0 || pos >= len(text) {
						continue
					}
					bad := textgen.CorruptAt(text, pos)
					if e.Match(bad) {
						t.Fatalf("%s accepted text corrupted at %d (chunk %v)",
							e.Name(), pos, span)
					}
				}
			}
		}
	}
}

func TestCorruptHelpers(t *testing.T) {
	text := textgen.EvenOddText(1000, 1)
	bad := textgen.Corrupt(text, 5, 9)
	if len(bad) != len(text) {
		t.Fatal("length changed")
	}
	diff := 0
	for i := range text {
		if text[i] != bad[i] {
			diff++
		}
	}
	if diff == 0 || diff > 5 {
		t.Errorf("corrupted %d positions, want 1–5", diff)
	}
	// Original untouched.
	if !dfa.MustCompilePattern("(([02468][13579]){5})*").Accepts(text) {
		t.Error("Corrupt mutated its input")
	}
	at := textgen.CorruptAt(text, 10)
	if at[10] == text[10] {
		t.Error("CorruptAt did not change the byte")
	}
}
