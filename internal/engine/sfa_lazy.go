package engine

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dfa"
)

// SFALazy is Algorithm 5 over an on-the-fly SFA (Sect. V-A): states are
// constructed the first time any thread needs them and shared through the
// lock-free read path of core.Lazy. It trades Table III's up-front
// construction time for slightly slower per-byte steps (class lookup plus
// an atomic load) — ablation A3 quantifies the trade.
type SFALazy struct {
	l       *core.Lazy
	threads int

	mu  sync.Mutex
	err error // first construction error (state cap), sticky
}

// NewSFALazy prepares a lazy matcher. maxStates caps on-the-fly state
// materialization (0 = the core.Lazy default).
func NewSFALazy(d *dfa.DFA, threads, maxStates int) (*SFALazy, error) {
	if threads < 1 {
		threads = 1
	}
	l, err := core.NewLazy(d, maxStates)
	if err != nil {
		return nil, err
	}
	return &SFALazy{l: l, threads: threads}, nil
}

// Match implements Algorithm 5 with on-demand state construction.
// A state-cap error is remembered and reported by Err; Match returns
// false in that case (no acceptance can be proven).
func (m *SFALazy) Match(text []byte) bool {
	p := m.threads
	spans := chunks(len(text), p)
	locals := make([]int32, p)

	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q, err := m.l.Run(m.l.Start(), text[spans[i][0]:spans[i][1]])
			if err != nil {
				m.setErr(err)
				return
			}
			locals[i] = q
		}(i)
	}
	wg.Wait()
	if m.Err() != nil {
		return false
	}
	// Sequential reduction (the O(p) strategy).
	d := m.l.D
	q := d.Start
	for _, f := range locals {
		q = core.ApplyVec(m.l.Map(f), q)
	}
	return d.Accept[q]
}

func (m *SFALazy) setErr(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
}

// Err returns the first construction error encountered, if any.
func (m *SFALazy) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// States returns the number of SFA states materialized so far.
func (m *SFALazy) States() int { return m.l.NumStates() }

// Name implements Matcher.
func (m *SFALazy) Name() string { return fmt.Sprintf("sfa-lazy-p%d", m.threads) }
