package engine

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dfa"
)

// SFALazy is Algorithm 5 over an on-the-fly SFA (Sect. V-A): states are
// constructed the first time any thread needs them and shared through the
// lock-free read path of core.Lazy. It trades Table III's up-front
// construction time for slightly slower per-byte steps (class lookup plus
// an atomic load) — ablation A3 quantifies the trade.
//
// Chunks run on the persistent worker pool by default (WithSpawn restores
// per-call goroutine creation); there is no wide table to specialize, so
// layout options do not apply.
type SFALazy struct {
	l       *core.Lazy
	threads int
	spawn   bool
	pool    *Pool
	ctxs    sync.Pool // of *lazyCtx

	mu  sync.Mutex
	err error // first construction error (state cap), sticky
}

// NewSFALazy prepares a lazy matcher. maxStates caps on-the-fly state
// materialization (0 = the core.Lazy default).
func NewSFALazy(d *dfa.DFA, threads, maxStates int, opts ...Option) (*SFALazy, error) {
	if threads < 1 {
		threads = 1
	}
	l, err := core.NewLazy(d, maxStates)
	if err != nil {
		return nil, err
	}
	o := buildOpts(opts)
	m := &SFALazy{l: l, threads: threads, spawn: o.spawn, pool: o.pool}
	m.ctxs.New = func() any {
		return &lazyCtx{m: m, locals: make([]int32, m.threads)}
	}
	return m, nil
}

// lazyCtx is the per-Match scratch of the lazy engine.
type lazyCtx struct {
	job    jobState
	m      *SFALazy
	text   []byte
	locals []int32
}

func (c *lazyCtx) runChunk(i int) {
	lo, hi := span(len(c.text), c.m.threads, i)
	q, err := c.m.l.Run(c.m.l.Start(), c.text[lo:hi])
	if err != nil {
		c.m.setErr(err)
		return
	}
	c.locals[i] = q
}

// Match implements Algorithm 5 with on-demand state construction.
// A state-cap error is remembered and reported by Err; Match returns
// false in that case (no acceptance can be proven).
func (m *SFALazy) Match(text []byte) bool {
	p := m.threads
	c := m.ctxs.Get().(*lazyCtx)
	c.text = text
	dispatchChunks(c, &c.job, m.pool, m.spawn, p)
	ok := false
	if m.Err() == nil {
		// Sequential reduction (the O(p) strategy).
		d := m.l.D
		q := d.Start
		for _, f := range c.locals {
			q = core.ApplyVec(m.l.Map(f), q)
		}
		ok = d.Accept[q]
	}
	c.text = nil
	m.ctxs.Put(c)
	return ok
}

func (m *SFALazy) setErr(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
}

// Err returns the first construction error encountered, if any.
func (m *SFALazy) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// States returns the number of SFA states materialized so far.
func (m *SFALazy) States() int { return m.l.NumStates() }

// Name implements Matcher.
func (m *SFALazy) Name() string {
	mode := ""
	if m.spawn {
		mode = "-spawn"
	}
	return fmt.Sprintf("sfa-lazy-p%d%s", m.threads, mode)
}
