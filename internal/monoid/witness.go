package monoid

import (
	"fmt"

	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// This file builds the state-explosion witnesses of the paper's
// Sect. VII-B.
//
// Fact 1 (Example 3): over a 3-letter alphabet there are regular
// expressions whose NFA is linear but whose minimal DFA is exponential.
// The family [ap]*[al][alp]{k-1} expresses "the k-th symbol from the end
// is a or l": its Glushkov NFA has k+2 states while the minimal DFA needs
// 2^k live states (it must remember the [al]-membership of a k-symbol
// window; Example 3's shift argument).
//
// Fact 2 (Example 4): over a 3-letter alphabet there are minimal DFAs
// whose D-SFA reaches the theoretical bound |Sd| = |D|^|D|. The witness
// is algebraic: a DFA whose three letters act as (i) an n-cycle, (ii) a
// transposition and (iii) a rank-(n−1) idempotent. Those three
// transformations are the classical generating set of the full
// transformation monoid T_n, |T_n| = n^n, and the D-SFA enumerates
// exactly the transition monoid.

// Fact1Pattern returns the Example 3 pattern for window size k ≥ 1.
func Fact1Pattern(k int) string {
	if k == 1 {
		return "[ap]*[al]"
	}
	return fmt.Sprintf("[ap]*[al][alp]{%d}", k-1)
}

// BuildFact1 compiles Fact1Pattern(k) and returns the Glushkov NFA and
// the minimal DFA. The caller asserts |N| = k+2 and live |D| = 2^k.
func BuildFact1(k int) (*nfa.NFA, *dfa.DFA, error) {
	node, err := syntax.Parse(Fact1Pattern(k), 0)
	if err != nil {
		return nil, nil, err
	}
	a, err := nfa.Glushkov(node)
	if err != nil {
		return nil, nil, err
	}
	d, err := dfa.Determinize(a, 0)
	if err != nil {
		return nil, nil, err
	}
	return a, dfa.Minimize(d), nil
}

// Fact2DFA builds the n-state minimal DFA over Σ = {c, t, m} whose
// transition monoid is the full transformation monoid T_n:
//
//	'c' acts as the cycle      (0 1 2 … n−1)
//	't' acts as the transposition (0 1)
//	'm' acts as the merge      0 ↦ 1, q ↦ q otherwise
//
// Every other byte acts as the identity (self-loops), so the automaton is
// complete without a dead sink. Start state 0; accepting {0}.
// The D-SFA of this DFA has exactly n^n states (Fact 2: |Sd| = |D|^|D|).
func Fact2DFA(n int) (*dfa.DFA, error) {
	if n < 2 {
		return nil, fmt.Errorf("monoid: Fact2DFA needs n ≥ 2, got %d", n)
	}
	gens := map[byte][]int32{
		'c': make([]int32, n),
		't': make([]int32, n),
		'm': make([]int32, n),
	}
	for q := 0; q < n; q++ {
		gens['c'][q] = int32((q + 1) % n)
		gens['t'][q] = int32(q)
		gens['m'][q] = int32(q)
	}
	gens['t'][0], gens['t'][1] = 1, 0
	gens['m'][0] = 1
	accept := make([]bool, n)
	accept[0] = true
	return FromTransformations(gens, 0, accept)
}

// FromTransformations builds a complete DFA whose named bytes act as the
// given transformations of {0, …, n−1} and whose remaining bytes act as
// the identity. It validates ranges and that all vectors agree on n.
func FromTransformations(gens map[byte][]int32, start int32, accept []bool) (*dfa.DFA, error) {
	n := len(accept)
	if n == 0 {
		return nil, fmt.Errorf("monoid: empty state set")
	}
	for b, v := range gens {
		if len(v) != n {
			return nil, fmt.Errorf("monoid: generator %q has length %d, want %d", b, len(v), n)
		}
		for _, to := range v {
			if to < 0 || int(to) >= n {
				return nil, fmt.Errorf("monoid: generator %q maps out of range", b)
			}
		}
	}
	if int(start) >= n {
		return nil, fmt.Errorf("monoid: start %d out of range", start)
	}

	// Byte classes: one class per distinct generator byte, one for the rest.
	// Build them through a throwaway NFA, the canonical constructor.
	probe := nfa.New(n + 1)
	for b := range gens {
		var s syntax.CharSet
		s.AddByte(b)
		probe.AddEdge(0, 1, s)
	}
	bc := nfa.Classes(probe)

	d := dfa.New(n, bc)
	d.Start = start
	copy(d.Accept, accept)
	for c := 0; c < bc.Count; c++ {
		rep := bc.Rep[c]
		v, ok := gens[rep]
		for q := 0; q < n; q++ {
			to := int32(q) // identity for unnamed bytes
			if ok {
				to = v[q]
			}
			d.NextC[q*bc.Count+c] = to
		}
	}
	d.DetectDead()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
