package monoid

import (
	"testing"

	"repro/internal/dfa"
)

// TestGreenFullTransformationMonoid checks the classical egg-box of T_3:
// 27 elements in three J-classes stratified by rank —
// rank 3: the group S_3 (6 elements, 1 R-class, 1 L-class);
// rank 2: 18 elements, 3 R-classes (kernels) × 3 L-classes (images);
// rank 1: the 3 constant maps.
func TestGreenFullTransformationMonoid(t *testing.T) {
	d, err := Fact2DFA(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Transition(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 27 {
		t.Fatalf("|T_3| = %d", m.Size())
	}
	g := GreenRelations(m)
	if g.NumJ != 3 {
		t.Errorf("J-classes = %d, want 3", g.NumJ)
	}
	// Count J-class sizes and verify the rank stratification.
	sizes := ClassSizes(g.J, g.NumJ)
	byRank := map[int]int{}
	for i := 0; i < m.Size(); i++ {
		byRank[g.Rank(i)]++
	}
	if byRank[3] != 6 || byRank[2] != 18 || byRank[1] != 3 {
		t.Errorf("rank strata = %v, want 3:6 2:18 1:3", byRank)
	}
	// Each J-class must be rank-homogeneous.
	rankOfJ := map[int]int{}
	for i := 0; i < m.Size(); i++ {
		r := g.Rank(i)
		if prev, ok := rankOfJ[g.J[i]]; ok && prev != r {
			t.Fatal("J-class mixes ranks")
		}
		rankOfJ[g.J[i]] = r
	}
	_ = sizes
	// Rank-2 J-class: 3 R-classes × 3 L-classes, H-classes of size 2.
	numR2, numL2 := map[int]bool{}, map[int]bool{}
	hSizes := map[int]int{}
	for i := 0; i < m.Size(); i++ {
		if g.Rank(i) == 2 {
			numR2[g.R[i]] = true
			numL2[g.L[i]] = true
			hSizes[g.H[i]]++
		}
	}
	if len(numR2) != 3 || len(numL2) != 3 {
		t.Errorf("rank-2: %d R-classes, %d L-classes, want 3 and 3", len(numR2), len(numL2))
	}
	for h, size := range hSizes {
		if size != 2 {
			t.Errorf("rank-2 H-class %d has %d elements, want 2", h, size)
		}
	}
}

// TestGreenGroupIsSingleClass: in a group every Green relation is trivial
// (one class).
func TestGreenGroupIsSingleClass(t *testing.T) {
	n := 5
	cyc := make([]int32, n)
	for q := 0; q < n; q++ {
		cyc[q] = int32((q + 1) % n)
	}
	accept := make([]bool, n)
	accept[0] = true
	d, err := FromTransformations(map[byte][]int32{'c': cyc}, 0, accept)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Transition(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := GreenRelations(m)
	if g.NumR != 1 || g.NumL != 1 || g.NumJ != 1 || g.NumH != 1 {
		t.Errorf("group should have single classes, got R=%d L=%d J=%d H=%d",
			g.NumR, g.NumL, g.NumJ, g.NumH)
	}
}

// TestGreenAbStar inspects the 6-element monoid of (ab)*: the zero is its
// own J-class, the identity its own, and H refines R and L everywhere.
func TestGreenAbStar(t *testing.T) {
	m, err := Transition(dfa.MustCompilePattern("(ab)*"), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := GreenRelations(m)
	zero, ok := m.Zero()
	if !ok {
		t.Fatal("no zero")
	}
	// Zero and identity are alone in their J-classes.
	zs := ClassSizes(g.J, g.NumJ)
	if zs[g.J[zero]] != 1 {
		t.Error("zero should be a singleton J-class")
	}
	if zs[g.J[m.Identity]] != 1 {
		t.Error("identity should be a singleton J-class")
	}
	// H ⊆ R and H ⊆ L: same H-class implies same R and L classes.
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			if g.H[i] == g.H[j] && (g.R[i] != g.R[j] || g.L[i] != g.L[j]) {
				t.Fatal("H does not refine R ∩ L")
			}
		}
	}
	// J is coarser than R and L.
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			if g.R[i] == g.R[j] && g.J[i] != g.J[j] {
				t.Fatal("R-related elements must be J-related")
			}
			if g.L[i] == g.L[j] && g.J[i] != g.J[j] {
				t.Fatal("L-related elements must be J-related")
			}
		}
	}
}

func TestSCCSimple(t *testing.T) {
	// 0 ↔ 1, 2 alone, 3 → 0 (not back).
	adj := [][]int32{{1}, {0}, {}, {0}}
	comp, n := scc(adj)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] {
		t.Error("0 and 1 must share a component")
	}
	if comp[2] == comp[0] || comp[3] == comp[0] || comp[2] == comp[3] {
		t.Error("2 and 3 must be singletons")
	}
}
