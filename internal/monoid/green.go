package monoid

// Green's relations — the standard structure theory of finite monoids,
// and the natural next step past the paper's Sect. VII-A observation that
// SFA states are syntactic-monoid elements. Two elements are R-related
// when they generate the same right ideal (fM = gM), L-related for left
// ideals, J-related for two-sided ideals, and H = R ∩ L. For finite
// monoids D = J.
//
// Computation: in the right Cayley graph (edges f → f⊙g for generators g)
// the R-classes are exactly the strongly connected components; likewise
// L with the left Cayley graph and J with the union of both edge sets.

// Green holds the relation classes of a monoid, as class ids per element.
type Green struct {
	M *Monoid
	R []int // element → R-class id
	L []int // element → L-class id
	J []int // element → J-class id (= D-class)
	H []int // element → H-class id

	NumR, NumL, NumJ, NumH int
}

// GreenRelations computes all four relations.
func GreenRelations(m *Monoid) *Green {
	right := cayley(m, false)
	left := cayley(m, true)
	both := make([][]int32, m.Size())
	for i := range both {
		both[i] = append(append([]int32{}, right[i]...), left[i]...)
	}
	g := &Green{M: m}
	g.R, g.NumR = scc(right)
	g.L, g.NumL = scc(left)
	g.J, g.NumJ = scc(both)

	// H-classes: pairs (R-class, L-class) that occur.
	type rl struct{ r, l int }
	ids := map[rl]int{}
	g.H = make([]int, m.Size())
	for i := range g.H {
		k := rl{g.R[i], g.L[i]}
		id, ok := ids[k]
		if !ok {
			id = len(ids)
			ids[k] = id
		}
		g.H[i] = id
	}
	g.NumH = len(ids)
	return g
}

// cayley builds the (right or left) Cayley graph over the generators.
func cayley(m *Monoid, leftSide bool) [][]int32 {
	adj := make([][]int32, m.Size())
	for i := 0; i < m.Size(); i++ {
		for _, gen := range m.Gens {
			var to int
			if leftSide {
				to = m.Compose(gen, i)
			} else {
				to = m.Compose(i, gen)
			}
			adj[i] = append(adj[i], int32(to))
		}
	}
	return adj
}

// ClassSizes returns a histogram: class id → member count.
func ClassSizes(class []int, num int) []int {
	sizes := make([]int, num)
	for _, c := range class {
		sizes[c]++
	}
	return sizes
}

// scc computes strongly connected components with Tarjan's algorithm
// (iterative, to stay safe on monoids with 10⁵ elements).
func scc(adj [][]int32) (comp []int, numComp int) {
	n := len(adj)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int32
	var next int32 = 0

	type frame struct {
		v    int32
		edge int
	}
	var call []frame

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		call = append(call[:0], frame{int32(root), 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			if f.edge < len(adj[v]) {
				w := adj[v][f.edge]
				f.edge++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Post-order: pop component if v is a root.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = numComp
					if w == v {
						break
					}
				}
				numComp++
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				parent := call[len(call)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, numComp
}

// Rank returns the rank (image size) of element i — the invariant that
// stratifies the J-order of transformation monoids.
func (g *Green) Rank(i int) int {
	seen := make(map[int16]bool)
	for _, x := range g.M.Elems[i] {
		seen[x] = true
	}
	return len(seen)
}
