package monoid

import (
	"testing"

	"repro/internal/dfa"
)

func TestAperiodicStarFreeLanguages(t *testing.T) {
	// Star-free languages (their minimal automata count nothing modulo
	// k > 1): syntactic monoid must be aperiodic.
	starFree := []string{
		"(?s).*abb",       // ends with abb: star-free
		"a+b*",            // threshold counting only
		"(?s).*(T.*Y.*P)", // subsequence pattern (the .*-chain family)
		"abc",             // finite language
		// (ab)* is star-free despite its spelling: it is "starts with a,
		// ends with b, contains neither aa nor bb" — no modular counting.
		"(ab)*",
	}
	for _, pat := range starFree {
		m, err := Transition(dfa.MustCompilePattern(pat), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !m.IsAperiodic() {
			t.Errorf("%q should have an aperiodic monoid", pat)
		}
		if m.GroupKernelSize() != 0 {
			t.Errorf("%q: group kernel should be empty", pat)
		}
	}
}

func TestPeriodicLanguagesNotAperiodic(t *testing.T) {
	// Modular counting needs nontrivial groups.
	// Note: the r_n family is NOT here — although it looks like a mod-2n
	// counter, the low/high letter classes pin every word to a unique
	// cycle offset, so no transformation permutes a set nontrivially and
	// the monoid is aperiodic. Fig. 10's even/odd pattern genuinely
	// counts (period-2 classes in a 10-cycle ⇒ a 5-cycle on the evens).
	periodic := []string{
		"(aa)*",                  // length parity: the canonical non-star-free language
		"(([02468][13579]){5})*", // mod-10 counter (Fig. 10's pattern)
	}
	for _, pat := range periodic {
		m, err := Transition(dfa.MustCompilePattern(pat), 0)
		if err != nil {
			t.Fatal(err)
		}
		if m.IsAperiodic() {
			t.Errorf("%q should NOT be aperiodic", pat)
		}
		if m.GroupKernelSize() == 0 {
			t.Errorf("%q: expected a nonempty group kernel", pat)
		}
	}
}

func TestFullTransformationMonoidNotAperiodic(t *testing.T) {
	d, err := Fact2DFA(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Transition(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.IsAperiodic() {
		t.Error("T_3 contains S_3, hence is not aperiodic")
	}
	// The group kernel contains at least the 6 permutations.
	if k := m.GroupKernelSize(); k < 5 {
		t.Errorf("group kernel = %d, want ≥ 5", k)
	}
}
