// Package monoid implements the algebraic view of SFA developed in the
// paper's Sect. VII: the transition monoid of a DFA (whose elements are
// exactly the states of the D-SFA built from it), syntactic complexity,
// idempotents, and the explosion witnesses of Sect. VII-B (Facts 1 and 2).
//
// For a minimal complete DFA the transition monoid is (isomorphic to) the
// syntactic monoid of the language, so
//
//	syntactic complexity = |minimal D-SFA|
//
// — "syntactic complexity is also parallel complexity of regular
// expressions" (Sect. VII-A).
package monoid

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dfa"
)

// ErrTooLarge is returned when monoid enumeration exceeds the cap.
var ErrTooLarge = errors.New("monoid: element cap exceeded")

// Monoid is a finite transformation monoid over {0, …, Degree−1}.
// Element 0 is always the identity.
type Monoid struct {
	Degree   int       // number of points acted upon (= DFA states)
	Elems    [][]int16 // element id → transformation vector
	Identity int       // always 0
	Gens     []int     // ids of the generators (one per DFA byte class)

	index map[string]int
}

// Transition enumerates the transition monoid of a complete DFA: the
// closure of the per-byte-class transformations under composition,
// together with the identity. cap > 0 bounds the element count.
//
// This is the same set the correspondence construction reaches
// (Algorithm 4), computed here by Cayley-graph closure as an independent
// oracle for the |D-SFA| = |monoid| tests.
func Transition(d *dfa.DFA, cap int) (*Monoid, error) {
	n := d.NumStates
	m := &Monoid{Degree: n, index: make(map[string]int)}

	id := make([]int16, n)
	for q := range id {
		id[q] = int16(q)
	}
	m.add(id)

	// One generator per byte class.
	gens := make([][]int16, d.BC.Count)
	for c := 0; c < d.BC.Count; c++ {
		g := make([]int16, n)
		for q := 0; q < n; q++ {
			g[q] = int16(d.NextClass(int32(q), c))
		}
		gens[c] = g
		m.Gens = append(m.Gens, m.add(g))
	}

	// BFS closure: every element times every generator.
	h := make([]int16, n)
	for i := 0; i < len(m.Elems); i++ {
		for _, g := range gens {
			core.ComposeVec(h, m.Elems[i], g)
			if _, ok := m.index[key16(h)]; !ok {
				if cap > 0 && len(m.Elems) >= cap {
					return nil, fmt.Errorf("%w (cap %d)", ErrTooLarge, cap)
				}
				m.add(append([]int16(nil), h...))
			}
		}
	}
	return m, nil
}

func (m *Monoid) add(v []int16) int {
	k := key16(v)
	if i, ok := m.index[k]; ok {
		return i
	}
	i := len(m.Elems)
	m.Elems = append(m.Elems, v)
	m.index[k] = i
	return i
}

func key16(v []int16) string {
	b := make([]byte, len(v)*2)
	for i, x := range v {
		b[i*2] = byte(x)
		b[i*2+1] = byte(uint16(x) >> 8)
	}
	return string(b)
}

// Size returns the number of elements (the syntactic complexity when the
// monoid came from a minimal DFA).
func (m *Monoid) Size() int { return len(m.Elems) }

// Lookup returns the id of the element equal to vector v, if present.
func (m *Monoid) Lookup(v []int16) (int, bool) {
	i, ok := m.index[key16(v)]
	return i, ok
}

// Compose returns the id of Elems[i] ⊙ Elems[j] ("i then j").
// The monoid is closed, so the lookup always succeeds.
func (m *Monoid) Compose(i, j int) int {
	h := make([]int16, m.Degree)
	core.ComposeVec(h, m.Elems[i], m.Elems[j])
	k, ok := m.Lookup(h)
	if !ok {
		panic("monoid: closure violated")
	}
	return k
}

// Idempotents returns the ids of all elements with e ⊙ e = e. Idempotents
// are the anchors of Green's-relation structure and a standard measure of
// monoid complexity.
func (m *Monoid) Idempotents() []int {
	var out []int
	for i := range m.Elems {
		if m.Compose(i, i) == i {
			out = append(out, i)
		}
	}
	return out
}

// Zero returns the absorbing element (z ⊙ x = x ⊙ z = z for all x), if
// one exists. For languages whose minimal DFA has a dead sink it is the
// everywhere-dead transformation.
func (m *Monoid) Zero() (int, bool) {
	for i := range m.Elems {
		isZero := true
		for j := range m.Elems {
			if m.Compose(i, j) != i || m.Compose(j, i) != i {
				isZero = false
				break
			}
		}
		if isZero {
			return i, true
		}
	}
	return 0, false
}

// IsGroup reports whether every element is invertible (the monoid is a
// permutation group). Star-free languages have aperiodic — maximally
// non-group — monoids; counter languages like (ab)* contain nontrivial
// group structure.
func (m *Monoid) IsGroup() bool {
	for _, v := range m.Elems {
		seen := make([]bool, m.Degree)
		for _, x := range v {
			if seen[x] {
				return false
			}
			seen[x] = true
		}
	}
	return true
}

// SyntacticComplexity returns the size of the syntactic monoid of L(d):
// the transition monoid of the minimized DFA. Per Sect. VII-A this equals
// the total state count of the minimal D-SFA.
func SyntacticComplexity(d *dfa.DFA, cap int) (int, error) {
	m, err := Transition(dfa.Minimize(d), cap)
	if err != nil {
		return 0, err
	}
	return m.Size(), nil
}
