package monoid

// Aperiodicity — the other classical application of the syntactic monoid
// (Schützenberger): a regular language is star-free (expressible with
// concatenation, union and complement but no Kleene star) exactly when
// its syntactic monoid contains no nontrivial subgroup, i.e. every
// element satisfies x^(k+1) = x^k for some k. Exposing it here rounds out
// the Sect. VII-A toolbox: syntactic complexity measures SFA size,
// aperiodicity classifies the language.

// IsAperiodic reports whether the monoid has no nontrivial subgroups:
// for every element x the sequence x, x², x³, … reaches an idempotent
// fixed point x^k = x^(k+1).
func (m *Monoid) IsAperiodic() bool {
	for i := range m.Elems {
		if !m.elementAperiodic(i) {
			return false
		}
	}
	return true
}

// elementAperiodic follows powers of x until they cycle; aperiodic means
// the cycle has length 1.
func (m *Monoid) elementAperiodic(x int) bool {
	seen := map[int]int{x: 1} // element → first power reaching it
	cur, power := x, 1
	for {
		cur = m.Compose(cur, x)
		power++
		if first, ok := seen[cur]; ok {
			// Cycle of length power-first; aperiodic iff x^k = x^(k+1),
			// i.e. the cycle is a fixed point.
			return power-first == 1
		}
		seen[cur] = power
	}
}

// GroupKernelSize returns the number of elements lying in nontrivial
// subgroups — 0 exactly when the monoid is aperiodic. It is a cheap
// "how far from star-free" measure: for the full transformation monoid
// it counts every element of every H-class that is a group.
func (m *Monoid) GroupKernelSize() int {
	n := 0
	for i := range m.Elems {
		if !m.elementAperiodic(i) {
			n++
		}
	}
	return n
}
