package monoid

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
)

func TestTransitionMonoidOfAbStar(t *testing.T) {
	// Table I: the SFA of (ab)* has six states, which are exactly the six
	// elements of the transition monoid of its 3-state minimal DFA.
	d := dfa.MustCompilePattern("(ab)*")
	m, err := Transition(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 6 {
		t.Fatalf("monoid size = %d, want 6", m.Size())
	}
	// Identity element is element 0 and is idempotent.
	if m.Compose(m.Identity, m.Identity) != m.Identity {
		t.Error("identity not idempotent")
	}
	// Idempotents of this monoid: id, dead, f4 (after ab), f5 (after ba).
	if got := len(m.Idempotents()); got != 4 {
		t.Errorf("idempotents = %d, want 4", got)
	}
	// The all-dead transformation is the zero.
	if _, ok := m.Zero(); !ok {
		t.Error("expected a zero element")
	}
	if m.IsGroup() {
		t.Error("(ab)*'s monoid is not a group (it has a zero)")
	}
}

// TestSyntacticComplexityEqualsSFASize is the paper's Sect. VII-A claim:
// the size of the minimal D-SFA equals the syntactic complexity.
func TestSyntacticComplexityEqualsSFASize(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		pat := randPattern(r, 3)
		d := dfa.MustCompilePattern(pat)
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := SyntacticComplexity(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sc != s.NumStates {
			t.Fatalf("pattern %q: syntactic complexity %d ≠ |D-SFA| %d",
				pat, sc, s.NumStates)
		}
	}
}

func TestMonoidClosureAndAssociativity(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{2}[5-9]{2})*")
	m, err := Transition(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		i, j, k := r.Intn(m.Size()), r.Intn(m.Size()), r.Intn(m.Size())
		if m.Compose(m.Compose(i, j), k) != m.Compose(i, m.Compose(j, k)) {
			t.Fatal("associativity violated")
		}
	}
	// Identity behaves as a two-sided unit.
	for i := 0; i < m.Size(); i++ {
		if m.Compose(m.Identity, i) != i || m.Compose(i, m.Identity) != i {
			t.Fatal("identity not a unit")
		}
	}
}

func TestCyclicGroupMonoid(t *testing.T) {
	// A pure n-cycle generates the cyclic group Z_n: a monoid that IS a
	// group, with exactly one idempotent (the identity) and no zero.
	n := 6
	cyc := make([]int32, n)
	for q := 0; q < n; q++ {
		cyc[q] = int32((q + 1) % n)
	}
	accept := make([]bool, n)
	accept[0] = true
	d, err := FromTransformations(map[byte][]int32{'c': cyc}, 0, accept)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Transition(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != n {
		t.Errorf("cyclic monoid size = %d, want %d", m.Size(), n)
	}
	if !m.IsGroup() {
		t.Error("Z_n should be a group")
	}
	if got := len(m.Idempotents()); got != 1 {
		t.Errorf("idempotents = %d, want 1", got)
	}
	if _, ok := m.Zero(); ok {
		t.Error("a nontrivial group has no zero")
	}
}

func TestFact1ExponentialBlowup(t *testing.T) {
	// Example 3 / Fact 1: linear NFA, exponential minimal DFA. The paper's
	// NFA for [ap]*[al][alp]{k−1} has k+1 states and its determinization
	// reaches all 2^(k+1) bit-vectors (including the empty one — our dead
	// state). The Glushkov NFA carries one extra initial state.
	for k := 1; k <= 9; k++ {
		a, d, err := BuildFact1(k)
		if err != nil {
			t.Fatal(err)
		}
		if a.NumStates != k+2 {
			t.Errorf("k=%d: Glushkov |N| = %d, want %d", k, a.NumStates, k+2)
		}
		if want := 1 << (k + 1); d.NumStates != want {
			t.Errorf("k=%d: |D| = %d, want 2^%d = %d", k, d.NumStates, k+1, want)
		}
		if d.LiveSize() != d.NumStates-1 {
			t.Errorf("k=%d: exactly the empty subset should be dead", k)
		}
	}
}

func TestFact2FullTransformationMonoid(t *testing.T) {
	// Fact 2: |Sd| = |D|^|D|. The witness DFA's transition monoid is the
	// full transformation monoid T_n.
	pow := func(a, b int) int {
		r := 1
		for i := 0; i < b; i++ {
			r *= a
		}
		return r
	}
	for n := 2; n <= 4; n++ {
		d, err := Fact2DFA(n)
		if err != nil {
			t.Fatal(err)
		}
		// The DFA must be minimal already.
		if m := dfa.Minimize(d); m.NumStates != d.NumStates {
			t.Fatalf("n=%d: witness DFA not minimal (%d → %d)", n, d.NumStates, m.NumStates)
		}
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := pow(n, n); s.NumStates != want {
			t.Errorf("n=%d: |Sd| = %d, want n^n = %d", n, s.NumStates, want)
		}
		mo, err := Transition(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if mo.Size() != s.NumStates {
			t.Errorf("n=%d: monoid %d ≠ SFA %d", n, mo.Size(), s.NumStates)
		}
	}
}

func TestFact2DFAValidations(t *testing.T) {
	if _, err := Fact2DFA(1); err == nil {
		t.Error("n=1 should be rejected")
	}
	// FromTransformations input validation.
	if _, err := FromTransformations(map[byte][]int32{'x': {0, 1}}, 0, []bool{true}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FromTransformations(map[byte][]int32{'x': {5}}, 0, []bool{true}); err == nil {
		t.Error("out-of-range target should error")
	}
	if _, err := FromTransformations(nil, 0, nil); err == nil {
		t.Error("empty state set should error")
	}
	if _, err := FromTransformations(map[byte][]int32{'x': {0}}, 3, []bool{true}); err == nil {
		t.Error("start out of range should error")
	}
}

func TestTransitionCap(t *testing.T) {
	d, err := Fact2DFA(4) // 256 elements
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Transition(d, 10); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestDevadzeCorollaryShape(t *testing.T) {
	// Corollary 3.1's contrapositive, checked in the small: N-SFA of a
	// k-state NFA never exceeds 2^(k²), and for the tiny Glushkov NFAs
	// here it stays far below — finding near-bound N-SFAs needs
	// exponentially many generators (Devadze), so random/structured small
	// regexes cannot reach it.
	d := dfa.MustCompilePattern("(ab|ba)*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := d.NumStates
	bound := 1
	for i := 0; i < k*k && bound < 1<<30; i++ {
		bound *= 2
	}
	if s.NumStates >= bound {
		t.Errorf("|Sd| = %d reached the 2^(k²) = %d bound", s.NumStates, bound)
	}
}

func randPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		return string(byte('a' + r.Intn(3)))
	}
	switch r.Intn(6) {
	case 0:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 1:
		return "(?:" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 2:
		return "(?:" + randPattern(r, depth-1) + ")*"
	case 3:
		return "(?:" + randPattern(r, depth-1) + ")?"
	case 4:
		return "(?:" + randPattern(r, depth-1) + ")+"
	default:
		return randPattern(r, depth-1)
	}
}
