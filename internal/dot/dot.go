// Package dot renders automata in Graphviz DOT form, reproducing the
// paper's automaton figures: Fig. 1 (DFA of (ab)*), Fig. 2 (its SFA),
// Fig. 4/5 (DFA and D-SFA of r2), Fig. 11/12 (explosion witnesses).
// Accepting states are doubled circles, as in the paper.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// DFA renders d. With hideDead, the dead sink and its edges are omitted —
// the way the paper draws Figs. 1 and 4.
func DFA(d *dfa.DFA, name string, hideDead bool) string {
	var sb strings.Builder
	header(&sb, name)
	for q := 0; q < d.NumStates; q++ {
		if hideDead && int32(q) == d.Dead {
			continue
		}
		node(&sb, fmt.Sprintf("%d", q), d.Accept[q])
	}
	fmt.Fprintf(&sb, "  __start [shape=point];\n  __start -> %d;\n", d.Start)
	for q := 0; q < d.NumStates; q++ {
		if hideDead && int32(q) == d.Dead {
			continue
		}
		// Merge classes with the same target into one labelled edge.
		byTarget := map[int32]syntax.CharSet{}
		for c := 0; c < d.BC.Count; c++ {
			to := d.NextClass(int32(q), c)
			set := byTarget[to]
			set.AddSet(classSet(d.BC, c))
			byTarget[to] = set
		}
		for _, to := range sortedKeys(byTarget) {
			if hideDead && to == d.Dead {
				continue
			}
			edge(&sb, fmt.Sprintf("%d", q), fmt.Sprintf("%d", to), byTarget[to].String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// NFA renders a; ε-edges are dashed.
func NFA(a *nfa.NFA, name string) string {
	var sb strings.Builder
	header(&sb, name)
	for q := 0; q < a.NumStates; q++ {
		node(&sb, fmt.Sprintf("%d", q), a.Accept[q])
	}
	for i, s := range a.Start {
		fmt.Fprintf(&sb, "  __start%d [shape=point];\n  __start%d -> %d;\n", i, i, s)
	}
	for q := 0; q < a.NumStates; q++ {
		byTarget := map[int32]syntax.CharSet{}
		for _, e := range a.Edges[q] {
			set := byTarget[e.To]
			set.AddSet(e.Set)
			byTarget[e.To] = set
		}
		for _, to := range sortedKeys(byTarget) {
			edge(&sb, fmt.Sprintf("%d", q), fmt.Sprintf("%d", to), byTarget[to].String())
		}
		if a.Eps != nil {
			for _, to := range a.Eps[q] {
				fmt.Fprintf(&sb, "  %d -> %d [style=dashed, label=\"ε\"];\n", q, to)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DSFA renders s with states labelled f0, f1, … in construction order
// (f0 is the identity, matching the paper's naming in Fig. 2/Table I).
// With hideDead, the everywhere-dead mapping is omitted.
func DSFA(s *core.DSFA, name string, hideDead bool) string {
	var sb strings.Builder
	header(&sb, name)
	skip := func(id int32) bool { return hideDead && id == s.EmptyID }
	for q := int32(0); q < int32(s.NumStates); q++ {
		if skip(q) {
			continue
		}
		node(&sb, fmt.Sprintf("f%d", q), s.Accept[q])
	}
	fmt.Fprintf(&sb, "  __start [shape=point];\n  __start -> f%d;\n", s.Start)
	bc := s.BC()
	for q := int32(0); q < int32(s.NumStates); q++ {
		if skip(q) {
			continue
		}
		byTarget := map[int32]syntax.CharSet{}
		for c := 0; c < bc.Count; c++ {
			to := s.NextClass(q, c)
			set := byTarget[to]
			set.AddSet(classSet(bc, c))
			byTarget[to] = set
		}
		for _, to := range sortedKeys(byTarget) {
			if skip(to) {
				continue
			}
			edge(&sb, fmt.Sprintf("f%d", q), fmt.Sprintf("f%d", to), byTarget[to].String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// MappingTable renders the state mappings of a D-SFA in the style of the
// paper's Table I: one column per SFA state, one row per DFA state.
func MappingTable(s *core.DSFA) string {
	var sb strings.Builder
	sb.WriteString("state")
	for id := 0; id < s.NumStates; id++ {
		fmt.Fprintf(&sb, "\tf%d", id)
	}
	sb.WriteByte('\n')
	for q := 0; q < s.D.NumStates; q++ {
		fmt.Fprintf(&sb, "%d", q)
		for id := int32(0); id < int32(s.NumStates); id++ {
			fmt.Fprintf(&sb, "\t%d↦{%d}", q, s.Map(id)[q])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func header(sb *strings.Builder, name string) {
	fmt.Fprintf(sb, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name)
}

func node(sb *strings.Builder, id string, accept bool) {
	shape := "circle"
	if accept {
		shape = "doublecircle"
	}
	fmt.Fprintf(sb, "  %s [shape=%s];\n", id, shape)
}

func edge(sb *strings.Builder, from, to, label string) {
	fmt.Fprintf(sb, "  %s -> %s [label=%q];\n", from, to, label)
}

func classSet(bc *nfa.ByteClasses, c int) (set syntax.CharSet) {
	for b := 0; b < 256; b++ {
		if int(bc.Of[b]) == c {
			set.AddByte(byte(b))
		}
	}
	return set
}

func sortedKeys(m map[int32]syntax.CharSet) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
