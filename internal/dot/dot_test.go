package dot

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

func TestDFADotFig1(t *testing.T) {
	d := dfa.MustCompilePattern("(ab)*")
	out := DFA(d, "D1", true)
	if !strings.HasPrefix(out, "digraph \"D1\"") {
		t.Error("missing digraph header")
	}
	// Fig. 1 shows two live states; the dead one is hidden.
	if strings.Count(out, "doublecircle") != 1 {
		t.Errorf("want exactly 1 accepting state, got:\n%s", out)
	}
	if strings.Contains(out, "-> 2") && d.Dead == 2 {
		t.Error("dead state leaked into the hidden-dead rendering")
	}
	full := DFA(d, "D1", false)
	if len(full) <= len(out) {
		t.Error("full rendering should include the dead state")
	}
}

func TestDSFADotFig2(t *testing.T) {
	d := dfa.MustCompilePattern("(ab)*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := DSFA(s, "S1", false)
	// Fig. 2: six states f0..f5, two accepting (f0 and f4).
	for _, f := range []string{"f0", "f1", "f2", "f3", "f4", "f5"} {
		if !strings.Contains(out, f+" [shape=") {
			t.Errorf("missing state %s", f)
		}
	}
	if got := strings.Count(out, "doublecircle"); got != 2 {
		t.Errorf("accepting SFA states = %d, want 2", got)
	}
	hidden := DSFA(s, "S1", true)
	if strings.Count(hidden, "[shape=circle]")+strings.Count(hidden, "doublecircle") >=
		strings.Count(out, "[shape=circle]")+strings.Count(out, "doublecircle") {
		t.Error("hideDead did not drop a state")
	}
}

func TestNFADot(t *testing.T) {
	a, err := nfa.Glushkov(syntax.MustParse("(ab)*", 0))
	if err != nil {
		t.Fatal(err)
	}
	out := NFA(a, "N1")
	if !strings.Contains(out, "__start0") {
		t.Error("missing start marker")
	}
	th, err := nfa.Thompson(syntax.MustParse("a|b", 0))
	if err != nil {
		t.Fatal(err)
	}
	out = NFA(th, "T1")
	if !strings.Contains(out, "style=dashed") {
		t.Error("ε-edges should render dashed")
	}
}

func TestMappingTableShape(t *testing.T) {
	d := dfa.MustCompilePattern("(ab)*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := MappingTable(s)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header plus one row per DFA state (3 states incl. dead).
	if len(lines) != 1+d.NumStates {
		t.Errorf("table has %d lines, want %d", len(lines), 1+d.NumStates)
	}
	if !strings.HasPrefix(lines[0], "state\tf0") {
		t.Errorf("header = %q", lines[0])
	}
}
