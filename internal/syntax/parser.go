package syntax

import (
	"fmt"
)

// ParseError describes a syntax error in a pattern with its byte offset.
type ParseError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("syntax: %s at offset %d in %q", e.Msg, e.Pos, e.Pattern)
}

// MaxRepeat bounds counted repetition {n,m}. The SNORT rules exercised by
// the paper use counters up to 1024; the paper's own r_n family goes to
// n = 500. Larger counters would explode the Glushkov position set.
const MaxRepeat = 2000

// Flags alter parsing behaviour. They correspond to the PCRE modifiers
// found after the closing delimiter of SNORT pcre options.
type Flags uint8

const (
	// FoldCase makes literals and classes case-insensitive ((?i) / /i).
	FoldCase Flags = 1 << iota
	// DotAll makes '.' match '\n' too ((?s) / /s).
	DotAll
)

// Parse parses a pattern into a simplified AST.
func Parse(pattern string, flags Flags) (*Node, error) {
	p := &parser{src: pattern, flags: flags}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.src) {
		return nil, p.errorf("unexpected %q", p.src[p.pos])
	}
	return Simplify(n), nil
}

// MustParse is Parse for tests and tables of known-good patterns.
func MustParse(pattern string, flags Flags) *Node {
	n, err := Parse(pattern, flags)
	if err != nil {
		panic(err)
	}
	return n
}

// ParsePCRE parses a /pattern/flags form as found in SNORT pcre options,
// accepting the modifiers i and s (others that do not affect a byte-level
// whole-input matcher, such as m and x-less forms, are rejected).
func ParsePCRE(delimited string) (*Node, Flags, error) {
	if len(delimited) < 2 || delimited[0] != '/' {
		return nil, 0, fmt.Errorf("syntax: pcre form must be /pattern/flags, got %q", delimited)
	}
	end := -1
	for i := len(delimited) - 1; i > 0; i-- {
		if delimited[i] == '/' {
			end = i
			break
		}
	}
	if end <= 0 {
		return nil, 0, fmt.Errorf("syntax: unterminated pcre pattern %q", delimited)
	}
	var flags Flags
	for _, f := range delimited[end+1:] {
		switch f {
		case 'i':
			flags |= FoldCase
		case 's':
			flags |= DotAll
		case 'm':
			// ^/$ are treated as text anchors by this matcher anyway.
		default:
			return nil, 0, fmt.Errorf("syntax: unsupported pcre flag %q in %q", f, delimited)
		}
	}
	n, err := Parse(delimited[1:end], flags)
	return n, flags, err
}

type parser struct {
	src   string
	pos   int
	flags Flags
	depth int
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pattern: p.src, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) eof() bool  { return p.pos >= len(p.src) }
func (p *parser) peek() byte { return p.src[p.pos] }
func (p *parser) next() byte { b := p.src[p.pos]; p.pos++; return b }
func (p *parser) accept(b byte) bool {
	if !p.eof() && p.peek() == b {
		p.pos++
		return true
	}
	return false
}

// parseAlt parses alternation: concat ('|' concat)*.
func (p *parser) parseAlt() (*Node, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	if p.eof() || p.peek() != '|' {
		return first, nil
	}
	subs := []*Node{first}
	for p.accept('|') {
		n, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	return &Node{Op: OpAlt, Sub: subs}, nil
}

// parseConcat parses a (possibly empty) sequence of repeated atoms.
func (p *parser) parseConcat() (*Node, error) {
	var subs []*Node
	for !p.eof() && p.peek() != '|' && p.peek() != ')' {
		n, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, n)
	}
	switch len(subs) {
	case 0:
		return &Node{Op: OpEmpty}, nil
	case 1:
		return subs[0], nil
	}
	return &Node{Op: OpConcat, Sub: subs}, nil
}

// parseRepeat parses an atom followed by any number of postfix operators
// (* + ? {n,m}), applied left to right.
func (p *parser) parseRepeat() (*Node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		switch p.peek() {
		case '*':
			p.pos++
			n = &Node{Op: OpStar, Sub: []*Node{n}}
		case '+':
			p.pos++
			n = &Node{Op: OpPlus, Sub: []*Node{n}}
		case '?':
			p.pos++
			n = &Node{Op: OpQuest, Sub: []*Node{n}}
		case '{':
			save := p.pos
			rep, ok, err := p.tryParseCounts()
			if err != nil {
				return nil, err
			}
			if !ok {
				// A '{' that does not open a valid counter is a literal,
				// as in PCRE.
				p.pos = save
				return n, nil
			}
			rep.Sub = []*Node{n}
			n = rep
		default:
			return n, nil
		}
		if n.Op != OpClass && anchorOperand(n) {
			return nil, p.errorf("repetition of anchor")
		}
	}
	return n, nil
}

func anchorOperand(n *Node) bool {
	return len(n.Sub) == 1 && n.Sub[0].Op == OpAnchor
}

// tryParseCounts parses "{n}", "{n,}", or "{n,m}" starting at '{'.
// It reports ok=false (with p.pos unspecified) when the braces do not form
// a valid counter, so the caller can fall back to a literal '{'.
func (p *parser) tryParseCounts() (*Node, bool, error) {
	p.pos++ // consume '{'
	min, ok := p.parseInt()
	if !ok {
		return nil, false, nil
	}
	max := min
	if p.accept(',') {
		if p.accept('}') {
			if min > MaxRepeat {
				return nil, false, p.errorf("repeat count %d exceeds %d", min, MaxRepeat)
			}
			return &Node{Op: OpRepeat, Min: min, Max: -1}, true, nil
		}
		max, ok = p.parseInt()
		if !ok {
			return nil, false, nil
		}
	}
	if !p.accept('}') {
		return nil, false, nil
	}
	if max < min {
		return nil, false, p.errorf("invalid repeat count {%d,%d}", min, max)
	}
	if max > MaxRepeat {
		return nil, false, p.errorf("repeat count %d exceeds %d", max, MaxRepeat)
	}
	return &Node{Op: OpRepeat, Min: min, Max: max}, true, nil
}

func (p *parser) parseInt() (int, bool) {
	start := p.pos
	v := 0
	for !p.eof() && p.peek() >= '0' && p.peek() <= '9' {
		v = v*10 + int(p.next()-'0')
		if v > 10*MaxRepeat {
			break
		}
	}
	return v, p.pos > start
}

// parseAtom parses a single indivisible unit: a group, class, escape,
// anchor, dot, or literal byte.
func (p *parser) parseAtom() (*Node, error) {
	if p.eof() {
		return nil, p.errorf("missing atom")
	}
	switch b := p.peek(); b {
	case '(':
		return p.parseGroup()
	case '[':
		set, err := p.parseClass()
		if err != nil {
			return nil, err
		}
		return &Node{Op: OpClass, Set: set}, nil
	case '\\':
		return p.parseEscape()
	case '^':
		p.pos++
		return &Node{Op: OpAnchor, Anchor: AnchorBegin}, nil
	case '$':
		p.pos++
		return &Node{Op: OpAnchor, Anchor: AnchorEnd}, nil
	case '.':
		p.pos++
		if p.flags&DotAll != 0 {
			return &Node{Op: OpClass, Set: AnyByte()}, nil
		}
		return &Node{Op: OpClass, Set: AnyNoNL()}, nil
	case '*', '+', '?':
		return nil, p.errorf("missing operand for %q", b)
	case ')':
		return nil, p.errorf("unmatched ')'")
	default:
		p.pos++
		var set CharSet
		set.AddByte(b)
		if p.flags&FoldCase != 0 {
			set.Fold()
		}
		return &Node{Op: OpClass, Set: set}, nil
	}
}

// parseGroup parses "(...)", "(?:...)", and "(?flags:...)" /"(?flags)".
// Capturing and non-capturing groups are equivalent for acceptance.
func (p *parser) parseGroup() (*Node, error) {
	p.pos++ // consume '('
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > 500 {
		return nil, p.errorf("expression nests too deeply")
	}
	savedFlags := p.flags
	if p.accept('?') {
		// (?i), (?s), (?is:...), (?:...), (?=...) unsupported lookarounds.
		for !p.eof() {
			switch p.peek() {
			case 'i':
				p.flags |= FoldCase
				p.pos++
				continue
			case 's':
				p.flags |= DotAll
				p.pos++
				continue
			case '-':
				p.pos++
				for !p.eof() && (p.peek() == 'i' || p.peek() == 's') {
					if p.peek() == 'i' {
						p.flags &^= FoldCase
					} else {
						p.flags &^= DotAll
					}
					p.pos++
				}
				continue
			case ':':
				p.pos++
			case ')':
				// Flag-setting group: applies to the rest of the enclosing
				// group, like PCRE.
				p.pos++
				return &Node{Op: OpEmpty}, nil
			case '=', '!', '<':
				return nil, p.errorf("lookaround groups are not supported")
			default:
				return nil, p.errorf("unrecognized group flag %q", p.peek())
			}
			break
		}
		n, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if !p.accept(')') {
			return nil, p.errorf("missing ')'")
		}
		p.flags = savedFlags
		return n, nil
	}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if !p.accept(')') {
		return nil, p.errorf("missing ')'")
	}
	return n, nil
}

// parseClass parses "[...]" starting at '['.
func (p *parser) parseClass() (CharSet, error) {
	p.pos++ // consume '['
	var set CharSet
	negate := p.accept('^')
	first := true
	for {
		if p.eof() {
			return set, p.errorf("missing ']'")
		}
		if p.peek() == ']' && !first {
			p.pos++
			break
		}
		first = false
		lo, isSet, sub, err := p.classAtom()
		if err != nil {
			return set, err
		}
		if isSet {
			set.AddSet(sub)
			continue
		}
		// Possible range lo-hi.
		if !p.eof() && p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, hiIsSet, _, err := p.classAtom()
			if err != nil {
				return set, err
			}
			if hiIsSet {
				return set, p.errorf("invalid range endpoint")
			}
			if hi < lo {
				return set, p.errorf("invalid class range %q-%q", lo, hi)
			}
			set.AddRange(lo, hi)
			continue
		}
		set.AddByte(lo)
	}
	if p.flags&FoldCase != 0 {
		set.Fold()
	}
	if negate {
		set.Negate()
	}
	if set.IsEmpty() {
		return set, p.errorf("empty character class")
	}
	return set, nil
}

// classAtom parses one class element: either a single byte (isSet=false)
// or a multi-byte escape class such as \d (isSet=true).
func (p *parser) classAtom() (b byte, isSet bool, set CharSet, err error) {
	c := p.next()
	if c != '\\' {
		return c, false, set, nil
	}
	if p.eof() {
		return 0, false, set, p.errorf("trailing backslash")
	}
	e := p.next()
	switch e {
	case 'd':
		return 0, true, Digit(), nil
	case 'D':
		return 0, true, negated(Digit()), nil
	case 'w':
		return 0, true, Word(), nil
	case 'W':
		return 0, true, negated(Word()), nil
	case 's':
		return 0, true, Space(), nil
	case 'S':
		return 0, true, negated(Space()), nil
	}
	b, err = p.escapedByte(e)
	return b, false, set, err
}

// parseEscape parses a top-level escape sequence starting at '\'.
func (p *parser) parseEscape() (*Node, error) {
	p.pos++ // consume '\'
	if p.eof() {
		return nil, p.errorf("trailing backslash")
	}
	e := p.next()
	var set CharSet
	switch e {
	case 'd':
		set = Digit()
	case 'D':
		set = negated(Digit())
	case 'w':
		set = Word()
	case 'W':
		set = negated(Word())
	case 's':
		set = Space()
	case 'S':
		set = negated(Space())
	case 'b', 'B', 'A', 'z', 'Z':
		return nil, p.errorf(`escape \%c (zero-width assertion) is not supported`, e)
	default:
		b, err := p.escapedByte(e)
		if err != nil {
			return nil, err
		}
		set.AddByte(b)
		if p.flags&FoldCase != 0 {
			set.Fold()
		}
	}
	return &Node{Op: OpClass, Set: set}, nil
}

// escapedByte resolves a single-byte escape whose introducing character e
// has already been consumed.
func (p *parser) escapedByte(e byte) (byte, error) {
	switch e {
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 't':
		return '\t', nil
	case 'f':
		return '\f', nil
	case 'v':
		return '\v', nil
	case 'a':
		return 7, nil
	case 'e':
		return 27, nil
	case '0':
		return 0, nil
	case 'x':
		var v, n int
		for n < 2 && !p.eof() && isHex(p.peek()) {
			v = v*16 + hexVal(p.next())
			n++
		}
		if n == 0 {
			return 0, p.errorf(`\x must be followed by hex digits`)
		}
		return byte(v), nil
	}
	if e >= '1' && e <= '9' {
		return 0, p.errorf("backreferences are not supported")
	}
	// Any other escaped character stands for itself (\., \*, \/, ...).
	return e, nil
}

func isHex(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

func hexVal(b byte) int {
	switch {
	case b <= '9':
		return int(b - '0')
	case b >= 'a':
		return int(b-'a') + 10
	default:
		return int(b-'A') + 10
	}
}
