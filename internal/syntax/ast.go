package syntax

import (
	"fmt"
	"strings"
)

// Op identifies the kind of a regular-expression AST node.
type Op uint8

// The operators of the regular-expression algebra. OpEmpty is the empty
// word ε; OpNone is the empty language ∅ (only produced by simplification
// of impossible constructs such as an empty character class).
const (
	OpNone   Op = iota // ∅, matches nothing
	OpEmpty            // ε, matches the empty word
	OpClass            // a single byte drawn from Set
	OpConcat           // Sub[0] Sub[1] ... in sequence
	OpAlt              // Sub[0] | Sub[1] | ...
	OpStar             // Sub[0]*
	OpPlus             // Sub[0]+
	OpQuest            // Sub[0]?
	OpRepeat           // Sub[0]{Min,Max}; Max = -1 means unbounded
	OpAnchor           // ^ or $, width-zero assertion (AnchorBegin/AnchorEnd)
)

// Anchor kinds for OpAnchor nodes.
const (
	AnchorBegin = 0 // ^
	AnchorEnd   = 1 // $
)

func (op Op) String() string {
	switch op {
	case OpNone:
		return "None"
	case OpEmpty:
		return "Empty"
	case OpClass:
		return "Class"
	case OpConcat:
		return "Concat"
	case OpAlt:
		return "Alt"
	case OpStar:
		return "Star"
	case OpPlus:
		return "Plus"
	case OpQuest:
		return "Quest"
	case OpRepeat:
		return "Repeat"
	case OpAnchor:
		return "Anchor"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Node is a node of the regular-expression syntax tree.
type Node struct {
	Op     Op
	Set    CharSet // OpClass only
	Sub    []*Node // operands
	Min    int     // OpRepeat lower bound
	Max    int     // OpRepeat upper bound, -1 for unbounded
	Anchor int     // OpAnchor kind
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Op: n.Op, Set: n.Set, Min: n.Min, Max: n.Max, Anchor: n.Anchor}
	if n.Sub != nil {
		c.Sub = make([]*Node, len(n.Sub))
		for i, s := range n.Sub {
			c.Sub[i] = s.Clone()
		}
	}
	return c
}

// Literal builds a concatenation of single-byte classes spelling s.
func Literal(s string) *Node {
	if s == "" {
		return &Node{Op: OpEmpty}
	}
	subs := make([]*Node, len(s))
	for i := 0; i < len(s); i++ {
		var set CharSet
		set.AddByte(s[i])
		subs[i] = &Node{Op: OpClass, Set: set}
	}
	if len(subs) == 1 {
		return subs[0]
	}
	return &Node{Op: OpConcat, Sub: subs}
}

// NumPositions counts the symbol positions (OpClass leaves) of the tree
// after repeat expansion; it is the "m" of the Glushkov construction and
// the length measure used in the paper's Table II ("m is length of regular
// expression").
func (n *Node) NumPositions() int {
	switch n.Op {
	case OpClass:
		return 1
	case OpRepeat:
		inner := n.Sub[0].NumPositions()
		if n.Max < 0 {
			// x{min,} expands to min copies plus a star over one copy.
			if n.Min == 0 {
				return inner
			}
			return n.Min * inner
		}
		return n.Max * inner
	}
	total := 0
	for _, s := range n.Sub {
		total += s.NumPositions()
	}
	return total
}

// String renders the tree back to a pattern. The output is parseable and
// equivalent to the original pattern but not necessarily byte-identical.
func (n *Node) String() string {
	var sb strings.Builder
	n.render(&sb, 0)
	return sb.String()
}

// precedence levels: 0 alternation, 1 concatenation, 2 repetition/atom.
func (n *Node) render(sb *strings.Builder, prec int) {
	paren := false
	wrap := func(need int) {
		if prec > need {
			sb.WriteString("(?:")
			paren = true
		}
	}
	switch n.Op {
	case OpNone:
		// ∅ has no native spelling; [^\x00-\xff] is an empty class.
		sb.WriteString(`[^\x00-\xff]`)
	case OpEmpty:
		sb.WriteString("(?:)")
	case OpClass:
		sb.WriteString(n.Set.String())
	case OpAnchor:
		if n.Anchor == AnchorBegin {
			sb.WriteByte('^')
		} else {
			sb.WriteByte('$')
		}
	case OpConcat:
		wrap(1)
		for _, s := range n.Sub {
			s.render(sb, 2)
		}
	case OpAlt:
		wrap(0)
		for i, s := range n.Sub {
			if i > 0 {
				sb.WriteByte('|')
			}
			s.render(sb, 1)
		}
	case OpStar, OpPlus, OpQuest:
		n.Sub[0].render(sb, 3)
		switch n.Op {
		case OpStar:
			sb.WriteByte('*')
		case OpPlus:
			sb.WriteByte('+')
		case OpQuest:
			sb.WriteByte('?')
		}
	case OpRepeat:
		n.Sub[0].render(sb, 3)
		if n.Max < 0 {
			fmt.Fprintf(sb, "{%d,}", n.Min)
		} else if n.Min == n.Max {
			fmt.Fprintf(sb, "{%d}", n.Min)
		} else {
			fmt.Fprintf(sb, "{%d,%d}", n.Min, n.Max)
		}
	}
	if paren {
		sb.WriteByte(')')
	}
}

// Dump renders the tree in a lisp-ish structural form for tests and
// debugging, e.g. (cat a (star b)).
func (n *Node) Dump() string {
	var sb strings.Builder
	n.dump(&sb)
	return sb.String()
}

func (n *Node) dump(sb *strings.Builder) {
	switch n.Op {
	case OpNone:
		sb.WriteString("none")
	case OpEmpty:
		sb.WriteString("eps")
	case OpClass:
		sb.WriteString(n.Set.String())
	case OpAnchor:
		if n.Anchor == AnchorBegin {
			sb.WriteString("bol")
		} else {
			sb.WriteString("eol")
		}
	case OpConcat, OpAlt:
		if n.Op == OpConcat {
			sb.WriteString("(cat")
		} else {
			sb.WriteString("(alt")
		}
		for _, s := range n.Sub {
			sb.WriteByte(' ')
			s.dump(sb)
		}
		sb.WriteByte(')')
	case OpStar:
		sb.WriteString("(star ")
		n.Sub[0].dump(sb)
		sb.WriteByte(')')
	case OpPlus:
		sb.WriteString("(plus ")
		n.Sub[0].dump(sb)
		sb.WriteByte(')')
	case OpQuest:
		sb.WriteString("(quest ")
		n.Sub[0].dump(sb)
		sb.WriteByte(')')
	case OpRepeat:
		fmt.Fprintf(sb, "(rep{%d,%d} ", n.Min, n.Max)
		n.Sub[0].dump(sb)
		sb.WriteByte(')')
	}
}
