package syntax

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCharSetAgainstModel property-checks the bitset implementation
// against a map-based model under random operation sequences.
func TestCharSetAgainstModel(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s CharSet
		model := map[byte]bool{}
		for op := 0; op < 60; op++ {
			switch r.Intn(4) {
			case 0:
				b := byte(r.Intn(256))
				s.AddByte(b)
				model[b] = true
			case 1:
				lo := byte(r.Intn(256))
				hi := lo + byte(r.Intn(256-int(lo)))
				s.AddRange(lo, hi)
				for c := int(lo); c <= int(hi); c++ {
					model[byte(c)] = true
				}
			case 2:
				s.Negate()
				for c := 0; c < 256; c++ {
					model[byte(c)] = !model[byte(c)]
				}
			case 3:
				var o CharSet
				b := byte(r.Intn(256))
				o.AddByte(b)
				s.AddSet(o)
				model[b] = true
			}
		}
		// Compare every byte, Len, Bytes and Ranges consistency.
		n := 0
		for c := 0; c < 256; c++ {
			if s.Contains(byte(c)) != model[byte(c)] {
				return false
			}
			if model[byte(c)] {
				n++
			}
		}
		if s.Len() != n || len(s.Bytes()) != n {
			return false
		}
		covered := 0
		for _, rg := range s.Ranges() {
			covered += int(rg[1]) - int(rg[0]) + 1
		}
		return covered == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFoldInvolution: folding twice equals folding once (idempotent), and
// folded sets are case-closed.
func TestFoldInvolution(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var s CharSet
		for i := 0; i < 10; i++ {
			s.AddByte(byte(r.Intn(256)))
		}
		once := s
		once.Fold()
		twice := once
		twice.Fold()
		if once != twice {
			return false
		}
		for c := byte('a'); c <= 'z'; c++ {
			if once.Contains(c) != once.Contains(c-'a'+'A') {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
