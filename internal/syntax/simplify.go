package syntax

// Simplify rewrites the tree into a small canonical form:
//
//   - nested concatenations and alternations are flattened;
//   - ε units are dropped from concatenations, ∅ annihilates them;
//   - ∅ branches are dropped from alternations;
//   - trivial repeats are unfolded: x{0} → ε, x{1} → x, x{0,1} → x?,
//     x{0,} → x*, x{1,} → x+;
//   - (x*)* , (x+)+ , (x?)? collapse to one operator.
//
// It never changes the recognized language. Counted repeats with
// non-trivial bounds are kept; ExpandRepeats removes them.
func Simplify(n *Node) *Node {
	if n == nil {
		return nil
	}
	for i, s := range n.Sub {
		n.Sub[i] = Simplify(s)
	}
	switch n.Op {
	case OpConcat:
		subs := make([]*Node, 0, len(n.Sub))
		for _, s := range n.Sub {
			switch s.Op {
			case OpEmpty:
				// ε is the unit of concatenation.
			case OpNone:
				return &Node{Op: OpNone}
			case OpConcat:
				subs = append(subs, s.Sub...)
			default:
				subs = append(subs, s)
			}
		}
		switch len(subs) {
		case 0:
			return &Node{Op: OpEmpty}
		case 1:
			return subs[0]
		}
		n.Sub = subs
		return n

	case OpAlt:
		subs := make([]*Node, 0, len(n.Sub))
		sawEmpty := false
		for _, s := range n.Sub {
			switch s.Op {
			case OpNone:
				// ∅ is the unit of alternation.
			case OpAlt:
				subs = append(subs, s.Sub...)
			case OpEmpty:
				if !sawEmpty {
					sawEmpty = true
					subs = append(subs, s)
				}
			default:
				subs = append(subs, s)
			}
		}
		switch len(subs) {
		case 0:
			return &Node{Op: OpNone}
		case 1:
			return subs[0]
		}
		n.Sub = subs
		return n

	case OpStar, OpPlus, OpQuest:
		s := n.Sub[0]
		switch s.Op {
		case OpEmpty:
			return &Node{Op: OpEmpty}
		case OpNone:
			if n.Op == OpPlus {
				return &Node{Op: OpNone}
			}
			return &Node{Op: OpEmpty}
		case OpStar:
			return s // (x*)* = x*; (x*)+ = x*; (x*)? = x*
		case OpPlus:
			if n.Op == OpPlus {
				return s
			}
			return &Node{Op: OpStar, Sub: s.Sub} // (x+)* = (x+)? ⊂ x*
		case OpQuest:
			if n.Op == OpQuest {
				return s
			}
			return &Node{Op: OpStar, Sub: s.Sub} // (x?)* = (x?)+ = x*
		}
		return n

	case OpRepeat:
		s := n.Sub[0]
		if s.Op == OpEmpty {
			return &Node{Op: OpEmpty}
		}
		if s.Op == OpNone {
			if n.Min == 0 {
				return &Node{Op: OpEmpty}
			}
			return &Node{Op: OpNone}
		}
		switch {
		case n.Min == 0 && n.Max == 0:
			return &Node{Op: OpEmpty}
		case n.Min == 1 && n.Max == 1:
			return s
		case n.Min == 0 && n.Max == 1:
			return Simplify(&Node{Op: OpQuest, Sub: []*Node{s}})
		case n.Min == 0 && n.Max == -1:
			return Simplify(&Node{Op: OpStar, Sub: []*Node{s}})
		case n.Min == 1 && n.Max == -1:
			return Simplify(&Node{Op: OpPlus, Sub: []*Node{s}})
		}
		return n
	}
	return n
}

// ExpandRepeats returns an equivalent tree with every OpRepeat node
// unfolded into concatenations of copies:
//
//	x{n}    →  x x … x               (n copies)
//	x{n,}   →  x x … x x*            (n copies and a star)
//	x{n,m}  →  x … x  x? … x?        (n copies, m-n optionals)
//
// The result contains only the operators consumed by the Glushkov and
// Thompson constructions. The input tree is not modified.
func ExpandRepeats(n *Node) *Node {
	if n == nil {
		return nil
	}
	if n.Op != OpRepeat {
		c := &Node{Op: n.Op, Set: n.Set, Min: n.Min, Max: n.Max, Anchor: n.Anchor}
		if n.Sub != nil {
			c.Sub = make([]*Node, len(n.Sub))
			for i, s := range n.Sub {
				c.Sub[i] = ExpandRepeats(s)
			}
		}
		return c
	}
	inner := ExpandRepeats(n.Sub[0])
	var subs []*Node
	for i := 0; i < n.Min; i++ {
		subs = append(subs, inner.Clone())
	}
	switch {
	case n.Max < 0:
		subs = append(subs, &Node{Op: OpStar, Sub: []*Node{inner.Clone()}})
	default:
		for i := n.Min; i < n.Max; i++ {
			subs = append(subs, &Node{Op: OpQuest, Sub: []*Node{inner.Clone()}})
		}
	}
	switch len(subs) {
	case 0:
		return &Node{Op: OpEmpty}
	case 1:
		return subs[0]
	}
	return Simplify(&Node{Op: OpConcat, Sub: subs})
}

// BracketForSearch rewrites e into (?s).* e (?s).*, honouring anchors: a
// leading ^ or trailing $ in the pattern suppresses the respective
// bracket. This is the whole-input-acceptance encoding of unanchored
// substring search, shared by the public API's WithSearch option and the
// corpus filters that must predict the automata it produces.
func BracketForSearch(node *Node) *Node {
	stripped, begin, end := StripAnchors(node)
	dotStar := func() *Node {
		return &Node{Op: OpStar, Sub: []*Node{
			{Op: OpClass, Set: AnyByte()},
		}}
	}
	subs := []*Node{}
	if !begin {
		subs = append(subs, dotStar())
	}
	subs = append(subs, stripped)
	if !end {
		subs = append(subs, dotStar())
	}
	return Simplify(&Node{Op: OpConcat, Sub: subs})
}

// StripAnchors removes ^ and $ assertions, returning the stripped tree and
// whether the pattern was anchored at its beginning and end. For the
// whole-input acceptance semantics used throughout the paper's experiments
// a leading ^ and a trailing $ are no-ops; an anchor in any other position
// could only match the empty text boundary, and this matcher treats it as ε
// (the common treatment in DFA-table matchers without multiline mode).
func StripAnchors(n *Node) (stripped *Node, begin, end bool) {
	begin = leadingAnchor(n, AnchorBegin)
	end = trailingAnchor(n, AnchorEnd)
	return Simplify(removeAnchors(n.Clone())), begin, end
}

func leadingAnchor(n *Node, kind int) bool {
	switch n.Op {
	case OpAnchor:
		return n.Anchor == kind
	case OpConcat:
		if len(n.Sub) > 0 {
			return leadingAnchor(n.Sub[0], kind)
		}
	case OpAlt:
		for _, s := range n.Sub {
			if !leadingAnchor(s, kind) {
				return false
			}
		}
		return len(n.Sub) > 0
	}
	return false
}

func trailingAnchor(n *Node, kind int) bool {
	switch n.Op {
	case OpAnchor:
		return n.Anchor == kind
	case OpConcat:
		if len(n.Sub) > 0 {
			return trailingAnchor(n.Sub[len(n.Sub)-1], kind)
		}
	case OpAlt:
		for _, s := range n.Sub {
			if !trailingAnchor(s, kind) {
				return false
			}
		}
		return len(n.Sub) > 0
	}
	return false
}

func removeAnchors(n *Node) *Node {
	if n.Op == OpAnchor {
		return &Node{Op: OpEmpty}
	}
	for i, s := range n.Sub {
		n.Sub[i] = removeAnchors(s)
	}
	return n
}
