package syntax

import (
	"strings"
	"testing"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		pattern string
		want    string // Dump form
	}{
		{"a", "a"},
		{"ab", "(cat a b)"},
		{"a|b", "(alt a b)"},
		{"a|b|c", "(alt a b c)"},
		{"a*", "(star a)"},
		{"a+", "(plus a)"},
		{"a?", "(quest a)"},
		{"(ab)*", "(star (cat a b))"},
		{"(a|b)c", "(cat (alt a b) c)"},
		{"", "eps"},
		{"a||b", "(alt a eps b)"},
		{"()", "eps"},
		{"(?:ab)", "(cat a b)"},
		{"a{3}", "(rep{3,3} a)"},
		{"a{2,5}", "(rep{2,5} a)"},
		{"a{2,}", "(rep{2,-1} a)"},
		{"a{0,1}", "(quest a)"},
		{"a{1}", "a"},
		{"a{0,}", "(star a)"},
		{"a{1,}", "(plus a)"},
		{"[0-4]", "[0-4]"},
		{"[abc]", "[a-c]"},
		{"[a-c-]", `[\-a-c]`},
		{"[]a]", `[\]a]`},
		{`\d`, `\d`},
		{`\.`, `\.`},
		{`\x41`, "A"},
		{`\x0a`, `\n`},
		{"a.b", `(cat a . b)`},
		{"^ab$", "(cat bol a b eol)"},
		{"a**", "(star a)"},
		{"(a*)*", "(star a)"},
		{"(a+)+", "(plus a)"},
		{"(a?)?", "(quest a)"},
		{"(a*)?", "(star a)"},
		{"a{", `(cat a \{)`},
		{"a{,3}", `(cat a \{ , 3 \})`},
		{"a{x}", `(cat a \{ x \})`},
	}
	for _, c := range cases {
		n, err := Parse(c.pattern, 0)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.pattern, err)
			continue
		}
		if got := n.Dump(); got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.pattern, got, c.want)
		}
	}
}

func TestParseDotDefaultExcludesNewline(t *testing.T) {
	n := MustParse(".", 0)
	if n.Op != OpClass {
		t.Fatalf("got %s", n.Dump())
	}
	if n.Set.Contains('\n') {
		t.Error(". should not contain \\n without DotAll")
	}
	if n.Set.Len() != 255 {
		t.Errorf(". has %d bytes, want 255", n.Set.Len())
	}
	n = MustParse(".", DotAll)
	if !n.Set.Contains('\n') || n.Set.Len() != 256 {
		t.Error("(?s). should match all 256 bytes")
	}
	n = MustParse("(?s).", 0)
	if !n.Set.Contains('\n') {
		t.Error("(?s) group flag should reach the dot")
	}
}

func TestParseFoldCase(t *testing.T) {
	n := MustParse("a", FoldCase)
	if !n.Set.Contains('A') || !n.Set.Contains('a') || n.Set.Len() != 2 {
		t.Errorf("folded a = %v", n.Set)
	}
	n = MustParse("[a-c]", FoldCase)
	if n.Set.Len() != 6 || !n.Set.Contains('B') {
		t.Errorf("folded [a-c] = %v", n.Set)
	}
	n = MustParse("(?i)xyz", 0)
	leaf := n.Sub[0]
	if !leaf.Set.Contains('X') {
		t.Error("(?i) should fold following literals")
	}
	// Folding must not leak out of a group.
	n = MustParse("(?i:a)b", 0)
	if b := n.Sub[1]; b.Set.Contains('B') {
		t.Error("case folding leaked out of (?i:...) group")
	}
}

func TestParseClassEscapes(t *testing.T) {
	n := MustParse(`[\d\s]`, 0)
	if !n.Set.Contains('5') || !n.Set.Contains(' ') || n.Set.Contains('a') {
		t.Errorf("[\\d\\s] = %v", n.Set)
	}
	n = MustParse(`[^\x00-\x7f]`, 0)
	if n.Set.Len() != 128 || n.Set.Contains(0x42) || !n.Set.Contains(0x80) {
		t.Errorf("[^\\x00-\\x7f] = %v", n.Set)
	}
	n = MustParse(`[\]\-\\]`, 0)
	for _, b := range []byte{']', '-', '\\'} {
		if !n.Set.Contains(b) {
			t.Errorf("missing %q", b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(", ")", "(a", "a)", "[", "[a", "[z-a]", "*", "+", "?", "a|*",
		`\`, `[\`, `\x`, "a{3,2}", "a{99999}", `\1`, `(?=a)`, `(?<b)`,
		"(?q)a", "[^\\x00-\\xff]", "^*",
	}
	for _, pat := range bad {
		if _, err := Parse(pat, 0); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", pat)
		}
	}
}

func TestParsePCRE(t *testing.T) {
	n, flags, err := ParsePCRE(`/ab+c/i`)
	if err != nil {
		t.Fatal(err)
	}
	if flags&FoldCase == 0 {
		t.Error("missing FoldCase flag")
	}
	if got := n.Dump(); got != "(cat [Aa] (plus [Bb]) [Cc])" {
		t.Errorf("got %s", got)
	}
	if _, _, err := ParsePCRE("noslash"); err == nil {
		t.Error("expected error for missing delimiters")
	}
	if _, _, err := ParsePCRE("/a/x"); err == nil {
		t.Error("expected error for unsupported flag")
	}
	// Escaped slash inside the pattern.
	n, _, err = ParsePCRE(`/a\/b/`)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Dump(); got != `(cat a \/ b)` && got != "(cat a / b)" {
		t.Errorf("got %s", got)
	}
}

func TestExpandRepeats(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a{3}", "(cat a a a)"},
		{"a{2,4}", "(cat a a (quest a) (quest a))"},
		{"a{2,}", "(cat a a (star a))"},
		{"(ab){2}", "(cat a b a b)"},
		{"a{0,2}", "(cat (quest a) (quest a))"},
	}
	for _, c := range cases {
		n := ExpandRepeats(MustParse(c.in, 0))
		if got := n.Dump(); got != c.want {
			t.Errorf("ExpandRepeats(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestExpandRepeatsDoesNotMutate(t *testing.T) {
	n := MustParse("a{3}", 0)
	before := n.Dump()
	_ = ExpandRepeats(n)
	if n.Dump() != before {
		t.Error("ExpandRepeats mutated its input")
	}
}

func TestNumPositions(t *testing.T) {
	cases := []struct {
		pattern string
		want    int
	}{
		{"abc", 3},
		{"(ab)*", 2},
		{"a{500}", 500},
		{"[0-4]{5}[5-9]{5}", 10},
		{"(a|b){3}", 6},
		{"a{2,}", 2},
		{"", 0},
	}
	for _, c := range cases {
		if got := MustParse(c.pattern, 0).NumPositions(); got != c.want {
			t.Errorf("NumPositions(%q) = %d, want %d", c.pattern, got, c.want)
		}
	}
}

func TestStripAnchors(t *testing.T) {
	n, begin, end := StripAnchors(MustParse("^abc$", 0))
	if !begin || !end {
		t.Errorf("begin=%v end=%v, want true true", begin, end)
	}
	if got := n.Dump(); got != "(cat a b c)" {
		t.Errorf("stripped = %s", got)
	}
	n, begin, end = StripAnchors(MustParse("abc", 0))
	if begin || end {
		t.Error("unanchored pattern misreported")
	}
	if got := n.Dump(); got != "(cat a b c)" {
		t.Errorf("stripped = %s", got)
	}
	_, begin, _ = StripAnchors(MustParse("(^a)|(^b)", 0))
	if !begin {
		t.Error("alternation of anchored branches should report begin")
	}
}

func TestRoundTripString(t *testing.T) {
	patterns := []string{
		"a", "ab", "a|b", "(ab)*", "[0-4]{5}[5-9]{5}", `\d+\.\d+`,
		"(a|bc)*d?", "[^a-z]+", `GET /[a-z]{1,8}`, "a{2,}b{3,7}",
	}
	for _, pat := range patterns {
		n1 := MustParse(pat, 0)
		s := n1.String()
		n2, err := Parse(s, 0)
		if err != nil {
			t.Errorf("reparse of %q → %q failed: %v", pat, s, err)
			continue
		}
		if n1.Dump() != n2.Dump() {
			t.Errorf("round trip changed %q: %s vs %s", pat, n1.Dump(), n2.Dump())
		}
	}
}

func TestCharSetOps(t *testing.T) {
	var s CharSet
	s.AddRange('0', '4')
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if b, ok := s.Min(); !ok || b != '0' {
		t.Errorf("Min = %q %v", b, ok)
	}
	if got := s.Bytes(); string(got) != "01234" {
		t.Errorf("Bytes = %q", got)
	}
	r := s.Ranges()
	if len(r) != 1 || r[0] != [2]byte{'0', '4'} {
		t.Errorf("Ranges = %v", r)
	}
	s.Negate()
	if s.Len() != 251 || s.Contains('3') || !s.Contains('9') {
		t.Errorf("negate wrong: len=%d", s.Len())
	}
	if AnyByte().Len() != 256 {
		t.Error("AnyByte")
	}
	if _, ok := (CharSet{}).Min(); ok {
		t.Error("empty Min should report !ok")
	}
	if _, ok := (CharSet{}).SingleByte(); ok {
		t.Error("empty SingleByte should report !ok")
	}
	if b, ok := MustParse("x", 0).Set.SingleByte(); !ok || b != 'x' {
		t.Error("SingleByte(x)")
	}
}

func TestCharSetString(t *testing.T) {
	cases := []struct {
		build func() CharSet
		want  string
	}{
		{func() CharSet { return Digit() }, `\d`},
		{func() CharSet { return AnyByte() }, `[\x00-\xff]`},
		{func() CharSet { return AnyNoNL() }, "."},
		{func() CharSet { var s CharSet; s.AddByte('a'); return s }, "a"},
		{func() CharSet { var s CharSet; s.AddByte('\n'); return s }, `\n`},
		{func() CharSet { var s CharSet; s.AddRange('a', 'c'); s.AddByte('z'); return s }, "[a-cz]"},
	}
	for _, c := range cases {
		if got := c.build().String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	pat := strings.Repeat("(", 600) + "a" + strings.Repeat(")", 600)
	if _, err := Parse(pat, 0); err == nil {
		t.Error("expected depth error")
	}
	pat = strings.Repeat("(", 100) + "a" + strings.Repeat(")", 100)
	if _, err := Parse(pat, 0); err != nil {
		t.Errorf("depth 100 should parse: %v", err)
	}
}

func TestPaperPatternsParse(t *testing.T) {
	// Every pattern that appears in the paper must parse.
	paper := []string{
		"(ab)*",                      // Example 1
		"([0-4]{5}[5-9]{5})*",        // Fig. 6
		"([0-4]{50}[5-9]{50})*",      // Fig. 7
		"([0-4]{500}[5-9]{500})*",    // Fig. 8
		"([0-4]{500}[5-9]{500})*|a*", // Fig. 9
		"(([02468][13579]){5})*",     // Fig. 10
		".*(T.*Y.*P.*E.*S)",          // Sect. VI-A over-cube family
		"[ap]*[al][alp]{3}",          // Example 3 (n=5)
	}
	for _, pat := range paper {
		if _, err := Parse(pat, 0); err != nil {
			t.Errorf("paper pattern %q failed: %v", pat, err)
		}
	}
}
