package syntax

import "testing"

// FuzzParse exercises the parser with arbitrary inputs: it must either
// fail cleanly or produce a tree whose String() form reparses to an
// identical tree (print/parse round trip).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"(ab)*", "([0-4]{5}[5-9]{5})*", `\d+\.\d+`, "a{2,}|b?",
		"[^a-z]+", "(?i:AbC)", `\x41[\\\]]`, "a**", "((((a))))",
		"(?s).*(T.*Y.*P)", "a|", "{", "[]a]", `\Q`, "(?:)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		n, err := Parse(pattern, 0)
		if err != nil {
			return
		}
		s := n.String()
		n2, err := Parse(s, 0)
		if err != nil {
			t.Fatalf("String() of parsed %q gives unparseable %q: %v", pattern, s, err)
		}
		if n.Dump() != n2.Dump() {
			t.Fatalf("round trip changed tree: %q → %q:\n%s\nvs\n%s",
				pattern, s, n.Dump(), n2.Dump())
		}
		// Derivatives must not panic on parsed trees.
		for _, b := range []byte{'a', 0x00, 0xff} {
			Derive(n, b)
		}
		Nullable(n)
	})
}

// FuzzDeriveMatchAgainstSelf checks the defining equation of derivatives
// on arbitrary (pattern, word) pairs: matching w and deriving byte by
// byte must agree.
func FuzzDeriveMatchAgainstSelf(f *testing.F) {
	f.Add("(ab)*", "abab")
	f.Add("a{2,4}", "aaa")
	f.Add("[ab]+c?", "abba")
	f.Fuzz(func(t *testing.T, pattern, word string) {
		if len(pattern) > 40 || len(word) > 20 {
			return
		}
		n, err := Parse(pattern, 0)
		if err != nil {
			return
		}
		if n.NumPositions() > 60 {
			return
		}
		direct := DeriveMatch(n, []byte(word))
		cur := n.Clone()
		for i := 0; i < len(word); i++ {
			cur = Derive(cur, word[i])
		}
		if direct != Nullable(cur) {
			t.Fatalf("derivative inconsistency: %q on %q", pattern, word)
		}
	})
}
