package syntax

// Brzozowski derivatives: ∂_b(L) = { w | bw ∈ L }. Deriving the AST
// directly gives a regex matcher that needs no automaton at all — an
// implementation completely disjoint from the Glushkov/Thompson → subset
// construction pipeline, which makes it a powerful semantics oracle for
// the test suite: any disagreement pinpoints a front-end bug.
//
// Derivatives also double as a reference for nullability and for the
// anchors-as-ε convention (they operate on the same simplified tree).

// Nullable reports whether the language of n contains the empty word.
// Anchors are width-zero and treated as ε, matching the matcher's
// whole-input convention.
func Nullable(n *Node) bool {
	switch n.Op {
	case OpEmpty, OpStar, OpQuest, OpAnchor:
		return true
	case OpNone, OpClass:
		return false
	case OpConcat:
		for _, s := range n.Sub {
			if !Nullable(s) {
				return false
			}
		}
		return true
	case OpAlt:
		for _, s := range n.Sub {
			if Nullable(s) {
				return true
			}
		}
		return false
	case OpPlus:
		return Nullable(n.Sub[0])
	case OpRepeat:
		return n.Min == 0 || Nullable(n.Sub[0])
	}
	return false
}

// Derive returns the Brzozowski derivative ∂_b(n), simplified.
// The input tree is not modified.
func Derive(n *Node, b byte) *Node {
	return Simplify(derive(n, b))
}

func derive(n *Node, b byte) *Node {
	switch n.Op {
	case OpNone, OpEmpty, OpAnchor:
		return &Node{Op: OpNone}

	case OpClass:
		if n.Set.Contains(b) {
			return &Node{Op: OpEmpty}
		}
		return &Node{Op: OpNone}

	case OpConcat:
		// ∂(rs) = ∂(r)s | [nullable r]∂(s), generalized to k operands.
		var alts []*Node
		for i, sub := range n.Sub {
			branch := []*Node{derive(sub, b)}
			for _, rest := range n.Sub[i+1:] {
				branch = append(branch, rest.Clone())
			}
			alts = append(alts, &Node{Op: OpConcat, Sub: branch})
			if !Nullable(sub) {
				break
			}
		}
		if len(alts) == 1 {
			return alts[0]
		}
		return &Node{Op: OpAlt, Sub: alts}

	case OpAlt:
		subs := make([]*Node, len(n.Sub))
		for i, s := range n.Sub {
			subs[i] = derive(s, b)
		}
		return &Node{Op: OpAlt, Sub: subs}

	case OpStar:
		// ∂(r*) = ∂(r) r*.
		return &Node{Op: OpConcat, Sub: []*Node{
			derive(n.Sub[0], b),
			&Node{Op: OpStar, Sub: []*Node{n.Sub[0].Clone()}},
		}}

	case OpPlus:
		// r+ = r r*.
		return derive(&Node{Op: OpConcat, Sub: []*Node{
			n.Sub[0],
			{Op: OpStar, Sub: []*Node{n.Sub[0]}},
		}}, b)

	case OpQuest:
		return derive(n.Sub[0], b)

	case OpRepeat:
		// ∂(r{m,M}) = ∂(r) r{max(m−1,0), M−1}.
		if n.Max == 0 {
			return &Node{Op: OpNone}
		}
		min := n.Min - 1
		if min < 0 {
			min = 0
		}
		max := n.Max
		if max > 0 {
			max--
		}
		return &Node{Op: OpConcat, Sub: []*Node{
			derive(n.Sub[0], b),
			{Op: OpRepeat, Min: min, Max: max, Sub: []*Node{n.Sub[0].Clone()}},
		}}
	}
	return &Node{Op: OpNone}
}

// DeriveMatch decides w ∈ L(n) by repeated derivation — O(|w|) derivative
// steps, each of which can grow the term; practical only for short words,
// which is exactly the oracle use case.
func DeriveMatch(n *Node, w []byte) bool {
	cur := Simplify(n.Clone())
	for _, b := range w {
		cur = Derive(cur, b)
		if cur.Op == OpNone {
			return false
		}
	}
	return Nullable(cur)
}
