package syntax

import (
	"math/rand"
	"testing"
)

func TestNullable(t *testing.T) {
	cases := map[string]bool{
		"":         true,
		"a":        false,
		"a*":       true,
		"a+":       false,
		"a?":       true,
		"(ab)*":    true,
		"a|":       true,
		"a|b":      false,
		"a{0,3}":   true,
		"a{2}":     false,
		"^$":       true,
		"(a*)(b?)": true,
	}
	for pat, want := range cases {
		if got := Nullable(MustParse(pat, 0)); got != want {
			t.Errorf("Nullable(%q) = %v, want %v", pat, got, want)
		}
	}
}

func TestDeriveBasics(t *testing.T) {
	// ∂_a(ab) = b; ∂_b(ab) = ∅; ∂_a(a*) = a*.
	n := MustParse("ab", 0)
	if got := Derive(n, 'a').Dump(); got != "b" {
		t.Errorf("∂_a(ab) = %s", got)
	}
	if got := Derive(n, 'b').Op; got != OpNone {
		t.Errorf("∂_b(ab) = %v", got)
	}
	star := MustParse("a*", 0)
	if got := Derive(star, 'a').Dump(); got != "(star a)" {
		t.Errorf("∂_a(a*) = %s", got)
	}
	if got := Derive(star, 'b').Op; got != OpNone {
		t.Errorf("∂_b(a*) should be ∅")
	}
}

func TestDeriveMatchKnownCases(t *testing.T) {
	cases := []struct {
		pattern string
		yes     []string
		no      []string
	}{
		{"(ab)*", []string{"", "ab", "abab"}, []string{"a", "ba", "abb"}},
		{"a{2,4}", []string{"aa", "aaa", "aaaa"}, []string{"a", "aaaaa"}},
		{"(a|bc)+", []string{"a", "bc", "abca"}, []string{"", "b", "cb"}},
		{"[0-4]{2}[5-9]{2}", []string{"0055"}, []string{"0505"}},
	}
	for _, c := range cases {
		n := MustParse(c.pattern, 0)
		for _, w := range c.yes {
			if !DeriveMatch(n, []byte(w)) {
				t.Errorf("derivatives reject %q ∈ L(%s)", w, c.pattern)
			}
		}
		for _, w := range c.no {
			if DeriveMatch(n, []byte(w)) {
				t.Errorf("derivatives accept %q ∉ L(%s)", w, c.pattern)
			}
		}
	}
}

func TestDeriveDoesNotMutate(t *testing.T) {
	n := MustParse("(ab)*c{2,3}", 0)
	before := n.Dump()
	Derive(n, 'a')
	DeriveMatch(n, []byte("ababcc"))
	if n.Dump() != before {
		t.Error("derivation mutated the input tree")
	}
}

// TestDeriveRepeatCounting pins the counter arithmetic of ∂(r{m,M}).
func TestDeriveRepeatCounting(t *testing.T) {
	n := MustParse("a{3}", 0)
	d1 := Derive(n, 'a')
	if got := d1.Dump(); got != "(rep{2,2} a)" {
		t.Errorf("∂_a(a{3}) = %s", got)
	}
	d2 := Derive(d1, 'a')
	if got := d2.Dump(); got != "a" { // a{1} simplifies to a
		t.Errorf("∂_a(a{2}) = %s", got)
	}
}

func TestDeriveAgainstRandomPatterns(t *testing.T) {
	// The derivative matcher must agree with a straightforward dynamic
	// check on tiny cases... here we use it as self-consistency:
	// w ∈ L(n) ⟺ ε ∈ L(∂_w(n)) is the definition, so instead compare
	// derivation orders: deriving "ab" must equal deriving 'a' then 'b'.
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		pat := randDerivPattern(r, 3)
		n := MustParse(pat, 0)
		w := randDerivWord(r, 6)
		direct := DeriveMatch(n, w)
		stepped := n.Clone()
		for _, b := range w {
			stepped = Derive(stepped, b)
		}
		if direct != Nullable(stepped) {
			t.Fatalf("inconsistent derivation for %q on %q", pat, w)
		}
	}
}

func randDerivPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		return string(byte('a' + r.Intn(3)))
	}
	switch r.Intn(6) {
	case 0:
		return randDerivPattern(r, depth-1) + randDerivPattern(r, depth-1)
	case 1:
		return "(?:" + randDerivPattern(r, depth-1) + "|" + randDerivPattern(r, depth-1) + ")"
	case 2:
		return "(?:" + randDerivPattern(r, depth-1) + ")*"
	case 3:
		return "(?:" + randDerivPattern(r, depth-1) + "){1,2}"
	default:
		return randDerivPattern(r, depth-1)
	}
}

func randDerivWord(r *rand.Rand, maxLen int) []byte {
	w := make([]byte, r.Intn(maxLen+1))
	for i := range w {
		w[i] = byte('a' + r.Intn(3))
	}
	return w
}
