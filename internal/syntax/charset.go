// Package syntax implements the regular-expression front end of the SFA
// matcher: a parser for the PCRE subset that appears in SNORT-style rules,
// an abstract syntax tree, and the simplification passes that prepare the
// tree for the Glushkov (McNaughton–Yamada) and Thompson constructions in
// package nfa.
//
// The alphabet is the full byte range 0–255, matching the paper's
// implementation in which every transition table row holds 256 entries
// ("the transition table occupied 1KB for each state", Sect. VI-B).
package syntax

import (
	"fmt"
	"math/bits"
	"strings"
)

// CharSet is a set of byte values represented as a 256-bit bitmap.
// The zero value is the empty set.
type CharSet [4]uint64

// AddByte inserts the single byte b.
func (s *CharSet) AddByte(b byte) {
	s[b>>6] |= 1 << (b & 63)
}

// AddRange inserts every byte in the inclusive range [lo, hi].
// Ranges with lo > hi are ignored.
func (s *CharSet) AddRange(lo, hi byte) {
	for c := int(lo); c <= int(hi); c++ {
		s.AddByte(byte(c))
	}
}

// AddSet inserts every byte of t into s.
func (s *CharSet) AddSet(t CharSet) {
	for i := range s {
		s[i] |= t[i]
	}
}

// Contains reports whether byte b is in the set.
func (s CharSet) Contains(b byte) bool {
	return s[b>>6]&(1<<(b&63)) != 0
}

// Negate replaces s with its complement over the 256-byte alphabet.
func (s *CharSet) Negate() {
	for i := range s {
		s[i] = ^s[i]
	}
}

// Len returns the number of bytes in the set.
func (s CharSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set contains no bytes.
func (s CharSet) IsEmpty() bool {
	return s == CharSet{}
}

// Min returns the smallest byte in the set and ok=false when empty.
func (s CharSet) Min() (b byte, ok bool) {
	for i, w := range s {
		if w != 0 {
			return byte(i*64 + bits.TrailingZeros64(w)), true
		}
	}
	return 0, false
}

// Bytes returns the members of the set in increasing order.
func (s CharSet) Bytes() []byte {
	out := make([]byte, 0, s.Len())
	for i, w := range s {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			out = append(out, byte(i*64+t))
			w &^= 1 << t
		}
	}
	return out
}

// Ranges returns the set as a minimal list of inclusive [lo, hi] ranges.
func (s CharSet) Ranges() [][2]byte {
	var out [][2]byte
	c := 0
	for c < 256 {
		if !s.Contains(byte(c)) {
			c++
			continue
		}
		lo := c
		for c < 256 && s.Contains(byte(c)) {
			c++
		}
		out = append(out, [2]byte{byte(lo), byte(c - 1)})
	}
	return out
}

// SingleByte returns (b, true) when the set holds exactly one byte.
func (s CharSet) SingleByte() (byte, bool) {
	if s.Len() != 1 {
		return 0, false
	}
	b, _ := s.Min()
	return b, true
}

// Fold adds, for every letter in the set, the letter of opposite case.
// It is used to implement the (?i) flag.
func (s *CharSet) Fold() {
	for c := byte('a'); c <= 'z'; c++ {
		if s.Contains(c) {
			s.AddByte(c - 'a' + 'A')
		}
	}
	for c := byte('A'); c <= 'Z'; c++ {
		if s.Contains(c) {
			s.AddByte(c - 'A' + 'a')
		}
	}
}

// String renders the set using character-class notation, e.g. "[0-4]".
// A handful of common sets get short spellings.
func (s CharSet) String() string {
	switch {
	case s == AnyNoNL():
		return "."
	case s == AnyByte():
		return `[\x00-\xff]`
	case s == Digit():
		return `\d`
	case s == Word():
		return `\w`
	case s == Space():
		return `\s`
	}
	if b, ok := s.SingleByte(); ok {
		return escapeByte(b)
	}
	var sb strings.Builder
	sb.WriteByte('[')
	for _, r := range s.Ranges() {
		if r[0] == r[1] {
			sb.WriteString(escapeByte(r[0]))
		} else {
			fmt.Fprintf(&sb, "%s-%s", escapeByte(r[0]), escapeByte(r[1]))
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

func escapeByte(b byte) string {
	switch b {
	case '\n':
		return `\n`
	case '\r':
		return `\r`
	case '\t':
		return `\t`
	case '\\', '.', '+', '*', '?', '(', ')', '|', '[', ']', '{', '}', '^', '$', '-':
		return "\\" + string(b)
	}
	if b >= 0x20 && b < 0x7f {
		return string(b)
	}
	return fmt.Sprintf(`\x%02x`, b)
}

// Predefined sets. Each call returns a fresh value.

// AnyByte returns the set of all 256 byte values.
func AnyByte() CharSet {
	return CharSet{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// AnyNoNL returns every byte except '\n' (the default meaning of '.').
func AnyNoNL() CharSet {
	s := AnyByte()
	s[0] &^= 1 << '\n'
	return s
}

// Digit returns [0-9].
func Digit() CharSet {
	var s CharSet
	s.AddRange('0', '9')
	return s
}

// Word returns [0-9A-Za-z_].
func Word() CharSet {
	var s CharSet
	s.AddRange('0', '9')
	s.AddRange('A', 'Z')
	s.AddRange('a', 'z')
	s.AddByte('_')
	return s
}

// Space returns [ \t\n\r\f\v].
func Space() CharSet {
	var s CharSet
	for _, b := range []byte{' ', '\t', '\n', '\r', '\f', '\v'} {
		s.AddByte(b)
	}
	return s
}

func negated(s CharSet) CharSet {
	s.Negate()
	return s
}
