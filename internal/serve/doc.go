// Package serve is the rule-set serving subsystem: long-lived rule sets
// under live traffic, with streaming scans, hot reload, and multi-tenant
// hosting — the deployment shape the paper's SNORT workload implies (one
// ruleset, heavy packet traffic, rules updated while scanning continues).
//
// Three properties carry the design:
//
//   - Streaming: scans go through sfa.RuleStream, so request bodies are
//     matched chunk by chunk with fixed-size carried state (one |D|
//     mapping per shard) and never need to be buffered whole.
//   - Hot reload: a [Ruleboard] keeps the live RuleSet behind an
//     atomic.Pointer. Reload builds the next generation with
//     RuleSet.Rebuild — combined shards whose rule membership is
//     unchanged are carried over by pointer, so the expensive product /
//     D-SFA construction is paid only for changed rules — then swaps.
//     In-flight streams stay pinned to the generation they started on
//     and drain against it; nothing is dropped or corrupted mid-scan.
//   - Multi-tenancy: a [Hub] hosts many named Ruleboards. All tenants'
//     engines dispatch chunk work through the one process-wide
//     engine.Pool, so the worker count is bounded by GOMAXPROCS no
//     matter how many tenants are resident.
//
// # Key types
//
// [Hub] owns tenant lifecycle (SetRules / Remove / Restore / Drain /
// PersistAll), the optional [State] directory for warm restarts, and —
// when Hub.SetTableBudget is called — the lazy-compilation budget tree:
// one process-wide sfa.TableBudget whose per-tenant children bound each
// tenant's resident lazy tables. Child budgets are created on first use
// and survive tenant deletion, so cycling a tenant cannot escape its
// bound. [NewHandler] mounts the HTTP API (tenant CRUD, streamed scan,
// /metrics with per-tenant shard, prefilter, and budget counters);
// [ParseRules] reads the sfagrep-style rules format.
//
// # Invariants
//
// A generation is immutable once published; reloads swap whole
// RuleSets and never mutate a live one. Streams pin their generation,
// and Drain completes only when every pinned stream has closed —
// shutdown and state persistence rely on that ordering. Budget
// accounting is observational for serving: eviction under memory
// pressure changes resident bytes and fill counters, never verdicts.
// See docs/memory-model.md for the budget hierarchy and eviction
// protocol.
package serve
