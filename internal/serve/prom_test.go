package serve

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/sfa"
)

// syncBuffer is a mutex-guarded buffer for capturing handler logs from
// concurrent requests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func newTestJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// promDoc is a parsed exposition document: every sample series (name
// plus rendered label set) mapped to its value, plus the declared TYPE
// per metric name.
type promDoc struct {
	samples map[string]float64
	types   map[string]string
}

// parseProm parses (and structurally validates) Prometheus text
// exposition format 0.0.4: every sample line must carry a value, every
// sample's metric must have a TYPE header, and all samples of one
// metric must be contiguous.
func parseProm(t *testing.T, text string) promDoc {
	t.Helper()
	doc := promDoc{samples: map[string]float64{}, types: map[string]string{}}
	closed := map[string]bool{} // metrics whose sample block has ended
	prevBase := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := doc.types[f[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, f[2])
			}
			doc.types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value: %q", ln+1, line)
		}
		series, vals := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(vals, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, vals, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && doc.types[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := doc.types[base]; !ok {
			t.Fatalf("line %d: sample %s before its TYPE header", ln+1, series)
		}
		if base != prevBase {
			if closed[base] {
				t.Fatalf("line %d: samples of %s are not contiguous", ln+1, base)
			}
			if prevBase != "" {
				closed[prevBase] = true
			}
			prevBase = base
		}
		if _, dup := doc.samples[series]; dup {
			t.Fatalf("line %d: duplicate series %s", ln+1, series)
		}
		doc.samples[series] = v
	}
	return doc
}

// get returns a series value, failing the test when absent.
func (d promDoc) get(t *testing.T, series string) float64 {
	t.Helper()
	v, ok := d.samples[series]
	if !ok {
		t.Fatalf("series %s missing from exposition", series)
	}
	return v
}

func promTestDefs() []sfa.RuleDef {
	return []sfa.RuleDef{
		{Name: "evil", Pattern: "evil[0-9]+payload"},
		{Name: "beacon", Pattern: "beacon(ing)?-host"},
	}
}

func scrapeProm(t *testing.T, client *http.Client, url string) promDoc {
	t.Helper()
	req, err := http.NewRequest("GET", url+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q lacks exposition version", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseProm(t, string(raw))
}

// TestMetricsContentNegotiation: JSON stays the default document;
// Prometheus text is opt-in by Accept header or ?format=.
func TestMetricsContentNegotiation(t *testing.T) {
	hub := NewHub()
	srv := httptest.NewServer(NewHandler(hub))
	defer srv.Close()

	// Default (curl, browsers sending */*): JSON.
	doJSON[MetricsReply](t, srv.Client(), "GET", srv.URL+"/metrics", nil, http.StatusOK)

	for _, tc := range []struct {
		accept, format string
		wantProm       bool
	}{
		{"", "", false},
		{"application/json", "", false},
		{"text/plain", "", true},
		{"application/openmetrics-text; version=1.0.0, text/plain;version=0.0.4", "", true},
		{"application/json, text/plain", "", false}, // json preferred first
		{"text/plain", "json", false},               // explicit format wins
		{"", "prometheus", true},
	} {
		req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		if tc.format != "" {
			q := req.URL.Query()
			q.Set("format", tc.format)
			req.URL.RawQuery = q.Encode()
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		isProm := strings.Contains(ct, "version=0.0.4")
		if isProm != tc.wantProm {
			t.Errorf("accept=%q format=%q: got Content-Type %q, wantProm=%v", tc.accept, tc.format, ct, tc.wantProm)
		}
	}
}

// TestMetricsPromExposition drives one tenant through scans and asserts
// the core series the ops story depends on: traffic counters, hot-path
// scan histograms (with internally consistent cumulative buckets),
// build-report series, pool scheduling, and runtime series.
func TestMetricsPromExposition(t *testing.T) {
	hub := NewHub()
	srv := httptest.NewServer(NewHandler(hub))
	defer srv.Close()

	if _, _, _, err := hub.SetRules("web", promTestDefs()); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("innocent traffic ", 4096) + "evil42payload"
	for i := 0; i < 3; i++ {
		doJSON[ScanReply](t, srv.Client(), "POST", srv.URL+"/v1/tenants/web/scan",
			strings.NewReader(payload), http.StatusOK)
	}

	doc := scrapeProm(t, srv.Client(), srv.URL)

	if got := doc.get(t, `sfa_tenant_scans_total{tenant="web"}`); got != 3 {
		t.Errorf("scans_total = %v, want 3", got)
	}
	if got := doc.get(t, `sfa_tenant_scan_bytes_total{tenant="web"}`); got != float64(3*len(payload)) {
		t.Errorf("scan_bytes_total = %v, want %d", got, 3*len(payload))
	}
	if doc.get(t, `sfa_tenant_resident{tenant="web"}`) != 1 {
		t.Error("tenant not marked resident")
	}
	if doc.get(t, `sfa_tenant_rules{tenant="web"}`) != 2 {
		t.Error("rules gauge wrong")
	}

	// Hot-path scan histograms: count matches chunks, buckets are
	// cumulative and end at the count.
	chunks := doc.get(t, `sfa_scan_chunks_total{tenant="web"}`)
	if chunks < 3 {
		t.Errorf("scan chunks = %v, want >= 3", chunks)
	}
	if got := doc.get(t, `sfa_scan_compose_ns_count{tenant="web"}`); got != chunks {
		t.Errorf("compose_ns count %v != chunks %v", got, chunks)
	}
	if got := doc.get(t, `sfa_scan_compose_ns_bucket{tenant="web",le="+Inf"}`); got != chunks {
		t.Errorf("compose_ns +Inf bucket %v != chunks %v", got, chunks)
	}
	var prev float64
	for series, v := range doc.samples {
		if strings.HasPrefix(series, `sfa_scan_compose_ns_bucket{tenant="web"`) && v < prev {
			// Map order is random; just verify every bucket <= +Inf count.
			if v > chunks {
				t.Errorf("bucket %s = %v exceeds count %v", series, v, chunks)
			}
		}
	}
	if doc.get(t, `sfa_scan_read_ns_count{tenant="web"}`) != 3 {
		t.Error("read_ns histogram did not record one observation per request")
	}
	if doc.get(t, `sfa_scan_match_ns_count{tenant="web"}`) != 3 {
		t.Error("match_ns histogram did not record one observation per request")
	}

	// Build report series for the resident generation.
	if doc.get(t, `sfa_build_total_ns{tenant="web"}`) <= 0 {
		t.Error("build_total_ns not positive")
	}
	if doc.get(t, `sfa_build_built_shards{tenant="web"}`) <= 0 {
		t.Error("build_built_shards not positive")
	}

	// Pool scheduling series for both pools.
	if doc.get(t, `sfa_pool_workers{pool="match"}`) <= 0 {
		t.Error("match pool has no workers")
	}
	if _, ok := doc.samples[`sfa_pool_submitted_total{pool="build"}`]; !ok {
		t.Error("build pool series missing")
	}

	// Runtime series.
	if doc.get(t, "sfa_go_sched_goroutines") <= 0 {
		t.Error("goroutine gauge missing or zero")
	}
	if _, ok := doc.samples[`sfa_go_gc_pauses_ns{q="0.99"}`]; !ok {
		t.Error("GC pause quantile series missing")
	}
	if doc.types["sfa_scan_compose_ns"] != "histogram" {
		t.Errorf("compose_ns TYPE = %q, want histogram", doc.types["sfa_scan_compose_ns"])
	}
}

// TestPromAttributionSeries drives traffic through one tenant and
// asserts the attribution surface: build identity, per-shard cost
// counters, per-rule match heat, and the boundary top-k coverage gauges
// (with their k-monotonicity invariant).
func TestPromAttributionSeries(t *testing.T) {
	hub := NewHub(sfa.WithSearch())
	srv := httptest.NewServer(NewHandler(hub))
	defer srv.Close()

	if _, _, _, err := hub.SetRules("web", promTestDefs()); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("innocent traffic ", 4096) + "evil42payload"
	for i := 0; i < 3; i++ {
		doJSON[ScanReply](t, srv.Client(), "POST", srv.URL+"/v1/tenants/web/scan",
			strings.NewReader(payload), http.StatusOK)
	}

	doc := scrapeProm(t, srv.Client(), srv.URL)

	// Build identity: one constant-1 info series with both labels, and a
	// plausible start time.
	infos := 0
	for series, v := range doc.samples {
		if strings.HasPrefix(series, "sfa_build_info{") {
			infos++
			if v != 1 {
				t.Errorf("%s = %v, want 1", series, v)
			}
			if !strings.Contains(series, `commit="`) || !strings.Contains(series, `go_version="go`) {
				t.Errorf("build info labels incomplete: %s", series)
			}
		}
	}
	if infos != 1 {
		t.Errorf("want exactly one sfa_build_info series, got %d", infos)
	}
	if doc.get(t, "sfa_process_start_time_seconds") <= 0 {
		t.Error("process start time missing or zero")
	}

	// Per-shard cost: the scanned bytes must be attributed somewhere.
	var shardBytes, shardChunks float64
	for series, v := range doc.samples {
		if strings.HasPrefix(series, `sfa_shard_scan_bytes_total{tenant="web"`) {
			shardBytes += v
		}
		if strings.HasPrefix(series, `sfa_shard_scan_chunks_total{tenant="web"`) {
			shardChunks += v
		}
	}
	if shardBytes <= 0 || shardChunks <= 0 {
		t.Errorf("shard attribution empty: bytes=%v chunks=%v", shardBytes, shardChunks)
	}

	// Rule heat: three scans hit "evil" three times; "beacon" never
	// matched, so it must not emit a series at all.
	if got := doc.get(t, `sfa_rule_matches_total{tenant="web",rule="evil"}`); got != 3 {
		t.Errorf("rule heat for evil = %v, want 3", got)
	}
	if _, ok := doc.samples[`sfa_rule_matches_total{tenant="web",rule="beacon"}`]; ok {
		t.Error("zero-match rule emitted a heat series")
	}

	// Boundary top-k coverage: present for at least one eager shard, in
	// (0, 1], and monotone in k per shard.
	cov := map[string]map[int]float64{} // shard -> k -> coverage
	for series, v := range doc.samples {
		if !strings.HasPrefix(series, `sfa_shard_boundary_topk_coverage{tenant="web"`) {
			continue
		}
		var shard, k string
		for _, part := range strings.Split(series[strings.IndexByte(series, '{')+1:len(series)-1], ",") {
			if s, ok := strings.CutPrefix(part, `shard="`); ok {
				shard = strings.TrimSuffix(s, `"`)
			}
			if s, ok := strings.CutPrefix(part, `k="`); ok {
				k = strings.TrimSuffix(s, `"`)
			}
		}
		ki, err := strconv.Atoi(k)
		if err != nil || shard == "" {
			t.Fatalf("bad coverage labels: %s", series)
		}
		if v <= 0 || v > 1 {
			t.Errorf("%s = %v, want in (0, 1]", series, v)
		}
		if cov[shard] == nil {
			cov[shard] = map[int]float64{}
		}
		cov[shard][ki] = v
	}
	if len(cov) == 0 {
		t.Fatal("no boundary coverage gauges for the streamed tenant")
	}
	for shard, ks := range cov {
		if len(ks) != 3 {
			t.Errorf("shard %s has %d coverage points, want k in {1,4,8}", shard, len(ks))
		}
		if ks[1] > ks[4] || ks[4] > ks[8] {
			t.Errorf("shard %s coverage not monotone in k: %v", shard, ks)
		}
	}
}

// TestPromMonotonicUnderConcurrentScansAndReloads scrapes the endpoint
// while scans and hot reloads hammer the hub, asserting the persistent
// counters never go backwards between scrapes. Run under -race this is
// also the data-race check for the whole exposition path.
func TestPromMonotonicUnderConcurrentScansAndReloads(t *testing.T) {
	hub := NewHub()
	srv := httptest.NewServer(NewHandler(hub))
	defer srv.Close()

	defs := promTestDefs()
	if _, _, _, err := hub.SetRules("web", defs); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Runs after srv.Close's defer is registered, so the load goroutines
	// always stop before the server goes away even on an early Fatal.
	defer func() { stop.Store(true); wg.Wait() }()
	payload := strings.Repeat("filler bytes here ", 512) + "beacon-host"
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				doJSON[ScanReply](t, srv.Client(), "POST", srv.URL+"/v1/tenants/web/scan",
					strings.NewReader(payload), http.StatusOK)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			// Alternate between two rule lists so every reload changes
			// membership and really rebuilds.
			d := append([]sfa.RuleDef(nil), defs...)
			if i%2 == 0 {
				d = append(d, sfa.RuleDef{Name: "extra", Pattern: fmt.Sprintf("x%dtra", i%7)})
			}
			if _, _, _, err := hub.SetRules("web", d); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	monotone := []string{
		`sfa_tenant_scans_total{tenant="web"}`,
		`sfa_tenant_scan_bytes_total{tenant="web"}`,
		`sfa_tenant_reloads_total{tenant="web"}`,
		`sfa_scan_chunks_total{tenant="web"}`,
		`sfa_scan_chunk_bytes_total{tenant="web"}`,
		`sfa_scan_compose_ns_count{tenant="web"}`,
		`sfa_pool_submitted_total{pool="match"}`,
	}
	last := map[string]float64{}
	rounds := 25
	if raceEnabled {
		rounds = 12
	}
	for i := 0; i < rounds; i++ {
		doc := scrapeProm(t, srv.Client(), srv.URL)
		for _, s := range monotone {
			v := doc.get(t, s)
			if v < last[s] {
				t.Errorf("scrape %d: %s went backwards: %v -> %v", i, s, last[s], v)
			}
			last[s] = v
		}
	}
	stop.Store(true)
	wg.Wait()
	if last[`sfa_tenant_scans_total{tenant="web"}`] == 0 {
		t.Error("no scans observed during the run")
	}
	if last[`sfa_tenant_reloads_total{tenant="web"}`] == 0 {
		t.Error("no reloads observed during the run")
	}
}

// TestPromTenantRowsSurviveDeleteAndReadd: a deleted tenant keeps its
// traffic history in the exposition (resident drops to 0, counters
// stay), and re-adding it resumes the same counters rather than
// starting over.
func TestPromTenantRowsSurviveDeleteAndReadd(t *testing.T) {
	hub := NewHub()
	srv := httptest.NewServer(NewHandler(hub))
	defer srv.Close()

	if _, _, _, err := hub.SetRules("web", promTestDefs()); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("traffic ", 1024) + "evil7payload"
	doJSON[ScanReply](t, srv.Client(), "POST", srv.URL+"/v1/tenants/web/scan",
		strings.NewReader(payload), http.StatusOK)

	before := scrapeProm(t, srv.Client(), srv.URL)
	scans := before.get(t, `sfa_tenant_scans_total{tenant="web"}`)
	chunks := before.get(t, `sfa_scan_chunks_total{tenant="web"}`)
	if scans != 1 || chunks < 1 {
		t.Fatalf("unexpected baseline: scans=%v chunks=%v", scans, chunks)
	}

	if !hub.Delete("web") {
		t.Fatal("delete failed")
	}
	gone := scrapeProm(t, srv.Client(), srv.URL)
	if gone.get(t, `sfa_tenant_resident{tenant="web"}`) != 0 {
		t.Error("deleted tenant still resident")
	}
	if got := gone.get(t, `sfa_tenant_scans_total{tenant="web"}`); got != scans {
		t.Errorf("scan history lost on delete: %v -> %v", scans, got)
	}
	if got := gone.get(t, `sfa_scan_chunks_total{tenant="web"}`); got != chunks {
		t.Errorf("chunk history lost on delete: %v -> %v", chunks, got)
	}

	if _, _, _, err := hub.SetRules("web", promTestDefs()); err != nil {
		t.Fatal(err)
	}
	doJSON[ScanReply](t, srv.Client(), "POST", srv.URL+"/v1/tenants/web/scan",
		strings.NewReader(payload), http.StatusOK)
	after := scrapeProm(t, srv.Client(), srv.URL)
	if got := after.get(t, `sfa_tenant_scans_total{tenant="web"}`); got != scans+1 {
		t.Errorf("re-added tenant restarted counters: got %v, want %v", got, scans+1)
	}
	if got := after.get(t, `sfa_scan_chunks_total{tenant="web"}`); got <= chunks {
		t.Errorf("re-added tenant's chunk counter did not continue: %v <= %v", got, chunks)
	}
	if after.get(t, `sfa_tenant_resident{tenant="web"}`) != 1 {
		t.Error("re-added tenant not resident")
	}
}

// TestSlowScanLogging: with a zero threshold every scan logs one
// structured record carrying the per-stage breakdown.
func TestSlowScanLogging(t *testing.T) {
	hub := NewHub()
	var buf syncBuffer
	logger := newTestJSONLogger(&buf)
	srv := httptest.NewServer(NewHandler(hub, WithSlowScanLog(logger, 0)))
	defer srv.Close()

	if _, _, _, err := hub.SetRules("web", promTestDefs()); err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("x", 256<<10)
	doJSON[ScanReply](t, srv.Client(), "POST", srv.URL+"/v1/tenants/web/scan",
		strings.NewReader(payload), http.StatusOK)

	out := buf.String()
	if !strings.Contains(out, `"msg":"slow scan"`) {
		t.Fatalf("no slow-scan record in %q", out)
	}
	for _, field := range []string{`"tenant":"web"`, `"read_ns"`, `"match_ns"`, `"total_ns"`, `"chunks"`, `"generation"`} {
		if !strings.Contains(out, field) {
			t.Errorf("slow-scan record lacks %s: %q", field, out)
		}
	}
	doc := scrapeProm(t, srv.Client(), srv.URL)
	if doc.get(t, `sfa_tenant_slow_scans_total{tenant="web"}`) != 1 {
		t.Error("slow_scans counter not incremented")
	}
}
