package serve

import (
	"reflect"
	"strings"
	"testing"

	"repro/sfa"
)

func TestParseRules(t *testing.T) {
	in := strings.Join([]string{
		"# comment",
		"",
		"sql (select|union)",
		`\d{1,3}\.\d{1,3}`, // bare pattern, auto-named by line
		"  padded (ab)*  ",
		`fold /cmd\.exe/i`,          // pcre-delimited with flags
		`both /a.{1,4}b/is`,         //
		"passwd /etc/passwd",        // leading slash, no flags: literal
		"cgi /cgi-bin/[a-z]{2}ok/x", // bogus flag letter: literal
		`/select union/i`,           // bare delimited pattern with a space
	}, "\n")
	defs, err := ParseRules(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []sfa.RuleDef{
		{Name: "sql", Pattern: "(select|union)"},
		{Name: "r004", Pattern: `\d{1,3}\.\d{1,3}`},
		{Name: "padded", Pattern: "(ab)*"},
		{Name: "fold", Pattern: `cmd\.exe`, Flags: sfa.FoldCase},
		{Name: "both", Pattern: `a.{1,4}b`, Flags: sfa.FoldCase | sfa.DotAll},
		{Name: "passwd", Pattern: "/etc/passwd"},
		{Name: "cgi", Pattern: "/cgi-bin/[a-z]{2}ok/x"},
		{Name: "r010", Pattern: "select union", Flags: sfa.FoldCase},
	}
	if !reflect.DeepEqual(defs, want) {
		t.Fatalf("ParseRules = %+v, want %+v", defs, want)
	}

	if _, err := ParseRules(strings.NewReader("# only comments\n")); err == nil {
		t.Fatal("empty rule file accepted")
	}
}

// TestFormatRulesRoundTrip: FormatRules must be a left inverse of
// ParseRules, flags included.
func TestFormatRulesRoundTrip(t *testing.T) {
	defs := []sfa.RuleDef{
		{Name: "plain", Pattern: `(ab)*`},
		{Name: "fold", Pattern: `cmd\.exe`, Flags: sfa.FoldCase},
		{Name: "both", Pattern: `x.{1,8}y`, Flags: sfa.FoldCase | sfa.DotAll},
		{Name: "uri", Pattern: `/etc/passwd`},
	}
	text, err := FormatRules(defs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRules(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, defs) {
		t.Fatalf("round trip %+v, want %+v", got, defs)
	}

	// Names the line format cannot carry back are rejected up front.
	for _, bad := range []string{"", "two words", "r.1", "/slash", "#hash"} {
		if _, err := FormatRules([]sfa.RuleDef{{Name: bad, Pattern: "a+"}}); err == nil {
			t.Errorf("FormatRules accepted unround-trippable name %q", bad)
		}
	}
}

// TestFormatRulesAmbiguousLiteral: a flagless pattern shaped like the
// /pattern/flags form must round-trip without gaining flags — the
// formatter wraps it, and the wrapped pattern compiles to the same
// language as the original.
func TestFormatRulesAmbiguousLiteral(t *testing.T) {
	defs := []sfa.RuleDef{{Name: "block", Pattern: `/admin/s`}}
	text, err := FormatRules(defs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseRules(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Flags != 0 {
		t.Fatalf("round trip grew flags: %+v", got)
	}
	orig, err := sfa.Compile(defs[0].Pattern, sfa.WithSearch())
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := sfa.Compile(got[0].Pattern, sfa.WithSearch())
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"/admin/s", "GET /admin/sessions", "/admin/", "admin s"} {
		if orig.MatchString(in) != wrapped.MatchString(in) {
			t.Fatalf("wrapped pattern %q diverges on %q", got[0].Pattern, in)
		}
	}
}
