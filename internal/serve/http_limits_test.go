package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/sfa"
)

// Request-body caps: oversized uploads must be rejected with 413, both
// on the parse-into-memory rule path and the streamed scan path, while
// bodies within the limit flow exactly as before.

func limitServer(t *testing.T, opts ...HandlerOption) (*httptest.Server, *http.Client) {
	t.Helper()
	hub := NewHub(sfa.WithSearch(), sfa.WithThreads(1))
	srv := httptest.NewServer(NewHandler(hub, opts...))
	t.Cleanup(srv.Close)
	return srv, srv.Client()
}

func doBody(t *testing.T, client *http.Client, method, url, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestRuleUploadBodyLimit(t *testing.T) {
	srv, client := limitServer(t, WithRuleBodyLimit(64))

	if resp := doBody(t, client, http.MethodPut, srv.URL+"/v1/tenants/a", "hit attack\n"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("small rule upload: %d, want 201", resp.StatusCode)
	}
	big := "hit " + strings.Repeat("a", 100) + "\n"
	if resp := doBody(t, client, http.MethodPut, srv.URL+"/v1/tenants/a", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized rule upload: %d, want 413", resp.StatusCode)
	}
	// The rejected upload must not have touched the tenant.
	st := doBody(t, client, http.MethodGet, srv.URL+"/v1/tenants/a", "")
	if st.StatusCode != http.StatusOK {
		t.Fatalf("tenant gone after rejected upload: %d", st.StatusCode)
	}
}

func TestScanBodyLimit(t *testing.T) {
	srv, client := limitServer(t, WithScanBodyLimit(1<<10))

	if resp := doBody(t, client, http.MethodPut, srv.URL+"/v1/tenants/a", "hit attack\n"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("rule upload: %d, want 201", resp.StatusCode)
	}
	if resp := doBody(t, client, http.MethodPost, srv.URL+"/v1/tenants/a/scan", "an attack happened"); resp.StatusCode != http.StatusOK {
		t.Fatalf("small scan: %d, want 200", resp.StatusCode)
	}
	big := strings.Repeat("x", 1<<11)
	if resp := doBody(t, client, http.MethodPost, srv.URL+"/v1/tenants/a/scan", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized scan: %d, want 413", resp.StatusCode)
	}
	// A subsequent in-limit scan still works (the 413 must not poison
	// the connection pool or the stream contexts).
	if resp := doBody(t, client, http.MethodPost, srv.URL+"/v1/tenants/a/scan", "still fine"); resp.StatusCode != http.StatusOK {
		t.Fatalf("scan after 413: want 200")
	}
}

func TestDefaultBodyLimitsApplied(t *testing.T) {
	// No options: the defaults must be in force (a rules body just over
	// nothing is fine; this test pins that the default is not zero,
	// which would reject everything).
	srv, client := limitServer(t)
	if resp := doBody(t, client, http.MethodPut, srv.URL+"/v1/tenants/a", "hit attack\n"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload under default limits: %d, want 201", resp.StatusCode)
	}
}
