package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/sfa"
)

func stateDefs() []sfa.RuleDef {
	return []sfa.RuleDef{
		{Name: "passwd", Pattern: `/etc/passwd`},
		{Name: "cmd", Pattern: `(cmd|command)\.exe`, Flags: sfa.FoldCase},
	}
}

// hubWithState builds a hub persisting under a fresh temp dir.
func hubWithState(t *testing.T) (*Hub, *State) {
	t.Helper()
	st, err := OpenState(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := NewHub(sfa.WithSearch(), sfa.WithThreads(2))
	h.SetState(st)
	return h, st
}

// TestStatePersistAndWarmRestore: SetRules persists; a second hub over
// the same state restores the tenant warm (stable BuildIDs, identical
// verdicts, warm counter bumped).
func TestStatePersistAndWarmRestore(t *testing.T) {
	h1, st := hubWithState(t)
	if _, _, _, err := h1.SetRules("ids", stateDefs()); err != nil {
		t.Fatal(err)
	}
	names, err := st.Tenants()
	if err != nil || len(names) != 1 || names[0] != "ids" {
		t.Fatalf("persisted tenants %v (%v)", names, err)
	}

	h2 := NewHub(sfa.WithSearch(), sfa.WithThreads(2))
	h2.SetState(st)
	stats, err := h2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tenants != 1 || stats.Warm != 1 || stats.Cold != 0 || stats.Rebuilt != 0 {
		t.Fatalf("restore stats %+v", stats)
	}
	b, ok := h2.Tenant("ids")
	if !ok {
		t.Fatal("tenant missing after restore")
	}
	if got := b.Scan([]byte("GET /etc/passwd")); len(got) != 1 || got[0] != "passwd" {
		t.Fatalf("restored verdict %v", got)
	}
	for i, sh := range b.RuleSet().Shards() {
		if sh.BuildID&(1<<63) == 0 {
			t.Fatalf("restored shard %d has sequential build id %d", i, sh.BuildID)
		}
	}
	if !reflect.DeepEqual(b.Defs(), func() []sfa.RuleDef {
		d := stateDefs()
		sortByName(d)
		return d
	}()) {
		t.Fatalf("restored defs %+v", b.Defs())
	}
}

func sortByName(defs []sfa.RuleDef) {
	for i := 1; i < len(defs); i++ {
		for j := i; j > 0 && defs[j].Name < defs[j-1].Name; j-- {
			defs[j], defs[j-1] = defs[j-1], defs[j]
		}
	}
}

// TestStateRestoreRebuildsOnEditedRules: an operator editing the rules
// file while the server is down gets the edited rules, via Rebuild (the
// snapshot still supplies every unchanged shard).
func TestStateRestoreRebuildsOnEditedRules(t *testing.T) {
	h1, st := hubWithState(t)
	if _, _, _, err := h1.SetRules("ids", stateDefs()); err != nil {
		t.Fatal(err)
	}
	// Append a rule to the on-disk rules file, as an operator would.
	path := filepath.Join(st.Dir(), "tenants", "ids.rules")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("shell xp_cmdshell\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h2 := NewHub(sfa.WithSearch(), sfa.WithThreads(2))
	h2.SetState(st)
	stats, err := h2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rebuilt != 1 || stats.Warm != 0 {
		t.Fatalf("restore stats %+v", stats)
	}
	b, _ := h2.Tenant("ids")
	if b.RuleSet().Len() != 3 {
		t.Fatalf("edited restore has %d rules", b.RuleSet().Len())
	}
	if got := b.Scan([]byte("EXEC xp_cmdshell")); len(got) != 1 || got[0] != "shell" {
		t.Fatalf("edited-rule verdict %v", got)
	}
}

// TestStateRestoreColdFromRulesOnly: with the snapshot gone (or torn),
// the rules text still restores the tenant — cold.
func TestStateRestoreColdFromRulesOnly(t *testing.T) {
	h1, st := hubWithState(t)
	if _, _, _, err := h1.SetRules("ids", stateDefs()); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(st.Dir(), "tenants", "ids.snap")
	// Tear the snapshot: truncate to half.
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := NewHub(sfa.WithSearch(), sfa.WithThreads(2))
	h2.SetState(st)
	stats, err := h2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	// The torn snapshot may still warm via the shard cache — what
	// matters is the tenant exists with working verdicts and the load
	// was not a silent acceptance of the torn file.
	if stats.Tenants != 1 || stats.Warm != 0 {
		t.Fatalf("restore stats %+v", stats)
	}
	bd, ok := h2.Tenant("ids")
	if !ok {
		t.Fatal("tenant missing")
	}
	if got := bd.Scan([]byte("GET /etc/passwd")); len(got) != 1 || got[0] != "passwd" {
		t.Fatalf("verdict %v", got)
	}
}

// TestStateDeleteRemovesFiles: deleting a tenant deletes its persisted
// artifacts, so a restart does not resurrect it.
func TestStateDeleteRemovesFiles(t *testing.T) {
	h1, st := hubWithState(t)
	if _, _, _, err := h1.SetRules("ids", stateDefs()); err != nil {
		t.Fatal(err)
	}
	if !h1.Delete("ids") {
		t.Fatal("delete failed")
	}
	names, err := st.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("tenant files survive delete: %v", names)
	}
}

// TestStateEscapedTenantNames: names the URL router can deliver but
// filesystems dislike must round-trip the state directory.
func TestStateEscapedTenantNames(t *testing.T) {
	h1, st := hubWithState(t)
	name := "team a:b..c"
	if _, _, _, err := h1.SetRules(name, stateDefs()); err != nil {
		t.Fatal(err)
	}
	names, err := st.Tenants()
	if err != nil || len(names) != 1 || names[0] != name {
		t.Fatalf("escaped tenant list %v (%v)", names, err)
	}
	h2 := NewHub(sfa.WithSearch(), sfa.WithThreads(2))
	h2.SetState(st)
	if _, err := h2.Restore(); err != nil {
		t.Fatal(err)
	}
	if _, ok := h2.Tenant(name); !ok {
		t.Fatal("escaped tenant not restored")
	}
}

// TestHubDrain: Drain returns once pinned scans finish.
func TestHubDrain(t *testing.T) {
	h, _ := hubWithState(t)
	if _, _, _, err := h.SetRules("ids", stateDefs()); err != nil {
		t.Fatal(err)
	}
	b, _ := h.Tenant("ids")
	stream, err := b.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	done := b.DrainCurrent()
	select {
	case <-done:
		t.Fatal("drained with a stream still open")
	default:
	}
	stream.Write([]byte("GET /etc/passwd"))
	stream.Close()
	<-done // must close now
}
