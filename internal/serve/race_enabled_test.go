//go:build race

package serve

// raceEnabled shrinks fixtures under the race detector's ~10x
// instrumentation overhead.
const raceEnabled = true
