package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Metrics is the hub's observability state, served as JSON by the
// /metrics endpoint: per-tenant traffic and reload counters plus the
// snapshot subsystem's warm/cold restore and shard-cache numbers.
// Counters are monotonic since process start; per-tenant entries persist
// across tenant deletion (traffic history outlives the rules).
type Metrics struct {
	start time.Time

	mu      sync.Mutex
	tenants map[string]*TenantMetrics

	warmLoads     atomic.Int64 // tenants restored whole from snapshot
	rebuiltLoads  atomic.Int64 // restored via Rebuild (rule text drifted)
	coldBuilds    atomic.Int64 // restored by compiling rule text
	persistErrors atomic.Int64 // failed state-directory writes
}

// TenantMetrics is one tenant's counters.
type TenantMetrics struct {
	Scans         atomic.Int64
	ScanBytes     atomic.Int64
	Reloads       atomic.Int64
	ShardsReused  atomic.Int64
	ShardsRebuilt atomic.Int64

	// Scan is the tenant's streaming-scan hot-path stats. Every
	// generation of the tenant's rule sets is compiled with
	// WithScanStats pointing here (Hub.tenantOpts), so — like the
	// counters above — the history accumulates across hot reloads and
	// survives delete/re-add.
	Scan obs.ScanStats

	// Per-request scan-handler stage latencies: wall time spent reading
	// the request body versus matching it (Write + mask resolution).
	ReadNs  obs.Histogram
	MatchNs obs.Histogram
	// SlowScans counts requests over the slow-scan threshold
	// (WithSlowScanLog); zero when no threshold is configured.
	SlowScans atomic.Int64
}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now(), tenants: make(map[string]*TenantMetrics)}
}

// Tenant returns (creating if needed) the named tenant's counters.
func (m *Metrics) Tenant(name string) *TenantMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	tm := m.tenants[name]
	if tm == nil {
		tm = &TenantMetrics{}
		m.tenants[name] = tm
	}
	return tm
}

// tenantNames lists tenants that have counters.
func (m *Metrics) tenantNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		out = append(out, name)
	}
	return out
}
