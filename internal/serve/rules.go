package serve

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/sfa"
)

// ParseRules reads the rules-file format shared by sfagrep -f and the
// sfaserve tenant endpoints: one rule per line, either `name pattern` or
// a bare pattern (auto-named rNNN by line number); blank lines and
// # comments are skipped. A "name" containing regex metacharacters is
// treated as part of the pattern, so pasting raw patterns just works.
//
// Per-rule flags use the SNORT pcre convention: a pattern written
// /…/flags — slash-delimited with at least one trailing flag letter —
// carries i (case-insensitive) and/or s (dot matches newline). A pattern
// that merely starts with '/' (URI rules like /etc/passwd) is taken
// literally; only the delimited-with-flags form is special.
func ParseRules(r io.Reader) ([]sfa.RuleDef, error) {
	var defs []sfa.RuleDef
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, pattern, ok := strings.Cut(line, " ")
		if !ok || strings.ContainsAny(name, `\[(.?*+{^$|`) || strings.HasPrefix(name, "/") {
			// No separator, a "name" that looks like regex syntax, or a
			// leading slash (a bare URI-style or /…/flags pattern that
			// happens to contain a space): the whole line is the pattern.
			name, pattern = fmt.Sprintf("r%03d", lineno), line
		}
		pattern = strings.TrimSpace(pattern)
		flags, bare, delimited := cutDelimited(pattern)
		if delimited {
			pattern = bare
		}
		defs = append(defs, sfa.RuleDef{Name: name, Pattern: pattern, Flags: flags})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("serve: no rules in input")
	}
	return defs, nil
}

// cutDelimited recognizes the /pattern/flags form. It demands at least
// one valid flag letter after the closing slash, so URI-shaped literal
// patterns (leading and trailing slashes but no flags) pass through
// untouched.
func cutDelimited(p string) (sfa.Flag, string, bool) {
	if len(p) < 3 || p[0] != '/' {
		return 0, "", false
	}
	i := strings.LastIndexByte(p, '/')
	if i == 0 || i == len(p)-1 {
		return 0, "", false
	}
	var fl sfa.Flag
	for _, c := range p[i+1:] {
		switch c {
		case 'i':
			fl |= sfa.FoldCase
		case 's':
			fl |= sfa.DotAll
		default:
			return 0, "", false
		}
	}
	return fl, p[1:i], true
}

// FormatRules renders defs in the wire format ParseRules reads — the
// client half of the PUT /v1/tenants/{name} protocol. Rules with flags
// use the delimited /pattern/flags form; a flagless pattern that would
// itself parse as that form (it starts with '/' and happens to end in
// /i, /s, or /is) is wrapped in a non-capturing group so it round-trips
// with identical semantics instead of silently gaining flags. A name the
// line format cannot carry back (empty, whitespace, regex
// metacharacters, or a leading '/' or '#') is an error — emitting it
// would silently rename the rule or corrupt its pattern on the far side.
func FormatRules(defs []sfa.RuleDef) (string, error) {
	var b strings.Builder
	for _, d := range defs {
		if !nameRoundTrips(d.Name) {
			return "", fmt.Errorf("serve: rule name %q does not survive the rules-file format", d.Name)
		}
		if d.Flags == 0 {
			pattern := d.Pattern
			if _, _, ambiguous := cutDelimited(pattern); ambiguous {
				pattern = "(?:" + pattern + ")"
			}
			fmt.Fprintf(&b, "%s %s\n", d.Name, pattern)
			continue
		}
		flags := ""
		if d.Flags&sfa.FoldCase != 0 {
			flags += "i"
		}
		if d.Flags&sfa.DotAll != 0 {
			flags += "s"
		}
		fmt.Fprintf(&b, "%s /%s/%s\n", d.Name, d.Pattern, flags)
	}
	return b.String(), nil
}

// nameRoundTrips reports whether ParseRules would read a `name pattern`
// line back with exactly this name.
func nameRoundTrips(name string) bool {
	return name != "" &&
		!strings.ContainsAny(name, "\\[(.?*+{^$| \t") &&
		!strings.HasPrefix(name, "/") &&
		!strings.HasPrefix(name, "#")
}
