package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	rpprof "runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/snapshot"
	"repro/sfa"
)

// HTTP front end for a Hub. The API is deliberately small and
// curl-friendly:
//
//	GET    /healthz                   liveness
//	GET    /metrics                   JSON counters (scans, reloads, snapshots)
//	GET    /debug/scans               flight recorder: the last N scan records (?n=)
//	GET    /debug/attribution         per-shard cost + rule heat + speculation report
//	GET    /debug/pprof/*             Go profiling (only with WithProfiling)
//	GET    /v1/tenants                list tenants with stats
//	PUT    /v1/tenants/{name}         create or hot-reload (body: rules file)
//	GET    /v1/tenants/{name}         one tenant's stats
//	DELETE /v1/tenants/{name}         remove a tenant
//	POST   /v1/tenants/{name}/scan    scan the request body, streamed
//
// Scan reads the request body in fixed chunks straight into a pinned
// RuleStream — the body is never buffered whole, so arbitrarily large
// payloads scan in constant memory, and a hot reload issued mid-request
// does not disturb the scan.

// scanChunkSize is the body read granularity. 64 KiB is large enough for
// the engine's parallel chunk path and small enough to keep per-request
// memory trivial.
const scanChunkSize = 64 << 10

// Request-body ceilings. Every body read goes through
// http.MaxBytesReader so an oversized (or unbounded chunked) upload is
// cut off with 413 instead of being consumed forever. Rule uploads are
// parsed into memory, so their default is small; scan bodies stream in
// constant memory, so theirs is large — it exists to bound abuse, not
// legitimate payloads. Both are per-handler configurable.
const (
	// DefaultMaxRuleBytes caps PUT /v1/tenants/{name} bodies (rule
	// files). 8 MiB is orders of magnitude beyond real SNORT-style sets.
	DefaultMaxRuleBytes = 8 << 20
	// DefaultMaxScanBytes caps POST .../scan bodies. 4 GiB: scans are
	// O(1) memory per request, so this is an abuse bound only.
	DefaultMaxScanBytes = 4 << 30
)

// scanBufs recycles body-read buffers across requests — the streams
// underneath are zero-alloc per chunk, so the handler should not be the
// one generating 64 KiB of garbage per request.
var scanBufs = sync.Pool{New: func() any {
	b := make([]byte, scanChunkSize)
	return &b
}}

// TenantStatus is the stats document for one tenant.
type TenantStatus struct {
	Tenant     string      `json:"tenant"`
	Generation uint64      `json:"generation"`
	Rules      int         `json:"rules"`
	Shards     []ShardStat `json:"shards"`
}

// ShardStat mirrors sfa.ShardInfo for JSON.
type ShardStat struct {
	Rules      []string `json:"rules"`
	DFAStates  int      `json:"dfa_states"`
	SFAStates  int      `json:"sfa_states"`
	Layout     string   `json:"layout"`
	TableBytes int64    `json:"table_bytes"`
	BuildID    uint64   `json:"build_id"`
	Prefilter  string   `json:"prefilter"`
	// Lazy-shard cache counters (WithLazyCompile); zero on eager shards.
	Lazy          bool  `json:"lazy,omitempty"`
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
	Fills         int64 `json:"fills,omitempty"`
	Evictions     int64 `json:"evictions,omitempty"`
	// Chunk-boundary state frequencies (eager shards scanned with
	// tenant scan stats attached); empty until the shard has streamed.
	HotStates []sfa.StateCount `json:"hot_states,omitempty"`
	HotOther  int64            `json:"hot_other,omitempty"`
	// Always-on cost attribution over the engine's lifetime (reused
	// shards keep their account across reloads).
	ComposeNs   int64 `json:"compose_ns"`
	ScanChunks  int64 `json:"scan_chunks"`
	ScanBytes   int64 `json:"scan_bytes"`
	CandWindows int64 `json:"cand_windows,omitempty"`
}

// FlightReply answers GET /debug/scans: the most recent scan records,
// newest first, straight from the hub's flight recorder.
type FlightReply struct {
	// Capacity is how many records the ring retains (0 = recording off).
	Capacity int `json:"capacity"`
	// Records holds up to ?n= records (default 64), newest first. Gaps
	// in the seq column mean records were overwritten between the write
	// and this read — never reordered or torn.
	Records []sfa.ScanRecord `json:"records"`
}

// AttributionReply answers GET /debug/attribution: per tenant, which
// shards cost and which rules fire, plus the speculation-viability
// report — the drill-down the aggregate /metrics series cannot give.
type AttributionReply struct {
	Tenants map[string]TenantAttribution `json:"tenants"`
}

// TenantAttribution is one tenant's attribution document.
type TenantAttribution struct {
	Generation uint64 `json:"generation"`
	// Shards carries the per-shard cost account. Engine counters
	// survive hot reloads (reused shards keep accumulating), so the
	// numbers span the engine's lifetime, not just this generation.
	Shards []ShardAttribution `json:"shards"`
	// RuleHeat is the hottest ?top= rules (default 20), descending by
	// match count; rules that never matched are included only while
	// they fit. RuleHeatOmitted counts the rows cut by the cap.
	RuleHeat        []sfa.RuleHeat `json:"rule_heat"`
	RuleHeatOmitted int            `json:"rule_heat_omitted,omitempty"`
	// Speculation is the boundary-state concentration report (see
	// sfa.SpeculationReport); empty when the tenant has not streamed.
	Speculation sfa.SpeculationReport `json:"speculation"`
}

// ShardAttribution is one shard's cost row.
type ShardAttribution struct {
	Shard       int    `json:"shard"`
	Rules       int    `json:"rules"`
	Prefilter   string `json:"prefilter"`
	Lazy        bool   `json:"lazy,omitempty"`
	ComposeNs   int64  `json:"compose_ns"`
	ScanChunks  int64  `json:"scan_chunks"`
	ScanBytes   int64  `json:"scan_bytes"`
	CandWindows int64  `json:"cand_windows,omitempty"`
}

// LoadReply answers PUT /v1/tenants/{name}.
type LoadReply struct {
	Tenant        string `json:"tenant"`
	Created       bool   `json:"created"`
	Generation    uint64 `json:"generation"`
	Rules         int    `json:"rules"`
	Shards        int    `json:"shards"`
	ShardsReused  int    `json:"shards_reused"`
	ShardsRebuilt int    `json:"shards_rebuilt"`
	RulesAdded    int    `json:"rules_added"`
	RulesRemoved  int    `json:"rules_removed"`
}

// ScanReply answers POST /v1/tenants/{name}/scan.
type ScanReply struct {
	Tenant     string   `json:"tenant"`
	Generation uint64   `json:"generation"`
	Bytes      int64    `json:"bytes"`
	Matches    []string `json:"matches"`
}

// MetricsReply is the /metrics document.
type MetricsReply struct {
	UptimeSeconds float64                 `json:"uptime_s"`
	Tenants       map[string]TenantCounts `json:"tenants"`
	Snapshot      SnapshotMetrics         `json:"snapshot"`
	// TableBudget is the hub-wide lazy-compilation budget (SetTableBudget);
	// absent when the hub has none.
	TableBudget *BudgetCounts `json:"table_budget,omitempty"`
}

// BudgetCounts reports one table-budget node: the byte bound, what lazy
// shards currently have resident under it, and the lifetime fill and
// eviction counters that reveal thrash (fills growing much faster than
// scans) versus a comfortable working set (evictions flat).
type BudgetCounts struct {
	LimitBytes    int64 `json:"limit_bytes"` // <= 0 = unlimited, metering only
	ResidentBytes int64 `json:"resident_bytes"`
	Fills         int64 `json:"fills"`
	Evictions     int64 `json:"evictions"`
	// StallNs is total scan wall time spent inside eviction under this
	// node — the budget-pressure signal (the full fill/evict latency
	// histograms are on the Prometheus endpoint).
	StallNs int64 `json:"stall_ns,omitempty"`
}

func budgetCounts(tb *sfa.TableBudget) *BudgetCounts {
	s := tb.Stats()
	return &BudgetCounts{
		LimitBytes:    s.LimitBytes,
		ResidentBytes: s.UsedBytes,
		Fills:         s.Fills,
		Evictions:     s.Evictions,
		StallNs:       s.StallNs,
	}
}

// TenantCounts is one tenant's /metrics entry. Resident is false for a
// deleted tenant whose traffic history is still reported.
type TenantCounts struct {
	Resident      bool   `json:"resident"`
	Generation    uint64 `json:"generation,omitempty"`
	Rules         int    `json:"rules,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	Scans         int64  `json:"scans"`
	ScanBytes     int64  `json:"scan_bytes"`
	Reloads       int64  `json:"reloads"`
	ShardsReused  int64  `json:"shards_reused"`
	ShardsRebuilt int64  `json:"shards_rebuilt"`
	SlowScans     int64  `json:"slow_scans,omitempty"`
	// Scan is the tenant's streaming hot-path stats — chunks, bytes, and
	// log₂ latency/size histograms — accumulated across generations.
	Scan *sfa.ScanSnapshot `json:"scan,omitempty"`
	// Build reports how the resident generation was built (planner
	// decisions, cache traffic, phase timings). Absent for non-resident
	// tenants.
	Build *sfa.BuildReport `json:"build,omitempty"`
	// Prefilter is the resident generation's literal-cascade snapshot:
	// static shape plus the live skip/byte counters accumulated since the
	// generation was built. Absent for non-resident tenants.
	Prefilter *sfa.PrefilterStats `json:"prefilter,omitempty"`
	// TableBudget is the tenant's child of the hub-wide lazy-compilation
	// budget. Absent when the hub has no budget or the tenant never
	// compiled under it.
	TableBudget *BudgetCounts `json:"table_budget,omitempty"`
}

// SnapshotMetrics reports the persistence subsystem's counters: how
// tenants were restored at boot, state-write failures, and the shard
// store's hit/miss numbers.
type SnapshotMetrics struct {
	WarmLoads     int64           `json:"warm_loads"`
	RebuiltLoads  int64           `json:"rebuilt_loads"`
	ColdBuilds    int64           `json:"cold_builds"`
	PersistErrors int64           `json:"persist_errors"`
	Store         *snapshot.Stats `json:"store,omitempty"`
}

// metricsReply assembles the /metrics document from the hub's counters.
func metricsReply(h *Hub) MetricsReply {
	m := h.Metrics()
	reply := MetricsReply{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Tenants:       map[string]TenantCounts{},
		Snapshot: SnapshotMetrics{
			WarmLoads:     m.warmLoads.Load(),
			RebuiltLoads:  m.rebuiltLoads.Load(),
			ColdBuilds:    m.coldBuilds.Load(),
			PersistErrors: m.persistErrors.Load(),
		},
	}
	if st := h.State(); st != nil {
		stats := st.Cache().Stats()
		reply.Snapshot.Store = &stats
	}
	if tb := h.TableBudget(); tb != nil {
		reply.TableBudget = budgetCounts(tb)
	}
	// Union of resident tenants and tenants with traffic history: a
	// just-created (or just-restored) tenant must appear before its
	// first scan, and a deleted one keeps its counters.
	names := map[string]bool{}
	for _, name := range h.Names() {
		names[name] = true
	}
	for _, name := range m.tenantNames() {
		names[name] = true
	}
	for name := range names {
		tm := m.Tenant(name)
		tc := TenantCounts{
			Scans:         tm.Scans.Load(),
			ScanBytes:     tm.ScanBytes.Load(),
			Reloads:       tm.Reloads.Load(),
			ShardsReused:  tm.ShardsReused.Load(),
			ShardsRebuilt: tm.ShardsRebuilt.Load(),
			SlowScans:     tm.SlowScans.Load(),
		}
		if sc := tm.Scan.Snapshot(); sc.Chunks > 0 {
			tc.Scan = &sc
		}
		if b, ok := h.Tenant(name); ok {
			rs, gen := b.Snapshot()
			tc.Resident = true
			tc.Generation = gen
			tc.Rules = rs.Len()
			tc.Shards = rs.NumShards()
			pf := rs.PrefilterStats()
			tc.Prefilter = &pf
			br := rs.BuildReport()
			tc.Build = &br
		}
		if tb := h.tenantBudgetIfAny(name); tb != nil {
			tc.TableBudget = budgetCounts(tb)
		}
		reply.Tenants[name] = tc
	}
	return reply
}

// HandlerOption configures NewHandler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	profiling    bool
	maxRuleBytes int64
	maxScanBytes int64
	slowLog      *slog.Logger
	slowScan     time.Duration
}

// WithRuleBodyLimit caps the size of rule-upload request bodies
// (PUT /v1/tenants/{name}); larger uploads get 413. n <= 0 keeps
// DefaultMaxRuleBytes.
func WithRuleBodyLimit(n int64) HandlerOption {
	return func(c *handlerConfig) {
		if n > 0 {
			c.maxRuleBytes = n
		}
	}
}

// WithScanBodyLimit caps the size of scan request bodies
// (POST /v1/tenants/{name}/scan); larger payloads get 413 after the
// allowed prefix has streamed through. n <= 0 keeps
// DefaultMaxScanBytes.
func WithScanBodyLimit(n int64) HandlerOption {
	return func(c *handlerConfig) {
		if n > 0 {
			c.maxScanBytes = n
		}
	}
}

// WithSlowScanLog makes the scan handler log one structured record for
// every request whose total wall time reaches threshold: the tenant,
// generation, size, and a per-stage breakdown (body read vs matching,
// chunk count, engine compose time, prefilter skip counts) — enough to
// tell a slow client from a slow rule set from budget thrash without a
// profiler. threshold <= 0 logs every scan; a nil logger disables.
func WithSlowScanLog(logger *slog.Logger, threshold time.Duration) HandlerOption {
	return func(c *handlerConfig) {
		c.slowLog = logger
		c.slowScan = threshold
	}
}

// WithProfiling mounts the Go /debug/pprof/* endpoints on the handler.
// Off by default: profiles can burn CPU on demand and heap dumps expose
// resident tenant rules and payload fragments, so on a multi-tenant
// server they belong behind an operator flag (sfaserve -pprof) or a
// separate private listener, never on the public scan API unasked.
func WithProfiling() HandlerOption {
	return func(c *handlerConfig) { c.profiling = true }
}

// NewHandler builds the HTTP API over a hub.
func NewHandler(h *Hub, opts ...HandlerOption) http.Handler {
	cfg := handlerConfig{
		maxRuleBytes: DefaultMaxRuleBytes,
		maxScanBytes: DefaultMaxScanBytes,
	}
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writeProm(w, h)
			return
		}
		writeJSON(w, http.StatusOK, metricsReply(h))
	})
	mux.HandleFunc("GET /debug/scans", func(w http.ResponseWriter, r *http.Request) {
		n := 64
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", q))
				return
			}
			n = v
		}
		fl := h.Flight()
		recs := fl.Snapshot(n)
		if recs == nil {
			recs = []sfa.ScanRecord{}
		}
		writeJSON(w, http.StatusOK, FlightReply{Capacity: fl.Cap(), Records: recs})
	})
	mux.HandleFunc("GET /debug/attribution", func(w http.ResponseWriter, r *http.Request) {
		top := 20
		if q := r.URL.Query().Get("top"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("bad top %q", q))
				return
			}
			top = v
		}
		reply := AttributionReply{Tenants: map[string]TenantAttribution{}}
		for _, name := range h.Names() {
			b, ok := h.Tenant(name)
			if !ok {
				continue
			}
			rs, gen := b.Snapshot()
			ta := TenantAttribution{Generation: gen, Speculation: rs.SpeculationReport()}
			for i, sh := range rs.Shards() {
				ta.Shards = append(ta.Shards, ShardAttribution{
					Shard:       i,
					Rules:       len(sh.Rules),
					Prefilter:   sh.Prefilter,
					Lazy:        sh.Lazy,
					ComposeNs:   sh.ComposeNs,
					ScanChunks:  sh.ScanChunks,
					ScanBytes:   sh.ScanBytes,
					CandWindows: sh.CandWindows,
				})
			}
			heat := rs.RuleHeat()
			if len(heat) > top {
				ta.RuleHeatOmitted = len(heat) - top
				heat = heat[:top]
			}
			if heat == nil {
				heat = []sfa.RuleHeat{}
			}
			ta.RuleHeat = heat
			reply.Tenants[name] = ta
		}
		writeJSON(w, http.StatusOK, reply)
	})
	if cfg.profiling {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		names := h.Names()
		out := make([]TenantStatus, 0, len(names))
		for _, name := range names {
			if b, ok := h.Tenant(name); ok {
				out = append(out, status(name, b))
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("PUT /v1/tenants/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		// Rule files are parsed into memory, so an unbounded body is a
		// trivial memory DoS; MaxBytesReader cuts the read off and the
		// parse error below is reported as 413, not 400.
		defs, err := ParseRules(http.MaxBytesReader(w, r.Body, cfg.maxRuleBytes))
		if err != nil {
			code := http.StatusBadRequest
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				code = http.StatusRequestEntityTooLarge
			}
			httpError(w, code, err)
			return
		}
		created, _, res, err := h.SetRules(name, defs)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		// Everything in the reply comes from the one ReloadResult, so a
		// racing reload or delete cannot tear it.
		writeJSON(w, code, LoadReply{
			Tenant:        name,
			Created:       created,
			Generation:    res.Generation,
			Rules:         len(defs),
			Shards:        res.Shards,
			ShardsReused:  res.ShardsReused,
			ShardsRebuilt: res.ShardsRebuilt,
			RulesAdded:    res.RulesAdded,
			RulesRemoved:  res.RulesRemoved,
		})
	})
	mux.HandleFunc("GET /v1/tenants/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		b, ok := h.Tenant(name)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", name))
			return
		}
		writeJSON(w, http.StatusOK, status(name, b))
	})
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		if !h.Delete(name) {
			httpError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	})
	mux.HandleFunc("POST /v1/tenants/{tenant}/scan", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		b, ok := h.Tenant(name)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", name))
			return
		}
		st, err := b.NewStream()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		defer st.Close()
		body := http.MaxBytesReader(w, r.Body, cfg.maxScanBytes)
		bufp := scanBufs.Get().(*[]byte)
		defer scanBufs.Put(bufp)
		buf := *bufp
		// Stage timing: readNs is time blocked on the client's body,
		// matchNs is time inside the engine — the split that tells a slow
		// uploader from a slow rule set. The pprof label makes on-CPU
		// samples of this request attributable to the tenant in profiles.
		start := time.Now()
		var readNs, matchNs int64
		var matches []string
		var bad bool
		rpprof.Do(r.Context(), rpprof.Labels("sfa_tenant", name), func(context.Context) {
			for {
				t0 := time.Now()
				n, err := body.Read(buf)
				readNs += time.Since(t0).Nanoseconds()
				if n > 0 {
					t1 := time.Now()
					st.Write(buf[:n])
					matchNs += time.Since(t1).Nanoseconds()
				}
				if err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					var mbe *http.MaxBytesError
					if errors.As(err, &mbe) {
						httpError(w, http.StatusRequestEntityTooLarge, err)
					} else {
						httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
					}
					bad = true
					return
				}
			}
			t1 := time.Now()
			matches = st.Names()
			matchNs += time.Since(t1).Nanoseconds()
		})
		if bad {
			return
		}
		if matches == nil {
			matches = []string{}
		}
		tm := h.Metrics().Tenant(name)
		tm.Scans.Add(1)
		tm.ScanBytes.Add(st.Bytes())
		tm.ReadNs.Observe(readNs)
		tm.MatchNs.Observe(matchNs)
		ss := st.Stats()
		// Flight recorder: one record per scan, unconditionally — unlike
		// the threshold-gated slow-scan log below, the last N scans are
		// always reconstructible from /debug/scans. Record is wait-free
		// and allocation-free. The stream's ComposeNs measures the whole
		// Write advance; the prefilter share is split out so the record's
		// prefilter/compose columns partition the streaming work.
		h.Flight().Record(sfa.ScanRecord{
			UnixNano:           start.UnixNano(),
			Tenant:             name,
			Generation:         int64(st.Generation()),
			Bytes:              st.Bytes(),
			Chunks:             ss.Chunks,
			ReadNs:             readNs,
			PrefilterNs:        ss.PrefilterNs,
			ComposeNs:          ss.ComposeNs - ss.PrefilterNs,
			MatchNs:            matchNs,
			ShardChunksScanned: ss.ShardChunksScanned,
			ShardChunksSkipped: ss.ShardChunksSkipped,
			Matches:            int64(len(matches)),
		})
		if total := time.Since(start); cfg.slowLog != nil && total >= cfg.slowScan {
			tm.SlowScans.Add(1)
			cfg.slowLog.LogAttrs(r.Context(), slog.LevelWarn, "slow scan",
				slog.String("tenant", name),
				slog.Uint64("generation", st.Generation()),
				slog.Int64("bytes", st.Bytes()),
				slog.Int64("total_ns", total.Nanoseconds()),
				slog.Int64("read_ns", readNs),
				slog.Int64("match_ns", matchNs),
				slog.Int64("chunks", ss.Chunks),
				slog.Int64("compose_ns", ss.ComposeNs),
				slog.Int64("prefilter_ns", ss.PrefilterNs),
				slog.Int64("shard_chunks_scanned", ss.ShardChunksScanned),
				slog.Int64("shard_chunks_skipped", ss.ShardChunksSkipped),
				slog.Int("matches", len(matches)),
			)
		}
		writeJSON(w, http.StatusOK, ScanReply{
			Tenant:     name,
			Generation: st.Generation(),
			Bytes:      st.Bytes(),
			Matches:    matches,
		})
	})
	return mux
}

func status(name string, b *Ruleboard) TenantStatus {
	rs, gen := b.Snapshot() // one load, so stats and generation agree
	infos := rs.Shards()
	shards := make([]ShardStat, len(infos))
	for i, s := range infos {
		shards[i] = ShardStat(s)
	}
	return TenantStatus{
		Tenant:     name,
		Generation: gen,
		Rules:      rs.Len(),
		Shards:     shards,
	}
}

// wantsProm decides the /metrics representation. JSON stays the default
// (the endpoint predates the exposition format and scripts parse it);
// Prometheus is opt-in via ?format=prometheus or an Accept header that
// asks for text/plain or OpenMetrics — which is what a Prometheus
// scraper sends — without naming application/json first.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "openmetrics", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	jsonAt := strings.Index(accept, "application/json")
	for _, marker := range []string{"text/plain", "openmetrics"} {
		if at := strings.Index(accept, marker); at >= 0 && (jsonAt < 0 || at < jsonAt) {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
