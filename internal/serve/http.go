package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// HTTP front end for a Hub. The API is deliberately small and
// curl-friendly:
//
//	GET    /healthz                   liveness
//	GET    /v1/tenants                list tenants with stats
//	PUT    /v1/tenants/{name}         create or hot-reload (body: rules file)
//	GET    /v1/tenants/{name}         one tenant's stats
//	DELETE /v1/tenants/{name}         remove a tenant
//	POST   /v1/tenants/{name}/scan    scan the request body, streamed
//
// Scan reads the request body in fixed chunks straight into a pinned
// RuleStream — the body is never buffered whole, so arbitrarily large
// payloads scan in constant memory, and a hot reload issued mid-request
// does not disturb the scan.

// scanChunkSize is the body read granularity. 64 KiB is large enough for
// the engine's parallel chunk path and small enough to keep per-request
// memory trivial.
const scanChunkSize = 64 << 10

// scanBufs recycles body-read buffers across requests — the streams
// underneath are zero-alloc per chunk, so the handler should not be the
// one generating 64 KiB of garbage per request.
var scanBufs = sync.Pool{New: func() any {
	b := make([]byte, scanChunkSize)
	return &b
}}

// TenantStatus is the stats document for one tenant.
type TenantStatus struct {
	Tenant     string      `json:"tenant"`
	Generation uint64      `json:"generation"`
	Rules      int         `json:"rules"`
	Shards     []ShardStat `json:"shards"`
}

// ShardStat mirrors sfa.ShardInfo for JSON.
type ShardStat struct {
	Rules      []string `json:"rules"`
	DFAStates  int      `json:"dfa_states"`
	SFAStates  int      `json:"sfa_states"`
	Layout     string   `json:"layout"`
	TableBytes int64    `json:"table_bytes"`
	BuildID    uint64   `json:"build_id"`
}

// LoadReply answers PUT /v1/tenants/{name}.
type LoadReply struct {
	Tenant        string `json:"tenant"`
	Created       bool   `json:"created"`
	Generation    uint64 `json:"generation"`
	Rules         int    `json:"rules"`
	Shards        int    `json:"shards"`
	ShardsReused  int    `json:"shards_reused"`
	ShardsRebuilt int    `json:"shards_rebuilt"`
	RulesAdded    int    `json:"rules_added"`
	RulesRemoved  int    `json:"rules_removed"`
}

// ScanReply answers POST /v1/tenants/{name}/scan.
type ScanReply struct {
	Tenant     string   `json:"tenant"`
	Generation uint64   `json:"generation"`
	Bytes      int64    `json:"bytes"`
	Matches    []string `json:"matches"`
}

// NewHandler builds the HTTP API over a hub.
func NewHandler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		names := h.Names()
		out := make([]TenantStatus, 0, len(names))
		for _, name := range names {
			if b, ok := h.Tenant(name); ok {
				out = append(out, status(name, b))
			}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("PUT /v1/tenants/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		defs, err := ParseRules(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		created, _, res, err := h.SetRules(name, defs)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		// Everything in the reply comes from the one ReloadResult, so a
		// racing reload or delete cannot tear it.
		writeJSON(w, code, LoadReply{
			Tenant:        name,
			Created:       created,
			Generation:    res.Generation,
			Rules:         len(defs),
			Shards:        res.Shards,
			ShardsReused:  res.ShardsReused,
			ShardsRebuilt: res.ShardsRebuilt,
			RulesAdded:    res.RulesAdded,
			RulesRemoved:  res.RulesRemoved,
		})
	})
	mux.HandleFunc("GET /v1/tenants/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		b, ok := h.Tenant(name)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", name))
			return
		}
		writeJSON(w, http.StatusOK, status(name, b))
	})
	mux.HandleFunc("DELETE /v1/tenants/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		if !h.Delete(name) {
			httpError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	})
	mux.HandleFunc("POST /v1/tenants/{tenant}/scan", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		b, ok := h.Tenant(name)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no tenant %q", name))
			return
		}
		st, err := b.NewStream()
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		defer st.Close()
		bufp := scanBufs.Get().(*[]byte)
		defer scanBufs.Put(bufp)
		buf := *bufp
		for {
			n, err := r.Body.Read(buf)
			if n > 0 {
				st.Write(buf[:n])
			}
			if err != nil {
				if !errors.Is(err, io.EOF) {
					httpError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
					return
				}
				break
			}
		}
		matches := st.Names()
		if matches == nil {
			matches = []string{}
		}
		writeJSON(w, http.StatusOK, ScanReply{
			Tenant:     name,
			Generation: st.Generation(),
			Bytes:      st.Bytes(),
			Matches:    matches,
		})
	})
	return mux
}

func status(name string, b *Ruleboard) TenantStatus {
	rs, gen := b.Snapshot() // one load, so stats and generation agree
	infos := rs.Shards()
	shards := make([]ShardStat, len(infos))
	for i, s := range infos {
		shards[i] = ShardStat(s)
	}
	return TenantStatus{
		Tenant:     name,
		Generation: gen,
		Rules:      rs.Len(),
		Shards:     shards,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
