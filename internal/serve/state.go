package serve

import (
	"bytes"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/snapshot"
	"repro/sfa"
)

// State is a hub's persistence root: one directory holding, per tenant,
// the human-readable rule text and the compiled rule-set snapshot, plus
// a shared content-addressed shard cache the builds warm themselves
// from. A restarted server pointed at the same directory reaches ready
// with warm automata instead of recompiling the world.
//
// Layout:
//
//	<dir>/tenants/<escaped-name>.rules   rules wire format (ParseRules)
//	<dir>/tenants/<escaped-name>.snap    rule-set snapshot (sfa.Save)
//	<dir>/cache/<key>.shard              content-addressed shard cache
//
// The snapshot is authoritative for what was compiled; the rules file is
// the operator-editable mirror. On restore, a rules file that differs
// from its snapshot wins — the board is rebuilt from the snapshot with
// shard reuse, exactly like a hot reload — so editing rules while the
// server is down behaves like editing them while it is up.
type State struct {
	dir   string
	cache *snapshot.Store
	mu    sync.Mutex // serializes tenant file writes (last persist wins whole)
}

// OpenState opens (creating if needed) a state directory.
func OpenState(dir string) (*State, error) {
	if err := os.MkdirAll(filepath.Join(dir, "tenants"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	cache, err := snapshot.OpenStore(filepath.Join(dir, "cache"))
	if err != nil {
		return nil, err
	}
	return &State{dir: dir, cache: cache}, nil
}

// Dir returns the state root.
func (st *State) Dir() string { return st.dir }

// Cache returns the state's shard store (shared with every build the
// hub runs once SetState has wired it in).
func (st *State) Cache() *snapshot.Store { return st.cache }

// tenantBase returns the per-tenant file path prefix. Names are
// URL-escaped so any tenant name the HTTP API accepts maps to a safe,
// reversible filename.
func (st *State) tenantBase(name string) string {
	return filepath.Join(st.dir, "tenants", url.PathEscape(name))
}

// SaveTenant persists one tenant: the snapshot (authoritative, when the
// rule set supports it) and the rules text (best-effort mirror — some
// programmatic rule names cannot round-trip the line format). An
// isolated or non-SFA rule set has no snapshot; its rules text alone
// must then be writable or SaveTenant fails.
func (st *State) SaveTenant(name string, defs []sfa.RuleDef, rs *sfa.RuleSet) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.saveTenantLocked(name, defs, rs)
}

func (st *State) saveTenantLocked(name string, defs []sfa.RuleDef, rs *sfa.RuleSet) error {
	base := st.tenantBase(name)

	var rulesErr error
	if text, err := FormatRules(defs); err == nil {
		rulesErr = atomicWrite(base+".rules", []byte(text))
	} else {
		rulesErr = err
	}
	if rulesErr != nil {
		// The mirror could not be rewritten for this generation; a stale
		// one left behind would beat the fresh snapshot on restore (the
		// rules file wins when it differs), silently rolling the tenant
		// back — so no mirror at all is strictly safer.
		os.Remove(base + ".rules")
	}

	var snap bytes.Buffer
	if err := rs.Save(&snap); err != nil {
		// No snapshot for this architecture: the rules mirror is all
		// there is, so its failure is the caller's problem.
		os.Remove(base + ".snap")
		return rulesErr
	}
	if err := atomicWrite(base+".snap", snap.Bytes()); err != nil {
		return err
	}
	return rulesErr
}

// DeleteTenant removes a tenant's persisted files.
func (st *State) DeleteTenant(name string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.deleteTenantLocked(name)
}

func (st *State) deleteTenantLocked(name string) {
	base := st.tenantBase(name)
	os.Remove(base + ".rules")
	os.Remove(base + ".snap")
}

// Tenants lists the persisted tenant names, sorted.
func (st *State) Tenants() ([]string, error) {
	des, err := os.ReadDir(filepath.Join(st.dir, "tenants"))
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	for _, de := range des {
		base, ok := strings.CutSuffix(de.Name(), ".rules")
		if !ok {
			if base, ok = strings.CutSuffix(de.Name(), ".snap"); !ok {
				continue
			}
		}
		name, err := url.PathUnescape(base)
		if err != nil || seen[name] {
			continue
		}
		seen[name] = true
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadTenant reads a tenant's persisted artifacts: the parsed rules file
// (nil when absent or unparsable) and the raw snapshot bytes (nil when
// absent). Both nil means nothing usable survives on disk.
func (st *State) LoadTenant(name string) (defs []sfa.RuleDef, snap []byte) {
	base := st.tenantBase(name)
	if f, err := os.Open(base + ".rules"); err == nil {
		if d, err := ParseRules(f); err == nil {
			defs = d
		}
		f.Close()
	}
	if b, err := os.ReadFile(base + ".snap"); err == nil {
		snap = b
	}
	return defs, snap
}

// atomicWrite writes data to path via a temp file and rename, so a crash
// mid-write can never leave a half-written state file (the loader would
// reject a torn snapshot anyway — CRC — but the rules mirror has no such
// guard).
func atomicWrite(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// defsEqual reports whether two rule lists define the same rules
// (name, pattern, flags), order-insensitively.
func defsEqual(a, b []sfa.RuleDef) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]sfa.RuleDef(nil), a...)
	bs := append([]sfa.RuleDef(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
