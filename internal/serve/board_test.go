package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/sfa"
)

func defsAB() []sfa.RuleDef {
	return []sfa.RuleDef{
		{Name: "ab", Pattern: `(ab)*`},
		{Name: "cd", Pattern: `(cd)*e?`},
	}
}

func TestRuleboardReloadSwapsGenerations(t *testing.T) {
	b, err := NewRuleboard(defsAB(), sfa.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.Generation() != 1 {
		t.Fatalf("initial generation %d", b.Generation())
	}
	if got := b.Scan([]byte("abab")); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("gen 1 scan: %v", got)
	}

	next := append(defsAB(), sfa.RuleDef{Name: "xy", Pattern: `(xy)+`})
	res, err := b.Reload(next)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || b.Generation() != 2 {
		t.Fatalf("reload generation %d / %d", res.Generation, b.Generation())
	}
	if res.RulesAdded != 1 || res.RulesRemoved != 0 {
		t.Fatalf("reload stats %+v", res.ReloadStats)
	}
	if got := b.Scan([]byte("xy")); !reflect.DeepEqual(got, []string{"xy"}) {
		t.Fatalf("gen 2 scan: %v", got)
	}
	// No stream was open on generation 1, so it drains immediately.
	select {
	case <-res.Drained:
	case <-time.After(5 * time.Second):
		t.Fatal("idle old generation did not drain")
	}
}

func TestRuleboardFailedReloadKeepsServing(t *testing.T) {
	b, err := NewRuleboard(defsAB(), sfa.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Reload([]sfa.RuleDef{{Name: "bad", Pattern: `(`}}); err == nil {
		t.Fatal("invalid pattern must fail the reload")
	}
	if b.Generation() != 1 {
		t.Fatalf("failed reload advanced the generation to %d", b.Generation())
	}
	if got := b.Scan([]byte("abab")); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("board corrupted after failed reload: %v", got)
	}
}

// TestRuleboardStreamSurvivesReload is the drain contract: a stream
// opened before a reload keeps matching its own generation's rules, the
// old generation reports drained only after the stream closes, and
// writes interleaved with reloads stay split-invariant.
func TestRuleboardStreamSurvivesReload(t *testing.T) {
	b, err := NewRuleboard(defsAB(), sfa.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	st.Write([]byte("ab"))

	// Generation 2 removes rule "ab" entirely.
	res, err := b.Reload([]sfa.RuleDef{{Name: "cd", Pattern: `(cd)*e?`}})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-res.Drained:
		t.Fatal("old generation drained while a stream was still open")
	case <-time.After(20 * time.Millisecond):
	}

	// The pinned stream continues against generation 1.
	st.Write([]byte("ab"))
	if got := st.Names(); !reflect.DeepEqual(got, []string{"ab"}) {
		t.Fatalf("pinned stream lost its generation: %v", got)
	}
	if st.Generation() != 1 {
		t.Fatalf("stream generation %d", st.Generation())
	}
	// New scans see generation 2 (no "ab" rule anymore).
	if got := b.Scan([]byte("abab")); got != nil {
		t.Fatalf("new scan saw retired rules: %v", got)
	}

	st.Close()
	select {
	case <-res.Drained:
	case <-time.After(5 * time.Second):
		t.Fatal("old generation did not drain after the stream closed")
	}
	st.Close() // idempotent
}

// TestRuleboardConcurrentScansAndReloads is the -race torture loop:
// streams and one-shot scans run against continuously reloading rules.
// Rule "keep" exists in every generation, so every verdict on matching
// input must contain it no matter which generation served the scan.
func TestRuleboardConcurrentScansAndReloads(t *testing.T) {
	keep := sfa.RuleDef{Name: "keep", Pattern: `a+`}
	toggle := sfa.RuleDef{Name: "toggle", Pattern: `b+`}
	b, err := NewRuleboard([]sfa.RuleDef{keep}, sfa.WithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	iters := 60
	if raceEnabled {
		iters = 25
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st, err := b.NewStream()
				if err != nil {
					errs <- err
					return
				}
				st.Write([]byte("aa"))
				st.Write(nil)
				st.Write([]byte("a"))
				names := st.Names()
				st.Close()
				found := false
				for _, n := range names {
					if n == "keep" {
						found = true
					}
				}
				if !found {
					errs <- fmt.Errorf("verdict lost rule keep: %v", names)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var defs []sfa.RuleDef
			if i%2 == 0 {
				defs = []sfa.RuleDef{keep, toggle}
			} else {
				defs = []sfa.RuleDef{keep}
			}
			if _, err := b.Reload(defs); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHubTenantsAreIndependent(t *testing.T) {
	h := NewHub(sfa.WithThreads(1))
	created, _, res, err := h.SetRules("web", defsAB())
	if err != nil || !created || res.Generation != 1 {
		t.Fatalf("create web: created=%v res=%+v err=%v", created, res, err)
	}
	created, _, _, err = h.SetRules("db", []sfa.RuleDef{{Name: "sel", Pattern: `x(sel)+`}})
	if err != nil || !created {
		t.Fatalf("create db: %v", err)
	}
	if got := h.Names(); !reflect.DeepEqual(got, []string{"db", "web"}) {
		t.Fatalf("Names: %v", got)
	}

	// Reloading web must not touch db's generation.
	created, _, res, err = h.SetRules("web", append(defsAB(), sfa.RuleDef{Name: "z", Pattern: `z+`}))
	if err != nil || created {
		t.Fatalf("reload web: created=%v err=%v", created, err)
	}
	if res.Generation != 2 {
		t.Fatalf("web generation %d", res.Generation)
	}
	db, _ := h.Tenant("db")
	if db.Generation() != 1 {
		t.Fatalf("db generation moved to %d", db.Generation())
	}

	if !h.Delete("db") || h.Delete("db") {
		t.Fatal("delete semantics broken")
	}
	if _, ok := h.Tenant("db"); ok {
		t.Fatal("deleted tenant still resolvable")
	}
	if _, _, _, err := h.SetRules("", defsAB()); err == nil {
		t.Fatal("empty tenant name accepted")
	}
}

// TestHubSetRulesDeleteRace: a PUT that races a DELETE must never report
// success for rules that are not actually live — if the reload won, the
// board stays (or is re-) registered with the reloaded rules.
func TestHubSetRulesDeleteRace(t *testing.T) {
	h := NewHub(sfa.WithThreads(1))
	if _, _, _, err := h.SetRules("t", defsAB()); err != nil {
		t.Fatal(err)
	}
	iters := 40
	if raceEnabled {
		iters = 15
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_, b, res, err := h.SetRules("t", defsAB())
			if err != nil {
				errs <- err
				return
			}
			// The contract under test: after SetRules returns, the board
			// it reports is registered and carries the result's
			// generation or later (a subsequent delete may remove it, but
			// a *prior* one must not have swallowed the update).
			if got, ok := h.Tenant("t"); ok && got != b && got.Generation() < res.Generation {
				errs <- fmt.Errorf("registered board behind the reported reload: %d < %d",
					got.Generation(), res.Generation)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			h.Delete("t")
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Final PUT must always leave the tenant resolvable.
	if _, _, _, err := h.SetRules("t", defsAB()); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Tenant("t"); !ok {
		t.Fatal("tenant missing after a successful SetRules")
	}
}

// lazyGapDefs builds bounded-gap rules whose combined D-SFA the eager
// builder cannot afford under a tiny shard budget — the population the
// hub's table budget exists for.
func lazyGapDefs(n int) []sfa.RuleDef {
	defs := make([]sfa.RuleDef, n)
	for i := range defs {
		defs[i] = sfa.RuleDef{
			Name:    fmt.Sprintf("gap%02d", i),
			Pattern: fmt.Sprintf("q%02x.{0,%d}z%02x", i, 8+i%5, i*3),
		}
	}
	return defs
}

func TestHubTableBudgetPerTenant(t *testing.T) {
	hub := NewHub(sfa.WithSearch(), sfa.WithThreads(1), sfa.WithLazyCompile(), sfa.WithShardStateBudget(256))
	root := sfa.NewTableBudget(8 << 20)
	hub.SetTableBudget(root, 1<<20)

	for _, name := range []string{"alpha", "beta"} {
		if _, _, _, err := hub.SetRules(name, lazyGapDefs(6)); err != nil {
			t.Fatalf("tenant %s: %v", name, err)
		}
	}
	// Drive traffic so lazy states materialize and get charged.
	for _, name := range []string{"alpha", "beta"} {
		b, ok := hub.Tenant(name)
		if !ok {
			t.Fatalf("tenant %s missing", name)
		}
		payload := []byte("q00aaaaz00 q01bbbbbz03 nothing here")
		if got := b.Scan(payload); len(got) == 0 {
			t.Fatalf("tenant %s: planted literals matched nothing", name)
		}
	}

	rootStats := root.Stats()
	if rootStats.UsedBytes == 0 || rootStats.Fills == 0 {
		t.Fatalf("hub budget saw no lazy activity: %+v", rootStats)
	}
	reply := metricsReply(hub)
	if reply.TableBudget == nil || reply.TableBudget.ResidentBytes == 0 {
		t.Fatalf("/metrics missing hub table budget: %+v", reply.TableBudget)
	}
	for _, name := range []string{"alpha", "beta"} {
		tc := reply.Tenants[name]
		if tc.TableBudget == nil {
			t.Fatalf("/metrics missing tenant %s table budget", name)
		}
		if tc.TableBudget.LimitBytes != 1<<20 {
			t.Fatalf("tenant %s budget limit %d, want %d", name, tc.TableBudget.LimitBytes, 1<<20)
		}
		if tc.TableBudget.ResidentBytes == 0 || tc.TableBudget.Fills == 0 {
			t.Fatalf("tenant %s budget shows no residency: %+v", name, tc.TableBudget)
		}
	}
	// The children charge the root: the sum of tenant residency can never
	// exceed what the root accounts for.
	sum := reply.Tenants["alpha"].TableBudget.ResidentBytes + reply.Tenants["beta"].TableBudget.ResidentBytes
	if sum > rootStats.UsedBytes {
		t.Fatalf("tenant residency %d exceeds root accounting %d", sum, rootStats.UsedBytes)
	}
	// A reload keeps the same child budget (warm lazy state accounting
	// survives rules updates).
	if _, _, _, err := hub.SetRules("alpha", lazyGapDefs(7)); err != nil {
		t.Fatal(err)
	}
	after := metricsReply(hub)
	if after.Tenants["alpha"].TableBudget.Fills < reply.Tenants["alpha"].TableBudget.Fills {
		t.Fatal("reload reset the tenant budget counters")
	}
}
