package serve

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/sfa"
)

// generation is one immutable compiled rule set plus the accounting that
// lets a reload retire it safely: streams pin the generation they were
// opened against and release it when closed; once a generation is both
// retired (no longer current) and unpinned, its Drained channel closes.
type generation struct {
	seq       uint64
	defs      []sfa.RuleDef
	rs        *sfa.RuleSet
	inflight  atomic.Int64
	retired   atomic.Bool
	drainDone sync.Once
	drained   chan struct{}
}

func newGeneration(seq uint64, defs []sfa.RuleDef, rs *sfa.RuleSet) *generation {
	return &generation{seq: seq, defs: defs, rs: rs, drained: make(chan struct{})}
}

func (g *generation) maybeDrained() {
	if g.retired.Load() && g.inflight.Load() == 0 {
		g.drainDone.Do(func() { close(g.drained) })
	}
}

func (g *generation) release() {
	g.inflight.Add(-1)
	g.maybeDrained()
}

func (g *generation) retire() {
	g.retired.Store(true)
	g.maybeDrained()
}

// Ruleboard serves one tenant's rule set across hot reloads. All methods
// are safe for concurrent use; reloads are serialized among themselves
// but never block scans — readers always see either the old or the new
// generation, atomically.
type Ruleboard struct {
	mu   sync.Mutex // serializes Reload/initial Load
	gens atomic.Uint64
	cur  atomic.Pointer[generation]
}

// NewRuleboard compiles the initial rule set. opts are fixed for the
// board's lifetime — reuse across generations is only sound when every
// generation is compiled identically.
func NewRuleboard(defs []sfa.RuleDef, opts ...sfa.Option) (*Ruleboard, error) {
	rs, err := sfa.NewRuleSetFromDefs(defs, opts...)
	if err != nil {
		return nil, err
	}
	b := &Ruleboard{}
	b.gens.Store(1)
	b.cur.Store(newGeneration(1, append([]sfa.RuleDef(nil), defs...), rs))
	return b, nil
}

// NewRuleboardFromSet wraps an already-compiled rule set — typically one
// reconstructed from a snapshot by sfa.LoadRuleSet — as generation 1 of
// a fresh board: the warm-restart path pays no compilation at all.
func NewRuleboardFromSet(rs *sfa.RuleSet) *Ruleboard {
	b := &Ruleboard{}
	b.gens.Store(1)
	b.cur.Store(newGeneration(1, rs.Defs(), rs))
	return b
}

// current returns the current generation's definitions and rule set from
// one atomic load (persistence must not pair one generation's defs with
// another's automata).
func (b *Ruleboard) current() ([]sfa.RuleDef, *sfa.RuleSet) {
	g := b.cur.Load()
	return g.defs, g.rs
}

// DrainCurrent marks the current generation retired without replacing
// it and returns its drained channel, which closes once every stream
// and scan in flight against it has finished. Shutdown-only: scans that
// start afterwards still serve correctly, but are no longer counted
// toward the returned channel.
func (b *Ruleboard) DrainCurrent() <-chan struct{} {
	g := b.cur.Load()
	g.retire()
	return g.drained
}

// ReloadResult reports what a Reload did. Drained closes once every
// stream and scan that was in flight against the replaced generation has
// finished — observability for shutdown and for the drain tests; nothing
// waits on it internally. When there was no previous generation (tenant
// creation), Drained is already closed.
type ReloadResult struct {
	sfa.ReloadStats
	Generation uint64
	Shards     int // shard count of the generation this result describes
	Drained    <-chan struct{}
}

// drainedNow is the pre-closed channel creation-path results carry.
var drainedNow = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// Reload atomically replaces the rule set with one compiled from defs,
// rebuilding only the combined shards whose rule membership changed. A
// failed build leaves the current generation serving untouched. Scans
// that started before the swap drain against their own generation; scans
// that start after it see the new rules.
func (b *Ruleboard) Reload(defs []sfa.RuleDef) (ReloadResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	old := b.cur.Load()
	rs, stats, err := old.rs.Rebuild(defs)
	if err != nil {
		return ReloadResult{}, err
	}
	seq := b.gens.Add(1)
	b.cur.Store(newGeneration(seq, append([]sfa.RuleDef(nil), defs...), rs))
	old.retire()
	return ReloadResult{
		ReloadStats: stats,
		Generation:  seq,
		Shards:      rs.NumShards(),
		Drained:     old.drained,
	}, nil
}

// Generation returns the current generation number (1 = initial load).
func (b *Ruleboard) Generation() uint64 { return b.cur.Load().seq }

// RuleSet returns the current generation's compiled set — for stats
// reporting only; scans should go through Scan/NewStream so they pin a
// generation.
func (b *Ruleboard) RuleSet() *sfa.RuleSet { return b.cur.Load().rs }

// Snapshot returns the current rule set together with its generation
// number from one atomic load, so callers reporting both cannot pair one
// generation's stats with another's number across a concurrent reload.
func (b *Ruleboard) Snapshot() (*sfa.RuleSet, uint64) {
	g := b.cur.Load()
	return g.rs, g.seq
}

// Defs returns a copy of the current generation's rule definitions.
func (b *Ruleboard) Defs() []sfa.RuleDef {
	g := b.cur.Load()
	return append([]sfa.RuleDef(nil), g.defs...)
}

// pin loads the current generation and marks one scan in flight on it,
// retrying across a concurrent swap so the drain accounting never misses
// a pinned scan: after the increment, either the generation is still
// current (a later retire will wait for the release), or it was swapped
// out in between and the pin is retried on the new one.
func (b *Ruleboard) pin() *generation {
	for {
		g := b.cur.Load()
		g.inflight.Add(1)
		if b.cur.Load() == g {
			return g
		}
		g.release()
	}
}

// Scan matches data against the current generation one-shot and returns
// the matching rule names.
func (b *Ruleboard) Scan(data []byte) []string {
	g := b.pin()
	defer g.release()
	return g.rs.Scan(data, 0)
}

// Stream is a RuleStream pinned to the generation it was opened against:
// a hot reload mid-scan neither drops nor corrupts it — the stream keeps
// matching the rules it started with, and the old generation counts it
// until Close.
type Stream struct {
	*sfa.RuleStream
	gen   *generation
	close sync.Once
}

// Generation returns the generation this stream is pinned to.
func (s *Stream) Generation() uint64 { return s.gen.seq }

// Names resolves the stream's current mask against its own generation's
// rule names (the pinned set, not whatever is current now).
func (s *Stream) Names() []string { return s.Matches() }

// Close releases the stream's pin on its generation. It is safe to call
// more than once; the stream must not be written after Close.
func (s *Stream) Close() {
	s.close.Do(s.gen.release)
}

// NewStream opens a streaming scan against the current generation. The
// caller must Close it (a deferred Close is the usual shape) so retired
// generations can report drained.
func (b *Ruleboard) NewStream() (*Stream, error) {
	g := b.pin()
	st, err := g.rs.NewStream()
	if err != nil {
		g.release()
		return nil, err
	}
	return &Stream{RuleStream: st, gen: g}, nil
}

// Hub hosts many named tenants, each an independently reloadable
// Ruleboard. Every tenant's engines dispatch through the process-wide
// engine worker pool, so resident tenants share one set of workers.
type Hub struct {
	opts    []sfa.Option
	metrics *Metrics
	state   *State // nil = no persistence
	mu      sync.RWMutex
	tenants map[string]*Ruleboard

	// budget is the hub-wide table budget lazily compiled tenants charge
	// (nil = default process budget); each tenant gets a Child bounded by
	// tenantLimit, created on first use and kept across reloads so warm
	// lazy state survives a rules update.
	budget      *sfa.TableBudget
	tenantLimit int64
	bmu         sync.Mutex
	budgets     map[string]*sfa.TableBudget

	// flight is the always-on scan flight recorder: the scan handler
	// records one ScanRecord per request, /debug/scans reads the last N.
	// Recording is wait-free and allocation-free, so it stays on at any
	// scan rate; SetFlightRecords resizes or disables it.
	flight *sfa.FlightRecorder
}

// DefaultFlightRecords is the number of scan records the hub's flight
// recorder retains unless SetFlightRecords overrides it. 256 records ×
// ~150 bytes is a fixed ~40 KiB — cheap enough to keep always on.
const DefaultFlightRecords = 256

// NewHub creates an empty hub; opts apply to every tenant's rule sets.
func NewHub(opts ...sfa.Option) *Hub {
	return &Hub{
		opts:    opts,
		metrics: newMetrics(),
		tenants: make(map[string]*Ruleboard),
		flight:  sfa.NewFlightRecorder(DefaultFlightRecords),
	}
}

// SetFlightRecords resizes the scan flight recorder to retain the last
// n records (rounded up to a power of two); n <= 0 disables recording.
// Call before serving, like SetState — the ring is swapped whole, not
// migrated, so earlier records are dropped.
func (h *Hub) SetFlightRecords(n int) {
	h.flight = sfa.NewFlightRecorder(n)
}

// Flight returns the hub's scan flight recorder. It is nil when
// recording is disabled — which the recorder's own methods tolerate, so
// callers may use the result unconditionally.
func (h *Hub) Flight() *sfa.FlightRecorder { return h.flight }

// SetTableBudget routes every tenant's lazy shards (WithLazyCompile)
// through per-tenant children of b: a tenant may charge at most
// perTenantLimit bytes (<= 0 = only the hub-wide limit binds), and all
// tenants together at most b's limit. Call before any tenant exists,
// like SetState — boards compiled earlier keep charging the budget the
// compile saw.
func (h *Hub) SetTableBudget(b *sfa.TableBudget, perTenantLimit int64) {
	h.budget = b
	h.tenantLimit = perTenantLimit
	h.budgets = make(map[string]*sfa.TableBudget)
}

// TableBudget returns the hub-wide budget, nil when none was set.
func (h *Hub) TableBudget() *sfa.TableBudget { return h.budget }

// tenantOpts returns the compile options for one tenant's boards: the
// hub options plus the tenant's scan-stats sink (so every generation
// records into the same per-tenant history) and, under SetTableBudget,
// the tenant's child budget.
func (h *Hub) tenantOpts(name string) []sfa.Option {
	opts := make([]sfa.Option, 0, len(h.opts)+2)
	opts = append(opts, h.opts...)
	opts = append(opts, sfa.WithScanStats(&h.metrics.Tenant(name).Scan))
	if h.budget != nil {
		opts = append(opts, sfa.WithTableBudget(h.tenantBudget(name)))
	}
	return opts
}

// tenantBudget returns (creating on first use) the named tenant's child
// budget. The child survives tenant deletion — like the tenant's metrics
// entry, and so a recreated tenant cannot escape its bound by cycling.
func (h *Hub) tenantBudget(name string) *sfa.TableBudget {
	h.bmu.Lock()
	defer h.bmu.Unlock()
	tb := h.budgets[name]
	if tb == nil {
		tb = h.budget.Child(h.tenantLimit)
		h.budgets[name] = tb
	}
	return tb
}

// tenantBudgetIfAny is tenantBudget without the create — the metrics
// path must not mint budgets for tenants that never compiled lazily.
func (h *Hub) tenantBudgetIfAny(name string) *sfa.TableBudget {
	h.bmu.Lock()
	defer h.bmu.Unlock()
	return h.budgets[name]
}

// Metrics returns the hub's counters (the /metrics endpoint's source).
func (h *Hub) Metrics() *Metrics { return h.metrics }

// State returns the hub's persistence root, nil when none is set.
func (h *Hub) State() *State { return h.state }

// SetState wires a persistence directory into the hub: every successful
// SetRules/Delete is mirrored there, and the state's shard cache is
// appended to the compile options so even rebuilt shards warm from disk.
// Call before any tenant exists (boards compiled without the cache
// option could not be reused across a Reload with it).
func (h *Hub) SetState(st *State) {
	h.state = st
	h.opts = append(h.opts, sfa.WithShardCache(st.Cache().Dir()))
}

// persistTenant mirrors a board's current generation to the state
// directory, best-effort: serving stays up even if the disk does not.
//
// Persistence runs outside h.mu (builds and disk writes must not stall
// other tenants' lookups), so it re-verifies under the state lock that
// b is still the registered board: a SetRules whose persist raced a
// Delete (or a replacing creator) must not resurrect files the winner
// removed — whoever owns the registration owns the files. Delete's file
// removal re-checks symmetrically, so every file operation reflects the
// registration map as of its own critical section.
func (h *Hub) persistTenant(name string, b *Ruleboard) {
	st := h.state
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	h.mu.RLock()
	cur := h.tenants[name]
	h.mu.RUnlock()
	if cur != b {
		return
	}
	defs, rs := b.current()
	if err := st.saveTenantLocked(name, defs, rs); err != nil {
		h.metrics.persistErrors.Add(1)
	}
}

// PersistAll re-mirrors every resident tenant (the shutdown path's final
// sync; each SetRules already persisted on its way in).
func (h *Hub) PersistAll() {
	h.mu.RLock()
	boards := make(map[string]*Ruleboard, len(h.tenants))
	for name, b := range h.tenants {
		boards[name] = b
	}
	h.mu.RUnlock()
	for name, b := range boards {
		h.persistTenant(name, b)
	}
}

// Restore loads every tenant persisted in the hub's state directory,
// preferring the snapshot (warm: no compilation), falling back to a
// Rebuild from the snapshot when the rules file was edited offline
// (partial warm: shard reuse + shard cache), and to a cold compile of
// the rules text when no snapshot survives. Call once, before serving.
func (h *Hub) Restore() (RestoreStats, error) {
	var stats RestoreStats
	if h.state == nil {
		return stats, nil
	}
	names, err := h.state.Tenants()
	if err != nil {
		return stats, err
	}
	for _, name := range names {
		fileDefs, snap := h.state.LoadTenant(name)
		board := h.restoreBoard(name, fileDefs, snap, &stats)
		if board == nil {
			stats.Failed = append(stats.Failed, name)
			continue
		}
		h.mu.Lock()
		if h.tenants[name] == nil {
			h.tenants[name] = board
			stats.Tenants++
		}
		h.mu.Unlock()
	}
	return stats, nil
}

// restoreBoard materializes one tenant from its persisted artifacts.
func (h *Hub) restoreBoard(name string, fileDefs []sfa.RuleDef, snap []byte, stats *RestoreStats) *Ruleboard {
	opts := h.tenantOpts(name)
	if snap != nil {
		rs, err := sfa.LoadRuleSet(bytes.NewReader(snap), opts...)
		if err == nil {
			if fileDefs == nil || defsEqual(fileDefs, rs.Defs()) {
				h.metrics.warmLoads.Add(1)
				stats.Warm++
				return NewRuleboardFromSet(rs)
			}
			// Rules text edited while the server was down: treat it as a
			// hot reload against the snapshot generation.
			if next, _, err := rs.Rebuild(fileDefs); err == nil {
				h.metrics.rebuiltLoads.Add(1)
				stats.Rebuilt++
				return NewRuleboardFromSet(next)
			}
		}
	}
	if fileDefs != nil {
		if b, err := NewRuleboard(fileDefs, opts...); err == nil {
			h.metrics.coldBuilds.Add(1)
			stats.Cold++
			return b
		}
	}
	return nil
}

// RestoreStats reports what Restore did.
type RestoreStats struct {
	Tenants int      // boards registered
	Warm    int      // restored whole from snapshot, zero compilation
	Rebuilt int      // snapshot + Rebuild (rules file drifted)
	Cold    int      // compiled from rules text
	Failed  []string // tenants with no usable artifacts
}

// Drain retires every tenant's current generation and waits (bounded by
// ctx) until all in-flight streamed scans against them have finished —
// the generation-pinning half of graceful shutdown; stop the listener
// first so no new scans arrive.
func (h *Hub) Drain(ctx context.Context) error {
	h.mu.RLock()
	boards := make([]*Ruleboard, 0, len(h.tenants))
	for _, b := range h.tenants {
		boards = append(boards, b)
	}
	h.mu.RUnlock()
	for _, b := range boards {
		select {
		case <-b.DrainCurrent():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// SetRules creates the named tenant or hot-reloads an existing one.
// created reports which happened; for a reload, res carries the reuse
// stats. The returned board is the one the rules were applied to — use
// it rather than a fresh Tenant lookup, which can observe a concurrent
// Delete.
//
// Compilation runs outside the hub lock — builds can take seconds and
// must not stall other tenants' lookups — so membership is re-verified
// under the write lock afterwards: a reload that raced a Delete
// re-registers its board (the PUT wins — its rules really are live),
// and a creator or reloader that lost to a concurrent writer retries
// against the winner instead of reporting success for a dropped update.
func (h *Hub) SetRules(name string, defs []sfa.RuleDef) (created bool, board *Ruleboard, res ReloadResult, err error) {
	if name == "" {
		return false, nil, ReloadResult{}, fmt.Errorf("serve: empty tenant name")
	}
	for {
		h.mu.RLock()
		b := h.tenants[name]
		h.mu.RUnlock()

		if b == nil {
			nb, err := NewRuleboard(defs, h.tenantOpts(name)...)
			if err != nil {
				return false, nil, ReloadResult{}, err
			}
			h.mu.Lock()
			if h.tenants[name] != nil {
				// Lost a create race; apply to the winner as a reload.
				h.mu.Unlock()
				continue
			}
			h.tenants[name] = nb
			h.mu.Unlock()
			h.persistTenant(name, nb)
			return true, nb, ReloadResult{
				Generation: 1,
				Shards:     nb.RuleSet().NumShards(),
				Drained:    drainedNow,
			}, nil
		}

		res, err := b.Reload(defs)
		if err != nil {
			return false, b, ReloadResult{}, err
		}
		tm := h.metrics.Tenant(name)
		tm.Reloads.Add(1)
		tm.ShardsReused.Add(int64(res.ShardsReused))
		tm.ShardsRebuilt.Add(int64(res.ShardsRebuilt))
		h.mu.Lock()
		switch h.tenants[name] {
		case b:
			h.mu.Unlock()
			h.persistTenant(name, b)
			return false, b, res, nil
		case nil:
			// Deleted mid-reload: keep the reloaded board registered.
			h.tenants[name] = b
			h.mu.Unlock()
			h.persistTenant(name, b)
			return false, b, res, nil
		default:
			// Replaced mid-reload by a concurrent creator: retry there.
			h.mu.Unlock()
		}
	}
}

// Tenant returns the named tenant's board.
func (h *Hub) Tenant(name string) (*Ruleboard, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	b, ok := h.tenants[name]
	return b, ok
}

// Delete removes a tenant (and its persisted state). In-flight scans on
// it drain against their pinned generations; new lookups fail
// immediately.
func (h *Hub) Delete(name string) bool {
	h.mu.Lock()
	if _, ok := h.tenants[name]; !ok {
		h.mu.Unlock()
		return false
	}
	delete(h.tenants, name)
	h.mu.Unlock()
	if st := h.state; st != nil {
		st.mu.Lock()
		h.mu.RLock()
		_, reregistered := h.tenants[name]
		h.mu.RUnlock()
		if !reregistered {
			// Only remove files while the name is actually unregistered;
			// a concurrent creator that re-registered in the window owns
			// them now (see persistTenant).
			st.deleteTenantLocked(name)
		}
		st.mu.Unlock()
	}
	return true
}

// Names lists the tenants in sorted order.
func (h *Hub) Names() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.tenants))
	for name := range h.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
