package serve

import (
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/multi"
	"repro/internal/obs"
	"repro/sfa"
)

// Prometheus rendering of the hub's metric surface — the same data the
// JSON /metrics document carries, reshaped for scraping: per-tenant
// traffic and hot-path scan histograms, build reports, pool scheduling,
// table budgets, and Go runtime series. GET /metrics negotiates between
// the two (JSON stays the default; see wantsProm).
//
// The exposition format requires every sample of one metric name to sit
// under a single # TYPE header, so this file is written metric-major:
// tenant rows are collected first, then each metric loops over them.

// promRow is one tenant's collected state, gathered up front so the
// metric-major emission loops below never re-lock the hub.
type promRow struct {
	name string
	tm   *TenantMetrics
	scan obs.ScanSnapshot

	resident bool
	gen      uint64
	rules    int
	shards   int
	tableB   int64
	pf       sfa.PrefilterStats
	build    sfa.BuildReport
	lazy     lazyTotals
	// infos/heat feed the per-shard attribution and per-rule heat rows
	// (heat arrives hottest-first from RuleSet.RuleHeat).
	infos []sfa.ShardInfo
	heat  []sfa.RuleHeat

	budget *sfa.TableBudget
}

// lazyTotals sums the lazy-shard cache counters across a set's shards.
type lazyTotals struct {
	shards    int
	resident  int64
	fills     int64
	evictions int64
}

func promRows(h *Hub) []promRow {
	m := h.Metrics()
	names := map[string]bool{}
	for _, n := range h.Names() {
		names[n] = true
	}
	for _, n := range m.tenantNames() {
		names[n] = true
	}
	rows := make([]promRow, 0, len(names))
	for n := range names {
		row := promRow{name: n, tm: m.Tenant(n)}
		row.scan = row.tm.Scan.Snapshot()
		if b, ok := h.Tenant(n); ok {
			rs, gen := b.Snapshot()
			row.resident = true
			row.gen = gen
			row.rules = rs.Len()
			row.shards = rs.NumShards()
			row.pf = rs.PrefilterStats()
			row.build = rs.BuildReport()
			row.infos = rs.Shards()
			row.heat = rs.RuleHeat()
			for _, sh := range row.infos {
				row.tableB += sh.TableBytes
				if sh.Lazy {
					row.lazy.shards++
					row.lazy.resident += sh.ResidentBytes
					row.lazy.fills += sh.Fills
					row.lazy.evictions += sh.Evictions
				}
			}
		}
		row.budget = h.tenantBudgetIfAny(n)
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// writeProm renders the full exposition document.
func writeProm(w io.Writer, h *Hub) error {
	p := obs.NewPromWriter(w)
	m := h.Metrics()
	rows := promRows(h)

	p.Gauge("sfa_uptime_seconds", "Seconds since the hub started.",
		time.Since(m.start).Seconds())
	p.Gauge("sfa_process_start_time_seconds", "Unix time the hub started, for uptime math and deploy correlation.",
		float64(m.start.Unix()))
	commit, gover := buildInfo()
	p.Gauge("sfa_build_info", "Constant 1; the labels identify the running build.",
		1, "commit", commit, "go_version", gover)

	// Restore / persistence.
	p.Counter("sfa_restore_warm_total", "Tenants restored whole from snapshot.", m.warmLoads.Load())
	p.Counter("sfa_restore_rebuilt_total", "Tenants restored via snapshot plus Rebuild.", m.rebuiltLoads.Load())
	p.Counter("sfa_restore_cold_total", "Tenants restored by compiling rule text.", m.coldBuilds.Load())
	p.Counter("sfa_persist_errors_total", "Failed state-directory writes.", m.persistErrors.Load())
	if st := h.State(); st != nil {
		cs := st.Cache().Stats()
		p.Counter("sfa_shard_cache_hits_total", "Shard cache loads served from disk.", cs.Hits)
		p.Counter("sfa_shard_cache_misses_total", "Shard cache lookups that built instead.", cs.Misses)
		p.Counter("sfa_shard_cache_stores_total", "Shards written to the cache.", cs.Stores)
		p.Counter("sfa_shard_cache_errors_total", "Shard cache I/O errors.", cs.Errors)
		p.Gauge("sfa_shard_cache_entries", "Shards currently cached on disk.", float64(cs.Entries))
		p.Gauge("sfa_shard_cache_bytes", "On-disk shard cache footprint.", float64(cs.Bytes))
	}

	// Tenant traffic counters (persist across reloads and delete/re-add).
	for _, r := range rows {
		p.Gauge("sfa_tenant_resident", "1 when the tenant currently serves rules, 0 when only its history remains.",
			b2f(r.resident), "tenant", r.name)
	}
	for _, r := range rows {
		p.Counter("sfa_tenant_scans_total", "Completed scan requests.", r.tm.Scans.Load(), "tenant", r.name)
	}
	for _, r := range rows {
		p.Counter("sfa_tenant_scan_bytes_total", "Bytes scanned.", r.tm.ScanBytes.Load(), "tenant", r.name)
	}
	for _, r := range rows {
		p.Counter("sfa_tenant_reloads_total", "Successful hot reloads.", r.tm.Reloads.Load(), "tenant", r.name)
	}
	for _, r := range rows {
		p.Counter("sfa_tenant_shards_reused_total", "Shards carried across reloads.", r.tm.ShardsReused.Load(), "tenant", r.name)
	}
	for _, r := range rows {
		p.Counter("sfa_tenant_shards_rebuilt_total", "Shards rebuilt by reloads.", r.tm.ShardsRebuilt.Load(), "tenant", r.name)
	}
	for _, r := range rows {
		p.Counter("sfa_tenant_slow_scans_total", "Scan requests over the slow-scan threshold.", r.tm.SlowScans.Load(), "tenant", r.name)
	}

	// Hot-path scan stats (engine-recorded; survive reloads).
	for _, r := range rows {
		p.Counter("sfa_scan_chunks_total", "Chunks composed by the tenant's automata.", r.scan.Chunks, "tenant", r.name)
	}
	for _, r := range rows {
		p.Counter("sfa_scan_chunk_bytes_total", "Bytes walked by chunk composition.", r.scan.ChunkBytes, "tenant", r.name)
	}
	for _, r := range rows {
		p.Histogram("sfa_scan_compose_ns", "Per-chunk compose latency (log2 buckets, nanoseconds).", r.scan.ComposeNs, "tenant", r.name)
	}
	for _, r := range rows {
		p.Histogram("sfa_scan_chunk_size_bytes", "Composed chunk sizes (log2 buckets, bytes).", r.scan.ChunkSize, "tenant", r.name)
	}

	// Scan-handler stage latencies (HTTP layer).
	for _, r := range rows {
		p.Histogram("sfa_scan_read_ns", "Per-request wall time reading the scan body.", r.tm.ReadNs.Snapshot(), "tenant", r.name)
	}
	for _, r := range rows {
		p.Histogram("sfa_scan_match_ns", "Per-request wall time matching the scan body.", r.tm.MatchNs.Snapshot(), "tenant", r.name)
	}

	// Resident-generation shape.
	for _, r := range rows {
		if r.resident {
			p.Gauge("sfa_tenant_generation", "Current rule-set generation (1 = initial load).", float64(r.gen), "tenant", r.name)
		}
	}
	for _, r := range rows {
		if r.resident {
			p.Gauge("sfa_tenant_rules", "Rules in the current generation.", float64(r.rules), "tenant", r.name)
		}
	}
	for _, r := range rows {
		if r.resident {
			p.Gauge("sfa_tenant_shards", "Combined shards in the current generation.", float64(r.shards), "tenant", r.name)
		}
	}
	for _, r := range rows {
		if r.resident {
			p.Gauge("sfa_tenant_table_bytes", "Resident match-table bytes.", float64(r.tableB), "tenant", r.name)
		}
	}

	// Per-shard cost attribution, per-rule match heat, and the
	// speculation-viability coverage gauges — all under cardinality caps
	// (see writePromAttribution).
	writePromAttribution(p, rows)

	// Prefilter cascade. The dynamic counters reset on reload (they
	// belong to the generation), which Prometheus counters tolerate.
	writePromPrefilter(p, rows)

	// Build report of the generation currently serving.
	writePromBuild(p, rows)

	// Lazy-shard cache behaviour plus table budgets.
	writePromLazy(p, h, rows)

	// Engine worker pools: the scan pool and the construction pool.
	writePromPools(p,
		poolRow{"match", engine.DefaultPool().Stats()},
		poolRow{"build", multi.BuildPoolStats()})

	obs.WriteRuntimeMetrics(p)
	return p.Flush()
}

// Label-cardinality caps for the attribution series. Shard indices are
// already bounded in practice (the planner produces a handful), but a
// pathological set could shard per rule; everything past the cap is
// summed into shard="other" so totals stay exact. Rule series exist
// only for rules that actually matched, the hottest promRuleCap of
// them; the rest aggregate into rule="_other" ("_" cannot start a rule
// name, so the sentinel cannot collide). Both caps are documented in
// docs/observability.md — change them there too.
const (
	promShardCap = 64
	promRuleCap  = 32
)

// writePromAttribution emits the per-shard cost account, the boundary
// top-k coverage gauges, and the per-rule match heat, metric-major.
func writePromAttribution(p *obs.PromWriter, rows []promRow) {
	shardCounter := func(name, help string, v func(sfa.ShardInfo) int64) {
		for _, r := range rows {
			if !r.resident {
				continue
			}
			var other int64
			for i, sh := range r.infos {
				if i < promShardCap {
					p.Counter(name, help, v(sh), "tenant", r.name, "shard", strconv.Itoa(i))
				} else {
					other += v(sh)
				}
			}
			if len(r.infos) > promShardCap {
				p.Counter(name, help, other, "tenant", r.name, "shard", "other")
			}
		}
	}
	shardCounter("sfa_shard_compose_ns_total", "Wall time this shard's engine spent composing chunks and one-shot scans.",
		func(s sfa.ShardInfo) int64 { return s.ComposeNs })
	shardCounter("sfa_shard_scan_chunks_total", "Chunks and one-shot scans that reached this shard's automaton.",
		func(s sfa.ShardInfo) int64 { return s.ScanChunks })
	shardCounter("sfa_shard_scan_bytes_total", "Bytes this shard's automaton actually walked.",
		func(s sfa.ShardInfo) int64 { return s.ScanBytes })
	shardCounter("sfa_shard_candidate_windows_total", "Prefilter candidate windows this shard verified.",
		func(s sfa.ShardInfo) int64 { return s.CandWindows })

	// Boundary-state concentration per eager shard: the fraction of
	// chunk boundaries covered by the k hottest states, k ∈ {1,4,8} —
	// the ROADMAP's speculation-viability readout. Only shards that
	// recorded samples emit (the table fills via WithScanStats, which
	// the hub attaches per tenant).
	for _, r := range rows {
		if !r.resident {
			continue
		}
		for i, sh := range r.infos {
			if i >= promShardCap || sh.Lazy {
				continue
			}
			samples := sh.HotOther
			for _, sc := range sh.HotStates {
				samples += sc.Count
			}
			if samples == 0 {
				continue
			}
			for _, k := range []int{1, 4, 8} {
				p.Gauge("sfa_shard_boundary_topk_coverage",
					"Fraction of chunk boundaries landing in the shard's k hottest states.",
					obs.TopKCoverage(sh.HotStates, sh.HotOther, k),
					"tenant", r.name, "shard", strconv.Itoa(i), "k", strconv.Itoa(k))
			}
		}
	}

	// Per-rule match heat: hottest first, capped; the tail sums into
	// rule="_other". Rules with zero matches emit nothing.
	for _, r := range rows {
		if !r.resident {
			continue
		}
		var other int64
		emitted := 0
		for _, rh := range r.heat {
			if rh.Matches == 0 {
				break // heat is sorted descending: the rest are zero too
			}
			if emitted < promRuleCap {
				p.Counter("sfa_rule_matches_total", "Verdicts that reported this rule matched.",
					rh.Matches, "tenant", r.name, "rule", rh.Name)
				emitted++
			} else {
				other += rh.Matches
			}
		}
		if other > 0 {
			p.Counter("sfa_rule_matches_total", "Verdicts that reported this rule matched.",
				other, "tenant", r.name, "rule", "_other")
		}
	}
}

func writePromPrefilter(p *obs.PromWriter, rows []promRow) {
	res := func(r promRow) bool { return r.resident && r.pf.Enabled }
	for _, r := range rows {
		if res(r) {
			p.Gauge("sfa_prefilter_literals", "Distinct literals the cascade matches.", float64(r.pf.Literals), "tenant", r.name, "stage", r.pf.Stage)
		}
	}
	for _, r := range rows {
		if res(r) {
			p.Counter("sfa_prefilter_matcher_calls_total", "Literal matcher invocations.", r.pf.MatcherCalls, "tenant", r.name)
		}
	}
	for _, r := range rows {
		if res(r) {
			p.Counter("sfa_prefilter_matcher_bytes_total", "Input bytes swept by the literal matcher.", r.pf.MatcherBytes, "tenant", r.name)
		}
	}
	for _, r := range rows {
		if res(r) {
			p.Counter("sfa_prefilter_matcher_hits_total", "Literal occurrences surfaced.", r.pf.MatcherHits, "tenant", r.name)
		}
	}
	for _, r := range rows {
		if res(r) {
			p.Counter("sfa_prefilter_candidate_bytes_total", "Bytes the automata actually walked.", r.pf.CandidateBytes, "tenant", r.name)
		}
	}
	for _, r := range rows {
		if res(r) {
			p.Counter("sfa_prefilter_total_bytes_total", "Bytes the automata would have walked unfiltered.", r.pf.TotalBytes, "tenant", r.name)
		}
	}
	for _, r := range rows {
		if res(r) {
			p.Counter("sfa_prefilter_shards_skipped_total", "One-shot shard scans skipped outright.", r.pf.ShardsSkipped, "tenant", r.name)
		}
	}
	for _, r := range rows {
		if res(r) {
			p.Counter("sfa_prefilter_chunks_skipped_total", "Stream shard-chunks with no candidate work.", r.pf.ChunksSkipped, "tenant", r.name)
		}
	}
	for _, r := range rows {
		if res(r) {
			p.Counter("sfa_prefilter_chunks_scanned_total", "Stream shard-chunks with candidate windows.", r.pf.ChunksScanned, "tenant", r.name)
		}
	}
}

func writePromBuild(p *obs.PromWriter, rows []promRow) {
	type g struct {
		name, help string
		v          func(sfa.BuildReport) float64
	}
	gauges := []g{
		{"sfa_build_plan_bins", "Bins the planner's first-fit packing produced.", func(b sfa.BuildReport) float64 { return float64(b.PlanBins) }},
		{"sfa_build_splits", "Bin halvings forced by budget overruns.", func(b sfa.BuildReport) float64 { return float64(b.Splits) }},
		{"sfa_build_merges", "Shard merges the consolidation pass committed.", func(b sfa.BuildReport) float64 { return float64(b.Merges) }},
		{"sfa_build_merge_fails", "Shard merges abandoned over budget.", func(b sfa.BuildReport) float64 { return float64(b.MergeFails) }},
		{"sfa_build_cache_hits", "Shards adopted whole from the on-disk cache.", func(b sfa.BuildReport) float64 { return float64(b.CacheHits) }},
		{"sfa_build_built_shards", "Shards constructed in-process.", func(b sfa.BuildReport) float64 { return float64(b.Built) }},
		{"sfa_build_reused_shards", "Shards carried over from the previous generation.", func(b sfa.BuildReport) float64 { return float64(b.ReusedShards) }},
		{"sfa_build_lazy_shards", "Shards compiled for on-demand construction.", func(b sfa.BuildReport) float64 { return float64(b.LazyShards) }},
		{"sfa_build_prep_ns", "Wall time preparing rules (parse, per-rule DFA, size estimates).", func(b sfa.BuildReport) float64 { return float64(b.PrepNs) }},
		{"sfa_build_build_ns", "Wall time in the plan/build/merge pipeline.", func(b sfa.BuildReport) float64 { return float64(b.BuildNs) }},
		{"sfa_build_total_ns", "Wall time of the whole build that produced this generation.", func(b sfa.BuildReport) float64 { return float64(b.TotalNs) }},
	}
	for _, gg := range gauges {
		for _, r := range rows {
			if r.resident {
				p.Gauge(gg.name, gg.help, gg.v(r.build), "tenant", r.name)
			}
		}
	}
}

func writePromLazy(p *obs.PromWriter, h *Hub, rows []promRow) {
	for _, r := range rows {
		if r.resident && r.lazy.shards > 0 {
			p.Gauge("sfa_lazy_shards", "Shards materializing product states on demand.", float64(r.lazy.shards), "tenant", r.name)
		}
	}
	for _, r := range rows {
		if r.resident && r.lazy.shards > 0 {
			p.Gauge("sfa_lazy_resident_bytes", "Bytes lazy shards currently charge to the table budget.", float64(r.lazy.resident), "tenant", r.name)
		}
	}
	for _, r := range rows {
		if r.resident && r.lazy.shards > 0 {
			p.Counter("sfa_lazy_fills_total", "Lazy product states materialized since build.", r.lazy.fills, "tenant", r.name)
		}
	}
	for _, r := range rows {
		if r.resident && r.lazy.shards > 0 {
			p.Counter("sfa_lazy_evictions_total", "Whole-structure resets under budget pressure.", r.lazy.evictions, "tenant", r.name)
		}
	}

	// Budget nodes: the hub root plus each tenant child, distinguished by
	// the budget label ("hub" is reserved; tenant names label their own
	// children).
	type node struct {
		label string
		st    sfa.BudgetStats
	}
	var nodes []node
	if tb := h.TableBudget(); tb != nil {
		nodes = append(nodes, node{"hub", tb.Stats()})
	}
	for _, r := range rows {
		if r.budget != nil {
			nodes = append(nodes, node{r.name, r.budget.Stats()})
		}
	}
	for _, n := range nodes {
		p.Gauge("sfa_budget_limit_bytes", "Configured table-budget limit (<= 0 unlimited).", float64(n.st.LimitBytes), "budget", n.label)
	}
	for _, n := range nodes {
		p.Gauge("sfa_budget_resident_bytes", "Bytes currently charged under this budget node.", float64(n.st.UsedBytes), "budget", n.label)
	}
	for _, n := range nodes {
		p.Counter("sfa_budget_fills_total", "Lazy fills charged under this node.", n.st.Fills, "budget", n.label)
	}
	for _, n := range nodes {
		p.Counter("sfa_budget_evictions_total", "Evictions forced under this node.", n.st.Evictions, "budget", n.label)
	}
	for _, n := range nodes {
		p.Counter("sfa_budget_stall_ns_total", "Scan wall time spent inside eviction (budget pressure).", n.st.StallNs, "budget", n.label)
	}
	for _, n := range nodes {
		p.Histogram("sfa_budget_fill_ns", "Per-fill construction latency.", n.st.FillNs, "budget", n.label)
	}
	for _, n := range nodes {
		p.Histogram("sfa_budget_evict_ns", "Per-eviction latency.", n.st.EvictNs, "budget", n.label)
	}
}

// poolRow pairs one engine pool's label with its stats snapshot.
type poolRow struct {
	label string
	st    engine.PoolStats
}

// writePromPools emits the pool series metric-major so both pools'
// samples for one metric stay contiguous under its single header.
func writePromPools(p *obs.PromWriter, pools ...poolRow) {
	type g struct {
		name, help string
		v          func(engine.PoolStats) float64
	}
	for _, gg := range []g{
		{"sfa_pool_workers", "Persistent worker goroutines.", func(s engine.PoolStats) float64 { return float64(s.Workers) }},
		{"sfa_pool_queue_len", "Requests queued right now.", func(s engine.PoolStats) float64 { return float64(s.QueueLen) }},
		{"sfa_pool_queue_cap", "Queue capacity.", func(s engine.PoolStats) float64 { return float64(s.QueueCap) }},
		{"sfa_pool_queue_max", "High-water queue depth.", func(s engine.PoolStats) float64 { return float64(s.QueueMax) }},
	} {
		for _, pr := range pools {
			p.Gauge(gg.name, gg.help, gg.v(pr.st), "pool", pr.label)
		}
	}
	type c struct {
		name, help string
		v          func(engine.PoolStats) int64
	}
	for _, cc := range []c{
		{"sfa_pool_submitted_total", "Chunk requests submitted to the queue.", func(s engine.PoolStats) int64 { return s.Submitted }},
		{"sfa_pool_inline_total", "Chunk requests run inline on a full queue.", func(s engine.PoolStats) int64 { return s.Inline }},
		{"sfa_pool_helped_total", "Chunk requests stolen by waiting submitters.", func(s engine.PoolStats) int64 { return s.Helped }},
		{"sfa_pool_busy_ns_total", "Worker wall time executing requests.", func(s engine.PoolStats) int64 { return s.BusyNs }},
		{"sfa_pool_idle_ns_total", "Worker wall time parked waiting for work.", func(s engine.PoolStats) int64 { return s.IdleNs }},
	} {
		for _, pr := range pools {
			p.Counter(cc.name, cc.help, cc.v(pr.st), "pool", pr.label)
		}
	}
}

// buildInfo resolves the vcs commit and Go version baked into the
// running binary, once; "unknown" when built without vcs stamping
// (e.g. `go test` or a non-repo build).
var buildInfoOnce = sync.OnceValues(func() (string, string) {
	commit, gover := "unknown", runtime.Version()
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.GoVersion != "" {
			gover = bi.GoVersion
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				commit = s.Value
			}
		}
	}
	return commit, gover
})

func buildInfo() (commit, goVersion string) { return buildInfoOnce() }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
