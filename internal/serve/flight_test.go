package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/sfa"
)

// TestServeFlightAndAttribution round-trips the two debug endpoints:
// scans must land in the flight recorder with a coherent stage split,
// and /debug/attribution must carry per-shard cost, rule heat, and the
// speculation report for the same traffic.
func TestServeFlightAndAttribution(t *testing.T) {
	hub := NewHub(sfa.WithSearch())
	srv := httptest.NewServer(NewHandler(hub))
	defer srv.Close()
	client := srv.Client()

	doJSON[LoadReply](t, client, http.MethodPut, srv.URL+"/v1/tenants/web",
		strings.NewReader("attack attack[0-9]+\nprobe prob(e|ing)\nquiet neverfires\n"), http.StatusCreated)

	bodies := []string{
		"an attack123 in flight",
		"probing the perimeter, attack9 confirmed",
		"nothing to see here",
	}
	wantMatches := []int64{1, 2, 0}
	for _, b := range bodies {
		doJSON[ScanReply](t, client, http.MethodPost, srv.URL+"/v1/tenants/web/scan",
			strings.NewReader(b), http.StatusOK)
	}

	fl := doJSON[FlightReply](t, client, http.MethodGet, srv.URL+"/debug/scans?n=10", nil, http.StatusOK)
	if fl.Capacity != DefaultFlightRecords {
		t.Fatalf("capacity %d, want %d", fl.Capacity, DefaultFlightRecords)
	}
	if len(fl.Records) != len(bodies) {
		t.Fatalf("got %d records, want %d: %+v", len(fl.Records), len(bodies), fl.Records)
	}
	// Newest first: record i describes body len(bodies)-1-i.
	for i, rec := range fl.Records {
		j := len(bodies) - 1 - i
		if rec.Tenant != "web" {
			t.Errorf("record %d tenant %q", i, rec.Tenant)
		}
		if rec.Generation != 1 {
			t.Errorf("record %d generation %d", i, rec.Generation)
		}
		if rec.Bytes != int64(len(bodies[j])) {
			t.Errorf("record %d bytes %d, want %d", i, rec.Bytes, len(bodies[j]))
		}
		if rec.Matches != wantMatches[j] {
			t.Errorf("record %d matches %d, want %d", i, rec.Matches, wantMatches[j])
		}
		if rec.Chunks < 1 || rec.UnixNano == 0 || rec.Seq == 0 {
			t.Errorf("record %d missing fields: %+v", i, rec)
		}
		if rec.ReadNs < 0 || rec.PrefilterNs < 0 || rec.ComposeNs < 0 || rec.MatchNs < 0 {
			t.Errorf("record %d negative stage time: %+v", i, rec)
		}
		if i > 0 && fl.Records[i-1].Seq <= rec.Seq {
			t.Errorf("records not newest-first: seq[%d]=%d, seq[%d]=%d", i-1, fl.Records[i-1].Seq, i, rec.Seq)
		}
	}

	// ?n= is honoured and bad values are rejected.
	fl2 := doJSON[FlightReply](t, client, http.MethodGet, srv.URL+"/debug/scans?n=2", nil, http.StatusOK)
	if len(fl2.Records) != 2 || fl2.Records[0].Seq != fl.Records[0].Seq {
		t.Fatalf("n=2 snapshot %+v", fl2.Records)
	}
	doJSON[map[string]string](t, client, http.MethodGet, srv.URL+"/debug/scans?n=zero", nil, http.StatusBadRequest)

	attr := doJSON[AttributionReply](t, client, http.MethodGet, srv.URL+"/debug/attribution", nil, http.StatusOK)
	ta, ok := attr.Tenants["web"]
	if !ok {
		t.Fatalf("attribution has no web tenant: %+v", attr)
	}
	if ta.Generation != 1 || len(ta.Shards) == 0 {
		t.Fatalf("web attribution %+v", ta)
	}
	// With a window prefilter the automaton may walk only candidate
	// windows (ScanChunks stays 0), so the invariant is: some shard
	// accounted bytes, via chunks or windows.
	var chunks, bytes, windows int64
	for _, sh := range ta.Shards {
		chunks += sh.ScanChunks
		bytes += sh.ScanBytes
		windows += sh.CandWindows
	}
	if bytes == 0 || (chunks == 0 && windows == 0) {
		t.Fatalf("no shard cost recorded: %+v", ta.Shards)
	}
	heat := map[string]int64{}
	for _, rh := range ta.RuleHeat {
		heat[rh.Name] = rh.Matches
	}
	if heat["attack"] != 2 || heat["probe"] != 1 || heat["quiet"] != 0 {
		t.Fatalf("rule heat %+v", ta.RuleHeat)
	}
	if len(ta.RuleHeat) > 1 && ta.RuleHeat[0].Matches < ta.RuleHeat[1].Matches {
		t.Fatalf("rule heat not hottest-first: %+v", ta.RuleHeat)
	}
	// Three tiny scans cannot clear SpeculationMinSamples.
	if ta.Speculation.Measured || ta.Speculation.Viable {
		t.Fatalf("speculation measured on %d samples: %+v", chunks, ta.Speculation)
	}

	// ?top= caps the heat table and reports the cut.
	attr2 := doJSON[AttributionReply](t, client, http.MethodGet, srv.URL+"/debug/attribution?top=1", nil, http.StatusOK)
	ta2 := attr2.Tenants["web"]
	if len(ta2.RuleHeat) != 1 || ta2.RuleHeat[0].Name != "attack" || ta2.RuleHeatOmitted != 2 {
		t.Fatalf("top=1 heat %+v omitted %d", ta2.RuleHeat, ta2.RuleHeatOmitted)
	}
}

// TestServeFlightConcurrent hammers the flight recorder from the read
// side while scans and hot reloads run: every snapshot must be torn-free
// (valid tenant, plausible byte count), strictly newest-first, and
// capacity must stay stable. `make ci` runs it under -race.
func TestServeFlightConcurrent(t *testing.T) {
	hub := NewHub(sfa.WithSearch())
	srv := httptest.NewServer(NewHandler(hub))
	defer srv.Close()
	client := srv.Client()

	doJSON[LoadReply](t, client, http.MethodPut, srv.URL+"/v1/tenants/web",
		strings.NewReader("attack attack[0-9]+\n"), http.StatusCreated)
	doJSON[LoadReply](t, client, http.MethodPut, srv.URL+"/v1/tenants/payload",
		strings.NewReader("nop \\x90{4,}\n"), http.StatusCreated)

	bodies := map[string]string{
		"web":     "one attack7 and another attack8 here",
		"payload": "prefix \x90\x90\x90\x90\x90 suffix",
	}
	validLen := map[string]int64{
		"web":     int64(len(bodies["web"])),
		"payload": int64(len(bodies["payload"])),
	}

	iters := 200
	if raceEnabled {
		iters = 60
	}
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	errs := make(chan error, 16)

	// Scanners on both tenants.
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				name := "web"
				if r.Intn(2) == 0 {
					name = "payload"
				}
				resp, err := client.Post(srv.URL+"/v1/tenants/"+name+"/scan",
					"application/octet-stream", strings.NewReader(bodies[name]))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("scan %s: status %d", name, resp.StatusCode)
					return
				}
			}
		}(int64(w))
	}

	// Hot reloader on the web tenant: reused shards must keep their
	// attribution account and the recorder must keep accepting records.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < iters/10; i++ {
			rules := fmt.Sprintf("attack attack[0-9]+\nextra%d extra%dx\n", i, i)
			resp, err := client.Post(srv.URL+"/v1/tenants/web/scan", "application/octet-stream",
				strings.NewReader(bodies["web"]))
			if err == nil {
				resp.Body.Close()
			}
			req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/tenants/web", strings.NewReader(rules))
			if err != nil {
				errs <- err
				return
			}
			resp, err = client.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("reload %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()

	// Reader: snapshots must never show a torn record. (No doJSON here:
	// t.Fatal is only legal on the test goroutine.)
	getJSON := func(url string, out any) error {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for !stop.Load() {
			var fl FlightReply
			if err := getJSON(srv.URL+"/debug/scans?n=64", &fl); err != nil {
				errs <- err
				return
			}
			if fl.Capacity != DefaultFlightRecords {
				errs <- fmt.Errorf("capacity moved: %d", fl.Capacity)
				return
			}
			var prev uint64
			for i, rec := range fl.Records {
				if i > 0 && rec.Seq >= prev {
					errs <- fmt.Errorf("snapshot not strictly newest-first: seq %d then %d", prev, rec.Seq)
					return
				}
				prev = rec.Seq
				want, ok := validLen[rec.Tenant]
				if !ok {
					errs <- fmt.Errorf("torn record: unknown tenant %q", rec.Tenant)
					return
				}
				if rec.Bytes != want {
					errs <- fmt.Errorf("torn record: tenant %s bytes %d, want %d", rec.Tenant, rec.Bytes, want)
					return
				}
			}
			var attr AttributionReply
			if err := getJSON(srv.URL+"/debug/attribution?top=5", &attr); err != nil {
				errs <- err
				return
			}
			if _, ok := attr.Tenants["payload"]; !ok {
				errs <- fmt.Errorf("attribution lost the payload tenant: %+v", attr)
				return
			}
		}
	}()

	writers.Wait()
	stop.Store(true)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
