package textgen

import (
	"fmt"
	"math/rand"
)

// Traffic builds the synthetic HTTP-ish byte stream used by the examples
// and the IDS scan scenario: newline-separated request lines and headers,
// with a configurable fraction of lines containing "suspicious" fragments
// that trip typical SNORT-style rules.
type Traffic struct {
	// SuspiciousPerMille is the per-line probability (in ‰) of injecting
	// an attack-looking fragment. Default 2‰.
	SuspiciousPerMille int
}

var (
	trafficPaths   = []string{"/index.php", "/search", "/api/v1/items", "/img/logo.png", "/login", "/cart", "/health"}
	trafficAgents  = []string{"Mozilla/5.0", "curl/8.1", "Go-http-client/2.0", "Wget/1.21"}
	trafficAttacks = []string{
		"/cgi-bin/sh.cgi",
		"/index.php?id=1' or '1'='1",
		"SELECT password UNION SELECT user",
		"/scripts/../../winnt/system32/cmd.exe",
		"\x90\x90\x90\x90\x90\x90\x90\x90\x90\x90",
		"xp_cmdshell 'dir'",
		"<script>eval(unescape('%61'))</script>",
	}
)

// Generate produces about `size` bytes of traffic, deterministically from
// seed, and reports how many suspicious lines were planted.
func (t Traffic) Generate(size int, seed int64) (data []byte, planted int) {
	perMille := t.SuspiciousPerMille
	if perMille <= 0 {
		perMille = 2
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, size+256)
	for len(out) < size {
		if r.Intn(1000) < perMille {
			attack := trafficAttacks[r.Intn(len(trafficAttacks))]
			out = append(out, fmt.Sprintf("GET %s HTTP/1.1\n", attack)...)
			planted++
			continue
		}
		switch r.Intn(3) {
		case 0:
			out = append(out, fmt.Sprintf("GET %s?q=%d HTTP/1.1\n",
				trafficPaths[r.Intn(len(trafficPaths))], r.Intn(100000))...)
		case 1:
			out = append(out, fmt.Sprintf("User-Agent: %s\n",
				trafficAgents[r.Intn(len(trafficAgents))])...)
		default:
			out = append(out, fmt.Sprintf("Host: host-%03d.example.com\n", r.Intn(1000))...)
		}
	}
	return out, planted
}

// Lines splits data at newline boundaries, returning byte spans; the
// examples match rules per line.
func Lines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			out = append(out, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}
