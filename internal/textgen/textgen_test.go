package textgen

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dfa"
)

func TestRnTextAccepted(t *testing.T) {
	for _, n := range []int{1, 5, 50} {
		pattern := fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n)
		d := dfa.MustCompilePattern(pattern)
		text := RnText(n, 100_000, 1)
		if len(text) == 0 || len(text)%(2*n) != 0 {
			t.Fatalf("n=%d: bad length %d", n, len(text))
		}
		if !d.Accepts(text) {
			t.Errorf("n=%d: generated text rejected", n)
		}
	}
}

func TestEvenOddTextAccepted(t *testing.T) {
	d := dfa.MustCompilePattern("(([02468][13579]){5})*")
	text := EvenOddText(10_000, 2)
	if len(text) != 10_000 {
		t.Fatalf("length %d", len(text))
	}
	if !d.Accepts(text) {
		t.Error("generated text rejected")
	}
}

func TestRepeatAccepted(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{5}[5-9]{5})*|a*")
	text := Repeat('a', 4096)
	if !d.Accepts(text) {
		t.Error("a-repeat rejected by the Fig. 9 pattern")
	}
}

func TestSamplerProducesMembers(t *testing.T) {
	patterns := []string{
		"(ab)*",
		"([0-4]{3}[5-9]{3})*",
		"(a|bc)*d",
		"[0-9a-f]{16}",
	}
	r := rand.New(rand.NewSource(5))
	for _, pat := range patterns {
		d := dfa.MustCompilePattern(pat)
		// find a feasible length
		var s *Sampler
		var err error
		var length int
		for length = 0; length <= 24; length++ {
			s, err = NewSampler(d, length)
			if err == nil && length > 0 {
				break
			}
		}
		if err != nil {
			t.Fatalf("%q: no feasible length ≤ 24", pat)
		}
		for i := 0; i < 50; i++ {
			w := s.Sample(r, nil)
			if len(w) != length {
				t.Fatalf("%q: sample length %d, want %d", pat, len(w), length)
			}
			if !d.Accepts(w) {
				t.Fatalf("%q: sample %q rejected", pat, w)
			}
		}
	}
}

func TestSamplerInfeasibleLength(t *testing.T) {
	d := dfa.MustCompilePattern("(ab)*")
	if _, err := NewSampler(d, 3); err == nil {
		t.Error("odd length should be infeasible for (ab)*")
	}
	if _, err := NewSampler(d, -1); err == nil {
		t.Error("negative length should error")
	}
}

func TestAcceptedText(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{5}[5-9]{5})*")
	text, err := AcceptedText(d, 10, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(text) < 5000 {
		t.Fatalf("short text: %d", len(text))
	}
	if !d.Accepts(text) {
		t.Error("concatenated samples rejected")
	}
}

func TestTrafficDeterministicAndCounted(t *testing.T) {
	tr := Traffic{SuspiciousPerMille: 20}
	a, pa := tr.Generate(100_000, 3)
	b, pb := tr.Generate(100_000, 3)
	if !bytes.Equal(a, b) || pa != pb {
		t.Error("traffic not deterministic")
	}
	if pa == 0 {
		t.Error("no suspicious lines planted at 20‰")
	}
	lines := Lines(a)
	if len(lines) < 1000 {
		t.Errorf("suspiciously few lines: %d", len(lines))
	}
}

func TestLinesSplitting(t *testing.T) {
	lines := Lines([]byte("a\nbb\n\nccc"))
	want := []string{"a", "bb", "", "ccc"}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines", len(lines))
	}
	for i, w := range want {
		if string(lines[i]) != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
	if got := Lines(nil); len(got) != 0 {
		t.Error("empty input should give no lines")
	}
}
