package textgen

import "math/rand"

// Corruption utilities build *negative* workloads: inputs that are
// accepted except for a controlled number of damaged positions. Engines
// must flip their verdict on them wherever the damage lands — including
// exactly on a chunk boundary of the parallel engines, the historically
// bug-prone spot for split-based matchers.

// Corrupt returns a copy of text with k random positions replaced by a
// byte the position did not hold before. k is capped at len(text).
func Corrupt(text []byte, k int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), text...)
	if k > len(out) {
		k = len(out)
	}
	for i := 0; i < k; i++ {
		pos := r.Intn(len(out))
		old := out[pos]
		b := byte(r.Intn(256))
		for b == old {
			b = byte(r.Intn(256))
		}
		out[pos] = b
	}
	return out
}

// CorruptAt returns a copy of text damaged at exactly the given position
// (for boundary-targeted tests).
func CorruptAt(text []byte, pos int) []byte {
	out := append([]byte(nil), text...)
	out[pos] ^= 0xff
	return out
}
