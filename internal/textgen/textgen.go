// Package textgen generates the input workloads of the paper's
// experiments: multi-megabyte texts *accepted* by a given automaton
// ("The input texts were 1GB string accepted by those automata",
// Sect. VI-B), plus the synthetic traffic used by the examples.
//
// Two generation strategies are provided: pattern-family constructors for
// the paper's benchmark expressions (fast, any size), and a general
// DP-based sampler that draws uniformly structured members of L(D) for
// arbitrary DFAs (used by tests and the examples; memory is O(len·|Q|/64)).
package textgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dfa"
)

// RnText returns a text of exactly `size` bytes accepted by
// r_n = ([0-4]{n}[5-9]{n})*. size is rounded down to a multiple of the
// 2n block length; the text is a concatenation of random low-digit and
// high-digit runs.
func RnText(n, size int, seed int64) []byte {
	block := 2 * n
	size -= size % block
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, size)
	for i := 0; i < size; i += block {
		for j := 0; j < n; j++ {
			out[i+j] = byte('0' + r.Intn(5))
		}
		for j := n; j < block; j++ {
			out[i+j] = byte('5' + r.Intn(5))
		}
	}
	return out
}

// EvenOddText returns a text of `size` bytes (rounded down to a multiple
// of 10) accepted by (([02468][13579]){5})*, the Fig. 10 pattern.
func EvenOddText(size int, seed int64) []byte {
	size -= size % 10
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, size)
	evens, odds := []byte("02468"), []byte("13579")
	for i := 0; i < size; i += 2 {
		out[i] = evens[r.Intn(5)]
		out[i+1] = odds[r.Intn(5)]
	}
	return out
}

// Repeat returns `size` copies of b — the Fig. 9 workload is Repeat('a').
func Repeat(b byte, size int) []byte {
	out := make([]byte, size)
	for i := range out {
		out[i] = b
	}
	return out
}

// Sampler draws random members of L(D) of a fixed length using a
// backward-reachability table: alive[t] is the bitset of states from
// which an accepting state is reachable in exactly t steps.
type Sampler struct {
	d      *dfa.DFA
	length int
	words  int
	alive  [][]uint64 // alive[t], t = 0 … length

	classBytes [][]byte // class id → member bytes
}

// NewSampler prepares a sampler for members of L(d) of exactly `length`
// bytes. It fails when no such member exists.
func NewSampler(d *dfa.DFA, length int) (*Sampler, error) {
	if length < 0 {
		return nil, fmt.Errorf("textgen: negative length")
	}
	nc := d.BC.Count
	words := (d.NumStates + 63) / 64
	s := &Sampler{d: d, length: length, words: words}

	s.alive = make([][]uint64, length+1)
	cur := make([]uint64, words)
	for q := 0; q < d.NumStates; q++ {
		if d.Accept[q] {
			cur[q>>6] |= 1 << (q & 63)
		}
	}
	s.alive[0] = cur
	for t := 1; t <= length; t++ {
		next := make([]uint64, words)
		for q := 0; q < d.NumStates; q++ {
			for c := 0; c < nc; c++ {
				to := d.NextClass(int32(q), c)
				if cur[to>>6]&(1<<(to&63)) != 0 {
					next[q>>6] |= 1 << (q & 63)
					break
				}
			}
		}
		s.alive[t] = next
		cur = next
	}
	if !s.aliveAt(length, d.Start) {
		return nil, fmt.Errorf("textgen: L(D) has no member of length %d", length)
	}

	s.classBytes = make([][]byte, nc)
	for b := 0; b < 256; b++ {
		c := d.BC.Of[b]
		s.classBytes[c] = append(s.classBytes[c], byte(b))
	}
	return s, nil
}

func (s *Sampler) aliveAt(t int, q int32) bool {
	return s.alive[t][q>>6]&(1<<(q&63)) != 0
}

// Sample appends one accepted word of the configured length to dst and
// returns it. Byte choices are uniform over all viable bytes at each
// position.
func (s *Sampler) Sample(r *rand.Rand, dst []byte) []byte {
	d := s.d
	q := d.Start
	for t := s.length; t > 0; t-- {
		// Viable classes and their byte weights.
		total := 0
		for c, bytes := range s.classBytes {
			to := d.NextClass(q, c)
			if s.aliveAt(t-1, to) {
				total += len(bytes)
			}
		}
		pick := r.Intn(total)
		for c, bytes := range s.classBytes {
			to := d.NextClass(q, c)
			if !s.aliveAt(t-1, to) {
				continue
			}
			if pick < len(bytes) {
				dst = append(dst, bytes[pick])
				q = to
				break
			}
			pick -= len(bytes)
		}
	}
	return dst
}

// AcceptedText builds a text of roughly `size` bytes accepted by d, as a
// concatenation of sampled words of length `wordLen` — valid whenever
// L(d) is closed under concatenation of its members (true for the paper's
// (…)* benchmark families). For general languages use Sampler directly.
func AcceptedText(d *dfa.DFA, wordLen, size int, seed int64) ([]byte, error) {
	s, err := NewSampler(d, wordLen)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, size+wordLen)
	for len(out) < size {
		out = s.Sample(r, out)
	}
	return out, nil
}
