package textgen

import (
	"fmt"
	"math/rand"
)

// Payload builds the sparse-corpus counterpart of Traffic: a stream of
// encoded application payload frames (file uploads, telemetry blobs —
// the deep-packet-inspection case where almost no input byte belongs to
// any rule literal), with the same kind of planted attack fragments.
// Where Traffic's benign lines are HTTP requests whose every line
// contains rule keywords ("GET ", "Host: " — the low-selectivity regime
// the prefilter stats expose), Payload's benign frames are base64-like
// records: no spaces, no control bytes, no HTTP tokens, so literal hits
// and candidate windows come almost exclusively from the planted
// attacks.
type Payload struct {
	// SuspiciousPerMille is the per-record probability (in ‰) of planting
	// an attack fragment. Default 2‰.
	SuspiciousPerMille int
}

// payloadAlphabet is the benign frame body alphabet: base64 characters
// only. No byte of it starts an IDS keyword boundary (no spaces, dots,
// colons, '=', or control bytes), which is what makes the corpus sparse
// under SNORT-style literal sets.
const payloadAlphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

// Generate produces about `size` bytes of payload frames,
// deterministically from seed, and reports how many attack fragments
// were planted.
func (t Payload) Generate(size int, seed int64) (data []byte, planted int) {
	perMille := t.SuspiciousPerMille
	if perMille <= 0 {
		perMille = 2
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, size+256)
	for len(out) < size {
		if r.Intn(1000) < perMille {
			attack := trafficAttacks[r.Intn(len(trafficAttacks))]
			out = append(out, fmt.Sprintf("frame/%06d/", r.Intn(1000000))...)
			out = append(out, attack...)
			out = append(out, '\n')
			planted++
			continue
		}
		out = append(out, fmt.Sprintf("frame/%06d/", r.Intn(1000000))...)
		n := 32 + r.Intn(88)
		for i := 0; i < n; i++ {
			out = append(out, payloadAlphabet[r.Intn(len(payloadAlphabet))])
		}
		out = append(out, '\n')
	}
	return out, planted
}
