package nfa

import "testing"

func TestTableRowsMatchEdges(t *testing.T) {
	a := mustGlushkov(t, "(a|bc)*")
	tab := Compile(a)
	// Every row must contain exactly the targets of matching edges.
	for q := int32(0); q < int32(a.NumStates); q++ {
		for b := 0; b < 256; b++ {
			c := int(tab.BC.Of[b])
			row := tab.Row(q, c)
			want := make([]uint64, tab.Words)
			for _, e := range a.Edges[q] {
				if e.Set.Contains(byte(b)) {
					want[e.To>>6] |= 1 << (e.To & 63)
				}
			}
			for i := range want {
				if row[i] != want[i] {
					t.Fatalf("row(%d, byte %d) mismatch", q, b)
				}
			}
		}
	}
}

func TestTableStepUnions(t *testing.T) {
	a := mustGlushkov(t, "(ab)*")
	tab := Compile(a)
	src := make([]uint64, tab.Words)
	// All states at once.
	for q := 0; q < a.NumStates; q++ {
		src[q>>6] |= 1 << (q & 63)
	}
	dst := make([]uint64, tab.Words)
	c := int(tab.BC.Of['a'])
	tab.Step(dst, src, c)
	// dst must equal the union of each individual state's row.
	want := make([]uint64, tab.Words)
	for q := int32(0); q < int32(a.NumStates); q++ {
		row := tab.Row(q, c)
		for i := range want {
			want[i] |= row[i]
		}
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatal("Step is not the union of rows")
		}
	}
}

func TestThompsonTableRowsAreClosed(t *testing.T) {
	// For ε-NFAs every compiled row must already be ε-closed.
	a := mustThompson(t, "(a|b)*c")
	tab := Compile(a)
	for q := int32(0); q < int32(a.NumStates); q++ {
		for c := 0; c < tab.BC.Count; c++ {
			row := tab.Row(q, c)
			closed := make([]uint64, len(row))
			copy(closed, row)
			a.EpsClosure(closed)
			for i := range row {
				if row[i] != closed[i] {
					t.Fatalf("row (%d,%d) not ε-closed", q, c)
				}
			}
		}
	}
}

func TestSimulatorFromTable(t *testing.T) {
	a := mustGlushkov(t, "(ab)*")
	tab := Compile(a)
	sim := NewSimulatorFromTable(tab)
	if !sim.Match([]byte("abab")) || sim.Match([]byte("aba")) {
		t.Error("table-backed simulator wrong")
	}
}

func TestNFAStringer(t *testing.T) {
	a := mustGlushkov(t, "(ab)*")
	if s := a.String(); s == "" {
		t.Error("empty String()")
	}
}
