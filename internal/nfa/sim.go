package nfa

import "math/bits"

// Table is the compiled transition relation of an NFA: for every state and
// byte-equivalence class, the bitset of successor states (ε-closed when
// the automaton has ε-transitions). It is shared by the simulator and by
// the subset construction in package dfa.
type Table struct {
	A     *NFA
	BC    *ByteClasses
	Words int // bitset length in 64-bit words
	rows  [][]uint64
}

// Compile builds the transition table of a. Cost is
// O(|Q| · classes · |Q|/64) time and memory.
func Compile(a *NFA) *Table {
	t := &Table{A: a, BC: Classes(a), Words: a.BitsetWords()}
	nc := t.BC.Count
	rows := make([][]uint64, a.NumStates*nc)
	backing := make([]uint64, a.NumStates*nc*t.Words)
	for i := range rows {
		rows[i] = backing[i*t.Words : (i+1)*t.Words]
	}
	var seen [256]bool
	for q := 0; q < a.NumStates; q++ {
		for _, e := range a.Edges[q] {
			for i := range seen {
				seen[i] = false
			}
			for _, b := range e.Set.Bytes() {
				c := int(t.BC.Of[b])
				if seen[c] {
					continue
				}
				seen[c] = true
				row := rows[q*nc+c]
				row[e.To>>6] |= 1 << (e.To & 63)
			}
		}
	}
	// ε-close every row once so that stepping from an ε-closed frontier
	// keeps it ε-closed without per-byte closure passes.
	if a.HasEps() {
		for i := range rows {
			a.EpsClosure(rows[i])
		}
	}
	t.rows = rows
	return t
}

// Row returns the successor bitset of state q under byte class c.
// The returned slice is shared; callers must not modify it.
func (t *Table) Row(q int32, c int) []uint64 {
	return t.rows[int(q)*t.BC.Count+c]
}

// Step ORs into dst the successors of every state in src under class c.
// dst must be zeroed by the caller.
func (t *Table) Step(dst, src []uint64, c int) {
	nc := t.BC.Count
	for w, word := range src {
		for word != 0 {
			tz := bits.TrailingZeros64(word)
			word &^= 1 << tz
			q := w*64 + tz
			row := t.rows[q*nc+c]
			for i := range dst {
				dst[i] |= row[i]
			}
		}
	}
}

// Simulator runs an NFA over input text by maintaining the frontier of
// reachable states as a bitset — the textbook O(|N|·n) algorithm of the
// paper's Table II "NFA" row. It is the semantics oracle for every other
// engine in this repository.
type Simulator struct {
	t *Table
}

// NewSimulator prepares a simulator for a.
func NewSimulator(a *NFA) *Simulator {
	return &Simulator{t: Compile(a)}
}

// NewSimulatorFromTable wraps an already-compiled table.
func NewSimulatorFromTable(t *Table) *Simulator { return &Simulator{t: t} }

// Match reports whether the NFA accepts the whole input.
func (s *Simulator) Match(text []byte) bool {
	frontier := s.FinalSet(text)
	return s.t.A.AcceptsSet(frontier)
}

// FinalSet returns the bitset of states reachable from the initial set on
// the whole input (the image of the extended transition function
// applied to (I, w), Sect. II-B of the paper).
func (s *Simulator) FinalSet(text []byte) []uint64 {
	frontier := s.t.A.StartSet()
	scratch := make([]uint64, s.t.Words)
	for _, b := range text {
		c := int(s.t.BC.Of[b])
		for i := range scratch {
			scratch[i] = 0
		}
		s.t.Step(scratch, frontier, c)
		frontier, scratch = scratch, frontier
		if isZero(frontier) {
			return frontier
		}
	}
	return frontier
}

func isZero(s []uint64) bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}
