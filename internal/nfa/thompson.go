package nfa

import (
	"fmt"

	"repro/internal/syntax"
)

// Thompson builds the classic Thompson ε-NFA of the pattern tree. Each
// subexpression becomes a fragment with one entry and one exit state; the
// automaton has O(m) states and ε-transitions. It recognizes exactly the
// same language as Glushkov on the same tree and serves as an
// independently derived oracle in the test suite (ablation A4).
func Thompson(root *syntax.Node) (*NFA, error) {
	tree, _, _ := syntax.StripAnchors(root)
	tree = syntax.ExpandRepeats(tree)
	if m := tree.NumPositions(); m > MaxPositions {
		return nil, fmt.Errorf("nfa: pattern needs %d positions, limit %d", m, MaxPositions)
	}

	b := &thompsonBuilder{}
	frag := b.build(tree)
	a := New(b.n)
	a.Eps = make([][]int32, b.n)
	for _, e := range b.edges {
		a.AddEdge(e.from, e.to, e.set)
	}
	for _, e := range b.eps {
		a.AddEps(e[0], e[1])
	}
	a.Start = []int32{frag.in}
	a.Accept[frag.out] = true
	return a, nil
}

type tEdge struct {
	from, to int32
	set      syntax.CharSet
}

type tFrag struct {
	in, out int32
}

type thompsonBuilder struct {
	n     int
	edges []tEdge
	eps   [][2]int32
}

func (b *thompsonBuilder) state() int32 {
	s := int32(b.n)
	b.n++
	return s
}

func (b *thompsonBuilder) edge(from, to int32, set syntax.CharSet) {
	b.edges = append(b.edges, tEdge{from, to, set})
}

func (b *thompsonBuilder) epsEdge(from, to int32) {
	b.eps = append(b.eps, [2]int32{from, to})
}

func (b *thompsonBuilder) build(n *syntax.Node) tFrag {
	switch n.Op {
	case syntax.OpNone:
		// Two disconnected states: nothing is accepted.
		return tFrag{b.state(), b.state()}

	case syntax.OpEmpty, syntax.OpAnchor:
		in := b.state()
		out := b.state()
		b.epsEdge(in, out)
		return tFrag{in, out}

	case syntax.OpClass:
		in := b.state()
		out := b.state()
		b.edge(in, out, n.Set)
		return tFrag{in, out}

	case syntax.OpConcat:
		first := b.build(n.Sub[0])
		prev := first
		for _, s := range n.Sub[1:] {
			next := b.build(s)
			b.epsEdge(prev.out, next.in)
			prev = next
		}
		return tFrag{first.in, prev.out}

	case syntax.OpAlt:
		in := b.state()
		out := b.state()
		for _, s := range n.Sub {
			f := b.build(s)
			b.epsEdge(in, f.in)
			b.epsEdge(f.out, out)
		}
		return tFrag{in, out}

	case syntax.OpStar:
		in := b.state()
		out := b.state()
		f := b.build(n.Sub[0])
		b.epsEdge(in, f.in)
		b.epsEdge(in, out)
		b.epsEdge(f.out, f.in)
		b.epsEdge(f.out, out)
		return tFrag{in, out}

	case syntax.OpPlus:
		in := b.state()
		out := b.state()
		f := b.build(n.Sub[0])
		b.epsEdge(in, f.in)
		b.epsEdge(f.out, f.in)
		b.epsEdge(f.out, out)
		return tFrag{in, out}

	case syntax.OpQuest:
		in := b.state()
		out := b.state()
		f := b.build(n.Sub[0])
		b.epsEdge(in, f.in)
		b.epsEdge(in, out)
		b.epsEdge(f.out, out)
		return tFrag{in, out}
	}
	panic(fmt.Sprintf("nfa: unexpected op %v after expansion", n.Op))
}
