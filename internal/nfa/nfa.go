// Package nfa implements nondeterministic finite automata over the byte
// alphabet, together with the two classic regex→NFA constructions used by
// the paper and its validation oracle:
//
//   - the McNaughton–Yamada/Glushkov position construction (ε-free), which
//     is what the paper's matcher uses as its first stage (Sect. VI), and
//   - the Thompson construction (with ε-transitions), used here as an
//     independently derived cross-check.
//
// The package also provides a bitset-frontier simulator — the O(|N|·n)
// "NFA" row of the paper's Table II — and byte equivalence classes, the
// standard alphabet-compression technique referenced in Sect. V-A.
package nfa

import (
	"fmt"

	"repro/internal/syntax"
)

// Edge is a labelled transition: on any byte in Set, move to state To.
type Edge struct {
	Set syntax.CharSet
	To  int32
}

// NFA is a nondeterministic finite automaton (Q, Σ, δ, I, F) in the sense
// of the paper's Definition 1: a set of initial states, byte-labelled
// edges, and optionally ε-edges (Thompson construction only).
type NFA struct {
	NumStates int
	Start     []int32   // I ⊆ Q
	Accept    []bool    // F as a characteristic vector, len == NumStates
	Edges     [][]Edge  // Edges[q] = outgoing labelled transitions of q
	Eps       [][]int32 // Eps[q] = outgoing ε-transitions of q (may be nil)
}

// New returns an NFA with n states and no transitions.
func New(n int) *NFA {
	return &NFA{
		NumStates: n,
		Accept:    make([]bool, n),
		Edges:     make([][]Edge, n),
	}
}

// AddEdge adds a transition from → to labelled with every byte in set.
func (a *NFA) AddEdge(from, to int32, set syntax.CharSet) {
	a.Edges[from] = append(a.Edges[from], Edge{Set: set, To: to})
}

// AddEps adds an ε-transition from → to.
func (a *NFA) AddEps(from, to int32) {
	if a.Eps == nil {
		a.Eps = make([][]int32, a.NumStates)
	}
	a.Eps[from] = append(a.Eps[from], to)
}

// HasEps reports whether the automaton has any ε-transitions.
func (a *NFA) HasEps() bool {
	for _, e := range a.Eps {
		if len(e) > 0 {
			return true
		}
	}
	return false
}

// NumEdges returns the total number of labelled transitions.
func (a *NFA) NumEdges() int {
	n := 0
	for _, es := range a.Edges {
		n += len(es)
	}
	return n
}

// String summarizes the automaton for debugging.
func (a *NFA) String() string {
	return fmt.Sprintf("NFA{states: %d, edges: %d, start: %v, eps: %v}",
		a.NumStates, a.NumEdges(), a.Start, a.HasEps())
}

// Reverse returns the reversal of a: every edge is flipped, initial and
// final states swap roles. L(Reverse(a)) = { reverse(w) | w ∈ L(a) }.
// Reversal is the first half of Brzozowski's minimization, used by package
// dfa as a cross-check against Hopcroft's algorithm.
func (a *NFA) Reverse() *NFA {
	r := New(a.NumStates)
	for q, es := range a.Edges {
		for _, e := range es {
			r.AddEdge(e.To, int32(q), e.Set)
		}
	}
	for q, es := range a.Eps {
		for _, to := range es {
			r.AddEps(to, int32(q))
		}
	}
	for _, s := range a.Start {
		r.Accept[s] = true
	}
	for q, acc := range a.Accept {
		if acc {
			r.Start = append(r.Start, int32(q))
		}
	}
	return r
}

// EpsClosure expands the state set held in the bitset frontier (one bit
// per state) with everything reachable through ε-transitions, in place.
func (a *NFA) EpsClosure(frontier []uint64) {
	if a.Eps == nil {
		return
	}
	var stack []int32
	for q := 0; q < a.NumStates; q++ {
		if frontier[q>>6]&(1<<(q&63)) != 0 {
			stack = append(stack, int32(q))
		}
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range a.Eps[q] {
			w, b := to>>6, uint64(1)<<(to&63)
			if frontier[w]&b == 0 {
				frontier[w] |= b
				stack = append(stack, to)
			}
		}
	}
}

// BitsetWords returns the number of 64-bit words needed for a state bitset.
func (a *NFA) BitsetWords() int {
	return (a.NumStates + 63) / 64
}

// StartSet returns the ε-closed initial state set as a bitset.
func (a *NFA) StartSet() []uint64 {
	s := make([]uint64, a.BitsetWords())
	for _, q := range a.Start {
		s[q>>6] |= 1 << (q & 63)
	}
	a.EpsClosure(s)
	return s
}

// AcceptsSet reports whether the bitset contains an accepting state.
func (a *NFA) AcceptsSet(set []uint64) bool {
	for q, acc := range a.Accept {
		if acc && set[q>>6]&(1<<(q&63)) != 0 {
			return true
		}
	}
	return false
}
