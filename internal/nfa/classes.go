package nfa

import "repro/internal/syntax"

// ByteClasses partitions the 256-byte alphabet into equivalence classes:
// two bytes are equivalent when no edge label of the automaton
// distinguishes them, so the automaton (and everything derived from it)
// behaves identically on them. This is the standard alphabet-compression
// technique the paper alludes to in Sect. V-A ("we can apply known
// implementation techniques"); it is what makes building the 10⁶-state
// D-SFA of r500 tractable.
type ByteClasses struct {
	Of    [256]uint8 // byte → class id
	Count int        // number of classes (≤ 256)
	Rep   []byte     // one representative byte per class
}

// Classes computes the byte equivalence classes induced by the edge
// labels of a.
func Classes(a *NFA) *ByteClasses {
	// Deduplicate the distinct CharSets appearing on edges.
	seen := make(map[syntax.CharSet]bool)
	var sets []syntax.CharSet
	for _, es := range a.Edges {
		for _, e := range es {
			if !seen[e.Set] {
				seen[e.Set] = true
				sets = append(sets, e.Set)
			}
		}
	}
	return classesFromSets(sets)
}

// classesFromSets refines {0..255} by membership in each set.
func classesFromSets(sets []syntax.CharSet) *ByteClasses {
	bc := &ByteClasses{Count: 1}
	for _, set := range sets {
		type key struct {
			old uint8
			in  bool
		}
		remap := make(map[key]uint8)
		var next uint8
		var newOf [256]uint8
		for b := 0; b < 256; b++ {
			k := key{bc.Of[b], set.Contains(byte(b))}
			id, ok := remap[k]
			if !ok {
				id = next
				next++
				remap[k] = id
			}
			newOf[b] = id
		}
		bc.Of = newOf
		bc.Count = int(next)
		if bc.Count == 256 {
			break
		}
	}
	bc.Rep = make([]byte, bc.Count)
	found := make([]bool, bc.Count)
	for b := 0; b < 256; b++ {
		if c := bc.Of[b]; !found[c] {
			found[c] = true
			bc.Rep[c] = byte(b)
		}
	}
	return bc
}
