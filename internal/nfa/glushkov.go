package nfa

import (
	"fmt"
	"math/bits"

	"repro/internal/syntax"
)

// MaxPositions bounds the Glushkov position set (and hence the NFA size).
// It protects the determinizer from adversarial counted repeats; the
// largest automaton used in the paper (r500) needs 1000 positions.
const MaxPositions = 100_000

// Glushkov builds the ε-free position automaton of the pattern tree using
// the McNaughton–Yamada construction the paper cites ([17]): state 0 is
// the unique initial state and states 1…m correspond to the m symbol
// positions of the expression. The resulting NFA has exactly m+1 states,
// matching the |N| = O(m) row of Table II.
//
// Counted repeats are expanded and anchors stripped (whole-input
// acceptance semantics) before position numbering.
func Glushkov(root *syntax.Node) (*NFA, error) {
	tree, _, _ := syntax.StripAnchors(root)
	tree = syntax.ExpandRepeats(tree)
	m := tree.NumPositions()
	if m > MaxPositions {
		return nil, fmt.Errorf("nfa: pattern needs %d positions, limit %d", m, MaxPositions)
	}

	g := &glushkov{
		classes: make([]syntax.CharSet, m+1), // classes[0] unused
		words:   (m + 1 + 63) / 64,
	}
	info := g.analyze(tree)

	a := New(m + 1)
	a.Start = []int32{0}
	if info.nullable {
		a.Accept[0] = true
	}
	forEachBit(info.last, func(p int32) {
		a.Accept[p] = true
	})
	// Initial transitions: 0 --class(p)--> p for p ∈ first.
	forEachBit(info.first, func(p int32) {
		a.AddEdge(0, p, g.classes[p])
	})
	// Interior transitions: q --class(p)--> p for p ∈ follow(q).
	for q := int32(1); g.follow != nil && q <= int32(m); q++ {
		if g.follow[q] == nil {
			continue
		}
		forEachBit(g.follow[q], func(p int32) {
			a.AddEdge(q, p, g.classes[p])
		})
	}
	return a, nil
}

// glushkov carries the state of one construction run.
type glushkov struct {
	classes []syntax.CharSet // position → byte class at that position
	follow  [][]uint64       // position → follow set (bitset), 1-based
	nextPos int32
	words   int // bitset length in words
}

// ginfo aggregates the classic attributes of a subexpression.
type ginfo struct {
	nullable    bool
	first, last []uint64 // position bitsets
}

func (g *glushkov) newSet() []uint64 { return make([]uint64, g.words) }

func (g *glushkov) analyze(n *syntax.Node) ginfo {
	switch n.Op {
	case syntax.OpNone:
		return ginfo{nullable: false, first: g.newSet(), last: g.newSet()}

	case syntax.OpEmpty, syntax.OpAnchor:
		return ginfo{nullable: true, first: g.newSet(), last: g.newSet()}

	case syntax.OpClass:
		g.nextPos++
		p := g.nextPos
		g.classes[p] = n.Set
		in := ginfo{first: g.newSet(), last: g.newSet()}
		setBit(in.first, p)
		setBit(in.last, p)
		return in

	case syntax.OpConcat:
		acc := g.analyze(n.Sub[0])
		for _, s := range n.Sub[1:] {
			ri := g.analyze(s)
			// follow(q) ∪= first(r) for q ∈ last(acc)
			forEachBit(acc.last, func(q int32) {
				g.addFollow(q, ri.first)
			})
			if acc.nullable {
				orInto(acc.first, ri.first)
			}
			if ri.nullable {
				orInto(ri.last, acc.last)
			}
			acc = ginfo{
				nullable: acc.nullable && ri.nullable,
				first:    acc.first,
				last:     ri.last,
			}
		}
		return acc

	case syntax.OpAlt:
		acc := g.analyze(n.Sub[0])
		for _, s := range n.Sub[1:] {
			ri := g.analyze(s)
			acc.nullable = acc.nullable || ri.nullable
			orInto(acc.first, ri.first)
			orInto(acc.last, ri.last)
		}
		return acc

	case syntax.OpStar, syntax.OpPlus:
		in := g.analyze(n.Sub[0])
		// follow(q) ∪= first for q ∈ last: the loop-back edges.
		forEachBit(in.last, func(q int32) {
			g.addFollow(q, in.first)
		})
		return ginfo{
			nullable: n.Op == syntax.OpStar || in.nullable,
			first:    in.first,
			last:     in.last,
		}

	case syntax.OpQuest:
		in := g.analyze(n.Sub[0])
		in.nullable = true
		return in
	}
	panic(fmt.Sprintf("nfa: unexpected op %v after expansion", n.Op))
}

func (g *glushkov) addFollow(q int32, set []uint64) {
	if g.follow == nil {
		g.follow = make([][]uint64, len(g.classes))
	}
	if g.follow[q] == nil {
		g.follow[q] = g.newSet()
	}
	orInto(g.follow[q], set)
}

func setBit(s []uint64, i int32) { s[i>>6] |= 1 << (i & 63) }

func orInto(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func forEachBit(s []uint64, f func(int32)) {
	for w, word := range s {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			f(int32(w*64 + t))
			word &^= 1 << t
		}
	}
}
