package nfa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/syntax"
)

func mustGlushkov(t *testing.T, pattern string) *NFA {
	t.Helper()
	a, err := Glushkov(syntax.MustParse(pattern, 0))
	if err != nil {
		t.Fatalf("Glushkov(%q): %v", pattern, err)
	}
	return a
}

func mustThompson(t *testing.T, pattern string) *NFA {
	t.Helper()
	a, err := Thompson(syntax.MustParse(pattern, 0))
	if err != nil {
		t.Fatalf("Thompson(%q): %v", pattern, err)
	}
	return a
}

func TestGlushkovSizes(t *testing.T) {
	// Glushkov automata have exactly m+1 states for m symbol positions.
	cases := []struct {
		pattern string
		states  int
	}{
		{"a", 2},
		{"(ab)*", 3},
		{"abc", 4},
		{"[0-4]{5}[5-9]{5}", 11},
		{"([0-4]{5}[5-9]{5})*", 11},
		{"a|b|c", 4},
		{"", 1},
	}
	for _, c := range cases {
		a := mustGlushkov(t, c.pattern)
		if a.NumStates != c.states {
			t.Errorf("Glushkov(%q) has %d states, want %d", c.pattern, a.NumStates, c.states)
		}
		if a.HasEps() {
			t.Errorf("Glushkov(%q) has ε-transitions", c.pattern)
		}
		if len(a.Start) != 1 || a.Start[0] != 0 {
			t.Errorf("Glushkov(%q) start = %v", c.pattern, a.Start)
		}
	}
}

func TestGlushkovMatchBasics(t *testing.T) {
	cases := []struct {
		pattern string
		yes     []string
		no      []string
	}{
		{"(ab)*", []string{"", "ab", "abab", "ababab"}, []string{"a", "b", "ba", "aab", "abba"}},
		{"a|b", []string{"a", "b"}, []string{"", "ab", "c"}},
		{"a+", []string{"a", "aa", "aaa"}, []string{"", "b", "ab"}},
		{"a?b", []string{"b", "ab"}, []string{"", "a", "aab"}},
		{"[0-4]{2}[5-9]{2}", []string{"0055", "4499", "1256"}, []string{"", "00", "0505", "5500", "1234"}},
		{"(a|bc)*d?", []string{"", "a", "bc", "abca", "d", "abcd"}, []string{"b", "c", "bd", "da"}},
		{`\d+\.\d+`, []string{"3.14", "10.0"}, []string{"3.", ".14", "3,14"}},
		{"x{2,4}", []string{"xx", "xxx", "xxxx"}, []string{"", "x", "xxxxx"}},
		{"(([02468][13579]){5})*", []string{"", "0123456789", "01234567890123456789"}, []string{"01", "0123456788"}},
	}
	for _, c := range cases {
		g := NewSimulator(mustGlushkov(t, c.pattern))
		th := NewSimulator(mustThompson(t, c.pattern))
		for _, w := range c.yes {
			if !g.Match([]byte(w)) {
				t.Errorf("Glushkov %q should accept %q", c.pattern, w)
			}
			if !th.Match([]byte(w)) {
				t.Errorf("Thompson %q should accept %q", c.pattern, w)
			}
		}
		for _, w := range c.no {
			if g.Match([]byte(w)) {
				t.Errorf("Glushkov %q should reject %q", c.pattern, w)
			}
			if th.Match([]byte(w)) {
				t.Errorf("Thompson %q should reject %q", c.pattern, w)
			}
		}
	}
}

func TestNoneLanguage(t *testing.T) {
	// OpNone can arise from simplification; both constructions must yield
	// the empty language.
	n := syntax.Simplify(&syntax.Node{Op: syntax.OpConcat, Sub: []*syntax.Node{
		{Op: syntax.OpNone},
		syntax.Literal("a"),
	}})
	g, err := Glushkov(n)
	if err != nil {
		t.Fatal(err)
	}
	th, err := Thompson(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"", "a", "aa"} {
		if NewSimulator(g).Match([]byte(w)) {
			t.Errorf("Glushkov ∅ accepted %q", w)
		}
		if NewSimulator(th).Match([]byte(w)) {
			t.Errorf("Thompson ∅ accepted %q", w)
		}
	}
}

// randPattern generates a random pattern over a small alphabet, used by the
// cross-construction equivalence property test.
func randPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return "a"
		case 1:
			return "b"
		case 2:
			return "c"
		default:
			return "[ab]"
		}
	}
	switch r.Intn(7) {
	case 0:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 1:
		return "(?:" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 2:
		return "(?:" + randPattern(r, depth-1) + ")*"
	case 3:
		return "(?:" + randPattern(r, depth-1) + ")?"
	case 4:
		return "(?:" + randPattern(r, depth-1) + ")+"
	case 5:
		return "(?:" + randPattern(r, depth-1) + "){1,3}"
	default:
		return randPattern(r, depth-1)
	}
}

func randWord(r *rand.Rand, maxLen int) []byte {
	n := r.Intn(maxLen + 1)
	w := make([]byte, n)
	for i := range w {
		w[i] = byte('a' + r.Intn(3))
	}
	return w
}

func TestGlushkovThompsonAgreeRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		pat := randPattern(r, 3)
		node, err := syntax.Parse(pat, 0)
		if err != nil {
			t.Fatalf("generated bad pattern %q: %v", pat, err)
		}
		ga, err := Glushkov(node)
		if err != nil {
			t.Fatal(err)
		}
		ta, err := Thompson(node)
		if err != nil {
			t.Fatal(err)
		}
		gs, ts := NewSimulator(ga), NewSimulator(ta)
		for i := 0; i < 30; i++ {
			w := randWord(r, 10)
			if gs.Match(w) != ts.Match(w) {
				t.Fatalf("disagreement on %q for pattern %q: glushkov=%v thompson=%v",
					w, pat, gs.Match(w), ts.Match(w))
			}
		}
	}
}

func TestReverseLanguage(t *testing.T) {
	// w ∈ L(A) ⇔ reverse(w) ∈ L(Reverse(A)).
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		pat := randPattern(r, 3)
		a := mustGlushkov(t, pat)
		fwd := NewSimulator(a)
		bwd := NewSimulator(a.Reverse())
		for i := 0; i < 20; i++ {
			w := randWord(r, 8)
			rev := make([]byte, len(w))
			for j := range w {
				rev[j] = w[len(w)-1-j]
			}
			if fwd.Match(w) != bwd.Match(rev) {
				t.Fatalf("reverse mismatch for %q on %q", pat, w)
			}
		}
	}
}

func TestByteClasses(t *testing.T) {
	a := mustGlushkov(t, "([0-4]{2}[5-9]{2})*")
	bc := Classes(a)
	// Three classes: [0-4], [5-9], everything else.
	if bc.Count != 3 {
		t.Fatalf("classes = %d, want 3", bc.Count)
	}
	if bc.Of['0'] != bc.Of['4'] || bc.Of['5'] != bc.Of['9'] {
		t.Error("digits split incorrectly")
	}
	if bc.Of['0'] == bc.Of['5'] || bc.Of['0'] == bc.Of['z'] {
		t.Error("distinct behaviours merged")
	}
	if len(bc.Rep) != 3 {
		t.Fatalf("reps = %v", bc.Rep)
	}
	seen := map[uint8]bool{}
	for _, rep := range bc.Rep {
		seen[bc.Of[rep]] = true
	}
	if len(seen) != 3 {
		t.Error("representatives do not cover all classes")
	}
}

func TestByteClassesProperty(t *testing.T) {
	// Property: two bytes in the same class are interchangeable in any word.
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pat := randPattern(r, 3)
		a, err := Glushkov(syntax.MustParse(pat, 0))
		if err != nil {
			return true
		}
		bc := Classes(a)
		sim := NewSimulator(a)
		for i := 0; i < 10; i++ {
			w := randWord(r, 8)
			if len(w) == 0 {
				continue
			}
			w2 := append([]byte(nil), w...)
			pos := r.Intn(len(w2))
			orig := w2[pos]
			// substitute with another byte of the same class
			for b := 0; b < 256; b++ {
				if bc.Of[b] == bc.Of[orig] {
					w2[pos] = byte(b)
					break
				}
			}
			if sim.Match(w) != sim.Match(w2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEpsClosure(t *testing.T) {
	a := New(4)
	a.AddEps(0, 1)
	a.AddEps(1, 2)
	a.AddEps(2, 0) // cycle
	set := make([]uint64, 1)
	set[0] = 1 // {0}
	a.EpsClosure(set)
	if set[0] != 0b0111 {
		t.Errorf("closure = %b, want 0111", set[0])
	}
}

func TestFinalSet(t *testing.T) {
	a := mustGlushkov(t, "(ab)*")
	sim := NewSimulator(a)
	// After "ab" the frontier must contain an accepting state.
	set := sim.FinalSet([]byte("ab"))
	if !a.AcceptsSet(set) {
		t.Error("(ab)* after 'ab' should accept")
	}
	set = sim.FinalSet([]byte("a"))
	if a.AcceptsSet(set) {
		t.Error("(ab)* after 'a' should not accept")
	}
}

func TestGlushkovPositionLimit(t *testing.T) {
	// a{2000}{...} beyond MaxPositions must error, not hang.
	pat := "(a{2000}){2000}"
	n, err := syntax.Parse(pat, 0)
	if err != nil {
		t.Skip("parser rejected, fine")
	}
	if _, err := Glushkov(n); err == nil {
		t.Error("expected position-limit error")
	}
	if _, err := Thompson(n); err == nil {
		t.Error("expected position-limit error (thompson)")
	}
}
