package dfa

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/nfa"
	"repro/internal/syntax"
)

func TestDeterminizeBasics(t *testing.T) {
	cases := []struct {
		pattern string
		yes     []string
		no      []string
	}{
		{"(ab)*", []string{"", "ab", "abab"}, []string{"a", "b", "ba", "abb"}},
		{"a|b", []string{"a", "b"}, []string{"", "ab"}},
		{"(a|bc)*", []string{"", "a", "bc", "abc", "bca"}, []string{"b", "c", "cb"}},
		{"[0-4]{2}[5-9]{2}", []string{"0055", "1256"}, []string{"", "0505"}},
	}
	for _, c := range cases {
		a, err := nfa.Glushkov(syntax.MustParse(c.pattern, 0))
		if err != nil {
			t.Fatal(err)
		}
		d, err := Determinize(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%q: %v", c.pattern, err)
		}
		for _, w := range c.yes {
			if !d.Accepts([]byte(w)) {
				t.Errorf("DFA(%q) should accept %q", c.pattern, w)
			}
		}
		for _, w := range c.no {
			if d.Accepts([]byte(w)) {
				t.Errorf("DFA(%q) should reject %q", c.pattern, w)
			}
		}
	}
}

func TestDeterminizeCap(t *testing.T) {
	// [ap]*[al][alp]{n-2} has a 2^n minimal DFA (paper Example 3); a low
	// cap must trip ErrTooManyStates.
	a, err := nfa.Glushkov(syntax.MustParse("[ap]*[al][alp]{10}", 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Determinize(a, 100)
	if !errors.Is(err, ErrTooManyStates) {
		t.Fatalf("got %v, want ErrTooManyStates", err)
	}
}

// paperMinSizes pins the live minimal-DFA sizes quoted in the paper.
func TestPaperMinimalDFASizes(t *testing.T) {
	cases := []struct {
		pattern string
		live    int
	}{
		{"(ab)*", 2},                         // Fig. 1: states 0,1 (+ dead 2)
		{"([0-4]{2}[5-9]{2})*", 4},           // Fig. 4: 2n = 4
		{"([0-4]{5}[5-9]{5})*", 10},          // Fig. 6: |D| = 10
		{"([0-4]{50}[5-9]{50})*", 100},       // Fig. 7: |D| = 100
		{"(([02468][13579]){5})*", 10},       // Fig. 10: |D| = 10
		{"([0-4]{500}[5-9]{500})*|a*", 1002}, // Fig. 9: |D| = 1002
	}
	for _, c := range cases {
		d := MustCompilePattern(c.pattern)
		if got := d.LiveSize(); got != c.live {
			t.Errorf("live |D| of %q = %d, want %d", c.pattern, got, c.live)
		}
		if d.Dead == NoDead {
			t.Errorf("%q: expected a dead state over the byte alphabet", c.pattern)
		}
	}
}

func TestMinimizeReducesAndPreserves(t *testing.T) {
	// (a|b)*abb-style pattern whose Glushkov determinization is not minimal.
	pattern := "(a|b)*abb"
	a, err := nfa.Glushkov(syntax.MustParse(pattern, 0))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Determinize(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := Minimize(d)
	if m.NumStates > d.NumStates {
		t.Errorf("minimize grew the DFA: %d → %d", d.NumStates, m.NumStates)
	}
	if !Equivalent(d, m) {
		t.Error("minimized DFA not equivalent")
	}
	// (a|b)*abb has the classic 4-state minimal DFA (+1 dead).
	if m.LiveSize() != 4 {
		t.Errorf("live size = %d, want 4", m.LiveSize())
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	d := MustCompilePattern("(a|bc)*d?")
	m := Minimize(d)
	if m.NumStates != d.NumStates {
		t.Errorf("re-minimization changed size %d → %d", d.NumStates, m.NumStates)
	}
	if !Isomorphic(d, m) {
		t.Error("re-minimization changed structure")
	}
}

func TestHopcroftAgreesWithBrzozowski(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		pat := randPattern(r, 3)
		node, err := syntax.Parse(pat, 0)
		if err != nil {
			t.Fatal(err)
		}
		a, err := nfa.Glushkov(node)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Determinize(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		h := Minimize(d)
		b, err := BrzozowskiMinimize(d)
		if err != nil {
			t.Fatal(err)
		}
		if h.NumStates != b.NumStates {
			t.Fatalf("pattern %q: hopcroft %d states, brzozowski %d",
				pat, h.NumStates, b.NumStates)
		}
		if !Isomorphic(h, b) {
			t.Fatalf("pattern %q: minimal DFAs not isomorphic", pat)
		}
		if !Equivalent(h, d) {
			t.Fatalf("pattern %q: hopcroft changed the language", pat)
		}
	}
}

func TestMinimalityNoEquivalentPair(t *testing.T) {
	// Moore-style check: in a minimal DFA no two distinct states are
	// language-equivalent. Verify by pairwise product walk.
	d := Minimize(MustCompilePattern("(a|b)*abb(a|b)?"))
	for p := int32(0); p < int32(d.NumStates); p++ {
		for q := p + 1; q < int32(d.NumStates); q++ {
			if statesEquivalent(d, p, q) {
				t.Fatalf("states %d and %d are equivalent in a minimal DFA", p, q)
			}
		}
	}
}

func statesEquivalent(d *DFA, p, q int32) bool {
	type pair struct{ a, b int32 }
	seen := map[pair]bool{{p, q}: true}
	queue := []pair{{p, q}}
	for len(queue) > 0 {
		pr := queue[0]
		queue = queue[1:]
		if d.Accept[pr.a] != d.Accept[pr.b] {
			return false
		}
		for c := 0; c < d.BC.Count; c++ {
			np := pair{d.NextClass(pr.a, c), d.NextClass(pr.b, c)}
			if np.a == np.b {
				continue
			}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}

func TestDFAMatchesNFARandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		pat := randPattern(r, 3)
		node := syntax.MustParse(pat, 0)
		a, err := nfa.Glushkov(node)
		if err != nil {
			t.Fatal(err)
		}
		sim := nfa.NewSimulator(a)
		d, err := Determinize(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		m := Minimize(d)
		for i := 0; i < 40; i++ {
			w := randWord(r, 12)
			want := sim.Match(w)
			if got := d.Accepts(w); got != want {
				t.Fatalf("DFA disagrees with NFA on %q for %q", w, pat)
			}
			if got := m.Accepts(w); got != want {
				t.Fatalf("minimal DFA disagrees with NFA on %q for %q", w, pat)
			}
		}
	}
}

func TestTable256(t *testing.T) {
	d := MustCompilePattern("([0-4]{2}[5-9]{2})*")
	tab := d.Table256()
	if len(tab) != d.NumStates*256 {
		t.Fatalf("table len %d", len(tab))
	}
	// Running on the flat table must agree with NextByte.
	q1, q2 := d.Start, d.Start
	for _, b := range []byte("0055") {
		q1 = d.NextByte(q1, b)
		q2 = tab[int(q2)*256+int(b)]
	}
	if q1 != q2 {
		t.Error("flat table disagrees with class table")
	}
	if !d.Accept[q1] {
		t.Error("0055 should be accepted")
	}
}

func TestDeadStateConvention(t *testing.T) {
	d := MustCompilePattern("(ab)*")
	if d.Dead == NoDead {
		t.Fatal("expected dead state")
	}
	if d.LiveSize() != d.NumStates-1 {
		t.Error("LiveSize should exclude exactly the dead state")
	}
	// Σ* has no dead state.
	all := MustCompilePattern("(?s).*")
	if all.Dead != NoDead {
		t.Error("(?s).* should have no dead state")
	}
	if all.LiveSize() != 1 {
		t.Errorf("(?s).* live size = %d, want 1", all.LiveSize())
	}
}

func TestEquivalentNegative(t *testing.T) {
	a := MustCompilePattern("(ab)*")
	b := MustCompilePattern("(ab)+")
	if Equivalent(a, b) {
		t.Error("(ab)* and (ab)+ reported equivalent")
	}
	c := MustCompilePattern("(ab)*(ab)?")
	if !Equivalent(a, c) {
		t.Error("(ab)* and (ab)*(ab)? reported different")
	}
}

func TestIsomorphicNegative(t *testing.T) {
	a := MustCompilePattern("(ab)*")
	b := MustCompilePattern("(ba)*")
	if Isomorphic(a, b) {
		t.Error("different languages reported isomorphic")
	}
}

func TestTrimHandMadeDFA(t *testing.T) {
	// Hand-built DFA with an unreachable state.
	bc := classesOf("ab")
	d := New(3, bc)
	d.Start = 0
	d.Accept[0] = true
	for c := 0; c < bc.Count; c++ {
		d.setNext(0, c, 0)
		d.setNext(1, c, 1) // unreachable
		d.setNext(2, c, 2) // unreachable
	}
	m := Minimize(d)
	if m.NumStates != 1 {
		t.Errorf("got %d states, want 1", m.NumStates)
	}
}

// classesOf builds ByteClasses distinguishing the given bytes from each
// other and from the rest of the alphabet.
func classesOf(distinct string) *nfa.ByteClasses {
	a := nfa.New(len(distinct) + 1)
	for i := 0; i < len(distinct); i++ {
		var s syntax.CharSet
		s.AddByte(distinct[i])
		a.AddEdge(0, int32(i+1), s)
	}
	return nfa.Classes(a)
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := MustCompilePattern("(ab)*")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	d.NextC[0] = int32(d.NumStates + 5)
	if err := d.Validate(); err == nil {
		t.Error("expected validation error")
	}
}

// randPattern and randWord mirror the generators in package nfa's tests.
func randPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		return string(byte('a' + r.Intn(3)))
	}
	switch r.Intn(6) {
	case 0:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 1:
		return "(?:" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 2:
		return "(?:" + randPattern(r, depth-1) + ")*"
	case 3:
		return "(?:" + randPattern(r, depth-1) + ")?"
	case 4:
		return "(?:" + randPattern(r, depth-1) + ")+"
	default:
		return randPattern(r, depth-1)
	}
}

func randWord(r *rand.Rand, maxLen int) []byte {
	n := r.Intn(maxLen + 1)
	w := make([]byte, n)
	for i := range w {
		w[i] = byte('a' + r.Intn(3))
	}
	return w
}

func ExampleDFA_Accepts() {
	d := MustCompilePattern("(ab)*")
	fmt.Println(d.Accepts([]byte("abab")), d.Accepts([]byte("aba")))
	// Output: true false
}
