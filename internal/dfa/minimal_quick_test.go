package dfa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestMinimizeProducesMinimal property-checks Hopcroft's output on random
// patterns: never larger than its input, language-preserving, and with no
// pair of equivalent states (true minimality, via pairwise product walk).
func TestMinimizeProducesMinimal(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pat := randPattern(r, 3)
		a := MustCompilePattern(pat) // already minimized by Compile
		d, err := CompilePattern(pat, 0, 0)
		if err != nil {
			return false
		}
		if d.NumStates > a.NumStates {
			return false
		}
		if !Equivalent(a, d) {
			return false
		}
		for p := int32(0); p < int32(d.NumStates); p++ {
			for q := p + 1; q < int32(d.NumStates); q++ {
				if statesEquivalent(d, p, q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMinimalDFAIsUnique: two independently built automata for the same
// random language (via different but equivalent pattern spellings) must
// minimize to isomorphic DFAs.
func TestMinimalDFAIsUnique(t *testing.T) {
	pairs := [][2]string{
		{"(ab)*", "(ab)*(ab)*"},
		{"a+", "aa*"},
		{"(a|b)*", "(b|a)*"},
		{"a{2,4}", "aa(a?)(a?)"},
		{"(a|bc)*", "((a|bc)(a|bc))*(a|bc)?"},
		{"[0-4]{2}", "[0-4][0-4]"},
	}
	for _, p := range pairs {
		d1 := MustCompilePattern(p[0])
		d2 := MustCompilePattern(p[1])
		if !Isomorphic(d1, d2) {
			t.Errorf("%q and %q should minimize to the same DFA", p[0], p[1])
		}
	}
}
