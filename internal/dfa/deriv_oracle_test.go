package dfa

import (
	"math/rand"
	"testing"

	"repro/internal/syntax"
)

// TestPipelineAgainstDerivatives cross-validates the whole automaton
// pipeline (Glushkov → subset construction → Hopcroft) against the
// Brzozowski-derivative matcher, an implementation that shares nothing
// with it beyond the parser.
func TestPipelineAgainstDerivatives(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	for trial := 0; trial < 150; trial++ {
		pat := randPattern(r, 3)
		node := syntax.MustParse(pat, 0)
		d := MustCompilePattern(pat)
		for i := 0; i < 20; i++ {
			w := randWord(r, 10)
			dfaSays := d.Accepts(w)
			derivSays := syntax.DeriveMatch(node, w)
			if dfaSays != derivSays {
				t.Fatalf("pattern %q word %q: DFA=%v derivatives=%v",
					pat, w, dfaSays, derivSays)
			}
		}
	}
}

// TestDerivativeDFAEquivalence: the derivative of a language and the DFA
// state reached on the same byte recognize the same residual language.
func TestDerivativeDFAEquivalence(t *testing.T) {
	for _, pat := range []string{"(ab)*", "(a|bc)*d?", "a{2,4}b*"} {
		node := syntax.MustParse(pat, 0)
		for _, b := range []byte("abcd") {
			dnode := syntax.Derive(node, b)
			// Compile the derivative and compare with the original DFA
			// started one step in.
			dd, err := Compile(dnode, 0)
			if err != nil {
				t.Fatal(err)
			}
			orig := MustCompilePattern(pat)
			// Shift the start state of orig by b.
			shifted := New(orig.NumStates, orig.BC)
			shifted.Start = orig.NextByte(orig.Start, b)
			copy(shifted.Accept, orig.Accept)
			copy(shifted.NextC, orig.NextC)
			shifted.DetectDead()
			if !Equivalent(Minimize(shifted), dd) {
				t.Errorf("∂_%c(%s) disagrees with the shifted DFA", b, pat)
			}
		}
	}
}
