package dfa

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/binio"
	"repro/internal/nfa"
)

// Binary serialization of compiled DFAs. Table III shows that automaton
// construction — not matching — dominates start-up for large patterns, so
// production deployments compile once and load the tables at start;
// this codec provides that. The format is little-endian, versioned, and
// validated on load.

const dfaMagic = "SFA\x01DFA\x01"

// WriteTo serializes the DFA.
func (d *DFA) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(dfaMagic)); err != nil {
		return n, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(d.NumStates))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(d.Start))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(d.Dead)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(d.BC.Count))
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	if err := count(bw.Write(d.BC.Of[:])); err != nil {
		return n, err
	}
	accept := make([]byte, (d.NumStates+7)/8)
	for q, a := range d.Accept {
		if a {
			accept[q>>3] |= 1 << (q & 7)
		}
	}
	if err := count(bw.Write(accept)); err != nil {
		return n, err
	}
	buf := make([]byte, 4*len(d.NextC))
	for i, to := range d.NextC {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(to))
	}
	if err := count(bw.Write(buf)); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadDFA deserializes a DFA written by WriteTo and validates it.
// It reads exactly the encoded bytes (no readahead), so a D-SFA section
// may follow in the same stream.
func ReadDFA(r io.Reader) (*DFA, error) {
	br := r
	magic := make([]byte, len(dfaMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("dfa: reading magic: %w", err)
	}
	if string(magic) != dfaMagic {
		return nil, fmt.Errorf("dfa: bad magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("dfa: reading header: %w", err)
	}
	numStates := int(binary.LittleEndian.Uint32(hdr[0:]))
	start := int32(binary.LittleEndian.Uint32(hdr[4:]))
	dead := int32(binary.LittleEndian.Uint32(hdr[8:]))
	classes := int(binary.LittleEndian.Uint32(hdr[12:]))
	if numStates <= 0 || numStates > 1<<28 || classes <= 0 || classes > 256 {
		return nil, fmt.Errorf("dfa: implausible header (states %d, classes %d)", numStates, classes)
	}

	bc := &nfa.ByteClasses{Count: classes}
	if _, err := io.ReadFull(br, bc.Of[:]); err != nil {
		return nil, fmt.Errorf("dfa: reading classes: %w", err)
	}
	bc.Rep = make([]byte, classes)
	seen := make([]bool, classes)
	for b := 0; b < 256; b++ {
		c := int(bc.Of[b])
		if c >= classes {
			return nil, fmt.Errorf("dfa: class id %d out of range", c)
		}
		if !seen[c] {
			seen[c] = true
			bc.Rep[c] = byte(b)
		}
	}

	// Read both variable sections before allocating the automaton, so a
	// lying header costs at most the bytes actually present (binio).
	accept, err := binio.ReadExact(br, (numStates+7)/8)
	if err != nil {
		return nil, fmt.Errorf("dfa: reading accept: %w", err)
	}
	buf, err := binio.ReadExact(br, 4*numStates*classes)
	if err != nil {
		return nil, fmt.Errorf("dfa: reading transitions: %w", err)
	}
	d := New(numStates, bc)
	d.Start = start
	d.Dead = dead
	for q := 0; q < numStates; q++ {
		d.Accept[q] = accept[q>>3]&(1<<(q&7)) != 0
	}
	for i := range d.NextC {
		d.NextC[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
