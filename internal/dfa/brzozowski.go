package dfa

// BrzozowskiMinimize minimizes by double reversal:
//
//	minimal(A) = determinize(reverse(determinize(reverse(A))))
//
// It is asymptotically worse than Hopcroft (the intermediate determinization
// can be exponential) but is derived from entirely different principles,
// which makes it a valuable cross-check oracle in the test suite: both
// minimizers must agree on the number of states and, after canonical
// renumbering, on the whole transition structure.
func BrzozowskiMinimize(d *DFA) (*DFA, error) {
	rev := d.ToNFA().Reverse()
	mid, err := Determinize(rev, 0)
	if err != nil {
		return nil, err
	}
	rev2 := mid.ToNFA().Reverse()
	out, err := Determinize(rev2, 0)
	if err != nil {
		return nil, err
	}
	// The double-reversal result is minimal but may lack a dead state
	// (reversal drops states that cannot reach acceptance). Re-complete is
	// unnecessary — Determinize always yields a complete automaton over
	// its classes — but renumber canonically for comparability.
	return Minimize(out), nil
}
