package dfa

// Equivalent reports whether two complete DFAs accept the same language.
// It walks the product automaton breadth-first over the raw byte alphabet
// (so the two automata may use different byte-class partitions) and fails
// on the first acceptance mismatch. Cost is O(|Q₁|·|Q₂|·256) worst case.
func Equivalent(a, b *DFA) bool {
	type pair struct{ qa, qb int32 }
	seen := map[pair]bool{}
	start := pair{a.Start, b.Start}
	queue := []pair{start}
	seen[start] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if a.Accept[p.qa] != b.Accept[p.qb] {
			return false
		}
		for c := 0; c < 256; c++ {
			np := pair{a.NextByte(p.qa, byte(c)), b.NextByte(p.qb, byte(c))}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}

// Isomorphic reports whether two DFAs are structurally identical up to
// state renumbering. For minimal complete DFAs of the same language this
// is always true; the test suite uses it to compare Hopcroft against
// Brzozowski output.
func Isomorphic(a, b *DFA) bool {
	if a.NumStates != b.NumStates {
		return false
	}
	mapping := make([]int32, a.NumStates)
	mapped := make([]bool, a.NumStates)
	inverse := make([]bool, b.NumStates)
	mapping[a.Start] = b.Start
	mapped[a.Start] = true
	inverse[b.Start] = true
	queue := []int32{a.Start}
	for len(queue) > 0 {
		qa := queue[0]
		queue = queue[1:]
		qb := mapping[qa]
		if a.Accept[qa] != b.Accept[qb] {
			return false
		}
		for c := 0; c < 256; c++ {
			ta, tb := a.NextByte(qa, byte(c)), b.NextByte(qb, byte(c))
			if mapped[ta] {
				if mapping[ta] != tb {
					return false
				}
				continue
			}
			if inverse[tb] {
				return false // tb already used by another state
			}
			mapping[ta] = tb
			mapped[ta] = true
			inverse[tb] = true
			queue = append(queue, ta)
		}
	}
	// Unreached states (none, if a is trim) are ignored.
	return true
}
