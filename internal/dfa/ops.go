package dfa

import (
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// Boolean language operations via product constructions. They give the
// library the closure properties of regular languages (useful on their
// own for rule combination) and give the test suite an algebraic oracle:
// L ∩ ¬L = ∅, L ∪ ¬L = Σ*, de Morgan, etc.

// Complement returns a DFA for Σ* ∖ L(d). Because automata here are
// complete, complementation is exactly flipping acceptance.
func Complement(d *DFA) *DFA {
	c := New(d.NumStates, d.BC)
	c.Start = d.Start
	copy(c.NextC, d.NextC)
	for q, a := range d.Accept {
		c.Accept[q] = !a
	}
	c.DetectDead()
	return Minimize(c)
}

// Intersect returns a minimal DFA for L(a) ∩ L(b).
func Intersect(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x && y })
}

// Union returns a minimal DFA for L(a) ∪ L(b).
func Union(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x || y })
}

// Difference returns a minimal DFA for L(a) ∖ L(b).
func Difference(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x && !y })
}

// SymmetricDifference returns a minimal DFA for L(a) △ L(b); the result
// is empty exactly when the languages are equal, which Equivalent uses as
// a cross-check in tests.
func SymmetricDifference(a, b *DFA) *DFA {
	return product(a, b, func(x, y bool) bool { return x != y })
}

// IsEmpty reports whether L(d) = ∅ (no accepting state reachable).
func IsEmpty(d *DFA) bool {
	seen := make([]bool, d.NumStates)
	stack := []int32{d.Start}
	seen[d.Start] = true
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[q] {
			return false
		}
		for c := 0; c < d.BC.Count; c++ {
			to := d.NextClass(q, c)
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return true
}

// IsTotal reports whether L(d) = Σ* (every reachable state accepts).
func IsTotal(d *DFA) bool {
	return IsEmpty(Complement(d))
}

// product runs the pairwise construction with the given acceptance
// combiner, over the merged byte classes of the two automata, exploring
// only reachable pairs, and minimizes the result.
func product(a, b *DFA, combine func(bool, bool) bool) *DFA {
	bc := mergeClasses(a.BC, b.BC)
	type pair struct{ qa, qb int32 }
	index := map[pair]int32{}
	var order []pair

	add := func(p pair) int32 {
		if id, ok := index[p]; ok {
			return id
		}
		id := int32(len(order))
		index[p] = id
		order = append(order, p)
		return id
	}
	add(pair{a.Start, b.Start})

	type row struct {
		next   []int32
		accept bool
	}
	var rows []row
	for i := 0; i < len(order); i++ {
		p := order[i]
		r := row{next: make([]int32, bc.Count), accept: combine(a.Accept[p.qa], b.Accept[p.qb])}
		for c := 0; c < bc.Count; c++ {
			rep := bc.Rep[c]
			r.next[c] = add(pair{a.NextByte(p.qa, rep), b.NextByte(p.qb, rep)})
		}
		rows = append(rows, r)
	}

	d := New(len(rows), bc)
	d.Start = 0
	for i, r := range rows {
		d.Accept[i] = r.accept
		copy(d.NextC[i*bc.Count:(i+1)*bc.Count], r.next)
	}
	d.DetectDead()
	return Minimize(d)
}

// mergeClasses returns the coarsest partition refining both inputs.
func mergeClasses(a, b *nfa.ByteClasses) *nfa.ByteClasses {
	// Reuse the refinement machinery in package nfa by probing with the
	// class sets of both partitions.
	probe := nfa.New(2)
	emit := func(bc *nfa.ByteClasses) {
		for c := 0; c < bc.Count; c++ {
			var set syntax.CharSet
			for x := 0; x < 256; x++ {
				if int(bc.Of[x]) == c {
					set.AddByte(byte(x))
				}
			}
			probe.AddEdge(0, 1, set)
		}
	}
	emit(a)
	emit(b)
	return nfa.Classes(probe)
}
