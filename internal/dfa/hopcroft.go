package dfa

// Minimize returns the minimal complete DFA recognizing the same language,
// computed with Hopcroft's partition-refinement algorithm over the DFA's
// byte classes. States of the result are renumbered in canonical BFS order
// from the start state, so two equivalent minimal DFAs over the same byte
// classes are structurally identical.
//
// The paper minimizes every DFA before building the D-SFA ("we constructed
// a minimized DFA and then a D-SFA", Sect. VI-A); minimality is also what
// ties |D-SFA| to the syntactic complexity of the language (Sect. VII-A).
func Minimize(d *DFA) *DFA {
	d = trim(d)
	nc := d.BC.Count
	n := d.NumStates

	// Inverse transition CSR per class: predecessors of s under c are
	// inv[invStart[c*n+s] : invStart[c*n+s+1]].
	counts := make([]int32, nc*n+1)
	for q := 0; q < n; q++ {
		for c := 0; c < nc; c++ {
			s := d.NextC[q*nc+c]
			counts[c*n+int(s)+1]++
		}
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	invStart := counts
	inv := make([]int32, nc*n)
	fill := make([]int32, nc*n)
	copy(fill, invStart[:nc*n])
	for q := 0; q < n; q++ {
		for c := 0; c < nc; c++ {
			s := d.NextC[q*nc+c]
			idx := c*n + int(s)
			inv[fill[idx]] = int32(q)
			fill[idx]++
		}
	}

	// Partition structure: elems holds the states grouped by block;
	// loc[q] is q's index in elems; blocks are [first, first+size) spans.
	elems := make([]int32, n)
	loc := make([]int32, n)
	blockOf := make([]int32, n)
	var first, size []int32

	newBlock := func() int32 {
		first = append(first, 0)
		size = append(size, 0)
		return int32(len(first) - 1)
	}

	// Initial partition {F, Q∖F}.
	acc, rej := newBlock(), newBlock()
	for q := 0; q < n; q++ {
		if d.Accept[q] {
			size[acc]++
		} else {
			size[rej]++
		}
	}
	first[acc], first[rej] = 0, size[acc]
	posA, posR := first[acc], first[rej]
	for q := 0; q < n; q++ {
		if d.Accept[q] {
			elems[posA], loc[q], blockOf[q] = int32(q), posA, acc
			posA++
		} else {
			elems[posR], loc[q], blockOf[q] = int32(q), posR, rej
			posR++
		}
	}

	// Worklist of (block, class) splitters. Seed with the smaller half.
	type splitter struct {
		block int32
		class int32
	}
	var work []splitter
	seed := acc
	if size[rej] < size[acc] {
		seed = rej
	}
	if size[acc] == 0 || size[rej] == 0 {
		// Single-block partition; nothing to refine.
		seed = -1
	}
	if seed >= 0 {
		for c := 0; c < nc; c++ {
			work = append(work, splitter{seed, int32(c)})
		}
	}

	// moved[b] counts elements of block b swapped into its X-prefix while
	// processing the current splitter.
	moved := make([]int32, 2, max(2, n))
	var touched []int32
	var xbuf []int32

	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]

		// X = δ⁻¹(A, c): collect before any splitting mutates A.
		xbuf = xbuf[:0]
		a := sp.block
		for i := first[a]; i < first[a]+size[a]; i++ {
			s := elems[i]
			base := int(sp.class)*n + int(s)
			xbuf = append(xbuf, inv[invStart[base]:invStart[base+1]]...)
		}

		touched = touched[:0]
		for _, q := range xbuf {
			b := blockOf[q]
			if moved[b] == 0 {
				touched = append(touched, b)
			}
			// Swap q into the X-prefix of its block, unless already there.
			dst := first[b] + moved[b]
			if loc[q] >= dst {
				other := elems[dst]
				elems[dst], elems[loc[q]] = q, other
				loc[other], loc[q] = loc[q], dst
				moved[b]++
			}
		}

		for _, b := range touched {
			cnt := moved[b]
			moved[b] = 0
			if cnt == size[b] {
				continue // every element hit; no split
			}
			// Split off the smaller part as a fresh block, enqueue it for
			// every class. Pending splitters that name b keep covering the
			// (larger) remainder, which preserves Hopcroft's invariant.
			nb := newBlock()
			for int(nb) >= len(moved) {
				moved = append(moved, 0)
			}
			if cnt <= size[b]-cnt {
				first[nb], size[nb] = first[b], cnt
				first[b] += cnt
				size[b] -= cnt
			} else {
				first[nb], size[nb] = first[b]+cnt, size[b]-cnt
				size[b] = cnt
			}
			for i := first[nb]; i < first[nb]+size[nb]; i++ {
				blockOf[elems[i]] = nb
			}
			for c := 0; c < nc; c++ {
				work = append(work, splitter{nb, int32(c)})
			}
		}
	}

	// Drop empty blocks (possible when F or Q∖F was empty) and renumber
	// the remainder canonically by BFS from the start block.
	numBlocks := int32(len(first))
	rep := make([]int32, numBlocks)
	for b := int32(0); b < numBlocks; b++ {
		if size[b] > 0 {
			rep[b] = elems[first[b]]
		} else {
			rep[b] = -1
		}
	}
	order := make([]int32, 0, numBlocks)
	index := make([]int32, numBlocks)
	for i := range index {
		index[i] = -1
	}
	startB := blockOf[d.Start]
	index[startB] = 0
	order = append(order, startB)
	for i := 0; i < len(order); i++ {
		b := order[i]
		r := rep[b]
		for c := 0; c < nc; c++ {
			tb := blockOf[d.NextC[int(r)*nc+c]]
			if index[tb] < 0 {
				index[tb] = int32(len(order))
				order = append(order, tb)
			}
		}
	}

	m := New(len(order), d.BC)
	m.Start = 0
	for i, b := range order {
		r := rep[b]
		m.Accept[i] = d.Accept[r]
		for c := 0; c < nc; c++ {
			m.setNext(int32(i), c, index[blockOf[d.NextC[int(r)*nc+c]]])
		}
	}
	m.Dead = m.findDead()
	return m
}

// trim returns an equivalent DFA containing only the states reachable from
// the start state (subset construction already guarantees this; hand-built
// automata may not).
func trim(d *DFA) *DFA {
	nc := d.BC.Count
	index := make([]int32, d.NumStates)
	for i := range index {
		index[i] = -1
	}
	order := []int32{d.Start}
	index[d.Start] = 0
	for i := 0; i < len(order); i++ {
		q := order[i]
		for c := 0; c < nc; c++ {
			to := d.NextC[int(q)*nc+c]
			if index[to] < 0 {
				index[to] = int32(len(order))
				order = append(order, to)
			}
		}
	}
	if len(order) == d.NumStates {
		return d
	}
	t := New(len(order), d.BC)
	t.Start = 0
	for i, q := range order {
		t.Accept[i] = d.Accept[q]
		for c := 0; c < nc; c++ {
			t.setNext(int32(i), c, index[d.NextC[int(q)*nc+c]])
		}
	}
	t.Dead = t.findDead()
	return t
}
