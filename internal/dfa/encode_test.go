package dfa

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestDFARoundTrip(t *testing.T) {
	patterns := []string{
		"(ab)*",
		"([0-4]{5}[5-9]{5})*",
		"(a|b)*abb",
		"(?s).*",
	}
	for _, pat := range patterns {
		d := MustCompilePattern(pat)
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		got, err := ReadDFA(&buf)
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		if got.NumStates != d.NumStates || got.Start != d.Start || got.Dead != d.Dead {
			t.Fatalf("%q: header mismatch", pat)
		}
		if !Isomorphic(d, got) {
			t.Fatalf("%q: round trip changed the automaton", pat)
		}
		// Behavioural spot check.
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 50; i++ {
			w := make([]byte, r.Intn(20))
			for j := range w {
				w[j] = byte(r.Intn(256))
			}
			if d.Accepts(w) != got.Accepts(w) {
				t.Fatalf("%q: verdict mismatch on %q", pat, w)
			}
		}
	}
}

func TestReadDFARejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXXXXXX garbage that is long enough to pass magic length"),
	}
	for _, data := range cases {
		if _, err := ReadDFA(bytes.NewReader(data)); err == nil {
			t.Errorf("garbage %q accepted", data)
		}
	}
	// Truncated valid stream.
	d := MustCompilePattern("(ab)*")
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadDFA(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestReadDFARejectsCorruptTransitions(t *testing.T) {
	d := MustCompilePattern("(ab)*")
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Last 4 bytes are a transition entry; point it out of range.
	data[len(data)-1] = 0x7f
	if _, err := ReadDFA(bytes.NewReader(data)); err == nil {
		t.Error("corrupt transition accepted")
	}
}
