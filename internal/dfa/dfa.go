// Package dfa implements deterministic finite automata over the byte
// alphabet: the subset construction of the paper's Algorithm 1, Hopcroft
// minimization (with a Brzozowski cross-check), language-equivalence
// testing, and the live-size accounting convention used throughout the
// paper's evaluation.
//
// Dead-state convention. A DFA over the full 256-byte alphabet is stored
// complete: every state has a successor for every byte. The everywhere-
// rejecting sink ("dead state") that completeness usually forces is,
// however, not part of the sizes the paper reports — the minimal DFA of
// ([0-4]{5}[5-9]{5})* is quoted as 10 states, which is its live-state
// count. LiveSize implements that convention; NumStates includes the sink.
package dfa

import (
	"errors"
	"fmt"

	"repro/internal/nfa"
	"repro/internal/syntax"
)

// ErrTooManyStates is returned by Determinize when the state cap set by
// the caller is exceeded (the paper skips SNORT rules whose DFA exceeds
// 1000 states, Sect. VI-A).
var ErrTooManyStates = errors.New("dfa: state cap exceeded")

// NoDead marks the absence of a dead state in DFA.Dead.
const NoDead int32 = -1

// DFA is a complete deterministic finite automaton. Transitions are
// stored class-indexed: NextC[q*len(classes)+c] with c the byte class of
// the input byte. Table256 expands to the flat 256-wide layout used by
// the matching engines (1 KB per state, as in the paper's Sect. VI-B).
type DFA struct {
	NumStates int
	Start     int32
	Accept    []bool
	BC        *nfa.ByteClasses
	NextC     []int32 // NumStates × BC.Count
	Dead      int32   // index of the sink state, or NoDead
}

// New returns a DFA shell with n states and the given classes.
// Transitions are initialized to 0 and must be filled by the caller,
// which should finish with DetectDead.
func New(n int, bc *nfa.ByteClasses) *DFA {
	return &DFA{
		NumStates: n,
		Accept:    make([]bool, n),
		BC:        bc,
		NextC:     make([]int32, n*bc.Count),
		Dead:      NoDead,
	}
}

// DetectDead locates the sink state (if any) and records it in d.Dead.
// Callers that fill a DFA by hand must invoke it once transitions are
// final so that LiveSize follows the paper's counting convention.
func (d *DFA) DetectDead() {
	d.Dead = d.findDead()
}

// NextClass returns the successor of q under byte class c.
func (d *DFA) NextClass(q int32, c int) int32 {
	return d.NextC[int(q)*d.BC.Count+c]
}

// NextByte returns the successor of q on input byte b.
func (d *DFA) NextByte(q int32, b byte) int32 {
	return d.NextC[int(q)*d.BC.Count+int(d.BC.Of[b])]
}

// setNext sets the successor of q under class c.
func (d *DFA) setNext(q int32, c int, to int32) {
	d.NextC[int(q)*d.BC.Count+c] = to
}

// LiveSize returns the number of states excluding the dead sink — the
// state count convention of the paper (|D| = 10 for r5 etc.).
func (d *DFA) LiveSize() int {
	if d.Dead != NoDead {
		return d.NumStates - 1
	}
	return d.NumStates
}

// Accepts runs the DFA over text and reports whole-input acceptance.
// This is the paper's Algorithm 2 in its simplest form; the tuned
// implementations live in package engine.
func (d *DFA) Accepts(text []byte) bool {
	q := d.Start
	for _, b := range text {
		q = d.NextByte(q, b)
	}
	return d.Accept[q]
}

// Run returns the destination state q0 --text--> q.
func (d *DFA) Run(from int32, text []byte) int32 {
	q := from
	for _, b := range text {
		q = d.NextByte(q, b)
	}
	return q
}

// Table256 materializes the flat 256-entries-per-state transition table
// (int32 entries ⇒ exactly 1 KB per state). Engines use this layout by
// default so the cache behaviour studied in the paper's Fig. 8 is
// reproduced faithfully.
func (d *DFA) Table256() []int32 {
	t := make([]int32, d.NumStates*256)
	for q := 0; q < d.NumStates; q++ {
		row := t[q*256 : (q+1)*256]
		base := q * d.BC.Count
		for b := 0; b < 256; b++ {
			row[b] = d.NextC[base+int(d.BC.Of[b])]
		}
	}
	return t
}

// findDead locates the sink: the unique non-accepting state all of whose
// transitions self-loop. In a trim automaton there is at most one.
func (d *DFA) findDead() int32 {
	for q := 0; q < d.NumStates; q++ {
		if d.Accept[q] {
			continue
		}
		sink := true
		base := q * d.BC.Count
		for c := 0; c < d.BC.Count; c++ {
			if d.NextC[base+c] != int32(q) {
				sink = false
				break
			}
		}
		if sink {
			return int32(q)
		}
	}
	return NoDead
}

// String summarizes the automaton.
func (d *DFA) String() string {
	return fmt.Sprintf("DFA{states: %d (live %d), classes: %d, start: %d}",
		d.NumStates, d.LiveSize(), d.BC.Count, d.Start)
}

// Validate checks internal invariants; it is used by tests and fuzzing.
func (d *DFA) Validate() error {
	if d.NumStates <= 0 {
		return errors.New("dfa: no states")
	}
	if int(d.Start) >= d.NumStates || d.Start < 0 {
		return fmt.Errorf("dfa: start %d out of range", d.Start)
	}
	if len(d.Accept) != d.NumStates {
		return fmt.Errorf("dfa: accept len %d != states %d", len(d.Accept), d.NumStates)
	}
	if len(d.NextC) != d.NumStates*d.BC.Count {
		return fmt.Errorf("dfa: table len %d != %d×%d", len(d.NextC), d.NumStates, d.BC.Count)
	}
	for i, to := range d.NextC {
		if to < 0 || int(to) >= d.NumStates {
			return fmt.Errorf("dfa: transition %d → %d out of range", i, to)
		}
	}
	if d.Dead != NoDead {
		if int(d.Dead) >= d.NumStates {
			return fmt.Errorf("dfa: dead %d out of range", d.Dead)
		}
		if d.Accept[d.Dead] {
			return errors.New("dfa: dead state accepts")
		}
	}
	return nil
}

// ToNFA views the DFA as an NFA (used by Brzozowski minimization and by
// the N-SFA construction, which is defined on general automata).
func (d *DFA) ToNFA() *nfa.NFA {
	a := nfa.New(d.NumStates)
	a.Start = []int32{d.Start}
	copy(a.Accept, d.Accept)
	for q := 0; q < d.NumStates; q++ {
		// Group target states per class to emit one edge per class.
		for c := 0; c < d.BC.Count; c++ {
			to := d.NextClass(int32(q), c)
			set := classSet(d.BC, c)
			a.AddEdge(int32(q), to, set)
		}
	}
	return a
}

// classSet returns the CharSet of bytes belonging to class c.
func classSet(bc *nfa.ByteClasses, c int) (set syntax.CharSet) {
	for b := 0; b < 256; b++ {
		if int(bc.Of[b]) == c {
			set.AddByte(byte(b))
		}
	}
	return set
}
