package dfa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComplementBasics(t *testing.T) {
	d := MustCompilePattern("(ab)*")
	c := Complement(d)
	cases := map[string]bool{"": true, "ab": true, "a": false, "ba": false}
	for w, inL := range cases {
		if c.Accepts([]byte(w)) != !inL {
			t.Errorf("complement wrong on %q", w)
		}
	}
	// ¬¬L = L.
	if !Equivalent(d, Complement(c)) {
		t.Error("double complement changed the language")
	}
}

func TestBooleanAlgebraLaws(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := MustCompilePattern(randPattern(r, 3))
		b := MustCompilePattern(randPattern(r, 3))

		// L(a) ∩ ¬L(a) = ∅ and L(a) ∪ ¬L(a) = Σ*.
		if !IsEmpty(Intersect(a, Complement(a))) {
			return false
		}
		if !IsTotal(Union(a, Complement(a))) {
			return false
		}
		// De Morgan: ¬(A ∪ B) = ¬A ∩ ¬B.
		left := Complement(Union(a, b))
		right := Intersect(Complement(a), Complement(b))
		if !Equivalent(left, right) {
			return false
		}
		// A ∖ B = A ∩ ¬B.
		if !Equivalent(Difference(a, b), Intersect(a, Complement(b))) {
			return false
		}
		// A △ A = ∅.
		return IsEmpty(SymmetricDifference(a, a))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIntersectAgainstMembership(t *testing.T) {
	a := MustCompilePattern("(ab)*")
	b := MustCompilePattern("a(ba)*b|") // even-length words starting with a... plus ε
	i := Intersect(a, b)
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		w := make([]byte, r.Intn(12))
		for j := range w {
			w[j] = byte('a' + r.Intn(2))
		}
		want := a.Accepts(w) && b.Accepts(w)
		if got := i.Accepts(w); got != want {
			t.Fatalf("intersection wrong on %q: got %v want %v", w, got, want)
		}
	}
}

func TestUnionMergedClasses(t *testing.T) {
	// The two patterns use different byte classes; the product must merge
	// them correctly.
	a := MustCompilePattern("[0-4]+")
	b := MustCompilePattern("[3-9]+")
	u := Union(a, b)
	for w, want := range map[string]bool{
		"012": true, "789": true, "34": true, "0129": false, "": false, "az": false,
	} {
		if got := u.Accepts([]byte(w)); got != want {
			t.Errorf("union wrong on %q: got %v want %v", w, got, want)
		}
	}
}

func TestSymmetricDifferenceDetectsInequality(t *testing.T) {
	a := MustCompilePattern("(ab)*")
	b := MustCompilePattern("(ab)+")
	sd := SymmetricDifference(a, b)
	if IsEmpty(sd) {
		t.Fatal("(ab)* vs (ab)+ should differ")
	}
	// The difference is exactly {ε}.
	if !sd.Accepts(nil) {
		t.Error("ε should witness the difference")
	}
	if sd.Accepts([]byte("ab")) {
		t.Error("ab is in both languages")
	}
}

func TestIsEmptyAndTotal(t *testing.T) {
	if !IsEmpty(MustCompilePattern("a")) == false {
		t.Error("L(a) is nonempty")
	}
	// ∅ via intersection of disjoint languages.
	empty := Intersect(MustCompilePattern("a+"), MustCompilePattern("b+"))
	if !IsEmpty(empty) {
		t.Error("a+ ∩ b+ should be empty")
	}
	if !IsTotal(MustCompilePattern("(?s).*")) {
		t.Error("(?s).* is total")
	}
	if IsTotal(MustCompilePattern("a*")) {
		t.Error("a* is not total")
	}
}
