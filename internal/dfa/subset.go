package dfa

import (
	"fmt"

	"repro/internal/nfa"
	"repro/internal/syntax"
)

// Determinize applies the subset construction (the paper's Algorithm 1) to
// an NFA, producing a complete DFA over the NFA's byte classes. Starting
// from the ε-closed initial set it explores only accessible subsets,
// "considering only those states obtained by applying the transition
// function to the states already calculated".
//
// cap > 0 bounds the number of DFA states; ErrTooManyStates is returned
// when exceeded (the paper's SNORT study skips DFAs above 1000 states).
func Determinize(a *nfa.NFA, cap int) (*DFA, error) {
	t := nfa.Compile(a)
	return determinize(t, cap)
}

// DeterminizeTable is Determinize for an already-compiled NFA table.
func DeterminizeTable(t *nfa.Table, cap int) (*DFA, error) {
	return determinize(t, cap)
}

func determinize(t *nfa.Table, cap int) (*DFA, error) {
	nc := t.BC.Count
	words := t.Words

	// Subset interning: bitset bytes → state id.
	ids := make(map[string]int32)
	var subsets [][]uint64 // id → bitset (owned copies)
	var trans []int32      // id*nc + c → id, grown in lockstep

	intern := func(set []uint64) (int32, bool, error) {
		key := bitsetKey(set)
		if id, ok := ids[key]; ok {
			return id, false, nil
		}
		id := int32(len(subsets))
		if cap > 0 && len(subsets) >= cap {
			return 0, false, fmt.Errorf("%w (cap %d)", ErrTooManyStates, cap)
		}
		own := make([]uint64, words)
		copy(own, set)
		ids[key] = id
		subsets = append(subsets, own)
		trans = append(trans, make([]int32, nc)...)
		return id, true, nil
	}

	start := t.A.StartSet()
	startID, _, err := intern(start)
	if err != nil {
		return nil, err
	}
	queue := []int32{startID}
	scratch := make([]uint64, words)

	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		src := subsets[id]
		for c := 0; c < nc; c++ {
			for i := range scratch {
				scratch[i] = 0
			}
			t.Step(scratch, src, c)
			to, fresh, err := intern(scratch)
			if err != nil {
				return nil, err
			}
			trans[int(id)*nc+c] = to
			if fresh {
				queue = append(queue, to)
			}
		}
	}

	d := New(len(subsets), t.BC)
	d.Start = startID
	d.NextC = trans
	for id, set := range subsets {
		d.Accept[id] = t.A.AcceptsSet(set)
	}
	d.Dead = d.findDead()
	return d, nil
}

func bitsetKey(set []uint64) string {
	b := make([]byte, len(set)*8)
	for i, w := range set {
		b[i*8] = byte(w)
		b[i*8+1] = byte(w >> 8)
		b[i*8+2] = byte(w >> 16)
		b[i*8+3] = byte(w >> 24)
		b[i*8+4] = byte(w >> 32)
		b[i*8+5] = byte(w >> 40)
		b[i*8+6] = byte(w >> 48)
		b[i*8+7] = byte(w >> 56)
	}
	return string(b)
}

// Compile runs the paper's full front-end pipeline on a parsed pattern:
// Glushkov NFA (McNaughton–Yamada), subset construction, Hopcroft
// minimization. cap bounds the un-minimized DFA size (0 = unbounded).
func Compile(root *syntax.Node, cap int) (*DFA, error) {
	a, err := nfa.Glushkov(root)
	if err != nil {
		return nil, err
	}
	d, err := Determinize(a, cap)
	if err != nil {
		return nil, err
	}
	return Minimize(d), nil
}

// CompilePattern parses and compiles in one step.
func CompilePattern(pattern string, flags syntax.Flags, cap int) (*DFA, error) {
	root, err := syntax.Parse(pattern, flags)
	if err != nil {
		return nil, err
	}
	return Compile(root, cap)
}

// MustCompilePattern is CompilePattern for tests and known-good tables.
func MustCompilePattern(pattern string) *DFA {
	d, err := CompilePattern(pattern, 0, 0)
	if err != nil {
		panic(err)
	}
	return d
}
