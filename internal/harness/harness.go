// Package harness drives the reproduction of every figure and table in
// the paper's evaluation (Sect. VI) and discussion (Sect. VII), printing
// the same series the paper plots: SFA/DFA size distributions (Fig. 3),
// throughput-vs-threads curves (Figs. 6–9), the small-input crossover
// (Fig. 10), construction times (Table III), empirical complexity
// scaling (Table II), and the explosion witnesses (Facts 1–2).
//
// Absolute numbers differ from the paper's 2013 dual-Xeon testbed; the
// shapes — who wins, by what factor, where the crossover falls — are the
// reproduction targets. See EXPERIMENTS.md for paper-vs-measured.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/engine"
)

// Config parameterizes all experiments.
type Config struct {
	Out io.Writer

	// TextMB is the benchmark input size in MiB (the paper used 1024).
	TextMB int
	// MaxThreads is the upper end of the thread sweeps (the paper's
	// machine had 12 cores; sweeps oversubscribe past NumCPU to show the
	// saturation plateau).
	MaxThreads int
	// Fig8N is the r_n exponent for the cache-overflow experiment. The
	// paper used 500 (10⁶ SFA states, 1 GB of tables); 150 produces a
	// 92 MiB table that already overflows any L3 and keeps memory modest.
	Fig8N int
	// Table3Full additionally builds the full r500 D-SFA in Table III.
	Table3Full bool
	// SnortN is the Fig. 3 corpus size (the paper used 20 312).
	SnortN int
	// Seed makes workloads deterministic.
	Seed int64
	// Repeats per measurement; the best time is kept (paper-style
	// steady-state throughput).
	Repeats int
	// Layout selects the transition-table layout of the parallel engines
	// (engine.LayoutAuto picks the narrowest width that fits the
	// automaton). Flag strings are parsed once at the CLI boundary with
	// engine.ParseLayout.
	Layout engine.TableLayout
	// Spawn restores spawn-per-match goroutine creation — the seed/paper
	// behaviour, whose per-call cost Fig. 10 measures — instead of the
	// persistent worker pool.
	Spawn bool
}

// engineOpts translates the Layout/Spawn knobs into engine options.
func (c Config) engineOpts() []engine.Option {
	var opts []engine.Option
	if c.Layout != engine.LayoutAuto {
		opts = append(opts, engine.WithLayout(c.Layout))
	}
	if c.Spawn {
		opts = append(opts, engine.WithSpawn())
	}
	return opts
}

// Defaults fills zero fields with sensible defaults.
func (c Config) Defaults() Config {
	if c.TextMB <= 0 {
		c.TextMB = 64
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = max(8, runtime.GOMAXPROCS(0))
	}
	if c.Fig8N <= 0 {
		c.Fig8N = 150
	}
	if c.SnortN <= 0 {
		c.SnortN = 2000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	return c
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// table returns a tabwriter for aligned output.
func (c Config) table() *tabwriter.Writer {
	return tabwriter.NewWriter(c.Out, 2, 4, 2, ' ', tabwriter.AlignRight)
}

// bestOf runs f `repeats` times and returns the minimum duration.
func bestOf(repeats int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// gbPerSec converts a byte count and duration into GB/s (decimal GB, as
// the paper's throughput axes).
func gbPerSec(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e9
}

// header prints a section banner.
func (c Config) header(title string) {
	c.printf("\n=== %s ===\n", title)
}
