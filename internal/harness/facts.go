package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/monoid"
)

// Facts reproduces the Sect. VII-B explosion witnesses:
//
//   - Fact 1 / Example 3: [ap]*[al][alp]{k−1} has a (k+1)-state NFA (in
//     the paper's fused numbering) whose minimal DFA reaches all 2^(k+1)
//     subsets — exponential DFA blowup over a 3-letter alphabet.
//   - Fact 2 / Example 4: a 3-letter minimal DFA whose transition monoid
//     is the full transformation monoid T_n, so |Sd| = |D|^|D| — the
//     theoretical worst case of Theorem 2.
//   - Corollary 3.1 (Devadze): near-bound N-SFAs need exponentially many
//     generators, so no small regex reaches 2^(k²); echoed as a note.
func (c Config) Facts() error {
	c = c.Defaults()
	c.header("Facts 1 & 2 — state-explosion witnesses (Sect. VII-B)")

	w := c.table()
	fmt.Fprintf(w, "Fact 1: k\t|N| (Glushkov)\t|D| total\t2^(k+1)\t\n")
	for k := 1; k <= 10; k++ {
		a, d, err := monoid.BuildFact1(k)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t\n", k, a.NumStates, d.NumStates, 1<<(k+1))
	}
	w.Flush()

	w = c.table()
	fmt.Fprintf(w, "Fact 2: n\t|D|\t|Sd|\tn^n\t\n")
	for n := 2; n <= 5; n++ {
		d, err := monoid.Fact2DFA(n)
		if err != nil {
			return err
		}
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			return err
		}
		nn := 1
		for i := 0; i < n; i++ {
			nn *= n
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t\n", n, d.NumStates, s.NumStates, nn)
	}
	w.Flush()

	c.printf("Corollary 3.1 (Devadze/Konieczny): generating sets of the n×n boolean-matrix\n")
	c.printf("semigroup grow exponentially, so no constant-size regex reaches the 2^(k²)\n")
	c.printf("N-SFA bound — explosion witnesses exist for DFA→D-SFA (Fact 2) but not N-SFA.\n")
	return nil
}
