package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// Table3 reproduces the construction-cost table: time to build the
// minimal DFA and then the D-SFA for r_n, n ∈ {5, 50, 500}. The paper
// reports 0.0003/0.0019/0.0187 s for DFAs and 0.002/0.202/23.9 s for
// D-SFAs — about 50 000 SFA states per second on 2013 hardware. The full
// r500 build materializes ~10⁶ mapping vectors of 1001 entries; it is
// gated behind Table3Full (≈3 GiB of interning state).
func (c Config) Table3() error {
	c = c.Defaults()
	c.header("Table III — construction time of DFA and D-SFA for r_n")
	c.printf("paper: DFA 0.0003/0.0019/0.0187 s; D-SFA 0.0020/0.2020/23.937 s (n=5/50/500)\n")

	ns := []int{5, 50}
	if c.Table3Full {
		ns = append(ns, 500)
	} else {
		ns = append(ns, c.Fig8N)
		c.printf("note: n=500 gated behind -table3full; using n=%d for the large point\n", c.Fig8N)
	}

	w := c.table()
	fmt.Fprintf(w, "n\tDFA s\t|D|\tD-SFA s\t|Sd|\tSFA states/s\t\n")
	for _, n := range ns {
		pattern := fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n)
		node := syntax.MustParse(pattern, 0)

		dfaStart := time.Now()
		a, err := nfa.Glushkov(node)
		if err != nil {
			return err
		}
		d0, err := dfa.Determinize(a, 0)
		if err != nil {
			return err
		}
		d := dfa.Minimize(d0)
		dfaDur := time.Since(dfaStart)

		sfaStart := time.Now()
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			return err
		}
		sfaDur := time.Since(sfaStart)

		fmt.Fprintf(w, "%d\t%.4f\t%d\t%.4f\t%d\t%.0f\t\n",
			n, dfaDur.Seconds(), d.LiveSize(), sfaDur.Seconds(), s.LiveSize(),
			float64(s.NumStates)/sfaDur.Seconds())
	}
	w.Flush()
	return nil
}
