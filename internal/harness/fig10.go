package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/textgen"
)

// Fig10 reproduces the overhead study: execution time of sequential DFA
// vs 2-thread parallel SFA (including goroutine creation and reduction,
// as the paper includes thread creation) on inputs from 100 KB to 1 MB of
// the pattern (([02468][13579]){5})* — |D| = 10, |S| = 21. The paper
// found the parallel version ahead on average beyond ~600 KB and
// consistently beyond ~800 KB.
func (c Config) Fig10() error {
	c = c.Defaults()
	c.header("Fig. 10 — small-input overhead, (([02468][13579]){5})*")
	c.printf("paper: |D|=10 |S|=21; SFA(2 threads) wins on average >600KB, completely >800KB\n")

	d := dfa.MustCompilePattern("(([02468][13579]){5})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		return err
	}
	c.printf("measured: |D|=%d |S|=%d\n", d.LiveSize(), s.LiveSize())

	seq := engine.NewDFASequential(d)
	// The paper's measurement includes thread creation, so the headline
	// column spawns goroutines per Match (the seed behaviour); the pooled
	// column shows the same engine on the persistent worker pool, i.e.
	// what the overhead study looks like once thread creation is hoisted
	// out of the call.
	// Both knobs are pinned to the seed configuration (spawned
	// goroutines AND the int32 table) so the headline column differs
	// from the seed in nothing but measurement noise.
	par := engine.NewSFAParallel(s, 2, engine.ReduceSequential,
		engine.WithSpawn(), engine.WithLayout(engine.LayoutI32))
	pooled := engine.NewSFAParallel(s, 2, engine.ReduceSequential)

	full := textgen.EvenOddText(1_000_000, c.Seed)
	repeats := c.Repeats * 7 // small inputs need more samples

	w := c.table()
	fmt.Fprintf(w, "input KB\tdfa-seq µs\tsfa-2thr µs\tratio\tpooled µs\tpooled ratio\t\n")
	crossover := -1
	lastAbove := 0
	// Goroutine creation costs ~1µs against the ~100µs of 2013 pthreads,
	// so the sweep extends below the paper's 100 KB floor to catch the
	// crossover where it happens on a modern runtime.
	sizes := []int{1, 2, 5, 10, 20, 50}
	for kb := 100; kb <= 1000; kb += 100 {
		sizes = append(sizes, kb)
	}
	for _, kb := range sizes {
		text := full[:kb*1000]
		ds := bestOf(repeats, func() { seq.Match(text) })
		dp := bestOf(repeats, func() { par.Match(text) })
		dq := bestOf(repeats, func() { pooled.Match(text) })
		ratio := float64(ds) / float64(dp)
		if ratio > 1 && crossover < 0 {
			crossover = kb
		}
		if ratio <= 1 {
			lastAbove = kb
			crossover = -1
		}
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.2f\t%.1f\t%.2f\t\n",
			kb, micro(ds), micro(dp), ratio, micro(dq), float64(ds)/float64(dq))
	}
	w.Flush()
	switch {
	case crossover > 0:
		c.printf("crossover: SFA(2) consistently faster from %d KB (paper: 600–800 KB)\n", crossover)
	case lastAbove == 1000:
		c.printf("no crossover up to 1 MB on this machine\n")
	}
	return nil
}

func micro(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
