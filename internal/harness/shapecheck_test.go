package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestShapeCheckSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs timed measurements")
	}
	var buf bytes.Buffer
	cfg := tiny(&buf)
	err := cfg.ShapeCheck()
	out := buf.String()
	// The exact-size claims must always pass; the timed inequalities are
	// checked but a FAIL on shared CI hardware is reported, not fatal to
	// this smoke test (ShapeCheck's error return carries it).
	for _, want := range []string{
		"PASS Fig.6 sizes",
		"PASS Fig.7 sizes",
		"PASS Fig.10 sizes",
		"PASS r_n size law",
		"PASS Fact 2",
		"PASS Fact 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if err != nil {
		t.Logf("timed shape checks reported: %v\n%s", err, out)
	}
}
