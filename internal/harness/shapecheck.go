package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/monoid"
	"repro/internal/textgen"
)

// ShapeCheck programmatically verifies the paper's qualitative claims and
// prints PASS/FAIL per claim — a machine-checkable summary of the
// reproduction that CI can gate on (sizes are exact; performance claims
// are checked as inequalities with generous slack so scheduling noise
// does not flake).
func (c Config) ShapeCheck() error {
	c = c.Defaults()
	c.header("Shape check — the paper's claims as assertions")

	pass, fail := 0, 0
	report := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			fail++
		} else {
			pass++
		}
		c.printf("%-4s %-58s %s\n", status, name, detail)
	}

	// -- Exact size claims (machine-independent). --
	sizes := []struct {
		pattern string
		d, s    int
		claim   string
	}{
		{"([0-4]{5}[5-9]{5})*", 10, 109, "Fig.6 sizes"},
		{"([0-4]{50}[5-9]{50})*", 100, 10099, "Fig.7 sizes"},
		{"(([02468][13579]){5})*", 10, 21, "Fig.10 sizes"},
		{"([0-4]{5}[5-9]{5})*|a*", 12, 110, "Fig.9 size arithmetic (n=5 analogue)"},
	}
	for _, x := range sizes {
		d := dfa.MustCompilePattern(x.pattern)
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			return err
		}
		report(x.claim, d.LiveSize() == x.d && s.LiveSize() == x.s,
			fmt.Sprintf("|D|=%d |Sd|=%d", d.LiveSize(), s.LiveSize()))
	}

	// |Sd| = |D|²+|D|−1 for the r_n family.
	lawOK := true
	for n := 1; n <= 12; n++ {
		d := dfa.MustCompilePattern(fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n))
		s, err := core.BuildDSFA(d, 0)
		if err != nil {
			return err
		}
		dl := d.LiveSize()
		if s.LiveSize() != dl*dl+dl-1 {
			lawOK = false
		}
	}
	report("r_n size law |Sd| = |D|²+|D|−1 (n ≤ 12)", lawOK, "")

	// Fact 2: |Sd| = |D|^|D|.
	d4, err := monoid.Fact2DFA(4)
	if err != nil {
		return err
	}
	s4, err := core.BuildDSFA(d4, 0)
	if err != nil {
		return err
	}
	report("Fact 2: |Sd| = |D|^|D| (n=4)", s4.NumStates == 256,
		fmt.Sprintf("|Sd|=%d", s4.NumStates))

	// Fact 1: exponential determinization.
	_, dF1, err := monoid.BuildFact1(8)
	if err != nil {
		return err
	}
	report("Fact 1: |D| = 2^(k+1) (k=8)", dF1.NumStates == 512,
		fmt.Sprintf("|D|=%d", dF1.NumStates))

	// -- Performance-shape claims (inequalities with slack). --
	size := c.TextMB << 20 / 4
	if size < 1<<20 {
		size = 1 << 20
	}

	// Claim: Algorithm 3's throughput decays with |D| (≥3× from |D|=10 to
	// |D|=100 on equal input; the theory says ~10×).
	t5 := specThroughput(t2Pattern(5), textgen.RnText(5, size/4, c.Seed), c.Repeats)
	t50 := specThroughput(t2Pattern(50), textgen.RnText(50, size/4, c.Seed), c.Repeats)
	report("Alg.3 throughput decays ≥3x per 10x |D|", t5 > 3*t50,
		fmt.Sprintf("%.4f vs %.4f GB/s", t5, t50))

	// Claim: Algorithm 5 pays no per-|D| factor while tables fit cache:
	// r5's SFA throughput within cache is far above Alg.3 at the same |D|.
	d5 := dfa.MustCompilePattern(t2Pattern(5))
	s5, err := core.BuildDSFA(d5, 0)
	if err != nil {
		return err
	}
	text5 := textgen.RnText(5, size, c.Seed)
	m5 := engine.NewSFAParallel(s5, 2, engine.ReduceSequential)
	m5.Match(text5) // warm up tables before timing
	sfa5 := gbPerSec(len(text5), bestOf(c.Repeats+1, func() { m5.Match(text5) }))
	report("Alg.5 ≥ Alg.3 at equal |D| and p", sfa5 > t5,
		fmt.Sprintf("%.3f vs %.3f GB/s", sfa5, t5))

	// Claim (Fig. 10): on sufficiently large input, SFA with 2 threads
	// beats the sequential DFA.
	dEO := dfa.MustCompilePattern("(([02468][13579]){5})*")
	sEO, err := core.BuildDSFA(dEO, 0)
	if err != nil {
		return err
	}
	big := textgen.EvenOddText(4<<20, c.Seed)
	seq := engine.NewDFASequential(dEO)
	par := engine.NewSFAParallel(sEO, 2, engine.ReduceSequential)
	tSeq := bestOf(c.Repeats*3, func() { seq.Match(big) })
	tPar := bestOf(c.Repeats*3, func() { par.Match(big) })
	report("Fig.10: SFA(2) beats DFA on 4 MiB input", tPar < tSeq,
		fmt.Sprintf("%.1f vs %.1f ms", float64(tPar.Microseconds())/1000,
			float64(tSeq.Microseconds())/1000))

	// Claim (Sect. V-A): lazy construction materializes ≤ input-length
	// states and far fewer than the full SFA for r50.
	dr50 := dfa.MustCompilePattern(t2Pattern(50))
	lazy, err := engine.NewSFALazy(dr50, 2, 0)
	if err != nil {
		return err
	}
	lt := textgen.RnText(50, 1<<20, c.Seed)
	lazy.Match(lt)
	report("lazy SFA visits ≪ full state set (r50)", lazy.States() < 1000,
		fmt.Sprintf("%d of 10100 states", lazy.States()))

	c.printf("\n%d passed, %d failed\n", pass, fail)
	if fail > 0 {
		return fmt.Errorf("harness: %d shape checks failed", fail)
	}
	return nil
}

func t2Pattern(n int) string {
	return fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n)
}

func specThroughput(pattern string, text []byte, repeats int) float64 {
	d := dfa.MustCompilePattern(pattern)
	m := engine.NewDFASpeculative(d, 2, engine.ReduceSequential)
	m.Match(text[:len(text)/8]) // warm up
	return gbPerSec(len(text), bestOf(repeats, func() { m.Match(text) }))
}
