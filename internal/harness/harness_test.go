package harness

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny(buf *bytes.Buffer) Config {
	return Config{
		Out:        buf,
		TextMB:     1,
		MaxThreads: 2,
		Fig8N:      10,
		SnortN:     80,
		Seed:       7,
		Repeats:    1,
	}
}

func TestFig3Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := tiny(&buf).Fig3(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 3", "|Sd| > |D|^2", "csv:", "growth exponent"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestFig6Through9Smoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tiny(&buf)
	for _, run := range []func() error{cfg.Fig6, cfg.Fig7, cfg.Fig8, cfg.Fig9} {
		if err := run(); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "dfa-seq (Alg.2)", "sfa-par (Alg.5)", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Fig. 6 sizes echoed from the paper's values.
	if !strings.Contains(out, "|D|=10 |Sd|=109") {
		t.Error("Fig. 6 sizes not reproduced")
	}
	if !strings.Contains(out, "|D|=100 |Sd|=10099") {
		t.Error("Fig. 7 sizes not reproduced")
	}
}

func TestFig10Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := tiny(&buf).Fig10(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "|D|=10 |S|=21") {
		t.Error("Fig. 10 sizes not reproduced")
	}
	if !strings.Contains(out, "1000") {
		t.Error("sweep should reach 1000 KB")
	}
}

func TestTable2Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := tiny(&buf).Table2(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "alg3-spec") || !strings.Contains(out, "alg5-lazy") {
		t.Errorf("missing engines in Table II output:\n%s", out)
	}
	if !strings.Contains(out, "(skipped: 10⁶ states)") {
		t.Error("n=500 eager SFA should be skipped by default")
	}
}

func TestTable3Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := tiny(&buf).Table3(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SFA states/s") {
		t.Error("missing rate column")
	}
	if !strings.Contains(out, "10099") {
		t.Error("r50 D-SFA size missing")
	}
}

func TestFactsSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := tiny(&buf).Facts(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fact 1", "Fact 2", "3125", "2048", "Devadze"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := tiny(&buf).Ablations(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"A1/A5", "A2", "A3", "A4", "tree-reduce", "layout", "class", "auto→", "materializing"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.TextMB != 64 || c.Fig8N != 150 || c.SnortN != 2000 || c.Repeats != 3 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if c.MaxThreads < 2 {
		t.Error("MaxThreads too small")
	}
}

func TestGBPerSec(t *testing.T) {
	if gbPerSec(1e9, 0) != 0 {
		t.Error("zero duration must not divide")
	}
	if got := gbPerSec(2e9, 2e9); got != 1.0 { // 2 GB in 2 s
		t.Errorf("got %f", got)
	}
}
