package harness

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/snort"
	"repro/internal/syntax"
)

// fig3Point is one rule's coordinates in the paper's scatter plot.
type fig3Point struct {
	id  int
	dfa int // live minimal DFA size
	sfa int // live D-SFA size
	cat string
}

// Fig3 reproduces the SNORT size study (Sect. VI-A): for every rule in
// the corpus, build the minimal DFA (cap 1000 live states, like the
// paper, which "did not use too large expressions for which DFA has more
// than 1000 states") and the D-SFA, then report the distribution of
// |Sd| against |D| — the series behind Fig. 3 — and the over-square /
// over-cube / over-quartic tail counts the paper quotes (1.4%, 6 rules,
// none).
func (c Config) Fig3() error {
	c = c.Defaults()
	c.header(fmt.Sprintf("Fig. 3 — D-SFA vs minimal DFA size on %d SNORT-like rules (seed %d)", c.SnortN, c.Seed))

	rules := snort.Generate(c.SnortN, c.Seed)
	var points []fig3Point
	skippedParse, skippedDFA, skippedSFA := 0, 0, 0
	const dfaCap = 1000    // live states, paper's threshold
	const sfaCap = 400_000 // generous cap to keep the study bounded

	for _, rule := range rules {
		node, err := syntax.Parse(rule.Pattern, rule.Flags)
		if err != nil {
			skippedParse++
			continue
		}
		a, err := nfa.Glushkov(node)
		if err != nil {
			skippedParse++
			continue
		}
		d, err := dfa.Determinize(a, 4*dfaCap)
		if err != nil {
			skippedDFA++
			continue
		}
		m := dfa.Minimize(d)
		if m.LiveSize() > dfaCap {
			skippedDFA++
			continue
		}
		s, err := core.BuildDSFA(m, sfaCap)
		if errors.Is(err, core.ErrTooManyStates) {
			skippedSFA++
			continue
		}
		if err != nil {
			return err
		}
		points = append(points, fig3Point{rule.ID, m.LiveSize(), s.LiveSize(), rule.Category})
	}

	over := func(k float64) int {
		n := 0
		for _, p := range points {
			if float64(p.sfa) > math.Pow(float64(p.dfa), k) {
				n++
			}
		}
		return n
	}
	big := 0
	for _, p := range points {
		if p.sfa > 10_000 {
			big++
		}
	}

	w := c.table()
	fmt.Fprintf(w, "rules\tused\tskip(parse)\tskip(DFA>1000)\tskip(SFA cap)\t\n")
	fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t\n", len(rules), len(points), skippedParse, skippedDFA, skippedSFA)
	w.Flush()

	w = c.table()
	fmt.Fprintf(w, "tail\tcount\tfraction\tpaper\t\n")
	fmt.Fprintf(w, "|Sd| > 10000\t%d\t%.2f%%\t0.5%%\t\n", big, pct(big, len(points)))
	fmt.Fprintf(w, "|Sd| > |D|^2\t%d\t%.2f%%\t1.4%% (279/20312)\t\n", over(2), pct(over(2), len(points)))
	fmt.Fprintf(w, "|Sd| > |D|^3\t%d\t%.2f%%\t6/20312\t\n", over(3), pct(over(3), len(points)))
	fmt.Fprintf(w, "|Sd| > |D|^4\t%d\t%.2f%%\t0\t\n", over(4), pct(over(4), len(points)))
	w.Flush()

	c.scatter(points)
	c.printf("csv: dfa,sfa,category\n")
	for _, p := range points {
		c.printf("csv: %d,%d,%s\n", p.dfa, p.sfa, p.cat)
	}
	return nil
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// scatter draws a log-log ASCII rendition of Fig. 3 with the paper's
// guide lines x¹, x², x³, x⁴.
func (c Config) scatter(points []fig3Point) {
	if len(points) == 0 {
		return
	}
	const width, height = 64, 20
	maxD, maxS := 1.0, 1.0
	for _, p := range points {
		maxD = math.Max(maxD, float64(p.dfa))
		maxS = math.Max(maxS, float64(p.sfa))
	}
	lx := func(v float64) int {
		return int(math.Round(math.Log(v) / math.Log(maxD+1) * (width - 1)))
	}
	ly := func(v float64) int {
		return int(math.Round(math.Log(v) / math.Log(maxS+1) * (height - 1)))
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = make([]byte, width)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	// Guide lines y = x^k.
	for x := 1.0; x <= maxD; x *= 1.1 {
		for k, ch := range map[float64]byte{1: '.', 2: ':', 3: '-', 4: '='} {
			y := math.Pow(x, k)
			if y > maxS {
				continue
			}
			grid[height-1-ly(y)][lx(x)] = ch
		}
	}
	for _, p := range points {
		grid[height-1-ly(float64(p.sfa))][lx(float64(p.dfa))] = '*'
	}
	c.printf("log |Sd| (y) vs log |D| (x); guides: . x  : x^2  - x^3  = x^4\n")
	for _, row := range grid {
		c.printf("|%s|\n", row)
	}
	// Sorted quantiles of the ratio log|Sd|/log|D| for the record.
	var ratios []float64
	for _, p := range points {
		if p.dfa > 1 && p.sfa > 1 {
			ratios = append(ratios, math.Log(float64(p.sfa))/math.Log(float64(p.dfa)))
		}
	}
	sort.Float64s(ratios)
	if len(ratios) > 0 {
		c.printf("growth exponent log|Sd|/log|D|: median %.2f, p90 %.2f, max %.2f\n",
			quantile(ratios, 0.5), quantile(ratios, 0.9), ratios[len(ratios)-1])
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
