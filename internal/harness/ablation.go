package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/nfa"
	"repro/internal/syntax"
	"repro/internal/textgen"
)

// Ablations quantifies the design choices DESIGN.md §7 calls out:
//
//	A1 reduction order (sequential O(p) vs ⊙-tree),
//	A2 table layout (256-wide direct vs byte-class-compressed),
//	A3 precomputed vs on-the-fly SFA (Table III's cost amortized),
//	A4 Glushkov vs Thompson front-end,
//	A5 reduction cost growth with thread count.
func (c Config) Ablations() error {
	c = c.Defaults()
	size := c.TextMB << 20 / 2
	if size < 1<<20 {
		size = 1 << 20
	}

	// A1 + A5: reduction strategies across thread counts.
	c.header("Ablation A1/A5 — reduction order (r50)")
	d := dfa.MustCompilePattern("([0-4]{50}[5-9]{50})*")
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		return err
	}
	text := textgen.RnText(50, size, c.Seed)
	w := c.table()
	fmt.Fprintf(w, "threads\tseq-reduce GB/s\ttree-reduce GB/s\t\n")
	for p := 2; p <= c.MaxThreads; p *= 2 {
		mSeq := engine.NewSFAParallel(s, p, engine.ReduceSequential)
		mTree := engine.NewSFAParallel(s, p, engine.ReduceTree)
		gbSeq := gbPerSec(len(text), bestOf(c.Repeats, func() { mSeq.Match(text) }))
		gbTree := gbPerSec(len(text), bestOf(c.Repeats, func() { mTree.Match(text) }))
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t\n", p, gbSeq, gbTree)
	}
	w.Flush()

	// A2: table layout on a big-table pattern (the Fig. 8 regime). The
	// width-specialized layouts change the resident bytes per state —
	// the narrower the entry, the more of the automaton each cache level
	// holds — while LayoutClass trades footprint for an extra indirection.
	c.header(fmt.Sprintf("Ablation A2 — table layout (r%d)", c.Fig8N))
	dBig := dfa.MustCompilePattern(fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", c.Fig8N, c.Fig8N))
	sBig, err := core.BuildDSFA(dBig, 0)
	if err != nil {
		return err
	}
	bigText := textgen.RnText(c.Fig8N, size, c.Seed)
	w2 := c.table()
	fmt.Fprintf(w2, "layout\ttable KiB\tGB/s\t\n")
	for _, l := range []engine.TableLayout{engine.LayoutAuto, engine.LayoutU16, engine.LayoutI32, engine.LayoutClass} {
		m := engine.NewSFAParallel(sBig, 2, engine.ReduceSequential, engine.WithLayout(l))
		gb := gbPerSec(len(bigText), bestOf(c.Repeats, func() { m.Match(bigText) }))
		kib := m.TableBytes() >> 10
		if l == engine.LayoutClass {
			kib = int64(sBig.NumStates*dBig.BC.Count*4) >> 10
		}
		name := l.String()
		if l == engine.LayoutAuto {
			name = fmt.Sprintf("auto→%s", m.Layout())
		}
		fmt.Fprintf(w2, "%s\t%d\t%.3f\t\n", name, kib, gb)
	}
	w2.Flush()

	// A3: precomputed vs lazy, single pass including construction.
	c.header("Ablation A3 — precomputed vs on-the-fly SFA (r50, one pass)")
	start := time.Now()
	sEager, err := core.BuildDSFA(d, 0)
	if err != nil {
		return err
	}
	mEager := engine.NewSFAParallel(sEager, 2, engine.ReduceSequential)
	mEager.Match(text)
	eager := time.Since(start)
	start = time.Now()
	mLazy, err := engine.NewSFALazy(d, 2, 0)
	if err != nil {
		return err
	}
	mLazy.Match(text)
	lazy := time.Since(start)
	c.printf("eager: build(%d states)+match = %.3f s\n", sEager.NumStates, eager.Seconds())
	c.printf("lazy:  match materializing %d states = %.3f s\n", mLazy.States(), lazy.Seconds())

	// A4: front-end construction comparison.
	c.header("Ablation A4 — Glushkov vs Thompson front end")
	w = c.table()
	fmt.Fprintf(w, "pattern\tglushkov |N|\tthompson |N|\tsame min DFA\t\n")
	for _, pat := range []string{"(ab)*", "([0-4]{5}[5-9]{5})*", "(a|b)*abb", "(a|bc)*d?"} {
		node := syntax.MustParse(pat, 0)
		g, err := nfa.Glushkov(node)
		if err != nil {
			return err
		}
		th, err := nfa.Thompson(node)
		if err != nil {
			return err
		}
		dg, err := dfa.Determinize(g, 0)
		if err != nil {
			return err
		}
		dt, err := dfa.Determinize(th, 0)
		if err != nil {
			return err
		}
		same := dfa.Isomorphic(dfa.Minimize(dg), dfa.Minimize(dt))
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t\n", pat, g.NumStates, th.NumStates, same)
	}
	w.Flush()
	return nil
}
