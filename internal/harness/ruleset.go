package harness

import (
	"fmt"
	"time"

	"repro/internal/snort"
	"repro/internal/syntax"
	"repro/internal/textgen"
	"repro/sfa"
)

// Ruleset measures the multi-pattern architectures on the workload the
// paper's introduction motivates: one SNORT-style rule set scanned over
// heavy traffic. Three engines over identical rules and input:
//
//	combined     — one product D-SFA with per-rule accept masks (the
//	               planner may shard on state-budget blow-up), built by
//	               the default tuple-interned construction;
//	combined-vec — the same set built by the legacy vector-interning
//	               construction (hash a |D|-long mapping per candidate
//	               state). Identical verdicts by contract; the pair's
//	               "build s" column is the tuple-interning speedup and
//	               the Σ|Sd| delta is tuple identity's state surplus;
//	sharded-K    — the planner forced to K combined shards;
//	isolated     — one independent engine per rule, N passes per input
//	               (the pre-combined architecture, kept as oracle).
//
// The reported MB/s is whole-input scan throughput: bytes of traffic
// divided by the time to produce the full per-rule verdict. Combined
// mode reads each input byte once per shard instead of once per rule,
// which is the entire effect — per-byte work is one table lookup in
// every mode.
func (c Config) Ruleset() error {
	c = c.Defaults()
	n := c.SnortN
	if n > 40 {
		// The curated scan sample tops out near 50 rules; the study uses
		// a fixed slice so the shard planner's output stays comparable.
		n = 40
	}
	rules := snort.ScanSample(n)
	defs := make([]sfa.RuleDef, len(rules))
	for i, r := range rules {
		defs[i] = sfa.RuleDef{
			Name:    fmt.Sprintf("r%03d-%s", r.ID, r.Category),
			Pattern: r.Pattern,
			Flags:   SFAFlags(r.Flags),
		}
	}

	size := c.TextMB << 20 / 4
	if size < 1<<20 {
		size = 1 << 20
	}
	data, planted := textgen.Traffic{SuspiciousPerMille: 2}.Generate(size, c.Seed)

	c.header(fmt.Sprintf("Ruleset — combined vs sharded vs isolated (%d rules, %d MiB traffic, %d planted, p=1)",
		len(defs), size>>20, planted))

	type mode struct {
		name string
		opts []sfa.Option
	}
	base := []sfa.Option{sfa.WithSearch(), sfa.WithThreads(1)}
	if c.Spawn {
		base = append(base, sfa.WithSpawnPerMatch())
	}
	modes := []mode{
		{"combined", base},
		{"combined-nopre", append([]sfa.Option{sfa.WithoutPrefilter()}, base...)},
		{"combined-vec", append([]sfa.Option{sfa.WithVectorInterning()}, base...)},
		{"sharded-2", append([]sfa.Option{sfa.WithShards(2)}, base...)},
		{"sharded-4", append([]sfa.Option{sfa.WithShards(4)}, base...)},
		{"isolated", append([]sfa.Option{sfa.WithIsolatedRules()}, base...)},
	}

	w := c.table()
	fmt.Fprintf(w, "mode\tshards\tΣ|D|\tΣ|Sd|\ttables MiB\tbuild s\tMB/s\tcand%%\thits\t\n")
	var oracle []string
	haveOracle := false
	var combined *sfa.RuleSet
	reports := make([]sfa.BuildReport, 0, len(modes))
	for _, m := range modes {
		start := time.Now()
		rs, err := sfa.NewRuleSetFromDefs(defs, m.opts...)
		if err != nil {
			return fmt.Errorf("ruleset %s: %w", m.name, err)
		}
		build := time.Since(start)
		reports = append(reports, rs.BuildReport())
		if combined == nil {
			combined = rs
		}

		var dStates, sStates int
		var tableBytes int64
		for _, sh := range rs.Shards() {
			dStates += sh.DFAStates
			sStates += sh.SFAStates
			tableBytes += sh.TableBytes
		}

		var hits []string
		elapsed := bestOf(c.Repeats, func() { hits = rs.Scan(data, 0) })
		if !haveOracle {
			oracle, haveOracle = hits, true
		} else if !equalStrings(hits, oracle) {
			return fmt.Errorf("ruleset %s: verdict diverged from %s: %v vs %v",
				m.name, modes[0].name, hits, oracle)
		}
		// cand% is the prefilter's selectivity over this run: the share
		// of shard-bytes the automata actually walked. "-" = no prefilter.
		cand := "-"
		if pf := rs.PrefilterStats(); pf.Enabled && pf.TotalBytes > 0 {
			cand = fmt.Sprintf("%.1f", 100*float64(pf.CandidateBytes)/float64(pf.TotalBytes))
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%.2f\t%.1f\t%s\t%d\t\n",
			m.name, rs.NumShards(), dStates, sStates,
			float64(tableBytes)/(1<<20), build.Seconds(),
			float64(size)/elapsed.Seconds()/1e6, cand, len(hits))
	}
	w.Flush()
	c.printf("matching rules: %v\n", oracle)

	// Where the build time went, per mode — the same BuildReport the
	// server exposes on /metrics, so a local run can explain a slow
	// reload without standing up sfaserve.
	c.header("Ruleset build pipeline — planner and shard-construction breakdown")
	w = c.table()
	fmt.Fprintf(w, "mode\tplan bins\tsplits\tmerges\tcache hits\tbuilt\tprep ms\tbuild ms\ttotal ms\t\n")
	for i, m := range modes {
		r := reports[i]
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t\n",
			m.name, r.PlanBins, r.Splits, r.Merges, r.CacheHits, r.Built,
			float64(r.PrepNs)/1e6, float64(r.BuildNs)/1e6, float64(r.TotalNs)/1e6)
	}
	w.Flush()

	// Cost attribution for the combined mode's runs — the same always-on
	// account sfaserve exposes at /debug/attribution. The shard table says
	// where scan time went; the heat table says which rules actually fire
	// on this corpus (most never do — planted suspicion is rare).
	c.header("Ruleset attribution — combined mode: per-shard cost and rule heat")
	w = c.table()
	fmt.Fprintf(w, "shard\trules\tprefilter\tcompose ms\tchunks\tMB scanned\tcand windows\t\n")
	for i, sh := range combined.Shards() {
		fmt.Fprintf(w, "%d\t%d\t%s\t%.1f\t%d\t%.1f\t%d\t\n",
			i, len(sh.Rules), sh.Prefilter,
			float64(sh.ComposeNs)/1e6, sh.ScanChunks,
			float64(sh.ScanBytes)/1e6, sh.CandWindows)
	}
	w.Flush()
	heat := combined.RuleHeat()
	if len(heat) > 10 {
		heat = heat[:10]
	}
	w = c.table()
	fmt.Fprintf(w, "rule (top %d by heat)\tmatches\t\n", len(heat))
	for _, rh := range heat {
		fmt.Fprintf(w, "%s\t%d\t\n", rh.Name, rh.Matches)
	}
	w.Flush()

	// The prefilter A/B on its value corpus: Payload frames contain
	// almost no rule literals (where Traffic's HTTP lines contain one on
	// every line — the low-selectivity regime visible in cand% above), so
	// candidate windows collapse and the cascade's speedup is maximal.
	sparse, sp := textgen.Payload{SuspiciousPerMille: 2}.Generate(size, c.Seed)
	c.header(fmt.Sprintf("Ruleset prefilter A/B — sparse payload corpus (%d rules, %d MiB, %d planted, p=1)",
		len(defs), size>>20, sp))
	w = c.table()
	fmt.Fprintf(w, "mode\tshards\tMB/s\tcand%%\thits\t\n")
	var sparseOracle []string
	haveSparse := false
	for _, m := range modes[:2] { // combined vs combined-nopre
		rs, err := sfa.NewRuleSetFromDefs(defs, m.opts...)
		if err != nil {
			return fmt.Errorf("ruleset %s (sparse): %w", m.name, err)
		}
		var hits []string
		elapsed := bestOf(c.Repeats, func() { hits = rs.Scan(sparse, 0) })
		if !haveSparse {
			sparseOracle, haveSparse = hits, true
		} else if !equalStrings(hits, sparseOracle) {
			return fmt.Errorf("ruleset %s (sparse): verdict diverged: %v vs %v",
				m.name, hits, sparseOracle)
		}
		cand := "-"
		if pf := rs.PrefilterStats(); pf.Enabled && pf.TotalBytes > 0 {
			cand = fmt.Sprintf("%.1f", 100*float64(pf.CandidateBytes)/float64(pf.TotalBytes))
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%s\t%d\t\n",
			m.name, rs.NumShards(),
			float64(size)/elapsed.Seconds()/1e6, cand, len(hits))
	}
	w.Flush()
	return nil
}

// SFAFlags converts the corpus' parser flags to public API flags. It is
// exported for the root benchmark suite; package sfa's own tests carry a
// private copy because importing harness from there would cycle
// (harness → sfa → harness test binary).
func SFAFlags(f syntax.Flags) sfa.Flag {
	var out sfa.Flag
	if f&syntax.FoldCase != 0 {
		out |= sfa.FoldCase
	}
	if f&syntax.DotAll != 0 {
		out |= sfa.DotAll
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
