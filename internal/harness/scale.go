package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/engine"
	"repro/internal/textgen"
)

// scaleSpec describes one throughput-vs-threads experiment (Figs. 6–9).
type scaleSpec struct {
	title   string
	pattern string
	text    func(c Config) []byte
	paper   string // the paper's quoted sizes, echoed for comparison
}

// Fig6 is r5: |D| = 10, |Sd| = 109 — near-linear scaling.
func (c Config) Fig6() error {
	c = c.Defaults()
	return c.scale(scaleSpec{
		title:   "Fig. 6 — r5 = ([0-4]{5}[5-9]{5})*",
		pattern: "([0-4]{5}[5-9]{5})*",
		text:    func(c Config) []byte { return textgen.RnText(5, c.TextMB<<20, c.Seed) },
		paper:   "paper: |D|=10 |Sd|=109, scales to >10x @ 12 threads",
	})
}

// Fig7 is r50: |D| = 100, |Sd| = 10 099 — still scales.
func (c Config) Fig7() error {
	c = c.Defaults()
	return c.scale(scaleSpec{
		title:   "Fig. 7 — r50 = ([0-4]{50}[5-9]{50})*",
		pattern: "([0-4]{50}[5-9]{50})*",
		text:    func(c Config) []byte { return textgen.RnText(50, c.TextMB<<20, c.Seed) },
		paper:   "paper: |D|=100 |Sd|=10099, scales well up to 12 threads",
	})
}

// Fig8 is r_n with a table far beyond the LLC: the SFA loses to the
// sequential DFA (the paper's n=500 gives a 1 GB table vs a 12 MB L3).
func (c Config) Fig8() error {
	c = c.Defaults()
	n := c.Fig8N
	return c.scale(scaleSpec{
		title:   fmt.Sprintf("Fig. 8 — r%d = ([0-4]{%d}[5-9]{%d})* (table ≫ LLC)", n, n, n),
		pattern: fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n),
		text:    func(c Config) []byte { return textgen.RnText(n, c.TextMB<<20, c.Seed) },
		paper:   "paper (n=500): |D|=1000 |Sd|=1000999, SFA slower than sequential DFA",
	})
}

// Fig9 is ([0-4]{500}[5-9]{500})*|a* over an all-'a' input: the largest
// SFA of the study, yet the fastest — transitions stay in one hot state
// and the table rows in cache.
func (c Config) Fig9() error {
	c = c.Defaults()
	n := c.Fig8N
	return c.scale(scaleSpec{
		title:   fmt.Sprintf("Fig. 9 — ([0-4]{%d}[5-9]{%d})*|a*, input = 'a' repeated", n, n),
		pattern: fmt.Sprintf("([0-4]{%d}[5-9]{%d})*|a*", n, n),
		text:    func(c Config) []byte { return textgen.Repeat('a', c.TextMB<<20) },
		paper:   "paper (n=500): |Sd|=1001000 (biggest) but best throughput",
	})
}

// scale runs the sweep: 1 thread = sequential DFA (as in the paper:
// "the results with one thread were of DFA (and not D-SFA)"), p ≥ 2 =
// parallel SFA with sequential reduction (the configuration of Sect. VI).
func (c Config) scale(spec scaleSpec) error {
	c.header(spec.title)
	c.printf("%s\n", spec.paper)

	d := dfa.MustCompilePattern(spec.pattern)
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		return err
	}
	text := spec.text(c)
	c.printf("measured: |D|=%d |Sd|=%d classes=%d input=%d MiB; SFA table %d KiB\n",
		d.LiveSize(), s.LiveSize(), d.BC.Count, len(text)>>20, s.NumStates)

	seq := engine.NewDFASequential(d)
	if !seq.Match(text) {
		return fmt.Errorf("harness: generated text not accepted by %q", spec.pattern)
	}
	base := bestOf(c.Repeats, func() { seq.Match(text) })
	baseGB := gbPerSec(len(text), base)

	w := c.table()
	fmt.Fprintf(w, "threads\tengine\tGB/s\tspeedup\t\n")
	fmt.Fprintf(w, "1\tdfa-seq (Alg.2)\t%.3f\t%.2fx\t\n", baseGB, 1.0)
	for p := 2; p <= c.MaxThreads; p++ {
		m := engine.NewSFAParallel(s, p, engine.ReduceSequential, c.engineOpts()...)
		dur := bestOf(c.Repeats, func() { m.Match(text) })
		gb := gbPerSec(len(text), dur)
		fmt.Fprintf(w, "%d\tsfa-par (Alg.5)\t%.3f\t%.2fx\t\n", p, gb, gb/baseGB)
	}
	w.Flush()
	return nil
}

// Table2 validates the complexity rows of the paper's Table II
// empirically: as |D| grows with fixed input and p, Algorithm 3's
// throughput decays like 1/|D| (the speculative per-byte loop over all
// states), while Algorithm 5's per-byte cost stays flat (one lookup), and
// sequential reduction costs O(p) regardless of automaton size.
func (c Config) Table2() error {
	c = c.Defaults()
	c.header("Table II — empirical scaling of the computation-time rows")
	size := c.TextMB << 20 / 4 // Alg. 3 at |D|=1000 is ~1000× slower; keep bounded
	if size < 1<<20 {
		size = 1 << 20
	}
	const p = 2

	w := c.table()
	fmt.Fprintf(w, "n\t|D|\t|Sd|\tdfa-seq GB/s\talg3-spec GB/s\talg5-sfa GB/s\talg5-lazy GB/s\t\n")
	for _, n := range []int{5, 50, 500} {
		pattern := fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n)
		d := dfa.MustCompilePattern(pattern)
		text := textgen.RnText(n, size, c.Seed)

		seq := engine.NewDFASequential(d)
		seqGB := gbPerSec(len(text), bestOf(c.Repeats, func() { seq.Match(text) }))

		// Algorithm 3 on a chunk scaled down for feasibility at |D|=1000,
		// then normalized: its cost is linear in input size.
		specText := text
		if n >= 500 {
			specText = text[:len(text)/8]
		}
		spec := engine.NewDFASpeculative(d, p, engine.ReduceSequential, c.engineOpts()...)
		specGB := gbPerSec(len(specText), bestOf(1, func() { spec.Match(specText) }))

		// Algorithm 5 precomputed — except at n=500 where the full SFA
		// needs gigabytes; the lazy engine shows the same per-byte cost
		// while materializing only the states the text visits.
		sfaGB := 0.0
		sfaStates := 0
		if n < 500 || c.Table3Full {
			s, err := core.BuildDSFA(d, 0)
			if err != nil {
				return err
			}
			sfaStates = s.LiveSize()
			m := engine.NewSFAParallel(s, p, engine.ReduceSequential, c.engineOpts()...)
			sfaGB = gbPerSec(len(text), bestOf(c.Repeats, func() { m.Match(text) }))
		} else {
			sfaStates = -1 // not built
		}
		lazy, err := engine.NewSFALazy(d, p, 1<<21, c.engineOpts()...)
		if err != nil {
			return err
		}
		lazyGB := gbPerSec(len(text), bestOf(c.Repeats, func() { lazy.Match(text) }))

		sfaCol := fmt.Sprintf("%.3f", sfaGB)
		if sfaStates < 0 {
			sfaCol = "(skipped: 10⁶ states)"
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3f\t%.4f\t%s\t%.3f\t\n",
			n, d.LiveSize(), sfaStates, seqGB, specGB, sfaCol, lazyGB)
	}
	w.Flush()
	c.printf("expected shape: alg3 ∝ 1/|D| (speculation per byte), alg5 flat (one lookup per byte)\n")
	return nil
}
