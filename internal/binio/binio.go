// Package binio holds the small binary-stream helpers shared by the
// automaton codecs (internal/dfa, internal/core, internal/multi) and the
// rule-set snapshot layer (package sfa).
//
// The one rule every reader here obeys: never allocate more than the
// stream has actually delivered. Snapshot and cache files are parsed
// from untrusted bytes (FuzzLoadRuleSet feeds the decoders arbitrary
// mutations), so a length field is a *claim*, not a fact — ReadExact
// grows its buffer chunk by chunk as data arrives, which turns a lying
// multi-gigabyte length prefix into a prompt io.ErrUnexpectedEOF instead
// of a huge up-front make().
package binio

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// readChunk bounds the per-step allocation of ReadExact. 1 MiB keeps the
// copy overhead invisible next to automaton construction while capping
// what a truncated stream can cost.
const readChunk = 1 << 20

// ReadExact reads exactly n bytes from r, growing the result as data
// arrives so the allocation is always proportional to the bytes actually
// present. n < 0 is an error.
func ReadExact(r io.Reader, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("binio: negative length %d", n)
	}
	cap0 := n
	if cap0 > readChunk {
		cap0 = readChunk
	}
	buf := make([]byte, 0, cap0)
	for len(buf) < n {
		k := n - len(buf)
		if k > readChunk {
			k = readChunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

// WriteUvarint writes v in the standard varint encoding.
func WriteUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// ReadUvarint reads a varint from a plain io.Reader, one byte at a time
// (the codec readers are not io.ByteReaders).
func ReadUvarint(r io.Reader) (uint64, error) {
	var x uint64
	var shift uint
	var b [1]byte
	for i := 0; i < binary.MaxVarintLen64; i++ {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		c := b[0]
		if c < 0x80 {
			if i == binary.MaxVarintLen64-1 && c > 1 {
				return 0, fmt.Errorf("binio: varint overflows 64 bits")
			}
			return x | uint64(c)<<shift, nil
		}
		x |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("binio: varint overflows 64 bits")
}

// ReadCount reads a varint and validates it against an inclusive upper
// bound, the shape every "how many follow" field of the codecs takes.
func ReadCount(r io.Reader, max uint64, what string) (int, error) {
	v, err := ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("binio: reading %s count: %w", what, err)
	}
	if v > max {
		return 0, fmt.Errorf("binio: implausible %s count %d (max %d)", what, v, max)
	}
	return int(v), nil
}

// WriteBytes writes a varint length prefix followed by b.
func WriteBytes(w io.Writer, b []byte) error {
	if err := WriteUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// ReadBytes reads a length-prefixed byte string written by WriteBytes,
// rejecting declared lengths over max before any proportional read.
func ReadBytes(r io.Reader, max uint64, what string) ([]byte, error) {
	n, err := ReadCount(r, max, what)
	if err != nil {
		return nil, err
	}
	b, err := ReadExact(r, n)
	if err != nil {
		return nil, fmt.Errorf("binio: reading %s (%d bytes): %w", what, n, err)
	}
	return b, nil
}

// WriteString is WriteBytes for strings.
func WriteString(w io.Writer, s string) error { return WriteBytes(w, []byte(s)) }

// ReadString is ReadBytes for strings.
func ReadString(r io.Reader, max uint64, what string) (string, error) {
	b, err := ReadBytes(r, max, what)
	return string(b), err
}

// CRC-32C (Castagnoli) framing shared by the shard, set, and snapshot
// codecs: writers tee through NewCRC32C, readers through a CRCReader,
// and the 4-byte little-endian trailer is compared at the end.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// NewCRC32C returns a running CRC-32C for the writer side of a frame.
func NewCRC32C() hash.Hash32 { return crc32.New(castagnoli) }

// CRCReader hashes everything read through it.
type CRCReader struct {
	r io.Reader
	h hash.Hash32
}

// NewCRCReader wraps r with a running CRC-32C.
func NewCRCReader(r io.Reader) *CRCReader {
	return &CRCReader{r: r, h: crc32.New(castagnoli)}
}

func (c *CRCReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.h.Write(p[:n])
	return n, err
}

// Sum32 returns the CRC of everything read so far.
func (c *CRCReader) Sum32() uint32 { return c.h.Sum32() }
