package codegen

import (
	"bytes"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dfa"
)

func generateFor(t *testing.T, pattern string, opts Options) []byte {
	t.Helper()
	d := dfa.MustCompilePattern(pattern)
	s, err := core.BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts.Pattern = pattern
	if err := Generate(&buf, s, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGeneratedSourceParses(t *testing.T) {
	src := generateFor(t, "(ab)*", Options{})
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
	for _, want := range []string{"SFAMatch", "SFAMatchParallel", "package match"} {
		if !bytes.Contains(src, []byte(want)) {
			t.Errorf("missing %q in generated source", want)
		}
	}
}

func TestGeneratedPrefixAndPackage(t *testing.T) {
	src := generateFor(t, "a+", Options{Package: "pkg", Prefix: "Digits"})
	for _, want := range []string{"package pkg", "DigitsMatch", "digitsNext"} {
		if !bytes.Contains(src, []byte(want)) {
			t.Errorf("missing %q", want)
		}
	}
}

// TestGeneratedCodeRuns compiles and executes the generated matcher with
// the real Go toolchain and compares verdicts against the library engine.
func TestGeneratedCodeRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	src := generateFor(t, "([0-4]{2}[5-9]{2})*", Options{Package: "main"})

	driver := []byte(`package main

import (
	"fmt"
	"os"
)

func main() {
	cases := map[string]bool{
		"":         true,
		"0055":     true,
		"00551234": false,
		"00551256": true,
		"005":      false,
		"9955":     false,
	}
	long := ""
	for i := 0; i < 5000; i++ {
		long += "0459"
	}
	cases[long] = true
	for in, want := range cases {
		if got := SFAMatch([]byte(in)); got != want {
			fmt.Printf("FAIL seq %q got %v\n", in, got)
			os.Exit(1)
		}
		if got := SFAMatchParallel([]byte(in), 3); got != want {
			fmt.Printf("FAIL par %q got %v\n", in, got)
			os.Exit(1)
		}
	}
	fmt.Println("OK")
}
`)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "gen.go"), src, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), driver, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module gen\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("OK")) {
		t.Fatalf("generated matcher failed:\n%s", out)
	}
}
