package regen

import (
	"regexp"
	"testing"

	"repro/internal/dfa"
	"repro/internal/syntax"
)

func TestPatternsParseEverywhere(t *testing.T) {
	g := New(Config{AllowClasses: true, AllowCounts: true}, 1)
	for i := 0; i < 500; i++ {
		pat := g.Pattern()
		if _, err := syntax.Parse(pat, 0); err != nil {
			t.Fatalf("own parser rejected %q: %v", pat, err)
		}
		if _, err := regexp.Compile(`\A(?:` + pat + `)\z`); err != nil {
			t.Fatalf("stdlib rejected %q: %v", pat, err)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, b := New(Config{}, 9), New(Config{}, 9)
	for i := 0; i < 50; i++ {
		if a.Pattern() != b.Pattern() {
			t.Fatal("same seed, different patterns")
		}
	}
	c := New(Config{}, 10)
	diff := false
	a = New(Config{}, 9)
	for i := 0; i < 50; i++ {
		if a.Pattern() != c.Pattern() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should diverge")
	}
}

func TestMembersAreMembers(t *testing.T) {
	g := New(Config{AllowClasses: true, AllowCounts: true}, 23)
	produced := 0
	for i := 0; i < 300; i++ {
		pat := g.Pattern()
		node := syntax.MustParse(pat, 0)
		d, err := dfa.Compile(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		w, ok := g.Member(node, 200)
		if !ok {
			continue
		}
		produced++
		if !d.Accepts(w) {
			t.Fatalf("Member(%q) produced non-member %q", pat, w)
		}
	}
	if produced < 200 {
		t.Errorf("only %d/300 member attempts succeeded", produced)
	}
}

func TestWordLengthBound(t *testing.T) {
	g := New(Config{Alphabet: "xy"}, 4)
	for i := 0; i < 200; i++ {
		w := g.Word(7)
		if len(w) > 7 {
			t.Fatalf("word too long: %q", w)
		}
		for _, b := range w {
			if b != 'x' && b != 'y' {
				t.Fatalf("byte %q outside alphabet", b)
			}
		}
	}
}

// TestMembersExerciseAcceptingPaths: accepted inputs from Member hit the
// accepting path of every engine far more often than uniform words do —
// verify agreement on them specifically.
func TestMembersExerciseAcceptingPaths(t *testing.T) {
	g := New(Config{AllowClasses: true}, 31)
	accepted := 0
	for i := 0; i < 150; i++ {
		pat := g.Pattern()
		node := syntax.MustParse(pat, 0)
		d, err := dfa.Compile(node, 0)
		if err != nil {
			t.Fatal(err)
		}
		w, ok := g.Member(node, 100)
		if !ok {
			continue
		}
		if d.Accepts(w) {
			accepted++
		}
		// Cross-check with derivatives on short members.
		if len(w) <= 12 && syntax.DeriveMatch(node, w) != d.Accepts(w) {
			t.Fatalf("oracle split on %q / %q", pat, w)
		}
	}
	if accepted < 100 {
		t.Errorf("only %d accepting members", accepted)
	}
}
