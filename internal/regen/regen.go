// Package regen generates random regular expressions and random members
// of their languages. It is named after the paper's companion tool
// ("Regen: regular expression generator, engine, JIT-compiler", ref. [9])
// and backs the repository's property-based tests: every generated
// pattern is valid for this module's parser *and* for Go's stdlib regexp,
// so the two engines can be compared on arbitrary inputs.
package regen

import (
	"math/rand"
	"strings"

	"repro/internal/syntax"
)

// Config tunes the shape of generated patterns.
type Config struct {
	// Alphabet holds the literal bytes leaves draw from (default "abc").
	Alphabet string
	// MaxDepth bounds the operator tree depth (default 4).
	MaxDepth int
	// MaxRepeat bounds counted repetition bounds (default 3).
	MaxRepeat int
	// AllowClasses enables character-class leaves like [ab].
	AllowClasses bool
	// AllowCounts enables {n,m} counters.
	AllowCounts bool
}

func (c Config) defaults() Config {
	if c.Alphabet == "" {
		c.Alphabet = "abc"
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.MaxRepeat <= 0 {
		c.MaxRepeat = 3
	}
	return c
}

// Generator produces random patterns.
type Generator struct {
	cfg Config
	r   *rand.Rand
}

// New returns a generator with the given seed.
func New(cfg Config, seed int64) *Generator {
	return &Generator{cfg: cfg.defaults(), r: rand.New(rand.NewSource(seed))}
}

// Pattern returns one random pattern. The result always parses with
// syntax.Parse and with regexp.Compile (stdlib), using only shared
// constructs: literals, classes, (?:…), |, *, +, ?, {n,m}.
func (g *Generator) Pattern() string {
	return g.gen(g.cfg.MaxDepth)
}

func (g *Generator) gen(depth int) string {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.r.Intn(8) {
	case 0, 1:
		return g.gen(depth-1) + g.gen(depth-1)
	case 2:
		return "(?:" + g.gen(depth-1) + "|" + g.gen(depth-1) + ")"
	case 3:
		return "(?:" + g.gen(depth-1) + ")*"
	case 4:
		return "(?:" + g.gen(depth-1) + ")?"
	case 5:
		return "(?:" + g.gen(depth-1) + ")+"
	case 6:
		if g.cfg.AllowCounts {
			lo := g.r.Intn(g.cfg.MaxRepeat)
			hi := lo + g.r.Intn(g.cfg.MaxRepeat-lo+1)
			if hi == 0 {
				hi = 1
			}
			return "(?:" + g.gen(depth-1) + "){" + itoa(lo) + "," + itoa(hi) + "}"
		}
		return g.gen(depth - 1)
	default:
		return g.gen(depth - 1)
	}
}

func (g *Generator) leaf() string {
	a := g.cfg.Alphabet
	if g.cfg.AllowClasses && g.r.Intn(3) == 0 && len(a) >= 2 {
		// A class of 2..len distinct alphabet bytes.
		k := 2 + g.r.Intn(len(a)-1)
		perm := g.r.Perm(len(a))[:k]
		var sb strings.Builder
		sb.WriteByte('[')
		for _, i := range perm {
			sb.WriteByte(a[i])
		}
		sb.WriteByte(']')
		return sb.String()
	}
	return string(a[g.r.Intn(len(a))])
}

// Word returns a random word over the generator's alphabet with length
// in [0, maxLen].
func (g *Generator) Word(maxLen int) []byte {
	n := g.r.Intn(maxLen + 1)
	w := make([]byte, n)
	for i := range w {
		w[i] = g.cfg.Alphabet[g.r.Intn(len(g.cfg.Alphabet))]
	}
	return w
}

// Member attempts to produce a word in L(pattern) by walking the parsed
// AST; ok is false when the language is empty or the walk exceeds the
// size budget. Members exercise the "accepting" paths of engines, which
// uniform random words rarely hit.
func (g *Generator) Member(node *syntax.Node, budget int) (w []byte, ok bool) {
	var out []byte
	if !g.member(node, &out, &budget) {
		return nil, false
	}
	return out, true
}

func (g *Generator) member(n *syntax.Node, out *[]byte, budget *int) bool {
	if *budget <= 0 {
		return false
	}
	switch n.Op {
	case syntax.OpEmpty, syntax.OpAnchor:
		return true
	case syntax.OpNone:
		return false
	case syntax.OpClass:
		bytes := n.Set.Bytes()
		if len(bytes) == 0 {
			return false
		}
		*out = append(*out, bytes[g.r.Intn(len(bytes))])
		*budget--
		return true
	case syntax.OpConcat:
		for _, s := range n.Sub {
			if !g.member(s, out, budget) {
				return false
			}
		}
		return true
	case syntax.OpAlt:
		// Try branches in random order until one yields a member.
		for _, i := range g.r.Perm(len(n.Sub)) {
			save := len(*out)
			saveBudget := *budget
			if g.member(n.Sub[i], out, budget) {
				return true
			}
			*out = (*out)[:save]
			*budget = saveBudget
		}
		return false
	case syntax.OpStar, syntax.OpQuest:
		k := g.r.Intn(3)
		if n.Op == syntax.OpQuest && k > 1 {
			k = 1
		}
		for i := 0; i < k; i++ {
			save, saveBudget := len(*out), *budget
			if !g.member(n.Sub[0], out, budget) {
				// The loop may legally stop early; discard the partial
				// iteration.
				*out = (*out)[:save]
				*budget = saveBudget
				return true
			}
		}
		return true
	case syntax.OpPlus:
		k := 1 + g.r.Intn(2)
		for i := 0; i < k; i++ {
			save, saveBudget := len(*out), *budget
			if !g.member(n.Sub[0], out, budget) {
				*out = (*out)[:save]
				*budget = saveBudget
				return i > 0
			}
		}
		return true
	case syntax.OpRepeat:
		max := n.Max
		if max < 0 || max > n.Min+2 {
			max = n.Min + 2
		}
		k := n.Min
		if max > n.Min {
			k += g.r.Intn(max - n.Min + 1)
		}
		for i := 0; i < k; i++ {
			if !g.member(n.Sub[0], out, budget) {
				return false
			}
		}
		return true
	}
	return false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
