package obs

import (
	"math/bits"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const gs, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != gs*per {
		t.Fatalf("Load = %d, want %d", got, gs*per)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	g.Max(5)
	g.Max(3)
	g.Max(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("Max high-water = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 1023, 1024, -7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("Count = %d, want 8", s.Count)
	}
	// -7 clamps to 0, joining the real 0 in bucket 0.
	if s.Buckets[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[1] != 1 { // v=1
		t.Fatalf("bucket 1 = %d, want 1", s.Buckets[1])
	}
	if s.Buckets[2] != 2 { // v=2,3
		t.Fatalf("bucket 2 = %d, want 2", s.Buckets[2])
	}
	if s.Buckets[10] != 1 { // v=1023
		t.Fatalf("bucket 10 = %d, want 1", s.Buckets[10])
	}
	if s.Buckets[11] != 1 { // v=1024
		t.Fatalf("bucket 11 = %d, want 1", s.Buckets[11])
	}
	if s.Sum != 0+1+2+3+4+1023+1024 {
		t.Fatalf("Sum = %d", s.Sum)
	}
	for _, v := range []int64{1, 5, 100, 1 << 20, 1 << 45, 1 << 62} {
		i := bits.Len64(uint64(v))
		if i >= NumBuckets {
			i = NumBuckets - 1
		}
		if up := BucketUpper(i); v > up && i < NumBuckets-1 {
			t.Fatalf("value %d exceeds its bucket upper bound %d", v, up)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(100) // bucket 7, upper bound 127
	}
	h.Observe(1 << 20) // one outlier
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != BucketUpper(7) {
		t.Fatalf("p50 = %d, want %d", q, BucketUpper(7))
	}
	if q := s.Quantile(1); q != BucketUpper(21) {
		t.Fatalf("max = %d, want %d", q, BucketUpper(21))
	}
}

func TestStateFreq(t *testing.T) {
	var f StateFreq
	for i := 0; i < 100; i++ {
		f.Record(3)
	}
	for i := 0; i < 10; i++ {
		f.Record(7)
	}
	f.Record(0)
	top, other := f.Snapshot()
	if other != 0 {
		t.Fatalf("other = %d, want 0", other)
	}
	if len(top) != 3 || top[0].State != 3 || top[0].Count != 100 || top[1].State != 7 {
		t.Fatalf("unexpected top: %+v", top)
	}
}

func TestStateFreqOverflow(t *testing.T) {
	var f StateFreq
	for s := int32(0); s < 10*freqSlots; s++ {
		f.Record(s)
	}
	top, other := f.Snapshot()
	var counted int64
	for _, r := range top {
		counted += r.Count
	}
	if counted+other != 10*freqSlots {
		t.Fatalf("counted %d + other %d != %d", counted, other, 10*freqSlots)
	}
	if other == 0 {
		t.Fatalf("expected overflow with %d distinct states", 10*freqSlots)
	}
}

func TestStateFreqConcurrent(t *testing.T) {
	var f StateFreq
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Record(int32(g % 4))
			}
		}(g)
	}
	wg.Wait()
	top, other := f.Snapshot()
	var total int64
	for _, r := range top {
		total += r.Count
	}
	if total+other != 8000 {
		t.Fatalf("total %d + other %d != 8000", total, other)
	}
}

func TestScanStats(t *testing.T) {
	var s ScanStats
	s.RecordChunk(4096, 1500)
	s.RecordChunk(100, 50)
	snap := s.Snapshot()
	if snap.Chunks != 2 || snap.ChunkBytes != 4196 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.ComposeNs.Count != 2 || snap.ComposeNs.Sum != 1550 {
		t.Fatalf("compose histogram: %+v", snap.ComposeNs)
	}
}

// The whole point of the package: recording must not allocate.
func TestRecordPathZeroAlloc(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	var f StateFreq
	var s ScanStats
	if n := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.Set(7)
		g.Max(9)
		h.Observe(12345)
		f.Record(5)
		s.RecordChunk(4096, 900)
	}); n != 0 {
		t.Fatalf("record path allocates %v allocs/op, want 0", n)
	}
}

func TestPromWriter(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("sfa_test_total", "help text", 42, "tenant", `a"b`)
	p.Counter("sfa_test_total", "help text", 7, "tenant", "c")
	p.Gauge("sfa_test_gauge", "a gauge", 1.5)
	var h Histogram
	h.Observe(3)
	h.Observe(200)
	p.Histogram("sfa_test_ns", "a histogram", h.Snapshot(), "stage", "compose")
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sfa_test_total counter",
		`sfa_test_total{tenant="a\"b"} 42`,
		`sfa_test_total{tenant="c"} 7`,
		"# TYPE sfa_test_gauge gauge",
		"sfa_test_gauge 1.5",
		"# TYPE sfa_test_ns histogram",
		`sfa_test_ns_bucket{stage="compose",le="3"} 1`,
		`sfa_test_ns_bucket{stage="compose",le="+Inf"} 2`,
		`sfa_test_ns_sum{stage="compose"} 203`,
		`sfa_test_ns_count{stage="compose"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE sfa_test_total") != 1 {
		t.Fatalf("duplicated header block:\n%s", out)
	}
}

func TestWriteRuntimeMetrics(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	WriteRuntimeMetrics(p)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"sfa_go_sched_goroutines", "sfa_go_gc_pauses_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime exposition missing %q in:\n%s", want, out)
		}
	}
}
