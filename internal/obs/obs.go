// Package obs provides the allocation-free, lock-free instrumentation
// primitives the scan and build paths record into: sharded counters,
// gauges, fixed-bucket log₂ histograms, and a lossy state-frequency
// table for boundary-state statistics.
//
// Every type in this package is usable at its zero value, updated with
// plain atomic operations (no locks, no maps, no channels), and
// performs zero heap allocations on the record path — the pooled match
// hot path stays at 0 allocs/op with instrumentation enabled, and the
// benchjson gate proves it. Reads (Snapshot, Load) are cheap but
// deliberately relaxed: a snapshot taken concurrently with writers is a
// consistent-enough view for monitoring, not a linearizable cut.
//
// obs imports only the standard library and sits below every other
// package in the repo (core, engine, multi, prefilter, serve all may
// import it; it imports none of them).
package obs
