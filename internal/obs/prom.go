package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromWriter emits Prometheus text exposition format (version 0.0.4).
// It tracks which metric names have had their # HELP/# TYPE headers
// written so callers can emit the same metric with different label sets
// from independent call sites (per-tenant loops) without duplicating
// headers — the exposition format requires all samples of one metric to
// share one header block, so callers must still group same-name calls
// together.
//
// PromWriter is for the scrape path, not the hot path: it allocates
// freely (it runs once per /metrics request).
type PromWriter struct {
	w    *bufio.Writer
	seen map[string]bool
	err  error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w), seen: make(map[string]bool)}
}

// Flush flushes buffered output and returns the first error seen.
func (p *PromWriter) Flush() error {
	if p.err == nil {
		p.err = p.w.Flush()
	}
	return p.err
}

func (p *PromWriter) header(name, help, typ string) {
	if p.seen[name] {
		return
	}
	p.seen[name] = true
	if help != "" {
		fmt.Fprintf(p.w, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// Counter writes one counter sample. labels are alternating key, value
// pairs.
func (p *PromWriter) Counter(name, help string, v int64, labels ...string) {
	p.header(name, help, "counter")
	fmt.Fprintf(p.w, "%s%s %d\n", name, labelString(labels), v)
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...string) {
	p.header(name, help, "gauge")
	fmt.Fprintf(p.w, "%s%s %s\n", name, labelString(labels), formatFloat(v))
}

// Histogram writes one histogram sample set (cumulative _bucket series,
// _sum, _count) from a snapshot. Empty buckets outside the populated
// range are elided — fewer exposition lines, identical semantics, the
// le= edges are just a subset of the fixed log₂ boundaries.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot, labels ...string) {
	p.header(name, help, "histogram")
	ls := labels
	lo, hi := -1, -1
	for i, n := range s.Buckets {
		if n != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	var cum int64
	if lo >= 0 {
		for i := lo; i <= hi && i < NumBuckets-1; i++ {
			cum += s.Buckets[i]
			fmt.Fprintf(p.w, "%s_bucket%s %d\n", name,
				labelString(append(append([]string{}, ls...), "le", strconv.FormatInt(BucketUpper(i), 10))), cum)
		}
	}
	fmt.Fprintf(p.w, "%s_bucket%s %d\n", name,
		labelString(append(append([]string{}, ls...), "le", "+Inf")), s.Count)
	fmt.Fprintf(p.w, "%s_sum%s %d\n", name, labelString(ls), s.Sum)
	fmt.Fprintf(p.w, "%s_count%s %d\n", name, labelString(ls), s.Count)
}

// labelString renders alternating key, value pairs as {k="v",...};
// empty input renders as the empty string.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortedKeys returns m's keys sorted — the exposition convenience for
// per-tenant loops that must emit rows in a stable order.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
