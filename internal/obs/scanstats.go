package obs

// ScanStats aggregates the streaming-scan hot-path measurements for one
// owner (a tenant, a rule set, a benchmark). The zero value is ready to
// use; engines hold a *ScanStats and record into it from every worker
// concurrently, so all fields are the lock-free primitives above and
// RecordChunk stays allocation-free.
type ScanStats struct {
	// Chunks and ChunkBytes count every ComposeChunk call that reached
	// an automaton (i.e. survived the prefilter).
	Chunks     Counter
	ChunkBytes Counter
	// ComposeNs is the per-chunk compose latency (scan from identity +
	// ⊙-fold), in nanoseconds.
	ComposeNs Histogram
	// ChunkSize is the distribution of chunk sizes in bytes.
	ChunkSize Histogram
}

// RecordChunk records one composed chunk of n bytes that took ns
// nanoseconds.
//sfa:noalloc
func (s *ScanStats) RecordChunk(n int, ns int64) {
	s.Chunks.Inc()
	s.ChunkBytes.Add(int64(n))
	s.ComposeNs.Observe(ns)
	s.ChunkSize.Observe(int64(n))
}

// ScanSnapshot is a point-in-time copy of a ScanStats.
type ScanSnapshot struct {
	Chunks     int64             `json:"chunks"`
	ChunkBytes int64             `json:"chunk_bytes"`
	ComposeNs  HistogramSnapshot `json:"compose_ns"`
	ChunkSize  HistogramSnapshot `json:"chunk_size"`
}

// Snapshot returns a relaxed point-in-time copy.
func (s *ScanStats) Snapshot() ScanSnapshot {
	return ScanSnapshot{
		Chunks:     s.Chunks.Load(),
		ChunkBytes: s.ChunkBytes.Load(),
		ComposeNs:  s.ComposeNs.Snapshot(),
		ChunkSize:  s.ChunkSize.Snapshot(),
	}
}
