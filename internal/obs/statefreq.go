package obs

import (
	"sort"
	"sync/atomic"
)

// freqSlots is the fixed capacity of a StateFreq table. The premise of
// Ko-style speculative matching is that boundary states are *few* — a
// handful of hot states absorb almost all chunk boundaries — so 64
// slots is generous for the signal we need; anything past the probe
// budget lands in the overflow counter, which doubles as the "is the
// hot-state assumption even true for this workload" measurement.
const freqSlots = 64

// freqProbes bounds the linear probe so Record stays O(1) under
// adversarial state churn.
const freqProbes = 8

// StateFreq is a lossy, fixed-size, lock-free frequency table keyed by
// automaton state id. The zero value is ready to use. Record is a short
// CAS linear probe over atomics — no allocation, no lock — and is safe
// from concurrent goroutines. Intended use: one table per engine,
// recording the DFA state each chunk boundary lands in, to answer the
// speculation-viability question ("how concentrated are boundary
// states?") the ROADMAP's Ko et al. item needs.
type StateFreq struct {
	keys   [freqSlots]atomic.Int64 // state+1; 0 means empty
	counts [freqSlots]atomic.Int64
	other  atomic.Int64 // records that found no slot within the probe budget
}

// Record counts one occurrence of state.
//sfa:noalloc
func (f *StateFreq) Record(state int32) {
	k := int64(state) + 1
	i := int((uint32(state) * 0x9e3779b9) % freqSlots)
	for p := 0; p < freqProbes; p++ {
		slot := (i + p) % freqSlots
		cur := f.keys[slot].Load()
		if cur == k {
			f.counts[slot].Add(1)
			return
		}
		if cur == 0 {
			if f.keys[slot].CompareAndSwap(0, k) {
				f.counts[slot].Add(1)
				return
			}
			// Lost the race; the winner's key is now visible — retry
			// this slot as an occupied one.
			if f.keys[slot].Load() == k {
				f.counts[slot].Add(1)
				return
			}
		}
	}
	f.other.Add(1)
}

// StateCount is one (state, count) row of a StateFreq snapshot.
type StateCount struct {
	State int32 `json:"state"`
	Count int64 `json:"count"`
}

// TopKCoverage returns the fraction of all recorded boundaries that
// landed in the k hottest states of a StateFreq snapshot: Σ(top k
// counts) / (Σ all counts + other). The overflow counter is part of the
// denominator on purpose — states that did not fit the table are by
// definition not "hot", so overflow dilutes coverage exactly as it
// should. Returns 0 when nothing has been recorded. This single number
// is the ROADMAP's speculation-viability answer: Ko-style boundary
// prediction pays off when a small k already covers ~all boundaries.
func TopKCoverage(top []StateCount, other int64, k int) float64 {
	total := other
	for _, sc := range top {
		total += sc.Count
	}
	if total <= 0 || k <= 0 {
		return 0
	}
	if k > len(top) {
		k = len(top)
	}
	var hot int64
	for _, sc := range top[:k] {
		hot += sc.Count
	}
	return float64(hot) / float64(total)
}

// Snapshot returns the occupied rows sorted by descending count, plus
// the overflow count (records that did not fit the table).
func (f *StateFreq) Snapshot() (top []StateCount, other int64) {
	for i := 0; i < freqSlots; i++ {
		k := f.keys[i].Load()
		if k == 0 {
			continue
		}
		n := f.counts[i].Load()
		if n == 0 {
			continue
		}
		top = append(top, StateCount{State: int32(k - 1), Count: n})
	}
	sort.Slice(top, func(a, b int) bool {
		if top[a].Count != top[b].Count {
			return top[a].Count > top[b].Count
		}
		return top[a].State < top[b].State
	})
	return top, f.other.Load()
}
