package obs

import (
	"runtime/metrics"
	"strings"
)

// runtimeSamples is the fixed set of runtime/metrics series the
// exposition surfaces: enough to answer "is a latency spike the engine
// or the runtime" (GC pauses, scheduling latency) plus the basic
// capacity gauges. Names failing to resolve on a future runtime degrade
// to absent series, never to a panic.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// WriteRuntimeMetrics samples the Go runtime and writes the series as
// sfa_go_* gauges. Distribution-shaped series (GC pauses, scheduler
// latencies) are summarized to p50/p90/p99/max gauges in nanoseconds —
// the runtime's float64 histograms do not map onto our integer log₂
// buckets, and quantile gauges are what dashboards want from them
// anyway.
func WriteRuntimeMetrics(p *PromWriter) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		name := promName(s.Name)
		switch s.Value.Kind() {
		case metrics.KindUint64:
			p.Gauge(name, "runtime/metrics "+s.Name, float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			p.Gauge(name, "runtime/metrics "+s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			for _, q := range []struct {
				q     float64
				label string
			}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}, {1, "1"}} {
				v := float64Quantile(h, q.q)
				p.Gauge(name+"_ns", "runtime/metrics "+s.Name+" quantile, nanoseconds",
					v*1e9, "q", q.label)
			}
		}
	}
}

// promName maps a runtime/metrics name like "/gc/pauses:seconds" to
// "sfa_go_gc_pauses".
func promName(name string) string {
	name, _, _ = strings.Cut(name, ":")
	name = strings.TrimPrefix(name, "/")
	name = strings.NewReplacer("/", "_", "-", "_").Replace(name)
	return "sfa_go_" + name
}

// float64Quantile returns an upper bound for the q-quantile of a
// runtime float64 histogram (the upper edge of the bucket the quantile
// falls in; the histogram's +Inf tail reports the last finite edge).
func float64Quantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total-1))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Buckets[i+1] is the upper edge of bucket i; clamp the
			// +Inf tail to the last finite edge.
			edge := h.Buckets[i+1]
			if isInf(edge) {
				edge = h.Buckets[len(h.Buckets)-2]
			}
			return edge
		}
	}
	edge := h.Buckets[len(h.Buckets)-1]
	if isInf(edge) {
		edge = h.Buckets[len(h.Buckets)-2]
	}
	return edge
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }
