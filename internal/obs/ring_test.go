package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestRingNil(t *testing.T) {
	var g *Ring
	if seq := g.Record(ScanRecord{Tenant: "x"}); seq != 0 {
		t.Fatalf("nil ring Record = %d, want 0", seq)
	}
	if snap := g.Snapshot(10); snap != nil {
		t.Fatalf("nil ring Snapshot = %v, want nil", snap)
	}
	if g.Cap() != 0 {
		t.Fatalf("nil ring Cap = %d, want 0", g.Cap())
	}
	if NewRing(0) != nil || NewRing(-5) != nil {
		t.Fatal("NewRing(n<=0) must return nil")
	}
}

func TestRingRoundTrip(t *testing.T) {
	g := NewRing(4)
	want := ScanRecord{
		UnixNano: 123, Tenant: "web", Generation: 7, Bytes: 4096,
		Chunks: 3, ReadNs: 10, PrefilterNs: 20, ComposeNs: 30,
		MatchNs: 40, ShardChunksScanned: 5, ShardChunksSkipped: 2,
		Matches: 1,
	}
	seq := g.Record(want)
	if seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	snap := g.Snapshot(10)
	if len(snap) != 1 {
		t.Fatalf("len(snap) = %d, want 1", len(snap))
	}
	want.Seq = 1
	if snap[0] != want {
		t.Fatalf("round trip:\n got %+v\nwant %+v", snap[0], want)
	}
}

func TestRingWraparoundNewestFirst(t *testing.T) {
	g := NewRing(4)
	if g.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", g.Cap())
	}
	for i := 1; i <= 10; i++ {
		g.Record(ScanRecord{Bytes: int64(i), Tenant: fmt.Sprintf("t%d", i)})
	}
	snap := g.Snapshot(100)
	if len(snap) != 4 {
		t.Fatalf("len(snap) = %d, want 4 after wraparound", len(snap))
	}
	for i, r := range snap {
		wantSeq := uint64(10 - i)
		if r.Seq != wantSeq || r.Bytes != int64(wantSeq) || r.Tenant != fmt.Sprintf("t%d", wantSeq) {
			t.Fatalf("snap[%d] = %+v, want seq %d", i, r, wantSeq)
		}
	}
	if snap = g.Snapshot(2); len(snap) != 2 || snap[0].Seq != 10 || snap[1].Seq != 9 {
		t.Fatalf("Snapshot(2) = %+v", snap)
	}
}

func TestRingTenantTruncation(t *testing.T) {
	g := NewRing(1)
	long := "tenant-name-well-past-the-32-byte-inline-limit"
	g.Record(ScanRecord{Tenant: long})
	snap := g.Snapshot(1)
	if len(snap) != 1 || snap[0].Tenant != long[:ringTenantMax] {
		t.Fatalf("truncated tenant = %q, want %q", snap[0].Tenant, long[:ringTenantMax])
	}
}

func TestRingSizeRoundsUp(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{1, 1}, {3, 4}, {4, 4}, {100, 128}} {
		if got := NewRing(tc.n).Cap(); got != tc.want {
			t.Fatalf("NewRing(%d).Cap() = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// Concurrent writers + readers: every snapshotted record must be
// internally consistent (all fields stamped from the same write), and
// seqs strictly decreasing. Run under -race this also proves the slot
// protocol is data-race free.
func TestRingConcurrent(t *testing.T) {
	g := NewRing(8)
	const writers, per = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := int64(w*per + i)
				g.Record(ScanRecord{
					Tenant: "t", Bytes: v, Chunks: v, ComposeNs: v,
					MatchNs: v, Matches: v,
				})
			}
		}(w)
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := g.Snapshot(8)
			last := ^uint64(0)
			for _, r := range snap {
				if r.Seq >= last {
					t.Errorf("seqs not strictly decreasing: %d then %d", last, r.Seq)
					return
				}
				last = r.Seq
				// All payload fields were stamped with the same value;
				// a torn read that slipped the seq check would differ.
				if r.Chunks != r.Bytes || r.ComposeNs != r.Bytes ||
					r.MatchNs != r.Bytes || r.Matches != r.Bytes || r.Tenant != "t" {
					t.Errorf("torn record: %+v", r)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	snap := g.Snapshot(8)
	if len(snap) != 8 || snap[0].Seq != writers*per {
		t.Fatalf("final snapshot: len %d, head seq %d, want 8 / %d", len(snap), snap[0].Seq, writers*per)
	}
}

// The flight recorder's contract: recording a scan allocates nothing.
func TestRingRecordZeroAlloc(t *testing.T) {
	g := NewRing(256)
	r := ScanRecord{
		Tenant: "tenant-zero-alloc", Generation: 3, Bytes: 65536,
		Chunks: 16, ReadNs: 1000, PrefilterNs: 200, ComposeNs: 5000,
		MatchNs: 6000, ShardChunksScanned: 40, ShardChunksSkipped: 24,
		Matches: 2,
	}
	if n := testing.AllocsPerRun(200, func() { g.Record(r) }); n != 0 {
		t.Fatalf("Record allocates %v allocs/op, want 0", n)
	}
}

func TestTopKCoverage(t *testing.T) {
	uniform := []StateCount{{0, 25}, {1, 25}, {2, 25}, {3, 25}}
	for _, tc := range []struct {
		name  string
		top   []StateCount
		other int64
		k     int
		want  float64
	}{
		{"empty", nil, 0, 8, 0},
		{"k-zero", uniform, 0, 0, 0},
		{"uniform-top1", uniform, 0, 1, 0.25},
		{"uniform-top2", uniform, 0, 2, 0.5},
		{"uniform-all", uniform, 0, 4, 1},
		{"uniform-k-past-end", uniform, 0, 100, 1},
		{"single-hot", []StateCount{{7, 1000}}, 0, 1, 1},
		{"hot-with-tail", []StateCount{{0, 90}, {1, 5}, {2, 5}}, 0, 1, 0.9},
		{"overflow-dilutes", []StateCount{{0, 50}}, 50, 1, 0.5},
		{"only-overflow", nil, 10, 4, 0},
	} {
		if got := TopKCoverage(tc.top, tc.other, tc.k); got != tc.want {
			t.Fatalf("%s: TopKCoverage = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// End-to-end over a real StateFreq: 65+ distinct states force overflow
// and the coverage fractions must stay exact against hand-computed
// totals (table counts + overflow in the denominator).
func TestTopKCoverageWithOverflow(t *testing.T) {
	var f StateFreq
	// One dominant state recorded 1000 times, then 200 distinct cold
	// states once each — more than the 64-slot table can hold.
	for i := 0; i < 1000; i++ {
		f.Record(42)
	}
	const cold = 200
	for s := int32(1000); s < 1000+cold; s++ {
		f.Record(s)
	}
	top, other := f.Snapshot()
	if other == 0 {
		t.Fatalf("expected overflow with %d distinct states", cold+1)
	}
	if top[0].State != 42 || top[0].Count != 1000 {
		t.Fatalf("hottest row = %+v, want state 42 ×1000", top[0])
	}
	var total int64
	for _, r := range top {
		total += r.Count
	}
	total += other
	if total != 1000+cold {
		t.Fatalf("mass lost: %d recorded, %d accounted", 1000+cold, total)
	}
	if got, want := TopKCoverage(top, other, 1), 1000.0/float64(1000+cold); got != want {
		t.Fatalf("top-1 coverage = %v, want %v", got, want)
	}
	if got := TopKCoverage(top, other, freqSlots); got >= 1 {
		t.Fatalf("coverage with overflow must stay < 1, got %v", got)
	}
}
