package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of cache-line-padded stripes a Counter
// spreads its increments over. Must be a power of two. Eight stripes ×
// 64 bytes keeps a Counter at 512 bytes — cheap enough to embed freely
// — while removing the single-cache-line ping-pong that a lone
// atomic.Int64 suffers when every pool worker increments it per chunk.
const counterShards = 8

// padded is one counter stripe on its own cache line so neighbouring
// stripes never false-share.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter. The zero value
// is ready to use. Add/Inc are wait-free single atomic adds and never
// allocate; Load sums the stripes (monotone but relaxed — it may miss
// increments that race with it, never double-count).
type Counter struct {
	shards [counterShards]padded
}

// stripe picks a stripe from the address of a stack local. Goroutine
// stacks are spread across the address space, so concurrent goroutines
// land on different stripes with high probability; a collision costs
// contention, never correctness. The whole expression stays on the
// stack — no allocation, no goroutine id lookup.
func stripe() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (counterShards - 1)
}

// Add adds n to the counter. n must be ≥ 0 (Counter is monotone; use
// Gauge for values that go down).
//sfa:noalloc
func (c *Counter) Add(n int64) {
	c.shards[stripe()].v.Add(n)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current sum across stripes.
func (c *Counter) Load() int64 {
	var s int64
	for i := range c.shards {
		s += c.shards[i].v.Load()
	}
	return s
}

// Gauge is a single instantaneous value (queue depth, resident bytes).
// The zero value is ready to use. Unlike Counter it is not sharded:
// gauges are written from one place or rarely, read often.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max raises the gauge to v if v is greater (a relaxed high-water
// mark: concurrent racers may briefly publish a lower value, the final
// state converges to the maximum observed).
func (g *Gauge) Max(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}
