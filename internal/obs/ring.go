package obs

import "sync/atomic"

// ringTenantMax is the number of tenant-name bytes a ring slot stores
// inline. Names longer than this are truncated in the record (the full
// name still lives in the per-tenant metric registry); 32 bytes covers
// every tenant name the serve layer accepts in practice.
const ringTenantMax = 32

const ringTenantWords = ringTenantMax / 8

// ScanRecord is one scan's flight-recorder entry: who was scanned,
// how big it was, and where the wall time went, stage by stage. Unlike
// the threshold-gated slow-scan log — which drops everything under the
// threshold — the ring keeps the last N of these unconditionally, so
// "what did the recent scans actually do" is always answerable.
type ScanRecord struct {
	// Seq is the monotonically increasing scan sequence number,
	// assigned by Record. Gaps in a snapshot mean records were
	// overwritten between reads, never silently reordered.
	Seq        uint64 `json:"seq"`
	UnixNano   int64  `json:"unix_nano"`
	Tenant     string `json:"tenant"`
	Generation int64  `json:"generation"`
	Bytes      int64  `json:"bytes"`
	Chunks     int64  `json:"chunks"`
	// Stage split, all nanoseconds: time blocked reading the request
	// body, literal-prefilter time, carried-mapping compose time, and
	// total engine (match) time. ReadNs+MatchNs ≈ the request wall
	// time; PrefilterNs+ComposeNs partition MatchNs's streaming work.
	ReadNs      int64 `json:"read_ns"`
	PrefilterNs int64 `json:"prefilter_ns"`
	ComposeNs   int64 `json:"compose_ns"`
	MatchNs     int64 `json:"match_ns"`
	// Per-shard chunk visits the prefilter walked vs skipped.
	ShardChunksScanned int64 `json:"shard_chunks_scanned"`
	ShardChunksSkipped int64 `json:"shard_chunks_skipped"`
	Matches            int64 `json:"matches"`
}

// ringSlot is one ring entry. Every field is an atomic so that a
// Snapshot racing a writer reads torn-but-typed values it then rejects
// via the seq double-check — the race detector sees only atomic ops.
// The publish protocol: the writer stores seq=0 (invalidating the
// slot), writes the payload fields, then stores the new seq. A reader
// accepts a slot only if seq reads the same nonzero value before and
// after copying the payload; seqs are unique, so a torn read cannot
// masquerade as a consistent one.
type ringSlot struct {
	seq        atomic.Uint64
	unixNano   atomic.Int64
	generation atomic.Int64
	bytes      atomic.Int64
	chunks     atomic.Int64
	readNs     atomic.Int64
	prefNs     atomic.Int64
	composeNs  atomic.Int64
	matchNs    atomic.Int64
	scanned    atomic.Int64
	skipped    atomic.Int64
	matches    atomic.Int64
	tenantLen  atomic.Int64
	tenant     [ringTenantWords]atomic.Uint64
}

// Ring is the always-on scan flight recorder: a fixed-size lock-free
// ring of the last N ScanRecords. Record is wait-free (one atomic
// fetch-add claims a slot, then plain atomic stores fill it) and
// performs zero heap allocations — it is safe on the per-request hot
// path regardless of scan rate, with memory bounded at construction.
// A nil *Ring is valid and inert: Record and Snapshot are no-ops, so
// callers need no "is the recorder on" branch.
type Ring struct {
	mask  uint64
	next  atomic.Uint64 // last claimed seq; seq 0 is never issued
	slots []ringSlot
}

// NewRing returns a recorder holding the most recent n records,
// rounded up to a power of two. n <= 0 returns nil (recording off).
func NewRing(n int) *Ring {
	if n <= 0 {
		return nil
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Ring{mask: uint64(size - 1), slots: make([]ringSlot, size)}
}

// Cap returns the number of records the ring retains.
func (g *Ring) Cap() int {
	if g == nil {
		return 0
	}
	return len(g.slots)
}

// Record stores one scan record, overwriting the oldest, and returns
// the sequence number it was assigned (0 if the ring is nil). The
// record's own Seq field is ignored. Zero allocations; safe from any
// number of concurrent goroutines.
//sfa:noalloc
func (g *Ring) Record(r ScanRecord) uint64 {
	if g == nil {
		return 0
	}
	s := g.next.Add(1)
	slot := &g.slots[(s-1)&g.mask]
	slot.seq.Store(0) // invalidate while rewriting
	slot.unixNano.Store(r.UnixNano)
	slot.generation.Store(r.Generation)
	slot.bytes.Store(r.Bytes)
	slot.chunks.Store(r.Chunks)
	slot.readNs.Store(r.ReadNs)
	slot.prefNs.Store(r.PrefilterNs)
	slot.composeNs.Store(r.ComposeNs)
	slot.matchNs.Store(r.MatchNs)
	slot.scanned.Store(r.ShardChunksScanned)
	slot.skipped.Store(r.ShardChunksSkipped)
	slot.matches.Store(r.Matches)
	t := r.Tenant
	if len(t) > ringTenantMax {
		t = t[:ringTenantMax]
	}
	var words [ringTenantWords]uint64
	for i := 0; i < len(t); i++ {
		words[i>>3] |= uint64(t[i]) << uint((i&7)*8)
	}
	for i := range words {
		slot.tenant[i].Store(words[i])
	}
	slot.tenantLen.Store(int64(len(t)))
	slot.seq.Store(s) // publish
	return s
}

// Snapshot returns up to n of the most recent records, newest first.
// Records being overwritten mid-read are skipped (their seq fails the
// double-check), so every returned record is internally consistent.
// Snapshot allocates; it belongs on scrape/debug paths, not hot paths.
func (g *Ring) Snapshot(n int) []ScanRecord {
	if g == nil || n <= 0 {
		return nil
	}
	if n > len(g.slots) {
		n = len(g.slots)
	}
	last := g.next.Load()
	out := make([]ScanRecord, 0, n)
	for s := last; s > 0 && len(out) < n && s+uint64(len(g.slots)) > last; s-- {
		slot := &g.slots[(s-1)&g.mask]
		if r, ok := slot.read(s); ok {
			out = append(out, r)
		}
	}
	return out
}

// read copies the slot if it still holds sequence number want.
func (sl *ringSlot) read(want uint64) (ScanRecord, bool) {
	if sl.seq.Load() != want {
		return ScanRecord{}, false
	}
	r := ScanRecord{
		Seq:                want,
		UnixNano:           sl.unixNano.Load(),
		Generation:         sl.generation.Load(),
		Bytes:              sl.bytes.Load(),
		Chunks:             sl.chunks.Load(),
		ReadNs:             sl.readNs.Load(),
		PrefilterNs:        sl.prefNs.Load(),
		ComposeNs:          sl.composeNs.Load(),
		MatchNs:            sl.matchNs.Load(),
		ShardChunksScanned: sl.scanned.Load(),
		ShardChunksSkipped: sl.skipped.Load(),
		Matches:            sl.matches.Load(),
	}
	var words [ringTenantWords]uint64
	for i := range words {
		words[i] = sl.tenant[i].Load()
	}
	tlen := sl.tenantLen.Load()
	if sl.seq.Load() != want {
		return ScanRecord{}, false
	}
	if tlen > 0 && tlen <= ringTenantMax {
		var buf [ringTenantMax]byte
		for i := int64(0); i < tlen; i++ {
			buf[i] = byte(words[i>>3] >> uint((i&7)*8))
		}
		r.Tenant = string(buf[:tlen])
	}
	return r, true
}
