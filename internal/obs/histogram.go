package obs

import "math/bits"

// NumBuckets is the fixed bucket count of every Histogram: bucket i
// holds observations v with bits.Len64(v) == i, i.e. v in
// [2^(i-1), 2^i). Bucket 0 holds v == 0; the last bucket absorbs
// everything ≥ 2^(NumBuckets-2). 40 buckets cover 1 ns … ~9 minutes
// (or 1 byte … ~512 GiB) — the full dynamic range of anything the
// engine measures — at ×2 resolution.
const NumBuckets = 40

// Histogram is a fixed-bucket log₂ histogram with an atomic bucket per
// power of two. The zero value is ready to use. Observe is two atomic
// adds and a bits.Len64 — no floats, no sorting, no allocation — so it
// is safe inside the 0 allocs/op chunk hot path. Values are recorded in
// their native integer unit (nanoseconds, bytes); the metric name
// carries the unit suffix.
type Histogram struct {
	sum     Counter
	buckets [NumBuckets]Counter
}

// Observe records one value. Negative values clamp to 0.
//sfa:noalloc
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	h.buckets[i].Inc()
	h.sum.Add(v)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, mergeable
// with Merge and summarizable with Quantile.
type HistogramSnapshot struct {
	Count int64
	Sum   int64
	// Buckets[i] counts observations with bits.Len64(v) == i
	// (v in [2^(i-1), 2^i); bucket 0 is v == 0).
	Buckets [NumBuckets]int64
}

// Snapshot returns a relaxed point-in-time copy.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// Merge adds t's observations into s.
func (s *HistogramSnapshot) Merge(t HistogramSnapshot) {
	s.Count += t.Count
	s.Sum += t.Sum
	for i := range s.Buckets {
		s.Buckets[i] += t.Buckets[i]
	}
}

// BucketUpper returns the inclusive upper bound of bucket i: 2^i − 1
// (bucket 0 is exactly 0). The last bucket has no finite bound; it
// reports the same formula, which exposition treats as its le= edge
// before +Inf.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(uint64(1)<<uint(i)) - 1
}

// Quantile returns an upper bound on the q-quantile (q in [0,1]): the
// upper edge of the bucket the quantile falls in. Resolution is ×2 —
// good enough for "p99 compose latency is under 2^17 ns".
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count-1)) + 1
	var cum int64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
