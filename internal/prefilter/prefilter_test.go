package prefilter

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/syntax"
)

func extract(t *testing.T, pattern string, flags syntax.Flags, search bool) Rule {
	t.Helper()
	node, err := syntax.Parse(pattern, flags)
	if err != nil {
		t.Fatalf("parse %q: %v", pattern, err)
	}
	return Extract(node, search)
}

func TestExtract(t *testing.T) {
	cases := []struct {
		name    string
		pattern string
		flags   syntax.Flags
		search  bool
		covered bool
		window  bool
		prefix  bool
		maxLen  int  // -2 = don't check
		lits    []string
	}{
		{name: "plain literal", pattern: `foobar`, search: true,
			covered: true, window: true, maxLen: 6, lits: []string{"foobar"}},
		{name: "alternation unions branches", pattern: `(abc|xyzzy)`, search: true,
			covered: true, window: true, maxLen: 5, lits: []string{"abc", "xyzzy"}},
		{name: "begin anchor makes prefix", pattern: `^GET /index\.php`, search: true,
			covered: true, window: false, prefix: true, maxLen: 14},
		{name: "end anchor blocks both", pattern: `foobar$`, search: true,
			covered: true, window: false, prefix: false, maxLen: 6},
		{name: "both anchors block both", pattern: `^foobar$`, search: true,
			covered: true, window: false, prefix: false, maxLen: 6},
		{name: "trailing at-least shrinks to min", pattern: `Content-Length: [0-9]{7,}`, search: true,
			covered: true, window: true, maxLen: 16 + 7, lits: []string{"Content-Length: "}},
		{name: "leading at-least shrinks to min", pattern: `[0-9]{4,}@corp`, search: true,
			covered: true, window: true, maxLen: 4 + 5, lits: []string{"@corp"}},
		{name: "trailing star shrinks to zero", pattern: `needle(ab)*`, search: true,
			covered: true, window: true, maxLen: 6},
		{name: "trailing plus shrinks to one", pattern: `needle(ab)+`, search: true,
			covered: true, window: true, maxLen: 8},
		{name: "internal unbounded stays gate", pattern: `abc[0-9]{3,}xyz`, search: true,
			covered: true, window: false, maxLen: -1},
		{name: "anchored prefix with trailing unbounded", pattern: `^frame/[0-9]{6,}`, search: true,
			covered: true, window: false, prefix: true, maxLen: 6 + 6},
		{name: "whole-input never windows", pattern: `foobar`, search: false,
			covered: true, window: false, prefix: false, maxLen: 6},
		{name: "selective single byte", pattern: `\x90{8,32}`, search: true,
			covered: true, window: true, maxLen: 32},
		{name: "common single byte rejected", pattern: `a[0-9]{3,}z`, search: true,
			covered: false, window: false, maxLen: -1},
		{name: "wide classes defeat extraction", pattern: `[a-z0-9]{8}`, search: true,
			covered: false, window: false, maxLen: 8},
		{name: "nullable pattern requires nothing", pattern: `(abc)*`, search: true,
			covered: false, window: false, maxLen: 0},
		{name: "fold case expands variants", pattern: `cmd`, flags: syntax.FoldCase, search: true,
			covered: true, window: true, maxLen: 3,
			lits: []string{"CMD", "CMd", "CmD", "Cmd", "cMD", "cMd", "cmD", "cmd"}},
		{name: "pathological alternation degrades gracefully",
			pattern: `([^a]{4}|[^b]{4}|[^c]{4})`, search: true,
			covered: false, window: false, maxLen: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := extract(t, tc.pattern, tc.flags, tc.search)
			if r.Covered() != tc.covered {
				t.Errorf("Covered = %v, want %v (lits %q)", r.Covered(), tc.covered, r.Lits)
			}
			if r.Window != tc.window {
				t.Errorf("Window = %v, want %v", r.Window, tc.window)
			}
			if r.Prefix != tc.prefix {
				t.Errorf("Prefix = %v, want %v", r.Prefix, tc.prefix)
			}
			if tc.maxLen != -2 && r.MaxLen != tc.maxLen {
				t.Errorf("MaxLen = %d, want %d", r.MaxLen, tc.maxLen)
			}
			if tc.lits != nil {
				got := append([]string(nil), r.Lits...)
				sort.Strings(got)
				want := append([]string(nil), tc.lits...)
				sort.Strings(want)
				if strings.Join(got, "\x00") != strings.Join(want, "\x00") {
					t.Errorf("Lits = %q, want %q", got, want)
				}
			}
		})
	}
}

// TestExtractRequiredSetSound verifies the core contract on generated
// inputs: every string the pattern matches (built by walking the syntax
// tree) contains at least one extracted literal.
func TestExtractRequiredSetSound(t *testing.T) {
	patterns := []string{
		`foobar`, `(abc|xyzzy)`, `Content-Length: [0-9]{7,}`,
		`nee(dle|t)(x|y)?`, `\x90{8,32}`, `(GET|POST|HEAD) /`,
	}
	r := rand.New(rand.NewSource(7))
	for _, pat := range patterns {
		node, err := syntax.Parse(pat, 0)
		if err != nil {
			t.Fatalf("parse %q: %v", pat, err)
		}
		info := Extract(node, true)
		if !info.Covered() {
			t.Fatalf("%q: expected coverage", pat)
		}
		stripped, _, _ := syntax.StripAnchors(node)
		for i := 0; i < 200; i++ {
			w := genMatch(r, stripped)
			found := false
			for _, l := range info.Lits {
				if strings.Contains(w, l) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%q: match %q contains no literal of %q", pat, w, info.Lits)
			}
		}
	}
}

// genMatch samples one word of the subtree's language.
func genMatch(r *rand.Rand, n *syntax.Node) string {
	switch n.Op {
	case syntax.OpEmpty, syntax.OpAnchor, syntax.OpNone:
		return ""
	case syntax.OpClass:
		bs := n.Set.Bytes()
		return string([]byte{bs[r.Intn(len(bs))]})
	case syntax.OpConcat:
		var b strings.Builder
		for _, sub := range n.Sub {
			b.WriteString(genMatch(r, sub))
		}
		return b.String()
	case syntax.OpAlt:
		return genMatch(r, n.Sub[r.Intn(len(n.Sub))])
	case syntax.OpQuest:
		if r.Intn(2) == 0 {
			return ""
		}
		return genMatch(r, n.Sub[0])
	case syntax.OpStar:
		var b strings.Builder
		for k := r.Intn(3); k > 0; k-- {
			b.WriteString(genMatch(r, n.Sub[0]))
		}
		return b.String()
	case syntax.OpPlus:
		var b strings.Builder
		for k := 1 + r.Intn(3); k > 0; k-- {
			b.WriteString(genMatch(r, n.Sub[0]))
		}
		return b.String()
	case syntax.OpRepeat:
		max := n.Max
		if max < 0 {
			max = n.Min + 3
		}
		var b strings.Builder
		for k := n.Min + r.Intn(max-n.Min+1); k > 0; k-- {
			b.WriteString(genMatch(r, n.Sub[0]))
		}
		return b.String()
	}
	return ""
}

// naiveHits is the matcher oracle: quadratic scan for every literal.
func naiveHits(lits []string, data []byte) []Hit {
	var out []Hit
	for id, l := range lits {
		for p := 0; p+len(l) <= len(data); p++ {
			if string(data[p:p+len(l)]) == l {
				out = append(out, Hit{Lit: id, Pos: p})
			}
		}
	}
	return out
}

func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Pos != hits[j].Pos {
			return hits[i].Pos < hits[j].Pos
		}
		return hits[i].Lit < hits[j].Lit
	})
}

// TestMatcherOracle exercises every cascade stage against the naive
// scan, over random data salted with planted literals (including
// overlapping and boundary-adjacent occurrences).
func TestMatcherOracle(t *testing.T) {
	cases := []struct {
		name  string
		stage string
		lits  []string
	}{
		{"memchr", "memchr", []string{"\x07"}},
		{"byte-table few", "byte-table", []string{"\x01", "\x02", "\x03"}},
		{"byte-table many", "byte-table", []string{
			"\x01", "\x02", "\x03", "\x04", "\x05", "\x06", "\x07", "\x08", "\x0b", "\x0c"}},
		{"bmh", "bmh", []string{"needle"}},
		{"shift", "shift", []string{"needle", "haystack", "aa", "aba", "ndl"}},
		{"aho-corasick", "aho-corasick", []string{"needle", "e", "dle", "\x07", "nee"}},
	}
	r := rand.New(rand.NewSource(3))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMatcher(tc.lits)
			if m.Stage() != tc.stage {
				t.Fatalf("stage = %s, want %s", m.Stage(), tc.stage)
			}
			for trial := 0; trial < 50; trial++ {
				data := make([]byte, r.Intn(400))
				for i := range data {
					data[i] = byte(r.Intn(256))
				}
				// Plant literals, sometimes overlapping, sometimes at the
				// very edges.
				for k := r.Intn(6); k > 0; k-- {
					l := tc.lits[r.Intn(len(tc.lits))]
					if len(data) < len(l) {
						continue
					}
					copy(data[r.Intn(len(data)-len(l)+1):], l)
				}
				got := m.AppendHits(nil, data)
				want := naiveHits(tc.lits, data)
				sortHits(got)
				sortHits(want)
				if len(got) != len(want) {
					t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d: hit %d = %+v, want %+v", trial, i, got[i], want[i])
					}
				}
			}
		})
	}
}
