package prefilter

import (
	"bytes"

	"repro/internal/obs"
)

// Hit is one literal occurrence: Lits()[Lit] starts at data[Pos].
type Hit struct {
	Lit int
	Pos int
}

// Matcher finds every occurrence of a fixed literal set, choosing the
// cheapest sufficient stage at construction:
//
//	memchr       one single-byte literal — bytes.IndexByte (SIMD) skip
//	byte-table   several single-byte literals — per-byte IndexByte
//	             passes, or one table walk when there are many
//	bmh          one multi-byte literal — Boyer-Moore-Horspool
//	shift        many literals, all ≥ 2 bytes — Wu-Manber-style block
//	             shift table over the minimum-length prefix window,
//	             verified against a per-block bucket
//	aho-corasick many literals, some single-byte — dense-table
//	             Aho-Corasick (no skipping, but one pass)
//
// A Matcher is immutable after construction and safe for concurrent
// use; AppendHits keeps all state on the caller's stack.
type Matcher struct {
	lits   []string
	minLen int
	maxLen int
	stage  string

	single  byte // memchr
	bmh     *bmhMatcher
	wm      *wmMatcher
	ac      *acMatcher
	byteLit [256]int16 // byte-table: lit id + 1, 0 = absent

	// Per-stage observability: every AppendHits call records how much
	// input the stage swept and how many literal occurrences it
	// surfaced. Lock-free sharded counters — AppendHits runs inside the
	// streaming hot path and must stay allocation-free.
	calls obs.Counter
	bytes obs.Counter
	hits  obs.Counter
}

// MatcherStats is a point-in-time view of one Matcher's counters.
type MatcherStats struct {
	Stage string `json:"stage"` // selected cascade stage
	Calls int64  `json:"calls"` // AppendHits invocations
	Bytes int64  `json:"bytes"` // input bytes swept
	Hits  int64  `json:"hits"`  // literal occurrences surfaced
}

// Stats snapshots the matcher's counters.
func (m *Matcher) Stats() MatcherStats {
	return MatcherStats{
		Stage: m.stage,
		Calls: m.calls.Load(),
		Bytes: m.bytes.Load(),
		Hits:  m.hits.Load(),
	}
}

// byteTablePasses caps the per-byte IndexByte strategy; beyond it a
// single table walk beats repeated passes.
const byteTablePasses = 8

// NewMatcher builds the cascade for lits, which must be non-empty,
// duplicate-free, and contain no empty string.
func NewMatcher(lits []string) *Matcher {
	m := &Matcher{lits: lits, minLen: len(lits[0]), maxLen: len(lits[0])}
	for _, l := range lits {
		if len(l) < m.minLen {
			m.minLen = len(l)
		}
		if len(l) > m.maxLen {
			m.maxLen = len(l)
		}
	}
	switch {
	case m.maxLen == 1 && len(lits) == 1:
		m.stage = "memchr"
		m.single = lits[0][0]
	case m.maxLen == 1:
		m.stage = "byte-table"
		for id, l := range lits {
			m.byteLit[l[0]] = int16(id) + 1
		}
	case len(lits) == 1:
		m.stage = "bmh"
		m.bmh = newBMH(lits[0])
	case m.minLen >= 2:
		m.stage = "shift"
		m.wm = newWM(lits, m.minLen)
	default:
		m.stage = "aho-corasick"
		m.ac = newAC(lits)
	}
	return m
}

// Lits returns the literal set (do not mutate).
func (m *Matcher) Lits() []string { return m.lits }

// MaxLen returns the longest literal's length.
func (m *Matcher) MaxLen() int { return m.maxLen }

// Stage names the selected cascade stage.
func (m *Matcher) Stage() string { return m.stage }

// AppendHits appends every occurrence of every literal in data to dst
// and returns it. Hit order is unspecified across literals; positions
// for one literal are ascending.
//sfa:noalloc
func (m *Matcher) AppendHits(dst []Hit, data []byte) []Hit {
	n0 := len(dst)
	dst = m.appendHits(dst, data)
	m.calls.Inc()
	m.bytes.Add(int64(len(data)))
	m.hits.Add(int64(len(dst) - n0))
	return dst
}

//sfa:noalloc
func (m *Matcher) appendHits(dst []Hit, data []byte) []Hit {
	switch m.stage {
	case "memchr":
		off := 0
		for {
			j := bytes.IndexByte(data[off:], m.single)
			if j < 0 {
				return dst
			}
			dst = append(dst, Hit{0, off + j})
			off += j + 1
		}
	case "byte-table":
		if len(m.lits) <= byteTablePasses {
			for id, l := range m.lits {
				b, off := l[0], 0
				for {
					j := bytes.IndexByte(data[off:], b)
					if j < 0 {
						break
					}
					dst = append(dst, Hit{id, off + j})
					off += j + 1
				}
			}
			return dst
		}
		for i, b := range data {
			if id := m.byteLit[b]; id != 0 {
				dst = append(dst, Hit{int(id) - 1, i})
			}
		}
		return dst
	case "bmh":
		return m.bmh.appendHits(dst, data)
	case "shift":
		return m.wm.appendHits(dst, data, m.lits)
	default:
		return m.ac.appendHits(dst, data, m.lits)
	}
}

// --- Boyer-Moore-Horspool, single pattern --------------------------------

type bmhMatcher struct {
	pat  string
	skip [256]int
}

func newBMH(pat string) *bmhMatcher {
	b := &bmhMatcher{pat: pat}
	n := len(pat)
	for i := range b.skip {
		b.skip[i] = n
	}
	for j := 0; j < n-1; j++ {
		b.skip[pat[j]] = n - 1 - j
	}
	return b
}

//sfa:noalloc
func (b *bmhMatcher) appendHits(dst []Hit, data []byte) []Hit {
	n, p := len(data), len(b.pat)
	last := b.pat[p-1]
	i := 0
	for i+p <= n {
		c := data[i+p-1]
		if c == last && string(data[i:i+p]) == b.pat {
			dst = append(dst, Hit{0, i})
		}
		i += b.skip[c]
	}
	return dst
}

// --- Wu-Manber-style shift stage, many patterns --------------------------
//
// Keyed on 2-byte blocks of each literal's first minLen bytes: the
// shift table says how far the scan window can jump when its trailing
// block appears nowhere at a compatible offset, and the zero-shift
// buckets carry the literal ids to verify. Like the classic algorithm
// this skips most of the input when the blocks are rare, which is what
// makes the cascade faster than one D-SFA table walk per byte.

type wmMatcher struct {
	m0     int // minimum literal length; window = first m0 bytes
	shift  [1 << 16]uint8
	bucket map[uint16][]int16
}

func newWM(lits []string, minLen int) *wmMatcher {
	w := &wmMatcher{m0: minLen, bucket: make(map[uint16][]int16)}
	def := minLen - 1
	if def > 255 {
		def = 255
	}
	for i := range w.shift {
		w.shift[i] = uint8(def)
	}
	for id, l := range lits {
		for j := 1; j < w.m0; j++ {
			blk := uint16(l[j-1])<<8 | uint16(l[j])
			sh := w.m0 - 1 - j
			if sh > int(w.shift[blk]) {
				continue
			}
			w.shift[blk] = uint8(sh)
			if sh == 0 {
				w.bucket[blk] = append(w.bucket[blk], int16(id))
			}
		}
	}
	return w
}

//sfa:noalloc
func (w *wmMatcher) appendHits(dst []Hit, data []byte, lits []string) []Hit {
	n := len(data)
	i := w.m0 - 1
	for i < n {
		blk := uint16(data[i-1])<<8 | uint16(data[i])
		if sh := w.shift[blk]; sh != 0 {
			i += int(sh)
			continue
		}
		start := i - w.m0 + 1
		for _, id := range w.bucket[blk] {
			l := lits[id]
			if start+len(l) <= n && string(data[start:start+len(l)]) == l {
				dst = append(dst, Hit{int(id), start})
			}
		}
		i++
	}
	return dst
}

// --- Aho-Corasick, dense tables ------------------------------------------

type acMatcher struct {
	next []int32   // nstates × 256 goto-with-failure table
	out  [][]int32 // literal ids recognized entering each state
}

func newAC(lits []string) *acMatcher {
	type node struct {
		child [256]int32
		fail  int32
		out   []int32
	}
	nodes := []*node{new(node)}
	for i := range nodes[0].child {
		nodes[0].child[i] = -1
	}
	for id, l := range lits {
		s := int32(0)
		for k := 0; k < len(l); k++ {
			c := l[k]
			if nodes[s].child[c] < 0 {
				nn := new(node)
				for i := range nn.child {
					nn.child[i] = -1
				}
				nodes = append(nodes, nn)
				nodes[s].child[c] = int32(len(nodes) - 1)
			}
			s = nodes[s].child[c]
		}
		nodes[s].out = append(nodes[s].out, int32(id))
	}
	// BFS failure links; out sets absorb their suffix states' outputs.
	queue := make([]int32, 0, len(nodes))
	for c := 0; c < 256; c++ {
		if t := nodes[0].child[c]; t >= 0 {
			nodes[t].fail = 0
			queue = append(queue, t)
		} else {
			nodes[0].child[c] = 0
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		nodes[s].out = append(nodes[s].out, nodes[nodes[s].fail].out...)
		for c := 0; c < 256; c++ {
			t := nodes[s].child[c]
			if t < 0 {
				nodes[s].child[c] = nodes[nodes[s].fail].child[c]
				continue
			}
			nodes[t].fail = nodes[nodes[s].fail].child[c]
			queue = append(queue, t)
		}
	}
	a := &acMatcher{
		next: make([]int32, len(nodes)*256),
		out:  make([][]int32, len(nodes)),
	}
	for s, nd := range nodes {
		copy(a.next[s*256:], nd.child[:])
		if len(nd.out) > 0 {
			a.out[s] = nd.out
		}
	}
	return a
}

//sfa:noalloc
func (a *acMatcher) appendHits(dst []Hit, data []byte, lits []string) []Hit {
	s := int32(0)
	for i, b := range data {
		s = a.next[int(s)*256+int(b)]
		for _, id := range a.out[s] {
			dst = append(dst, Hit{int(id), i + 1 - len(lits[id])})
		}
	}
	return dst
}
