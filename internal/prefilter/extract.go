package prefilter

import (
	"slices"
	"sort"

	"repro/internal/syntax"
)

// Extraction caps. A required set bigger than maxLits stops paying for
// itself in the verify stage; literals longer than maxLitLen gain
// nothing (the shift stage keys on a prefix block anyway); classes
// wider than classCap explode the cross-products that enumerate them.
const (
	maxLits    = 64
	maxLitLen  = 16
	classCap   = 4
	expandCap  = 2048 // NumPositions bound for ExpandRepeats pre-pass
	maxWindow  = 4096 // beyond this, windows stop being windows
	minUseful  = 2    // single-byte literals must pass selectiveByte
)

// Rule is the per-rule extraction result the matcher and the shard
// planner consume.
type Rule struct {
	// Lits is the required-literal set: every input matched by the rule
	// contains at least one member as a substring. nil means no
	// selective set could be extracted — the rule is uncovered and must
	// be scanned in full.
	Lits []string
	// MaxLen bounds the length of the shortest occurrence inside any
	// match of the (anchor-stripped) pattern; -1 when unbounded. Every
	// matching input contains an occurrence no longer than MaxLen (an
	// unbounded repetition at an unanchored edge of the pattern shrinks
	// to its minimum count — a prefix or suffix of the repeated run is
	// itself a contiguous occurrence), and that occurrence, containing
	// a length-l literal hit at position p, lies inside
	// [p+l-MaxLen, p+MaxLen].
	MaxLen int
	// Window reports that candidate-window scanning is sound and
	// bounded for this rule under search semantics: covered, unanchored
	// on both sides, and MaxLen finite.
	Window bool
	// Prefix reports that under search semantics the rule's verdict
	// depends only on the first MaxLen input bytes: begin-anchored (the
	// occurrence starts at byte 0), not end-anchored (the trailing .*
	// bracket makes the verdict monotone in the prefix length), MaxLen
	// finite. Prefix rules need no literals — the bounded prefix scan
	// itself is the filter.
	Prefix bool
}

// Covered reports whether the rule has a required-literal set.
func (r Rule) Covered() bool { return r.Lits != nil }

// Extract analyzes one parsed rule. node is the rule as parsed —
// before any search bracketing (the implicit .* brackets would make
// every required set empty). search selects substring-search
// semantics; whole-input rules are gateable but never windowed (the
// match is the entire input, so there is nothing to window).
func Extract(node *syntax.Node, search bool) Rule {
	stripped, begin, end := syntax.StripAnchors(node)
	walk := stripped
	if walk.NumPositions() <= expandCap {
		walk = syntax.ExpandRepeats(walk)
	}
	v := analyze(walk)
	// Edge shrinking is sound exactly where no anchor pins the
	// occurrence: a begin anchor forbids dropping leading repetitions
	// (the occurrence must keep starting at byte 0), an end anchor
	// forbids dropping trailing ones.
	r := Rule{Lits: requiredSet(v), MaxLen: matchMaxLen(stripped, !begin, !end)}
	bounded := r.MaxLen >= 0 && r.MaxLen <= maxWindow
	r.Window = search && r.Lits != nil && !begin && !end && bounded
	r.Prefix = search && begin && !end && bounded
	return r
}

// lang is the analysis value for a subtree: a set of strings plus an
// exactness bit. exact means lits enumerates the subtree's language
// completely (so it can be cross-multiplied with a neighbor); inexact
// means lits is merely a required set — every word of the language
// contains some member. lits == nil is ⊤: nothing is known.
type lang struct {
	lits  []string
	exact bool
}

func top() lang { return lang{} }

// asRequired downgrades a value to a plain required set, which is what
// one-or-more repetition preserves (every repetition contains a first
// iteration). A set containing "" requires nothing.
func asRequired(v lang) lang {
	if v.lits == nil || slices.Contains(v.lits, "") {
		return top()
	}
	return lang{lits: v.lits}
}

func analyze(n *syntax.Node) lang {
	switch n.Op {
	case syntax.OpEmpty, syntax.OpAnchor:
		return lang{exact: true, lits: []string{""}}
	case syntax.OpClass:
		bs := n.Set.Bytes()
		if len(bs) == 0 || len(bs) > classCap {
			return top()
		}
		lits := make([]string, len(bs))
		for i, b := range bs {
			lits[i] = string([]byte{b})
		}
		return lang{exact: true, lits: lits}
	case syntax.OpConcat:
		return analyzeConcat(n.Sub)
	case syntax.OpAlt:
		return analyzeAlt(n.Sub)
	case syntax.OpQuest:
		v := analyze(n.Sub[0])
		if v.exact && len(v.lits) < maxLits {
			return lang{exact: true, lits: append(v.lits[:len(v.lits):len(v.lits)], "")}
		}
		return top()
	case syntax.OpPlus:
		return asRequired(analyze(n.Sub[0]))
	case syntax.OpRepeat:
		// Usually gone after ExpandRepeats; kept for trees too large to
		// expand. x{min≥1,…} inherits x's required set.
		if n.Min >= 1 {
			return asRequired(analyze(n.Sub[0]))
		}
		return top()
	}
	// OpStar, OpNone, and anything unknown: no required literal.
	return top()
}

// analyzeConcat folds a factor sequence. Consecutive exact factors are
// cross-multiplied into an exact run; a non-exact factor closes the
// run, turning it into a required-set candidate (a run covers a
// contiguous factor segment, so every word of the concat contains one
// of its strings). The best candidate — or, when no factor broke
// exactness, the whole exact product — wins.
func analyzeConcat(subs []*syntax.Node) lang {
	var best []string
	run := []string{""}
	wholeExact := true
	closeRun := func() {
		best = better(best, run)
		run = []string{""}
	}
	for _, sub := range subs {
		v := analyze(sub)
		if v.exact {
			if cross, ok := crossCapped(run, v.lits); ok {
				run = cross
				continue
			}
			// Product too large to track exactly: bank the run so far
			// and restart from this factor alone.
			closeRun()
			wholeExact = false
			run = v.lits
			continue
		}
		closeRun()
		wholeExact = false
		if v.lits != nil {
			best = better(best, v.lits)
		}
	}
	if wholeExact {
		return lang{exact: true, lits: run}
	}
	closeRun()
	return lang{lits: best}
}

// analyzeAlt unions branch requirements: a word of the alternation is a
// word of some branch, so the union of per-branch required sets is
// required — provided every branch contributed one. Over-cap unions
// are truncated member-wise (a prefix of a required string is still
// required) before giving up.
func analyzeAlt(subs []*syntax.Node) lang {
	allExact := true
	var merged []string
	for _, sub := range subs {
		v := analyze(sub)
		if v.lits == nil {
			return top()
		}
		merged = append(merged, v.lits...)
		allExact = allExact && v.exact
	}
	if len(dedup(merged)) > maxLits {
		merged = shrinkToCap(merged)
		allExact = false
	}
	if merged == nil {
		return top()
	}
	return lang{lits: merged, exact: allExact}
}

// crossCapped concatenates every pair, refusing (ok=false) when the
// product leaves the caps: members longer than maxLitLen cannot be
// extended exactly, and more than maxLits members cannot be tracked.
func crossCapped(a, b []string) ([]string, bool) {
	if len(a)*len(b) > maxLits {
		return nil, false
	}
	for _, x := range a {
		if len(x) >= maxLitLen {
			return nil, false
		}
	}
	out := make([]string, 0, len(a)*len(b))
	for _, x := range a {
		for _, y := range b {
			s := x + y
			if len(s) > maxLitLen {
				s = s[:maxLitLen]
			}
			out = append(out, s)
		}
	}
	out = dedup(out)
	if len(out) > maxLits {
		return nil, false
	}
	return out, true
}

// shrinkToCap truncates all members to the longest shared length that
// brings the deduplicated set under maxLits, nil when even length-1
// prefixes don't fit.
func shrinkToCap(lits []string) []string {
	for k := maxLitLen; k >= 1; k-- {
		cut := make([]string, len(lits))
		for i, s := range lits {
			if len(s) > k {
				s = s[:k]
			}
			cut[i] = s
		}
		cut = dedup(cut)
		if len(cut) <= maxLits {
			return cut
		}
	}
	return nil
}

// better picks the more selective required-set candidate: longer
// minimum member first, then fewer members. Sets containing "" (or
// empty/nil sets) require nothing and always lose.
func better(a, b []string) []string {
	sa, oka := score(a)
	sb, okb := score(b)
	switch {
	case !okb:
		return a
	case !oka:
		return b
	case sb.minLen != sa.minLen:
		if sb.minLen > sa.minLen {
			return b
		}
		return a
	case sb.n < sa.n:
		return b
	}
	return a
}

type setScore struct{ minLen, n int }

func score(lits []string) (setScore, bool) {
	if len(lits) == 0 {
		return setScore{}, false
	}
	s := setScore{minLen: maxLitLen + 1, n: len(lits)}
	for _, l := range lits {
		if len(l) == 0 {
			return setScore{}, false
		}
		if len(l) < s.minLen {
			s.minLen = len(l)
		}
	}
	return s, true
}

// requiredSet turns the analysis value into the final per-rule literal
// set: deduplicated, sorted, capped, and selective. A set with a ""
// member requires nothing; single-byte members must be uncommon bytes
// or the windows they open cover most of the input (the low-selectivity
// pessimization the stats are there to reveal — see the engine README).
func requiredSet(v lang) []string {
	if v.lits == nil || len(v.lits) == 0 {
		return nil
	}
	lits := dedup(append([]string(nil), v.lits...))
	if len(lits) > maxLits {
		lits = shrinkToCap(lits)
		if lits == nil {
			return nil
		}
	}
	for _, l := range lits {
		if len(l) == 0 {
			return nil
		}
		if len(l) < minUseful && !selectiveByte(l[0]) {
			return nil
		}
	}
	return lits
}

// selectiveByte reports whether a single-byte literal is worth
// filtering on: bytes common in text-ish traffic (letters, digits,
// whitespace, everyday punctuation) open windows around most of the
// input and pessimize the scan; control and high bytes (NOP sleds,
// NULs) are rare and filter well.
func selectiveByte(b byte) bool {
	switch {
	case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9':
		return false
	case b == ' ', b == '\t', b == '\r', b == '\n':
		return false
	}
	switch b {
	case '.', ',', ':', ';', '/', '-', '_', '=', '?', '&', '%', '+',
		'\'', '"', '(', ')', '<', '>', '*', '#', '@', '!', '[', ']':
		return false
	}
	return true
}

func dedup(lits []string) []string {
	sort.Strings(lits)
	return slices.Compact(lits)
}

// matchMaxLen bounds the length of the shortest occurrence contained in
// any word the subtree matches, -1 when unbounded. lead/trail mark that
// the subtree sits at an unanchored leading/trailing edge of the whole
// pattern, where an unbounded repetition shrinks to its minimum count:
// if w = x₁…x_k·b matches x{n,}·b, the contiguous suffix x_{k−n+1}…x_k·b
// matches x{n}·b ⊆ x{n,}·b (symmetrically for a trailing run), so every
// match contains an occurrence that keeps only n copies of an edge run.
// Internal repetitions cannot shrink — dropping middle copies is not a
// substring — and stay unbounded.
func matchMaxLen(n *syntax.Node, lead, trail bool) int {
	switch n.Op {
	case syntax.OpNone, syntax.OpEmpty, syntax.OpAnchor:
		return 0
	case syntax.OpClass:
		return 1
	case syntax.OpConcat:
		sum := 0
		for i, sub := range n.Sub {
			m := matchMaxLen(sub, lead && i == 0, trail && i == len(n.Sub)-1)
			if m < 0 {
				return -1
			}
			sum += m
			if sum > maxWindow+1 {
				return maxWindow + 1 // saturate: already too wide to window
			}
		}
		return sum
	case syntax.OpAlt:
		max := 0
		for _, sub := range n.Sub {
			m := matchMaxLen(sub, lead, trail)
			if m < 0 {
				return -1
			}
			if m > max {
				max = m
			}
		}
		return max
	case syntax.OpQuest:
		return matchMaxLen(n.Sub[0], lead, trail)
	case syntax.OpStar:
		if matchMaxLen(n.Sub[0], false, false) == 0 {
			return 0
		}
		if lead || trail {
			return 0 // edge run shrinks to zero copies
		}
		return -1
	case syntax.OpPlus:
		m := matchMaxLen(n.Sub[0], lead, trail)
		if m == 0 {
			return 0
		}
		if (lead || trail) && m > 0 {
			return m // edge run shrinks to one copy
		}
		return -1
	case syntax.OpRepeat:
		m := matchMaxLen(n.Sub[0], false, false)
		if m == 0 {
			return 0
		}
		if m < 0 {
			return -1
		}
		count := n.Max
		if count < 0 {
			if !lead && !trail {
				return -1
			}
			count = n.Min // x{n,} at an edge shrinks to n copies
		}
		if prod := m * count; prod <= maxWindow+1 {
			return prod
		}
		return maxWindow + 1
	}
	return -1
}
