// Package prefilter extracts required-literal sets from rule syntax
// trees and matches them with a multi-literal cascade, so a rule-set
// scan can run the combined D-SFA only near positions where some rule
// could possibly match.
//
// The contract throughout is *soundness*: a literal set for a rule is
// required — every input the rule matches contains at least one member
// — so skipping regions with no literal hit can never lose a verdict.
// Rules whose AST defeats extraction are flagged uncovered and scanned
// in full; the cascade is an optimization, never a semantics change.
//
// # Key types
//
// [Extract] walks one rule's syntax tree and returns a [Rule]: the
// required literal set, a classification ([Rule.Class] — window,
// prefix, gate, or uncovered), and a shrink-aware match bound (an
// unbounded repetition at an unanchored pattern edge shrinks to its
// minimum count, because a contiguous slice of the repeated run is
// itself an occurrence). [NewMatcher] builds the multi-literal searcher
// for a shard's census, selecting one of five stages by literal shape:
// memchr, a 256-entry byte table, Boyer-Moore-Horspool, a Wu-Manber
// style shift table, or byte-class-compressed Aho-Corasick. Hits map
// back to the witnessing rules so a candidate window only grows the
// shard that needs it.
//
// # Invariants
//
// Extraction is conservative in the safe direction: when in doubt
// (wide classes, nullable subtrees, literal sets past the caps) it
// degrades the rule's class, never narrows the literal set below
// "required". The matcher reports a superset of true literal
// occurrences (stages may over-report across chunk boundaries); callers
// treat hits as candidates to verify with the automaton, never as
// verdicts. internal/multi segregates the classes into separate shards
// and drives the cascade at scan and stream time.
package prefilter
