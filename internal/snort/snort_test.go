package snort

import (
	"testing"

	"repro/internal/dfa"
	"repro/internal/syntax"
)

func TestCuratedAllParse(t *testing.T) {
	for _, rule := range Curated() {
		if _, err := syntax.Parse(rule.Pattern, rule.Flags); err != nil {
			t.Errorf("curated rule %d %q does not parse: %v", rule.ID, rule.Pattern, err)
		}
		if rule.Category == "" {
			t.Errorf("rule %d has no category", rule.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(500, 42)
	b := Generate(500, 42)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("wrong corpus size %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rule %d differs between identical seeds", i)
		}
	}
	c := Generate(500, 43)
	same := 0
	for i := range a {
		if a[i].Pattern == c[i].Pattern {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGenerateAllParse(t *testing.T) {
	for _, rule := range Generate(1500, 7) {
		if _, err := syntax.Parse(rule.Pattern, rule.Flags); err != nil {
			t.Errorf("generated rule %d (%s) %q does not parse: %v",
				rule.ID, rule.Category, rule.Pattern, err)
		}
	}
}

func TestGenerateSmallerThanCurated(t *testing.T) {
	rules := Generate(5, 1)
	if len(rules) != 5 {
		t.Fatalf("got %d rules", len(rules))
	}
}

func TestCategoryMix(t *testing.T) {
	rules := Generate(3000, 11)
	counts := map[string]int{}
	for _, r := range rules[len(Curated()):] {
		counts[r.Category]++
	}
	total := 3000 - len(Curated())
	// dotchain must exist but stay a small minority (the paper's Fig. 3
	// tail: 1.4% over-square, 6/20312 over-cube).
	dc := counts["dotchain"]
	if dc == 0 {
		t.Error("no dotchain rules generated")
	}
	if dc > total/10 {
		t.Errorf("dotchain fraction too high: %d/%d", dc, total)
	}
	for _, cat := range []string{"uri", "header", "keyword", "payload", "counter", "alt"} {
		if counts[cat] == 0 {
			t.Errorf("category %s missing from mix", cat)
		}
	}
}

// TestCorpusCompilable compiles a sample through the full pipeline with
// the paper's 1000-state DFA cap, checking that an overwhelming majority
// fits (the paper kept 20 312 of ~24 000).
func TestCorpusCompilable(t *testing.T) {
	rules := Generate(300, 123)
	ok := 0
	for _, rule := range rules {
		node, err := syntax.Parse(rule.Pattern, rule.Flags)
		if err != nil {
			t.Fatalf("rule %d: %v", rule.ID, err)
		}
		if _, err := dfa.Compile(node, 1000); err == nil {
			ok++
		}
	}
	if ok < 270 {
		t.Errorf("only %d/300 rules fit the 1000-state cap", ok)
	}
}
