// Package snort provides the ruleset workload for the Fig. 3 size study.
//
// The paper measured 20 312 pcre patterns extracted from the SNORT
// ruleset snapshot snortrules-snapshot-2940 (03 Feb 2013). That snapshot
// is a registration-gated download and is not redistributable, so this
// package substitutes a synthetic corpus with the same structural mix
// (see DESIGN.md §5): anchored URI paths, literal payload fragments with
// hex escapes, protocol keyword alternations, character-class runs with
// bounded counters, and a small admixture of `.*`-chained patterns — the
// family the paper singles out as the only source of over-cubic D-SFA
// growth. A curated set of hand-written realistic rules seeds the corpus;
// the generator extends it deterministically from a seed.
package snort

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

// Rule is one synthetic detection pattern.
type Rule struct {
	ID       int
	Pattern  string       // regex source (no /…/ delimiters)
	Flags    syntax.Flags // pcre modifiers
	Category string       // generator family, for reporting
}

// Curated returns the hand-written core of the corpus: patterns shaped
// like real SNORT web/protocol rules. They all parse with this module's
// parser and all have modest DFAs.
func Curated() []Rule {
	patterns := []struct {
		p   string
		f   syntax.Flags
		cat string
	}{
		{`^GET /index\.php\?id=\d{1,6}`, 0, "uri"},
		{`^POST /cgi-bin/[a-z]{2,12}\.cgi`, 0, "uri"},
		{`^HEAD /admin/[a-z_]{1,16}\.asp`, 0, "uri"},
		{`^/scripts/\.\./\.\./winnt/system32/`, 0, "uri"},
		{`^/phpmyadmin/index\.php`, syntax.FoldCase, "uri"},
		{`^/wp-login\.php\?action=register`, 0, "uri"},
		{`^/etc/passwd`, 0, "uri"},
		{`^/proc/self/environ`, 0, "uri"},
		{`User-Agent\x3a [A-Za-z0-9 /\.;\)\(-]{1,64}MSIE`, 0, "header"},
		{`Host\x3a [a-z0-9\.-]{4,40}\x0d\x0a`, 0, "header"},
		{`Content-Length\x3a \d{7,}`, 0, "header"},
		{`Authorization\x3a Basic [A-Za-z0-9=\+/]{4,128}`, 0, "header"},
		{`Cookie\x3a [^\x0d\x0a]{128,256}`, 0, "header"},
		{`X-Forwarded-For\x3a [0-9\.,' ]{1,64}`, 0, "header"},
		{`(GET|POST|HEAD|PUT|DELETE|TRACE) `, 0, "alt"},
		{`(admin|root|guest)\x3a\x3a`, 0, "alt"},
		{`(cmd|command)\.exe`, syntax.FoldCase, "alt"},
		{`(select|union|insert|update)\x20`, syntax.FoldCase, "alt"},
		{`(wget|curl|fetch) http`, 0, "alt"},
		{`\x90{8,32}`, 0, "payload"},
		{`\x00\x01\x86\xa0`, 0, "payload"},
		{`\xff\xfe\x00\x00MZ`, 0, "payload"},
		{`\x7fELF[\x01\x02]`, 0, "payload"},
		{`PK\x03\x04`, 0, "payload"},
		{`%u9090%u6858`, 0, "payload"},
		{`\xeb[\x00-\xff]\x5e`, 0, "payload"},
		{`/bin/sh\x00`, 0, "payload"},
		{`\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}`, 0, "counter"},
		{`[0-9a-f]{32}`, 0, "counter"},
		{`A{100,}`, 0, "counter"},
		{`(\.\./){3,8}`, 0, "counter"},
		{`[%]{2}[0-9a-f]{2}[%]{2}[0-9a-f]{2}`, 0, "counter"},
		{`=[A-Za-z0-9\+/]{64}`, 0, "counter"},
		{`javascript\x3a`, syntax.FoldCase, "keyword"},
		{`eval\(unescape\(`, 0, "keyword"},
		{`document\.cookie`, 0, "keyword"},
		{`xp_cmdshell`, syntax.FoldCase, "keyword"},
		{`sc\.exe create`, 0, "keyword"},
		{`nc -l -p \d{2,5}`, 0, "keyword"},
		{`USER [a-z]{1,16}\x0d\x0aPASS `, 0, "keyword"},
		{`SITE EXEC`, syntax.FoldCase, "keyword"},
		{`\.\.%c0%af`, 0, "keyword"},
		{`<script[^>]{0,64}>`, syntax.FoldCase, "keyword"},
		{`onload=[a-z]{1,24}\(`, syntax.FoldCase, "keyword"},
		{`union.{1,32}select`, syntax.FoldCase | syntax.DotAll, "dotchain"},
		{`.*AUTH.*INFO`, syntax.DotAll, "dotchain"},
		{`.*USER.*PASS.*LIST`, syntax.DotAll, "dotchain"},
		{`.*(T.*Y.*P.*P.*R.*O.*M.*P.*T)`, syntax.DotAll, "dotchain"},
		{`.*%n.*%n`, syntax.DotAll, "dotchain"},
		{`filename=[^\x0d\x0a]{1,64}\.(exe|scr|pif|bat)`, 0, "mixed"},
		{`name\x3d\x22[a-z]{1,12}\x22\x3b`, 0, "mixed"},
		{`[\x80-\xff]{16,}`, 0, "mixed"},
		{`(\x0d\x0a){2}[\x00-\x08]{4,}`, 0, "mixed"},
		{`id=[0-9]{1,8}('|%27)`, 0, "mixed"},
		{`ping -[a-z] \d{3,5}`, 0, "mixed"},
		{`open\x20\d{1,3}\.\d{1,3}`, 0, "mixed"},
		{`RETR [a-zA-Z0-9_\.-]{1,32}\x0d`, 0, "mixed"},
		{`MAIL FROM\x3a\x20<[^>]{64,}`, syntax.FoldCase, "mixed"},
		{`EXPN (root|decode)`, 0, "mixed"},
		{`TRACE \x2f HTTP`, 0, "mixed"},
	}
	rules := make([]Rule, len(patterns))
	for i, p := range patterns {
		rules[i] = Rule{ID: i, Pattern: p.p, Flags: p.f, Category: p.cat}
	}
	return rules
}

// ScanSample returns up to n curated rules for the multi-pattern scan
// workload (the combined/sharded RuleSet engines, their oracle
// cross-checks, and the harness throughput table). Rules are filtered
// the way the paper filters its SNORT corpus (Sect. VI-A skips DFAs over
// 1000 states): each rule is bracketed for substring search — the scan
// workload's semantics — and kept only when its DFA stays under
// scanSampleDFACap. That drops the "dotchain" family and counted-window
// rules like Cookie\x3a [^\x0d\x0a]{128,256}, whose window class
// contains its own trigger so subset construction explodes
// exponentially; such rules need the lazy engine, not an eager combined
// automaton.
func ScanSample(n int) []Rule {
	sample := scanSampleOnce()
	if n > len(sample) {
		n = len(sample)
	}
	return sample[:n]
}

// scanSampleDFACap mirrors the paper's 1000-state SNORT filter.
const scanSampleDFACap = 1000

// scanSampleSFACap drops rules whose own D-SFA explodes: they would
// stall both the isolated oracle and the planner's dedicated-shard
// fallback, neither of which caps a lone rule.
const scanSampleSFACap = 4096

// scanSampleOnce computes (once — the capped dry runs cost real time)
// the filtered curated sample.
var scanSampleOnce = sync.OnceValue(func() []Rule {
	var out []Rule
	for _, r := range Curated() {
		if scannable(r) {
			out = append(out, r)
		}
	}
	return out
})

// scannable reports whether the rule's search-bracketed automata stay
// under the sample caps. The bracketing is the same syntax helper the
// public WithSearch option uses, so the filter judges exactly the
// automata a scanning RuleSet will build.
func scannable(r Rule) bool {
	node, err := syntax.Parse(r.Pattern, r.Flags)
	if err != nil {
		return false
	}
	node = syntax.BracketForSearch(node)
	a, err := nfa.Glushkov(node)
	if err != nil {
		return false
	}
	d, err := dfa.Determinize(a, 4*scanSampleDFACap)
	if err != nil {
		return false
	}
	m := dfa.Minimize(d)
	if m.LiveSize() > scanSampleDFACap {
		return false
	}
	_, err = core.BuildDSFA(m, scanSampleSFACap)
	return err == nil
}

// Generate returns a deterministic corpus of n rules: the curated set
// (repeated never) followed by generated rules drawn from the category
// mix below. The same (n, seed) always yields the same corpus.
//
// Category weights approximate the structural mix of SNORT web rules;
// "dotchain" is kept at a few percent, matching the paper's observation
// that only 1.4% of rules exceed |D|² and 6 of 20 312 exceed |D|³.
func Generate(n int, seed int64) []Rule {
	rules := Curated()
	if n <= len(rules) {
		return rules[:n]
	}
	r := rand.New(rand.NewSource(seed))
	g := &generator{r: r}
	for len(rules) < n {
		cat := g.pickCategory()
		rules = append(rules, Rule{
			ID:       len(rules),
			Pattern:  g.pattern(cat),
			Flags:    g.flags(cat),
			Category: cat,
		})
	}
	return rules
}

type generator struct {
	r *rand.Rand
}

// pickCategory draws from the weighted mix.
func (g *generator) pickCategory() string {
	x := g.r.Intn(100)
	switch {
	case x < 22:
		return "uri"
	case x < 40:
		return "header"
	case x < 55:
		return "keyword"
	case x < 67:
		return "payload"
	case x < 79:
		return "counter"
	case x < 89:
		return "alt"
	case x < 96:
		return "mixed"
	default:
		return "dotchain" // ~4%
	}
}

func (g *generator) flags(cat string) syntax.Flags {
	var f syntax.Flags
	if cat == "dotchain" {
		f |= syntax.DotAll
	}
	if g.r.Intn(5) == 0 {
		f |= syntax.FoldCase
	}
	return f
}

var (
	words = []string{
		"admin", "login", "index", "shell", "update", "config", "setup",
		"search", "view", "download", "upload", "api", "auth", "token",
		"passwd", "exec", "query", "report", "debug", "test", "cart",
		"payment", "session", "user", "account", "backup", "install",
	}
	exts     = []string{"php", "asp", "cgi", "jsp", "exe", "dll", "pl", "py"}
	headers  = []string{"User-Agent", "Host", "Referer", "Cookie", "Accept", "Content-Type"}
	keywords = []string{"SELECT", "UNION", "INSERT", "DROP", "EXEC", "PASS", "USER", "AUTH", "LIST", "RETR", "SITE", "EXPN"}
)

func (g *generator) word() string { return words[g.r.Intn(len(words))] }
func (g *generator) ext() string  { return exts[g.r.Intn(len(exts))] }
func (g *generator) kw() string   { return keywords[g.r.Intn(len(keywords))] }

// pattern builds one rule of the given family.
func (g *generator) pattern(cat string) string {
	r := g.r
	switch cat {
	case "uri":
		p := "^/" + g.word()
		for i, k := 0, r.Intn(3); i < k; i++ {
			p += "/" + g.word()
		}
		p += `\.` + g.ext()
		if r.Intn(2) == 0 {
			p += `\?` + g.word() + `=[a-z0-9]{1,` + itoa(1+r.Intn(16)) + `}`
		}
		return p
	case "header":
		h := headers[r.Intn(len(headers))]
		switch r.Intn(3) {
		case 0:
			return h + `\x3a [^\x0d\x0a]{` + itoa(16+r.Intn(240)) + `,}`
		case 1:
			return h + `\x3a [A-Za-z0-9 /\.;-]{1,` + itoa(8+r.Intn(120)) + `}` + g.word()
		default:
			return h + `\x3a \d{` + itoa(1+r.Intn(6)) + `,` + itoa(7+r.Intn(6)) + `}`
		}
	case "keyword":
		p := g.kw()
		if r.Intn(2) == 0 {
			p += `\x20` + g.word()
		}
		if r.Intn(3) == 0 {
			p += `\x3a`
		}
		return p
	case "payload":
		k := 2 + r.Intn(6)
		p := ""
		for i := 0; i < k; i++ {
			p += fmt.Sprintf(`\x%02x`, r.Intn(256))
		}
		if r.Intn(2) == 0 {
			p += `{` + itoa(1+r.Intn(4)) + `,` + itoa(8+r.Intn(24)) + `}`
		}
		return p
	case "counter":
		switch r.Intn(4) {
		case 0:
			return `[0-9a-f]{` + itoa(8+r.Intn(56)) + `}`
		case 1:
			return `\d{1,3}(\.\d{1,3}){` + itoa(1+r.Intn(3)) + `}`
		case 2:
			return `[A-Za-z0-9\+/]{` + itoa(16+r.Intn(112)) + `}=`
		default:
			return `(` + g.word() + `){` + itoa(2+r.Intn(6)) + `,}`
		}
	case "alt":
		k := 2 + r.Intn(4)
		p := "(" + g.word()
		for i := 1; i < k; i++ {
			p += "|" + g.word()
		}
		return p + ") "
	case "dotchain":
		// The pathological family: several .* in sequence (Sect. VI-A).
		k := 2 + r.Intn(4)
		p := g.kw()
		for i := 0; i < k; i++ {
			p += ".*" + g.kw()
		}
		return p
	default: // mixed
		return g.word() + `=[^\x0d\x0a]{1,` + itoa(16+r.Intn(48)) + `}\.(` +
			g.ext() + `|` + g.ext() + `)`
	}
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
