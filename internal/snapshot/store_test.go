package snapshot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testKey builds a valid-looking content key.
func testKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func openTestStore(t *testing.T) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func put(t *testing.T, st *Store, key, content string) {
	t.Helper()
	if err := st.Store(key, func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, st *Store, key string) (string, bool) {
	t.Helper()
	rc, ok := st.Load(key)
	if !ok {
		return "", false
	}
	defer rc.Close()
	b, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), true
}

func TestStoreHitMiss(t *testing.T) {
	st := openTestStore(t)
	if _, ok := get(t, st, testKey(0)); ok {
		t.Fatal("empty store reported a hit")
	}
	put(t, st, testKey(0), "hello")
	if got, ok := get(t, st, testKey(0)); !ok || got != "hello" {
		t.Fatalf("load = %q, %v", got, ok)
	}
	stats := st.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Stores != 1 || stats.Entries != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestStoreRejectsHostileKeys(t *testing.T) {
	st := openTestStore(t)
	for _, key := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("a", 20) + "/x", strings.Repeat("A", 64), "0123456789abcdeg" + strings.Repeat("0", 48)} {
		if err := st.Store(key, func(w io.Writer) error { return nil }); err == nil {
			t.Fatalf("store accepted key %q", key)
		}
		if _, ok := st.Load(key); ok {
			t.Fatalf("load accepted key %q", key)
		}
	}
}

// TestStoreSameDirSharesInstance: counters must be shared across all
// openers of one directory (the /metrics endpoint reads what builds bump).
func TestStoreSameDirSharesInstance(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("two opens of one dir returned distinct stores")
	}
}

// TestStoreIdempotentPut: re-storing an existing key is a no-op (content
// addressing), not an error or a rewrite.
func TestStoreIdempotentPut(t *testing.T) {
	st := openTestStore(t)
	put(t, st, testKey(1), "first")
	put(t, st, testKey(1), "second-should-be-ignored")
	if got, _ := get(t, st, testKey(1)); got != "first" {
		t.Fatalf("content rewritten to %q", got)
	}
	if s := st.Stats(); s.Stores != 1 {
		t.Fatalf("stores = %d, want 1", s.Stores)
	}
}

// TestStoreFailedWriteLeavesNothing: a writer error must not leave a
// partial entry (or a stray temp file that Load could see).
func TestStoreFailedWriteLeavesNothing(t *testing.T) {
	st := openTestStore(t)
	err := st.Store(testKey(2), func(w io.Writer) error {
		io.WriteString(w, "partial")
		return fmt.Errorf("disk on fire")
	})
	if err == nil {
		t.Fatal("failed write reported success")
	}
	if _, ok := st.Load(testKey(2)); ok {
		t.Fatal("partial entry visible")
	}
	des, _ := os.ReadDir(st.Dir())
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".tmp") {
			t.Fatalf("stray temp file %s", de.Name())
		}
	}
}

// TestStoreEviction: overflowing maxBytes evicts oldest-first down to
// the cap; recently loaded entries survive.
func TestStoreEviction(t *testing.T) {
	st := openTestStore(t)
	st.SetMaxBytes(250)
	content := strings.Repeat("x", 100)
	for i := 0; i < 2; i++ {
		put(t, st, testKey(i), content)
		// Distinct mtimes so eviction order is deterministic.
		old := time.Now().Add(time.Duration(i-10) * time.Hour)
		os.Chtimes(filepath.Join(st.Dir(), testKey(i)+shardExt), old, old)
	}
	// Touch key 0 so key 1 is the eviction victim.
	if _, ok := get(t, st, testKey(0)); !ok {
		t.Fatal("miss before eviction")
	}
	put(t, st, testKey(2), content) // 300 bytes > 250 → evict oldest
	if _, ok := st.Load(testKey(1)); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := st.Load(testKey(0)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := st.Load(testKey(2)); !ok {
		t.Fatal("fresh entry evicted")
	}
	if s := st.Stats(); s.Evictions == 0 || s.Bytes > 250 {
		t.Fatalf("stats after eviction: %+v", s)
	}
}

// TestStoreConcurrent hammers one store from many goroutines (run under
// -race via `make race`): concurrent Stores of the same and different
// keys plus concurrent Loads must stay consistent — every successful
// Load returns the full content for its key.
func TestStoreConcurrent(t *testing.T) {
	st := openTestStore(t)
	const keys = 8
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w + i) % keys
				key := testKey(k)
				want := fmt.Sprintf("content-%03d", k)
				switch i % 3 {
				case 0:
					st.Store(key, func(wr io.Writer) error {
						_, err := io.WriteString(wr, want)
						return err
					})
				default:
					if got, ok := get(t, st, key); ok && got != want {
						t.Errorf("key %d: read %q", k, got)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s := st.Stats(); s.Errors != 0 {
		t.Fatalf("store errors under concurrency: %+v", s)
	}
}
