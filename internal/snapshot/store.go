// Package snapshot is the persistence subsystem for compiled rule sets:
// a content-addressed on-disk cache of combined-automaton shards, plus
// the storage conventions the rule-set snapshot files (sfa.(*RuleSet).Save)
// and the serving state directory (internal/serve.State) build on.
//
// The paper's Table III shows D-SFA construction dominates start-up —
// seconds for 10⁴–10⁶ states — and combined multi-pattern builds pay it
// once per shard. The Store turns that into an idempotent cost: a shard
// is addressed by the SHA-256 of its rule-membership multiset
// (multi.ShardKey), so no process ever needs to build the same shard
// twice — not this process (multi.Recompile's in-memory reuse), and not
// the next one (this package).
//
// See README.md in this directory for the wire format and versioning
// rules of the blobs the store holds.
package snapshot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// shardExt is the filename extension of cache entries. The name before
// it is the content key (64 hex characters for multi.ShardKey).
const shardExt = ".shard"

// DefaultMaxBytes bounds a store's on-disk footprint unless SetMaxBytes
// says otherwise: 1 GiB holds hundreds of production-sized shards.
const DefaultMaxBytes int64 = 1 << 30

// Store is a content-addressed blob cache rooted at one directory.
// Writes are atomic (temp file + rename), so concurrent processes can
// share a store; reads hand out plain *os.File readers. All methods are
// safe for concurrent use.
type Store struct {
	dir      string
	mu       sync.Mutex // serializes Store/evict scans
	maxBytes atomic.Int64

	hits, misses, stores, evictions, errors atomic.Int64
}

// stores memoizes OpenStore per cleaned path, so every opener of one
// directory shares one Store and its counters (the /metrics endpoint
// reads the same hit/miss numbers the builds bump).
var (
	storesMu sync.Mutex
	stores   = map[string]*Store{}
)

// OpenStore opens (creating if needed) the content-addressed store at
// dir. Opening the same directory again returns the same *Store.
func OpenStore(dir string) (*Store, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	storesMu.Lock()
	defer storesMu.Unlock()
	if st, ok := stores[abs]; ok {
		return st, nil
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	st := &Store{dir: abs}
	st.maxBytes.Store(DefaultMaxBytes)
	stores[abs] = st
	return st, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// SetMaxBytes bounds the store's on-disk footprint; the oldest entries
// (by access time, best-effort) are evicted when a Store overflows it.
// n <= 0 restores DefaultMaxBytes.
func (st *Store) SetMaxBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBytes
	}
	st.maxBytes.Store(n)
}

// validKey gatekeeps key-derived filenames: content keys are lowercase
// hex, and nothing else may reach the filesystem layer (a crafted key
// must not escape the store directory).
func validKey(key string) bool {
	if len(key) < 16 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key+shardExt)
}

// Load opens the blob stored for key. A hit refreshes the entry's
// timestamp (the eviction order), best-effort.
func (st *Store) Load(key string) (io.ReadCloser, bool) {
	if !validKey(key) {
		st.misses.Add(1)
		return nil, false
	}
	f, err := os.Open(st.path(key))
	if err != nil {
		st.misses.Add(1)
		return nil, false
	}
	st.hits.Add(1)
	now := time.Now()
	_ = os.Chtimes(st.path(key), now, now)
	return f, true
}

// Store writes the blob produced by write under key, atomically: the
// content goes to a temp file in the store directory and is renamed into
// place only after write returns and the file is synced. An existing
// entry short-circuits — content addressing makes rewrites pointless.
func (st *Store) Store(key string, write func(io.Writer) error) error {
	if !validKey(key) {
		st.errors.Add(1)
		return fmt.Errorf("snapshot: invalid content key %q", key)
	}
	if _, err := os.Stat(st.path(key)); err == nil {
		return nil // already present; same key ⇒ interchangeable content
	}
	err := func() error {
		f, err := os.CreateTemp(st.dir, "put-*"+shardExt+".tmp")
		if err != nil {
			return err
		}
		tmp := f.Name()
		defer os.Remove(tmp) // no-op after a successful rename
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, st.path(key))
	}()
	if err != nil {
		st.errors.Add(1)
		return fmt.Errorf("snapshot: storing %s: %w", key, err)
	}
	st.stores.Add(1)
	st.evict()
	return nil
}

// Delete removes the entry for key, if present (corrupt-entry cleanup).
func (st *Store) Delete(key string) {
	if validKey(key) {
		_ = os.Remove(st.path(key))
	}
}

// evict trims the store to maxBytes, oldest timestamp first.
func (st *Store) evict() {
	st.mu.Lock()
	defer st.mu.Unlock()
	entries, total := st.scan()
	max := st.maxBytes.Load()
	if total <= max {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	for _, e := range entries {
		if total <= max {
			break
		}
		if os.Remove(filepath.Join(st.dir, e.name)) == nil {
			total -= e.size
			st.evictions.Add(1)
		}
	}
}

type storeEntry struct {
	name  string
	size  int64
	mtime int64
}

// scan lists the store's entries with their sizes and timestamps.
func (st *Store) scan() ([]storeEntry, int64) {
	des, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, 0
	}
	var entries []storeEntry
	var total int64
	for _, de := range des {
		name := de.Name()
		if filepath.Ext(name) != shardExt {
			continue // temp files and strangers don't count or get evicted
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		entries = append(entries, storeEntry{name: name, size: info.Size(), mtime: info.ModTime().UnixNano()})
		total += info.Size()
	}
	return entries, total
}

// Stats is the store's observable state — the snapshot hit/miss counters
// the serving /metrics endpoint reports.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Errors    int64 `json:"errors"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Stats reports counters since process start plus the current on-disk
// footprint.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	entries, total := st.scan()
	st.mu.Unlock()
	return Stats{
		Hits:      st.hits.Load(),
		Misses:    st.misses.Load(),
		Stores:    st.stores.Load(),
		Evictions: st.evictions.Load(),
		Errors:    st.errors.Load(),
		Entries:   len(entries),
		Bytes:     total,
	}
}
