// Package analysis is the repo-local analyzer framework sfavet runs on.
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer with a Run function over a Pass — so the four sfavet
// analyzers could migrate to the upstream framework mechanically, but
// it is built entirely on the standard library: this module has no
// dependencies, and the linter keeps it that way.
//
// Two differences from upstream, both driven by what sfavet checks:
//
//   - Analyzers get an optional Collect phase that runs over every unit
//     of the module before any Run. The invariants sfavet enforces are
//     module-global ("this field is atomic *everywhere*", "this
//     function's parameter is borrowed *for all callers*"), so facts
//     must be gathered across packages first. Units are independent
//     type universes (see internal/lint/load), so collected facts are
//     keyed by strings, never go/types object identity.
//
//   - The annotation grammar (//sfa:... directives) is parsed here,
//     once, because every analyzer shares it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/load"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is the one-paragraph description `sfavet -help` prints.
	Doc string
	// Collect, if non-nil, runs over every unit before any Run call,
	// accumulating module-global facts. It must not report.
	Collect func(*Pass)
	// Run reports diagnostics for one unit.
	Run func(*Pass)
}

// A Pass hands one analysis unit to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the unit's import path, unbracketed ("repro/internal/obs"
	// even for the test variant).
	PkgPath string
	report  func(Diagnostic)
}

// A Diagnostic is one finding, resolved to a position.
type Diagnostic struct {
	Pos      token.Position `json:"position"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run drives analyzers over units: every analyzer's Collect over every
// unit first, then every Run. Diagnostics come back sorted by position.
func Run(units []*load.Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	passes := func(a *Analyzer, fn func(*Pass), reporting bool) {
		for _, u := range units {
			p := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				PkgPath:  u.Pkg.Path(),
			}
			if reporting {
				p.report = func(d Diagnostic) { diags = append(diags, d) }
			} else {
				p.report = func(Diagnostic) {
					panic("analysis: Collect phase must not report")
				}
			}
			fn(p)
		}
	}
	for _, a := range analyzers {
		if a.Collect != nil {
			passes(a, a.Collect, false)
		}
	}
	for _, a := range analyzers {
		passes(a, a.Run, true)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// WithStack walks every file, calling fn with each node and the stack
// of its ancestors (outermost first, not including n itself). If fn
// returns false the node's children are skipped.
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
				return true
			}
			return false
		})
	}
}

// --- the //sfa: directive grammar ------------------------------------------

// DirectivePrefix is the comment prefix all sfavet annotations share.
// A directive is a //-comment with no space after the slashes, in the
// Go directive convention: //sfa:name [args...].
const DirectivePrefix = "//sfa:"

// A Directive is one parsed //sfa: annotation.
type Directive struct {
	Name string // "noalloc", "spawner", "borrowed", "adopts", ...
	Args []string
	Pos  token.Pos
}

// parseDirectives extracts //sfa: directives from a comment group.
func parseDirectives(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		text, ok := strings.CutPrefix(c.Text, DirectivePrefix)
		if !ok {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		out = append(out, Directive{Name: fields[0], Args: fields[1:], Pos: c.Pos()})
	}
	return out
}

// FuncDirectives returns the //sfa: directives in fn's doc comment.
func FuncDirectives(fn *ast.FuncDecl) []Directive {
	return parseDirectives(fn.Doc)
}

// FuncDirective returns fn's directive named name, if present.
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	for _, d := range FuncDirectives(fn) {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// FieldDirective returns the directive named name attached to a struct
// field (doc comment above it or line comment after it), if present.
func FieldDirective(f *ast.Field, name string) (Directive, bool) {
	for _, g := range []*ast.CommentGroup{f.Doc, f.Comment} {
		for _, d := range parseDirectives(g) {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// LineDirectives indexes every //sfa: directive in a file by the source
// line it is on. An annotation that should waive a diagnostic on line N
// may sit at the end of line N or alone on line N-1; WaivedAt encodes
// that convention.
type LineDirectives struct {
	fset  *token.FileSet
	lines map[int][]Directive
}

// FileLineDirectives scans all comments of a file.
func FileLineDirectives(fset *token.FileSet, f *ast.File) *LineDirectives {
	ld := &LineDirectives{fset: fset, lines: map[int][]Directive{}}
	for _, g := range f.Comments {
		for _, d := range parseDirectives(g) {
			line := fset.Position(d.Pos).Line
			ld.lines[line] = append(ld.lines[line], d)
		}
	}
	return ld
}

// WaivedAt reports whether a directive named name is on pos's line or
// the line immediately above it.
func (ld *LineDirectives) WaivedAt(pos token.Pos, name string) bool {
	line := ld.fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range ld.lines[l] {
			if d.Name == name {
				return true
			}
		}
	}
	return false
}

// EnclosingFunc returns the innermost *ast.FuncDecl in stack.
func EnclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// RootIdent unwraps an expression to the identifier at its base:
// p, p[i], p[i:j], (*p), p.f, p.f[i].g all root at p. Returns nil if
// the base is not a plain identifier (a call result, a literal, ...).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// CalleeFunc resolves a call to the *types.Func it invokes (methods
// included), or nil for builtins, conversions, and indirect calls.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgCall reports whether call invokes pkgpath.name (a package-level
// function, matched by its package's path).
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgpath, name string) bool {
	f := CalleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgpath && f.Name() == name
}
