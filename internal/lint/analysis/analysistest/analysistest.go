// Package analysistest runs an analyzer over a directory of fixture
// files and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (which this
// module deliberately does not depend on).
//
// A fixture directory holds one Go package (ordinary .go files; the
// directory lives under testdata, so the surrounding module never
// compiles it). Expectations are trailing comments:
//
//	p := make([]int, n) // want `allocates`
//
// Each `-quoted or "-quoted string is a regular expression that must
// match the message of a diagnostic reported on that line; every
// diagnostic must be claimed by exactly one expectation and every
// expectation must claim at least one diagnostic. Fixtures may import
// the standard library (resolved from compiler export data); they
// cannot import each other.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// wantRE pulls the quoted expectation strings out of a // want comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// T is the slice of testing.T the harness needs; tests that want to
// assert on the harness itself (e.g. "this configuration reports
// nothing") can substitute a recorder.
type T interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
	Fatal(args ...any)
}

var _ T = (*testing.T)(nil)

// Run analyzes the fixture package in dir with a and reports any
// mismatch between diagnostics and // want expectations on t.
func Run(t T, dir string, a *analysis.Analyzer) {
	t.Helper()
	unit := loadFixture(t, dir)
	diags := analysis.Run([]*load.Unit{unit}, []*analysis.Analyzer{a})
	checkWants(t, unit, diags)
}

// loadFixture parses and type-checks one fixture directory.
func loadFixture(t T, dir string) *load.Unit {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("analysistest: parse %s: %v", e.Name(), err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	var importPaths []string
	for p := range imports {
		if p != "unsafe" {
			importPaths = append(importPaths, p)
		}
	}
	sort.Strings(importPaths)
	var imp types.ImporterFrom
	if len(importPaths) > 0 {
		imp, err = load.ExportImporter(fset, dir, importPaths...)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
	}
	u := &load.Unit{
		PkgPath: files[0].Name.Name,
		Files:   files,
		Fset:    fset,
		Info:    load.NewInfo(),
	}
	conf := types.Config{
		Importer: unsafeAware{imp},
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	pkg, _ := conf.Check(u.PkgPath, fset, files, u.Info)
	if pkg == nil {
		t.Fatalf("analysistest: fixture %s failed to type-check entirely", dir)
	}
	for _, err := range u.TypeErrors {
		t.Errorf("analysistest: fixture type error: %v", err)
	}
	u.Pkg = pkg
	return u
}

// unsafeAware resolves "unsafe" itself and delegates the rest.
type unsafeAware struct{ next types.ImporterFrom }

func (u unsafeAware) Import(path string) (*types.Package, error) {
	return u.ImportFrom(path, "", 0)
}

func (u unsafeAware) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.next.ImportFrom(path, dir, mode)
}

// expectation is one quoted pattern of a // want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkWants cross-matches diagnostics against expectations.
func checkWants(t T, u *load.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range u.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text, ok := strings.CutPrefix(strings.TrimPrefix(c.Text, "// "), "want ")
				if !ok {
					text, ok = strings.CutPrefix(strings.TrimPrefix(c.Text, "//"), "want ")
				}
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
