package a

import "sync/atomic"

// counters mixes function-style atomics (hits, misses), an explicitly
// marked field (gen), a wrapper-typed field (seq), and a plain field.
type counters struct {
	hits   int64
	misses int64
	// gen is only ever touched through aliased pointers the collector
	// cannot see, so it carries the explicit mark.
	gen   int64 //sfa:atomic
	seq   atomic.Uint64
	plain int64
}

// record is the discipline-defining use: addresses of hits and misses
// feed sync/atomic, which is what puts them in the atomic set.
func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
	atomic.StoreInt64(&c.misses, 0)
}

func (c *counters) load() int64 {
	return atomic.LoadInt64(&c.hits) + int64(c.seq.Load()) // wrapper method calls are fine
}

func (c *counters) torn() int64 {
	c.misses++ // want `plain access to atomic field a\.counters\.misses`
	x := c.hits // want `plain access to atomic field a\.counters\.hits`
	y := c.gen // want `plain access to atomic field a\.counters\.gen`
	c.plain = 7
	return x + y + c.plain
}

func escape(c *counters) *int64 {
	return &c.hits // want `plain access to atomic field a\.counters\.hits`
}

// fresh constructs an unpublished value: plain writes are safe and the
// waiver says so.
//
//sfa:atomicok
func fresh() *counters {
	c := &counters{}
	c.hits = 0
	c.gen = 1
	return c
}

func (c *counters) cas() bool {
	return atomic.CompareAndSwapInt64(&c.misses, 0, 1)
}

func (c *counters) loadSeq() uint64 {
	return c.seq.Load()
}
