package atomicfield_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata/atomic", atomicfield.New())
}
