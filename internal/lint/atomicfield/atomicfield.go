// Package atomicfield is the static twin of the race detector for the
// repo's atomic-access discipline: a struct field that is accessed
// through sync/atomic anywhere in the module must be accessed through
// sync/atomic everywhere in the module.
//
// The discipline matters because -race only catches the interleavings
// the tests happen to execute; a plain read of a counter the hot path
// updates atomically is a data race on every production scan whether or
// not a test provokes it, and a torn read of a generation pointer or a
// ring sequence word silently breaks verdict determinism.
//
// The analyzer works in two phases. Collect walks every unit of the
// module and records the "atomic fields": struct fields whose address
// is passed to a sync/atomic function (atomic.AddInt64(&s.n, 1), ...)
// plus fields explicitly marked with an //sfa:atomic comment (for
// fields the collector cannot see being atomic, e.g. ones only
// accessed through aliased slices). Run then flags every other plain
// selector access to those fields — reads, writes, compound
// assignments, address escapes — module-wide, tests included.
//
// Two accesses are always allowed: the address-of argument of a
// sync/atomic call itself, and method calls on fields of the sync/
// atomic wrapper types (atomic.Int64 and friends — their whole API is
// atomic). Functions that legitimately touch an atomic field plainly —
// constructors before the value is published, teardown after all
// goroutines are joined, snapshots under a write lock — carry the
// function-level waiver:
//
//	//sfa:atomicok — plain access to atomic fields is safe here; the
//	comment above the annotation must say why (not published yet,
//	post-join, lock held, ...).
//
// Fields of the sync/atomic wrapper types themselves need no tracking:
// their zero-method access discipline is enforced by the type system,
// and copying them is caught by go vet's copylocks (they embed
// noCopy).
package atomicfield

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// New returns a fresh analyzer instance (Collect state is per
// instance, so concurrent test runs do not share fact tables).
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "atomicfield",
		Doc: "a field accessed through sync/atomic anywhere must be accessed " +
			"through sync/atomic everywhere (waiver: //sfa:atomicok on the function)",
	}
	// atomic holds the field keys collected in phase one, mapped to a
	// human-readable description of why the field is atomic.
	atomic := map[string]string{}

	a.Collect = func(pass *analysis.Pass) {
		// Fields whose address feeds a sync/atomic call.
		analysis.WithStack(pass.Files, func(n ast.Node, _ []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			if sel := addrOfField(pass.Info, call.Args[0]); sel != nil {
				if key := fieldKey(pass, sel); key != "" {
					if _, dup := atomic[key]; !dup {
						atomic[key] = "passed to " + callName(call)
					}
				}
			}
			return true
		})
		// Fields marked //sfa:atomic by hand.
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if _, ok := analysis.FieldDirective(field, "atomic"); !ok {
						continue
					}
					for _, name := range field.Names {
						key := pass.Pkg.Path() + "." + ts.Name.Name + "." + name.Name
						atomic[key] = "marked //sfa:atomic"
					}
				}
				return true
			})
		}
	}

	a.Run = func(pass *analysis.Pass) {
		analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key := fieldKey(pass, sel)
			if key == "" {
				return true
			}
			why, tracked := atomic[key]
			if !tracked {
				return true
			}
			if allowedContext(pass.Info, stack) {
				return true
			}
			if fn := analysis.EnclosingFunc(stack); fn != nil {
				if _, ok := analysis.FuncDirective(fn, "atomicok"); ok {
					return true
				}
			}
			pass.Reportf(sel.Sel.Pos(),
				"plain access to atomic field %s (%s elsewhere); use sync/atomic or annotate the function //sfa:atomicok with a reason",
				key, why)
			return true
		})
	}
	return a
}

// isAtomicCall reports whether call invokes a sync/atomic package-level
// function.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" && f.Type().(*types.Signature).Recv() == nil
}

// callName renders "atomic.AddInt64" for diagnostics.
func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return "atomic." + sel.Sel.Name
	}
	return "a sync/atomic call"
}

// addrOfField returns the selector when arg has the shape &x.f with f a
// struct field.
func addrOfField(info *types.Info, arg ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "&" {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return sel
}

// fieldKey names a field selection stably across units:
// "pkgpath.StructName.field". Embedded promotions resolve to the
// declaring struct. Anonymous structs key by declaration position.
func fieldKey(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	obj := s.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	t := s.Recv()
	idx := s.Index()
	for i, k := range idx {
		t = deref(t)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		f := st.Field(k)
		if i == len(idx)-1 {
			if named, ok := t.(*types.Named); ok {
				return obj.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
			}
			// Anonymous struct: fall back to the declaration site.
			p := pass.Fset.Position(f.Pos())
			return obj.Pkg().Path() + "." + f.Name() + "@" + p.Filename
		}
		t = f.Type()
	}
	return ""
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// allowedContext reports whether the selector at the top of stack's
// walk is one of the two blessed shapes: the &x.f argument of a
// sync/atomic call, or the receiver of a method call (the sync/atomic
// wrapper types' API).
func allowedContext(info *types.Info, stack []ast.Node) bool {
	// Walk outward over parens.
	i := len(stack) - 1
	at := func(j int) ast.Node {
		if j < 0 {
			return nil
		}
		return stack[j]
	}
	for i >= 0 {
		if _, ok := at(i).(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	switch p := at(i).(type) {
	case *ast.UnaryExpr:
		if p.Op.String() != "&" {
			return false
		}
		// &x.f … inside a sync/atomic call?
		for j := i - 1; j >= 0; j-- {
			switch q := at(j).(type) {
			case *ast.ParenExpr:
				continue
			case *ast.CallExpr:
				return isAtomicCall(info, q)
			default:
				return false
			}
		}
	case *ast.SelectorExpr:
		// x.f.Method(...): allowed when f.Method resolves to a method
		// (the wrapper types); a field-of-field selection keeps its own
		// checking via its own fieldKey.
		if s, ok := info.Selections[p]; ok && s.Kind() == types.MethodVal {
			return true
		}
	}
	return false
}
