// Package load turns Go package patterns into type-checked analysis
// units without depending on golang.org/x/tools. It shells out to
// `go list -export -deps -test -json` once to learn the package graph
// and the compiler's export-data files, parses each in-module package's
// sources, and type-checks them with the standard library's gc importer
// reading imports from that export data. The result is exactly what the
// sfavet analyzers need: syntax trees plus full go/types information
// for every package (and test variant) in the module.
//
// Per package the go tool distinguishes the plain package, the
// augmented test variant ("p [p.test]", plain files + in-package
// _test.go files), and the external test package ("p_test [p.test]").
// Load returns the augmented variant where one exists and the plain
// package otherwise, plus any external test packages — so every
// declaration in the module is analyzed exactly once.
//
// Imports always resolve through export data (never through another
// unit's type-checked objects), so units are independent type
// universes; analyzers that correlate facts across packages key them by
// (package path, identifier) strings, not go/types object identity.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	ForTest    string // set on test variants: the package under test
	Export     string // export-data file (from -export)
	GoFiles    []string
	CgoFiles   []string
	TestGoFiles []string
	ImportMap  map[string]string // source import path → resolved path
	Module     *struct{ Path, Dir string }
	Standard   bool
}

// Unit is one type-checked collection of files, ready for analysis.
type Unit struct {
	// PkgPath is the unit's import path. Test variants carry the go
	// tool's bracketed form ("p [p.test]", "p_test [p.test]").
	PkgPath string
	// Pkg is the type-checked package (path is the unbracketed form).
	Pkg *types.Package
	// Files are the parsed sources, in go list order.
	Files []*ast.File
	// Info holds full type information for Files.
	Info *types.Info
	// Fset resolves positions for Files (shared across one Load call).
	Fset *token.FileSet
	// Test reports whether the unit contains _test.go files.
	Test bool
	// TypeErrors collects type-checker complaints. They are recorded,
	// not fatal, so a unit that fails to check (e.g. a fixture under
	// construction) still surfaces with positions; callers decide how
	// loud to be.
	TypeErrors []error
}

// Load lists patterns (plus their test variants) and type-checks every
// in-module package, dependencies first.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export-data index for the importer; paths keyed exactly as the
	// compiler will ask for them (test variants keep their brackets).
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// Pick the analysis units: in-module, non-synthesized, and for
	// packages with in-package tests prefer the augmented variant over
	// the plain package (its GoFiles are a strict superset).
	augmented := map[string]bool{} // plain paths shadowed by a variant
	for _, p := range pkgs {
		if p.ForTest != "" && !strings.HasSuffix(trimVariant(p.ImportPath), "_test") {
			augmented[p.ForTest] = true
		}
	}
	fset := token.NewFileSet()
	shared := newExportImporter(fset, exports)
	var units []*Unit
	seen := map[string]bool{}
	for _, p := range pkgs {
		switch {
		case p.Standard || p.Module == nil,
			strings.HasSuffix(p.ImportPath, ".test"), // synthesized test main
			p.ForTest == "" && augmented[p.ImportPath],
			seen[p.ImportPath]:
			continue
		}
		seen[p.ImportPath] = true
		if len(p.CgoFiles) > 0 {
			continue // cgo sources cannot be type-checked from raw syntax
		}
		u, err := typecheckUnit(fset, p, shared)
		if err != nil {
			return nil, err
		}
		if u != nil {
			units = append(units, u)
		}
	}
	return units, nil
}

// typecheckUnit parses and checks one go list entry from source.
func typecheckUnit(fset *token.FileSet, p *listPkg, shared types.ImporterFrom) (*Unit, error) {
	if len(p.GoFiles) == 0 {
		return nil, nil
	}
	var asts []*ast.File
	for _, f := range p.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(p.Dir, f)
		}
		a, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: parse %s: %w", f, err)
		}
		asts = append(asts, a)
	}
	u := &Unit{
		PkgPath: p.ImportPath,
		Files:   asts,
		Fset:    fset,
		Test:    p.ForTest != "" || len(p.TestGoFiles) > 0,
		Info:    NewInfo(),
	}
	conf := types.Config{
		Importer: &mapImporter{importMap: p.ImportMap, next: shared},
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	pkg, err := conf.Check(trimVariant(p.ImportPath), fset, asts, u.Info)
	if pkg == nil {
		return nil, fmt.Errorf("load: typecheck %s: %v", p.ImportPath, err)
	}
	u.Pkg = pkg
	return u, nil
}

// NewInfo returns a types.Info with every map the analyzers use
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// trimVariant strips the " [p.test]" suffix off a test-variant path.
func trimVariant(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// mapImporter applies one unit's ImportMap (so a test unit importing
// the package under test resolves to the test-variant export data) and
// delegates to the shared export-data importer.
type mapImporter struct {
	importMap map[string]string
	next      types.ImporterFrom
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mapImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if r, ok := m.importMap[path]; ok {
		path = r
	}
	return m.next.ImportFrom(path, dir, mode)
}

// newExportImporter returns the stdlib gc importer wired to read export
// data recorded by `go list -export`. It is shared across units of one
// Load call: the gc importer caches by resolved path, and recursive
// imports inside export data are already fully resolved, so sharing is
// safe and avoids re-reading the standard library per unit.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// ExportImporter runs `go list -export -deps` for the given import
// paths (typically the standard-library closure a fixture needs) and
// returns an importer over the resulting export data. It exists for the
// analysistest harness, whose fixture files live outside the module.
func ExportImporter(fset *token.FileSet, dir string, paths ...string) (types.ImporterFrom, error) {
	pkgs, err := goList(dir, append([]string{"--"}, paths...))
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return newExportImporter(fset, exports), nil
}

// goList runs the go command once and decodes its JSON stream.
func goList(dir string, patterns []string) ([]*listPkg, error) {
	args := []string{"list", "-e", "-export", "-deps", "-test", "-json"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, errb.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []*listPkg
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
