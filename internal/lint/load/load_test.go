package load

import (
	"go/token"
	"strings"
	"testing"
)

// TestLoadModule type-checks the whole module through the export-data
// importer: every unit must check cleanly, and test variants must
// shadow their plain packages.
func TestLoadModule(t *testing.T) {
	units, err := Load("../../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no units loaded")
	}
	byPath := map[string]*Unit{}
	for _, u := range units {
		if len(u.TypeErrors) > 0 {
			t.Errorf("%s: %d type errors, first: %v", u.PkgPath, len(u.TypeErrors), u.TypeErrors[0])
		}
		if u.Pkg == nil {
			t.Fatalf("%s: nil package", u.PkgPath)
		}
		plain := trimVariant(u.PkgPath)
		if prev, ok := byPath[plain+boolKey(strings.HasSuffix(plain, "_test"))]; ok {
			t.Errorf("package %s analyzed twice: %s and %s", plain, prev.PkgPath, u.PkgPath)
		}
		byPath[plain+boolKey(strings.HasSuffix(plain, "_test"))] = u
	}
	// Spot-check: obs has in-package tests, so its unit must be the
	// augmented variant and must include the test files.
	u := byPath["repro/internal/obs"]
	if u == nil {
		t.Fatal("repro/internal/obs not loaded")
	}
	if !u.Test || !strings.Contains(u.PkgPath, "[") {
		t.Errorf("obs unit is not the augmented test variant: %q (test=%v)", u.PkgPath, u.Test)
	}
	foundTestFile := false
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Package).Filename, "_test.go") {
			foundTestFile = true
		}
	}
	if !foundTestFile {
		t.Error("augmented obs unit has no _test.go files")
	}
}

func boolKey(b bool) string {
	if b {
		return "#xtest"
	}
	return ""
}

// TestExportImporter loads a standard-library package for fixture
// type-checking.
func TestExportImporter(t *testing.T) {
	fset := token.NewFileSet()
	imp, err := ExportImporter(fset, ".", "sync/atomic", "fmt")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := imp.ImportFrom("sync/atomic", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Scope().Lookup("AddInt64") == nil {
		t.Error("sync/atomic export data missing AddInt64")
	}
}
