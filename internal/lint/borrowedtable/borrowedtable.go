// Package borrowedtable enforces the owned-vs-borrowed table regime of
// docs/memory-model.md at compile time. A borrowed table — a decoded
// snapshot table handed to an engine, the nextC/maps inputs of
// core.NewDSFAFromParts, a mapping vector a lazy engine lends out — is
// memory the callee may read but does not own: mutating it corrupts a
// structure someone else still reads, and retaining it past the call
// extends a lifetime the owner reasons about.
//
// The grammar is two function-level directives:
//
//	//sfa:borrowed p q — parameters p and q are borrowed by this
//	function: it must not mutate them and must not retain them.
//
//	//sfa:adopts — this function takes ownership of its borrowed
//	parameters: retention (storing into a field, global, channel,
//	map, or returning) is legal; mutation is still not. This is the
//	decoded-snapshot hand-off: the codec's tables are adopted by the
//	assembled automaton exactly once, at construction.
//
// Inside a function with borrowed parameters the analyzer reports:
//
//   - index/field assignment through the parameter (p[i] = v);
//   - append(p, ...) and copy(p, ...) — growth and overwrite;
//   - passing p to another module function whose corresponding
//     parameter is not itself //sfa:borrowed (the mutating-callee
//     leak: ownership discipline is only as strong as its weakest
//     callee). Reads through builtins (len, cap, copy-as-source,
//     append-as-source) are always fine;
//   - without //sfa:adopts: storing p into anything that outlives the
//     call — a field, a global, a channel send, a map or slice cell,
//     a composite literal, or a return value.
//
// Collect gathers the borrowed-parameter sets of every function in the
// module first, so cross-package calls check against the callee's
// actual annotation.
package borrowedtable

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// New returns a fresh analyzer instance.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "borrowedtable",
		Doc: "enforce //sfa:borrowed parameter discipline: no mutation, no " +
			"retention without //sfa:adopts, no leaking to unannotated callees",
	}
	// borrowed maps a function key ("pkgpath.Func" or
	// "pkgpath.(Recv).Method") to the set of its borrowed parameter
	// indices.
	borrowed := map[string]map[int]bool{}

	a.Collect = func(pass *analysis.Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				d, ok := analysis.FuncDirective(fn, "borrowed")
				if !ok {
					continue
				}
				set := map[int]bool{}
				for i, name := range paramNames(fn) {
					for _, arg := range d.Args {
						if name == arg {
							set[i] = true
						}
					}
				}
				borrowed[funcKey(pass, fn)] = set
			}
		}
	}

	a.Run = func(pass *analysis.Pass) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				d, ok := analysis.FuncDirective(fn, "borrowed")
				if !ok {
					continue
				}
				checkFunc(pass, fn, d, borrowed)
			}
		}
	}
	return a
}

// paramNames lists a function's parameter names in signature order.
func paramNames(fn *ast.FuncDecl) []string {
	var out []string
	for _, f := range fn.Type.Params.List {
		for _, n := range f.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

// funcKey names a function stably across units.
func funcKey(pass *analysis.Pass, fn *ast.FuncDecl) string {
	key := pass.PkgPath + "."
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		t := fn.Recv.List[0].Type
		if s, ok := t.(*ast.StarExpr); ok {
			t = s.X
		}
		if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = ix.X
		}
		if id, ok := t.(*ast.Ident); ok {
			key += "(" + id.Name + ")."
		}
	}
	return key + fn.Name.Name
}

// calleeKey names a called function in the same scheme, resolved
// through go/types so cross-package calls land on the callee's
// collected annotation.
func calleeKey(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	key := f.Pkg().Path() + "."
	sig := f.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key += "(" + named.Obj().Name() + ")."
		}
	}
	return key + f.Name()
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, d analysis.Directive, borrowed map[string]map[int]bool) {
	// Resolve directive args to parameter objects.
	objs := map[types.Object]string{}
	declared := map[string]bool{}
	for _, f := range fn.Type.Params.List {
		for _, name := range f.Names {
			for _, arg := range d.Args {
				if name.Name == arg {
					if obj := pass.Info.Defs[name]; obj != nil {
						objs[obj] = arg
						declared[arg] = true
					}
				}
			}
		}
	}
	for _, arg := range d.Args {
		if !declared[arg] {
			pass.Reportf(d.Pos, "//sfa:borrowed names %q, which is not a parameter of %s", arg, fn.Name.Name)
		}
	}
	if len(objs) == 0 {
		return
	}
	_, adopts := analysis.FuncDirective(fn, "adopts")

	// isBorrowed resolves an expression to a borrowed parameter name.
	isBorrowed := func(e ast.Expr) (string, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return "", false
		}
		name, ok := objs[pass.Info.ObjectOf(id)]
		return name, ok
	}
	// rootBorrowed: does the expression's base identifier name a
	// borrowed parameter (p, p[i], p.f, ...)?
	rootBorrowed := func(e ast.Expr) (string, bool) {
		id := analysis.RootIdent(e)
		if id == nil {
			return "", false
		}
		name, ok := objs[pass.Info.ObjectOf(id)]
		return name, ok
	}

	analysis.WithStack([]*ast.File{{Name: ast.NewIdent("_"), Decls: []ast.Decl{fn}}},
		func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, fn, x, adopts, isBorrowed, rootBorrowed)
			case *ast.CallExpr:
				checkCall(pass, fn, x, borrowed, isBorrowed, rootBorrowed)
			case *ast.SendStmt:
				if name, ok := isBorrowed(x.Value); ok && !adopts {
					pass.Reportf(x.Value.Pos(),
						"borrowed parameter %s sent on a channel (retention); mark %s //sfa:adopts if it takes ownership",
						name, fn.Name.Name)
				}
			case *ast.ReturnStmt:
				if adopts {
					return true
				}
				for _, r := range x.Results {
					if name, ok := isBorrowed(r); ok {
						pass.Reportf(r.Pos(),
							"borrowed parameter %s returned (retention); mark %s //sfa:adopts if ownership transfers through it",
							name, fn.Name.Name)
					}
				}
			case *ast.CompositeLit:
				if adopts {
					return true
				}
				for _, el := range x.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if name, ok := isBorrowed(v); ok {
						pass.Reportf(v.Pos(),
							"borrowed parameter %s stored in a composite literal (retention); mark %s //sfa:adopts if it takes ownership",
							name, fn.Name.Name)
					}
				}
			case *ast.UnaryExpr:
				// Taking &p[i] hands out a mutable window.
				if x.Op == token.AND {
					if name, ok := rootBorrowed(x.X); ok {
						pass.Reportf(x.Pos(), "address taken into borrowed parameter %s", name)
					}
				}
			}
			return true
		})
}

// checkAssign flags writes through a borrowed parameter and retention
// stores of one.
func checkAssign(pass *analysis.Pass, fn *ast.FuncDecl, as *ast.AssignStmt, adopts bool,
	isBorrowed, rootBorrowed func(ast.Expr) (string, bool)) {
	for _, lhs := range as.Lhs {
		switch ast.Unparen(lhs).(type) {
		case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
			if name, ok := rootBorrowed(lhs); ok {
				pass.Reportf(lhs.Pos(), "write through borrowed parameter %s", name)
			}
		}
	}
	for i, rhs := range as.Rhs {
		name, ok := isBorrowed(rhs)
		if !ok || adopts {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		// p assigned to a plain local is an alias, fine; stored into a
		// field/global/cell it outlives the call.
		switch l := ast.Unparen(as.Lhs[i]).(type) {
		case *ast.Ident:
			if obj, ok := pass.Info.ObjectOf(l).(*types.Var); ok && obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(rhs.Pos(),
					"borrowed parameter %s stored in package variable %s (retention); mark %s //sfa:adopts if it takes ownership",
					name, l.Name, fn.Name.Name)
			}
		case *ast.SelectorExpr, *ast.IndexExpr:
			pass.Reportf(rhs.Pos(),
				"borrowed parameter %s stored into %s (retention); mark %s //sfa:adopts if it takes ownership",
				name, exprKind(l), fn.Name.Name)
		}
	}
}

func exprKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a field"
	case *ast.IndexExpr:
		return "an indexed cell"
	}
	return "a location"
}

// checkCall flags mutation builtins targeting a borrowed parameter and
// leaks of one into callees that do not declare the parameter borrowed.
func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, borrowed map[string]map[int]bool,
	isBorrowed, rootBorrowed func(ast.Expr) (string, bool)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				if len(call.Args) > 0 {
					if name, ok := rootBorrowed(call.Args[0]); ok {
						pass.Reportf(call.Pos(), "append to borrowed parameter %s", name)
					}
				}
			case "copy":
				if len(call.Args) > 0 {
					if name, ok := rootBorrowed(call.Args[0]); ok {
						pass.Reportf(call.Pos(), "copy into borrowed parameter %s", name)
					}
				}
			}
			return // len/cap/append-src/copy-src are reads
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	f := analysis.CalleeFunc(pass.Info, call)
	var calleeSet map[int]bool
	calleeName := "an indirect callee"
	if f != nil {
		calleeSet = borrowed[calleeKey(f)]
		calleeName = f.Name()
	}
	for i, arg := range call.Args {
		name, ok := isBorrowed(arg)
		if !ok {
			// A sliced window p[a:b] leaks the same backing array.
			if n2, ok2 := rootBorrowed(arg); ok2 {
				if _, isSlice := ast.Unparen(arg).(*ast.SliceExpr); isSlice {
					name, ok = n2, true
				}
			}
			if !ok {
				continue
			}
		}
		if calleeSet[argIndex(f, call, i)] {
			continue // callee declares it borrowed too
		}
		pass.Reportf(arg.Pos(),
			"borrowed parameter %s passed to %s, whose parameter is not //sfa:borrowed (mutation/retention there is unchecked)",
			name, calleeName)
	}
}

// argIndex maps a call-site argument position to the callee's
// parameter index, accounting for methods called with selector
// receivers (arg i is parameter i) and variadic tails (they collapse
// onto the final parameter).
func argIndex(f *types.Func, call *ast.CallExpr, i int) int {
	if f == nil {
		return i
	}
	sig := f.Type().(*types.Signature)
	if sig.Variadic() && i >= sig.Params().Len() {
		return sig.Params().Len() - 1
	}
	return i
}
