package borrowedtable_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/borrowedtable"
)

func TestBorrowedTable(t *testing.T) {
	analysistest.Run(t, "testdata/borrowed", borrowedtable.New())
}
