package a

// table stands in for an engine holding adopted snapshot tables.
type table struct {
	maps  []int16
	nextC []int32
}

var published []int16

// reads is the well-behaved borrower: reads, aliases to locals, and
// builtin length queries are all fine.
//
//sfa:borrowed maps
func reads(maps []int16) int16 {
	x := maps[0]
	alias := maps
	n := int16(len(alias))
	for _, v := range maps {
		x += v
	}
	return x + n
}

//sfa:borrowed maps
func mutates(maps []int16, v int16) {
	maps[0] = v           // want `write through borrowed parameter maps`
	_ = append(maps, v)   // want `append to borrowed parameter maps`
	copy(maps, maps[1:])  // want `copy into borrowed parameter maps`
}

//sfa:borrowed maps
func retains(t *table, maps []int16) {
	t.maps = maps   // want `borrowed parameter maps stored into a field`
	published = maps // want `borrowed parameter maps stored in package variable published`
}

//sfa:borrowed maps
func returns(maps []int16) []int16 {
	return maps // want `borrowed parameter maps returned`
}

//sfa:borrowed maps
func intoLit(maps []int16) *table {
	return &table{maps: maps} // want `borrowed parameter maps stored in a composite literal`
}

//sfa:borrowed maps
func sends(ch chan []int16, maps []int16) {
	ch <- maps // want `borrowed parameter maps sent on a channel`
}

//sfa:borrowed maps
func window(maps []int16) *int16 {
	return &maps[0] // want `address taken into borrowed parameter maps`
}

// adopt is the blessed hand-off: the codec's decoded tables become the
// assembled structure's own, exactly once, at construction.
//
//sfa:borrowed maps nextC
//sfa:adopts
func adopt(maps []int16, nextC []int32) *table {
	return &table{maps: maps, nextC: nextC}
}

// adoptStillNoMutation: adoption transfers ownership but the tables
// were built elsewhere; writing them is still flagged.
//
//sfa:borrowed maps
//sfa:adopts
func adoptStillNoMutation(t *table, maps []int16) {
	t.maps = maps
	maps[0] = 0 // want `write through borrowed parameter maps`
}

//sfa:borrowed maps
func leaks(maps []int16) int {
	use(maps)    // want `borrowed parameter maps passed to use`
	use(maps[1:]) // want `borrowed parameter maps passed to use`
	return sum(maps) + len(maps)
}

func use(v []int16) { v[0] = 1 }

// sum declares its parameter borrowed, so borrowed values may flow in.
//
//sfa:borrowed v
func sum(v []int16) int {
	n := 0
	for _, x := range v {
		n += int(x)
	}
	return n
}
