// Package hotpathalloc statically guards the zero-allocation contract
// of the streaming scan path. The runtime side of the contract is the
// benchjson -zero-alloc gate (0 allocs/op on the hot-path benchmarks);
// this analyzer is its compile-time twin: it flags the *constructs*
// that produce allocations, so a regression is named at the line that
// introduces it instead of showing up as a bare "1 allocs/op" in CI.
//
// A function opts in with a doc-comment directive:
//
//	//sfa:noalloc
//	func (st *SetStream) Write(chunk []byte) { ... }
//
// Inside an annotated function the analyzer reports:
//
//   - make, new, and map/slice composite literals (value struct
//     literals are fine: they live in registers or on the stack);
//   - &T{...} — a composite literal whose address escapes the
//     statement;
//   - append, unless it is the amortized buffer-reuse idiom: the
//     self-append x = append(x, ...) (including x = append(x[:0], ...))
//     or appending into a caller-owned buffer that is returned;
//   - string ↔ []byte/[]rune conversions and string concatenation;
//   - any call into package fmt;
//   - converting a non-pointer-shaped value to an interface (an
//     int64 boxed into an any parameter allocates; a pointer does
//     not);
//   - go statements, closures that capture variables, and ranging
//     over a map (the construct the issue calls the iteration-order
//     shim; its hiter setup is hot-path weight even when it stays off
//     the heap).
//
// The check is intentionally not transitive: it reads one body at a
// time, and the annotation marks exactly the frames the benchjson gate
// measures. Helpers a hot path calls should carry their own
// //sfa:noalloc. A construct the author can prove amortizes to zero
// (or runs only on a cold branch) takes a same-line or preceding-line
// waiver with a reason in the surrounding comment:
//
//	buf = append(buf, b) //sfa:allocok amortized by the reset in Close
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// New returns a fresh analyzer instance.
func New() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "hotpathalloc",
		Doc: "flag allocation-inducing constructs inside //sfa:noalloc functions " +
			"(waiver: //sfa:allocok on the offending line, with a reason)",
	}
	a.Run = func(pass *analysis.Pass) {
		for _, file := range pass.Files {
			waivers := analysis.FileLineDirectives(pass.Fset, file)
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				d, ok := analysis.FuncDirective(fn, "noalloc")
				if !ok {
					continue
				}
				checkFunc(pass, fn, d, waivers)
			}
		}
	}
	return a
}

type checker struct {
	pass    *analysis.Pass
	fn      *ast.FuncDecl
	waivers *analysis.LineDirectives
	params  map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, _ analysis.Directive, waivers *analysis.LineDirectives) {
	c := &checker{pass: pass, fn: fn, waivers: waivers, params: map[types.Object]bool{}}
	for _, f := range fn.Type.Params.List {
		for _, name := range f.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				c.params[obj] = true
			}
		}
	}
	analysis.WithStack([]*ast.File{wrapDecl(fn)}, c.visit)
}

// wrapDecl lets WithStack walk a single declaration.
func wrapDecl(fn *ast.FuncDecl) *ast.File {
	return &ast.File{Name: ast.NewIdent("_"), Decls: []ast.Decl{fn}}
}

// report applies the line waiver, then reports.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.waivers.WaivedAt(pos, "allocok") {
		return
	}
	args = append(args, c.fn.Name.Name)
	c.pass.Reportf(pos, format+" in //sfa:noalloc function %s", args...)
}

func (c *checker) visit(n ast.Node, stack []ast.Node) bool {
	switch x := n.(type) {
	case *ast.CallExpr:
		c.call(x, stack)
	case *ast.CompositeLit:
		c.composite(x, stack)
	case *ast.BinaryExpr:
		if x.Op == token.ADD && isString(c.pass.Info.Types[x].Type) {
			c.report(x.OpPos, "string concatenation allocates")
		}
	case *ast.GoStmt:
		c.report(x.Pos(), "go statement allocates a goroutine")
	case *ast.FuncLit:
		if ids := c.captures(x); len(ids) > 0 {
			c.report(x.Pos(), "closure captures %s by reference and allocates", ids[0])
		}
	case *ast.RangeStmt:
		if t := c.pass.Info.Types[x.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				c.report(x.Range, "map range needs the runtime's randomized iterator")
			}
		}
	}
	return true
}

// call checks one call expression: builtins, fmt, conversions, and
// interface-boxing arguments.
func (c *checker) call(call *ast.CallExpr, stack []ast.Node) {
	info := c.pass.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.Builtin:
			switch fun.Name {
			case "make":
				c.report(call.Pos(), "make allocates")
				return
			case "new":
				c.report(call.Pos(), "new allocates")
				return
			case "append":
				if !c.reuseAppend(call, stack) {
					c.report(call.Pos(), "append may grow and allocate (reuse idiom is x = append(x, ...) or append into a returned caller buffer)")
				}
				return
			}
		}
	}
	// Conversions: T(x) where T is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.Types[call.Args[0]].Type
		if convAllocates(to, from) && !c.elidedConversion(call, stack) {
			c.report(call.Pos(), "conversion %s → %s allocates", typeStr(from), typeStr(to))
		}
		return
	}
	if f := analysis.CalleeFunc(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "fmt.%s allocates (formats through reflection)", f.Name())
	}
	// Interface boxing at the call boundary.
	c.boxedArgs(call)
}

// elidedConversion reports whether the conversion call sits in a context
// where gc does not materialize the result: as an operand of a
// comparison (`string(b) == s`) or as a map index key (`m[string(b)]`).
// Both are guaranteed allocation-free.
func (c *checker) elidedConversion(call *ast.CallExpr, stack []ast.Node) bool {
	switch p := nearestNonParen(stack).(type) {
	case *ast.BinaryExpr:
		switch p.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return true
		}
	case *ast.IndexExpr:
		if ast.Unparen(p.Index) != call {
			return false
		}
		if t := c.pass.Info.Types[p.X].Type; t != nil {
			_, isMap := t.Underlying().(*types.Map)
			return isMap
		}
	}
	return false
}

// reuseAppend recognizes the amortized-reuse shapes.
func (c *checker) reuseAppend(call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	// append(x[:0], ...) — the reset-reuse idiom: the destination is an
	// owned buffer resliced to zero length; growth stops once the buffer
	// reaches its working size, regardless of what the result is bound to.
	if sl, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok && sl.Low == nil {
		if hi, ok := ast.Unparen(sl.High).(*ast.BasicLit); ok && hi.Value == "0" {
			return true
		}
	}
	dstRoot := analysis.RootIdent(call.Args[0])
	if dstRoot == nil {
		return false
	}
	parent := nearestNonParen(stack)
	switch p := parent.(type) {
	case *ast.AssignStmt:
		// x = append(x, ...) — match the root identifier of the LHS
		// whose position holds this call.
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) != call || i >= len(p.Lhs) {
				continue
			}
			if l := analysis.RootIdent(p.Lhs[i]); l != nil &&
				c.pass.Info.ObjectOf(l) == c.pass.Info.ObjectOf(dstRoot) {
				return true
			}
		}
	case *ast.ReturnStmt:
		// return append(dst, ...) with dst a parameter: the canonical
		// caller-owned-buffer API (prefilter's AppendHits).
		return c.params[c.pass.Info.ObjectOf(dstRoot)]
	}
	return false
}

// composite flags heap-bound composite literals.
func (c *checker) composite(lit *ast.CompositeLit, stack []ast.Node) {
	t := c.pass.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates")
		return
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
		return
	}
	if u, ok := nearestNonParen(stack).(*ast.UnaryExpr); ok && u.Op == token.AND {
		c.report(u.Pos(), "&composite literal escapes to the heap")
	}
}

// boxedArgs flags non-pointer-shaped values passed to interface
// parameters.
func (c *checker) boxedArgs(call *ast.CallExpr) {
	sig, ok := c.pass.Info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		at := c.pass.Info.Types[arg].Type
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if !pointerShaped(at) {
			c.report(arg.Pos(), "%s boxed into interface argument allocates", typeStr(at))
		}
	}
}

// captures returns names of variables a function literal captures from
// its enclosing function.
func (c *checker) captures(lit *ast.FuncLit) []string {
	var out []string
	fnScope := c.pass.Info.Scopes[c.fn.Type]
	litScope := c.pass.Info.Scopes[lit.Type]
	if fnScope == nil || litScope == nil {
		return nil
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		parent := obj.Parent()
		if parent == nil {
			return true
		}
		// Captured iff declared inside the enclosing function but
		// outside the literal.
		if scopeContains(fnScope, parent) && !scopeContains(litScope, parent) {
			out = append(out, id.Name)
			return true
		}
		return true
	})
	return out
}

func scopeContains(outer, s *types.Scope) bool {
	for ; s != nil; s = s.Parent() {
		if s == outer {
			return true
		}
	}
	return false
}

func nearestNonParen(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// convAllocates reports the conversions that copy their operand to the
// heap: string ↔ []byte and string → []rune in either direction.
func convAllocates(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether boxing a value of t into an interface
// stores the value directly in the interface word (no allocation).
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

func typeStr(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
