package a

import "fmt"

type buf struct {
	data []byte
	n    int
}

// hot shows the allowed steady-state shapes: self-append reuse,
// reslicing, value struct literals, pointer arguments to interface
// parameters, type assertions.
//
//sfa:noalloc
func hot(b *buf, p []byte) int {
	b.data = append(b.data, p...)
	b.data = append(b.data[:0], p...)
	n := 0
	for _, c := range p {
		n += int(c)
	}
	v := buf{n: n} // value literal: stack
	sink(&v)
	return v.n
}

// appendHits is the caller-owned-buffer API shape prefilter uses.
//
//sfa:noalloc
func appendHits(dst []int, p []byte) []int {
	for range p {
		dst = append(dst, 1)
	}
	return append(dst, 0)
}

//sfa:noalloc
func allocates(p []byte) []byte {
	s := make([]byte, 8) // want `make allocates`
	q := new(buf)        // want `new allocates`
	q.data = s
	t := []byte{1, 2} // want `slice literal allocates`
	m := map[int]int{} // want `map literal allocates`
	m[0] = 1
	u := &buf{} // want `escapes to the heap`
	r := append(s[:4], p...) // want `append may grow`
	_ = u
	_ = t
	return r
}

//sfa:noalloc
func converts(p []byte, s string) int {
	a := string(p) // want `conversion \[\]byte → string allocates`
	b := []byte(s) // want `conversion string → \[\]byte allocates`
	c := a + s // want `string concatenation allocates`
	fmt.Println(len(c)) // want `fmt\.Println allocates` `int boxed into interface argument allocates`
	return len(b)
}

//sfa:noalloc
func boxes(n int64, b *buf) {
	sink(n) // want `int64 boxed into interface argument allocates`
	sink(b)
	var i any = n // plain assignment boxing is out of scope: vet's
	_ = i         // escape analysis would be needed to rule on it
}

//sfa:noalloc
func spawns(p []byte) {
	go hot(nil, p) // want `go statement allocates a goroutine`
}

//sfa:noalloc
func closes(p []byte) func() int {
	n := 0
	f := func() int { // want `closure captures n by reference and allocates`
		n++
		return n
	}
	g := func(x int) int { return x + 1 } // capture-free: static closure
	return func() int { return f() + g(1) } // want `closure captures f by reference and allocates`
}

//sfa:noalloc
func iterates(m map[string]int) int {
	t := 0
	for _, v := range m { // want `map range needs the runtime's randomized iterator`
		t += v
	}
	return t
}

// waived documents a measured-amortized exception.
//
//sfa:noalloc
func waived(p []byte, dst []byte) []byte {
	s := make([]byte, 0, len(p)) //sfa:allocok one-time warmup, amortized by reuse in the pool
	//sfa:allocok cold branch: only taken on reconfiguration
	t := make([]byte, 1)
	s = append(s, t...)
	dst = append(dst, s...)
	return append(dst, p...)
}

// unannotated functions are never checked.
func cold() []byte {
	return make([]byte, 64)
}

func sink(any) {}

// compares and resets exercise the recognized allocation-free contexts:
// comparison/map-key conversions are elided by gc, and append into an
// owned buffer resliced to zero is the reset-reuse idiom.
//
//sfa:noalloc
func compares(p []byte, m map[string]int) int {
	if string(p) == "key" {
		return m[string(p)]
	}
	return 0
}

//sfa:noalloc
func resets(b *buf, p []byte) []byte {
	out := append(b.data[:0], p...)
	return out
}
