package hotpathalloc_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata/noalloc", hotpathalloc.New())
}
