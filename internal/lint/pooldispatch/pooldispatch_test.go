package pooldispatch_test

import (
	"testing"

	"repro/internal/lint/analysis/analysistest"
	"repro/internal/lint/pooldispatch"
)

func TestPoolDispatch(t *testing.T) {
	analysistest.Run(t, "testdata/pool", pooldispatch.New())
}

// TestPrefixRestriction: with a prefix list that does not match the
// fixture package, nothing is reported (the repo gate only enforces
// the scan-path packages).
func TestPrefixRestriction(t *testing.T) {
	// The fixture has `want` comments; running the restricted analyzer
	// must produce zero diagnostics, so every want must fail. Run in a
	// throwaway sub-test recorder to invert the assertion.
	rec := &recordingT{T: t}
	analysistest.Run(rec, "testdata/pool", pooldispatch.New("repro/internal/engine"))
	if rec.errors == 0 {
		t.Fatal("expected unmatched want expectations when the analyzer is prefix-restricted")
	}
}

// recordingT swallows Errorf calls, counting them.
type recordingT struct {
	*testing.T
	errors int
}

func (r *recordingT) Errorf(string, ...any) { r.errors++ }
