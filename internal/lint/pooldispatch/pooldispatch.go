// Package pooldispatch enforces the ROADMAP standing caveat that
// everything dispatches through engine.Pool: inside the packages that
// make up the scan path, a raw `go` statement is a bug unless the
// enclosing function is explicitly marked as a spawner.
//
// The pool exists so that steady-state matching performs zero goroutine
// creation and so that nested dispatch (Batch over a parallel matcher)
// cannot deadlock; a stray `go` reintroduces per-call spawn cost at
// best and, at worst, work that the pool's helping protocol does not
// know about. The allowlist is explicit in the source:
//
//	//sfa:spawner — this function intentionally creates goroutines.
//
// Legitimate spawners are the pool internals themselves (NewPool's
// worker loop) and the deliberate spawn-mode engines that exist to
// measure thread-creation cost (the paper's Fig. 10). Test files are
// exempt wholesale: tests spawn goroutines to exercise concurrency.
package pooldispatch

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// DefaultPackages are the import-path prefixes the repo enforces: the
// packages a scan's control flow passes through.
var DefaultPackages = []string{
	"repro/internal/engine",
	"repro/internal/multi",
	"repro/internal/prefilter",
	"repro/internal/serve",
}

// New returns the analyzer restricted to packages whose import path
// starts with one of prefixes. An empty prefix list enforces
// everywhere (used by tests; the repo gate uses DefaultPackages).
func New(prefixes ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "pooldispatch",
		Doc: "flag raw go statements in scan-path packages; all dispatch " +
			"belongs on engine.Pool unless the function is //sfa:spawner",
	}
	a.Run = func(pass *analysis.Pass) {
		if len(prefixes) > 0 && !matchAny(pass.PkgPath, prefixes) {
			return
		}
		analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if pass.InTestFile(g.Pos()) {
				return true
			}
			fn := analysis.EnclosingFunc(stack)
			if fn != nil {
				if _, ok := analysis.FuncDirective(fn, "spawner"); ok {
					return true
				}
			}
			name := "function literal"
			if fn != nil {
				name = fn.Name.Name
			}
			pass.Reportf(g.Pos(),
				"raw go statement in %s: scan-path packages dispatch through engine.Pool "+
					"(annotate the function //sfa:spawner only for pool internals or deliberate spawn-mode paths)",
				name)
			return true
		})
	}
	return a
}

func matchAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}
