package a

import "sync"

// plain is the bug the analyzer exists for: ad-hoc goroutine creation
// on a scan path that should ride the shared worker pool.
func plain() {
	go work() // want `raw go statement in plain`
}

// spawner is pool-internals shaped: the annotation is the allowlist.
//
//sfa:spawner
func spawner() {
	go work()
}

// spawnerLit: goroutines started from a literal inside an annotated
// spawner are covered by the enclosing function's annotation.
//
//sfa:spawner
func spawnerLit() {
	f := func() {
		go work()
	}
	f()
}

func nested() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `raw go statement in nested`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func work() {}
