package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Hierarchical byte budgets for lazily-materialized automaton tables.
//
// The eager engines size their tables at compile time and reject rule
// sets whose automata would not fit; the lazy engines (LazyTuple) grow
// tables *during* scanning, so the bound has to move from construction
// time to run time. TableBudget is that bound: a tree of byte counters —
// process root, per-tenant children — that every lazy structure charges
// its table pages against. When a charge would exceed any level's limit,
// the structure spills its in-flight scan state, asks the root to make
// room by evicting the least-recently-used registered structure (whole-
// structure reset — the cache-granularity LRU approximation RE2's DFA
// cache uses), and re-enters. See docs/memory-model.md for the full
// contract.
//
// Concurrency: charges and releases are lock-free atomics on the chain
// of counters, so the scan hot path never takes a lock for accounting.
// Only MakeRoom — the slow path that runs evictions — serializes, on the
// root's mutex. Deadlock freedom rests on one rule the lazy walkers
// obey: never wait on the root mutex while holding your own structure's
// read lock (spill and release first).

// ErrTableBudget is wrapped by lazy-construction errors when a table
// budget is exhausted. The lazy walkers never surface it to callers —
// they evict and re-enter — but it separates "make room and retry" from
// genuine failures inside the construction path.
var ErrTableBudget = errors.New("core: table budget exhausted")

// Evictable is a lazily-built structure the budget may reset to
// reclaim bytes. BudgetEvict must drop the structure's materialized
// states, release their bytes through the structure's handle, and
// return the number of bytes it released. It is called without any of
// the structure's locks held (it takes its own write lock) but with the
// root budget's mutex held, so it must not call MakeRoom.
type Evictable interface {
	BudgetEvict() int64
}

// TableBudget is one node of the budget tree. A zero or negative limit
// means "unlimited at this level" — the node still accounts usage and
// still routes charges to its parent, so an unlimited tenant budget
// under a limited process budget behaves as pure metering.
type TableBudget struct {
	parent    *TableBudget
	limit     atomic.Int64
	used      atomic.Int64
	fills     atomic.Int64 // lazy states materialized under this node
	evictions atomic.Int64 // structure resets charged to this node

	// Latency observability, recorded up the chain like the counters:
	// fillNs is the cost of materializing one lazy state (the slow-step
	// walk that interns a tuple), evictNs the cost of one structure
	// reset, and stallNs the total wall time scans spent inside
	// MakeRoom — the "budget pressure converted to latency" number.
	fillNs  obs.Histogram
	evictNs obs.Histogram
	stallNs obs.Counter

	// Eviction registry — maintained on the root node only.
	mu      sync.Mutex
	clock   atomic.Int64
	members []*BudgetHandle
}

// NewTableBudget returns a root budget. limit ≤ 0 means unlimited.
func NewTableBudget(limit int64) *TableBudget {
	b := &TableBudget{}
	b.limit.Store(limit)
	return b
}

// Child returns a sub-budget charged against b: a charge must fit the
// child AND every ancestor. limit ≤ 0 makes the child pure metering.
func (b *TableBudget) Child(limit int64) *TableBudget {
	c := &TableBudget{parent: b}
	c.limit.Store(limit)
	return c
}

// SetLimit replaces the node's byte limit (≤ 0 = unlimited). Lowering
// it below current usage does not evict anything by itself; the next
// charge that misses will.
func (b *TableBudget) SetLimit(limit int64) { b.limit.Store(limit) }

// BudgetStats is a point-in-time snapshot of one budget node.
type BudgetStats struct {
	Limit     int64 // configured byte limit; ≤ 0 = unlimited
	Used      int64 // bytes currently charged (including descendants)
	Fills     int64 // lazy states materialized under this node
	Evictions int64 // structure resets under this node

	FillNs  obs.HistogramSnapshot // per-state materialization latency
	EvictNs obs.HistogramSnapshot // per-reset eviction latency
	StallNs int64                 // total scan time spent waiting in MakeRoom
}

// Stats snapshots the node's counters.
func (b *TableBudget) Stats() BudgetStats {
	return BudgetStats{
		Limit:     b.limit.Load(),
		Used:      b.used.Load(),
		Fills:     b.fills.Load(),
		Evictions: b.evictions.Load(),
		FillNs:    b.fillNs.Snapshot(),
		EvictNs:   b.evictNs.Snapshot(),
		StallNs:   b.stallNs.Load(),
	}
}

func (b *TableBudget) root() *TableBudget {
	r := b
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// tryCharge attempts to add n bytes at this node and every ancestor,
// rolling back completely when any level would exceed its limit.
func (b *TableBudget) tryCharge(n int64) bool {
	for x := b; x != nil; x = x.parent {
		if lim := x.limit.Load(); lim > 0 && x.used.Add(n) > lim {
			for y := b; ; y = y.parent {
				y.used.Add(-n)
				if y == x {
					break
				}
			}
			return false
		}
	}
	return true
}

// forceCharge adds n bytes unconditionally (the grace path: progress
// must never deadlock on a budget smaller than one working set).
func (b *TableBudget) forceCharge(n int64) {
	for x := b; x != nil; x = x.parent {
		x.used.Add(n)
	}
}

func (b *TableBudget) release(n int64) {
	for x := b; x != nil; x = x.parent {
		x.used.Add(-n)
	}
}

func (b *TableBudget) noteFill() {
	for x := b; x != nil; x = x.parent {
		x.fills.Add(1)
	}
}

func (b *TableBudget) noteEviction() {
	for x := b; x != nil; x = x.parent {
		x.evictions.Add(1)
	}
}

func (b *TableBudget) observeFill(ns int64) {
	for x := b; x != nil; x = x.parent {
		x.fillNs.Observe(ns)
	}
}

func (b *TableBudget) observeEvict(ns int64) {
	for x := b; x != nil; x = x.parent {
		x.evictNs.Observe(ns)
	}
}

func (b *TableBudget) addStall(ns int64) {
	for x := b; x != nil; x = x.parent {
		x.stallNs.Add(ns)
	}
}

// BudgetHandle ties one Evictable structure to the budget node it
// charges. All byte accounting of the structure flows through its
// handle, which is how per-structure residency (Used) and the grace
// floor are tracked.
type BudgetHandle struct {
	b     *TableBudget
	root  *TableBudget
	e     Evictable
	used  atomic.Int64
	grace int64
	last  atomic.Int64
	dead  atomic.Bool
}

// Register creates a handle charging b and enters e into the root's
// eviction registry. grace is the byte floor below which charges always
// succeed regardless of limits: it must cover the structure's minimal
// working set (identity pages plus one growth page per table) so that a
// freshly-evicted structure can always re-enter and make progress. The
// documented RSS bound is therefore limit plus the grace floors of the
// structures actively scanning.
func (b *TableBudget) Register(e Evictable, grace int64) *BudgetHandle {
	h := &BudgetHandle{b: b, root: b.root(), e: e, grace: grace}
	r := h.root
	r.mu.Lock()
	r.pruneLocked()
	r.members = append(r.members, h)
	r.mu.Unlock()
	h.Touch()
	return h
}

// pruneLocked drops closed handles from the registry. Caller holds mu.
func (r *TableBudget) pruneLocked() {
	live := r.members[:0]
	for _, h := range r.members {
		if !h.dead.Load() {
			live = append(live, h)
		}
	}
	r.members = live
}

// Close releases the handle's remaining bytes and removes it from the
// eviction registry. Safe to call more than once.
func (h *BudgetHandle) Close() {
	if h == nil || h.dead.Swap(true) {
		return
	}
	h.b.release(h.used.Swap(0))
}

// Touch marks the structure recently used for LRU victim selection.
func (h *BudgetHandle) Touch() {
	if h == nil {
		return
	}
	h.last.Store(h.root.clock.Add(1))
}

// Used returns the bytes currently charged through this handle.
func (h *BudgetHandle) Used() int64 {
	if h == nil {
		return 0
	}
	return h.used.Load()
}

// TryCharge attempts to charge n bytes. Charges within the grace floor
// bypass the limits (see Register); all others must fit every level of
// the budget chain. Lock-free.
func (h *BudgetHandle) TryCharge(n int64) bool {
	if h == nil {
		return true
	}
	if h.used.Load()+n <= h.grace {
		h.b.forceCharge(n)
		h.used.Add(n)
		return true
	}
	if h.b.tryCharge(n) {
		h.used.Add(n)
		return true
	}
	return false
}

// Release returns n bytes to the budget chain.
func (h *BudgetHandle) Release(n int64) {
	if h == nil || n == 0 {
		return
	}
	h.b.release(n)
	h.used.Add(-n)
}

// NoteFill bumps the fill counters up the chain (one lazy state
// materialized).
func (h *BudgetHandle) NoteFill() {
	if h == nil {
		return
	}
	h.b.noteFill()
}

// NoteEviction bumps the eviction counters up the chain.
func (h *BudgetHandle) NoteEviction() {
	if h == nil {
		return
	}
	h.b.noteEviction()
}

// ObserveFill records the latency of one lazy state materialization
// into the fill histograms up the chain.
func (h *BudgetHandle) ObserveFill(ns int64) {
	if h == nil {
		return
	}
	h.b.observeFill(ns)
}

// MakeRoom evicts registered structures in least-recently-used order —
// possibly including the caller's own — until a charge of n bytes
// through this handle could succeed or every structure has been reset
// once. The caller must hold none of its structure's locks (spill
// first); on return it re-enters and charges, falling back to the grace
// floor if competing fills consumed the freed room.
func (h *BudgetHandle) MakeRoom(n int64) {
	if h == nil {
		return
	}
	start := time.Now()
	defer func() { h.b.addStall(time.Since(start).Nanoseconds()) }()
	r := h.root
	r.mu.Lock()
	defer r.mu.Unlock()
	if h.roomFor(n) {
		return
	}
	r.pruneLocked()
	// Snapshot in LRU order; each victim is evicted at most once per
	// MakeRoom call, so the loop terminates even when a victim's floor
	// keeps its usage nonzero.
	victims := make([]*BudgetHandle, len(r.members))
	copy(victims, r.members)
	for i := 1; i < len(victims); i++ {
		for j := i; j > 0 && victims[j].last.Load() < victims[j-1].last.Load(); j-- {
			victims[j], victims[j-1] = victims[j-1], victims[j]
		}
	}
	for _, v := range victims {
		if v.dead.Load() || v.used.Load() == 0 {
			continue
		}
		t0 := time.Now()
		v.e.BudgetEvict() // counts its own eviction through v
		v.b.observeEvict(time.Since(t0).Nanoseconds())
		if h.roomFor(n) {
			return
		}
	}
}

// roomFor probes whether a charge of n would currently succeed.
func (h *BudgetHandle) roomFor(n int64) bool {
	if h.b.tryCharge(n) {
		h.b.release(n)
		return true
	}
	return false
}

var (
	globalBudgetOnce sync.Once
	globalBudget     *TableBudget
)

// GlobalTableBudget returns the process-wide root budget shared by every
// lazy structure not given an explicit budget. It starts unlimited;
// callers arm it with SetLimit (sfa.WithGlobalTableBudget).
func GlobalTableBudget() *TableBudget {
	globalBudgetOnce.Do(func() { globalBudget = NewTableBudget(0) })
	return globalBudget
}
