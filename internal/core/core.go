// Package core implements the paper's primary contribution: the
// simultaneous finite automaton (SFA).
//
// A state of an SFA is a mapping from the states of an original automaton
// A to (sets of) states of A; the initial SFA state is the identity
// mapping, and reading a symbol composes one more transition step onto the
// mapping (Definition 5). Because mapping composition is associative, the
// input text may be cut at arbitrary positions and each piece processed
// independently starting from the identity (Lemma 1, Theorem 3) — that is
// the data-parallel property the matching engines in package engine
// exploit.
//
// Two constructions are provided, mirroring the paper's terminology:
//
//   - DSFA (Sect. IV, "D-SFA"): built from a DFA; a state is a
//     transformation vector f: Q → Q (the DFA's dead sink makes the
//     vector total). At most |D|^|D| states (Theorem 2).
//   - NSFA ("N-SFA"): built from an ε-free NFA; a state is a
//     correspondence f: Q → P(Q), stored as a boolean matrix. At most
//     2^(|N|²) states.
//
// Both are produced by the correspondence construction (Algorithm 4), a
// direct extension of the subset construction; a lazy, thread-safe
// variant constructs D-SFA states on demand during matching (Sect. V-A,
// "on-the-fly construction").
//
// Size convention: the paper reports automaton sizes without sink states.
// LiveSize on both types excludes the everywhere-dead mapping, matching
// the paper's |Sd| = 109 / 10 099 / 1 000 999 for r5/r50/r500 and
// |S| = 21 for Fig. 10's pattern.
package core

// Interning hash for construction. Vectors are hashed once per candidate
// state and verified with eqVec16 on every bucket hit, so the hash only
// needs good bucket spread, not cryptographic strength — but it IS the
// hottest loop of Algorithm 4 (every subset/correspondence step hashes a
// |D|-entry vector). FNV-style multiplicative mixing over 64-bit words
// with a murmur-style finalizer is ~20× faster than the byte-at-a-time
// maphash it replaces and cut combined-ruleset construction in half.
const (
	hashOffset = 14695981039346656037
	hashPrime  = 1099511628211
)

// hashFinish avalanches the accumulated word (murmur3 fmix64).
func hashFinish(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashVec16 hashes a transformation vector, four entries per word.
func hashVec16(v []int16) uint64 {
	h := uint64(hashOffset)
	i := 0
	for ; i+4 <= len(v); i += 4 {
		w := uint64(uint16(v[i])) | uint64(uint16(v[i+1]))<<16 |
			uint64(uint16(v[i+2]))<<32 | uint64(uint16(v[i+3]))<<48
		h = (h ^ w) * hashPrime
	}
	for ; i < len(v); i++ {
		h = (h ^ uint64(uint16(v[i]))) * hashPrime
	}
	return hashFinish(h)
}

// hashWords hashes a bitset matrix row block.
func hashWords(v []uint64) uint64 {
	h := uint64(hashOffset)
	for _, w := range v {
		h = (h ^ w) * hashPrime
	}
	return hashFinish(h)
}

func eqVec16(a, b []int16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
