// Package core implements the paper's primary contribution: the
// simultaneous finite automaton (SFA).
//
// A state of an SFA is a mapping from the states of an original automaton
// A to (sets of) states of A; the initial SFA state is the identity
// mapping, and reading a symbol composes one more transition step onto the
// mapping (Definition 5). Because mapping composition is associative, the
// input text may be cut at arbitrary positions and each piece processed
// independently starting from the identity (Lemma 1, Theorem 3) — that is
// the data-parallel property the matching engines in package engine
// exploit.
//
// Two constructions are provided, mirroring the paper's terminology:
//
//   - DSFA (Sect. IV, "D-SFA"): built from a DFA; a state is a
//     transformation vector f: Q → Q (the DFA's dead sink makes the
//     vector total). At most |D|^|D| states (Theorem 2).
//   - NSFA ("N-SFA"): built from an ε-free NFA; a state is a
//     correspondence f: Q → P(Q), stored as a boolean matrix. At most
//     2^(|N|²) states.
//
// Both are produced by the correspondence construction (Algorithm 4), a
// direct extension of the subset construction; a lazy, thread-safe
// variant constructs D-SFA states on demand during matching (Sect. V-A,
// "on-the-fly construction").
//
// Size convention: the paper reports automaton sizes without sink states.
// LiveSize on both types excludes the everywhere-dead mapping, matching
// the paper's |Sd| = 109 / 10 099 / 1 000 999 for r5/r50/r500 and
// |S| = 21 for Fig. 10's pattern.
package core

import "hash/maphash"

var vecSeed = maphash.MakeSeed()

// hashVec16 hashes a transformation vector.
func hashVec16(v []int16) uint64 {
	var h maphash.Hash
	h.SetSeed(vecSeed)
	for _, x := range v {
		h.WriteByte(byte(x))
		h.WriteByte(byte(uint16(x) >> 8))
	}
	return h.Sum64()
}

// hashWords hashes a bitset matrix row block.
func hashWords(v []uint64) uint64 {
	var h maphash.Hash
	h.SetSeed(vecSeed)
	for _, w := range v {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(w >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func eqVec16(a, b []int16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func eqWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
