package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dfa"
)

// Lazy is a thread-safe on-the-fly D-SFA: states are transformation
// vectors like DSFA's, but they are discovered during matching instead of
// ahead of it — the paper's Sect. V-A observes that "on-the-fly
// construction generates states one by one after reading symbols, so it
// generates at most n states for input text of length n even if the
// number of states in DFA explodes", and that it applies directly to SFA
// because the correspondence construction extends the subset construction.
//
// Concurrency design: transition entries start at -1 (unknown) and are
// read with atomic loads. A miss takes the construction mutex, interns the
// target mapping (possibly allocating a new state), and publishes the
// entry with an atomic store. Because a state id can only be learned
// through such a published entry (or by being the start state), the
// release/acquire pairing of the atomic store/load makes the state's row
// and mapping vector visible to every reader — no lock on the hot path.
//
// State storage is paged so that pages, once allocated, never move.
//
// A Lazy may be tied to a table budget (newLazySized with a
// *BudgetHandle): page allocations are then charged through the handle
// and fail with ErrTableBudget when it is exhausted, and the owner — a
// LazyTuple, which shares one handle across its components — can drop
// and re-initialize the structure to give the bytes back. The budgeted
// entry points are package-internal; NewLazy keeps the original
// unbudgeted contract.
type Lazy struct {
	D *dfa.DFA

	nc       int
	n        int // vector length
	maxState int32
	pageBits uint
	pageSize int32
	h        *BudgetHandle // nil = unbudgeted

	mu        sync.Mutex
	numStates atomic.Int32
	ids       map[uint64][]int32
	bytes     int64 // bytes charged for pages (under mu)

	// Pages of transition rows and mapping vectors; index = id >> pageBits.
	// The page slices are sized up front so readers never see them grow.
	rows   [][]int32 // page: pageSize × nc entries
	maps   [][]int16 // page: pageSize × n entries
	accept [][]bool  // page: pageSize entries

	start int32
}

const (
	lazyPageBits = 10
	lazyPageSize = 1 << lazyPageBits
	// lazyStateOverhead approximates the per-state bookkeeping outside
	// the pages (intern map bucket + id slice entry) for budget
	// accounting; folded into the page charge.
	lazyStateOverhead = 48
)

// NewLazy prepares an on-the-fly D-SFA over d. maxStates bounds the
// number of materialized SFA states (≤ n states are created for an input
// of length n, so the bound only matters for adversarial inputs).
func NewLazy(d *dfa.DFA, maxStates int) (*Lazy, error) {
	return newLazySized(d, maxStates, lazyPageBits, nil)
}

// newLazySized is NewLazy with an explicit page granularity and an
// optional budget handle. Small pages make eviction accounting
// fine-grained enough for tight budgets; the default page holds 1024
// states, which for a component DFA of a few thousand states is
// megabytes — far too coarse a charging unit for a shared budget.
func newLazySized(d *dfa.DFA, maxStates int, pageBits uint, h *BudgetHandle) (*Lazy, error) {
	if d.NumStates > MaxDFAStates {
		return nil, fmt.Errorf("core: DFA has %d states, limit %d", d.NumStates, MaxDFAStates)
	}
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	pageSize := 1 << pageBits
	numPages := (maxStates + pageSize - 1) / pageSize
	l := &Lazy{
		D:        d,
		nc:       d.BC.Count,
		n:        d.NumStates,
		maxState: int32(maxStates),
		pageBits: pageBits,
		pageSize: int32(pageSize),
		h:        h,
		ids:      make(map[uint64][]int32),
		rows:     make([][]int32, numPages),
		maps:     make([][]int16, numPages),
		accept:   make([][]bool, numPages),
	}
	if err := l.reinit(); err != nil {
		return nil, err
	}
	return l, nil
}

// pageBytes is the budget charge of one page.
func (l *Lazy) pageBytes() int64 {
	return int64(l.pageSize) * int64(4*l.nc+2*l.n+1+lazyStateOverhead)
}

// drop releases every materialized state and its budget bytes, leaving
// the structure empty (not even the identity). The owner must exclude
// readers and follow with reinit before the next use; the two-phase
// split lets a LazyTuple release all its components' bytes before any
// of them re-charges, so the re-initialization fits the grace floor.
func (l *Lazy) drop() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.rows {
		l.rows[i], l.maps[i], l.accept[i] = nil, nil, nil
	}
	clear(l.ids)
	l.numStates.Store(0)
	if l.h != nil {
		l.h.Release(l.bytes)
	}
	l.bytes = 0
}

// reinit re-interns the identity mapping after drop (or at
// construction). The page charge goes through the budget's grace floor,
// so on an evicted structure it cannot fail; the only error is the
// state cap, impossible when empty.
func (l *Lazy) reinit() error {
	identity := make([]int16, l.n)
	for q := range identity {
		identity[q] = int16(q)
	}
	l.mu.Lock()
	start, _, err := l.intern(identity)
	l.mu.Unlock()
	if err != nil {
		return err
	}
	l.start = start
	return nil
}

// Intern returns the id of the state with the given transformation
// vector, materializing it if needed. It is how a lazy walker re-enters
// after an eviction: the spilled carried vectors become fresh states,
// and scanning continues as if they had been discovered from the
// identity. The error is ErrTooManyStates at the cap or a wrapped
// ErrTableBudget on an exhausted budget.
func (l *Lazy) Intern(vec []int16) (int32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id, _, err := l.intern(vec)
	return id, err
}

// Start returns the id of the identity mapping.
func (l *Lazy) Start() int32 { return l.start }

// NumStates returns the number of states materialized so far.
func (l *Lazy) NumStates() int { return int(l.numStates.Load()) }

// Map returns the transformation vector of state id (read-only).
func (l *Lazy) Map(id int32) []int16 {
	p, off := id>>l.pageBits, int(id&(l.pageSize-1))
	return l.maps[p][off*l.n : (off+1)*l.n]
}

// Accepting reports whether state id is accepting.
func (l *Lazy) Accepting(id int32) bool {
	p, off := id>>l.pageBits, id&(l.pageSize-1)
	return l.accept[p][off]
}

// NextByte returns the successor of state id on byte b, constructing it if
// necessary. It is safe for concurrent use.
func (l *Lazy) NextByte(id int32, b byte) (int32, error) {
	return l.NextClass(id, int(l.D.BC.Of[b]))
}

// NextClass is NextByte for a byte class.
func (l *Lazy) NextClass(id int32, c int) (int32, error) {
	p, off := id>>l.pageBits, int(id&(l.pageSize-1))
	slot := &l.rows[p][off*l.nc+c]
	if to := atomic.LoadInt32(slot); to >= 0 {
		return to, nil
	}
	return l.construct(id, c, slot)
}

// construct computes and publishes the missing transition.
func (l *Lazy) construct(id int32, c int, slot *int32) (int32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if to := atomic.LoadInt32(slot); to >= 0 {
		return to, nil // lost the race; another goroutine built it
	}
	f := l.Map(id)
	next := make([]int16, l.n)
	for q := 0; q < l.n; q++ {
		next[q] = int16(l.D.NextClass(int32(f[q]), c))
	}
	to, _, err := l.intern(next)
	if err != nil {
		return 0, err
	}
	atomic.StoreInt32(slot, to) // publish: readers of `to` now see its page
	return to, nil
}

// intern must be called with l.mu held.
func (l *Lazy) intern(vec []int16) (int32, bool, error) {
	h := hashVec16(vec)
	for _, id := range l.ids[h] {
		if eqVec16(l.Map(id), vec) {
			return id, false, nil
		}
	}
	id := l.numStates.Load()
	if id >= l.maxState {
		return 0, false, fmt.Errorf("%w (lazy cap %d)", ErrTooManyStates, l.maxState)
	}
	p, off := id>>l.pageBits, int(id&(l.pageSize-1))
	if l.rows[p] == nil {
		if !l.h.TryCharge(l.pageBytes()) {
			return 0, false, fmt.Errorf("%w (lazy page)", ErrTableBudget)
		}
		l.bytes += l.pageBytes()
		rows := make([]int32, int(l.pageSize)*l.nc)
		for i := range rows {
			rows[i] = -1
		}
		l.rows[p] = rows
		l.maps[p] = make([]int16, int(l.pageSize)*l.n)
		l.accept[p] = make([]bool, l.pageSize)
	}
	copy(l.maps[p][off*l.n:(off+1)*l.n], vec)
	l.accept[p][off] = l.D.Accept[vec[l.D.Start]]
	l.ids[h] = append(l.ids[h], id)
	// numStates.Store is the only mutation of the counter and happens
	// under l.mu; readers use it only for statistics.
	l.numStates.Store(id + 1)
	return id, true, nil
}

// Run advances from state `from` over text, constructing states on demand.
func (l *Lazy) Run(from int32, text []byte) (int32, error) {
	q := from
	bc := &l.D.BC.Of
	for _, b := range text {
		to, err := l.NextClass(q, int(bc[b]))
		if err != nil {
			return 0, err
		}
		q = to
	}
	return q, nil
}

// Accepts reports whole-input acceptance, building states as needed.
func (l *Lazy) Accepts(text []byte) (bool, error) {
	q, err := l.Run(l.start, text)
	if err != nil {
		return false, err
	}
	return l.Accepting(q), nil
}
