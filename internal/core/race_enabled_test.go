//go:build race

package core

// raceEnabled reports that this test binary was built with the race
// detector; concurrency stress tests scale their iteration counts down
// under its instrumentation.
const raceEnabled = true
