// Width-specialized 256-wide transition tables.
//
// The matching cost of Algorithm 5 is one table lookup per byte per
// thread, so the physical size of a table entry decides how many automaton
// states fit in each cache level — the effect Fig. 8 isolates (the r500
// D-SFA's 1 GB of int32 tables against a 12 MB LLC). Narrowing the entry
// to the smallest integer that can hold every state id shrinks the
// resident table 2–4×: an automaton with ≤ 256 states walks a []uint8
// table (256 B per state), one with ≤ 65 536 states a []uint16 table
// (512 B per state), and only larger automata pay the 1 KB-per-state
// int32 layout the paper used.
package core

// FitsU8 reports whether every id of an automaton with n states fits in a
// uint8 table entry.
func FitsU8(n int) bool { return n <= 1<<8 }

// FitsU16 reports whether every id fits in a uint16 table entry.
func FitsU16(n int) bool { return n <= 1<<16 }

// buildTable256 drives a width-specialized table build from any successor
// function over byte classes.
func buildTable256(numStates, classes int, classOf *[256]uint8, nextC []int32, store func(i int, to int32)) {
	for q := 0; q < numStates; q++ {
		base := q * classes
		for b := 0; b < 256; b++ {
			store(q*256+b, nextC[base+int(classOf[b])])
		}
	}
}

// Table256U8 materializes the flat 256-wide table with uint8 entries
// (256 B per SFA state). It panics unless FitsU8(s.NumStates).
func (s *DSFA) Table256U8() []uint8 {
	if !FitsU8(s.NumStates) {
		panic("core: Table256U8 needs ≤ 256 states")
	}
	t := make([]uint8, s.NumStates*256)
	buildTable256(s.NumStates, s.D.BC.Count, &s.D.BC.Of, s.NextC,
		func(i int, to int32) { t[i] = uint8(to) })
	return t
}

// Table256U16 materializes the flat 256-wide table with uint16 entries
// (512 B per SFA state). It panics unless FitsU16(s.NumStates).
func (s *DSFA) Table256U16() []uint16 {
	if !FitsU16(s.NumStates) {
		panic("core: Table256U16 needs ≤ 65536 states")
	}
	t := make([]uint16, s.NumStates*256)
	buildTable256(s.NumStates, s.D.BC.Count, &s.D.BC.Of, s.NextC,
		func(i int, to int32) { t[i] = uint16(to) })
	return t
}

// Table256 materializes the N-SFA's flat 256-wide int32 table (the layout
// the engine used to build by hand).
func (s *NSFA) Table256() []int32 {
	t := make([]int32, s.NumStates*256)
	buildTable256(s.NumStates, s.t.BC.Count, &s.t.BC.Of, s.NextC,
		func(i int, to int32) { t[i] = to })
	return t
}

// Table256U8 is the uint8-entry layout for N-SFAs with ≤ 256 states.
func (s *NSFA) Table256U8() []uint8 {
	if !FitsU8(s.NumStates) {
		panic("core: Table256U8 needs ≤ 256 states")
	}
	t := make([]uint8, s.NumStates*256)
	buildTable256(s.NumStates, s.t.BC.Count, &s.t.BC.Of, s.NextC,
		func(i int, to int32) { t[i] = uint8(to) })
	return t
}

// Table256U16 is the uint16-entry layout for N-SFAs with ≤ 65536 states.
func (s *NSFA) Table256U16() []uint16 {
	if !FitsU16(s.NumStates) {
		panic("core: Table256U16 needs ≤ 65536 states")
	}
	t := make([]uint16, s.NumStates*256)
	buildTable256(s.NumStates, s.t.BC.Count, &s.t.BC.Of, s.NextC,
		func(i int, to int32) { t[i] = uint16(to) })
	return t
}
