package core

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/nfa"
)

// NSFA is a simultaneous finite automaton constructed from an ε-free NFA
// (the paper's N-SFA). Each state is a correspondence f: Q → P(Q), stored
// as an |Q|×|Q| boolean matrix with bitset rows; row q is the set f(q).
//
// The ⊙ reduction of N-SFA mappings is boolean matrix multiplication,
// which is why Table II lists O(|N|³ log p) for its parallel reduction.
type NSFA struct {
	A         *nfa.NFA
	NumStates int
	Start     int32
	Accept    []bool
	NextC     []int32
	EmptyID   int32 // id of the all-empty correspondence, or -1

	t     *nfa.Table
	n     int      // rows per matrix == A.NumStates
	words int      // words per row
	mats  []uint64 // flat NumStates × n × words matrices
}

// BuildNSFA runs the correspondence construction (Algorithm 4, general
// case: fnext(q) = ⋃_{q'∈f(q)} δ(q', σ)) on an ε-free NFA. cap > 0 bounds
// the number of N-SFA states.
func BuildNSFA(a *nfa.NFA, cap int) (*NSFA, error) {
	if a.HasEps() {
		return nil, errors.New("core: N-SFA construction requires an ε-free NFA (use Glushkov)")
	}
	t := nfa.Compile(a)
	n := a.NumStates
	words := t.Words
	nc := t.BC.Count
	mw := n * words // words per matrix

	s := &NSFA{A: a, t: t, n: n, words: words, EmptyID: -1}

	ids := make(map[uint64][]int32)
	intern := func(mat []uint64) (int32, bool, error) {
		h := hashWords(mat)
		for _, id := range ids[h] {
			if eqWords(s.matOf(id), mat) {
				return id, false, nil
			}
		}
		if cap > 0 && s.NumStates >= cap {
			return 0, false, fmt.Errorf("%w (cap %d)", ErrTooManyStates, cap)
		}
		id := int32(s.NumStates)
		s.NumStates++
		s.mats = append(s.mats, mat...)
		ids[h] = append(ids[h], id)
		s.NextC = append(s.NextC, make([]int32, nc)...)
		return id, true, nil
	}

	// Identity correspondence: f(q) = {q}.
	identity := make([]uint64, mw)
	for q := 0; q < n; q++ {
		identity[q*words+(q>>6)] |= 1 << (q & 63)
	}
	start, _, err := intern(identity)
	if err != nil {
		return nil, err
	}
	s.Start = start

	queue := []int32{start}
	next := make([]uint64, mw)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for c := 0; c < nc; c++ {
			f := s.matOf(id)
			for i := range next {
				next[i] = 0
			}
			for q := 0; q < n; q++ {
				t.Step(next[q*words:(q+1)*words], f[q*words:(q+1)*words], c)
			}
			to, fresh, err := intern(next)
			if err != nil {
				return nil, err
			}
			s.NextC[int(id)*nc+c] = to
			if fresh {
				queue = append(queue, to)
			}
		}
	}

	s.Accept = make([]bool, s.NumStates)
	for id := int32(0); id < int32(s.NumStates); id++ {
		mat := s.matOf(id)
		empty := true
		for _, w := range mat {
			if w != 0 {
				empty = false
				break
			}
		}
		if empty {
			s.EmptyID = id
		}
		for _, q0 := range a.Start {
			if a.AcceptsSet(mat[int(q0)*words : (int(q0)+1)*words]) {
				s.Accept[id] = true
				break
			}
		}
	}
	return s, nil
}

func (s *NSFA) matOf(id int32) []uint64 {
	mw := s.n * s.words
	return s.mats[int(id)*mw : (int(id)+1)*mw]
}

// Mat returns the boolean matrix of N-SFA state id (rows of s.Words()
// words each). The slice aliases internal storage; do not modify.
func (s *NSFA) Mat(id int32) []uint64 { return s.matOf(id) }

// Words returns the number of 64-bit words per matrix row.
func (s *NSFA) Words() int { return s.words }

// LiveSize excludes the all-empty correspondence, mirroring DSFA.LiveSize.
func (s *NSFA) LiveSize() int {
	if s.EmptyID >= 0 {
		return s.NumStates - 1
	}
	return s.NumStates
}

// NextByte returns the successor of N-SFA state id on input byte b.
func (s *NSFA) NextByte(id int32, b byte) int32 {
	return s.NextC[int(id)*s.t.BC.Count+int(s.t.BC.Of[b])]
}

// Run returns the N-SFA state reached from `from` after reading text.
func (s *NSFA) Run(from int32, text []byte) int32 {
	q := from
	for _, b := range text {
		q = s.NextByte(q, b)
	}
	return q
}

// Accepts reports whole-input acceptance by the N-SFA.
func (s *NSFA) Accepts(text []byte) bool {
	return s.Accept[s.Run(s.Start, text)]
}

// ComposeMat writes into h the composition "f then g" of two
// correspondences: h(q) = ⋃_{p∈f(q)} g(p) — one boolean matrix product,
// the O(|N|³) step of Table II's N-SFA parallel reduction.
// h must be zeroed and must not alias f or g; all three are n×words flat
// matrices.
func ComposeMat(h, f, g []uint64, n, words int) {
	for q := 0; q < n; q++ {
		hq := h[q*words : (q+1)*words]
		fq := f[q*words : (q+1)*words]
		for w, word := range fq {
			for word != 0 {
				tz := bits.TrailingZeros64(word)
				word &^= 1 << tz
				p := w*64 + tz
				gp := g[p*words : (p+1)*words]
				for i := range hq {
					hq[i] |= gp[i]
				}
			}
		}
	}
}

// String summarizes the automaton.
func (s *NSFA) String() string {
	return fmt.Sprintf("NSFA{states: %d (live %d), over NFA %d}",
		s.NumStates, s.LiveSize(), s.A.NumStates)
}
