package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dfa"
)

func TestDSFARoundTrip(t *testing.T) {
	for _, pat := range []string{"(ab)*", "([0-4]{5}[5-9]{5})*", "(a|bc)*d?"} {
		d := dfa.MustCompilePattern(pat)
		s, err := BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadDSFA(&buf)
		if err != nil {
			t.Fatalf("%q: %v", pat, err)
		}
		if got.NumStates != s.NumStates || got.Start != s.Start || got.EmptyID != s.EmptyID {
			t.Fatalf("%q: header mismatch", pat)
		}
		// Mapping vectors identical.
		for id := int32(0); id < int32(s.NumStates); id++ {
			if !eqVec16(s.Map(id), got.Map(id)) {
				t.Fatalf("%q: mapping %d differs", pat, id)
			}
		}
		// StateOf works after reload.
		if _, ok := got.StateOf(s.Map(s.Start)); !ok {
			t.Fatalf("%q: intern index not rebuilt", pat)
		}
		// Behaviour identical.
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 60; i++ {
			w := make([]byte, r.Intn(24))
			for j := range w {
				w[j] = "ab0123456789cd"[r.Intn(14)]
			}
			if s.Accepts(w) != got.Accepts(w) {
				t.Fatalf("%q: verdict mismatch on %q", pat, w)
			}
		}
	}
}

// TestStateOfLazyIndexConcurrent: the first StateOf after a load builds
// the intern index on demand; concurrent first calls must all observe a
// consistent index (sync.Once), and every interned vector must resolve.
func TestStateOfLazyIndexConcurrent(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{5}[5-9]{5})*")
	s, err := BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDSFA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for id := int32(g); id < int32(got.NumStates); id += 8 {
				if r, ok := got.StateOf(got.Map(id)); !ok || !eqVec16(got.Map(r), got.Map(id)) {
					done <- bytesErr(id)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

type bytesErr int32

func (e bytesErr) Error() string { return "StateOf failed for interned state" }

// BenchmarkReadDSFA measures warm snapshot decode. The StateOf intern
// index used to be rebuilt here by hashing every mapping vector; it is
// now lazy, so this is pure read+validate. BenchmarkReadDSFA_EagerIndex
// adds the index build back (what every load used to pay) for the
// before/after comparison.
func benchReadDSFA(b *testing.B, eager bool) {
	d := dfa.MustCompilePattern("([0-4]{5}[5-9]{5})*([ab]{3}[cd]{3})*")
	s, err := BuildDSFA(d, 0)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := ReadDSFA(bytes.NewReader(blob))
		if err != nil {
			b.Fatal(err)
		}
		if eager {
			got.ensureIDs()
		}
	}
}

func BenchmarkReadDSFA(b *testing.B)            { benchReadDSFA(b, false) }
func BenchmarkReadDSFA_EagerIndex(b *testing.B) { benchReadDSFA(b, true) }

func TestReadDSFARejectsGarbage(t *testing.T) {
	if _, err := ReadDSFA(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	// A valid DFA followed by garbage must fail at the SFA layer.
	d := dfa.MustCompilePattern("(ab)*")
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("not an sfa")
	if _, err := ReadDSFA(&buf); err == nil {
		t.Error("garbage SFA section accepted")
	}
}

func TestDSFARoundTripTruncated(t *testing.T) {
	d := dfa.MustCompilePattern("(ab)*")
	s, err := BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, buf.Len() / 2, buf.Len() - 3} {
		if _, err := ReadDSFA(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
