package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dfa"
)

func buildDSFA(t *testing.T, pattern string) *DSFA {
	t.Helper()
	d := dfa.MustCompilePattern(pattern)
	s, err := BuildDSFA(d, 0)
	if err != nil {
		t.Fatalf("BuildDSFA(%q): %v", pattern, err)
	}
	return s
}

// TestExample1TableI pins the exact SFA of the paper's running example:
// Fig. 2 / Table I give the six state mappings f0…f5 of the SFA for
// (ab)*, over the DFA of Fig. 1 (states 0 = start/accept, 1 = after a,
// 2 = dead).
func TestExample1TableI(t *testing.T) {
	s := buildDSFA(t, "(ab)*")
	d := s.D
	if s.NumStates != 6 {
		t.Fatalf("|S1| = %d states, Fig. 2 shows 6", s.NumStates)
	}
	if s.LiveSize() != 5 {
		t.Fatalf("live size = %d, want 5 (f3 is the dead mapping)", s.LiveSize())
	}

	// Identify DFA states semantically.
	q0 := d.Start
	q1 := d.Run(q0, []byte("a"))
	qd := d.Dead
	if qd == dfa.NoDead || q1 == q0 || q1 == qd {
		t.Fatalf("unexpected DFA shape: q0=%d q1=%d dead=%d", q0, q1, qd)
	}
	// Build each fi's vector in terms of (q0, q1, qd), exactly Table I.
	want := map[string][]int16{}
	set := func(name string, m map[int32]int32) {
		v := make([]int16, d.NumStates)
		for q, to := range m {
			v[q] = int16(to)
		}
		want[name] = v
	}
	set("f0", map[int32]int32{q0: q0, q1: q1, qd: qd}) // identity
	set("f1", map[int32]int32{q0: q1, q1: qd, qd: qd}) // after a
	set("f2", map[int32]int32{q0: qd, q1: q0, qd: qd}) // after b
	set("f3", map[int32]int32{q0: qd, q1: qd, qd: qd}) // dead
	set("f4", map[int32]int32{q0: q0, q1: qd, qd: qd}) // after ab
	set("f5", map[int32]int32{q0: qd, q1: q1, qd: qd}) // after ba

	id := map[string]int32{}
	for name, v := range want {
		got, ok := s.StateOf(v)
		if !ok {
			t.Fatalf("Table I mapping %s not reachable", name)
		}
		id[name] = got
	}
	if id["f0"] != s.Start {
		t.Error("f0 must be the start state")
	}
	if id["f3"] != s.EmptyID {
		t.Error("f3 must be the dead mapping")
	}
	// Transition structure of Fig. 2 (spot checks along abab):
	// f0 -a-> f1 -b-> f4 -a-> f1 -b-> f4.
	if got := s.Run(s.Start, []byte("a")); got != id["f1"] {
		t.Errorf("f0 --a--> %d, want f1=%d", got, id["f1"])
	}
	if got := s.Run(s.Start, []byte("ab")); got != id["f4"] {
		t.Errorf("f0 --ab--> %d, want f4=%d", got, id["f4"])
	}
	if got := s.Run(s.Start, []byte("abab")); got != id["f4"] {
		t.Errorf("f0 --abab--> %d, want f4=%d", got, id["f4"])
	}
	if got := s.Run(s.Start, []byte("ba")); got != id["f5"] {
		t.Errorf("f0 --ba--> %d, want f5=%d", got, id["f5"])
	}
	// Acceptance: f ∈ Fs iff f(0) ∩ F ≠ ∅ and I = {0}, so only f0 and f4
	// (which map 0 back to the accepting state 0) are final — Example 1
	// notes "f4(0) = {0} implies … f4 is also an accepted state".
	for _, name := range []string{"f0", "f4"} {
		if !s.Accept[id[name]] {
			t.Errorf("%s should accept", name)
		}
	}
	for _, name := range []string{"f1", "f2", "f3", "f5"} {
		if s.Accept[id[name]] {
			t.Errorf("%s should reject", name)
		}
	}
}

// TestExample2Reduction replays the paper's Example 2: w = (ab)⁷ split as
// aba | baba | bab | abab; local runs give f1, f5, f2, f4 and the ⊙-fold
// gives f4, whose application to the DFA start state yields {0}.
func TestExample2Reduction(t *testing.T) {
	s := buildDSFA(t, "(ab)*")
	chunks := []string{"aba", "baba", "bab", "abab"}
	local := make([]int32, len(chunks))
	for i, w := range chunks {
		local[i] = s.Run(s.Start, []byte(w))
	}
	// (f1 ⊙ f5) ⊙ (f2 ⊙ f4) per the example's parallel reduction order.
	n := s.D.NumStates
	comp := func(f, g int32) []int16 {
		h := make([]int16, n)
		ComposeVec(h, s.Map(f), s.Map(g))
		return h
	}
	left, ok := s.StateOf(comp(local[0], local[1]))
	if !ok {
		t.Fatal("f1 ⊙ f5 not a reachable mapping")
	}
	right, ok := s.StateOf(comp(local[2], local[3]))
	if !ok {
		t.Fatal("f2 ⊙ f4 not a reachable mapping")
	}
	final := make([]int16, n)
	ComposeVec(final, s.Map(left), s.Map(right))
	fid, ok := s.StateOf(final)
	if !ok {
		t.Fatal("final composition not reachable")
	}
	want := s.Run(s.Start, []byte("ababababababab"))
	if fid != want {
		t.Errorf("reduced state %d != sequential state %d", fid, want)
	}
	if !s.Accept[fid] {
		t.Error("(ab)⁷ must be accepted")
	}
	// Example 2 also notes f1 ⊙ f5 = f1: verify idempotent-ish identity.
	if left != local[0] {
		t.Errorf("f1 ⊙ f5 = %d, example says it equals f1 = %d", left, local[0])
	}
	// Sequential reduction: start from D's initial state and apply each map.
	q := s.D.Start
	for _, f := range local {
		q = int32(s.Map(f)[q])
	}
	if !s.D.Accept[q] {
		t.Error("sequential reduction must accept")
	}
}

// TestRnSizeLaw pins the |Sd| = |D|² + |D| − 1 law that the paper's
// r_n = ([0-4]{n}[5-9]{n})* family exhibits (|Sd| = 109, 10 099, 1 000 999
// for n = 5, 50, 500 — Figs. 6–8).
func TestRnSizeLaw(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 10, 15} {
		pattern := fmt.Sprintf("([0-4]{%d}[5-9]{%d})*", n, n)
		s := buildDSFA(t, pattern)
		dLive := s.D.LiveSize()
		if dLive != 2*n {
			t.Errorf("r%d: |D| = %d, want %d", n, dLive, 2*n)
		}
		want := dLive*dLive + dLive - 1
		if got := s.LiveSize(); got != want {
			t.Errorf("r%d: |Sd| = %d, want %d", n, got, want)
		}
	}
}

// TestPaperSFASizes pins every SFA size the paper quotes that is small
// enough to build in a unit test.
func TestPaperSFASizes(t *testing.T) {
	cases := []struct {
		pattern string
		dLive   int
		sLive   int
	}{
		{"([0-4]{5}[5-9]{5})*", 10, 109},      // Fig. 6
		{"([0-4]{50}[5-9]{50})*", 100, 10099}, // Fig. 7
		{"(([02468][13579]){5})*", 10, 21},    // Fig. 10
		// Fig. 9's ([0-4]{500}[5-9]{500})*|a* is quoted as |D| = 1002,
		// |Sd| = 1001000 = |Sd(r500)| + 1; the n=5 analogue obeys the same
		// +2/+1 arithmetic: |D| = 12, |Sd| = 110.
		{"([0-4]{5}[5-9]{5})*|a*", 12, 110},
	}
	for _, c := range cases {
		s := buildDSFA(t, c.pattern)
		if s.D.LiveSize() != c.dLive {
			t.Errorf("%q: |D| = %d, want %d", c.pattern, s.D.LiveSize(), c.dLive)
		}
		if s.LiveSize() != c.sLive {
			t.Errorf("%q: |Sd| = %d, want %d", c.pattern, s.LiveSize(), c.sLive)
		}
	}
}

// TestDotStarChainCubicBlowup reproduces the Sect. VI-A anecdote: rules
// with several .* in sequence are the only SNORT family whose D-SFA
// exceeds |D|³ (the paper's 10-state example reaches 3739 states).
// Our PROMPT-like chain reaches 4556 > 10³ with |D| = 10, and stays under
// |D|⁴ — "no regular expressions in the rulesets lead to a D-SFA of
// over-quadruplicate size".
func TestDotStarChainCubicBlowup(t *testing.T) {
	s := buildDSFA(t, "(?s).*(T.*Y.*P.*P.*R.*O.*M.*P.*T)")
	dLive := s.D.LiveSize()
	if dLive != 10 {
		t.Fatalf("|D| = %d, want 10", dLive)
	}
	if got := s.LiveSize(); got != 4556 {
		t.Errorf("|Sd| = %d, want 4556", got)
	}
	if s.LiveSize() <= dLive*dLive*dLive {
		t.Error("expected over-cube growth")
	}
	if s.LiveSize() > dLive*dLive*dLive*dLive {
		t.Error("growth exceeded the quartic bound the paper reports for SNORT")
	}
}

// TestTheorem2Equivalence: L(SFA) = L(DFA) on random patterns and words.
func TestTheorem2Equivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		pat := randPattern(r, 3)
		d := dfa.MustCompilePattern(pat)
		s, err := BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			w := randWord(r, 12)
			if d.Accepts(w) != s.Accepts(w) {
				t.Fatalf("pattern %q: SFA disagrees with DFA on %q", pat, w)
			}
		}
	}
}

// TestLemma1 checks f_{w1·w2} = f_{w1} ⊙ f_{w2} on random words: the
// mapping reached on a concatenation equals the composition of the
// mappings reached on the halves.
func TestLemma1(t *testing.T) {
	s := buildDSFA(t, "([0-4]{3}[5-9]{3})*")
	r := rand.New(rand.NewSource(21))
	digits := []byte("0123456789ab")
	for trial := 0; trial < 300; trial++ {
		w := make([]byte, r.Intn(20))
		for i := range w {
			w[i] = digits[r.Intn(len(digits))]
		}
		cut := 0
		if len(w) > 0 {
			cut = r.Intn(len(w) + 1)
		}
		f1 := s.Run(s.Start, w[:cut])
		f2 := s.Run(s.Start, w[cut:])
		h := make([]int16, s.D.NumStates)
		ComposeVec(h, s.Map(f1), s.Map(f2))
		hid, ok := s.StateOf(h)
		if !ok {
			t.Fatalf("composition of reachable mappings not reachable (monoid closure violated)")
		}
		if whole := s.Run(s.Start, w); whole != hid {
			t.Fatalf("Lemma 1 violated on %q cut at %d", w, cut)
		}
	}
}

// TestTheorem3AnySplit splits random accepted and rejected inputs at many
// random points into k chunks; the ⊙-fold of per-chunk runs must always
// equal the unsplit run.
func TestTheorem3AnySplit(t *testing.T) {
	s := buildDSFA(t, "(([02468][13579]){5})*")
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		w := make([]byte, r.Intn(64))
		for i := range w {
			w[i] = byte('0' + r.Intn(10))
		}
		want := s.Run(s.Start, w)
		k := 1 + r.Intn(6)
		cuts := make([]int, 0, k+1)
		cuts = append(cuts, 0)
		for i := 0; i < k-1; i++ {
			if len(w) > 0 {
				cuts = append(cuts, r.Intn(len(w)+1))
			} else {
				cuts = append(cuts, 0)
			}
		}
		cuts = append(cuts, len(w))
		sortInts(cuts)
		// Fold mappings left to right.
		acc := append([]int16(nil), s.Map(s.Start)...)
		tmp := make([]int16, s.D.NumStates)
		for i := 0; i+1 < len(cuts); i++ {
			f := s.Run(s.Start, w[cuts[i]:cuts[i+1]])
			ComposeVec(tmp, acc, s.Map(f))
			acc, tmp = tmp, acc
		}
		got, ok := s.StateOf(acc)
		if !ok || got != want {
			t.Fatalf("Theorem 3 violated: %q cuts %v", w, cuts)
		}
	}
}

// TestComposeVecAssociative: ⊙ is associative (the property parallel
// reduction depends on), checked with testing/quick over random
// transformations.
func TestComposeVecAssociative(t *testing.T) {
	const n = 9
	gen := func(r *rand.Rand) []int16 {
		v := make([]int16, n)
		for i := range v {
			v[i] = int16(r.Intn(n))
		}
		return v
	}
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f, g, h := gen(r), gen(r), gen(r)
		fg, gh, l, rr := make([]int16, n), make([]int16, n), make([]int16, n), make([]int16, n)
		ComposeVec(fg, f, g)
		ComposeVec(l, fg, h) // (f⊙g)⊙h
		ComposeVec(gh, g, h)
		ComposeVec(rr, f, gh) // f⊙(g⊙h)
		return eqVec16(l, rr)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestIdentityIsUnit: f_I ⊙ f = f ⊙ f_I = f for every reachable f.
func TestIdentityIsUnit(t *testing.T) {
	s := buildDSFA(t, "([0-4]{2}[5-9]{2})*")
	idVec := s.Map(s.Start)
	h := make([]int16, s.D.NumStates)
	for f := int32(0); f < int32(s.NumStates); f++ {
		ComposeVec(h, idVec, s.Map(f))
		if !eqVec16(h, s.Map(f)) {
			t.Fatalf("f_I ⊙ f%d ≠ f%d", f, f)
		}
		ComposeVec(h, s.Map(f), idVec)
		if !eqVec16(h, s.Map(f)) {
			t.Fatalf("f%d ⊙ f_I ≠ f%d", f, f)
		}
	}
}

// TestMonoidClosure: the reachable mappings are closed under ⊙ — they form
// the transition monoid of D (Sect. VII-A).
func TestMonoidClosure(t *testing.T) {
	s := buildDSFA(t, "([0-4]{2}[5-9]{2})*")
	h := make([]int16, s.D.NumStates)
	for f := int32(0); f < int32(s.NumStates); f++ {
		for g := int32(0); g < int32(s.NumStates); g++ {
			ComposeVec(h, s.Map(f), s.Map(g))
			if _, ok := s.StateOf(h); !ok {
				t.Fatalf("f%d ⊙ f%d escapes the reachable set", f, g)
			}
		}
	}
}

func TestBuildDSFACap(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{10}[5-9]{10})*") // |Sd| = 419
	_, err := BuildDSFA(d, 100)
	if !errors.Is(err, ErrTooManyStates) {
		t.Fatalf("got %v, want ErrTooManyStates", err)
	}
	if _, err := BuildDSFA(d, 1000); err != nil {
		t.Fatalf("cap 1000 should fit 420 states: %v", err)
	}
}

func TestTable256MatchesClassTable(t *testing.T) {
	s := buildDSFA(t, "(ab|cd)*x?")
	tab := s.Table256()
	q1, q2 := s.Start, s.Start
	for _, b := range []byte("abcdxq") {
		q1 = s.NextByte(q1, b)
		q2 = tab[int(q2)*256+int(b)]
		if q1 != q2 {
			t.Fatalf("flat table diverges on %q", b)
		}
	}
}

func TestApplyVec(t *testing.T) {
	s := buildDSFA(t, "(ab)*")
	f := s.Run(s.Start, []byte("ab"))
	if got := ApplyVec(s.Map(f), s.D.Start); got != s.D.Start {
		t.Errorf("f_ab(q0) = %d, want q0 = %d", got, s.D.Start)
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	s := buildDSFA(t, "([0-4]{5}[5-9]{5})*")
	if s.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}

func TestDSFARejectsHugeDFA(t *testing.T) {
	// Fabricate a DFA that exceeds MaxDFAStates without building it fully:
	// use a real small DFA and lie about nothing — instead check the
	// guard via the exported constant.
	if MaxDFAStates != 1<<15 {
		t.Skip("constant changed; update test")
	}
	// Construction guard is exercised indirectly: a DFA cannot be built
	// that large in-test cheaply, so only verify the API contract exists.
	d := dfa.MustCompilePattern("(ab)*")
	if _, err := BuildDSFA(d, 0); err != nil {
		t.Fatal(err)
	}
}

func randPattern(r *rand.Rand, depth int) string {
	if depth <= 0 {
		return string(byte('a' + r.Intn(3)))
	}
	switch r.Intn(6) {
	case 0:
		return randPattern(r, depth-1) + randPattern(r, depth-1)
	case 1:
		return "(?:" + randPattern(r, depth-1) + "|" + randPattern(r, depth-1) + ")"
	case 2:
		return "(?:" + randPattern(r, depth-1) + ")*"
	case 3:
		return "(?:" + randPattern(r, depth-1) + ")?"
	case 4:
		return "(?:" + randPattern(r, depth-1) + ")+"
	default:
		return randPattern(r, depth-1)
	}
}

func randWord(r *rand.Rand, maxLen int) []byte {
	n := r.Intn(maxLen + 1)
	w := make([]byte, n)
	for i := range w {
		w[i] = byte('a' + r.Intn(3))
	}
	return w
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
