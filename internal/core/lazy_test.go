package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dfa"
)

func TestLazyMatchesEager(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		pat := randPattern(r, 3)
		d := dfa.MustCompilePattern(pat)
		eager, err := BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := NewLazy(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			w := randWord(r, 16)
			want := eager.Accepts(w)
			got, err := lazy.Accepts(w)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("pattern %q: lazy disagrees on %q", pat, w)
			}
		}
		if lazy.NumStates() > eager.NumStates {
			t.Errorf("lazy materialized %d states, eager total is %d",
				lazy.NumStates(), eager.NumStates)
		}
	}
}

func TestLazyBoundedByInputLength(t *testing.T) {
	// Sect. V-A: on-the-fly construction creates at most one new state per
	// input byte (plus the identity).
	d := dfa.MustCompilePattern("([0-4]{5}[5-9]{5})*")
	lazy, err := NewLazy(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("0123456789")
	if _, err := lazy.Run(lazy.Start(), input); err != nil {
		t.Fatal(err)
	}
	if lazy.NumStates() > len(input)+1 {
		t.Errorf("lazy states %d > input length + 1 = %d", lazy.NumStates(), len(input)+1)
	}
}

func TestLazyCap(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{5}[5-9]{5})*") // 110 total states
	lazy, err := NewLazy(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	text := bytes.Repeat([]byte("0123456789"), 4)
	_, err = lazy.Run(lazy.Start(), text)
	if !errors.Is(err, ErrTooManyStates) {
		t.Fatalf("got %v, want ErrTooManyStates", err)
	}
}

func TestLazyConcurrent(t *testing.T) {
	// Many goroutines walking the same lazy SFA must agree with the eager
	// one; run with -race to exercise the publication protocol.
	d := dfa.MustCompilePattern("(([02468][13579]){5})*")
	eager, err := BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewLazy(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < 300; k++ {
				w := make([]byte, r.Intn(40))
				for j := range w {
					w[j] = byte('0' + r.Intn(10))
				}
				got, err := lazy.Accepts(w)
				if err != nil {
					errs[seed] = err
					return
				}
				if got != eager.Accepts(w) {
					errs[seed] = errors.New("lazy/eager mismatch")
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if lazy.NumStates() > eager.NumStates {
		t.Errorf("lazy states %d exceed eager %d", lazy.NumStates(), eager.NumStates)
	}
}

func TestLazyMapAgreesWithEager(t *testing.T) {
	d := dfa.MustCompilePattern("([0-4]{3}[5-9]{3})*")
	eager, err := BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewLazy(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := []byte("012567")
	le, err := lazy.Run(lazy.Start(), w)
	if err != nil {
		t.Fatal(err)
	}
	ee := eager.Run(eager.Start, w)
	if !eqVec16(lazy.Map(le), eager.Map(ee)) {
		t.Error("lazy and eager mapping vectors differ")
	}
	if lazy.Accepting(le) != eager.Accept[ee] {
		t.Error("acceptance differs")
	}
}
