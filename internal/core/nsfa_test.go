package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

func buildNSFA(t *testing.T, pattern string) *NSFA {
	t.Helper()
	a, err := nfa.Glushkov(syntax.MustParse(pattern, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildNSFA(a, 0)
	if err != nil {
		t.Fatalf("BuildNSFA(%q): %v", pattern, err)
	}
	return s
}

func TestNSFAEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		pat := randPattern(r, 3)
		node := syntax.MustParse(pat, 0)
		a, err := nfa.Glushkov(node)
		if err != nil {
			t.Fatal(err)
		}
		s, err := BuildNSFA(a, 200_000)
		if errors.Is(err, ErrTooManyStates) {
			continue // rare blowup; size is not the property under test
		}
		if err != nil {
			t.Fatal(err)
		}
		sim := nfa.NewSimulator(a)
		for i := 0; i < 25; i++ {
			w := randWord(r, 10)
			if s.Accepts(w) != sim.Match(w) {
				t.Fatalf("pattern %q: N-SFA disagrees with NFA on %q", pat, w)
			}
		}
	}
}

func TestNSFARejectsEpsNFA(t *testing.T) {
	a, err := nfa.Thompson(syntax.MustParse("(ab)*", 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildNSFA(a, 0); err == nil {
		t.Error("expected error for ε-NFA input")
	}
}

func TestNSFAIdentitySemantics(t *testing.T) {
	s := buildNSFA(t, "(ab)*")
	// The start state must be the identity correspondence f(q) = {q}.
	mat := s.Mat(s.Start)
	w := s.Words()
	for q := 0; q < s.A.NumStates; q++ {
		row := mat[q*w : (q+1)*w]
		for i, word := range row {
			want := uint64(0)
			if q>>6 == i {
				want = 1 << (q & 63)
			}
			if word != want {
				t.Fatalf("identity row %d corrupt", q)
			}
		}
	}
}

func TestNSFAvsDSFAAgree(t *testing.T) {
	// The N-SFA built on a Glushkov NFA and the D-SFA built on its
	// determinization recognize the same language.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		pat := randPattern(r, 3)
		node := syntax.MustParse(pat, 0)
		a, err := nfa.Glushkov(node)
		if err != nil {
			t.Fatal(err)
		}
		ns, err := BuildNSFA(a, 200_000)
		if errors.Is(err, ErrTooManyStates) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		d := dfa.MustCompilePattern(pat)
		ds, err := BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			w := randWord(r, 10)
			if ns.Accepts(w) != ds.Accepts(w) {
				t.Fatalf("pattern %q: N-SFA and D-SFA disagree on %q", pat, w)
			}
		}
	}
}

func TestComposeMatMatchesRun(t *testing.T) {
	// Lemma 1 for N-SFA: the matrix of w1·w2 equals Mat(w1)·Mat(w2).
	s := buildNSFA(t, "(a|bc)*")
	n, w := s.A.NumStates, s.Words()
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		word := randWord(r, 12)
		cut := 0
		if len(word) > 0 {
			cut = r.Intn(len(word) + 1)
		}
		f1 := s.Run(s.Start, word[:cut])
		f2 := s.Run(s.Start, word[cut:])
		h := make([]uint64, n*w)
		ComposeMat(h, s.Mat(f1), s.Mat(f2), n, w)
		whole := s.Run(s.Start, word)
		if !eqWords(h, s.Mat(whole)) {
			t.Fatalf("N-SFA Lemma 1 violated on %q cut %d", word, cut)
		}
	}
}

func TestComposeMatAssociative(t *testing.T) {
	s := buildNSFA(t, "(a|bc)*")
	n, w := s.A.NumStates, s.Words()
	r := rand.New(rand.NewSource(9))
	pick := func() []uint64 { return s.Mat(int32(r.Intn(s.NumStates))) }
	for trial := 0; trial < 100; trial++ {
		f, g, h := pick(), pick(), pick()
		fg := make([]uint64, n*w)
		ComposeMat(fg, f, g, n, w)
		left := make([]uint64, n*w)
		ComposeMat(left, fg, h, n, w)
		gh := make([]uint64, n*w)
		ComposeMat(gh, g, h, n, w)
		right := make([]uint64, n*w)
		ComposeMat(right, f, gh, n, w)
		if !eqWords(left, right) {
			t.Fatal("ComposeMat not associative")
		}
	}
}

func TestNSFACap(t *testing.T) {
	a, err := nfa.Glushkov(syntax.MustParse("([0-4]{4}[5-9]{4})*", 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildNSFA(a, 3); !errors.Is(err, ErrTooManyStates) {
		t.Fatalf("got %v, want ErrTooManyStates", err)
	}
}

func TestNSFALiveSize(t *testing.T) {
	s := buildNSFA(t, "(ab)*")
	if s.EmptyID < 0 {
		t.Fatal("the all-empty correspondence should be reachable for (ab)*")
	}
	if s.LiveSize() != s.NumStates-1 {
		t.Error("LiveSize must exclude exactly the empty mapping")
	}
}

// TestTheorem2NSFABound sanity-checks |Sn| ≤ 2^(|N|²) on a tiny NFA where
// the bound is computable.
func TestTheorem2NSFABound(t *testing.T) {
	s := buildNSFA(t, "(ab)*") // |N| = 3 ⇒ bound 2^9 = 512
	if s.NumStates > 512 {
		t.Errorf("|Sn| = %d exceeds 2^(|N|²) = 512", s.NumStates)
	}
}
