package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dfa"
)

// tupleVerdicts runs text through t and reports the per-rule verdict
// bits, exercising the chunked streaming path when split > 1.
func tupleVerdicts(t *LazyTuple, text []byte, split int) []uint64 {
	words := (t.Rules() + 63) / 64
	dst := make([]uint64, words)
	if split <= 1 {
		vec := make([]int16, t.VecLen())
		t.RunToVec(text, vec)
		t.OrAccept(vec, dst)
		return dst
	}
	cur := make([]int16, t.VecLen())
	tmp := make([]int16, t.VecLen())
	chunk := make([]int16, t.VecLen())
	t.Identity(cur)
	n := len(text)
	for i := 0; i < split; i++ {
		lo, hi := i*n/split, (i+1)*n/split
		t.RunToVec(text[lo:hi], chunk)
		t.Compose(tmp, cur, chunk)
		cur, tmp = tmp, cur
	}
	t.OrAccept(cur, dst)
	return dst
}

func testLazyTupleOracle(t *testing.T, opts LazyTupleOptions, trials int) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		k := 2 + r.Intn(4)
		dfas := make([]*dfa.DFA, k)
		pats := make([]string, k)
		for i := range dfas {
			pats[i] = randPattern(r, 3)
			dfas[i] = dfa.MustCompilePattern(pats[i])
		}
		lt, err := NewLazyTuple(dfas, opts)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 40; w++ {
			word := randWord(r, 24)
			want := make([]uint64, (k+63)/64)
			for i, d := range dfas {
				if d.Accepts(word) {
					want[i>>6] |= 1 << (i & 63)
				}
			}
			for _, split := range []int{1, 3} {
				got := tupleVerdicts(lt, word, split)
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("trial %d patterns %q word %q split %d: got %b want %b (resets %d)",
							trial, pats, word, split, got[j], want[j], lt.Stats().Resets)
					}
				}
			}
		}
		lt.Close()
	}
}

func TestLazyTupleMatchesComponents(t *testing.T) {
	testLazyTupleOracle(t, LazyTupleOptions{}, 40)
}

func TestLazyTupleUnderTinyBudget(t *testing.T) {
	// A budget far below any working set: every page charge beyond the
	// grace floor fails, forcing constant spill–evict–re-enter cycles.
	// Verdicts must not change.
	b := NewTableBudget(1 << 10)
	testLazyTupleOracle(t, LazyTupleOptions{Budget: b}, 15)
}

func TestLazyTupleUnderTinyCaps(t *testing.T) {
	// State caps at the enforced minima: mid-scan resets via the cap
	// path instead of the budget path.
	testLazyTupleOracle(t, LazyTupleOptions{MaxStates: 1, CompMaxStates: 1}, 15)
}

func TestLazyTupleEvictsUnderSharedBudget(t *testing.T) {
	// Gap patterns (literal, bounded wildcard window, literal) keep many
	// in-flight possibilities, so random words materialize many distinct
	// transformation states — the adversarial shape for lazy caches.
	r := rand.New(rand.NewSource(7))
	dfasA := []*dfa.DFA{
		dfa.MustCompilePattern("[abc]*a[abc]{0,10}b[abc]*"),
		dfa.MustCompilePattern("[abc]*b[abc]{0,8}c[abc]*"),
	}
	dfasB := []*dfa.DFA{
		dfa.MustCompilePattern("[abc]*c[abc]{0,9}a[abc]*"),
		dfa.MustCompilePattern("(ab)*c"),
	}
	// Enough for either structure's working set, not both: scanning
	// alternately must trigger LRU evictions of the idle one.
	ltA, err := NewLazyTuple(dfasA, LazyTupleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wsA := ltA.Stats().ResidentBytes
	ltA.Close()

	budget := NewTableBudget(wsA + wsA/2)
	a, err := NewLazyTuple(dfasA, LazyTupleOptions{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewLazyTuple(dfasB, LazyTupleOptions{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	vecA := make([]int16, a.VecLen())
	vecB := make([]int16, b.VecLen())
	for i := 0; i < 80; i++ {
		a.RunToVec(randWord(r, 256), vecA)
		b.RunToVec(randWord(r, 256), vecB)
	}
	st := budget.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under shared budget (used %d, limit %d)", st.Used, st.Limit)
	}
	if st.Used > st.Limit+4*wsA {
		t.Fatalf("usage %d far exceeds limit %d", st.Used, st.Limit)
	}
}

func TestTableBudgetHierarchy(t *testing.T) {
	root := NewTableBudget(1000)
	child := root.Child(600)
	h := child.Register(evictNop{}, 0)
	defer h.Close()
	if !h.TryCharge(500) {
		t.Fatal("charge within both limits refused")
	}
	if h.TryCharge(200) {
		t.Fatal("charge past child limit accepted")
	}
	if root.Stats().Used != 500 || child.Stats().Used != 500 {
		t.Fatalf("hierarchy accounting: root %d child %d", root.Stats().Used, child.Stats().Used)
	}
	h2 := root.Register(evictNop{}, 0)
	defer h2.Close()
	if !h2.TryCharge(400) {
		t.Fatal("root headroom refused")
	}
	if h2.TryCharge(200) {
		t.Fatal("charge past root limit accepted")
	}
	h.Release(500)
	if root.Stats().Used != 400 {
		t.Fatalf("release did not propagate: root %d", root.Stats().Used)
	}
	h.Close()
	h2.Close()
	if root.Stats().Used != 0 {
		t.Fatalf("close did not release: root %d", root.Stats().Used)
	}
}

type evictNop struct{}

func (evictNop) BudgetEvict() int64 { return 0 }

// TestLazyTupleConcurrentFillEvict hammers two structures sharing a
// budget small enough to force cross-evictions while scans are in
// flight — the -race build checks the fill/evict synchronization.
func TestLazyTupleConcurrentFillEvict(t *testing.T) {
	budget := NewTableBudget(64 << 10)
	mk := func(pats ...string) *LazyTuple {
		dfas := make([]*dfa.DFA, len(pats))
		for i, p := range pats {
			dfas[i] = dfa.MustCompilePattern(p)
		}
		lt, err := NewLazyTuple(dfas, LazyTupleOptions{Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		return lt
	}
	a := mk("[abc]*a[abc]{0,10}b[abc]*", "[abc]*b[abc]{0,8}c[abc]*", "(a|b)*c")
	defer a.Close()
	b := mk("[abc]*c[abc]{0,9}a[abc]*", "c*(ab)*")
	defer b.Close()

	iters := 200
	if raceEnabled {
		iters = 60
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			lt := a
			if seed%2 == 0 {
				lt = b
			}
			vec := make([]int16, lt.VecLen())
			dst := make([]uint64, 1)
			for i := 0; i < iters; i++ {
				w := randWord(r, 96)
				lt.RunToVec(w, vec)
				dst[0] = 0
				lt.OrAccept(vec, dst)
			}
		}(int64(g))
	}
	wg.Wait()
}
