package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/dfa"
	"repro/internal/nfa"
)

// ErrTooManyStates is returned when a state cap is exceeded during SFA
// construction.
var ErrTooManyStates = errors.New("core: SFA state cap exceeded")

// MaxDFAStates bounds the size of DFAs accepted by BuildDSFA: mapping
// vector entries are stored as int16, so DFA state ids must fit in 15
// bits. The largest DFA in the paper (r500, 1001 states) is far below.
const MaxDFAStates = 1 << 15

// DSFA is a simultaneous finite automaton constructed from a DFA
// (the paper's D-SFA). Each state f is a total transformation of the
// DFA's state set: Map(f)[q] is the DFA state reached from q by the words
// that lead the SFA from the identity to f.
//
// The DSFA itself is an ordinary complete DFA over the same byte classes
// as D, so matching uses exactly one table lookup per input byte — "each
// thread only deals with a single state in SFA and just looks up the
// transition table once for each character" (Sect. V-B).
type DSFA struct {
	D         *dfa.DFA
	NumStates int
	Start     int32  // id of the identity mapping
	Accept    []bool // Fs: f accepts iff D.Accept[f(D.Start)]
	NextC     []int32
	EmptyID   int32 // id of the everywhere-dead mapping, or -1

	n    int     // vector length == D.NumStates
	maps []int16 // flat NumStates × n transformation vectors

	// ids is the vector-lookup index behind StateOf. BuildDSFA fills it
	// as a side effect of interning; automata assembled from already-
	// final tables (ReadDSFA, NewDSFAFromParts) leave it nil and build
	// it on first StateOf call — matching never consults it, so warm
	// snapshot loads skip the full-table hashing scan entirely.
	ids     map[uint64][]int32
	idsOnce sync.Once
}

// ensureIDs builds the StateOf intern index on demand. Safe for
// concurrent first use; a no-op when construction already filled it.
func (s *DSFA) ensureIDs() {
	s.idsOnce.Do(func() {
		if s.ids != nil {
			return
		}
		ids := make(map[uint64][]int32, s.NumStates)
		for id := int32(0); id < int32(s.NumStates); id++ {
			h := hashVec16(s.mapOf(id))
			ids[h] = append(ids[h], id)
		}
		s.ids = ids
	})
}

// BuildDSFA runs the correspondence construction (Algorithm 4) on a
// complete DFA. cap > 0 bounds the number of SFA states (live or not);
// ErrTooManyStates is returned when exceeded.
func BuildDSFA(d *dfa.DFA, cap int) (*DSFA, error) {
	if d.NumStates > MaxDFAStates {
		return nil, fmt.Errorf("core: DFA has %d states, D-SFA construction limit is %d",
			d.NumStates, MaxDFAStates)
	}
	n := d.NumStates
	nc := d.BC.Count

	s := &DSFA{D: d, n: n, EmptyID: -1}

	// Pre-size the flat storage: reachable SFA state counts are unknown
	// until closure completes, but starting from a few hundred states'
	// worth of capacity removes the early append-doubling churn that
	// dominated construction allocations for small automata.
	sizeHint := 512
	if cap > 0 && cap < sizeHint {
		sizeHint = cap
	}
	s.maps = make([]int16, 0, sizeHint*n)
	s.NextC = make([]int32, 0, sizeHint*nc)

	// Intern table: hash → candidate ids, vectors live in s.maps.
	ids := make(map[uint64][]int32, sizeHint)
	s.ids = ids
	intern := func(vec []int16) (int32, bool, error) {
		h := hashVec16(vec)
		for _, id := range ids[h] {
			if eqVec16(s.mapOf(id), vec) {
				return id, false, nil
			}
		}
		if cap > 0 && s.NumStates >= cap {
			return 0, false, fmt.Errorf("%w (cap %d)", ErrTooManyStates, cap)
		}
		id := int32(s.NumStates)
		s.NumStates++
		s.maps = append(s.maps, vec...)
		ids[h] = append(ids[h], id)
		s.NextC = append(s.NextC, make([]int32, nc)...)
		return id, true, nil
	}

	// Identity mapping f_I (line 1 of Algorithm 4).
	identity := make([]int16, n)
	for q := range identity {
		identity[q] = int16(q)
	}
	start, _, err := intern(identity)
	if err != nil {
		return nil, err
	}
	s.Start = start

	queue := []int32{start}
	next := make([]int16, n)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		// Hoisted out of the per-class loop: intern's appends may move
		// s.maps to a new backing array, leaving f viewing the old one —
		// that stale view stays correct because interned vectors are
		// write-once (do not add in-place mutation of s.maps without
		// revisiting this).
		f := s.mapOf(id)
		for c := 0; c < nc; c++ {
			// Line 6 (deterministic case): fnext(q) = δ(f(q), σ).
			for q := 0; q < n; q++ {
				next[q] = int16(d.NextClass(int32(f[q]), c))
			}
			to, fresh, err := intern(next)
			if err != nil {
				return nil, err
			}
			s.NextC[int(id)*nc+c] = to
			if fresh {
				queue = append(queue, to)
			}
		}
	}

	// Final states Fs (line 12) and the dead mapping, if reachable.
	s.finalize()
	return s, nil
}

// finalize derives the accept vector and the dead-mapping id from the
// interned vectors — the last step both construction paths share.
func (s *DSFA) finalize() {
	d := s.D
	s.Accept = make([]bool, s.NumStates)
	s.EmptyID = -1
	for id := int32(0); id < int32(s.NumStates); id++ {
		f := s.mapOf(id)
		s.Accept[id] = d.Accept[f[d.Start]]
		if d.Dead != dfa.NoDead && allEqual(f, int16(d.Dead)) {
			s.EmptyID = id
		}
	}
}

// NewDSFAFromParts assembles a D-SFA from externally constructed tables:
// nextC is the class-indexed transition table (stride d.BC.Count) and
// maps the flat transformation vectors (stride d.NumStates), state ids
// dense from 0. The tuple-interned product construction in
// internal/multi builds these directly from component D-SFAs instead of
// running the vector-interning Algorithm 4; the assembled automaton is
// indistinguishable to the engines and the codec. Unlike BuildDSFA's
// intern table, maps may contain duplicate vectors (distinct tuples can
// agree on every reachable product state) — matching and serialization
// are unaffected, and StateOf resolves to the first id holding the
// vector. The accept vector and dead-mapping id are derived here; the
// StateOf index is built lazily on first use.
//sfa:borrowed nextC maps
//sfa:adopts
func NewDSFAFromParts(d *dfa.DFA, start int32, nextC []int32, maps []int16) (*DSFA, error) {
	if d.NumStates > MaxDFAStates {
		return nil, fmt.Errorf("core: DFA has %d states, D-SFA construction limit is %d",
			d.NumStates, MaxDFAStates)
	}
	n := d.NumStates
	nc := d.BC.Count
	if n == 0 || len(maps)%n != 0 {
		return nil, fmt.Errorf("core: mapping table %d entries not a multiple of %d DFA states", len(maps), n)
	}
	states := len(maps) / n
	if states == 0 {
		return nil, errors.New("core: no SFA states")
	}
	if len(nextC) != states*nc {
		return nil, fmt.Errorf("core: transition table %d entries, want %d states × %d classes",
			len(nextC), states, nc)
	}
	if start < 0 || int(start) >= states {
		return nil, fmt.Errorf("core: start %d out of range", start)
	}
	s := &DSFA{
		D:         d,
		NumStates: states,
		Start:     start,
		NextC:     nextC,
		n:         n,
		maps:      maps,
	}
	s.finalize()
	return s, nil
}

func allEqual(v []int16, x int16) bool {
	for _, e := range v {
		if e != x {
			return false
		}
	}
	return true
}

func (s *DSFA) mapOf(id int32) []int16 {
	return s.maps[int(id)*s.n : (int(id)+1)*s.n]
}

// Map returns the transformation vector of SFA state id. The slice aliases
// internal storage and must not be modified.
func (s *DSFA) Map(id int32) []int16 { return s.mapOf(id) }

// StateOf returns the id of the SFA state holding exactly the given
// transformation vector, if one was reached during construction. The
// reachable vectors form the transition monoid of D (Sect. VII-A), so
// StateOf(ComposeVec(f, g)) always succeeds for reachable f, g — a closure
// property the tests and package monoid rely on.
func (s *DSFA) StateOf(vec []int16) (int32, bool) {
	s.ensureIDs()
	for _, id := range s.ids[hashVec16(vec)] {
		if eqVec16(s.mapOf(id), vec) {
			return id, true
		}
	}
	return 0, false
}

// BC returns the byte classes shared with the underlying DFA.
func (s *DSFA) BC() *nfa.ByteClasses { return s.D.BC }

// LiveSize returns the state count excluding the everywhere-dead mapping —
// the |Sd| convention of the paper's tables.
func (s *DSFA) LiveSize() int {
	if s.EmptyID >= 0 {
		return s.NumStates - 1
	}
	return s.NumStates
}

// NextClass returns the successor of SFA state id under byte class c.
func (s *DSFA) NextClass(id int32, c int) int32 {
	return s.NextC[int(id)*s.D.BC.Count+c]
}

// NextByte returns the successor of SFA state id on input byte b.
func (s *DSFA) NextByte(id int32, b byte) int32 {
	return s.NextC[int(id)*s.D.BC.Count+int(s.D.BC.Of[b])]
}

// Run returns the SFA state reached from `from` after reading text.
func (s *DSFA) Run(from int32, text []byte) int32 {
	q := from
	for _, b := range text {
		q = s.NextByte(q, b)
	}
	return q
}

// Accepts reports whole-input acceptance by the SFA itself (Theorem 2:
// L(SFA) = L(DFA)).
func (s *DSFA) Accepts(text []byte) bool {
	return s.Accept[s.Run(s.Start, text)]
}

// Table256 materializes the flat 256-wide transition table (1 KB per SFA
// state, the layout whose cache behaviour Fig. 8 studies).
func (s *DSFA) Table256() []int32 {
	nc := s.D.BC.Count
	t := make([]int32, s.NumStates*256)
	for q := 0; q < s.NumStates; q++ {
		row := t[q*256 : (q+1)*256]
		base := q * nc
		for b := 0; b < 256; b++ {
			row[b] = s.NextC[base+int(s.D.BC.Of[b])]
		}
	}
	return t
}

// ComposeVec writes into h the composition "f then g" of two
// transformation vectors: h[q] = g[f[q]]. This is the paper's ⊙ operator
// (reverse composition f ⊙ g = g ∘ f) restricted to D-SFA mappings; the
// parallel reduction of Algorithm 5 folds chunk results with it.
// h must not alias f or g.
//sfa:borrowed f g
func ComposeVec(h, f, g []int16) {
	for q := range h {
		h[q] = g[f[q]]
	}
}

// ApplyVec returns f(q): the single-state application used by the O(p)
// sequential reduction of Algorithm 5.
//sfa:borrowed f
func ApplyVec(f []int16, q int32) int32 { return int32(f[q]) }

// MemoryBytes estimates the resident size of the SFA's match-time tables:
// the class-indexed transition table plus the mapping vectors needed for
// reduction. The 256-wide table adds NumStates KiB on top when expanded.
func (s *DSFA) MemoryBytes() int64 {
	return int64(len(s.NextC))*4 + int64(len(s.maps))*2
}

// String summarizes the automaton.
func (s *DSFA) String() string {
	return fmt.Sprintf("DSFA{states: %d (live %d), over DFA %d (live %d), classes: %d}",
		s.NumStates, s.LiveSize(), s.D.NumStates, s.D.LiveSize(), s.D.BC.Count)
}
