package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/binio"
	"repro/internal/dfa"
)

// Binary serialization of D-SFAs. The D-SFA is the expensive artifact of
// the pipeline (Table III: ~seconds for 10⁴–10⁶ states), so deployments
// serialize it together with its underlying DFA and load both at start.

const dsfaMagic = "SFA\x01SFA\x01"

// WriteTo serializes the D-SFA (including its underlying DFA).
func (s *DSFA) WriteTo(w io.Writer) (int64, error) {
	n, err := s.D.WriteTo(w)
	if err != nil {
		return n, err
	}
	bw := bufio.NewWriter(w)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(dsfaMagic)); err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.NumStates))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.Start))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.EmptyID))
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	accept := make([]byte, (s.NumStates+7)/8)
	for q, a := range s.Accept {
		if a {
			accept[q>>3] |= 1 << (q & 7)
		}
	}
	if err := count(bw.Write(accept)); err != nil {
		return n, err
	}
	buf := make([]byte, 4*len(s.NextC))
	for i, to := range s.NextC {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(to))
	}
	if err := count(bw.Write(buf)); err != nil {
		return n, err
	}
	mbuf := make([]byte, 2*len(s.maps))
	for i, x := range s.maps {
		binary.LittleEndian.PutUint16(mbuf[i*2:], uint16(x))
	}
	if err := count(bw.Write(mbuf)); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadDSFA deserializes a D-SFA written by WriteTo and validates the
// result. The StateOf vector-lookup index is NOT rebuilt here: matching
// never consults it, so a warm snapshot load skips hashing every mapping
// vector and the index materializes lazily on the first StateOf call.
func ReadDSFA(r io.Reader) (*DSFA, error) {
	d, err := dfa.ReadDFA(r)
	if err != nil {
		return nil, err
	}
	br := r
	magic := make([]byte, len(dsfaMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != dsfaMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	s := &DSFA{
		D:         d,
		NumStates: int(binary.LittleEndian.Uint32(hdr[0:])),
		Start:     int32(binary.LittleEndian.Uint32(hdr[4:])),
		EmptyID:   int32(binary.LittleEndian.Uint32(hdr[8:])),
		n:         d.NumStates,
	}
	if s.NumStates <= 0 || s.NumStates > 1<<28 {
		return nil, fmt.Errorf("core: implausible state count %d", s.NumStates)
	}
	if s.Start < 0 || int(s.Start) >= s.NumStates {
		return nil, fmt.Errorf("core: start %d out of range", s.Start)
	}
	// Read every variable section before allocating the automaton's
	// tables, so a lying header costs at most the bytes actually present
	// (binio.ReadExact grows with the stream).
	nc := d.BC.Count
	accept, err := binio.ReadExact(br, (s.NumStates+7)/8)
	if err != nil {
		return nil, fmt.Errorf("core: reading accept: %w", err)
	}
	buf, err := binio.ReadExact(br, 4*s.NumStates*nc)
	if err != nil {
		return nil, fmt.Errorf("core: reading transitions: %w", err)
	}
	mbuf, err := binio.ReadExact(br, 2*s.NumStates*s.n)
	if err != nil {
		return nil, fmt.Errorf("core: reading mappings: %w", err)
	}
	s.Accept = make([]bool, s.NumStates)
	for q := 0; q < s.NumStates; q++ {
		s.Accept[q] = accept[q>>3]&(1<<(q&7)) != 0
	}
	s.NextC = make([]int32, s.NumStates*nc)
	for i := range s.NextC {
		to := int32(binary.LittleEndian.Uint32(buf[i*4:]))
		if to < 0 || int(to) >= s.NumStates {
			return nil, fmt.Errorf("core: transition target %d out of range", to)
		}
		s.NextC[i] = to
	}
	s.maps = make([]int16, s.NumStates*s.n)
	for i := range s.maps {
		x := int16(binary.LittleEndian.Uint16(mbuf[i*2:]))
		if x < 0 || int(x) >= d.NumStates {
			return nil, fmt.Errorf("core: mapping value %d out of range", x)
		}
		s.maps[i] = x
	}
	return s, nil
}

// Per-state accept-bitmask tables (the multi-pattern engines' per-rule
// verdict storage: one row of `words` uint64 words per combined-DFA
// state). Serialized little-endian with a varint length prefix so the
// rule-set codec in internal/multi can frame them.

// WriteMaskTable serializes a mask table of stride `words`.
func WriteMaskTable(w io.Writer, masks []uint64) error {
	if err := binio.WriteUvarint(w, uint64(len(masks))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(masks))
	for i, m := range masks {
		binary.LittleEndian.PutUint64(buf[i*8:], m)
	}
	_, err := w.Write(buf)
	return err
}

// ReadMaskTable reads a mask table written by WriteMaskTable and
// validates its shape: exactly states×words entries, and in every row
// no bit at or above ruleBits set (mask rows describe ruleBits rules;
// stray high bits mean corruption).
func ReadMaskTable(r io.Reader, states, words, ruleBits int) ([]uint64, error) {
	n, err := binio.ReadCount(r, uint64(states)*uint64(words), "mask table")
	if err != nil {
		return nil, err
	}
	if n != states*words {
		return nil, fmt.Errorf("core: mask table %d entries, want %d states × %d words", n, states, words)
	}
	buf, err := binio.ReadExact(r, 8*n)
	if err != nil {
		return nil, fmt.Errorf("core: reading mask table: %w", err)
	}
	masks := make([]uint64, n)
	for i := range masks {
		masks[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	for q := 0; q < states; q++ {
		row := masks[q*words : (q+1)*words]
		for wi, m := range row {
			lo := wi * 64
			var allowed uint64
			switch {
			case ruleBits >= lo+64:
				allowed = ^uint64(0)
			case ruleBits > lo:
				allowed = (uint64(1) << (ruleBits - lo)) - 1
			}
			if m&^allowed != 0 {
				return nil, fmt.Errorf("core: mask table state %d has bits beyond %d rules", q, ruleBits)
			}
		}
	}
	return masks, nil
}
