package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dfa"
)

// Binary serialization of D-SFAs. The D-SFA is the expensive artifact of
// the pipeline (Table III: ~seconds for 10⁴–10⁶ states), so deployments
// serialize it together with its underlying DFA and load both at start.

const dsfaMagic = "SFA\x01SFA\x01"

// WriteTo serializes the D-SFA (including its underlying DFA).
func (s *DSFA) WriteTo(w io.Writer) (int64, error) {
	n, err := s.D.WriteTo(w)
	if err != nil {
		return n, err
	}
	bw := bufio.NewWriter(w)
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(dsfaMagic)); err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(s.NumStates))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(s.Start))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(s.EmptyID))
	if err := count(bw.Write(hdr[:])); err != nil {
		return n, err
	}
	accept := make([]byte, (s.NumStates+7)/8)
	for q, a := range s.Accept {
		if a {
			accept[q>>3] |= 1 << (q & 7)
		}
	}
	if err := count(bw.Write(accept)); err != nil {
		return n, err
	}
	buf := make([]byte, 4*len(s.NextC))
	for i, to := range s.NextC {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(to))
	}
	if err := count(bw.Write(buf)); err != nil {
		return n, err
	}
	mbuf := make([]byte, 2*len(s.maps))
	for i, x := range s.maps {
		binary.LittleEndian.PutUint16(mbuf[i*2:], uint16(x))
	}
	if err := count(bw.Write(mbuf)); err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// ReadDSFA deserializes a D-SFA written by WriteTo, rebuilding the
// vector-lookup index, and validates the result.
func ReadDSFA(r io.Reader) (*DSFA, error) {
	d, err := dfa.ReadDFA(r)
	if err != nil {
		return nil, err
	}
	br := r
	magic := make([]byte, len(dsfaMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: reading magic: %w", err)
	}
	if string(magic) != dsfaMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("core: reading header: %w", err)
	}
	s := &DSFA{
		D:         d,
		NumStates: int(binary.LittleEndian.Uint32(hdr[0:])),
		Start:     int32(binary.LittleEndian.Uint32(hdr[4:])),
		EmptyID:   int32(binary.LittleEndian.Uint32(hdr[8:])),
		n:         d.NumStates,
	}
	if s.NumStates <= 0 || s.NumStates > 1<<28 {
		return nil, fmt.Errorf("core: implausible state count %d", s.NumStates)
	}
	if s.Start < 0 || int(s.Start) >= s.NumStates {
		return nil, fmt.Errorf("core: start %d out of range", s.Start)
	}
	accept := make([]byte, (s.NumStates+7)/8)
	if _, err := io.ReadFull(br, accept); err != nil {
		return nil, fmt.Errorf("core: reading accept: %w", err)
	}
	s.Accept = make([]bool, s.NumStates)
	for q := 0; q < s.NumStates; q++ {
		s.Accept[q] = accept[q>>3]&(1<<(q&7)) != 0
	}
	nc := d.BC.Count
	s.NextC = make([]int32, s.NumStates*nc)
	buf := make([]byte, 4*len(s.NextC))
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("core: reading transitions: %w", err)
	}
	for i := range s.NextC {
		to := int32(binary.LittleEndian.Uint32(buf[i*4:]))
		if to < 0 || int(to) >= s.NumStates {
			return nil, fmt.Errorf("core: transition target %d out of range", to)
		}
		s.NextC[i] = to
	}
	s.maps = make([]int16, s.NumStates*s.n)
	mbuf := make([]byte, 2*len(s.maps))
	if _, err := io.ReadFull(br, mbuf); err != nil {
		return nil, fmt.Errorf("core: reading mappings: %w", err)
	}
	for i := range s.maps {
		x := int16(binary.LittleEndian.Uint16(mbuf[i*2:]))
		if x < 0 || int(x) >= d.NumStates {
			return nil, fmt.Errorf("core: mapping value %d out of range", x)
		}
		s.maps[i] = x
	}
	// Rebuild the intern index for StateOf.
	s.ids = make(map[uint64][]int32)
	for id := int32(0); id < int32(s.NumStates); id++ {
		h := hashVec16(s.mapOf(id))
		s.ids[h] = append(s.ids[h], id)
	}
	return s, nil
}
