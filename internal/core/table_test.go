package core

import (
	"testing"

	"repro/internal/dfa"
	"repro/internal/nfa"
	"repro/internal/syntax"
)

func TestWidthPredicates(t *testing.T) {
	if !FitsU8(256) || FitsU8(257) {
		t.Error("FitsU8 boundary wrong")
	}
	if !FitsU16(1<<16) || FitsU16(1<<16+1) {
		t.Error("FitsU16 boundary wrong")
	}
}

func TestDSFAWidthTablesAgree(t *testing.T) {
	for _, pat := range []string{"(ab)*", "([0-4]{2}[5-9]{2})*", "(a|b)*abb"} {
		d := dfa.MustCompilePattern(pat)
		s, err := BuildDSFA(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		wide := s.Table256()
		t16 := s.Table256U16()
		var t8 []uint8
		if FitsU8(s.NumStates) {
			t8 = s.Table256U8()
		}
		for i := range wide {
			if int32(t16[i]) != wide[i] {
				t.Fatalf("%s: u16[%d] = %d, i32 = %d", pat, i, t16[i], wide[i])
			}
			if t8 != nil && int32(t8[i]) != wide[i] {
				t.Fatalf("%s: u8[%d] = %d, i32 = %d", pat, i, t8[i], wide[i])
			}
		}
	}
}

func TestNSFAWidthTablesAgree(t *testing.T) {
	for _, pat := range []string{"(ab)*", "(a|bc)*", "([ab]{3}c)*"} {
		node := syntax.MustParse(pat, 0)
		a, err := nfa.Glushkov(node)
		if err != nil {
			t.Fatal(err)
		}
		s, err := BuildNSFA(a, 500_000)
		if err != nil {
			t.Fatal(err)
		}
		wide := s.Table256()
		for q := int32(0); q < int32(s.NumStates); q++ {
			for b := 0; b < 256; b++ {
				if wide[int(q)<<8|b] != s.NextByte(q, byte(b)) {
					t.Fatalf("%s: i32 table disagrees with NextByte at (%d, %d)", pat, q, b)
				}
			}
		}
		t16 := s.Table256U16()
		var t8 []uint8
		if FitsU8(s.NumStates) {
			t8 = s.Table256U8()
		}
		for i := range wide {
			if int32(t16[i]) != wide[i] {
				t.Fatalf("%s: u16[%d] diverges", pat, i)
			}
			if t8 != nil && int32(t8[i]) != wide[i] {
				t.Fatalf("%s: u8[%d] diverges", pat, i)
			}
		}
	}
}

func TestTablePanicsWhenTooWide(t *testing.T) {
	// A DSFA never has > 256 states for these tiny patterns, so assert
	// the guard directly through the predicate contract instead: the
	// panic paths fire on misuse.
	d := dfa.MustCompilePattern("([0-4]{3}[5-9]{3})*")
	s, err := BuildDSFA(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if FitsU8(s.NumStates) {
		t.Skip("automaton fits u8; panic path not reachable here")
	}
	defer func() {
		if recover() == nil {
			t.Error("Table256U8 did not panic for too-wide automaton")
		}
	}()
	s.Table256U8()
}
